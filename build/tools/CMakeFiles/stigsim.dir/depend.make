# Empty dependencies file for stigsim.
# This may be replaced when dependencies are built.
