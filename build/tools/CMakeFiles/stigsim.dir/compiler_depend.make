# Empty compiler generated dependencies file for stigsim.
# This may be replaced when dependencies are built.
