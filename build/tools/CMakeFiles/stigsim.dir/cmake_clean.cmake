file(REMOVE_RECURSE
  "CMakeFiles/stigsim.dir/stigsim.cpp.o"
  "CMakeFiles/stigsim.dir/stigsim.cpp.o.d"
  "stigsim"
  "stigsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stigsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
