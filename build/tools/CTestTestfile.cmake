# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(stigsim_sync "/root/repo/build/tools/stigsim" "--n" "5" "--message" "smoke" "--from" "0" "--to" "3")
set_tests_properties(stigsim_sync PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(stigsim_async_broadcast "/root/repo/build/tools/stigsim" "--async" "--n" "3" "--broadcast" "--message" "all" "--p" "0.5")
set_tests_properties(stigsim_async_broadcast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(stigsim_ksegment "/root/repo/build/tools/stigsim" "--n" "9" "--protocol" "ksegment" "--k" "3" "--sod" "--seed" "4")
set_tests_properties(stigsim_ksegment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(stigsim_help "/root/repo/build/tools/stigsim" "--help")
set_tests_properties(stigsim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
