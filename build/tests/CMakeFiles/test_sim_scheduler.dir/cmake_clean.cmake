file(REMOVE_RECURSE
  "CMakeFiles/test_sim_scheduler.dir/test_sim_scheduler.cpp.o"
  "CMakeFiles/test_sim_scheduler.dir/test_sim_scheduler.cpp.o.d"
  "test_sim_scheduler"
  "test_sim_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
