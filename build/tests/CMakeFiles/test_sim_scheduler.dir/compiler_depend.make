# Empty compiler generated dependencies file for test_sim_scheduler.
# This may be replaced when dependencies are built.
