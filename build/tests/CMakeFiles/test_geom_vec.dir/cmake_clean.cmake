file(REMOVE_RECURSE
  "CMakeFiles/test_geom_vec.dir/test_geom_vec.cpp.o"
  "CMakeFiles/test_geom_vec.dir/test_geom_vec.cpp.o.d"
  "test_geom_vec"
  "test_geom_vec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_vec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
