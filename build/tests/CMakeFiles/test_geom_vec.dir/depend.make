# Empty dependencies file for test_geom_vec.
# This may be replaced when dependencies are built.
