# Empty compiler generated dependencies file for test_proto_ksegment.
# This may be replaced when dependencies are built.
