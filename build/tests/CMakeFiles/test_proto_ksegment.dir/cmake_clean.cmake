file(REMOVE_RECURSE
  "CMakeFiles/test_proto_ksegment.dir/test_proto_ksegment.cpp.o"
  "CMakeFiles/test_proto_ksegment.dir/test_proto_ksegment.cpp.o.d"
  "test_proto_ksegment"
  "test_proto_ksegment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_ksegment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
