# Empty compiler generated dependencies file for test_proto_sync_sliced.
# This may be replaced when dependencies are built.
