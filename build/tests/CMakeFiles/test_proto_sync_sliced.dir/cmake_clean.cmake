file(REMOVE_RECURSE
  "CMakeFiles/test_proto_sync_sliced.dir/test_proto_sync_sliced.cpp.o"
  "CMakeFiles/test_proto_sync_sliced.dir/test_proto_sync_sliced.cpp.o.d"
  "test_proto_sync_sliced"
  "test_proto_sync_sliced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_sync_sliced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
