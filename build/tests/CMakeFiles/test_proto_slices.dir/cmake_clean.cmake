file(REMOVE_RECURSE
  "CMakeFiles/test_proto_slices.dir/test_proto_slices.cpp.o"
  "CMakeFiles/test_proto_slices.dir/test_proto_slices.cpp.o.d"
  "test_proto_slices"
  "test_proto_slices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
