file(REMOVE_RECURSE
  "CMakeFiles/test_geom_voronoi.dir/test_geom_voronoi.cpp.o"
  "CMakeFiles/test_geom_voronoi.dir/test_geom_voronoi.cpp.o.d"
  "test_geom_voronoi"
  "test_geom_voronoi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_voronoi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
