# Empty dependencies file for test_geom_voronoi.
# This may be replaced when dependencies are built.
