# Empty dependencies file for test_core_chat_network.
# This may be replaced when dependencies are built.
