file(REMOVE_RECURSE
  "CMakeFiles/test_core_chat_network.dir/test_core_chat_network.cpp.o"
  "CMakeFiles/test_core_chat_network.dir/test_core_chat_network.cpp.o.d"
  "test_core_chat_network"
  "test_core_chat_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_chat_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
