file(REMOVE_RECURSE
  "CMakeFiles/test_core_backup.dir/test_core_backup.cpp.o"
  "CMakeFiles/test_core_backup.dir/test_core_backup.cpp.o.d"
  "test_core_backup"
  "test_core_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
