# Empty dependencies file for test_core_backup.
# This may be replaced when dependencies are built.
