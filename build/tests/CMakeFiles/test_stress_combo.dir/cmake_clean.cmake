file(REMOVE_RECURSE
  "CMakeFiles/test_stress_combo.dir/test_stress_combo.cpp.o"
  "CMakeFiles/test_stress_combo.dir/test_stress_combo.cpp.o.d"
  "test_stress_combo"
  "test_stress_combo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stress_combo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
