# Empty dependencies file for test_proto_sync2.
# This may be replaced when dependencies are built.
