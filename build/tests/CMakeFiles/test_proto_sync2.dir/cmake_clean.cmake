file(REMOVE_RECURSE
  "CMakeFiles/test_proto_sync2.dir/test_proto_sync2.cpp.o"
  "CMakeFiles/test_proto_sync2.dir/test_proto_sync2.cpp.o.d"
  "test_proto_sync2"
  "test_proto_sync2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_sync2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
