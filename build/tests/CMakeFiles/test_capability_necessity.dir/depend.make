# Empty dependencies file for test_capability_necessity.
# This may be replaced when dependencies are built.
