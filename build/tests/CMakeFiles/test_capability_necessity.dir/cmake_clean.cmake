file(REMOVE_RECURSE
  "CMakeFiles/test_capability_necessity.dir/test_capability_necessity.cpp.o"
  "CMakeFiles/test_capability_necessity.dir/test_capability_necessity.cpp.o.d"
  "test_capability_necessity"
  "test_capability_necessity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capability_necessity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
