file(REMOVE_RECURSE
  "CMakeFiles/test_sim_frame.dir/test_sim_frame.cpp.o"
  "CMakeFiles/test_sim_frame.dir/test_sim_frame.cpp.o.d"
  "test_sim_frame"
  "test_sim_frame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
