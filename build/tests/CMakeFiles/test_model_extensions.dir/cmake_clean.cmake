file(REMOVE_RECURSE
  "CMakeFiles/test_model_extensions.dir/test_model_extensions.cpp.o"
  "CMakeFiles/test_model_extensions.dir/test_model_extensions.cpp.o.d"
  "test_model_extensions"
  "test_model_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
