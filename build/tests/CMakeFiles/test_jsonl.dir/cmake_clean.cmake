file(REMOVE_RECURSE
  "CMakeFiles/test_jsonl.dir/test_jsonl.cpp.o"
  "CMakeFiles/test_jsonl.dir/test_jsonl.cpp.o.d"
  "test_jsonl"
  "test_jsonl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jsonl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
