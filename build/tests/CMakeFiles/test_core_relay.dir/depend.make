# Empty dependencies file for test_core_relay.
# This may be replaced when dependencies are built.
