file(REMOVE_RECURSE
  "CMakeFiles/test_core_relay.dir/test_core_relay.cpp.o"
  "CMakeFiles/test_core_relay.dir/test_core_relay.cpp.o.d"
  "test_core_relay"
  "test_core_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
