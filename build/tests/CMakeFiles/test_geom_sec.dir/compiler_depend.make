# Empty compiler generated dependencies file for test_geom_sec.
# This may be replaced when dependencies are built.
