file(REMOVE_RECURSE
  "CMakeFiles/test_geom_sec.dir/test_geom_sec.cpp.o"
  "CMakeFiles/test_geom_sec.dir/test_geom_sec.cpp.o.d"
  "test_geom_sec"
  "test_geom_sec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_sec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
