file(REMOVE_RECURSE
  "CMakeFiles/test_sim_stressors.dir/test_sim_stressors.cpp.o"
  "CMakeFiles/test_sim_stressors.dir/test_sim_stressors.cpp.o.d"
  "test_sim_stressors"
  "test_sim_stressors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_stressors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
