# Empty dependencies file for test_sim_stressors.
# This may be replaced when dependencies are built.
