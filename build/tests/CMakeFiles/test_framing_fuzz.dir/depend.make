# Empty dependencies file for test_framing_fuzz.
# This may be replaced when dependencies are built.
