file(REMOVE_RECURSE
  "CMakeFiles/test_framing_fuzz.dir/test_framing_fuzz.cpp.o"
  "CMakeFiles/test_framing_fuzz.dir/test_framing_fuzz.cpp.o.d"
  "test_framing_fuzz"
  "test_framing_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_framing_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
