file(REMOVE_RECURSE
  "CMakeFiles/test_proto_async.dir/test_proto_async.cpp.o"
  "CMakeFiles/test_proto_async.dir/test_proto_async.cpp.o.d"
  "test_proto_async"
  "test_proto_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
