# Empty compiler generated dependencies file for test_proto_async.
# This may be replaced when dependencies are built.
