# Empty compiler generated dependencies file for test_core_multicast.
# This may be replaced when dependencies are built.
