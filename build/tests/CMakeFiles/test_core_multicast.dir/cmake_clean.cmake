file(REMOVE_RECURSE
  "CMakeFiles/test_core_multicast.dir/test_core_multicast.cpp.o"
  "CMakeFiles/test_core_multicast.dir/test_core_multicast.cpp.o.d"
  "test_core_multicast"
  "test_core_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
