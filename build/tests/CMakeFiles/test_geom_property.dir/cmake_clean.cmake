file(REMOVE_RECURSE
  "CMakeFiles/test_geom_property.dir/test_geom_property.cpp.o"
  "CMakeFiles/test_geom_property.dir/test_geom_property.cpp.o.d"
  "test_geom_property"
  "test_geom_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
