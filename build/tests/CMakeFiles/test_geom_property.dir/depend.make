# Empty dependencies file for test_geom_property.
# This may be replaced when dependencies are built.
