file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_asyncn.dir/bench_fig6_asyncn.cpp.o"
  "CMakeFiles/bench_fig6_asyncn.dir/bench_fig6_asyncn.cpp.o.d"
  "bench_fig6_asyncn"
  "bench_fig6_asyncn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_asyncn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
