# Empty dependencies file for bench_fig6_asyncn.
# This may be replaced when dependencies are built.
