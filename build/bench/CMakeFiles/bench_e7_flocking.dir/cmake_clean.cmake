file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_flocking.dir/bench_e7_flocking.cpp.o"
  "CMakeFiles/bench_e7_flocking.dir/bench_e7_flocking.cpp.o.d"
  "bench_e7_flocking"
  "bench_e7_flocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_flocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
