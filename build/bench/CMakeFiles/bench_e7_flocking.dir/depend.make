# Empty dependencies file for bench_e7_flocking.
# This may be replaced when dependencies are built.
