# Empty dependencies file for bench_e8_bounded_async.
# This may be replaced when dependencies are built.
