# Empty dependencies file for bench_e3_ksegment.
# This may be replaced when dependencies are built.
