file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_ksegment.dir/bench_e3_ksegment.cpp.o"
  "CMakeFiles/bench_e3_ksegment.dir/bench_e3_ksegment.cpp.o.d"
  "bench_e3_ksegment"
  "bench_e3_ksegment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_ksegment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
