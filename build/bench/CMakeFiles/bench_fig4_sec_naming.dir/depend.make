# Empty dependencies file for bench_fig4_sec_naming.
# This may be replaced when dependencies are built.
