file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sec_naming.dir/bench_fig4_sec_naming.cpp.o"
  "CMakeFiles/bench_fig4_sec_naming.dir/bench_fig4_sec_naming.cpp.o.d"
  "bench_fig4_sec_naming"
  "bench_fig4_sec_naming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sec_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
