file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_geometry.dir/bench_e6_geometry.cpp.o"
  "CMakeFiles/bench_e6_geometry.dir/bench_e6_geometry.cpp.o.d"
  "bench_e6_geometry"
  "bench_e6_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
