# Empty compiler generated dependencies file for bench_a2_quantization.
# This may be replaced when dependencies are built.
