file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_symmetry.dir/bench_fig3_symmetry.cpp.o"
  "CMakeFiles/bench_fig3_symmetry.dir/bench_fig3_symmetry.cpp.o.d"
  "bench_fig3_symmetry"
  "bench_fig3_symmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_symmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
