# Empty dependencies file for bench_fig3_symmetry.
# This may be replaced when dependencies are built.
