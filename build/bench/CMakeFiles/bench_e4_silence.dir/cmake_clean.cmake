file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_silence.dir/bench_e4_silence.cpp.o"
  "CMakeFiles/bench_e4_silence.dir/bench_e4_silence.cpp.o.d"
  "bench_e4_silence"
  "bench_e4_silence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_silence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
