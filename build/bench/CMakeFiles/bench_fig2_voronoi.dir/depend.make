# Empty dependencies file for bench_fig2_voronoi.
# This may be replaced when dependencies are built.
