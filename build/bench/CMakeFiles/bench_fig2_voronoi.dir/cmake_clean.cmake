file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_voronoi.dir/bench_fig2_voronoi.cpp.o"
  "CMakeFiles/bench_fig2_voronoi.dir/bench_fig2_voronoi.cpp.o.d"
  "bench_fig2_voronoi"
  "bench_fig2_voronoi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_voronoi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
