file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_broadcast.dir/bench_a1_broadcast.cpp.o"
  "CMakeFiles/bench_a1_broadcast.dir/bench_a1_broadcast.cpp.o.d"
  "bench_a1_broadcast"
  "bench_a1_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
