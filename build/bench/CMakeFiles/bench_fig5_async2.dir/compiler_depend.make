# Empty compiler generated dependencies file for bench_fig5_async2.
# This may be replaced when dependencies are built.
