file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_stabilization.dir/bench_a3_stabilization.cpp.o"
  "CMakeFiles/bench_a3_stabilization.dir/bench_a3_stabilization.cpp.o.d"
  "bench_a3_stabilization"
  "bench_a3_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
