# Empty compiler generated dependencies file for bench_fig1_sync2.
# This may be replaced when dependencies are built.
