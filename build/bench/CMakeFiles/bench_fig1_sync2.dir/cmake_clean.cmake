file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_sync2.dir/bench_fig1_sync2.cpp.o"
  "CMakeFiles/bench_fig1_sync2.dir/bench_fig1_sync2.cpp.o.d"
  "bench_fig1_sync2"
  "bench_fig1_sync2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_sync2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
