file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_async_ack.dir/bench_e2_async_ack.cpp.o"
  "CMakeFiles/bench_e2_async_ack.dir/bench_e2_async_ack.cpp.o.d"
  "bench_e2_async_ack"
  "bench_e2_async_ack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_async_ack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
