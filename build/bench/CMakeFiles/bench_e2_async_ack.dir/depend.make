# Empty dependencies file for bench_e2_async_ack.
# This may be replaced when dependencies are built.
