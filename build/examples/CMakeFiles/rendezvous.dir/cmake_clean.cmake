file(REMOVE_RECURSE
  "CMakeFiles/rendezvous.dir/rendezvous.cpp.o"
  "CMakeFiles/rendezvous.dir/rendezvous.cpp.o.d"
  "rendezvous"
  "rendezvous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rendezvous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
