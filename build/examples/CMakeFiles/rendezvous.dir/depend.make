# Empty dependencies file for rendezvous.
# This may be replaced when dependencies are built.
