# Empty compiler generated dependencies file for swarm_survey.
# This may be replaced when dependencies are built.
