file(REMOVE_RECURSE
  "CMakeFiles/swarm_survey.dir/swarm_survey.cpp.o"
  "CMakeFiles/swarm_survey.dir/swarm_survey.cpp.o.d"
  "swarm_survey"
  "swarm_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
