# Empty compiler generated dependencies file for wireless_backup.
# This may be replaced when dependencies are built.
