file(REMOVE_RECURSE
  "CMakeFiles/wireless_backup.dir/wireless_backup.cpp.o"
  "CMakeFiles/wireless_backup.dir/wireless_backup.cpp.o.d"
  "wireless_backup"
  "wireless_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
