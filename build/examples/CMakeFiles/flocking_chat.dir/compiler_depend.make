# Empty compiler generated dependencies file for flocking_chat.
# This may be replaced when dependencies are built.
