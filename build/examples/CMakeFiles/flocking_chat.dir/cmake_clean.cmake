file(REMOVE_RECURSE
  "CMakeFiles/flocking_chat.dir/flocking_chat.cpp.o"
  "CMakeFiles/flocking_chat.dir/flocking_chat.cpp.o.d"
  "flocking_chat"
  "flocking_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flocking_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
