# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_swarm_survey "/root/repo/build/examples/swarm_survey")
set_tests_properties(example_swarm_survey PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wireless_backup "/root/repo/build/examples/wireless_backup")
set_tests_properties(example_wireless_backup PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_flocking_chat "/root/repo/build/examples/flocking_chat")
set_tests_properties(example_flocking_chat PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_leader_election "/root/repo/build/examples/leader_election")
set_tests_properties(example_leader_election PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rendezvous "/root/repo/build/examples/rendezvous")
set_tests_properties(example_rendezvous PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
