file(REMOVE_RECURSE
  "libstigmergy.a"
)
