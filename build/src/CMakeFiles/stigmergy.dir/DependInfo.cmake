
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/aggregate.cpp" "src/CMakeFiles/stigmergy.dir/apps/aggregate.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/apps/aggregate.cpp.o.d"
  "/root/repo/src/apps/election.cpp" "src/CMakeFiles/stigmergy.dir/apps/election.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/apps/election.cpp.o.d"
  "/root/repo/src/core/chat_network.cpp" "src/CMakeFiles/stigmergy.dir/core/chat_network.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/core/chat_network.cpp.o.d"
  "/root/repo/src/encode/framing.cpp" "src/CMakeFiles/stigmergy.dir/encode/framing.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/encode/framing.cpp.o.d"
  "/root/repo/src/geom/convex.cpp" "src/CMakeFiles/stigmergy.dir/geom/convex.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/geom/convex.cpp.o.d"
  "/root/repo/src/geom/sec.cpp" "src/CMakeFiles/stigmergy.dir/geom/sec.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/geom/sec.cpp.o.d"
  "/root/repo/src/geom/vec.cpp" "src/CMakeFiles/stigmergy.dir/geom/vec.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/geom/vec.cpp.o.d"
  "/root/repo/src/geom/voronoi.cpp" "src/CMakeFiles/stigmergy.dir/geom/voronoi.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/geom/voronoi.cpp.o.d"
  "/root/repo/src/proto/async2.cpp" "src/CMakeFiles/stigmergy.dir/proto/async2.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/proto/async2.cpp.o.d"
  "/root/repo/src/proto/asyncn.cpp" "src/CMakeFiles/stigmergy.dir/proto/asyncn.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/proto/asyncn.cpp.o.d"
  "/root/repo/src/proto/common.cpp" "src/CMakeFiles/stigmergy.dir/proto/common.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/proto/common.cpp.o.d"
  "/root/repo/src/proto/conformance.cpp" "src/CMakeFiles/stigmergy.dir/proto/conformance.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/proto/conformance.cpp.o.d"
  "/root/repo/src/proto/ksegment.cpp" "src/CMakeFiles/stigmergy.dir/proto/ksegment.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/proto/ksegment.cpp.o.d"
  "/root/repo/src/proto/naming.cpp" "src/CMakeFiles/stigmergy.dir/proto/naming.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/proto/naming.cpp.o.d"
  "/root/repo/src/proto/slices.cpp" "src/CMakeFiles/stigmergy.dir/proto/slices.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/proto/slices.cpp.o.d"
  "/root/repo/src/proto/sync2.cpp" "src/CMakeFiles/stigmergy.dir/proto/sync2.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/proto/sync2.cpp.o.d"
  "/root/repo/src/proto/sync_sliced.cpp" "src/CMakeFiles/stigmergy.dir/proto/sync_sliced.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/proto/sync_sliced.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/stigmergy.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/jsonl.cpp" "src/CMakeFiles/stigmergy.dir/sim/jsonl.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/sim/jsonl.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/stigmergy.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/stigmergy.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/sim/trace.cpp.o.d"
  "/root/repo/src/viz/figures.cpp" "src/CMakeFiles/stigmergy.dir/viz/figures.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/viz/figures.cpp.o.d"
  "/root/repo/src/viz/svg.cpp" "src/CMakeFiles/stigmergy.dir/viz/svg.cpp.o" "gcc" "src/CMakeFiles/stigmergy.dir/viz/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
