# Empty compiler generated dependencies file for stigmergy.
# This may be replaced when dependencies are built.
