// F2 — Figure 2 reproduction: the two preprocessing phases for n identified
// robots with sense of direction. Prints every robot's Voronoi cell and
// granular (Figure 2a), then has robot 9 send both "0" and "1" to robot 3
// (Figure 2b) and shows how the movement decodes.
#include <iostream>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "geom/granular.hpp"
#include "geom/voronoi.hpp"
#include "viz/figures.hpp"

int main() {
  using namespace stig;
  std::cout << "== F2: Figure 2 — Voronoi cells, granulars and slice "
               "labels for 12 identified robots ==\n\n";

  bench::Report report("fig2_voronoi");
  const std::vector<geom::Vec2> pts = bench::scatter(12, 1234, 25.0, 4.0);
  const geom::VoronoiDiagram vd = geom::VoronoiDiagram::compute(pts);

  std::cout << "phase 1+2 (computed at t0 by every robot):\n";
  bench::Table t({"robot", "cell vertices", "cell area", "granular R"},
                 report, "voronoi preprocessing");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    t.row(i, vd.cell(i).polygon.size(), vd.cell(i).polygon.area(),
          geom::granular_radius(pts, i));
  }

  std::cout << "\neach granular is sliced into 2n = 24 slices; diameter 0 "
               "is aligned North, labels increase clockwise.\n";
  const geom::Granular g9(pts[9], geom::granular_radius(pts, 9), 12,
                          geom::Vec2{0, 1});
  std::cout << "robot 9's diameter directions (label: unit vector):\n";
  for (std::size_t d = 0; d < 12; d += 3) {
    const geom::Vec2 dir = g9.direction(d, geom::DiameterSide::positive);
    std::cout << "  " << d << ": (" << std::fixed << std::setprecision(3)
              << dir.x << ", " << dir.y << ")\n";
  }

  std::cout << "\nfigure 2b — robot 9 sends '0' then '1' to robot 3:\n";
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  opt.caps.visible_ids = true;
  opt.caps.sense_of_direction = true;
  opt.record_positions = true;
  core::ChatNetwork net(pts, opt);
  // One byte 0b01000000: its first two bits on the wire after the length
  // varint land quickly; simpler: send a 1-byte message and show the first
  // few excursions with their decoded diameter.
  const std::vector<std::uint8_t> msg{0x55};
  net.send(9, 3, msg);
  net.run_until_quiescent(10'000);
  net.run(2);

  const auto& hist = net.engine().trace().positions();
  int shown = 0;
  for (std::size_t step = 0; step < hist.size() && shown < 6; ++step) {
    const geom::Vec2 pos = hist[step][9];
    const auto fix = g9.classify(pos, 1e-6);
    if (!fix) continue;
    std::cout << "  t=" << step << ": robot 9 at distance " << std::fixed
              << std::setprecision(3) << fix->distance << " on diameter "
              << fix->diameter << " ("
              << (fix->side == geom::DiameterSide::positive
                      ? "N/E side -> bit 0"
                      : "S/W side -> bit 1")
              << ")\n";
    ++shown;
  }
  viz::SwarmDrawing what;
  what.voronoi = true;
  what.diameters = 12;
  what.naming = proto::NamingMode::lexicographic;
  viz::SvgScene fig = viz::draw_swarm(pts, what);
  if (fig.write("figure2_voronoi.svg")) {
    std::cout << "\nwrote figure2_voronoi.svg (Voronoi cells + granulars + "
                 "slice labels)\n";
  }

  std::cout << "\n(the diameter label equals the addressee's rank in the "
               "shared ID order; every robot decodes it)\n";
  std::cout << "message delivered to robot 3: "
            << (net.received(3).size() == 1 ? "yes" : "NO") << "\n";
  return 0;
}
