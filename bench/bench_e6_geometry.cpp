// E6 — geometry substrate scalability (google-benchmark): smallest
// enclosing circle (expected O(n)), per-cell Voronoi construction
// (O(n^2) for the full diagram), relative naming (O(n log n) after the
// SEC), and the engine's full step cost.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "geom/sec.hpp"
#include "geom/voronoi.hpp"
#include "proto/naming.hpp"

namespace {

using namespace stig;

void BM_SmallestEnclosingCircle(benchmark::State& state) {
  const auto pts = bench::scatter(static_cast<std::size_t>(state.range(0)),
                                  9, 1000.0, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::smallest_enclosing_circle(pts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SmallestEnclosingCircle)->Range(8, 4096)->Complexity();

void BM_VoronoiDiagram(benchmark::State& state) {
  const auto pts = bench::scatter(static_cast<std::size_t>(state.range(0)),
                                  11, 1000.0, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::VoronoiDiagram::compute(pts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VoronoiDiagram)->Range(8, 512)->Complexity();

void BM_GranularRadii(benchmark::State& state) {
  const auto pts = bench::scatter(static_cast<std::size_t>(state.range(0)),
                                  13, 1000.0, 0.5);
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      acc += geom::granular_radius(pts, i);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_GranularRadii)->Range(8, 1024);

void BM_RelativeNaming(benchmark::State& state) {
  const auto pts = bench::scatter(static_cast<std::size_t>(state.range(0)),
                                  17, 1000.0, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::relative_naming(pts, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RelativeNaming)->Range(8, 2048)->Complexity();

void BM_EngineStepAsyncN(benchmark::State& state) {
  // Full simulator step cost with AsyncN robots idling on kappa — the
  // per-instant price of a running swarm.
  const auto n = static_cast<std::size_t>(state.range(0));
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::asynchronous;
  opt.seed = 3;
  core::ChatNetwork net(bench::scatter(n, 70 + n, 120.0, 3.0), opt);
  for (auto _ : state) {
    net.step();
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineStepAsyncN)->Range(2, 64)->Complexity();

void BM_EngineStepSyncSliced(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  core::ChatNetwork net(bench::scatter(n, 90 + n, 120.0, 3.0), opt);
  net.send(0, n - 1, bench::payload(64, 1));  // Keep a sender busy.
  for (auto _ : state) {
    net.step();
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineStepSyncSliced)->Range(2, 64)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  stig::bench::Report report("e6_geometry");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report.value("benchmarks_run", static_cast<std::uint64_t>(ran));
  report.value("note",
               std::string("per-benchmark timings: rerun with "
                           "--benchmark_format=json"));
  return 0;
}
