// Shared helpers for the figure-reproduction and evaluation binaries.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "geom/vec.hpp"
#include "obs/json.hpp"
#include "par/batch_runner.hpp"
#include "par/seed.hpp"
#include "sim/rng.hpp"

namespace stig::bench {

/// Per-case seed for sweep row `index` of a bench rooted at `root`. Every
/// repetition gets its own derived stream (no per-process seed reuse
/// across rows), and the derivation is index-keyed, so a row's seed never
/// depends on how many rows ran before it — which is what lets `batch_map`
/// fan rows out without changing any number.
[[nodiscard]] inline std::uint64_t case_seed(std::uint64_t root,
                                             std::uint64_t index) {
  return par::derive_seed(root, index);
}

/// Worker threads for `batch_map`: the STIG_BENCH_JOBS environment
/// variable (0 = all cores); unset or empty means 1 (sequential-equivalent
/// — the same pool, one worker).
[[nodiscard]] inline std::size_t batch_jobs() {
  const char* env = std::getenv("STIG_BENCH_JOBS");
  if (env == nullptr || *env == '\0') return 1;
  return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
}

/// Runs `fn(0) .. fn(count-1)` across a BatchRunner pool with
/// `batch_jobs()` workers and returns the results in index order. Sweep
/// bodies must derive all randomness from `case_seed` (or other
/// index-keyed seeds) — then the emitted rows are byte-identical at any
/// STIG_BENCH_JOBS, and the JSON artifact stays comparable to baselines
/// regenerated at a different job count.
template <typename Fn>
[[nodiscard]] auto batch_map(std::size_t count, Fn&& fn) {
  par::BatchRunner runner(par::BatchOptions{.jobs = batch_jobs()});
  return runner.map(count, std::forward<Fn>(fn));
}

/// Scatters n pairwise-separated points in a box, deterministically.
inline std::vector<geom::Vec2> scatter(std::size_t n, std::uint64_t seed,
                                       double extent = 30.0,
                                       double min_gap = 3.0) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-extent, extent),
                       rng.uniform(-extent, extent)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < min_gap) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

/// Random payload bytes, deterministic.
inline std::vector<std::uint8_t> payload(std::size_t len,
                                         std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

/// Machine-readable bench output: collects headline values and every table
/// row a bound `Table` prints, and writes `BENCH_<name>.json` on
/// destruction (or an explicit `write()`), so each bench run leaves a
/// structured artifact next to its human-readable stdout.
class Report {
 public:
  explicit Report(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;
  ~Report() { write(); }

  /// Records one headline scalar (e.g. "null_sink_overhead_pct").
  void value(const std::string& key, double v) {
    values_.emplace_back(key, obs::json_number(v));
  }
  void value(const std::string& key, std::uint64_t v) {
    values_.emplace_back(key, std::to_string(v));
  }
  void value(const std::string& key, const std::string& v) {
    values_.emplace_back(key, obs::json_quote(v));
  }
  /// Bare JSON boolean — `stigreport` expects e.g. `"alloc_tracking":
  /// false` unquoted (the same shape stigperf emits).
  void value(const std::string& key, bool v) {
    values_.emplace_back(key, v ? "true" : "false");
  }

  /// Starts a new table section; returns its index for `add_row`.
  std::size_t table(std::string title, std::vector<std::string> columns) {
    tables_.push_back(
        TableData{std::move(title), std::move(columns), {}});
    return tables_.size() - 1;
  }

  /// Appends one row of already-JSON-rendered cells to table `index`.
  void add_row(std::size_t index, std::vector<std::string> json_cells) {
    tables_.at(index).rows.push_back(std::move(json_cells));
  }

  /// Writes `BENCH_<name>.json` in the working directory. Idempotent;
  /// returns false on I/O failure (reported once on stderr).
  bool write() {
    if (written_) return true;
    written_ = true;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "could not write " << path << "\n";
      return false;
    }
    out << "{\n  \"bench\": " << obs::json_quote(name_)
        << ",\n  \"wall_seconds\": " << obs::json_number(wall)
        << ",\n  \"values\": {";
    for (std::size_t i = 0; i < values_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "    "
          << obs::json_quote(values_[i].first) << ": " << values_[i].second;
    }
    out << (values_.empty() ? "" : "\n  ") << "},\n  \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const TableData& td = tables_[t];
      out << (t == 0 ? "\n" : ",\n") << "    {\"title\": "
          << obs::json_quote(td.title) << ", \"columns\": [";
      for (std::size_t c = 0; c < td.columns.size(); ++c) {
        out << (c == 0 ? "" : ", ") << obs::json_quote(td.columns[c]);
      }
      out << "], \"rows\": [";
      for (std::size_t r = 0; r < td.rows.size(); ++r) {
        out << (r == 0 ? "\n" : ",\n") << "      [";
        for (std::size_t c = 0; c < td.rows[r].size(); ++c) {
          out << (c == 0 ? "" : ", ") << td.rows[r][c];
        }
        out << "]";
      }
      out << (td.rows.empty() ? "" : "\n    ") << "]}";
    }
    out << (tables_.empty() ? "" : "\n  ") << "]\n}\n";
    if (!out) {
      std::cerr << "could not write " << path << "\n";
      return false;
    }
    std::cout << "wrote " << path << "\n";
    return true;
  }

 private:
  struct TableData {
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<TableData> tables_;
  bool written_ = false;
};

/// Minimal fixed-width table printer for paper-style result rows. When
/// bound to a `Report`, every row is also recorded in the JSON artifact.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14)
      : width_(width) {
    print_header(headers);
  }

  /// Prints *and* records: rows go to stdout and to `report`'s JSON under
  /// a table section named `title`.
  Table(std::vector<std::string> headers, Report& report, std::string title,
        int width = 14)
      : width_(width), report_(&report) {
    table_index_ = report.table(std::move(title), headers);
    print_header(headers);
  }

  template <typename... Ts>
  void row(const Ts&... cells) {
    ((std::cout << std::setw(width_) << fmt(cells)), ...);
    std::cout << '\n';
    if (report_ != nullptr) {
      report_->add_row(table_index_, {json(cells)...});
    }
  }

 private:
  void print_header(const std::vector<std::string>& headers) {
    for (const auto& h : headers) std::cout << std::setw(width_) << h;
    std::cout << '\n';
    for (std::size_t i = 0; i < headers.size(); ++i) {
      std::cout << std::setw(width_) << std::string(width_ - 2, '-');
    }
    std::cout << '\n';
  }

  static std::string fmt(double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
  }
  static std::string fmt(const std::string& s) { return s; }
  static std::string fmt(const char* s) { return s; }
  template <typename T>
  static std::string fmt(T v) {
    return std::to_string(v);
  }

  static std::string json(double v) { return obs::json_number(v); }
  static std::string json(const std::string& s) {
    return obs::json_quote(s);
  }
  static std::string json(const char* s) { return obs::json_quote(s); }
  static std::string json(bool v) { return v ? "true" : "false"; }
  template <typename T>
  static std::string json(T v) {
    return std::to_string(v);
  }

  int width_;
  Report* report_ = nullptr;
  std::size_t table_index_ = 0;
};

}  // namespace stig::bench
