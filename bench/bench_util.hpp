// Shared helpers for the figure-reproduction and evaluation binaries.
#pragma once

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "geom/vec.hpp"
#include "sim/rng.hpp"

namespace stig::bench {

/// Scatters n pairwise-separated points in a box, deterministically.
inline std::vector<geom::Vec2> scatter(std::size_t n, std::uint64_t seed,
                                       double extent = 30.0,
                                       double min_gap = 3.0) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-extent, extent),
                       rng.uniform(-extent, extent)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < min_gap) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

/// Random payload bytes, deterministic.
inline std::vector<std::uint8_t> payload(std::size_t len,
                                         std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

/// Minimal fixed-width table printer for paper-style result rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14)
      : width_(width) {
    for (const auto& h : headers) std::cout << std::setw(width_) << h;
    std::cout << '\n';
    for (std::size_t i = 0; i < headers.size(); ++i) {
      std::cout << std::setw(width_) << std::string(width_ - 2, '-');
    }
    std::cout << '\n';
  }

  template <typename... Ts>
  void row(const Ts&... cells) {
    ((std::cout << std::setw(width_) << fmt(cells)), ...);
    std::cout << '\n';
  }

 private:
  static std::string fmt(double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
  }
  static std::string fmt(const std::string& s) { return s; }
  static std::string fmt(const char* s) { return s; }
  template <typename T>
  static std::string fmt(T v) {
    return std::to_string(v);
  }

  int width_;
};

}  // namespace stig::bench
