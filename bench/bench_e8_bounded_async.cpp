// E8 — the bounded Async2 variant (Section 4.1 closing remark). The basic
// protocol drifts the two robots apart forever; the paper suggests
// alternating directions (with shrinking steps to avoid collision). Our
// banded realization bounces inside a fixed band. This bench compares
// footprint growth, minimum separation (collision check) and delivery.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/chat_network.hpp"

int main() {
  using namespace stig;
  std::cout << "== E8: unbounded vs banded Async2 ==\n\n";

  bench::Report report("e8_bounded_async");
  const auto msg = bench::payload(8, 3);
  bench::Table t({"variant", "instants run", "final gap", "max |pos|",
                  "min separation", "delivered"},
                 report, "unbounded vs banded");

  const std::vector<bool> variants = {false, true};
  struct Row {
    sim::Time instants;
    double gap, max_pos, min_sep;
    bool ok;
  };
  const std::vector<Row> rows =
      bench::batch_map(variants.size(), [&](std::size_t i) {
        core::ChatNetworkOptions opt;
        opt.synchrony = core::Synchrony::asynchronous;
        opt.async2_banded = variants[i];
        opt.seed = bench::case_seed(7, i);  // One stream per variant.
        opt.record_positions = true;
        core::ChatNetwork net({geom::Vec2{-2, 0}, geom::Vec2{2, 0}}, opt);
        net.send(0, 1, msg);
        net.send(1, 0, msg);
        const bool ok = net.run_until_quiescent(5'000'000);
        net.run(5000);  // Idle a long while after: footprint keeps moving?
        double max_pos = 0.0;
        for (const auto& config : net.engine().trace().positions()) {
          for (const auto& p : config) max_pos = std::max(max_pos, p.norm());
        }
        net.run(64);
        const std::size_t delivered =
            net.received(0).size() + net.received(1).size();
        return Row{net.engine().now(),
                   geom::dist(net.engine().positions()[0],
                              net.engine().positions()[1]),
                   max_pos, net.engine().trace().min_separation(),
                   ok && delivered == 2};
      });
  for (std::size_t i = 0; i < variants.size(); ++i) {
    t.row(variants[i] ? "banded" : "unbounded", rows[i].instants,
          rows[i].gap, rows[i].max_pos, rows[i].min_sep,
          rows[i].ok ? "2/2" : "FAIL");
  }

  std::cout << "\nexpected shape: both variants deliver everything and "
               "never collide (min separation > 0); the unbounded variant "
               "ends far from the origin and keeps drifting, the banded "
               "variant's footprint stays within the initial separation "
               "band (max |pos| ~ separation) — resolving the drawback "
               "the paper notes, without the infinitesimally small "
               "movements its 1/x-shrinking suggestion needs.\n\n";

  std::cout << "banded variant, footprint vs idle time (it must stay put):\n";
  bench::Table t2({"extra idle instants", "gap", "max |pos|"}, report,
                  "idle drift");
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::asynchronous;
  opt.async2_banded = true;
  opt.seed = 9;
  core::ChatNetwork net({geom::Vec2{-2, 0}, geom::Vec2{2, 0}}, opt);
  for (int k = 0; k < 4; ++k) {
    net.run(20'000);
    double max_pos = 0.0;
    for (const auto& p : net.engine().positions()) {
      max_pos = std::max(max_pos, p.norm());
    }
    t2.row(net.engine().now(),
           geom::dist(net.engine().positions()[0],
                      net.engine().positions()[1]),
           max_pos);
  }
  std::cout << "\nexpected shape: constant-order gap and position bound "
               "no matter how long the robots idle.\n";
  return 0;
}
