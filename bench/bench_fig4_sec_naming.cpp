// F4 — Figure 4 reproduction: the SEC-based relative naming. For a
// 12-robot configuration, prints the smallest enclosing circle, robot r's
// horizon line H_r, and the labels 0..11 assigned by sweeping the SEC radii
// clockwise from H_r (ties on a radius ordered from the center O outward).
#include <iostream>

#include "bench_util.hpp"
#include "geom/angle.hpp"
#include "geom/sec.hpp"
#include "proto/naming.hpp"
#include "viz/figures.hpp"

int main() {
  using namespace stig;
  std::cout << "== F4: Figure 4 — relative naming from the smallest "
               "enclosing circle ==\n\n";

  // A configuration in the spirit of the figure: some robots share a
  // radius so the distance-from-O tie-break is exercised.
  std::vector<geom::Vec2> pts = bench::scatter(9, 77, 20.0, 3.0);
  pts.push_back(pts[4] * 0.5);          // Same radius as robot 4... roughly:
  pts.back() = pts[4] * 0.45;           // exactly collinear with O below.
  const geom::Circle sec0 = geom::smallest_enclosing_circle(pts);
  // Put two extra robots exactly on robot 0's SEC radius.
  const geom::Vec2 dir0 = (pts[0] - sec0.center).normalized();
  pts.push_back(sec0.center + dir0 * (0.35 * geom::dist(pts[0], sec0.center)));
  pts.push_back(sec0.center + dir0 * (0.7 * geom::dist(pts[0], sec0.center)));

  const geom::Circle sec = geom::smallest_enclosing_circle(pts);
  std::cout << "SEC: center O = (" << std::fixed << std::setprecision(3)
            << sec.center.x << ", " << sec.center.y
            << "), radius = " << sec.radius << "\n";
  const auto support = geom::sec_support(pts, sec);
  std::cout << "support robots on the SEC boundary:";
  for (std::size_t s : support) std::cout << ' ' << s;
  std::cout << "\n\n";

  const std::size_t r = 0;
  const auto naming = proto::relative_naming(pts, r);
  std::cout << "robot " << r << "'s horizon direction H_r = ("
            << naming.reference.x << ", " << naming.reference.y << ")\n\n";

  bench::Report report("fig4_sec_naming");
  bench::Table t({"robot", "cw angle (deg)", "dist from O", "rank by r"},
                 report, "sec naming");
  for (std::size_t j = 0; j < pts.size(); ++j) {
    const geom::Vec2 rel = pts[j] - sec.center;
    const double ang =
        rel.norm() > 1e-9
            ? geom::clockwise_angle(naming.reference, rel) * 180.0 /
                  geom::kPi
            : 0.0;
    t.row(j, ang, rel.norm(), naming.ranks[j]);
  }
  viz::SwarmDrawing what;
  what.voronoi = false;
  what.granulars = false;
  what.sec = true;
  what.horizon_of = r;
  what.naming = proto::NamingMode::relative;
  viz::SvgScene fig = viz::draw_swarm(pts, what);
  if (fig.write("figure4_sec_naming.svg")) {
    std::cout << "\nwrote figure4_sec_naming.svg (SEC + horizon line)\n";
  }

  std::cout << "\nnote the robots sharing robot 0's radius: they take the "
               "first labels, ordered from O outward — exactly the "
               "figure's numbering rule (robot r itself is rank "
            << naming.ranks[r] << ", not necessarily 0).\n";
  return 0;
}
