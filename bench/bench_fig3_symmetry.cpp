// F3 — Figure 3 reproduction: a symmetric configuration where six robots
// cannot agree on a common direction or naming, yet the relative (per-robot)
// naming still enables one-to-one communication.
#include <iostream>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "geom/angle.hpp"
#include "proto/naming.hpp"

int main() {
  using namespace stig;
  std::cout << "== F3: Figure 3 — symmetric configuration, no common "
               "naming, relative naming still delivers ==\n\n";

  // Six robots on a regular hexagon: for every robot there is another with
  // the same view, so no deterministic common labeling can exist.
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 6; ++i) {
    const double a = geom::kTwoPi * i / 6.0;
    pts.push_back(geom::Vec2{8 * std::cos(a), 8 * std::sin(a)});
  }

  std::cout << "relative rank tables (row r = how robot r labels robots "
               "0..5):\n";
  bench::Report report("fig3_symmetry");
  bench::Table t({"robot", "r0", "r1", "r2", "r3", "r4", "r5"}, report,
                 "relative rank tables", 8);
  for (std::size_t r = 0; r < 6; ++r) {
    const auto naming = proto::relative_naming(pts, r);
    t.row(r, naming.ranks[0], naming.ranks[1], naming.ranks[2],
          naming.ranks[3], naming.ranks[4], naming.ranks[5]);
  }
  std::cout << "\nthe rows are all different permutations (no common "
               "naming), but each row is computable by *every* robot, "
               "which is all decoding needs.\n\n";

  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;  // Anonymous, no compass.
  core::ChatNetwork net(pts, opt);
  std::cout << "every robot messages its antipode simultaneously...\n";
  for (std::size_t i = 0; i < 6; ++i) {
    const std::vector<std::uint8_t> m{static_cast<std::uint8_t>(0xA0 + i)};
    net.send(i, (i + 3) % 6, m);
  }
  net.run_until_quiescent(100'000);
  net.run(2);

  bool all = true;
  for (std::size_t i = 0; i < 6; ++i) {
    const auto& got = net.received((i + 3) % 6);
    const bool ok = got.size() == 1 && got[0].from == i &&
                    got[0].payload[0] == 0xA0 + i;
    all = all && ok;
    std::cout << "  robot " << (i + 3) % 6 << " <- robot " << i << ": "
              << (ok ? "delivered" : "FAILED") << "\n";
  }
  std::cout << (all ? "\nall six antipodal messages delivered despite the "
                      "symmetry.\n"
                    : "\nFAILURE\n");
  return all ? 0 : 1;
}
