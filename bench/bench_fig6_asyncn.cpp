// F6 — Figure 6 reproduction: the AsyncN granular sliced into n+1 slices,
// with the extra slice kappa on the robot's horizon line serving as the
// idle/separator lane. Prints the slicing for one robot and runs a full
// asynchronous message among n robots.
#include <iostream>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "geom/angle.hpp"
#include "geom/granular.hpp"
#include "geom/voronoi.hpp"
#include "proto/naming.hpp"
#include "viz/figures.hpp"

int main() {
  using namespace stig;
  std::cout << "== F6: Figure 6 — AsyncN granular slicing with the kappa "
               "slice ==\n\n";

  bench::Report report("fig6_asyncn");
  const std::size_t n = 5;
  const auto pts = bench::scatter(n, 321, 20.0, 4.0);
  const std::size_t r = 2;
  const auto naming = proto::relative_naming(pts, r);
  const geom::Granular g(pts[r], geom::granular_radius(pts, r), n + 1,
                         naming.reference);

  std::cout << "robot " << r << ": granular radius " << std::fixed
            << std::setprecision(3) << g.radius() << ", " << n + 1
            << " diameters (2(n+1) = " << 2 * (n + 1) << " slices)\n";
  std::cout << "diameter 0 = kappa, on H_r = (" << naming.reference.x << ", "
            << naming.reference.y << ") — not assigned to any robot; "
            << "diameter k+1 addresses the robot of rank k:\n";
  for (std::size_t d = 0; d <= n; ++d) {
    const geom::Vec2 dir = g.direction(d, geom::DiameterSide::positive);
    std::cout << "  diameter " << d << " -> (" << std::setw(6) << dir.x
              << ", " << std::setw(6) << dir.y << ")  "
              << (d == 0 ? "[kappa: idle/separator lane]"
                         : "[addresses rank " + std::to_string(d - 1) + "]")
              << "\n";
  }

  viz::SwarmDrawing what;
  what.voronoi = true;
  what.diameters = n + 1;
  what.naming = proto::NamingMode::relative;
  what.sec = true;
  what.horizon_of = r;
  viz::SvgScene fig = viz::draw_swarm(pts, what);
  if (fig.write("figure6_asyncn.svg")) {
    std::cout << "\nwrote figure6_asyncn.svg (n+1-sliced granulars, kappa "
                 "on each horizon line)\n";
  }

  std::cout << "\nfull asynchronous message among " << n << " robots:\n";
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::asynchronous;
  opt.activation_probability = 0.5;
  opt.seed = 5;
  core::ChatNetwork net(pts, opt);
  const auto msg = bench::payload(2, 6);
  net.send(2, 4, msg);
  const bool ok = net.run_until_quiescent(3'000'000);
  net.run(256);
  std::cout << "robot 2 -> robot 4, 2-byte payload: "
            << (ok && net.received(4).size() == 1 &&
                        net.received(4)[0].payload == msg
                    ? "delivered"
                    : "FAILED")
            << " after " << net.engine().now() << " instants\n";
  std::cout << "bits signaled: " << net.stats(2).bits_sent
            << " (each waits for every robot to be observed changing "
               "twice, twice — the Lemma 4.1 double-ack)\n";
  std::cout << "idle robots moved " << net.engine().trace().stats(0).moves
            << " times on their kappa lanes (Remark 4.3: an active robot "
               "always moves)\n";
  report.value("instants", net.engine().now());
  report.value("delivered", std::string(ok ? "true" : "false"));
  report.value("bits_sent", net.stats(2).bits_sent);
  report.value("idle_robot_moves", net.engine().trace().stats(0).moves);
  return 0;
}
