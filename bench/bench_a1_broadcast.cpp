// A1 — one-to-all ablation. The paper claims the protocols "can be easily
// adapted to implement efficiently one-to-many or one-to-all explicit
// communication": compare n-1 sequential unicasts against the broadcast
// lane (the sender's own diameter), in instants and in sender distance.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "core/multicast.hpp"
#include "encode/framing.hpp"

int main() {
  using namespace stig;
  std::cout << "== A1: one-to-all — n-1 unicasts vs the broadcast lane ==\n\n";

  bench::Report report("a1_broadcast");
  const auto msg = bench::payload(8, 7);
  bench::Table t({"n", "unicast instants", "broadcast instants", "speedup",
                  "uni dist", "bc dist"},
                 report, "unicasts vs broadcast");
  const std::vector<std::size_t> sizes = {3u, 4u, 8u, 16u, 32u};
  struct Row {
    sim::Time uni_instants, bc_instants;
    double uni_dist, bc_dist;
    bool ok;
  };
  const std::vector<Row> rows =
      bench::batch_map(sizes.size(), [&](std::size_t i) {
        const std::size_t n = sizes[i];
        const auto pts = bench::scatter(n, 800 + n, 50.0, 3.0);
        core::ChatNetworkOptions opt;
        opt.synchrony = core::Synchrony::synchronous;
        opt.caps.sense_of_direction = true;

        core::ChatNetwork uni(pts, opt);
        for (std::size_t j = 1; j < n; ++j) uni.send(0, j, msg);
        uni.run_until_quiescent(1'000'000);

        core::ChatNetwork bc(pts, opt);
        bc.broadcast(0, msg);
        bc.run_until_quiescent(1'000'000);
        bc.run(2);
        std::size_t delivered = 0;
        for (std::size_t j = 1; j < n; ++j) {
          delivered += bc.received(j).size();
        }
        return Row{uni.engine().now(), bc.engine().now() - 2,
                   uni.engine().trace().stats(0).distance,
                   bc.engine().trace().stats(0).distance,
                   delivered == n - 1};
      });
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (!rows[i].ok) {
      std::cout << "BROADCAST FAILED at n=" << sizes[i] << "\n";
      return 1;
    }
    t.row(sizes[i], rows[i].uni_instants, rows[i].bc_instants,
          static_cast<double>(rows[i].uni_instants) /
              static_cast<double>(rows[i].bc_instants),
          rows[i].uni_dist, rows[i].bc_dist);
  }
  std::cout << "\nexpected shape: unicast cost grows linearly in n "
               "(sequential frames), broadcast stays constant — a speedup "
               "of exactly n-1, in both time and energy (distance).\n\n";

  std::cout << "one-to-many: k unicasts vs one multicast envelope "
               "(n = 16, 8-byte payload):\n";
  {
    const auto mpts = bench::scatter(16, 850, 50.0, 3.0);
    core::ChatNetworkOptions mopt;
    mopt.synchrony = core::Synchrony::synchronous;
    mopt.caps.sense_of_direction = true;
    bench::Table tm({"recipients k", "k unicasts", "1 multicast"}, report,
                    "multicast");
    const std::vector<std::size_t> group_sizes = {1u, 2u, 4u, 8u, 15u};
    struct McRow {
      sim::Time uni, mc;
      bool ok;
    };
    const std::vector<McRow> mc_rows =
        bench::batch_map(group_sizes.size(), [&](std::size_t i) {
          const std::size_t k = group_sizes[i];
          core::ChatNetwork uni_net(mpts, mopt);
          for (std::size_t r = 1; r <= k; ++r) uni_net.send(0, r, msg);
          uni_net.run_until_quiescent(1'000'000);

          core::ChatNetwork mc_net(mpts, mopt);
          core::MulticastService mc(mc_net);
          std::vector<sim::RobotIndex> group;
          for (std::size_t r = 1; r <= k; ++r) group.push_back(r);
          mc.multicast(0, group, msg);
          mc_net.run_until_quiescent(1'000'000);
          mc_net.run(2);
          mc.poll();
          std::size_t got = 0;
          for (std::size_t r = 1; r <= k; ++r) {
            got += mc.group_received(r).size();
          }
          return McRow{uni_net.engine().now(), mc_net.engine().now(),
                       got == k};
        });
    for (std::size_t i = 0; i < group_sizes.size(); ++i) {
      if (!mc_rows[i].ok) {
        std::cout << "MULTICAST FAILED at k=" << group_sizes[i] << "\n";
        return 1;
      }
      tm.row(group_sizes[i], mc_rows[i].uni, mc_rows[i].mc);
    }
    std::cout << "\nexpected shape: unicast cost linear in k; the multicast "
                 "envelope (frame + tag + n-bit recipient bitmap) is "
                 "constant in k — it overtakes unicast from k = 2 on.\n\n";
  }

  std::cout << "asynchronous broadcast (AsyncN, 4 robots):\n";
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::asynchronous;
  opt.seed = 5;
  const auto pts = bench::scatter(4, 99, 30.0, 4.0);
  core::ChatNetwork uni(pts, opt);
  for (std::size_t j = 1; j < 4; ++j) uni.send(0, j, bench::payload(2, 1));
  uni.run_until_quiescent(10'000'000);
  core::ChatNetwork bc(pts, opt);
  bc.broadcast(0, bench::payload(2, 1));
  bc.run_until_quiescent(10'000'000);
  bench::Table t2({"mode", "instants"}, report, "modes");
  t2.row("3 unicasts", uni.engine().now());
  t2.row("1 broadcast", bc.engine().now());
  std::cout << "\nexpected shape: the asynchronous broadcast also saves the "
               "factor n-1 — the double-ack windows are paid once per bit "
               "instead of once per addressee.\n";
  return 0;
}
