// E1 — synchronous protocol costs. The paper states the synchronous
// protocols take 2 steps per bit and are silent; this bench measures
// instants/bit, sender distance/bit and idle movement across protocols and
// swarm sizes, confirming the shape: a flat 2 instants/bit independent of n.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "encode/framing.hpp"
#include "obs/sink.hpp"

namespace {

/// Steps/second of a full sync run with `sink` attached (nullptr = detached
/// fast path), best of three runs to damp scheduler noise. Used to measure
/// the telemetry dispatch overhead.
double steps_per_second(stig::obs::EventSink* sink) {
  using namespace stig;
  using Clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    opt.caps.visible_ids = true;
    opt.caps.sense_of_direction = true;
    core::ChatNetwork net(bench::scatter(8, 42, 40.0, 3.0), opt);
    if (sink != nullptr) net.attach_event_sink(sink);
    net.send(0, 7, bench::payload(64, 9));
    const Clock::time_point start = Clock::now();
    net.run_until_quiescent(1'000'000);
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();
    best = std::max(best, static_cast<double>(net.engine().now()) / secs);
  }
  return best;
}

}  // namespace

int main() {
  using namespace stig;
  std::cout << "== E1: steps & distance per bit, synchronous protocols ==\n\n";

  bench::Report report("e1_sync_cost");
  const auto msg = bench::payload(16, 3);
  const double frame_bits =
      static_cast<double>(encode::encode_frame(msg).size());

  bench::Table t({"protocol", "n", "instants/bit", "dist/bit", "idle moves"},
                 report, "per-bit costs");
  struct Case {
    const char* name;
    core::ChatNetworkOptions opt;
    std::size_t n;
  };
  std::vector<Case> cases;
  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    cases.push_back({"sync2 (3.1)", opt, 2});
  }
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    opt.caps.visible_ids = true;
    opt.caps.sense_of_direction = true;
    cases.push_back({"ids (3.2)", opt, n});
  }
  for (std::size_t n : {4u, 16u}) {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    opt.caps.sense_of_direction = true;
    cases.push_back({"lex (3.3)", opt, n});
  }
  for (std::size_t n : {4u, 16u}) {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    cases.push_back({"relative (3.4)", opt, n});
  }

  struct Row {
    double instants_per_bit, dist_per_bit;
    std::uint64_t idle_moves;
  };
  const std::vector<Row> rows =
      bench::batch_map(cases.size(), [&](std::size_t i) {
        const Case& c = cases[i];
        core::ChatNetwork net(bench::scatter(c.n, 100 + c.n, 40.0, 3.0),
                              c.opt);
        net.send(0, c.n - 1, msg);
        net.run_until_quiescent(1'000'000);
        const double instants = static_cast<double>(net.engine().now());
        // Sender distance per bit; idle moves measured on a non-sender.
        return Row{instants / frame_bits,
                   net.engine().trace().stats(0).distance / frame_bits,
                   net.engine().trace().stats(c.n - 1).moves};
      });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    t.row(cases[i].name, cases[i].n, rows[i].instants_per_bit,
          rows[i].dist_per_bit, rows[i].idle_moves);
  }

  std::cout << "\nexpected shape: 2.00 instants/bit for every protocol and "
               "every n (one excursion + one return); 0 idle moves "
               "(silent); distance/bit = 2 * amplitude, here sigma-limited "
               "and hence constant across protocols.\n";

  std::cout << "\nbyte-coding extension (Section 3.1 remark), sync2, same "
               "16-byte payload:\n";
  bench::Table t2({"bits/symbol", "instants", "instants/bit"}, report,
                  "byte coding");
  const std::vector<unsigned> symbol_bits = {1u, 2u, 4u, 8u};
  const std::vector<sim::Time> coding_rows =
      bench::batch_map(symbol_bits.size(), [&](std::size_t i) {
        core::ChatNetworkOptions opt;
        opt.synchrony = core::Synchrony::synchronous;
        opt.sync2_bits_per_symbol = symbol_bits[i];
        core::ChatNetwork net(bench::scatter(2, 7, 10.0, 4.0), opt);
        net.send(0, 1, msg);
        net.run_until_quiescent(100'000);
        return net.engine().now();
      });
  for (std::size_t i = 0; i < symbol_bits.size(); ++i) {
    t2.row(symbol_bits[i], coding_rows[i],
           static_cast<double>(coding_rows[i]) / frame_bits);
  }
  std::cout << "\nexpected shape: instants/bit = 2/bits_per_symbol — one "
               "movement now carries a whole symbol.\n";

  // Telemetry overhead: the engine pays one null check per step when no
  // sink is attached. Warm up once, then compare detached vs attached.
  std::cout << "\ntelemetry dispatch overhead (8 robots, 64-byte payload):\n";
  steps_per_second(nullptr);  // Warm-up: page in code and allocator state.
  const double base = steps_per_second(nullptr);
  obs::CountingSink counting;
  const double with_sink = steps_per_second(&counting);
  const double overhead_pct = 100.0 * (base / with_sink - 1.0);
  bench::Table t3({"sink", "steps/sec", "overhead %"}, report,
                  "telemetry overhead");
  t3.row("none", base, 0.0);
  t3.row("counting", with_sink, overhead_pct);
  report.value("null_sink_steps_per_sec", base);
  report.value("counting_sink_steps_per_sec", with_sink);
  report.value("null_sink_overhead_pct", overhead_pct);
  std::cout << "\nexpected shape: overhead well under 5% — the detached "
               "path is a single branch; the counting sink adds one "
               "virtual call per event.\n";
  return 0;
}
