// E1 — synchronous protocol costs. The paper states the synchronous
// protocols take 2 steps per bit and are silent; this bench measures
// instants/bit, sender distance/bit and idle movement across protocols and
// swarm sizes, confirming the shape: a flat 2 instants/bit independent of n.
#include <iostream>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "encode/framing.hpp"

int main() {
  using namespace stig;
  std::cout << "== E1: steps & distance per bit, synchronous protocols ==\n\n";

  const auto msg = bench::payload(16, 3);
  const double frame_bits =
      static_cast<double>(encode::encode_frame(msg).size());

  bench::Table t({"protocol", "n", "instants/bit", "dist/bit", "idle moves"});
  const auto run_case = [&](const char* name, core::ChatNetworkOptions opt,
                            std::size_t n) {
    core::ChatNetwork net(bench::scatter(n, 100 + n, 40.0, 3.0), opt);
    net.send(0, n - 1, msg);
    net.run_until_quiescent(1'000'000);
    const double instants = static_cast<double>(net.engine().now());
    // Sender distance per bit; idle moves measured on a non-sender.
    t.row(name, n, instants / frame_bits,
          net.engine().trace().stats(0).distance / frame_bits,
          net.engine().trace().stats(n - 1).moves -
              net.stats(n - 1).bits_decoded * 0);  // Non-senders never move.
  };

  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    run_case("sync2 (3.1)", opt, 2);
  }
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    opt.caps.visible_ids = true;
    opt.caps.sense_of_direction = true;
    run_case("ids (3.2)", opt, n);
  }
  for (std::size_t n : {4u, 16u}) {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    opt.caps.sense_of_direction = true;
    run_case("lex (3.3)", opt, n);
  }
  for (std::size_t n : {4u, 16u}) {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    run_case("relative (3.4)", opt, n);
  }

  std::cout << "\nexpected shape: 2.00 instants/bit for every protocol and "
               "every n (one excursion + one return); 0 idle moves "
               "(silent); distance/bit = 2 * amplitude, here sigma-limited "
               "and hence constant across protocols.\n";

  std::cout << "\nbyte-coding extension (Section 3.1 remark), sync2, same "
               "16-byte payload:\n";
  bench::Table t2({"bits/symbol", "instants", "instants/bit"});
  for (unsigned b : {1u, 2u, 4u, 8u}) {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    opt.sync2_bits_per_symbol = b;
    core::ChatNetwork net(bench::scatter(2, 7, 10.0, 4.0), opt);
    net.send(0, 1, msg);
    net.run_until_quiescent(100'000);
    const double instants = static_cast<double>(net.engine().now());
    t2.row(b, net.engine().now(), instants / frame_bits);
  }
  std::cout << "\nexpected shape: instants/bit = 2/bits_per_symbol — one "
               "movement now carries a whole symbol.\n";
  return 0;
}
