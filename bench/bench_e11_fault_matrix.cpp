// E11 — fault matrix. Quantifies the two recovery layers of src/fault:
//
//  (a) crash masking (paper Section 6 redundancy): a logical endpoint
//      backed by g physical robots survives crash-stop faults as long as
//      one group member lives. Sweeping crash count x group size shows the
//      threshold exactly — delivery holds iff crashes < g — and what the
//      redundancy costs in instants (the wedged lanes run to their stall
//      window, not to quiescence).
//  (b) ack-timeout retransmission: a lossy radio whose acks also vanish,
//      swept over retry budget x ack-loss. With a small budget messages
//      degrade onto the guaranteed motion channel; with a larger one the
//      radio recovers by itself. Either way nothing is lost — only the
//      split between "acked" and "degraded" moves.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "core/wireless.hpp"
#include "fault/fault_plan.hpp"
#include "fault/redundant_group.hpp"
#include "fault/reliable.hpp"

int main() {
  using namespace stig;
  std::cout << "== E11: crash masking and retransmission recovery ==\n\n";

  bench::Report report("e11_fault_matrix");
  bool ok = true;

  // --- (a) crash count x group size ------------------------------------
  const std::size_t n = 3;
  const std::vector<std::uint8_t> payload = bench::payload(2, 17);
  const std::size_t kReps = 5;

  std::cout << "crash masking (broadcast 0 -> all, sliced protocol, "
            << kReps << " reps):\n";
  bench::Table mask_t({"crashes", "group g", "delivered %", "mean instants"},
                      report, "crash masking");
  struct Cell {
    std::size_t delivered;
    double mean_instants;
  };
  std::vector<std::pair<std::size_t, std::size_t>> cells;  // (crashes, g)
  for (std::size_t c = 0; c <= 2; ++c) {
    for (std::size_t g = 1; g <= 3; ++g) cells.emplace_back(c, g);
  }
  const std::vector<Cell> mask_rows =
      bench::batch_map(cells.size(), [&](std::size_t idx) {
        const auto [crashes, g] = cells[idx];
        std::size_t delivered = 0;
        double instants = 0.0;
        for (std::size_t rep = 0; rep < kReps; ++rep) {
          const std::uint64_t seed = bench::case_seed(1100 + idx, rep);
          fault::RedundantOptions ropt;
          ropt.base.synchrony = core::Synchrony::synchronous;
          ropt.base.protocol = core::ProtocolKind::sliced;
          ropt.base.seed = seed;
          ropt.group_size = g;
          // Crash the *sender's* copy in the first `crashes` lanes, lane 0
          // included: masking must hold exactly when crashes < g. The
          // whole broadcast drains in ~64 instants here, so the crash
          // window [4, 28) is always mid-message.
          for (std::size_t l = 0; l < std::min(crashes, g); ++l) {
            ropt.plan.crashes.push_back({l * n + 0, 4 + seed % 24});
          }
          fault::RedundantChatNetwork net(
              bench::scatter(n, seed, 30.0, 4.0), ropt);
          net.broadcast(0, payload);
          const auto res = net.run_until_settled(30'000, 600, 4);
          instants += static_cast<double>(res.instants);
          bool all = true;
          for (std::size_t i = 1; i < n; ++i) {
            const auto& v = net.voted(i);
            if (v.size() != 1 || v[0].payload != payload) all = false;
          }
          if (all) ++delivered;
        }
        return Cell{delivered, instants / static_cast<double>(kReps)};
      });
  for (std::size_t idx = 0; idx < cells.size(); ++idx) {
    const auto [crashes, g] = cells[idx];
    mask_t.row(crashes, g,
               100.0 * static_cast<double>(mask_rows[idx].delivered) /
                   static_cast<double>(kReps),
               mask_rows[idx].mean_instants);
    // The threshold is exact: every rep delivers below it, none at or
    // above it (all crashed lanes lose their sender mid-message).
    const std::size_t expect = crashes < g ? kReps : 0;
    if (mask_rows[idx].delivered != expect) ok = false;
  }
  std::cout << "\nexpected shape: 100% exactly when crashes < g (a "
               "g-redundant group tolerates g-1 crash-stop members); a "
               "crashed sender silences its lane, so fully-crashed cells "
               "settle early with nothing delivered.\n\n";

  // --- (b) retry budget x ack loss -------------------------------------
  const std::size_t rn = 4;
  const int kMessages = 24;
  std::cout << "retransmission recovery (lossy radio + lossy acks, "
            << kMessages << " messages):\n";
  bench::Table rt_t({"retries", "ack loss", "acked %", "degraded %",
                     "attempts/msg", "received"},
                    report, "retransmission recovery");
  struct RtRow {
    double acked_pct;
    double degraded_pct;
    double attempts;
    std::size_t received;
    bool settled;
  };
  std::vector<std::pair<std::size_t, double>> rt_cells;
  for (std::size_t retries : {0, 1, 2, 4}) {
    for (double ack_loss : {0.2, 0.6}) rt_cells.emplace_back(retries, ack_loss);
  }
  const std::vector<RtRow> rt_rows =
      bench::batch_map(rt_cells.size(), [&](std::size_t idx) {
        const auto [retries, ack_loss] = rt_cells[idx];
        core::ChatNetworkOptions mopt;
        mopt.synchrony = core::Synchrony::synchronous;
        mopt.caps.sense_of_direction = true;
        mopt.seed = bench::case_seed(1200, idx);
        core::ChatNetwork motion(bench::scatter(rn, 601, 30.0, 4.0), mopt);
        core::WirelessOptions wopt;
        wopt.loss_probability = 0.3;
        wopt.seed = bench::case_seed(1201, idx);
        core::WirelessChannel radio(rn, wopt);
        fault::ReliableOptions opt;
        opt.max_retries = retries;
        opt.ack_loss_probability = ack_loss;
        opt.seed = bench::case_seed(1202, idx);
        fault::ReliableMessenger reliable(motion, radio, opt);
        for (int m = 0; m < kMessages; ++m) {
          reliable.send(m % rn, (m + 1) % rn, bench::payload(2, 900 + m));
        }
        const bool settled = reliable.run(2'000'000);
        std::size_t received = 0;
        for (std::size_t i = 0; i < rn; ++i) {
          received += reliable.received(i).size();
        }
        const fault::ReliableStats& s = reliable.stats();
        return RtRow{
            100.0 * static_cast<double>(s.acked) / kMessages,
            100.0 * static_cast<double>(s.degraded) / kMessages,
            static_cast<double>(s.radio_attempts) / kMessages,
            received, settled};
      });
  for (std::size_t idx = 0; idx < rt_cells.size(); ++idx) {
    const auto [retries, ack_loss] = rt_cells[idx];
    rt_t.row(retries, ack_loss, rt_rows[idx].acked_pct,
             rt_rows[idx].degraded_pct, rt_rows[idx].attempts,
             rt_rows[idx].received);
    if (!rt_rows[idx].settled ||
        rt_rows[idx].received != static_cast<std::size_t>(kMessages)) {
      ok = false;
      std::cerr << "error: cell retries=" << retries << " ack_loss="
                << ack_loss << " lost messages\n";
    }
  }
  std::cout << "\nexpected shape: every message arrives exactly once at "
               "every budget (dedup absorbs retransmitted duplicates); a "
               "bigger budget shifts deliveries from the motion backup to "
               "radio acks at the cost of extra attempts.\n";

  report.value("all_cells_ok", std::uint64_t{ok ? 1u : 0u});
  return ok ? 0 : 1;
}
