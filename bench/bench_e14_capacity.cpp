// E14 — serving-layer capacity: sessions/sec, messages/sec, saturation
// and memory-per-session for the stigd architecture.
//
// Part 1 drives one fixed workload (the same request sequence, derived
// from one root seed) through serve::ShardedRegistry at worker counts 1,
// 2, 4 and 8, measuring open throughput (sessions/sec), accepted-send
// throughput (messages/sec) and the saturation point — the worker count
// past which messages/sec stops improving. Throughputs are machine facts
// and carry `_per_sec` markers, so the regression gate records but never
// compares them. The *counts* — sessions opened, messages accepted,
// deliveries polled — are deterministic functions of (code, seed) and are
// identical at every worker count (the job-count invariance contract);
// those gate.
//
// Part 2 measures memory per session with obs::alloc_track on a direct,
// single-threaded SessionRegistry (the tracker's counters are
// thread-local, so the measurement must not cross BatchRunner workers):
// live bytes after opening K sessions, divided by K. Under sanitizers the
// tracker is inactive and the artifact records "alloc_tracking": false,
// which makes `stigreport diff` skip the byte-derived keys.
//
// The committed baseline is bench/baselines/BENCH_e14_capacity.json;
// CI regenerates the artifact and gates it with `stigreport diff`.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "obs/alloc_track.hpp"
#include "serve/session.hpp"
#include "serve/shard.hpp"
#include "serve/wire.hpp"

namespace {

using namespace stig;

constexpr std::uint64_t kRootSeed = 14;
constexpr std::size_t kSessions = 64;
constexpr std::size_t kRounds = 3;
constexpr std::size_t kShards = 8;

/// The fixed workload: open kSessions swarms, then kRounds rounds of
/// send + step + poll against every session. Returns the request batches
/// in the order the daemon would apply them.
std::vector<std::vector<serve::Request>> build_workload() {
  std::vector<std::vector<serve::Request>> batches;
  std::vector<serve::Request> opens;
  for (std::size_t s = 0; s < kSessions; ++s) {
    serve::Request open;
    open.verb = serve::Verb::open_session;
    open.seed = bench::case_seed(kRootSeed, s);
    open.robots = 2 + (s % 3);
    if (s % 2 == 1) open.flags |= serve::kOpenAsync;
    opens.push_back(open);
  }
  batches.push_back(std::move(opens));
  for (std::size_t round = 0; round < kRounds; ++round) {
    std::vector<serve::Request> batch;
    for (std::size_t s = 0; s < kSessions; ++s) {
      const std::uint64_t id = s + 1;  // Round-robin opens → ids 1..N.
      const std::uint64_t n = 2 + (s % 3);
      serve::Request send;
      send.verb = serve::Verb::send_message;
      send.session = id;
      send.from = (s + round) % n;
      send.to = (send.from + 1) % n;
      send.payload = {static_cast<std::uint8_t>(round),
                      static_cast<std::uint8_t>(s & 0xFF)};
      batch.push_back(send);
      serve::Request step;
      step.verb = serve::Verb::step;
      step.session = id;
      step.instants = 2000;
      batch.push_back(step);
      serve::Request poll;
      poll.verb = serve::Verb::poll_delivery;
      poll.session = id;
      poll.robot = send.to;
      batch.push_back(poll);
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct CapacityRow {
  std::size_t workers = 0;
  double open_wall_s = 0.0;
  double total_wall_s = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t opened = 0;
  std::uint64_t accepted = 0;
  std::uint64_t polled = 0;
};

CapacityRow run_at(std::size_t workers,
                   const std::vector<std::vector<serve::Request>>& work) {
  using Clock = std::chrono::steady_clock;
  serve::ShardedOptions options;
  options.shards = kShards;
  options.jobs = workers;
  serve::ShardedRegistry registry(options);

  CapacityRow row;
  row.workers = workers;
  const Clock::time_point t0 = Clock::now();
  Clock::time_point after_opens = t0;
  for (std::size_t b = 0; b < work.size(); ++b) {
    const auto responses = registry.apply_batch(work[b]);
    row.requests += responses.size();
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (responses[i].status != serve::Status::ok) continue;
      switch (responses[i].verb) {
        case serve::Verb::send_message: ++row.accepted; break;
        case serve::Verb::poll_delivery:
          row.polled += responses[i].deliveries.size();
          break;
        default: break;
      }
    }
    if (b == 0) after_opens = Clock::now();
  }
  row.opened = registry.sessions_opened();
  row.open_wall_s = std::chrono::duration<double>(after_opens - t0).count();
  row.total_wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return row;
}

}  // namespace

int main() {
  std::cout << "== E14: serving-layer capacity ==\n\n";
  bench::Report report("e14_capacity");

  const auto work = build_workload();

  // Part 1: throughput vs worker count.
  const std::vector<std::size_t> worker_counts{1, 2, 4, 8};
  const std::size_t table = report.table(
      "capacity vs workers",
      {"workers", "sessions_per_sec_open", "msgs_per_sec", "requests",
       "sessions_opened", "messages_accepted", "deliveries_polled"});
  std::cout << "workers  sessions/s  msgs/s      requests  opened  "
               "accepted  polled\n";
  std::vector<CapacityRow> rows;
  for (const std::size_t workers : worker_counts) {
    const CapacityRow row = run_at(workers, work);
    rows.push_back(row);
    const double sessions_per_sec =
        static_cast<double>(row.opened) / std::max(row.open_wall_s, 1e-9);
    const double msgs_per_sec = static_cast<double>(row.accepted) /
                                std::max(row.total_wall_s, 1e-9);
    std::printf("%7zu  %10.0f  %10.0f  %8llu  %6llu  %8llu  %6llu\n",
                workers, sessions_per_sec, msgs_per_sec,
                static_cast<unsigned long long>(row.requests),
                static_cast<unsigned long long>(row.opened),
                static_cast<unsigned long long>(row.accepted),
                static_cast<unsigned long long>(row.polled));
    report.add_row(
        table,
        {std::to_string(row.workers), obs::json_number(sessions_per_sec),
         obs::json_number(msgs_per_sec), std::to_string(row.requests),
         std::to_string(row.opened), std::to_string(row.accepted),
         std::to_string(row.polled)});
  }

  // The deterministic counts must agree across worker counts — that is
  // the invariance contract, re-checked here where the capacity numbers
  // are produced. Gate them once as headline values.
  bool invariant = true;
  for (const CapacityRow& row : rows) {
    if (row.opened != rows.front().opened ||
        row.accepted != rows.front().accepted ||
        row.polled != rows.front().polled) {
      invariant = false;
    }
  }
  std::cout << "\njob-count invariance: "
            << (invariant ? "identical counts at every width" : "VIOLATED")
            << "\n";
  report.value("invariant_counts", std::uint64_t{invariant ? 1u : 0u});
  report.value("capacity_sessions", rows.front().opened);
  report.value("capacity_requests", rows.front().requests);
  report.value("capacity_messages_accepted", rows.front().accepted);
  report.value("capacity_deliveries_polled", rows.front().polled);

  // Saturation: the smallest worker count within 5% of the best
  // messages/sec. Machine-dependent — the `_per_sec` marker keeps it
  // informational.
  double best = 0.0;
  for (const CapacityRow& row : rows) {
    best = std::max(best, static_cast<double>(row.accepted) /
                              std::max(row.total_wall_s, 1e-9));
  }
  std::size_t saturation = worker_counts.back();
  for (const CapacityRow& row : rows) {
    const double rate = static_cast<double>(row.accepted) /
                        std::max(row.total_wall_s, 1e-9);
    if (rate >= 0.95 * best) {
      saturation = row.workers;
      break;
    }
  }
  std::cout << "saturation: " << saturation << " worker(s) reach 95% of "
            << "peak msgs/sec\n";
  report.value("saturation_workers_msgs_per_sec",
               std::uint64_t{saturation});

  // Part 2: memory per session, single-threaded (alloc counters are
  // thread-local; crossing BatchRunner workers would mis-attribute).
  {
    serve::SessionRegistry registry;
    const obs::alloc::Counters before = obs::alloc::snapshot();
    for (std::size_t s = 0; s < kSessions; ++s) {
      serve::Request open;
      open.verb = serve::Verb::open_session;
      open.seed = bench::case_seed(kRootSeed, s);
      open.robots = 2 + (s % 3);
      if ((void)registry.apply(open); registry.live_sessions() != s + 1) {
        std::cerr << "open failed at session " << s << "\n";
        return 1;
      }
    }
    const obs::alloc::Counters after = obs::alloc::snapshot();
    const bool tracking = obs::alloc::active();
    const std::int64_t live_delta = after.live_bytes - before.live_bytes;
    const std::uint64_t per_session =
        live_delta > 0
            ? static_cast<std::uint64_t>(live_delta) / kSessions
            : 0;
    std::cout << "\nmemory: " << kSessions << " session(s), "
              << live_delta << " live byte(s) total, " << per_session
              << " byte(s)/session"
              << (tracking ? "" : " [alloc tracking off]") << "\n";
    report.value("alloc_tracking", tracking);
    report.value("session_live_bytes_per_session", per_session);
  }

  // Part 3: fault isolation. One session's state is transiently damaged
  // (a planted poll cursor, as docs/STABILIZATION.md's serve section
  // describes); the registry must quarantine exactly that session, keep
  // its sibling serving, and clear the tombstone on close. Deterministic
  // by construction — the damage is planted, not raced.
  {
    obs::MetricsRegistry metrics;
    serve::SessionRegistry registry;
    registry.attach_metrics(&metrics);
    serve::Request open;
    open.verb = serve::Verb::open_session;
    open.seed = bench::case_seed(kRootSeed, 9001);
    open.robots = 2;
    const std::uint64_t victim = registry.apply(open).session;
    const std::uint64_t witness = registry.apply(open).session;

    registry.session(victim)->corrupt_poll_cursor(0, 1u << 20);
    serve::Request poll;
    poll.verb = serve::Verb::poll_delivery;
    poll.session = victim;
    poll.robot = 0;
    const bool quarantined =
        registry.apply(poll).status == serve::Status::poisoned;
    // Tombstone: every verb but close keeps answering poisoned.
    serve::Request step;
    step.verb = serve::Verb::step;
    step.session = victim;
    step.instants = 8;
    const bool tombstoned =
        registry.apply(step).status == serve::Status::poisoned;
    // Isolation: the sibling session never notices.
    step.session = witness;
    const bool isolated = registry.apply(step).status == serve::Status::ok;
    // Acknowledgment: close clears the tombstone; the id then answers
    // not_found like any other closed session.
    serve::Request close;
    close.verb = serve::Verb::close_session;
    close.session = victim;
    const bool acked = registry.apply(close).status == serve::Status::ok;
    poll.session = victim;
    const bool retired =
        registry.apply(poll).status == serve::Status::not_found;

    const std::uint64_t poisoned = registry.sessions_poisoned();
    const std::uint64_t counted =
        metrics.counter("serve.sessions_poisoned").value();
    const bool isolation_held = quarantined && tombstoned && isolated &&
                                acked && retired && poisoned == 1 &&
                                counted == poisoned;
    std::cout << "\npoison: " << poisoned << " session(s) quarantined, "
              << "isolation " << (isolation_held ? "held" : "VIOLATED")
              << "\n";
    report.value("sessions_poisoned", poisoned);
    report.value("poison_isolation_held", isolation_held);
    if (!isolation_held) return 1;
  }

  return invariant ? 0 : 1;
}
