// E15 — self-stabilization under transient *state* corruption. Where A3
// teleports robots (position faults), E15 scrambles the mutable state
// machines themselves — protocol phase counters, the bit cursor of the
// frame in flight, FrameParser assembly state, geometry-derived naming
// tables — one transient hit per run, across every protocol, and measures
// the two stabilization numbers docs/STABILIZATION.md defines:
//
//   convergence — instants from the corruption to the next correct
//                 delivery (the probe message witnesses recovery);
//   silence     — movement-signal-free instants at the tail of the run
//                 (a recovered swarm goes quiet and stays quiet).
//
// Every gated value is a deterministic function of (code, seed): how many
// corruptions applied, how many runs reconverged, whether the probe landed,
// and the convergence/silence totals. Wall-clock appears nowhere — drift
// in any gated number is a stabilization regression, not machine noise.
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "obs/report.hpp"
#include "proto/common.hpp"

int main() {
  using namespace stig;
  std::cout << "== E15: convergence and silence after transient state "
               "corruption ==\n\n";

  struct Cell {
    const char* name;
    core::ProtocolKind kind;
    bool synchronous;
    std::size_t n;
  };
  // Modest swarm sizes: the matrix is about the protocol x target grid,
  // not scale (E13 owns scale). Async cells are the expensive ones.
  const std::vector<Cell> cells = {
      {"sync2", core::ProtocolKind::sync2, true, 2},
      {"sliced", core::ProtocolKind::sliced, true, 4},
      {"ksegment", core::ProtocolKind::ksegment, true, 4},
      {"async2", core::ProtocolKind::async2, false, 2},
      {"asyncn", core::ProtocolKind::asyncn, false, 3},
  };
  const std::vector<std::pair<const char*, proto::CorruptKind>> targets = {
      {"phase", proto::CorruptKind::phase},
      {"cursor", proto::CorruptKind::cursor},
      {"parser", proto::CorruptKind::parser},
      {"naming", proto::CorruptKind::naming},
  };
  constexpr std::size_t kTrials = 2;

  struct Row {
    std::uint64_t applied = 0;
    bool reconverged = false;
    std::uint64_t convergence = 0;
    std::uint64_t silence = 0;
    bool probe_delivered = false;
  };

  const std::size_t total = cells.size() * targets.size() * kTrials;
  const std::vector<Row> rows = bench::batch_map(total, [&](std::size_t idx) {
    const Cell& cell = cells[idx / (targets.size() * kTrials)];
    const std::size_t rest = idx % (targets.size() * kTrials);
    const proto::CorruptKind kind = targets[rest / kTrials].second;
    const std::size_t trial = rest % kTrials;

    const std::uint64_t seed = bench::case_seed(15, idx);
    const auto pts = bench::scatter(cell.n, seed, 30.0, 4.0);
    core::ChatNetworkOptions opt;
    opt.synchrony = cell.synchronous ? core::Synchrony::synchronous
                                     : core::Synchrony::asynchronous;
    opt.protocol = cell.kind;
    opt.seed = seed;
    core::ChatNetwork net(pts, opt);

    // One transient hit early in the first transfer: a 3-byte frame keeps
    // every protocol busy well past these instants, so the corruption
    // always lands on a live state machine.
    const auto victim = static_cast<sim::RobotIndex>((trial + idx) % cell.n);
    const sim::Time at = cell.synchronous
                             ? static_cast<sim::Time>(4 + 3 * trial)
                             : static_cast<sim::Time>(50 + 60 * trial);
    net.schedule_corruption(victim, at, kind);

    const std::uint64_t budget = cell.synchronous ? 100'000 : 1'500'000;
    const std::uint64_t settle = cell.synchronous ? 8 : 512;
    net.send(0, 1, bench::payload(3, seed));
    Row row;
    bool q = net.run_until_quiescent(budget);
    if (q) net.run(static_cast<sim::Time>(settle));
    // The probe witnesses recovery: its delivery is what the convergence
    // clock stops on when the corrupted transfer itself was lost.
    const std::size_t before = net.received(1).size();
    net.send(0, 1, bench::payload(3, seed ^ 0xE15));
    q = net.run_until_quiescent(budget) && q;
    if (q) net.run(static_cast<sim::Time>(settle));
    row.probe_delivered = net.received(1).size() > before;

    const obs::RunReport r = net.report();
    row.applied = r.corruptions_applied;
    row.reconverged = r.reconverged;
    row.convergence = r.convergence_instants;
    row.silence = r.silence_rounds;
    return row;
  });

  bench::Report report("e15_stabilization");
  bench::Table t({"protocol", "target", "trial", "applied", "reconverged",
                  "convergence", "silence", "probe"},
                 report, "protocol x corruption-target matrix");
  std::uint64_t applied = 0, reconverged = 0, probes = 0;
  std::uint64_t conv_total = 0, conv_max = 0, silence_total = 0;
  for (std::size_t idx = 0; idx < total; ++idx) {
    const Cell& cell = cells[idx / (targets.size() * kTrials)];
    const std::size_t rest = idx % (targets.size() * kTrials);
    const char* target = targets[rest / kTrials].first;
    const Row& row = rows[idx];
    t.row(cell.name, target, rest % kTrials, row.applied,
          row.reconverged ? "yes" : "NO", row.convergence, row.silence,
          row.probe_delivered ? "delivered" : "LOST");
    applied += row.applied;
    reconverged += row.reconverged ? 1 : 0;
    probes += row.probe_delivered ? 1 : 0;
    conv_total += row.convergence;
    conv_max = std::max(conv_max, row.convergence);
    silence_total += row.silence;
  }

  report.value("runs", total);
  report.value("corruptions_applied", applied);
  report.value("reconverged_runs", reconverged);
  report.value("probe_delivered_runs", probes);
  report.value("convergence_instants_total", conv_total);
  report.value("convergence_instants_max", conv_max);
  report.value("silence_rounds_total", silence_total);

  std::cout << "\nexpected shape: every corruption applies, every run "
               "reconverges and delivers the probe — a single transient "
               "hit costs at most the frame in flight. Convergence is "
               "bounded by one retransmission; silence shows the swarm "
               "quiet at the tail of every run.\n";
  return 0;
}
