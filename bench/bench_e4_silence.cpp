// E4 — silence and energy. Section 5: "a communication protocol [is]
// silent when a robot eventually moves [only] if it has some message to
// transmit... The protocols proposed with synchronous settings are clearly
// silent. Our asynchronous solutions are not silent (Remark 4.3)."
// This bench measures idle movement and idle distance for every protocol.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/chat_network.hpp"

int main() {
  using namespace stig;
  std::cout << "== E4: silence — movement while no message is pending ==\n\n";

  bench::Report report("e4_silence");
  const sim::Time kIdleInstants = 2000;
  bench::Table t({"protocol", "idle moves/robot", "idle dist/robot",
                  "silent?"},
                 report, "idle movement");

  struct Case {
    const char* name;
    core::ChatNetworkOptions opt;
    std::size_t n;
  };
  std::vector<Case> cases;
  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    cases.push_back({"sync2 (3.1)", opt, 2});
  }
  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    opt.caps.visible_ids = true;
    opt.caps.sense_of_direction = true;
    cases.push_back({"sliced ids (3.2)", opt, 8});
  }
  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    cases.push_back({"sliced rel (3.4)", opt, 8});
  }
  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    opt.caps.sense_of_direction = true;
    opt.protocol = core::ProtocolKind::ksegment;
    cases.push_back({"ksegment (5)", opt, 8});
  }
  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::asynchronous;
    cases.push_back({"async2 (4.1)", opt, 2});
  }
  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::asynchronous;
    cases.push_back({"asyncn (4.2)", opt, 8});
  }
  // The two asynchronous rows draw their scheduler streams from distinct
  // derived seeds (historically both reused the process-wide seed 3).
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (cases[i].opt.synchrony == core::Synchrony::asynchronous) {
      cases[i].opt.seed = bench::case_seed(3, i);
    }
  }

  struct Row {
    double moves, dist;
  };
  const std::vector<Row> rows =
      bench::batch_map(cases.size(), [&](std::size_t i) {
        const Case& c = cases[i];
        core::ChatNetwork net(bench::scatter(c.n, 500 + c.n, 30.0, 4.0),
                              c.opt);
        net.run(kIdleInstants);  // Nobody ever sends.
        double moves = 0.0;
        double dist = 0.0;
        for (std::size_t j = 0; j < c.n; ++j) {
          moves += static_cast<double>(net.engine().trace().stats(j).moves);
          dist += net.engine().trace().stats(j).distance;
        }
        return Row{moves / static_cast<double>(c.n),
                   dist / static_cast<double>(c.n)};
      });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    t.row(cases[i].name, rows[i].moves, rows[i].dist,
          rows[i].moves == 0.0 ? "yes" : "no");
  }

  std::cout << "\nexpected shape: all synchronous protocols are silent "
               "(0 idle moves); both asynchronous protocols move at every "
               "activation (~p * instants moves per robot) — the energy "
               "cost of the implicit acknowledgment mechanism, and the "
               "open problem the paper closes with.\n";
  return 0;
}
