// E4 — silence and energy. Section 5: "a communication protocol [is]
// silent when a robot eventually moves [only] if it has some message to
// transmit... The protocols proposed with synchronous settings are clearly
// silent. Our asynchronous solutions are not silent (Remark 4.3)."
// This bench measures idle movement and idle distance for every protocol.
#include <iostream>

#include "bench_util.hpp"
#include "core/chat_network.hpp"

int main() {
  using namespace stig;
  std::cout << "== E4: silence — movement while no message is pending ==\n\n";

  bench::Report report("e4_silence");
  const sim::Time kIdleInstants = 2000;
  bench::Table t({"protocol", "idle moves/robot", "idle dist/robot",
                  "silent?"},
                 report, "idle movement");

  const auto run_case = [&](const char* name, core::ChatNetworkOptions opt,
                            std::size_t n) {
    core::ChatNetwork net(bench::scatter(n, 500 + n, 30.0, 4.0), opt);
    net.run(kIdleInstants);  // Nobody ever sends.
    double moves = 0.0;
    double dist = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      moves += static_cast<double>(net.engine().trace().stats(i).moves);
      dist += net.engine().trace().stats(i).distance;
    }
    moves /= static_cast<double>(n);
    dist /= static_cast<double>(n);
    t.row(name, moves, dist, moves == 0.0 ? "yes" : "no");
  };

  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    run_case("sync2 (3.1)", opt, 2);
  }
  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    opt.caps.visible_ids = true;
    opt.caps.sense_of_direction = true;
    run_case("sliced ids (3.2)", opt, 8);
  }
  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    run_case("sliced rel (3.4)", opt, 8);
  }
  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    opt.caps.sense_of_direction = true;
    opt.protocol = core::ProtocolKind::ksegment;
    run_case("ksegment (5)", opt, 8);
  }
  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::asynchronous;
    opt.seed = 3;
    run_case("async2 (4.1)", opt, 2);
  }
  {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::asynchronous;
    opt.seed = 3;
    run_case("asyncn (4.2)", opt, 8);
  }

  std::cout << "\nexpected shape: all synchronous protocols are silent "
               "(0 idle moves); both asynchronous protocols move at every "
               "activation (~p * instants moves per robot) — the energy "
               "cost of the implicit acknowledgment mechanism, and the "
               "open problem the paper closes with.\n";
  return 0;
}
