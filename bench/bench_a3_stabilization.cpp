// A3 — stabilization ablation. Injects transient position faults
// (teleports) at increasing rates and measures how much traffic survives,
// with and without the stream-resynchronization rule. Extends the paper's
// Section 5 stabilization remark from a sketch to a measurement.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "geom/voronoi.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace stig;
  std::cout << "== A3: delivery under transient position faults ==\n\n";

  const std::size_t n = 6;
  const auto pts = bench::scatter(n, 1000, 30.0, 4.0);
  std::vector<double> radius(n);
  for (std::size_t i = 0; i < n; ++i) {
    radius[i] = geom::granular_radius(pts, i);
  }

  // Send `rounds` messages; between messages, fault `faults_per_round`
  // random robots to random points inside their granulars. Fault draws
  // come from `fault_seed` — one derived stream per sweep row (historically
  // every row reused the process-wide seed 77).
  const auto run_with_faults = [&](int faults_per_round,
                                   std::uint64_t fault_seed) {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    opt.caps.sense_of_direction = true;
    core::ChatNetwork net(pts, opt);
    sim::Rng rng(fault_seed);
    const int rounds = 20;
    int delivered = 0;
    for (int r = 0; r < rounds; ++r) {
      for (int f = 0; f < faults_per_round; ++f) {
        const auto victim =
            static_cast<std::size_t>(rng.uniform_int(0, n - 1));
        const double rho = rng.uniform(0.1, 0.9) * radius[victim];
        const double ang = rng.uniform(0.0, 6.28318);
        net.engine().teleport(victim,
                              pts[victim] + geom::Vec2{rho * std::cos(ang),
                                                       rho * std::sin(ang)});
      }
      // Let self-healing settle: walking home across a granular of radius
      // R takes up to R/sigma instants, then 3 quiet instants trigger the
      // receivers' stream resync.
      net.run(60);
      const std::size_t from = static_cast<std::size_t>(r) % n;
      const std::size_t to = (from + 2) % n;
      const std::size_t before = net.received(to).size();
      net.send(from, to, bench::payload(4, static_cast<std::uint64_t>(r)));
      net.run_until_quiescent(100'000);
      net.run(4);
      if (net.received(to).size() > before) ++delivered;
    }
    return 100.0 * delivered / rounds;
  };

  bench::Report report("a3_stabilization");
  bench::Table t({"faults/round", "delivered %"}, report,
                 "delivery vs fault rate");
  const std::vector<int> fault_rates = {0, 1, 2, 5, 10};
  const std::vector<double> rates =
      bench::batch_map(fault_rates.size(), [&](std::size_t i) {
        return run_with_faults(fault_rates[i], bench::case_seed(77, i));
      });
  for (std::size_t i = 0; i < fault_rates.size(); ++i) {
    t.row(fault_rates[i], rates[i]);
  }

  std::cout << "\nexpected shape: 100% delivery at every fault rate — each "
               "fault costs at most the frames in flight when it strikes "
               "(here none: faults land between messages), because robots "
               "walk back to their rest positions and receivers "
               "resynchronize streams at the 3-instant quiet gap.\n\n";

  // Fault DURING a transmission: the in-flight frame may be lost, but the
  // system recovers by the next frame.
  std::cout << "fault injected mid-frame (worst case):\n";
  bench::Table t2({"trial", "frame 1 (hit)", "frame 2 (after)"}, report,
                  "mid-frame faults");
  struct TrialRow {
    bool first, second;
  };
  const std::vector<TrialRow> trials =
      bench::batch_map(5, [&](std::size_t trial) {
        core::ChatNetworkOptions opt;
        opt.synchrony = core::Synchrony::synchronous;
        opt.caps.sense_of_direction = true;
        core::ChatNetwork net(pts, opt);
        net.send(0, 3, bench::payload(16, 1));
        net.run(10 + 2 * static_cast<sim::Time>(trial));  // Mid-frame...
        net.engine().teleport(0,
                              pts[0] + geom::Vec2{0.5 * radius[0], 0.01});
        net.run_until_quiescent(100'000);
        net.run(8);
        const bool first = net.received(3).size() == 1;
        net.send(0, 3, bench::payload(16, 2));
        net.run_until_quiescent(100'000);
        net.run(4);
        const bool second = net.received(3).size() >= (first ? 2u : 1u);
        return TrialRow{first, second};
      });
  for (std::size_t trial = 0; trial < trials.size(); ++trial) {
    t2.row(trial, trials[trial].first ? "delivered" : "lost (CRC)",
           trials[trial].second ? "delivered" : "LOST");
  }
  std::cout << "\nexpected shape: the frame struck by the fault may be lost "
               "(its CRC rejects the garbled bits) but the *next* frame "
               "always arrives — transient faults do not leave permanent "
               "damage.\n";
  return 0;
}
