// E2 — asynchronous acknowledgment overhead. Each asynchronous bit costs
// two Lemma 4.1 double-ack windows ("observed every robot change twice"),
// so the per-bit instant count should scale like ~1/p with the activation
// probability and grow with n (more robots to observe). This bench sweeps
// both.
#include <cstdint>
#include <iostream>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "encode/framing.hpp"

int main() {
  using namespace stig;
  std::cout << "== E2: asynchronous implicit-ack overhead ==\n\n";

  bench::Report report("e2_async_ack");
  const auto msg = bench::payload(4, 11);
  const double frame_bits =
      static_cast<double>(encode::encode_frame(msg).size());

  std::cout << "Async2 (Section 4.1): instants per bit vs activation "
               "probability p\n";
  bench::Table t({"p", "instants", "instants/bit", "sender acts/bit"},
                 report, "async2 vs p");
  const std::vector<double> probs = {0.1, 0.2, 0.3, 0.5, 0.7, 0.9};
  struct PRow {
    sim::Time instants;
    std::uint64_t sender_acts;
  };
  const std::vector<PRow> prows =
      bench::batch_map(probs.size(), [&](std::size_t i) {
        core::ChatNetworkOptions opt;
        opt.synchrony = core::Synchrony::asynchronous;
        opt.activation_probability = probs[i];
        opt.seed = bench::case_seed(17, i);  // One stream per row.
        core::ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{8, 0}}, opt);
        net.send(0, 1, msg);
        net.run_until_quiescent(10'000'000);
        return PRow{net.engine().now(), net.stats(0).activations};
      });
  for (std::size_t i = 0; i < probs.size(); ++i) {
    t.row(probs[i], prows[i].instants,
          static_cast<double>(prows[i].instants) / frame_bits,
          static_cast<double>(prows[i].sender_acts) / frame_bits);
  }
  std::cout << "\nexpected shape: instants/bit grows as p falls — each ack "
               "window needs the peer observed changing twice — with the "
               "1/p growth capped by the scheduler's fairness bound.\n\n";

  std::cout << "AsyncN (Section 4.2): instants per bit vs n (p = 0.5)\n";
  bench::Table t2({"n", "instants", "instants/bit"}, report, "asyncn vs n");
  const std::vector<std::size_t> swarm_sizes = {2u, 3u, 4u, 6u, 8u};
  const std::vector<sim::Time> nrows =
      bench::batch_map(swarm_sizes.size(), [&](std::size_t i) {
        const std::size_t n = swarm_sizes[i];
        core::ChatNetworkOptions opt;
        opt.synchrony = core::Synchrony::asynchronous;
        opt.protocol = core::ProtocolKind::asyncn;  // Same protocol at n=2.
        opt.activation_probability = 0.5;
        opt.seed = bench::case_seed(23, i);
        core::ChatNetwork net(bench::scatter(n, 50 + n, 30.0, 4.0), opt);
        net.send(0, n - 1, msg);
        net.run_until_quiescent(10'000'000);
        return net.engine().now();
      });
  for (std::size_t i = 0; i < swarm_sizes.size(); ++i) {
    t2.row(swarm_sizes[i], nrows[i],
           static_cast<double>(nrows[i]) / frame_bits);
  }
  std::cout << "\nexpected shape: per-bit cost grows slowly with n — the "
               "sender must observe *every* robot change twice per window, "
               "so the window closes at the pace of the slowest robot "
               "(max of n-1 geometric waits).\n\n";

  std::cout << "scheduler comparison (Async2, 4-byte message):\n";
  bench::Table t3({"scheduler", "instants", "instants/bit"}, report,
                  "schedulers");
  const std::vector<std::pair<const char*, core::SchedulerKind>> scheds = {
      {"bernoulli p=.5", core::SchedulerKind::bernoulli},
      {"centralized", core::SchedulerKind::centralized},
      {"ksubset k=1", core::SchedulerKind::ksubset},
      {"adversarial", core::SchedulerKind::adversarial}};
  const std::vector<sim::Time> srows =
      bench::batch_map(scheds.size(), [&](std::size_t i) {
        core::ChatNetworkOptions opt;
        opt.synchrony = core::Synchrony::asynchronous;
        opt.scheduler = scheds[i].second;
        opt.activation_probability = 0.5;
        opt.fairness_bound = 32;
        opt.seed = bench::case_seed(29, i);
        core::ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{8, 0}}, opt);
        net.send(0, 1, msg);
        net.run_until_quiescent(10'000'000);
        return net.engine().now();
      });
  for (std::size_t i = 0; i < scheds.size(); ++i) {
    t3.row(scheds[i].first, srows[i],
           static_cast<double>(srows[i]) / frame_bits);
  }
  std::cout << "\nexpected shape: the round-robin centralized schedule is "
               "ack-optimal (every activation of one robot is observed by "
               "the other's next activation); the random one-at-a-time "
               "subset schedule pays for irregular gaps; the adversarial "
               "schedule pushes every ack window to the fairness bound "
               "and costs an order of magnitude more.\n";
  return 0;
}
