// E2 — asynchronous acknowledgment overhead. Each asynchronous bit costs
// two Lemma 4.1 double-ack windows ("observed every robot change twice"),
// so the per-bit instant count should scale like ~1/p with the activation
// probability and grow with n (more robots to observe). This bench sweeps
// both.
#include <iostream>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "encode/framing.hpp"

int main() {
  using namespace stig;
  std::cout << "== E2: asynchronous implicit-ack overhead ==\n\n";

  bench::Report report("e2_async_ack");
  const auto msg = bench::payload(4, 11);
  const double frame_bits =
      static_cast<double>(encode::encode_frame(msg).size());

  std::cout << "Async2 (Section 4.1): instants per bit vs activation "
               "probability p\n";
  bench::Table t({"p", "instants", "instants/bit", "sender acts/bit"},
                 report, "async2 vs p");
  for (double p : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::asynchronous;
    opt.activation_probability = p;
    opt.seed = 17;
    core::ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{8, 0}}, opt);
    net.send(0, 1, msg);
    net.run_until_quiescent(10'000'000);
    t.row(p, net.engine().now(),
          static_cast<double>(net.engine().now()) / frame_bits,
          static_cast<double>(net.stats(0).activations) / frame_bits);
  }
  std::cout << "\nexpected shape: instants/bit grows as p falls — each ack "
               "window needs the peer observed changing twice — with the "
               "1/p growth capped by the scheduler's fairness bound.\n\n";

  std::cout << "AsyncN (Section 4.2): instants per bit vs n (p = 0.5)\n";
  bench::Table t2({"n", "instants", "instants/bit"}, report, "asyncn vs n");
  for (std::size_t n : {2u, 3u, 4u, 6u, 8u}) {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::asynchronous;
    opt.protocol = core::ProtocolKind::asyncn;  // Same protocol at n=2 too.
    opt.activation_probability = 0.5;
    opt.seed = 23;
    core::ChatNetwork net(bench::scatter(n, 50 + n, 30.0, 4.0), opt);
    net.send(0, n - 1, msg);
    net.run_until_quiescent(10'000'000);
    t2.row(n, net.engine().now(),
           static_cast<double>(net.engine().now()) / frame_bits);
  }
  std::cout << "\nexpected shape: per-bit cost grows slowly with n — the "
               "sender must observe *every* robot change twice per window, "
               "so the window closes at the pace of the slowest robot "
               "(max of n-1 geometric waits).\n\n";

  std::cout << "scheduler comparison (Async2, 4-byte message):\n";
  bench::Table t3({"scheduler", "instants", "instants/bit"}, report,
                  "schedulers");
  const auto sched_case = [&](const char* name, core::SchedulerKind k) {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::asynchronous;
    opt.scheduler = k;
    opt.activation_probability = 0.5;
    opt.fairness_bound = 32;
    opt.seed = 29;
    core::ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{8, 0}}, opt);
    net.send(0, 1, msg);
    net.run_until_quiescent(10'000'000);
    t3.row(name, net.engine().now(),
           static_cast<double>(net.engine().now()) / frame_bits);
  };
  sched_case("bernoulli p=.5", core::SchedulerKind::bernoulli);
  sched_case("centralized", core::SchedulerKind::centralized);
  sched_case("ksubset k=1", core::SchedulerKind::ksubset);
  sched_case("adversarial", core::SchedulerKind::adversarial);
  std::cout << "\nexpected shape: the round-robin centralized schedule is "
               "ack-optimal (every activation of one robot is observed by "
               "the other's next activation); the random one-at-a-time "
               "subset schedule pays for irregular gaps; the adversarial "
               "schedule pushes every ack window to the fairness bound "
               "and costs an order of magnitude more.\n";
  return 0;
}
