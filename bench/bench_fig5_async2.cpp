// F5 — Figure 5 reproduction: asynchronous one-to-one communication for two
// robots. Robot r sends "001...", robot r' sends "0...": the trace shows the
// marches along the horizon line H, the East/West excursions coding the
// bits, and the implicit acknowledgments pacing the exchange.
#include <iostream>

#include "bench_util.hpp"
#include "geom/line.hpp"
#include "proto/async2.hpp"
#include "sim/engine.hpp"
#include "viz/figures.hpp"

int main() {
  using namespace stig;
  std::cout << "== F5: Figure 5 — Protocol Async2, r sends raw bits "
               "\"001\", r' sends \"0\" ==\n\n";

  bench::Report report("fig5_async2");

  // Drive the protocol robots directly (no framing) so the trace shows the
  // exact bits of the figure. send_message would frame them; instead we
  // observe the decoded-bit stream via the excursion classifier below.
  const geom::Vec2 p0{0, 0};
  const geom::Vec2 p1{6, 0};
  std::vector<sim::RobotSpec> specs{{.position = p0, .sigma = 0.25},
                                    {.position = p1, .sigma = 0.25}};
  proto::Async2Options aopt;
  aopt.sigma_local = 0.25;
  auto r = std::make_unique<proto::Async2Robot>(aopt);
  auto rp = std::make_unique<proto::Async2Robot>(aopt);
  // Frame "001" and "0" as single bytes via raw 8-bit payloads is framed
  // anyway; for figure purposes we send 1-byte payloads whose leading wire
  // bits match: any payload works — the *shape* (march/excurse/return) is
  // what the figure shows.
  r->send_message(1, bench::payload(1, 5));
  rp->send_message(1, bench::payload(1, 9));
  auto* r_raw = r.get();
  auto* rp_raw = rp.get();
  std::vector<std::unique_ptr<sim::Robot>> programs;
  programs.push_back(std::move(r));
  programs.push_back(std::move(rp));
  sim::EngineOptions eopt;
  eopt.record_positions = true;
  sim::Engine engine(specs, std::move(programs),
                     std::make_unique<sim::BernoulliScheduler>(0.5, 3, 32),
                     eopt);
  while ((!r_raw->send_queue_empty() || !rp_raw->send_queue_empty()) &&
         engine.now() < 200'000) {
    engine.step();
  }
  engine.run(64);

  const geom::Line h = geom::Line::through(p0, p1);
  const auto& hist = engine.trace().positions();
  std::cout << "timeline (sampled every 16 instants; E/W = excursion side "
               "w.r.t. each robot's own North):\n";
  std::cout << "t        r offset   r' offset   phase glyphs\n";
  for (std::size_t t = 0; t < hist.size(); t += 16) {
    const double o0 = h.signed_offset(hist[t][0]);
    const double o1 = h.signed_offset(hist[t][1]);
    const auto glyph = [](double o) {
      if (o > 1e-7) return "excursion(+)";
      if (o < -1e-7) return "excursion(-)";
      return "on H (march)";
    };
    std::cout << std::setw(6) << t << "  " << std::setw(9) << std::fixed
              << std::setprecision(3) << o0 << "  " << std::setw(9) << o1
              << "    r:" << glyph(o0) << "  r':" << glyph(o1) << "\n";
    if (t / 16 > 24) {
      std::cout << "   ...\n";
      break;
    }
  }

  {
    viz::SvgScene fig;
    viz::draw_trajectories(fig, engine.trace().positions());
    if (fig.write("figure5_async2.svg")) {
      std::cout << "\nwrote figure5_async2.svg (both trajectories: marches "
                   "along H, East/West excursions)\n";
    }
  }

  std::cout << "\nresult: r delivered "
            << (r_raw->send_queue_empty() ? "its byte" : "NOTHING")
            << ", r' delivered "
            << (rp_raw->send_queue_empty() ? "its byte" : "NOTHING")
            << " in " << engine.now() << " instants.\n";
  std::cout << "inbox of r: " << r_raw->take_inbox().size()
            << " message(s); inbox of r': " << rp_raw->take_inbox().size()
            << " message(s)\n";
  const double gap = geom::dist(engine.positions()[0], engine.positions()[1]);
  std::cout << "final separation along H grew from 6 to " << gap
            << " — the Section 4.1 drift the paper notes (see E8 for the "
               "bounded variant).\n";
  report.value("instants", engine.now());
  report.value("final_separation", gap);
  return 0;
}
