// E5 — fault tolerance. The paper's Section 1 motivation quantified:
// a lossy/jammed/faulty radio alone loses messages; with the motion
// channel as a backup, delivery returns to 100%. Also demonstrates the
// Section 3.4 redundancy: every robot overhears every motion message.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/backup_channel.hpp"
#include "core/chat_network.hpp"
#include "core/wireless.hpp"

int main() {
  using namespace stig;
  std::cout << "== E5: wireless-only vs hybrid (motion backup) delivery ==\n\n";

  const std::size_t n = 6;
  const int kMessages = 60;

  bench::Report report("e5_fault_tolerance");
  bench::Table t({"loss prob", "radio-only %", "hybrid %", "fallbacks"},
                 report, "delivery vs loss");
  const std::vector<double> losses = {0.0, 0.1, 0.3, 0.5, 0.8, 1.0};
  struct Row {
    int radio_delivered;
    std::size_t hybrid_delivered;
    std::uint64_t fallbacks;
    bool flushed;
  };
  const std::vector<Row> rows =
      bench::batch_map(losses.size(), [&](std::size_t i) {
        // Each loss row draws its own radio stream (historically every row
        // reused the process-wide seed 41).
        core::WirelessOptions wopt;
        wopt.loss_probability = losses[i];
        wopt.seed = bench::case_seed(41, i);

        // Radio-only.
        core::WirelessChannel radio_only(n, wopt);
        int radio_delivered = 0;
        for (int m = 0; m < kMessages; ++m) {
          if (radio_only
                  .transmit(0, m % n, (m + 1) % n, bench::payload(2, m))
                  .delivered) {
            ++radio_delivered;
          }
        }

        // Hybrid.
        core::ChatNetworkOptions mopt;
        mopt.synchrony = core::Synchrony::synchronous;
        mopt.caps.sense_of_direction = true;
        core::ChatNetwork motion(bench::scatter(n, 600, 30.0, 4.0), mopt);
        core::WirelessChannel radio(n, wopt);
        core::HybridMessenger hybrid(motion, radio);
        for (int m = 0; m < kMessages; ++m) {
          hybrid.send(m % n, (m + 1) % n, bench::payload(2, m));
        }
        // flush() returns whether the motion channel drained; a false here
        // means the fallback path silently under-delivered and the hybrid
        // column is measuring an unfinished run.
        const bool flushed = hybrid.flush(10'000'000);
        motion.run(2);
        std::size_t hybrid_delivered = 0;
        for (std::size_t j = 0; j < n; ++j) {
          hybrid_delivered += hybrid.received(j).size();
        }
        return Row{radio_delivered, hybrid_delivered,
                   hybrid.stats().motion_fallbacks, flushed};
      });
  bool all_flushed = true;
  for (std::size_t i = 0; i < losses.size(); ++i) {
    t.row(losses[i], 100.0 * rows[i].radio_delivered / kMessages,
          100.0 * static_cast<double>(rows[i].hybrid_delivered) / kMessages,
          rows[i].fallbacks);
    if (!rows[i].flushed) {
      all_flushed = false;
      std::cerr << "error: hybrid flush did not reach quiescence at loss "
                << losses[i] << "\n";
    }
  }
  report.value("all_flushed", std::uint64_t{all_flushed ? 1u : 0u});
  std::cout << "\nexpected shape: radio-only delivery = 1 - loss; hybrid "
               "stays at 100% regardless, every drop recovered over the "
               "movement-signal channel.\n\n";

  std::cout << "redundancy by eavesdropping (motion channel, one message "
               "0 -> 1):\n";
  core::ChatNetworkOptions mopt;
  mopt.synchrony = core::Synchrony::synchronous;
  mopt.caps.sense_of_direction = true;
  core::ChatNetwork motion(bench::scatter(n, 600, 30.0, 4.0), mopt);
  motion.send(0, 1, bench::payload(4, 99));
  motion.run_until_quiescent(1'000'000);
  motion.run(2);
  std::size_t copies = motion.received(1).size();
  for (std::size_t j = 2; j < n; ++j) copies += motion.overheard(j).size();
  std::cout << "  decodable copies in the swarm: " << copies << " (1 "
            << "addressee + " << n - 2
            << " eavesdroppers) — any robot can replay the message if the "
               "addressee's sensors later fail.\n";
  return all_flushed ? 0 : 1;
}
