// A2 — sensor resolution ablation (Section 5 round-off discussion). Sweeps
// the observation grid and measures delivery rates for the 2n-slice
// protocol vs the k-segment variant: the crossover where fine slicing
// becomes unreadable while wide slices survive is exactly the situation
// the paper invents k-segment addressing for.
#include <array>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/chat_network.hpp"

int main() {
  using namespace stig;
  std::cout << "== A2: delivery vs sensor grid — 2n slices vs k-segment ==\n\n";

  const std::size_t n = 32;
  const std::size_t kPairs = 10;
  const auto pts = bench::scatter(n, 900, 60.0, 3.0);

  const auto run_pairs = [&](core::ChatNetworkOptions opt) {
    core::ChatNetwork net(pts, opt);
    for (std::size_t p = 0; p < kPairs; ++p) {
      net.send(p, n - 1 - p, bench::payload(4, p));
    }
    net.run_until_quiescent(500'000);
    net.run(2);
    std::size_t delivered = 0;
    for (std::size_t p = 0; p < kPairs; ++p) {
      delivered += net.received(n - 1 - p).size();
    }
    return 100.0 * static_cast<double>(delivered) /
           static_cast<double>(kPairs);
  };

  bench::Report report("a2_quantization");
  bench::Table t({"grid q", "amp/q", "2n slices %", "k=2 %", "k=5 %"},
                 report, "delivery vs grid");
  const std::vector<double> grids = {0.001, 0.01, 0.02, 0.05, 0.1, 0.2};
  const std::vector<std::array<double, 3>> rows =
      bench::batch_map(grids.size(), [&](std::size_t i) {
        core::ChatNetworkOptions flat;
        flat.synchrony = core::Synchrony::synchronous;
        flat.caps.sense_of_direction = true;
        flat.sigma = 1.0;  // Signal amplitude 0.8.
        flat.observation_quantum = grids[i];

        core::ChatNetworkOptions k2 = flat;
        k2.protocol = core::ProtocolKind::ksegment;
        k2.ksegment_k = 2;
        core::ChatNetworkOptions k5 = flat;
        k5.protocol = core::ProtocolKind::ksegment;
        k5.ksegment_k = 5;

        return std::array<double, 3>{run_pairs(flat), run_pairs(k2),
                                     run_pairs(k5)};
      });
  for (std::size_t i = 0; i < grids.size(); ++i) {
    t.row(grids[i], 0.8 / grids[i], rows[i][0], rows[i][1], rows[i][2]);
  }

  std::cout << "\nexpected shape: the 2n-slice column degrades first as the "
               "grid coarsens (slice half-width pi/64 needs amp/q >> 64/pi);"
               " k=2 (slice width pi/3) keeps delivering one-to-two orders "
               "of magnitude deeper into the sweep, k=5 in between — the "
               "Section 5 resolution/steps trade-off, measured.\n";
  return 0;
}
