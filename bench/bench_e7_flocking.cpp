// E7 — the Section 5 flocking remark, quantified: the swarm drifts at a
// common velocity while chatting; receivers subtract the agreed movement.
// Sweeps the flock speed and verifies delivery stays intact while the
// convoy covers real ground; also shows the price: flocking forfeits the
// silence property.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/chat_network.hpp"

int main() {
  using namespace stig;
  std::cout << "== E7: communicating while flocking ==\n\n";

  const std::size_t n = 5;
  const auto start = bench::scatter(n, 700, 15.0, 4.0);
  const auto msg = bench::payload(8, 1);

  bench::Report report("e7_flocking");
  bench::Table t({"flock speed", "delivered", "instants", "convoy travel",
                  "drift error"},
                 report, "delivery while flocking");
  const std::vector<double> speeds = {0.0, 0.02, 0.05, 0.1, 0.2};
  struct Row {
    std::string delivered;
    sim::Time instants;
    double travel, max_err;
  };
  const std::vector<Row> rows =
      bench::batch_map(speeds.size(), [&](std::size_t idx) {
        const double speed = speeds[idx];
        core::ChatNetworkOptions opt;
        opt.synchrony = core::Synchrony::synchronous;
        opt.caps.sense_of_direction = true;
        opt.flock_velocity = geom::Vec2{speed, speed / 2};
        opt.sigma = 1.0;  // Covers drift + signal.
        core::ChatNetwork net(start, opt);
        for (std::size_t i = 1; i < n; ++i) net.send(0, i, msg);
        const bool ok = net.run_until_quiescent(1'000'000);
        net.run(2);
        std::size_t delivered = 0;
        for (std::size_t i = 1; i < n; ++i) {
          delivered += net.received(i).size();
        }
        const double tnow = static_cast<double>(net.engine().now());
        const geom::Vec2 expected = opt.flock_velocity * tnow;
        double max_err = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          max_err = std::max(
              max_err,
              geom::dist(net.engine().positions()[i] - start[i], expected));
        }
        return Row{ok ? std::to_string(delivered) + "/" +
                            std::to_string(n - 1)
                      : "TIMEOUT",
                   net.engine().now(), expected.norm(), max_err};
      });
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    t.row(speeds[i], rows[i].delivered, rows[i].instants, rows[i].travel,
          rows[i].max_err);
  }
  std::cout << "\nexpected shape: every row delivers all messages; convoy "
               "travel grows linearly with flock speed; drift error stays "
               "at floating-point noise — decoding subtracts the agreed "
               "movement exactly.\n\n";

  std::cout << "silence price: idle moves during 500 message-free instants\n";
  bench::Table t2({"flock speed", "idle moves/robot"}, report,
                  "silence forfeited");
  for (double speed : {0.0, 0.05}) {
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    opt.caps.sense_of_direction = true;
    opt.flock_velocity = geom::Vec2{speed, 0};
    opt.sigma = 1.0;
    core::ChatNetwork net(start, opt);
    net.run(500);
    t2.row(speed,
           static_cast<double>(net.engine().trace().stats(0).moves));
  }
  std::cout << "\nexpected shape: a stationary swarm is silent (0); a "
               "flocking swarm moves every instant by definition.\n";
  return 0;
}
