// F1 — Figure 1 reproduction: one-to-one communication for 2 synchronous
// robots. Prints the movement trace of a short exchange, annotating each
// even-step excursion with the bit it codes (right = 0, left = 1) and each
// odd step with the return, exactly the scheme the figure illustrates.
#include <iostream>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "encode/bits.hpp"
#include "geom/line.hpp"

int main() {
  using namespace stig;
  std::cout << "== F1: Figure 1 — coding with two synchronous robots ==\n\n";

  bench::Report report("fig1_sync2");
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  opt.record_positions = true;
  const geom::Vec2 p0{0, 0};
  const geom::Vec2 p1{6, 0};
  core::ChatNetwork net({p0, p1}, opt);

  // Robot 0 sends the nibble pattern 0b0110... make it concrete: one byte.
  const std::vector<std::uint8_t> msg{0b01100101};
  net.send(0, 1, msg);
  net.run_until_quiescent(10'000);
  net.run(2);

  const auto& hist = net.engine().trace().positions();
  // Classify robot 0's offset relative to the line p0 -> p1: its "right"
  // (facing robot 1, shared handedness) is -y.
  std::cout << "t     robot0 position        movement-signal\n";
  for (std::size_t t = 0; t < hist.size(); ++t) {
    const geom::Vec2 pos = hist[t][0];
    const double off = pos.y;
    const char* what = "at base";
    if (off < -1e-9) what = "RIGHT of axis  -> bit 0";
    if (off > 1e-9) what = "LEFT of axis   -> bit 1";
    std::cout << std::setw(3) << t << "   (" << std::setw(6) << std::fixed
              << std::setprecision(3) << pos.x << ", " << std::setw(6)
              << pos.y << ")     " << what << '\n';
    if (t > 24) {
      std::cout << "      ... (" << hist.size() - t
                << " more instants elide the same pattern)\n";
      break;
    }
  }

  std::cout << "\nframe bits for payload 0b01100101 (varint len + payload + "
               "crc8): "
            << encode::encode_frame(msg).size() << " bits, "
            << net.engine().now() << " instants (2 per bit)\n";
  const bool intact =
      net.received(1).size() == 1 && net.received(1)[0].payload == msg;
  std::cout << "delivered payload: " << (intact ? "intact" : "CORRUPT")
            << "\n";
  report.value("frame_bits",
               static_cast<std::uint64_t>(encode::encode_frame(msg).size()));
  report.value("instants", net.engine().now());
  report.value("delivered_intact", std::string(intact ? "true" : "false"));
  return 0;
}
