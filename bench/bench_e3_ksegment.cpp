// E3 — the Section 5 k-segment addressing trade-off. With 2n slices a
// message costs payload_bits symbols; with k+1 segments it costs
// ceil(log_k n) extra index symbols per message. The paper: "by taking
// O(log n) slices instead of O(n), the number of steps to transmit a
// message would increase by O(log n / log log n)" — for 1-bit messages.
// This bench measures both and compares against the prediction.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "encode/framing.hpp"
#include "encode/ksegment_code.hpp"

int main() {
  using namespace stig;
  std::cout << "== E3: full slicing (2n) vs k-segment addressing ==\n\n";

  bench::Report report("e3_ksegment");
  const auto msg = bench::payload(1, 13);  // Short message: overhead shows.
  const double frame_bits =
      static_cast<double>(encode::encode_frame(msg).size());

  bench::Table t({"n", "slices 2n", "k=2", "k=ceil(lg n)", "digits(k=lg)",
                  "measured/flat", "predicted"},
                 report, "slicing vs k-segment");
  const std::vector<std::size_t> sizes = {4u, 8u, 16u, 32u, 64u};
  struct SizeRow {
    sim::Time flat, k2, klg;
    std::size_t digits;
  };
  const std::vector<SizeRow> size_rows =
      bench::batch_map(sizes.size(), [&](std::size_t i) {
        const std::size_t n = sizes[i];
        const auto pts = bench::scatter(n, 400 + n, 80.0, 3.0);
        const auto run_with = [&](core::ProtocolKind kind, std::size_t k) {
          core::ChatNetworkOptions opt;
          opt.synchrony = core::Synchrony::synchronous;
          opt.caps.sense_of_direction = true;
          opt.protocol = kind;
          opt.ksegment_k = k;
          core::ChatNetwork net(pts, opt);
          net.send(0, n - 1, msg);
          net.run_until_quiescent(1'000'000);
          return net.engine().now();
        };
        const std::size_t klog = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::ceil(std::log2(n))));
        return SizeRow{run_with(core::ProtocolKind::sliced, 0),
                       run_with(core::ProtocolKind::ksegment, 2),
                       run_with(core::ProtocolKind::ksegment, klog),
                       encode::digits_needed(n, klog)};
      });
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const SizeRow& r = size_rows[i];
    // Paper's prediction for the *addressing* overhead with k = log n
    // slices: log_k(n) = log n / log log n extra symbols per message.
    const double predicted =
        (frame_bits + static_cast<double>(r.digits)) / frame_bits;
    t.row(sizes[i], r.flat, r.k2, r.klg, r.digits,
          static_cast<double>(r.klg) / static_cast<double>(r.flat),
          predicted);
  }

  std::cout << "\nexpected shape: the flat 2n-slice protocol is constant "
               "per message; k-segment adds ceil(log_k n) symbols. With "
               "k = ceil(log2 n) the measured/flat ratio tracks the "
               "predicted (frame_bits + log_k n)/frame_bits column, i.e. "
               "an O(log n / log log n) additive slowdown amortized over "
               "the frame.\n\n";

  std::cout << "instants per message vs k at n = 32:\n";
  bench::Table t2({"k", "digits", "instants"}, report, "k sweep");
  const auto pts = bench::scatter(32, 77, 80.0, 3.0);
  const std::vector<std::size_t> ks = {2u, 3u, 4u, 6u, 8u, 16u, 31u};
  const std::vector<sim::Time> k_rows =
      bench::batch_map(ks.size(), [&](std::size_t i) {
        core::ChatNetworkOptions opt;
        opt.synchrony = core::Synchrony::synchronous;
        opt.caps.sense_of_direction = true;
        opt.protocol = core::ProtocolKind::ksegment;
        opt.ksegment_k = ks[i];
        core::ChatNetwork net(pts, opt);
        net.send(0, 31, msg);
        net.run_until_quiescent(1'000'000);
        return net.engine().now();
      });
  for (std::size_t i = 0; i < ks.size(); ++i) {
    t2.row(ks[i], encode::digits_needed(32, ks[i]), k_rows[i]);
  }
  std::cout << "\nexpected shape: instants fall as k grows (fewer digits), "
               "converging to the flat protocol's cost as k approaches "
               "n-1 — the angular-resolution / step-count trade-off of "
               "Section 5.\n";
  return 0;
}
