// E10 — batch-runner scaling and the configuration-epoch geometry cache.
//
// Part 1 runs one fixed fuzz workload (same seeds, same oracles) through
// par::BatchRunner at increasing job counts, verifying the results are
// byte-identical at every width (the invariance contract) and reporting
// the measured wall-clock speedup. Speedups are machine facts, not
// simulation facts: on a single-core host every column is ~1.0, which is
// the honest number — the correctness claim (identical digests) is the
// part that must hold everywhere.
//
// Part 2 counts geom::GeomCache traffic while a relative-naming swarm
// constructs: n robots each run the SEC-based labeling against the same
// t0 configuration, so all but the first computation hit the cache. The
// hit/miss counts are deterministic and baseline-gated; the wall times are
// not (they carry a "_wall"/"per_sec" suffix so the regression gate skips
// them).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "fuzz/batch.hpp"
#include "geom/geom_cache.hpp"
#include "par/seed.hpp"

namespace {

using namespace stig;

/// FNV-1a over every case's (kind, schedule digest) — one number that
/// differs if any verdict or any schedule changed.
std::uint64_t batch_checksum(const std::vector<fuzz::BatchCase>& batch) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const fuzz::BatchCase& bc : batch) {
    mix(static_cast<std::uint64_t>(bc.result.kind));
    mix(bc.result.schedule_digest);
  }
  return h;
}

}  // namespace

int main() {
  using Clock = std::chrono::steady_clock;
  std::cout << "== E10: batch-runner scaling & geometry cache ==\n\n";

  bench::Report report("e10_parallel");

  // Part 1: one workload, widening pools.
  const std::size_t kCases = 120;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(kCases);
  for (std::size_t i = 0; i < kCases; ++i) {
    seeds.push_back(par::derive_seed(2026, i));
  }

  std::cout << "fuzz workload (" << kCases << " cases) vs job count:\n";
  bench::Table t({"jobs", "wall s", "speedup", "checksum ok"}, report,
                 "batch scaling");
  double base_wall = 0.0;
  std::uint64_t base_checksum = 0;
  bool all_identical = true;
  for (std::size_t jobs : {1u, 2u, 4u, 8u}) {
    const Clock::time_point start = Clock::now();
    const std::vector<fuzz::BatchCase> batch =
        fuzz::run_cases(seeds, std::nullopt, jobs);
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    const std::uint64_t checksum = batch_checksum(batch);
    if (jobs == 1) {
      base_wall = wall;
      base_checksum = checksum;
    }
    const bool identical = checksum == base_checksum;
    all_identical = all_identical && identical;
    t.row(jobs, wall, base_wall / wall, identical ? "yes" : "NO");
  }
  report.value("batch_identical_across_jobs",
               std::uint64_t{all_identical ? 1u : 0u});
  report.value("batch_checksum", base_checksum);
  report.value("batch_jobs1_wall_seconds", base_wall);
  std::cout << "\nexpected shape: \"checksum ok\" on every row — the batch "
               "is bit-identical at any width. Speedup approaches the "
               "physical core count and is ~1.0 on a single-core host.\n\n";

  // Part 2: cache traffic while a relative-naming swarm constructs.
  std::cout << "geometry cache during relative-naming construction "
               "(n = 24):\n";
  geom::GeomCache& cache = geom::GeomCache::local();
  const std::uint64_t hits0 = cache.hits();
  const std::uint64_t misses0 = cache.misses();
  const Clock::time_point cstart = Clock::now();
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  core::ChatNetwork net(bench::scatter(24, 1234, 60.0, 3.0), opt);
  const double cwall =
      std::chrono::duration<double>(Clock::now() - cstart).count();
  const std::uint64_t hits = cache.hits() - hits0;
  const std::uint64_t misses = cache.misses() - misses0;
  bench::Table t2({"cache hits", "cache misses", "hit rate %"}, report,
                  "geometry cache");
  t2.row(hits, misses,
         100.0 * static_cast<double>(hits) /
             static_cast<double>(hits + misses));
  report.value("geom_cache_hits", hits);
  report.value("geom_cache_misses", misses);
  report.value("construction_wall_seconds", cwall);
  std::cout << "\nexpected shape: one miss per distinct configuration and "
               "thousands of hits — every robot's labeling pass reuses the "
               "one SEC/radii computation of the shared t0 snapshot.\n";
  return all_identical ? 0 : 1;
}
