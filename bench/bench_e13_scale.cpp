// E13 — large-n throughput: the O(n^2)-per-instant wall, measured.
//
// Table A steps an identified swarm of lightweight oscillating robots
// under a k-subset scheduler (k = 8) for 2000 instants at n in
// {32, 128, 512, 1024, 4096} and reports per-instant wall time. On the
// quadratic-era engine (per-robot configuration copies, all-pairs
// collision/min-separation scans) per-instant cost grew ~n^2 even with a
// constant number of activations; with the epoch ring and grid-backed
// scans it grows ~k*n. The binary SELF-GATES: it exits non-zero when the
// n=4096 / n=32 per-instant ratio exceeds a quarter of the quadratic
// prediction (4096/32)^2 — so CI fails if the wall ever comes back.
//
// Table B measures end-to-end chat throughput (sliced synchronous
// protocol, by_ids naming, one 1-byte broadcast) at n in
// {32, 128, 512, 1024}: instants to quiescence, bits delivered, and
// machine-dependent bits/sec. n = 4096 is omitted: a full chat swarm
// holds n granulars per robot core (n^2 total), which at 4096 costs
// multiple GiB before the first instant runs — see EXPERIMENTS.md E13.
//
// Deterministic keys (activations, instants, bits) are baseline-gated by
// `stigreport diff`; per-instant and per-second keys carry the skip
// suffixes of the obs/metric_keys.hpp convention.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/chat_network.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace {

using namespace stig;
using Clock = std::chrono::steady_clock;

/// Deterministic jittered grid: unlike bench::scatter's rejection sampling
/// (which cannot fit 4096 points with a 3-unit gap in its fixed box), this
/// scales the box with n and needs no retries.
std::vector<geom::Vec2> grid_scatter(std::size_t n, std::uint64_t seed,
                                     double spacing = 3.0) {
  sim::Rng rng(seed);
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<geom::Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i % side) * spacing;
    const double y = static_cast<double>(i / side) * spacing;
    pts.push_back(geom::Vec2{x + rng.uniform(-0.5, 0.5),
                             y + rng.uniform(-0.5, 0.5)});
  }
  return pts;
}

/// Oscillates +-0.01 around its start: every activation commits a real
/// move (exercising the collision scan and trace min-separation paths)
/// while staying far inside its 3-unit grid slot.
class Oscillator final : public sim::Robot {
 public:
  void initialize(const sim::Snapshot&) override {}
  geom::Vec2 on_activate(const sim::Snapshot& snap) override {
    flip_ = !flip_;
    return snap.self_robot().position + geom::Vec2{flip_ ? 0.01 : -0.01, 0.0};
  }

 private:
  bool flip_ = false;
};

}  // namespace

int main() {
  std::cout << "== E13: large-n throughput (epoch ring + grid scans) ==\n\n";
  bench::Report report("e13_scale");

  // ---- Table A: engine scaling, k-subset activation (k = 8).
  const sim::Time kInstants = 2000;
  const std::size_t kSubset = 8;
  std::cout << "engine per-instant cost, " << kInstants
            << " instants, k-subset scheduler (k = " << kSubset << "):\n";
  bench::Table ta({"n", "activations", "instants/s", "per-instant us"},
                  report, "engine scaling");
  const std::vector<std::size_t> kSizes{32, 128, 512, 1024, 4096};
  std::vector<double> per_instant_ns;
  for (std::size_t idx = 0; idx < kSizes.size(); ++idx) {
    const std::size_t n = kSizes[idx];
    std::vector<sim::RobotSpec> specs;
    std::vector<std::unique_ptr<sim::Robot>> programs;
    specs.reserve(n);
    programs.reserve(n);
    const std::vector<geom::Vec2> start =
        grid_scatter(n, bench::case_seed(1300, idx));
    for (std::size_t i = 0; i < n; ++i) {
      sim::RobotSpec s;
      s.position = start[i];
      s.sigma = 0.25;
      s.id = static_cast<sim::VisibleId>(i + 1);
      specs.push_back(s);
      programs.push_back(std::make_unique<Oscillator>());
    }
    sim::Engine engine(specs, std::move(programs),
                       std::make_unique<sim::KSubsetScheduler>(
                           kSubset, bench::case_seed(1301, idx)));
    const Clock::time_point t0 = Clock::now();
    engine.run(kInstants);
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    std::uint64_t activations = 0;
    for (std::size_t i = 0; i < n; ++i) {
      activations += engine.trace().stats(i).activations;
    }
    const double ns = wall / static_cast<double>(kInstants) * 1e9;
    per_instant_ns.push_back(ns);
    ta.row(n, activations, static_cast<double>(kInstants) / wall,
           ns / 1000.0);
    const std::string suffix = "_n" + std::to_string(n);
    report.value("activations" + suffix, activations);
    report.value("per_instant_ns" + suffix, ns);
    report.value("instants_per_sec" + suffix,
                 static_cast<double>(kInstants) / wall);
  }

  // Self-gate: the large-n/small-n per-instant ratio must stay far below
  // the quadratic prediction. ~k*n scaling predicts ratio ~128 here; the
  // gate allows up to a quarter of the quadratic 16384, so only a
  // genuine return of an O(n^2)-per-instant scan can trip it.
  const double ratio = per_instant_ns.back() / per_instant_ns.front();
  const double quadratic = std::pow(
      static_cast<double>(kSizes.back()) / static_cast<double>(kSizes.front()),
      2.0);
  const bool scaling_ok = ratio <= 0.25 * quadratic;
  report.value("scaling_ratio_vs_quadratic_pct", 100.0 * ratio / quadratic);
  std::cout << "\nn=4096/n=32 per-instant ratio " << ratio << " vs quadratic "
            << quadratic << " (" << 100.0 * ratio / quadratic
            << "% of quadratic) -> " << (scaling_ok ? "ok" : "REGRESSION")
            << "\n\n";

  // ---- Table B: end-to-end chat throughput (sliced sync, by_ids).
  std::cout << "chat throughput: 1-byte broadcast, sliced synchronous "
               "protocol, by_ids naming:\n";
  bench::Table tb({"n", "instants", "bits", "bits/instant", "bits/s"},
                  report, "chat throughput");
  const std::vector<std::uint8_t> one_byte{0xA5};
  for (std::size_t idx = 0; idx < 4; ++idx) {
    const std::size_t n = std::vector<std::size_t>{32, 128, 512, 1024}[idx];
    core::ChatNetworkOptions opt;
    opt.synchrony = core::Synchrony::synchronous;
    opt.protocol = core::ProtocolKind::sliced;
    opt.caps.visible_ids = true;
    opt.caps.sense_of_direction = true;
    opt.seed = bench::case_seed(1302, idx);
    core::ChatNetwork net(grid_scatter(n, bench::case_seed(1303, idx)), opt);
    const Clock::time_point t0 = Clock::now();
    net.broadcast(0, one_byte);
    const bool done = net.run_until_quiescent(1'000'000);
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const std::uint64_t instants = net.engine().trace().instants();
    std::uint64_t bits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (const core::Delivery& d : net.received(i)) {
        bits += 8 * d.payload.size();
      }
    }
    tb.row(n, instants, bits,
           static_cast<double>(bits) / static_cast<double>(instants),
           static_cast<double>(bits) / wall);
    const std::string suffix = "_n" + std::to_string(n);
    report.value("chat_instants" + suffix, instants);
    report.value("chat_bits_delivered" + suffix, bits);
    report.value("chat_bits_per_sec" + suffix,
                 static_cast<double>(bits) / wall);
    if (!done) {
      std::cout << "broadcast did not quiesce at n = " << n << "\n";
      return 1;
    }
  }
  std::cout << "\nexpected shape: bits scale with n (every robot receives "
               "the byte), instants grow slowly, and Table A stays ~linear "
               "in n per instant — the wall is gone end to end.\n";
  return scaling_ok ? 0 : 1;
}
