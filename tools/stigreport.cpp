// stigreport — offline analysis and regression gating for stigmergy runs.
//
// Three subcommands:
//
//   stigreport spans <events.jsonl>
//       Replay a `stigsim --events` JSONL log through the span builder and
//       print per-message latency attribution: an end-to-end percentile
//       summary, a per-span table (bits, phases, deliveries), per-robot
//       utilization and the run's critical path. `--json FILE` re-emits
//       the full span document ("-" = stdout); `--trace FILE` writes the
//       nested Chrome-trace view.
//
//   stigreport diff --baseline PATH <BENCH_*.json ...>
//       Compare bench artifacts against committed baselines. PATH is a
//       baseline file or a directory searched by filename. Numeric values
//       must stay within a relative threshold (default 0.05; override
//       globally with --threshold R or per bench with
//       --bench-threshold NAME=R); string values must match exactly.
//       Informational keys per the obs/metric_keys.hpp convention — any
//       key containing "wall", "cycles", "_per_sec", "_pct" or "_ns" —
//       are skipped. Prints one verdict line per key.
//
//   stigreport perf --baseline PATH <PERF_*.json ...>
//       The same gate for stigperf artifacts, with a zero default
//       threshold: the gated keys (allocation counts, bytes, event
//       counts) are deterministic functions of (code, seed), so any drift
//       is a real regression. When either side of a comparison was
//       produced without allocation tracking (sanitizer build,
//       "alloc_tracking": false), allocation-derived keys are skipped
//       instead of failing.
//
//   stigreport cov --baseline PATH <COV_*.json ...>
//       Coverage gate for stigfuzz --cov artifacts. Presence-based, not
//       value-based: every "edge."-prefixed key in the baseline must
//       still exist in the current artifact — a missing edge means the
//       corpus stopped exercising a protocol transition, parser outcome,
//       interleaving class, or fault path it used to reach. Hit counts
//       are informational (they scale with corpus size); new edges are
//       reported but never fail.
//
// Exit codes: 0 ok; 1 regression or mismatch (diff/perf/cov); 2 usage
// error; 3 I/O or parse error.
#include <algorithm>
#include <cmath>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/jsonl_parse.hpp"
#include "obs/metric_keys.hpp"
#include "obs/span.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

void usage(std::ostream& out) {
  out << "stigreport — span analysis and bench/perf regression gating\n\n"
      << "  stigreport spans <events.jsonl> [--json FILE|-] [--trace FILE]\n"
      << "  stigreport diff --baseline PATH [--threshold R]\n"
      << "                  [--bench-threshold NAME=R] <BENCH_*.json ...>\n"
      << "  stigreport perf --baseline PATH [--threshold R]\n"
      << "                  [--bench-threshold NAME=R] <PERF_*.json ...>\n"
      << "  stigreport cov --baseline PATH <COV_*.json ...>\n"
      << "  stigreport --help\n\n"
      << "spans: rebuild message spans from a stigsim --events log and\n"
      << "print latency attribution (percentiles, phases, critical path).\n\n"
      << "diff: gate BENCH_*.json artifacts against committed baselines.\n"
      << "Numeric values compared with a relative threshold (default\n"
      << "0.05); informational keys — containing \"wall\", \"cycles\",\n"
      << "\"_per_sec\", \"_pct\" or \"_ns\" — are machine-speed dependent\n"
      << "and skipped; strings must match exactly.\n\n"
      << "perf: the same gate for stigperf artifacts with a zero default\n"
      << "threshold — the gated keys are deterministic, so any drift is a\n"
      << "regression. Allocation-derived keys are skipped when either\n"
      << "side reports \"alloc_tracking\": false (sanitizer build).\n\n"
      << "cov: presence gate for stigfuzz --cov artifacts. Every \"edge.\"\n"
      << "key in the baseline must still exist; a lost edge fails. Hit\n"
      << "counts are informational; new edges are reported, not failed.\n\n"
      << "exit codes: 0 ok; 1 regression; 2 usage; 3 I/O error\n";
}

// ---------------------------------------------------------------- spans --

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int run_spans(const std::vector<std::string>& args) {
  std::string log_path;
  std::string json_out;
  std::string trace_out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto need = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= args.size()) {
        std::cerr << "stigreport: " << flag << " needs a value\n";
        return std::nullopt;
      }
      return args[++i];
    };
    if (a == "--json") {
      const auto v = need("--json");
      if (!v) return kExitUsage;
      json_out = *v;
    } else if (a == "--trace") {
      const auto v = need("--trace");
      if (!v) return kExitUsage;
      trace_out = *v;
    } else if (!a.empty() && a[0] == '-' && a != "-") {
      std::cerr << "stigreport: unknown spans flag " << a << "\n";
      return kExitUsage;
    } else if (log_path.empty()) {
      log_path = a;
    } else {
      std::cerr << "stigreport: spans takes one log file\n";
      return kExitUsage;
    }
  }
  if (log_path.empty()) {
    std::cerr << "stigreport: spans needs an events JSONL file\n";
    return kExitUsage;
  }

  stig::obs::EventLog log;
  {
    std::ifstream in(log_path);
    if (!in) {
      std::cerr << "stigreport: cannot open " << log_path << "\n";
      return kExitIo;
    }
    const std::size_t failed = log.read(in);
    if (failed > 0) {
      // Flight-recorder headers and truncated tails parse as failures;
      // report them but keep going — spans only need the event lines.
      std::cerr << "stigreport: " << failed << " unparsed line(s) in "
                << log_path << "\n";
    }
  }
  if (log.events().empty()) {
    std::cerr << "stigreport: no events in " << log_path << "\n";
    return kExitIo;
  }

  stig::obs::SpanBuilder builder;
  for (const stig::obs::Event& e : log.events()) builder.on_event(e);
  builder.finalize();

  const auto& spans = builder.spans();
  std::vector<double> e2e;
  e2e.reserve(spans.size());
  for (const auto& s : spans) e2e.push_back(static_cast<double>(s.end_to_end()));
  std::sort(e2e.begin(), e2e.end());

  std::ostream& out = std::cout;
  out << "run: " << builder.instants() << " instants, " << spans.size()
      << " message span(s)";
  if (builder.corrupt_frames() > 0) {
    out << ", " << builder.corrupt_frames() << " corrupt frame(s)";
  }
  out << "\n\n";
  out << "end-to-end latency (instants): p50 " << percentile(e2e, 0.50)
      << "  p90 " << percentile(e2e, 0.90) << "  p99 "
      << percentile(e2e, 0.99) << "  max "
      << (e2e.empty() ? 0.0 : e2e.back()) << "\n\n";

  out << std::left << std::setw(5) << "id" << std::setw(8) << "sender"
      << std::setw(6) << "to" << std::setw(6) << "bits" << std::setw(8)
      << "start" << std::setw(8) << "end" << std::setw(8) << "e2e"
      << std::setw(7) << "deliv" << "phases\n";
  for (const auto& s : spans) {
    // Aggregate phase instants by name, in first-seen order.
    std::vector<std::pair<std::string, std::uint64_t>> agg;
    for (const auto& seg : s.phases) {
      auto it = std::find_if(agg.begin(), agg.end(), [&](const auto& p) {
        return p.first == seg.phase;
      });
      if (it == agg.end()) {
        agg.emplace_back(seg.phase, seg.instants());
      } else {
        it->second += seg.instants();
      }
    }
    std::ostringstream phases;
    for (std::size_t i = 0; i < agg.size(); ++i) {
      phases << (i == 0 ? "" : " ") << agg[i].first << "=" << agg[i].second;
    }
    out << std::left << std::setw(5) << s.id << std::setw(8) << s.sender
        << std::setw(6)
        << (s.broadcast ? std::string("*") : std::to_string(s.addressee))
        << std::setw(6) << s.bit_times.size() << std::setw(8) << s.start()
        << std::setw(8) << s.end() << std::setw(8) << s.end_to_end()
        << std::setw(7) << s.deliveries.size() << phases.str() << "\n";
  }

  out << "\nrobots:\n";
  for (const auto& u : builder.utilization()) {
    out << "  robot " << u.robot << ": " << u.bits_sent << " bit(s) sent, "
        << u.busy_instants << " busy / " << u.silent_instants
        << " silent instants (utilization " << std::fixed
        << std::setprecision(3) << u.utilization << ")\n";
    out.unsetf(std::ios::fixed);
  }

  const auto& cp = builder.critical_path();
  if (cp.sender >= 0) {
    out << "\ncritical path: sender " << cp.sender << ", "
        << cp.span_ids.size() << " span(s), " << cp.total_instants
        << " instants (" << cp.transmit_instants << " transmitting, "
        << cp.wait_instants << " waiting)\n";
  }

  if (!json_out.empty()) {
    if (json_out == "-") {
      builder.write_json(std::cout);
    } else {
      std::ofstream jf(json_out);
      if (!jf) {
        std::cerr << "stigreport: cannot write " << json_out << "\n";
        return kExitIo;
      }
      builder.write_json(jf);
    }
  }
  if (!trace_out.empty()) {
    std::ofstream tf(trace_out);
    if (!tf) {
      std::cerr << "stigreport: cannot write " << trace_out << "\n";
      return kExitIo;
    }
    builder.write_chrome_trace(tf);
  }
  return kExitOk;
}

// ----------------------------------------------------------------- diff --

/// One BENCH_*.json artifact reduced to its name and flat values map.
/// Values stay as raw JSON scalars ("12", "0.5", "\"true\"").
struct BenchValues {
  std::string bench;
  std::vector<std::pair<std::string, std::string>> values;
};

/// Extracts the quoted string starting at `pos` (which must point at the
/// opening quote). The schema never escapes quotes inside strings.
std::optional<std::string> quoted_at(std::string_view text,
                                     std::size_t pos) {
  if (pos >= text.size() || text[pos] != '"') return std::nullopt;
  const std::size_t close = text.find('"', pos + 1);
  if (close == std::string_view::npos) return std::nullopt;
  return std::string(text.substr(pos + 1, close - pos - 1));
}

std::size_t skip_ws(std::string_view text, std::size_t pos) {
  while (pos < text.size() &&
         (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\t' ||
          text[pos] == '\r')) {
    ++pos;
  }
  return pos;
}

/// Parses a BENCH_*.json artifact: the "bench" name and the flat scalar
/// "values" object. Tables are ignored — headline values are the gate.
std::optional<BenchValues> parse_bench(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  BenchValues out;
  const std::size_t bench_key = text.find("\"bench\":");
  if (bench_key == std::string::npos) return std::nullopt;
  const auto name = quoted_at(text, skip_ws(text, bench_key + 8));
  if (!name) return std::nullopt;
  out.bench = *name;

  const std::size_t values_key = text.find("\"values\":");
  if (values_key == std::string::npos) return std::nullopt;
  std::size_t pos = skip_ws(text, values_key + 9);
  if (pos >= text.size() || text[pos] != '{') return std::nullopt;
  pos = skip_ws(text, pos + 1);
  while (pos < text.size() && text[pos] != '}') {
    const auto key = quoted_at(text, pos);
    if (!key) return std::nullopt;
    pos = text.find('"', pos + 1) + 1;  // Past the key's closing quote.
    pos = skip_ws(text, pos);
    if (pos >= text.size() || text[pos] != ':') return std::nullopt;
    pos = skip_ws(text, pos + 1);
    std::string value;
    if (text[pos] == '"') {
      const auto v = quoted_at(text, pos);
      if (!v) return std::nullopt;
      value = "\"" + *v + "\"";
      pos = text.find('"', pos + 1) + 1;
    } else {
      // A bare scalar: runs to the next comma or closing brace.
      const std::size_t end = text.find_first_of(",}", pos);
      if (end == std::string::npos) return std::nullopt;
      value = text.substr(pos, end - pos);
      while (!value.empty() &&
             (value.back() == ' ' || value.back() == '\n')) {
        value.pop_back();
      }
      pos = end;
    }
    out.values.emplace_back(*key, value);
    pos = skip_ws(text, pos);
    if (pos < text.size() && text[pos] == ',') pos = skip_ws(text, pos + 1);
  }
  return out;
}

std::optional<double> as_number(const std::string& raw) {
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(raw.data(), raw.data() + raw.size(), v);
  if (ec != std::errc{} || ptr != raw.data() + raw.size()) {
    return std::nullopt;
  }
  return v;
}

/// Machine-speed dependent keys never gate: they vary run to run on the
/// same commit. The marker convention lives in obs/metric_keys.hpp so
/// producers (stigperf, bench::Report users) and this gate agree.
bool is_speed_key(const std::string& key) {
  return stig::obs::is_informational_key(key);
}

/// True for keys derived from operator-new interposition counters, which
/// read zero in builds where interposition is compiled out (sanitizers).
bool is_alloc_key(const std::string& key) {
  for (const char* marker : {"alloc", "bytes", "frees"}) {
    if (key.find(marker) != std::string::npos) return true;
  }
  return false;
}

/// True when the artifact recorded that allocation tracking was off.
bool alloc_tracking_off(const BenchValues& v) {
  for (const auto& [key, raw] : v.values) {
    if (key == "alloc_tracking") return raw == "false";
  }
  return false;
}

/// Shared gate for `diff` (bench artifacts, relative threshold) and
/// `perf` (stigperf artifacts, exact by default + alloc-key skip).
int run_gate(const std::vector<std::string>& args, bool perf_mode) {
  std::string baseline_path;
  double threshold = perf_mode ? 0.0 : 0.05;
  const char* cmd = perf_mode ? "perf" : "diff";
  std::map<std::string, double> bench_thresholds;
  std::vector<std::string> artifacts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto need = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= args.size()) {
        std::cerr << "stigreport: " << flag << " needs a value\n";
        return std::nullopt;
      }
      return args[++i];
    };
    if (a == "--baseline") {
      const auto v = need("--baseline");
      if (!v) return kExitUsage;
      baseline_path = *v;
    } else if (a == "--threshold") {
      const auto v = need("--threshold");
      if (!v) return kExitUsage;
      const auto t = as_number(*v);
      if (!t || *t < 0.0) {
        std::cerr << "stigreport: bad --threshold " << *v << "\n";
        return kExitUsage;
      }
      threshold = *t;
    } else if (a == "--bench-threshold") {
      const auto v = need("--bench-threshold");
      if (!v) return kExitUsage;
      const std::size_t eq = v->find('=');
      const auto t = eq == std::string::npos
                         ? std::nullopt
                         : as_number(v->substr(eq + 1));
      if (!t || *t < 0.0) {
        std::cerr << "stigreport: --bench-threshold wants NAME=R, got "
                  << *v << "\n";
        return kExitUsage;
      }
      bench_thresholds[v->substr(0, eq)] = *t;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "stigreport: unknown " << cmd << " flag " << a << "\n";
      return kExitUsage;
    } else {
      artifacts.push_back(a);
    }
  }
  if (baseline_path.empty()) {
    std::cerr << "stigreport: " << cmd << " needs --baseline\n";
    return kExitUsage;
  }
  if (artifacts.empty()) {
    std::cerr << "stigreport: " << cmd << " needs "
              << (perf_mode ? "PERF" : "BENCH") << "_*.json artifacts\n";
    return kExitUsage;
  }

  namespace fs = std::filesystem;
  const bool baseline_is_dir = fs::is_directory(baseline_path);

  int regressions = 0;
  int compared = 0;
  for (const std::string& artifact : artifacts) {
    const auto current = parse_bench(artifact);
    if (!current) {
      std::cerr << "stigreport: cannot parse " << artifact << "\n";
      return kExitIo;
    }
    const std::string base_file =
        baseline_is_dir
            ? (fs::path(baseline_path) / fs::path(artifact).filename())
                  .string()
            : baseline_path;
    const auto baseline = parse_bench(base_file);
    if (!baseline) {
      std::cerr << "stigreport: cannot parse baseline " << base_file
                << " for " << artifact << "\n";
      return kExitIo;
    }

    const auto th_it = bench_thresholds.find(current->bench);
    const double th =
        th_it != bench_thresholds.end() ? th_it->second : threshold;
    std::cout << current->bench << " vs " << base_file
              << " (threshold " << th << "):\n";

    // Allocation-derived keys are only comparable when both sides counted
    // allocations; a sanitizer build (alloc_tracking:false) on either side
    // skips them — in `perf` and `diff` mode alike, so BENCH artifacts
    // that record memory-per-session stay gateable under ASan/TSan lanes.
    const bool skip_alloc_keys =
        alloc_tracking_off(*current) || alloc_tracking_off(*baseline);

    std::map<std::string, std::string> base_map(
        baseline->values.begin(), baseline->values.end());
    for (const auto& [key, raw] : current->values) {
      if (is_speed_key(key)) {
        std::cout << "  skip  " << key << " (machine-speed)\n";
        continue;
      }
      if (skip_alloc_keys && (is_alloc_key(key) || key == "alloc_tracking")) {
        std::cout << "  skip  " << key << " (alloc tracking off)\n";
        base_map.erase(key);
        continue;
      }
      const auto base_it = base_map.find(key);
      if (base_it == base_map.end()) {
        std::cout << "  new   " << key << " = " << raw
                  << " (not in baseline)\n";
        continue;
      }
      ++compared;
      const auto cur_n = as_number(raw);
      const auto base_n = as_number(base_it->second);
      if (cur_n && base_n) {
        const double denom = std::max(std::abs(*base_n), 1e-12);
        const double rel = std::abs(*cur_n - *base_n) / denom;
        if (rel > th) {
          std::cout << "  FAIL  " << key << ": " << raw << " vs baseline "
                    << base_it->second << " (rel delta " << rel << ")\n";
          ++regressions;
        } else {
          std::cout << "  ok    " << key << " = " << raw << "\n";
        }
      } else if (raw != base_it->second) {
        std::cout << "  FAIL  " << key << ": " << raw << " vs baseline "
                  << base_it->second << "\n";
        ++regressions;
      } else {
        std::cout << "  ok    " << key << " = " << raw << "\n";
      }
      base_map.erase(base_it);
    }
    for (const auto& [key, raw] : base_map) {
      if (is_speed_key(key)) continue;
      if (skip_alloc_keys && (is_alloc_key(key) || key == "alloc_tracking")) {
        continue;
      }
      std::cout << "  FAIL  " << key << " missing (baseline has " << raw
                << ")\n";
      ++regressions;
    }
  }
  std::cout << (regressions == 0 ? "PASS" : "FAIL") << ": " << compared
            << " value(s) compared, " << regressions << " regression(s)\n";
  return regressions == 0 ? kExitOk : kExitRegression;
}

// ------------------------------------------------------------------ cov --

/// The coverage gate: baseline edges must survive; counts never gate.
/// A corpus's edge *set* is a deterministic function of (code, seeds), so
/// presence is exactly as strict as the perf gate's zero threshold —
/// while hit counts would make every corpus-size change a false alarm.
int run_cov(const std::vector<std::string>& args) {
  std::string baseline_path;
  std::vector<std::string> artifacts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--baseline") {
      if (i + 1 >= args.size()) {
        std::cerr << "stigreport: --baseline needs a value\n";
        return kExitUsage;
      }
      baseline_path = args[++i];
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "stigreport: unknown cov flag " << a << "\n";
      return kExitUsage;
    } else {
      artifacts.push_back(a);
    }
  }
  if (baseline_path.empty()) {
    std::cerr << "stigreport: cov needs --baseline\n";
    return kExitUsage;
  }
  if (artifacts.empty()) {
    std::cerr << "stigreport: cov needs COV_*.json artifacts\n";
    return kExitUsage;
  }

  namespace fs = std::filesystem;
  const bool baseline_is_dir = fs::is_directory(baseline_path);

  const auto is_edge_key = [](const std::string& key) {
    return key.rfind("edge.", 0) == 0;
  };

  int lost = 0;
  int checked = 0;
  int gained = 0;
  for (const std::string& artifact : artifacts) {
    const auto current = parse_bench(artifact);
    if (!current) {
      std::cerr << "stigreport: cannot parse " << artifact << "\n";
      return kExitIo;
    }
    const std::string base_file =
        baseline_is_dir
            ? (fs::path(baseline_path) / fs::path(artifact).filename())
                  .string()
            : baseline_path;
    const auto baseline = parse_bench(base_file);
    if (!baseline) {
      std::cerr << "stigreport: cannot parse baseline " << base_file
                << " for " << artifact << "\n";
      return kExitIo;
    }
    std::cout << current->bench << " vs " << base_file << ":\n";

    std::map<std::string, std::string> cur_map(current->values.begin(),
                                               current->values.end());
    for (const auto& [key, raw] : baseline->values) {
      if (!is_edge_key(key)) continue;
      ++checked;
      const auto cur_it = cur_map.find(key);
      if (cur_it == cur_map.end()) {
        std::cout << "  FAIL  " << key << " lost (baseline hit " << raw
                  << " time(s))\n";
        ++lost;
      } else {
        std::cout << "  ok    " << key << " = " << cur_it->second << "\n";
        cur_map.erase(cur_it);
      }
    }
    for (const auto& [key, raw] : cur_map) {
      if (!is_edge_key(key)) continue;
      std::cout << "  new   " << key << " = " << raw
                << " (not in baseline — consider refreshing it)\n";
      ++gained;
    }
  }
  std::cout << (lost == 0 ? "PASS" : "FAIL") << ": " << checked
            << " edge(s) checked, " << lost << " lost, " << gained
            << " new\n";
  return lost == 0 ? kExitOk : kExitRegression;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    usage(std::cerr);
    return kExitUsage;
  }
  if (args[0] == "--help" || args[0] == "-h" || args[0] == "help") {
    usage(std::cout);
    return kExitOk;
  }
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (args[0] == "spans") return run_spans(rest);
  if (args[0] == "diff") return run_gate(rest, /*perf_mode=*/false);
  if (args[0] == "perf") return run_gate(rest, /*perf_mode=*/true);
  if (args[0] == "cov") return run_cov(rest);
  std::cerr << "stigreport: unknown subcommand " << args[0] << "\n";
  usage(std::cerr);
  return kExitUsage;
}
