// stigload — deterministic traffic generator for the stigd serving layer.
//
// Drives a seed-derived mix of open_session / send_message / step /
// poll_delivery / get_report / close_session requests against one of three
// transports:
//
//   --inproc        an in-process serve::ShardedRegistry, still going
//                   through the full wire codec (encode → parse → decode on
//                   both directions) so the byte protocol is exercised
//                   end to end without a socket;
//   --socket PATH   an already-running stigd on an AF_UNIX socket;
//   --spawn BIN     forks BIN as a stigd child on a private socket, runs
//                   the workload, SIGTERMs it and requires a clean exit.
//
// The whole request sequence is a pure function of --seed: every draw
// (verb choice, session pick, payload bytes, step widths) comes from one
// seeded generator, and the per-session seeds are par::derive_seed(seed, i)
// — so two runs with the same seed against deterministic servers produce
// identical *transcripts* (delivery bytes, statuses, queue depths, engine
// clocks). The transcript is digested with FNV-1a; --verify-deterministic
// replays the workload twice in-proc — once at --jobs, once single-worker —
// and fails unless digests, delivery counts and the gated (non-`_ns`)
// server metrics all match. That ctest case is the acceptance check for
// "replies never depend on the worker count".
//
// Exit codes: 0 success; 1 determinism/protocol violation; 2 usage error;
// 3 runtime or I/O error.
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/metric_keys.hpp"
#include "obs/metrics.hpp"
#include "par/seed.hpp"
#include "serve/shard.hpp"
#include "serve/wire.hpp"
#include "sim/rng.hpp"

namespace {

using namespace stig;

constexpr int kExitOk = 0;
constexpr int kExitMismatch = 1;
constexpr int kExitUsage = 2;
constexpr int kExitRuntime = 3;

struct Args {
  std::uint64_t seed = 1;
  std::uint64_t requests = 2000;
  double seconds = 0.0;  ///< > 0 switches to a wall-clock budget.
  std::size_t sessions = 32;
  std::size_t robots_max = 6;
  std::size_t jobs = 0;
  std::size_t shards = 8;
  std::size_t queue_bound = 16;
  std::string mix = "open:2,send:8,step:8,poll:6,report:1,close:1";
  bool inproc = false;
  std::string socket_path;
  std::string spawn;
  std::string transcript;
  std::string report;
  bool verify_deterministic = false;
  bool help = false;
};

void print_help() {
  std::cout <<
      "stigload — deterministic traffic generator for stigd\n\n"
      "transport (pick one; default --inproc):\n"
      "  --inproc             in-process ShardedRegistry through the full\n"
      "                       wire codec (no socket)\n"
      "  --socket PATH        connect to a running stigd\n"
      "  --spawn STIGD_BIN    fork stigd on a private socket, SIGTERM it\n"
      "                       after the run and require exit 0\n\n"
      "workload:\n"
      "  --seed S             root seed; the whole request sequence is a\n"
      "                       pure function of it (default 1)\n"
      "  --requests N         request budget (default 2000)\n"
      "  --seconds T          run for T wall seconds instead (smoke mode;\n"
      "                       not deterministic across machines)\n"
      "  --sessions N         target live sessions (default 32)\n"
      "  --robots-max N       robots per opened session in [2, N]\n"
      "                       (default 6)\n"
      "  --mix SPEC           verb weights, e.g. open:2,send:8,step:8,\n"
      "                       poll:6,report:1,close:1 (the default)\n"
      "  --jobs N / --shards K / --queue-bound Q\n"
      "                       inproc registry knobs (as stigd)\n\n"
      "output & checks:\n"
      "  --transcript FILE    write the transcript lines (\"-\" = stdout)\n"
      "  --report FILE        write the client report JSON (\"-\" = stdout)\n"
      "  --verify-deterministic\n"
      "                       run the workload twice in-proc (--jobs, then\n"
      "                       1 worker); fail on any transcript or gated-\n"
      "                       metric divergence\n\n"
      "exit codes: 0 success; 1 determinism or protocol violation;\n"
      "2 usage error; 3 runtime error\n";
}

bool parse(int argc, char** argv, Args& a) {
  const auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto num = [&](auto& out) {
      const char* v = need(i);
      if (!v) return false;
      out = static_cast<std::remove_reference_t<decltype(out)>>(
          std::strtoull(v, nullptr, 10));
      return true;
    };
    const auto str = [&](std::string& out) {
      const char* v = need(i);
      if (!v) return false;
      out = v;
      return true;
    };
    if (flag == "--help" || flag == "-h") {
      a.help = true;
    } else if (flag == "--seed") {
      if (!num(a.seed)) return false;
    } else if (flag == "--requests") {
      if (!num(a.requests)) return false;
    } else if (flag == "--seconds") {
      const char* v = need(i);
      if (!v) return false;
      a.seconds = std::strtod(v, nullptr);
    } else if (flag == "--sessions") {
      if (!num(a.sessions)) return false;
    } else if (flag == "--robots-max") {
      if (!num(a.robots_max)) return false;
    } else if (flag == "--jobs") {
      if (!num(a.jobs)) return false;
    } else if (flag == "--shards") {
      if (!num(a.shards)) return false;
    } else if (flag == "--queue-bound") {
      if (!num(a.queue_bound)) return false;
    } else if (flag == "--mix") {
      if (!str(a.mix)) return false;
    } else if (flag == "--inproc") {
      a.inproc = true;
    } else if (flag == "--socket") {
      if (!str(a.socket_path)) return false;
    } else if (flag == "--spawn") {
      if (!str(a.spawn)) return false;
    } else if (flag == "--transcript") {
      if (!str(a.transcript)) return false;
    } else if (flag == "--report") {
      if (!str(a.report)) return false;
    } else if (flag == "--verify-deterministic") {
      a.verify_deterministic = true;
    } else {
      std::cerr << "unknown flag: " << flag << " (see --help)\n";
      return false;
    }
  }
  return true;
}

/// Verb weights parsed from --mix, indexed open/send/step/poll/report/close.
struct Mix {
  std::array<std::uint64_t, 6> weight{2, 8, 8, 6, 1, 1};
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const std::uint64_t w : weight) t += w;
    return t;
  }
};

std::optional<Mix> parse_mix(const std::string& spec) {
  static constexpr std::array<const char*, 6> kNames{
      "open", "send", "step", "poll", "report", "close"};
  Mix mix;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) return std::nullopt;
    const std::string name = item.substr(0, colon);
    const std::uint64_t w =
        std::strtoull(item.c_str() + colon + 1, nullptr, 10);
    bool known = false;
    for (std::size_t v = 0; v < kNames.size(); ++v) {
      if (name == kNames[v]) {
        mix.weight[v] = w;
        known = true;
      }
    }
    if (!known) return std::nullopt;
  }
  if (mix.total() == 0) return std::nullopt;
  return mix;
}

/// FNV-1a 64-bit, the transcript digest.
struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void feed(std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ULL;
    }
  }
};

bool write_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// One request/response channel; both transports speak full wire frames.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Encodes, ships, and decodes; nullopt on transport/protocol failure.
  virtual std::optional<serve::Response> roundtrip(
      const serve::Request& req) = 0;
};

/// Wire-codec loopback onto an owned ShardedRegistry.
class InprocTransport final : public Transport {
 public:
  explicit InprocTransport(const serve::ShardedOptions& options)
      : registry_(options) {}

  std::optional<serve::Response> roundtrip(
      const serve::Request& req) override {
    request_parser_.feed(serve::encode_request(req));
    const auto frames = request_parser_.take_frames();
    if (frames.size() != 1) return std::nullopt;
    const auto decoded = serve::decode_request(frames.front());
    if (!decoded) return std::nullopt;
    response_parser_.feed(serve::encode_response(registry_.apply(*decoded)));
    const auto replies = response_parser_.take_frames();
    if (replies.size() != 1) return std::nullopt;
    return serve::decode_response(replies.front());
  }

  [[nodiscard]] serve::ShardedRegistry& registry() { return registry_; }

 private:
  serve::ShardedRegistry registry_;
  serve::WireParser request_parser_;
  serve::WireParser response_parser_;
};

/// Blocking AF_UNIX client.
class SocketTransport final : public Transport {
 public:
  ~SocketTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connect(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }

  std::optional<serve::Response> roundtrip(
      const serve::Request& req) override {
    if (fd_ < 0 || !write_all(fd_, serve::encode_request(req))) {
      return std::nullopt;
    }
    while (true) {
      auto frames = parser_.take_frames();
      if (!frames.empty()) return serve::decode_response(frames.front());
      std::uint8_t buf[65536];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return std::nullopt;
      }
      parser_.feed(
          std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  serve::WireParser parser_;
};

/// Everything one workload run produces.
struct RunResult {
  bool ok = false;
  std::uint64_t requests_sent = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t busy = 0;
  std::uint64_t digest = 0;
  std::vector<std::string> transcript;
  std::string error;
};

std::string hex_bytes(const std::vector<std::uint8_t>& bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out += kHex[b >> 4];
    out += kHex[b & 0xF];
  }
  return out;
}

/// Runs the seed-determined request mix against `transport`. Every random
/// draw happens before the request ships, and bookkeeping depends only on
/// response fields that are themselves deterministic — so the transcript
/// is a pure function of (seed, server behavior).
RunResult run_workload(const Args& args, const Mix& mix,
                       Transport& transport,
                       obs::MetricsRegistry& client_metrics) {
  RunResult out;
  sim::Rng rng(args.seed);
  struct Live {
    std::uint64_t id;
    std::uint64_t robots;
  };
  std::vector<Live> live;
  std::uint64_t opens = 0;
  Fnv digest;

  const auto note = [&](std::string line) {
    digest.feed(line);
    digest.feed("\n");
    out.transcript.push_back(std::move(line));
  };

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(args.seconds));
  const bool timed = args.seconds > 0.0;

  for (std::uint64_t i = 0; timed || i < args.requests; ++i) {
    if (timed && std::chrono::steady_clock::now() >= deadline) break;

    // Pick a verb from the weighted mix; without a session everything
    // degrades to open, and at the session target opens become sends.
    std::uint64_t r = rng.uniform_int(1, mix.total());
    std::size_t verb = 0;
    for (std::size_t v = 0; v < mix.weight.size(); ++v) {
      if (r <= mix.weight[v]) {
        verb = v;
        break;
      }
      r -= mix.weight[v];
    }
    if (live.empty()) verb = 0;
    if (verb == 0 && live.size() >= args.sessions) verb = 1;

    serve::Request req;
    std::size_t slot = 0;
    if (verb != 0) {
      slot = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::uint64_t>(live.size()) - 1));
      req.session = live[slot].id;
    }
    switch (verb) {
      case 0: {
        req.verb = serve::Verb::open_session;
        req.robots = rng.uniform_int(2, args.robots_max);
        req.seed = par::derive_seed(args.seed, opens++);
        req.flags = 0;
        if (rng.flip(0.5)) req.flags |= serve::kOpenAsync;
        if (rng.flip(0.5)) req.flags |= serve::kOpenVisibleIds;
        if (rng.flip(0.25)) req.flags |= serve::kOpenSenseOfDirection;
        break;
      }
      case 1: {
        const std::uint64_t n = live[slot].robots;
        req.verb = serve::Verb::send_message;
        req.from = rng.uniform_int(0, n - 1);
        req.to = (req.from + 1 + rng.uniform_int(0, n - 2)) % n;
        if (rng.flip(0.125)) req.flags |= serve::kSendBroadcast;
        const std::uint64_t len = rng.uniform_int(1, 16);
        req.payload.resize(len);
        for (auto& b : req.payload) {
          b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
        break;
      }
      case 2:
        req.verb = serve::Verb::step;
        req.instants = rng.uniform_int(8, 64);
        break;
      case 3:
        req.verb = serve::Verb::poll_delivery;
        req.robot = rng.uniform_int(0, live[slot].robots - 1);
        req.max_messages = 0;
        break;
      case 4:
        req.verb = serve::Verb::get_report;
        break;
      default:
        req.verb = serve::Verb::close_session;
        break;
    }

    const auto t0 = std::chrono::steady_clock::now();
    const std::optional<serve::Response> res = transport.roundtrip(req);
    const auto dt = std::chrono::steady_clock::now() - t0;
    if (!res) {
      out.error = "transport failure on request " + std::to_string(i);
      return out;
    }
    ++out.requests_sent;
    client_metrics.counter("load.sent").add();
    client_metrics
        .counter(std::string("load.status.") + status_name(res->status))
        .add();
    client_metrics
        .histogram(std::string("load.lat.") + verb_name(req.verb) + "_ns",
                   16.0, 48)
        .record(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count()));

    switch (req.verb) {
      case serve::Verb::open_session:
        if (res->status == serve::Status::ok) {
          live.push_back(Live{res->session, req.robots});
          note("o " + std::to_string(res->session) + " " +
               std::to_string(req.robots));
        } else {
          note(std::string("o ") + status_name(res->status));
        }
        break;
      case serve::Verb::send_message:
        if (res->status == serve::Status::busy) ++out.busy;
        note("s " + std::to_string(req.session) + " " +
             status_name(res->status) + " " + std::to_string(res->queued));
        break;
      case serve::Verb::step:
        note("t " + std::to_string(req.session) + " " +
             status_name(res->status) + " " +
             std::to_string(res->instants) + " " +
             std::to_string(res->flags));
        break;
      case serve::Verb::poll_delivery:
        for (const serve::WireDelivery& d : res->deliveries) {
          ++out.deliveries;
          note("d " + std::to_string(req.session) + " " +
               std::to_string(req.robot) + " " + std::to_string(d.from) +
               " " + std::to_string(static_cast<unsigned>(d.flags)) + " " +
               hex_bytes(d.payload));
        }
        break;
      case serve::Verb::get_report:
        // The report JSON carries machine-speed fields; only the status
        // joins the transcript.
        note("r " + std::to_string(req.session) + " " +
             status_name(res->status));
        break;
      default:
        if (res->status == serve::Status::ok) live.erase(live.begin() + slot);
        note("c " + std::to_string(req.session) + " " +
             status_name(res->status));
        break;
    }
  }
  out.digest = digest.h;
  out.ok = true;
  return out;
}

/// The gated (deterministic) subset of a flat metrics JSON object: every
/// top-level "key": value pair whose key has no informational marker
/// (src/obs/metric_keys.hpp). Values are either numbers or one-level
/// histogram objects, which is all write_json emits.
std::string gated_metric_lines(const std::string& json) {
  std::string out;
  std::size_t i = 0;
  while (i < json.size()) {
    const std::size_t q0 = json.find('"', i);
    if (q0 == std::string::npos) break;
    const std::size_t q1 = json.find('"', q0 + 1);
    if (q1 == std::string::npos) break;
    const std::string key = json.substr(q0 + 1, q1 - q0 - 1);
    std::size_t v = json.find(':', q1 + 1);
    if (v == std::string::npos) break;
    ++v;
    std::size_t end = v;
    if (v < json.size() && json[v] == '{') {
      end = json.find('}', v);
      if (end == std::string::npos) break;
      ++end;
    } else {
      while (end < json.size() && json[end] != ',' && json[end] != '}') {
        ++end;
      }
    }
    if (!obs::is_informational_key(key)) {
      out += key;
      out += '=';
      out += json.substr(v, end - v);
      out += '\n';
    }
    i = end;
  }
  return out;
}

std::string metrics_json(serve::ShardedRegistry& registry) {
  std::ostringstream ss;
  registry.write_metrics_json(ss);
  return ss.str();
}

serve::ShardedOptions inproc_options(const Args& args, std::size_t jobs) {
  serve::ShardedOptions sopt;
  sopt.shards = args.shards;
  sopt.jobs = jobs;
  sopt.limits.queue_bound = args.queue_bound;
  return sopt;
}

struct SpawnedDaemon {
  pid_t pid = -1;
  std::string socket_path;
};

std::optional<SpawnedDaemon> spawn_stigd(const Args& args) {
  SpawnedDaemon d;
  d.socket_path =
      "/tmp/stigload." + std::to_string(::getpid()) + ".sock";
  d.pid = ::fork();
  if (d.pid < 0) return std::nullopt;
  if (d.pid == 0) {
    const std::string jobs = std::to_string(args.jobs);
    const std::string shards = std::to_string(args.shards);
    const std::string queue = std::to_string(args.queue_bound);
    ::execl(args.spawn.c_str(), "stigd", "--socket", d.socket_path.c_str(),
            "--jobs", jobs.c_str(), "--shards", shards.c_str(),
            "--queue-bound", queue.c_str(), static_cast<char*>(nullptr));
    std::cerr << "error: exec " << args.spawn << ": "
              << std::strerror(errno) << "\n";
    ::_exit(127);
  }
  return d;
}

int finish_spawned(const SpawnedDaemon& d) {
  ::kill(d.pid, SIGTERM);
  int status = 0;
  if (::waitpid(d.pid, &status, 0) < 0) {
    std::cerr << "error: waitpid: " << std::strerror(errno) << "\n";
    return kExitRuntime;
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::cerr << "error: spawned stigd did not shut down cleanly (status "
              << status << ")\n";
    return kExitRuntime;
  }
  return kExitOk;
}

void write_report(const Args& args, const RunResult& run,
                  const obs::MetricsRegistry& client_metrics,
                  std::ostream& out) {
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof(digest_hex), "0x%016llx",
                static_cast<unsigned long long>(run.digest));
  out << "{\n  \"tool\": \"stigload\",\n  \"seed\": " << args.seed
      << ",\n  \"requests_sent\": " << run.requests_sent
      << ",\n  \"deliveries\": " << run.deliveries
      << ",\n  \"busy\": " << run.busy << ",\n  \"transcript_digest\": \""
      << digest_hex << "\",\n  \"metrics\": ";
  client_metrics.write_json(out);
  out << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return kExitUsage;
  if (args.help) {
    print_help();
    return kExitOk;
  }
  const std::optional<Mix> mix = parse_mix(args.mix);
  if (!mix) {
    std::cerr << "bad --mix spec: " << args.mix << "\n";
    return kExitUsage;
  }
  const int transports = static_cast<int>(args.inproc) +
                         static_cast<int>(!args.socket_path.empty()) +
                         static_cast<int>(!args.spawn.empty());
  if (transports > 1) {
    std::cerr << "--inproc, --socket and --spawn are mutually exclusive\n";
    return kExitUsage;
  }
  if (args.verify_deterministic &&
      (!args.socket_path.empty() || !args.spawn.empty())) {
    std::cerr << "--verify-deterministic needs the in-process transport\n";
    return kExitUsage;
  }
  if (args.robots_max < 2 || args.sessions == 0 || args.shards == 0) {
    std::cerr << "--robots-max must be >= 2, --sessions and --shards "
                 "positive\n";
    return kExitUsage;
  }

  // Determinism verification: the same workload at --jobs and at one
  // worker must agree on the transcript digest and every gated metric.
  if (args.verify_deterministic) {
    InprocTransport wide(inproc_options(args, args.jobs));
    InprocTransport narrow(inproc_options(args, 1));
    obs::MetricsRegistry ma;
    obs::MetricsRegistry mb;
    const RunResult a = run_workload(args, *mix, wide, ma);
    const RunResult b = run_workload(args, *mix, narrow, mb);
    if (!a.ok || !b.ok) {
      std::cerr << "error: " << (a.ok ? b.error : a.error) << "\n";
      return kExitRuntime;
    }
    const std::string ga = gated_metric_lines(metrics_json(wide.registry()));
    const std::string gb =
        gated_metric_lines(metrics_json(narrow.registry()));
    if (a.digest != b.digest || a.deliveries != b.deliveries ||
        a.transcript != b.transcript || ga != gb) {
      std::cerr << "DETERMINISM VIOLATION: jobs=" << args.jobs
                << " vs jobs=1 diverged (digests "
                << a.digest << " vs " << b.digest << ", deliveries "
                << a.deliveries << " vs " << b.deliveries << ")\n";
      return kExitMismatch;
    }
    std::cout << "deterministic: " << a.requests_sent << " requests, "
              << a.deliveries << " deliveries, digest 0x" << std::hex
              << a.digest << std::dec << " identical at jobs="
              << (args.jobs == 0 ? std::string("auto")
                                 : std::to_string(args.jobs))
              << " and jobs=1\n";
    return kExitOk;
  }

  std::optional<SpawnedDaemon> spawned;
  std::unique_ptr<Transport> transport;
  if (!args.socket_path.empty() || !args.spawn.empty()) {
    std::string path = args.socket_path;
    if (!args.spawn.empty()) {
      spawned = spawn_stigd(args);
      if (!spawned) {
        std::cerr << "error: fork failed\n";
        return kExitRuntime;
      }
      path = spawned->socket_path;
    }
    auto sock = std::make_unique<SocketTransport>();
    bool connected = false;
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (sock->connect(path)) {
        connected = true;
        break;
      }
      ::usleep(50 * 1000);
    }
    if (!connected) {
      std::cerr << "error: could not connect to " << path << "\n";
      if (spawned) (void)finish_spawned(*spawned);
      return kExitRuntime;
    }
    transport = std::move(sock);
  } else {
    transport = std::make_unique<InprocTransport>(
        inproc_options(args, args.jobs));
  }

  obs::MetricsRegistry client_metrics;
  const RunResult run = run_workload(args, *mix, *transport, client_metrics);
  transport.reset();  // Close the socket before stopping a spawned stigd.
  int exit_code = kExitOk;
  if (spawned) exit_code = finish_spawned(*spawned);
  if (!run.ok) {
    std::cerr << "error: " << run.error << "\n";
    return kExitRuntime;
  }

  if (!args.transcript.empty()) {
    const auto dump = [&](std::ostream& out) {
      for (const std::string& line : run.transcript) out << line << "\n";
    };
    if (args.transcript == "-") {
      dump(std::cout);
    } else {
      std::ofstream out(args.transcript);
      if (!out) {
        std::cerr << "error: could not write " << args.transcript << "\n";
        return kExitRuntime;
      }
      dump(out);
    }
  }
  if (!args.report.empty()) {
    if (args.report == "-") {
      write_report(args, run, client_metrics, std::cout);
    } else {
      std::ofstream out(args.report);
      if (!out) {
        std::cerr << "error: could not write " << args.report << "\n";
        return kExitRuntime;
      }
      write_report(args, run, client_metrics, out);
    }
  }
  std::cerr << "stigload: " << run.requests_sent << " request(s), "
            << run.deliveries << " delivery(ies), " << run.busy
            << " busy, digest 0x" << std::hex << run.digest << std::dec
            << "\n";
  return exit_code;
}
