// stigfuzz — schedule-fuzzing and differential conformance driver.
//
// Samples (protocol x scheduler x n x payload) configurations from case
// seeds, runs each under the engine with the invariant watchdog in abort
// mode, and checks the delivery, termination, and differential oracles
// (see src/fuzz/fuzzer.hpp). Every failure is shrunk to a minimal config
// (payload -> robots -> instants -> p) and written as repro_<hash>.json
// (plus repro_last.json) for `stigsim --replay`. Examples:
//
//   stigfuzz --cases 200 --seed 7
//   stigfuzz --cases 2000 --jobs 8
//   stigfuzz --corpus 1,2,3,4,5 --budget 60
//   stigfuzz --cases 1 --inject framing --out /tmp/repros
//   stigfuzz --faults --corpus 1,2,3 --out /tmp/repros
//
// --jobs N fans cases across a par::BatchRunner pool. Case seeds derive
// from the master seed by index (par::derive_seed), so the verdicts AND
// schedule digests of --jobs 8 are byte-identical to --jobs 1; failures
// are reported, shrunk and written in seed order either way.
//
// Exit codes: 0 all cases passed; 1 at least one failure (repros written);
// 2 usage error; 3 runtime or I/O error.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/batch.hpp"
#include "fuzz/cov_guided.hpp"
#include "fuzz/fuzz_config.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/shrink.hpp"
#include "obs/cov.hpp"
#include "par/seed.hpp"

namespace {

using namespace stig;

constexpr int kExitClean = 0;
constexpr int kExitFailures = 1;
constexpr int kExitUsage = 2;
constexpr int kExitRuntime = 3;

struct Args {
  std::size_t cases = 50;
  std::uint64_t seed = 1;
  double budget_seconds = 0.0;  ///< 0 = no time box.
  std::string out_dir = ".";
  std::vector<std::uint64_t> corpus;  ///< Fixed case seeds; overrides
                                      ///< random sampling when non-empty.
  std::string inject;                 ///< "" or "framing".
  bool faults = false;                ///< Force fault-masking dimensions.
  bool corrupt = false;               ///< Force the arbitrary-state mode.
  bool no_shrink = false;
  std::size_t max_shrink = 200;
  std::size_t jobs = 1;               ///< Worker threads; 0 = all cores.
  std::string cov_dir;                ///< "" = no COV artifact.
  bool cov_guided = false;            ///< Reorder seeds for early coverage.
  bool help = false;
};

void print_help() {
  std::cout <<
      "stigfuzz — schedule fuzzer / differential conformance harness\n\n"
      "  --cases N       number of random cases (default 50)\n"
      "  --seed S        master seed; case i uses a seed derived from it\n"
      "  --corpus A,B,C  run exactly these case seeds (smoke mode)\n"
      "  --budget SEC    stop sampling after SEC seconds (0 = no limit)\n"
      "  --out DIR       directory for repro_*.json (default .)\n"
      "  --inject framing  arm a one-shot decode-bit flip on the receiver\n"
      "                  in every case — proves the find/shrink/replay\n"
      "                  pipeline end to end\n"
      "  --faults        force the fault-masking dimensions on every case:\n"
      "                  a seed-derived group size (2-3 lanes) and\n"
      "                  FaultPlan (crash/stall/jitter/burst, lane 0 kept\n"
      "                  clean) — the whole batch runs crash-masked\n"
      "  --corrupt       force the arbitrary-state mode on every case: one\n"
      "                  seed-derived transient corruption (phase, cursor,\n"
      "                  parser or naming) mid-flight — every case must\n"
      "                  reconverge and match its fault-free twin's probe\n"
      "                  transcript (the self-stabilization oracle)\n"
      "  --no-shrink     write failures un-shrunk\n"
      "  --max-shrink N  shrink attempt cap per failure (default 200)\n"
      "  --jobs N        run cases on N worker threads (default 1;\n"
      "                  0 = all cores). Verdicts and schedule digests\n"
      "                  are identical for every N\n"
      "  --cov DIR       collect protocol/frame/sched/fault coverage and\n"
      "                  write DIR/COV_corpus.json (merged in scheduled\n"
      "                  seed order — byte-identical at any --jobs); per-\n"
      "                  seed novelty is printed as cases merge\n"
      "  --cov-guided    reorder the seed schedule round-robin across\n"
      "                  configuration classes so new coverage edges are\n"
      "                  reached early. Pure reorder: every case still\n"
      "                  runs bit-for-bit as it would blind\n\n"
      "oracles: delivery (bytes arrive intact), termination (quiescent\n"
      "within budget, no invariant violation), differential (equivalent\n"
      "protocols deliver identical payloads under the same schedule)\n\n"
      "exit codes: 0 clean; 1 failures found (repros written);\n"
      "            2 usage error; 3 runtime/I-O error\n";
}

bool parse(int argc, char** argv, Args& a) {
  const auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      a.help = true;
    } else if (flag == "--cases") {
      const char* v = need(i);
      if (!v) return false;
      a.cases = static_cast<std::size_t>(std::stoull(v));
    } else if (flag == "--seed") {
      const char* v = need(i);
      if (!v) return false;
      a.seed = std::stoull(v);
    } else if (flag == "--budget") {
      const char* v = need(i);
      if (!v) return false;
      a.budget_seconds = std::stod(v);
    } else if (flag == "--out") {
      const char* v = need(i);
      if (!v) return false;
      a.out_dir = v;
    } else if (flag == "--corpus") {
      const char* v = need(i);
      if (!v) return false;
      std::stringstream ss(v);
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        if (!tok.empty()) a.corpus.push_back(std::stoull(tok));
      }
    } else if (flag == "--inject") {
      const char* v = need(i);
      if (!v) return false;
      a.inject = v;
      if (a.inject != "framing") {
        std::cerr << "--inject supports: framing\n";
        return false;
      }
    } else if (flag == "--faults") {
      a.faults = true;
    } else if (flag == "--corrupt") {
      a.corrupt = true;
    } else if (flag == "--no-shrink") {
      a.no_shrink = true;
    } else if (flag == "--max-shrink") {
      const char* v = need(i);
      if (!v) return false;
      a.max_shrink = static_cast<std::size_t>(std::stoull(v));
    } else if (flag == "--jobs") {
      const char* v = need(i);
      if (!v) return false;
      a.jobs = static_cast<std::size_t>(std::stoull(v));
    } else if (flag == "--cov") {
      const char* v = need(i);
      if (!v) return false;
      a.cov_dir = v;
    } else if (flag == "--cov-guided") {
      a.cov_guided = true;
    } else {
      std::cerr << "unknown flag: " << flag << " (see --help)\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return kExitUsage;
  if (args.help) {
    print_help();
    return kExitClean;
  }

  // Case seeds: the fixed corpus verbatim, or derived from the master seed
  // by case index (so --seed S --cases N is one reproducible batch, and
  // case i's seed does not depend on how many cases run before it).
  std::vector<std::uint64_t> seeds = args.corpus;
  if (seeds.empty()) {
    for (std::size_t i = 0; i < args.cases; ++i) {
      seeds.push_back(par::derive_seed(args.seed, i));
    }
  }
  // Static reorder, computed before anything runs: deterministic in the
  // seed set, so replay, repro files and jobs-invariance are untouched.
  if (args.cov_guided) seeds = fuzz::guided_order(seeds);
  const bool collect_cov = args.cov_guided || !args.cov_dir.empty();

  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  // One-shot decode-bit flip early in the first frame on the receiver:
  // the CRC must reject the frame and the delivery oracle must see the
  // loss.
  const std::optional<fuzz::FaultSpec> fault =
      args.inject == "framing" ? std::optional(fuzz::FaultSpec{1, 10})
                               : std::nullopt;

  // Cases fan out across the pool a chunk at a time; the time budget is
  // checked at chunk boundaries, and failures are shrunk and written
  // sequentially, in seed order — identical output at any --jobs.
  const std::size_t chunk = std::max<std::size_t>(
      16, 4 * (args.jobs == 0
                   ? std::max<unsigned>(std::thread::hardware_concurrency(), 1)
                   : args.jobs));

  std::size_t ran = 0;
  std::size_t failures = 0;
  obs::cov::CovMap corpus_cov;  // Merged in scheduled seed order.
  try {
    for (std::size_t begin = 0; begin < seeds.size(); begin += chunk) {
      if (args.budget_seconds > 0.0 && elapsed() > args.budget_seconds) {
        std::cerr << "time budget reached after " << ran << " case(s)\n";
        break;
      }
      const std::size_t end = std::min(seeds.size(), begin + chunk);
      const std::vector<fuzz::BatchCase> batch = fuzz::run_cases(
          std::span(seeds).subspan(begin, end - begin), fault, args.jobs,
          args.faults, collect_cov, args.corrupt);
      ran += batch.size();
      for (const fuzz::BatchCase& bc : batch) {
        if (bc.cov != nullptr) {
          // Merge in scheduled order so the corpus map (and the novelty
          // narrative) never depends on which worker finished first.
          const std::uint64_t before = corpus_cov.distinct_edges();
          corpus_cov.merge_from(*bc.cov);
          std::cout << "cov: case " << bc.case_seed << " +"
                    << (corpus_cov.distinct_edges() - before)
                    << " edge(s) (total " << corpus_cov.distinct_edges()
                    << ")\n";
        }
        if (bc.result.kind == fuzz::FailureKind::none) continue;

        ++failures;
        std::cerr << "case seed " << bc.case_seed << ": "
                  << fuzz::failure_kind_name(bc.result.kind) << " — "
                  << bc.result.detail << "\n";
        fuzz::FuzzConfig minimal = bc.config;
        fuzz::CaseResult minimal_result = bc.result;
        if (!args.no_shrink) {
          const fuzz::ShrinkResult s =
              fuzz::shrink(bc.config, bc.result, args.max_shrink);
          minimal = s.config;
          minimal_result = s.result;
          std::cerr << "  shrunk in " << s.attempts
                    << " attempt(s): payload " << bc.config.payload.size()
                    << "B -> " << minimal.payload.size() << "B, n "
                    << bc.config.n << " -> " << minimal.n << "\n";
        }
        fuzz::Repro repro;
        repro.config = minimal;
        repro.kind = minimal_result.kind;
        repro.detail = minimal_result.detail;
        repro.schedule_digest = minimal_result.schedule_digest;
        repro.schedule_instants = minimal_result.schedule_instants;
        std::string error;
        const auto path = fuzz::save_repro(args.out_dir, repro, &error);
        if (!path) {
          std::cerr << "error: " << error << "\n";
          return kExitRuntime;
        }
        std::cerr << "  wrote " << *path
                  << " (replay with: stigsim --replay " << *path << ")\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitRuntime;
  }

  if (!args.cov_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(args.cov_dir, ec);
    // The corrupted corpus exercises a different edge universe (the
    // fault.corrupt_* paths), so its map gets its own name — and its own
    // committed baseline under bench/baselines.
    const std::string stem = args.corrupt ? "corpus_corrupt" : "corpus";
    const std::string path =
        (std::filesystem::path(args.cov_dir) / ("COV_" + stem + ".json"))
            .string();
    std::ofstream out(path);
    if (!out) {
      std::cerr << "stigfuzz: could not write " << path << "\n";
      return kExitRuntime;
    }
    out << corpus_cov.render_json(stem);
    std::cout << "cov: " << corpus_cov.distinct_edges() << " edge(s), "
              << corpus_cov.total_hits() << " hit(s), "
              << corpus_cov.dropped() << " dropped -> " << path << "\n";
  }

  std::cout << "stigfuzz: " << ran << " case(s), " << failures
            << " failure(s), " << static_cast<int>(elapsed()) << "s\n";
  return failures == 0 ? kExitClean : kExitFailures;
}
