// stigsoak — long-running soak driver over the fuzz oracles.
//
// Where stigfuzz answers "do these N cases pass right now", stigsoak keeps
// drawing fresh batches until a wall-clock box expires, which is the shape
// nightly CI wants: bounded time, unbounded cases, repros and a
// machine-readable report on the way out. Rounds are independently seeded
// from the root (round r's seeds derive from derive_seed(root, r), case i
// within it from derive_seed(round_root, i)), so any failing case is
// reproducible from `--seed` + the round/index printed with it — or just
// from the repro file, which stores the full config. Examples:
//
//   stigsoak --minutes 30 --jobs 0
//   stigsoak --seconds 20 --round-cases 100 --report soak_report.json
//
// Exit codes match stigfuzz: 0 all cases passed; 1 at least one failure
// (repros written); 2 usage error; 3 runtime or I/O error.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/batch.hpp"
#include "fuzz/fuzz_config.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/shrink.hpp"
#include "obs/cov.hpp"
#include "obs/json.hpp"
#include "par/seed.hpp"

namespace {

using namespace stig;

constexpr int kExitClean = 0;
constexpr int kExitFailures = 1;
constexpr int kExitUsage = 2;
constexpr int kExitRuntime = 3;

struct Args {
  double seconds = 60.0;        ///< Wall-clock box for drawing new rounds.
  std::uint64_t seed = 1;       ///< Root seed; rounds derive from it.
  std::size_t round_cases = 200;
  std::size_t jobs = 0;         ///< 0 = all cores.
  std::size_t max_rounds = 0;   ///< 0 = until the time box expires.
  std::size_t max_shrink = 200;
  std::string out_dir = ".";
  std::string report_path;      ///< "" = no report; "-" = stdout.
  std::string cov_dir;          ///< "" = no coverage collection.
  bool help = false;
};

void print_help() {
  std::cout <<
      "stigsoak — time-boxed soak runner over the fuzz oracles\n\n"
      "  --seconds SEC    wall-clock box (default 60); no new round starts\n"
      "                   after it expires (the running round completes)\n"
      "  --minutes MIN    same, in minutes\n"
      "  --seed S         root seed; round r derives its case seeds from it\n"
      "  --round-cases N  cases per round (default 200)\n"
      "  --jobs N         worker threads per round (default 0 = all cores)\n"
      "  --max-rounds N   stop after N rounds even inside the box (0 = off)\n"
      "  --max-shrink N   shrink attempt cap per failure (default 200)\n"
      "  --out DIR        directory for repro_*.json (default .)\n"
      "  --report PATH    write a JSON run report (\"-\" = stdout)\n"
      "  --cov DIR        collect coverage across every round and write\n"
      "                   DIR/COV_soak.json on exit (merged in round/seed\n"
      "                   order — byte-identical at any --jobs)\n\n"
      "exit codes: 0 clean; 1 failures found (repros written);\n"
      "            2 usage error; 3 runtime/I-O error\n";
}

bool parse(int argc, char** argv, Args& a) {
  const auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      a.help = true;
    } else if (flag == "--seconds") {
      const char* v = need(i);
      if (!v) return false;
      a.seconds = std::stod(v);
    } else if (flag == "--minutes") {
      const char* v = need(i);
      if (!v) return false;
      a.seconds = std::stod(v) * 60.0;
    } else if (flag == "--seed") {
      const char* v = need(i);
      if (!v) return false;
      a.seed = std::stoull(v);
    } else if (flag == "--round-cases") {
      const char* v = need(i);
      if (!v) return false;
      a.round_cases = static_cast<std::size_t>(std::stoull(v));
      if (a.round_cases == 0) {
        std::cerr << "--round-cases must be >= 1\n";
        return false;
      }
    } else if (flag == "--jobs") {
      const char* v = need(i);
      if (!v) return false;
      a.jobs = static_cast<std::size_t>(std::stoull(v));
    } else if (flag == "--max-rounds") {
      const char* v = need(i);
      if (!v) return false;
      a.max_rounds = static_cast<std::size_t>(std::stoull(v));
    } else if (flag == "--max-shrink") {
      const char* v = need(i);
      if (!v) return false;
      a.max_shrink = static_cast<std::size_t>(std::stoull(v));
    } else if (flag == "--out") {
      const char* v = need(i);
      if (!v) return false;
      a.out_dir = v;
    } else if (flag == "--report") {
      const char* v = need(i);
      if (!v) return false;
      a.report_path = v;
    } else if (flag == "--cov") {
      const char* v = need(i);
      if (!v) return false;
      a.cov_dir = v;
    } else {
      std::cerr << "unknown flag: " << flag << " (see --help)\n";
      return false;
    }
  }
  return true;
}

struct SoakTally {
  std::size_t rounds = 0;
  std::size_t cases = 0;
  std::size_t failures = 0;
  // One slot per fuzz::FailureKind, indexed by its enum value.
  std::vector<std::size_t> by_kind =
      std::vector<std::size_t>(static_cast<std::size_t>(
                                   fuzz::FailureKind::crash) + 1,
                               0);
};

void write_report(std::ostream& out, const Args& args, const SoakTally& t,
                  double wall_seconds) {
  out << "{\"tool\":\"stigsoak\""
      << ",\"seed\":" << args.seed
      << ",\"round_cases\":" << args.round_cases
      << ",\"jobs\":" << args.jobs
      << ",\"rounds\":" << t.rounds
      << ",\"cases\":" << t.cases
      << ",\"failures\":" << t.failures
      << ",\"failures_by_kind\":{";
  bool first = true;
  for (std::size_t k = 0; k < t.by_kind.size(); ++k) {
    if (t.by_kind[k] == 0) continue;
    if (!first) out << ',';
    first = false;
    out << obs::json_quote(fuzz::failure_kind_name(
               static_cast<fuzz::FailureKind>(k)))
        << ':' << t.by_kind[k];
  }
  out << "},\"wall_seconds\":" << obs::json_number(wall_seconds) << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return kExitUsage;
  if (args.help) {
    print_help();
    return kExitClean;
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  SoakTally tally;
  obs::cov::CovMap soak_cov;  // Merged in round-then-seed order.
  try {
    for (std::size_t round = 0;; ++round) {
      if (args.max_rounds > 0 && round >= args.max_rounds) break;
      if (round > 0 && elapsed() >= args.seconds) break;

      const std::uint64_t round_root = par::derive_seed(args.seed, round);
      std::vector<std::uint64_t> seeds;
      seeds.reserve(args.round_cases);
      for (std::size_t i = 0; i < args.round_cases; ++i) {
        seeds.push_back(par::derive_seed(round_root, i));
      }

      const std::vector<fuzz::BatchCase> batch =
          fuzz::run_cases(seeds, std::nullopt, args.jobs,
                          /*force_faults=*/false,
                          /*collect_coverage=*/!args.cov_dir.empty());
      ++tally.rounds;
      tally.cases += batch.size();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const fuzz::BatchCase& bc = batch[i];
        if (bc.cov != nullptr) soak_cov.merge_from(*bc.cov);
        if (bc.result.kind == fuzz::FailureKind::none) continue;
        ++tally.failures;
        ++tally.by_kind[static_cast<std::size_t>(bc.result.kind)];
        std::cerr << "round " << round << " case " << i << " (seed "
                  << bc.case_seed << "): "
                  << fuzz::failure_kind_name(bc.result.kind) << " — "
                  << bc.result.detail << "\n";
        const fuzz::ShrinkResult s =
            fuzz::shrink(bc.config, bc.result, args.max_shrink);
        fuzz::Repro repro;
        repro.config = s.config;
        repro.kind = s.result.kind;
        repro.detail = s.result.detail;
        repro.schedule_digest = s.result.schedule_digest;
        repro.schedule_instants = s.result.schedule_instants;
        std::string error;
        const auto path = fuzz::save_repro(args.out_dir, repro, &error);
        if (!path) {
          std::cerr << "error: " << error << "\n";
          return kExitRuntime;
        }
        std::cerr << "  wrote " << *path
                  << " (replay with: stigsim --replay " << *path << ")\n";
      }
      std::cerr << "round " << round << ": " << batch.size() << " case(s), "
                << tally.failures << " failure(s) so far, "
                << static_cast<int>(elapsed()) << "s\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitRuntime;
  }

  const double wall = elapsed();
  if (!args.cov_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(args.cov_dir, ec);
    const std::string path =
        (std::filesystem::path(args.cov_dir) / "COV_soak.json").string();
    std::ofstream out(path);
    if (!out) {
      std::cerr << "error: cannot write " << path << "\n";
      return kExitRuntime;
    }
    out << soak_cov.render_json("soak");
    std::cout << "cov: " << soak_cov.distinct_edges() << " edge(s), "
              << soak_cov.total_hits() << " hit(s) -> " << path << "\n";
  }
  if (!args.report_path.empty()) {
    if (args.report_path == "-") {
      write_report(std::cout, args, tally, wall);
    } else {
      std::ofstream out(args.report_path);
      if (!out) {
        std::cerr << "error: cannot write " << args.report_path << "\n";
        return kExitRuntime;
      }
      write_report(out, args, tally, wall);
    }
  }
  std::cout << "stigsoak: " << tally.rounds << " round(s), " << tally.cases
            << " case(s), " << tally.failures << " failure(s), "
            << static_cast<int>(wall) << "s\n";
  return tally.failures == 0 ? kExitClean : kExitFailures;
}
