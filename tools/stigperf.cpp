// stigperf — the performance-observability driver.
//
// Runs the fixed protocol × robot-count scenario matrix from
// src/perf/perf_matrix.hpp and writes one PERF_<scenario>.json artifact
// per cell, in the same schema as the BENCH_*.json artifacts so
// stigreport's parser applies unchanged. The deterministic keys
// (allocs/bytes/events per instant, per-phase allocation counters) are a
// pure function of (code, scenario) — `stigreport perf` hard-gates them
// against bench/baselines/ with zero tolerance; the timing keys (cycles,
// run_ns, wall_seconds) are informational per obs/metric_keys.hpp.
//
//   stigperf                  fast matrix, artifacts in the working dir
//   stigperf --full           adds the nightly-only large cells
//   stigperf --out DIR        artifact directory
//   stigperf --jobs N         fan cells across N BatchRunner workers
//                             (artifacts are byte-identical at any N)
//   stigperf --no-timing      omit timing keys (byte-stable output)
//   stigperf --scenario NAME  run only the named cell (repeatable)
//
// Exit codes: 0 ok; 1 a scenario failed to reach quiescence; 2 usage
// error; 3 I/O error.
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "obs/alloc_track.hpp"
#include "par/batch_runner.hpp"
#include "perf/perf_matrix.hpp"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;

void usage(std::ostream& out) {
  out << "stigperf — deterministic hot-path cost measurement\n\n"
      << "  stigperf [--full] [--out DIR] [--jobs N] [--no-timing]\n"
      << "           [--scenario NAME]... [--list]\n\n"
      << "Writes PERF_<scenario>.json per matrix cell; gate with\n"
      << "`stigreport perf --baseline bench/baselines PERF_*.json`.\n\n"
      << "exit codes: 0 ok; 1 non-quiescent scenario; 2 usage; 3 I/O\n";
}

}  // namespace

int main(int argc, char** argv) {
  using stig::perf::Scenario;
  using stig::perf::ScenarioResult;

  bool full = false;
  bool timing = true;
  bool list = false;
  std::string out_dir = ".";
  std::size_t jobs = 1;
  std::vector<std::string> only;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto need = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= args.size()) {
        std::cerr << "stigperf: " << flag << " needs a value\n";
        return std::nullopt;
      }
      return args[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(std::cout);
      return kExitOk;
    } else if (a == "--full") {
      full = true;
    } else if (a == "--no-timing") {
      timing = false;
    } else if (a == "--list") {
      list = true;
    } else if (a == "--out") {
      const auto v = need("--out");
      if (!v) return kExitUsage;
      out_dir = *v;
    } else if (a == "--jobs") {
      const auto v = need("--jobs");
      if (!v) return kExitUsage;
      jobs = static_cast<std::size_t>(std::strtoull(v->c_str(), nullptr, 10));
      if (jobs == 0) jobs = 1;
    } else if (a == "--scenario") {
      const auto v = need("--scenario");
      if (!v) return kExitUsage;
      only.push_back(*v);
    } else {
      std::cerr << "stigperf: unknown flag " << a << "\n";
      usage(std::cerr);
      return kExitUsage;
    }
  }

  std::vector<Scenario> matrix =
      full ? stig::perf::full_matrix() : stig::perf::fast_matrix();
  if (!only.empty()) {
    std::vector<Scenario> picked;
    for (const std::string& name : only) {
      bool found = false;
      for (const Scenario& s : stig::perf::full_matrix()) {
        if (s.name == name) {
          picked.push_back(s);
          found = true;
        }
      }
      if (!found) {
        std::cerr << "stigperf: unknown scenario " << name << "\n";
        return kExitUsage;
      }
    }
    matrix = std::move(picked);
  }
  if (list) {
    for (const Scenario& s : matrix) std::cout << s.name << "\n";
    return kExitOk;
  }

  if (!stig::obs::alloc::active()) {
    std::cerr << "stigperf: warning: allocation tracking inactive "
                 "(sanitizer build) — alloc keys will read zero\n";
  }

  stig::par::BatchRunner runner(stig::par::BatchOptions{.jobs = jobs});
  const std::vector<ScenarioResult> results = runner.map(
      matrix.size(),
      [&](std::size_t i) { return stig::perf::run_scenario(matrix[i]); });

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  std::cout << std::left << std::setw(14) << "scenario" << std::right
            << std::setw(10) << "instants" << std::setw(12) << "events/i"
            << std::setw(12) << "allocs/i" << std::setw(12) << "bytes/i"
            << std::setw(12) << "peak_bytes" << std::setw(10) << "ms"
            << "\n";
  int failures = 0;
  for (const ScenarioResult& r : results) {
    const double inst =
        r.instants > 0 ? static_cast<double>(r.instants) : 1.0;
    std::cout << std::left << std::setw(14) << r.scenario.name << std::right
              << std::setw(10) << r.instants << std::setw(12) << std::fixed
              << std::setprecision(3)
              << static_cast<double>(r.events) / inst << std::setw(12)
              << static_cast<double>(r.allocs) / inst << std::setw(12)
              << std::setprecision(1)
              << static_cast<double>(r.bytes) / inst << std::setw(12)
              << r.peak_bytes << std::setw(10) << std::setprecision(2)
              << r.run_ns / 1e6 << "\n";
    std::cout.unsetf(std::ios::fixed);
    if (!r.quiescent) {
      std::cerr << "stigperf: " << r.scenario.name
                << " did not reach quiescence in "
                << r.scenario.max_instants << " instants\n";
      ++failures;
    }
    const std::string path =
        (std::filesystem::path(out_dir) / ("PERF_" + r.scenario.name + ".json"))
            .string();
    std::ofstream out(path);
    if (!out) {
      std::cerr << "stigperf: could not write " << path << "\n";
      return kExitIo;
    }
    out << stig::perf::render_perf_json(r, timing);
    if (!out) {
      std::cerr << "stigperf: could not write " << path << "\n";
      return kExitIo;
    }
    std::cout << "wrote " << path << "\n";
  }
  return failures == 0 ? kExitOk : kExitFailure;
}
