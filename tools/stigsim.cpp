// stigsim — command-line driver for the stigmergy simulator.
//
// Scatter a swarm, queue messages, run the SSM world, and report delivery
// and motion statistics; optionally dump the trajectory SVG and structured
// telemetry (event log, Chrome trace, run report). Examples:
//
//   stigsim --n 8 --message "hello" --from 0 --to 5
//   stigsim --async --p 0.4 --n 4 --broadcast --message "to all" --svg run.svg
//   stigsim --n 12 --protocol ksegment --k 3 --ids --sod --seed 9
//   stigsim --n 6 --message hi --events e.jsonl --chrome-trace t.json
//   stigsim --n 6 --message hi --spans - --watchdog report --report r.json
//
// `stigsim --replay repro.json` re-executes a failing case written by
// stigfuzz and verifies the failure reproduces bit-for-bit (same failure
// kind *and* same activation-schedule digest).
//
// Exit codes: 0 message(s) delivered (or replay came up clean); 1 run
// finished with no delivery (timeout); 2 usage error (bad flag or value);
// 3 runtime or I/O error (or replay diverged); 4 watchdog violation in
// report mode; 5 replay reproduced the recorded failure.
//
// Run `stigsim --help` for the full flag list.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "core/chat_network.hpp"
#include "core/exit_codes.hpp"
#include "encode/bits.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/repro.hpp"
#include "obs/binary_log.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_sink.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "obs/watchdog.hpp"
#include "sim/rng.hpp"
#include "sim/jsonl.hpp"
#include "viz/figures.hpp"

namespace {

using namespace stig;

// Exit codes: the shared table in core/exit_codes.hpp, which --help, the
// README and docs/OBSERVABILITY.md must all agree with (pinned by
// tests/test_cli_exit_codes.cpp).
using cli::kExitDelivered;
using cli::kExitNoDelivery;
using cli::kExitUsage;
using cli::kExitRuntime;
using cli::kExitWatchdog;
using cli::kExitReproduced;

struct Args {
  std::size_t n = 6;
  std::uint64_t seed = 1;
  bool async_mode = false;
  bool ids = false;
  bool sod = false;
  bool mirrored = false;
  bool broadcast = false;
  double p = 0.5;
  double sigma = 0.25;
  double extent = 30.0;
  double quantum = 0.0;
  sim::Time delay = 0;
  std::size_t k = 4;
  std::string protocol = "auto";
  std::string scheduler = "bernoulli";
  std::string message = "stigmergy";
  std::size_t from = 0;
  std::size_t to = 1;
  sim::Time max_instants = 5'000'000;
  std::string svg;
  std::string jsonl;
  std::string events;
  std::string chrome_trace;
  std::string report;
  std::string spans;
  std::string span_trace;
  std::string metrics;
  std::string watchdog;       // "", "report" or "abort".
  std::string replay;         // stigfuzz repro file to re-execute.
  double min_separation = 0.0;
  std::size_t flight_recorder = 0;
  std::string flight_dump = "flight.jsonl";
  bool help = false;
};

void print_help() {
  std::cout <<
      "stigsim — deaf, dumb, and chatting robots simulator\n\n"
      "  --n N             swarm size (default 6)\n"
      "  --seed S          RNG seed for placement/frames/scheduler\n"
      "  --async           asynchronous (SSM-fair) mode; default synchronous\n"
      "  --ids             robots carry observable IDs\n"
      "  --sod             robots share a sense of direction\n"
      "  --mirrored        left-handed frames (chirality still holds)\n"
      "  --protocol P      auto|sync2|sliced|ksegment|async2|asyncn\n"
      "  --k K             k-segment index base (default 4)\n"
      "  --scheduler S     bernoulli|centralized|ksubset|adversarial\n"
      "  --p P             activation probability (bernoulli)\n"
      "  --sigma S         max travel per activation (default 0.25)\n"
      "  --quantum Q       sensor grid resolution (0 = ideal)\n"
      "  --delay D         observation staleness in instants\n"
      "  --message TEXT    payload (default \"stigmergy\")\n"
      "  --from I --to J   unicast endpoints (default 0 -> 1)\n"
      "  --broadcast       one-to-all from --from instead of unicast\n"
      "  --max-instants T  give up after T instants\n"
      "  --svg FILE        write the trajectory figure\n"
      "  --jsonl FILE      write the position history as JSON Lines\n"
      "  --events FILE     write the telemetry event log as JSON Lines\n"
      "  --chrome-trace F  write a Chrome/Perfetto trace_event file\n"
      "  --report FILE     write the machine-readable run report\n"
      "                    (\"-\" writes the report to stdout)\n"
      "  --spans FILE      write per-message span JSON (\"-\" = stdout)\n"
      "  --span-trace F    write nested message/phase spans as a Chrome\n"
      "                    trace_event file\n"
      "  --metrics FILE    write a MetricsRegistry snapshot as JSON at\n"
      "                    exit (\"-\" = stdout)\n"
      "  --replay FILE     re-execute a stigfuzz repro and verify the\n"
      "                    failure reproduces bit-for-bit (kind + schedule\n"
      "                    digest); ignores the other run flags\n"
      "  --watchdog MODE   check paper invariants live: report|abort\n"
      "  --min-separation X  watchdog separation floor (default off)\n"
      "  --flight-recorder N keep the last N events for post-mortem dumps\n"
      "  --flight-dump F   flight-recorder dump path (default\n"
      "                    flight.jsonl; written on watchdog violation,\n"
      "                    engine throw, or fatal signal)\n\n"
      << cli::stigsim_exit_code_help();
}

bool parse(int argc, char** argv, Args& a) {
  const auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto num = [&](auto& out) {
      const char* v = need(i);
      if (!v) return false;
      out = static_cast<std::remove_reference_t<decltype(out)>>(
          std::stod(v));
      return true;
    };
    if (flag == "--help" || flag == "-h") {
      a.help = true;
    } else if (flag == "--n") {
      if (!num(a.n)) return false;
    } else if (flag == "--seed") {
      if (!num(a.seed)) return false;
    } else if (flag == "--async") {
      a.async_mode = true;
    } else if (flag == "--ids") {
      a.ids = true;
    } else if (flag == "--sod") {
      a.sod = true;
    } else if (flag == "--mirrored") {
      a.mirrored = true;
    } else if (flag == "--broadcast") {
      a.broadcast = true;
    } else if (flag == "--p") {
      if (!num(a.p)) return false;
    } else if (flag == "--sigma") {
      if (!num(a.sigma)) return false;
    } else if (flag == "--quantum") {
      if (!num(a.quantum)) return false;
    } else if (flag == "--delay") {
      if (!num(a.delay)) return false;
    } else if (flag == "--k") {
      if (!num(a.k)) return false;
    } else if (flag == "--from") {
      if (!num(a.from)) return false;
    } else if (flag == "--to") {
      if (!num(a.to)) return false;
    } else if (flag == "--max-instants") {
      if (!num(a.max_instants)) return false;
    } else if (flag == "--protocol") {
      const char* v = need(i);
      if (!v) return false;
      a.protocol = v;
    } else if (flag == "--scheduler") {
      const char* v = need(i);
      if (!v) return false;
      a.scheduler = v;
    } else if (flag == "--message") {
      const char* v = need(i);
      if (!v) return false;
      a.message = v;
    } else if (flag == "--svg") {
      const char* v = need(i);
      if (!v) return false;
      a.svg = v;
    } else if (flag == "--jsonl") {
      const char* v = need(i);
      if (!v) return false;
      a.jsonl = v;
    } else if (flag == "--events") {
      const char* v = need(i);
      if (!v) return false;
      a.events = v;
    } else if (flag == "--chrome-trace") {
      const char* v = need(i);
      if (!v) return false;
      a.chrome_trace = v;
    } else if (flag == "--report") {
      const char* v = need(i);
      if (!v) return false;
      a.report = v;
    } else if (flag == "--spans") {
      const char* v = need(i);
      if (!v) return false;
      a.spans = v;
    } else if (flag == "--span-trace") {
      const char* v = need(i);
      if (!v) return false;
      a.span_trace = v;
    } else if (flag == "--metrics") {
      const char* v = need(i);
      if (!v) return false;
      a.metrics = v;
    } else if (flag == "--watchdog") {
      const char* v = need(i);
      if (!v) return false;
      a.watchdog = v;
      if (a.watchdog != "report" && a.watchdog != "abort") {
        std::cerr << "--watchdog must be report or abort\n";
        return false;
      }
    } else if (flag == "--replay") {
      const char* v = need(i);
      if (!v) return false;
      a.replay = v;
    } else if (flag == "--min-separation") {
      if (!num(a.min_separation)) return false;
    } else if (flag == "--flight-recorder") {
      if (!num(a.flight_recorder)) return false;
    } else if (flag == "--flight-dump") {
      const char* v = need(i);
      if (!v) return false;
      a.flight_dump = v;
    } else {
      std::cerr << "unknown flag: " << flag << " (see --help)\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return kExitUsage;
  if (args.help) {
    print_help();
    return 0;
  }

  if (!args.replay.empty()) {
    std::string error;
    const auto repro = fuzz::load_repro(args.replay, &error);
    if (!repro) {
      std::cerr << "error: " << error << "\n";
      return kExitRuntime;
    }
    const fuzz::CaseResult result = fuzz::run_case(repro->config);
    std::cout << "replay: kind " << fuzz::failure_kind_name(result.kind)
              << " (recorded " << fuzz::failure_kind_name(repro->kind)
              << "), schedule digest 0x" << std::hex
              << result.schedule_digest << " (recorded 0x"
              << repro->schedule_digest << std::dec << "), "
              << result.schedule_instants << " instant(s)\n";
    if (result.kind == fuzz::FailureKind::none) {
      std::cout << "replay: clean — the recorded failure did not occur\n";
      return kExitDelivered;
    }
    if (result.kind == repro->kind &&
        result.schedule_digest == repro->schedule_digest) {
      std::cout << "replay: reproduced bit-for-bit — " << result.detail
                << "\n";
      return kExitReproduced;
    }
    std::cout << "replay: diverged from the recording\n";
    return kExitRuntime;
  }

  static const std::map<std::string, core::ProtocolKind> kProtocols{
      {"auto", core::ProtocolKind::automatic},
      {"sync2", core::ProtocolKind::sync2},
      {"sliced", core::ProtocolKind::sliced},
      {"ksegment", core::ProtocolKind::ksegment},
      {"async2", core::ProtocolKind::async2},
      {"asyncn", core::ProtocolKind::asyncn}};
  static const std::map<std::string, core::SchedulerKind> kSchedulers{
      {"bernoulli", core::SchedulerKind::bernoulli},
      {"centralized", core::SchedulerKind::centralized},
      {"ksubset", core::SchedulerKind::ksubset},
      {"adversarial", core::SchedulerKind::adversarial}};
  if (!kProtocols.contains(args.protocol) ||
      !kSchedulers.contains(args.scheduler)) {
    std::cerr << "unknown protocol or scheduler (see --help)\n";
    return kExitUsage;
  }
  if (args.from >= args.n || (!args.broadcast && args.to >= args.n)) {
    std::cerr << "--from/--to must name robots below --n " << args.n << "\n";
    return kExitUsage;
  }

  // Telemetry sinks: all attached through one fan-out point.
  obs::MultiSink sinks;
  // The event log buffers compact binary records on the hot path
  // (obs/binary_log.hpp) and renders the byte-identical JSONL only at
  // export time; the file stream is opened up front so a bad path still
  // fails before the run starts.
  std::unique_ptr<obs::BinaryLogSink> event_log;
  std::unique_ptr<std::ofstream> event_file;
  std::unique_ptr<obs::ChromeTraceSink> chrome;
  if (!args.events.empty()) {
    event_file = std::make_unique<std::ofstream>(args.events);
    if (!*event_file) {
      std::cerr << "error: could not open " << args.events << "\n";
      return kExitRuntime;
    }
    event_log = std::make_unique<obs::BinaryLogSink>();
    sinks.add(event_log.get());
  }
  if (!args.chrome_trace.empty()) {
    chrome = obs::ChromeTraceSink::open(args.chrome_trace);
    if (!chrome) {
      std::cerr << "error: could not open " << args.chrome_trace << "\n";
      return kExitRuntime;
    }
    sinks.add(chrome.get());
  }
  // The recorder is added before the watchdog so a violation's dump already
  // contains the event that tripped it.
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (args.flight_recorder > 0) {
    recorder = std::make_unique<obs::FlightRecorder>(args.flight_recorder);
    sinks.add(recorder.get());
    obs::FlightRecorder::install_crash_handler(recorder.get(),
                                               args.flight_dump);
  }
  std::unique_ptr<obs::SpanBuilder> span_builder;
  if (!args.spans.empty() || !args.span_trace.empty()) {
    span_builder = std::make_unique<obs::SpanBuilder>();
    sinks.add(span_builder.get());
  }
  std::unique_ptr<obs::Watchdog> watchdog;

  // Scatter the swarm.
  sim::Rng rng(args.seed ^ 0x5745);
  std::vector<geom::Vec2> pts;
  const double min_gap = 3.0;
  while (pts.size() < args.n) {
    const geom::Vec2 p{rng.uniform(-args.extent, args.extent),
                       rng.uniform(-args.extent, args.extent)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < min_gap) ok = false;
    }
    if (ok) pts.push_back(p);
  }

  core::ChatNetworkOptions opt;
  opt.synchrony = args.async_mode ? core::Synchrony::asynchronous
                                  : core::Synchrony::synchronous;
  opt.caps.visible_ids = args.ids;
  opt.caps.sense_of_direction = args.sod || args.ids;
  opt.mirrored_frames = args.mirrored;
  opt.protocol = kProtocols.at(args.protocol);
  opt.scheduler = kSchedulers.at(args.scheduler);
  opt.activation_probability = args.p;
  opt.sigma = args.sigma;
  opt.seed = args.seed;
  opt.ksegment_k = args.k;
  opt.observation_quantum = args.quantum;
  opt.observation_delay = args.delay;
  opt.record_positions = !args.svg.empty() || !args.jsonl.empty();

  obs::MetricsRegistry metrics;
  std::unique_ptr<obs::MetricsSink> metrics_sink;
  try {
    core::ChatNetwork net(pts, opt);
    if (!args.watchdog.empty()) {
      obs::WatchdogOptions wopt;
      wopt.min_separation = args.min_separation;
      wopt.abort_on_violation = args.watchdog == "abort";
      // Granular containment is an invariant of the granular protocols
      // only: Sync2/Async2 signal on the segment joining the two robots
      // (the unbounded Async2 drifts apart by design — experiment E8).
      const core::ProtocolKind kind = net.protocol_kind();
      wopt.check_granular = kind == core::ProtocolKind::sliced ||
                            kind == core::ProtocolKind::ksegment ||
                            kind == core::ProtocolKind::asyncn;
      watchdog = std::make_unique<obs::Watchdog>(wopt, pts);
      if (recorder != nullptr) {
        watchdog->set_flight_recorder(recorder.get(), args.flight_dump);
      }
      sinks.add(watchdog.get());
    }
    if (!args.metrics.empty()) {
      metrics_sink = std::make_unique<obs::MetricsSink>(metrics);
      sinks.add(metrics_sink.get());
    }
    if (!sinks.empty()) net.attach_event_sink(&sinks);
    if (!args.report.empty() || !args.metrics.empty()) {
      net.attach_metrics(&metrics);
    }
    const auto payload = encode::bytes_of(args.message);
    if (args.broadcast) {
      net.broadcast(args.from, payload);
    } else {
      net.send(args.from, args.to, payload);
    }

    using Clock = std::chrono::steady_clock;
    const Clock::time_point wall_start = Clock::now();
    const bool done = net.run_until_quiescent(args.max_instants);
    net.run(args.async_mode ? 512 : 4);
    const double wall_seconds =
        std::chrono::duration<double>(Clock::now() - wall_start).count();
    sinks.flush();
    if (event_log != nullptr) {
      event_log->export_jsonl(*event_file);
      event_file->flush();
      if (!*event_file) {
        std::cerr << "error: could not write " << args.events << "\n";
        return kExitRuntime;
      }
    }

    // "--report -" / "--spans -" / "--metrics -" reserve stdout for the
    // JSON so it pipes cleanly into jq; the human summary moves to stderr.
    const bool stdout_taken = args.report == "-" || args.spans == "-" ||
                              args.metrics == "-";
    std::ostream& human = stdout_taken ? std::cerr : std::cout;
    human << "protocol: " << args.protocol << " (resolved kind "
          << static_cast<int>(net.protocol_kind()) << "), n = " << args.n
          << ", " << (args.async_mode ? "asynchronous" : "synchronous")
          << "\n";
    human << "instants: " << net.engine().now()
          << (done ? "" : "  [TIMED OUT]") << "\n\n";

    std::size_t delivered = 0;
    for (std::size_t i = 0; i < args.n; ++i) {
      for (const core::Delivery& d : net.received(i)) {
        human << "  robot " << i << " <- robot " << d.from
              << (d.broadcast ? " [broadcast]" : "") << ": \""
              << std::string(d.payload.begin(), d.payload.end()) << "\"\n";
        ++delivered;
      }
    }
    human << "\ndelivered: " << delivered << " message(s)\n";

    human << "\nrobot   activations   moves   distance   bits_sent\n";
    for (std::size_t i = 0; i < args.n; ++i) {
      const auto& m = net.engine().trace().stats(i);
      human << std::setw(5) << i << std::setw(14) << m.activations
            << std::setw(8) << m.moves << std::setw(11) << std::fixed
            << std::setprecision(2) << m.distance << std::setw(12)
            << net.stats(i).bits_sent << "\n";
    }
    human << "min separation: " << net.engine().trace().min_separation()
          << "\n";

    if (!args.report.empty()) {
      obs::RunReport report = net.report();
      report.wall_seconds = wall_seconds;
      if (args.report == "-") {
        report.write_json(std::cout);
      } else {
        std::ofstream out(args.report);
        if (!out) {
          std::cerr << "error: could not write " << args.report << "\n";
          return kExitRuntime;
        }
        report.write_json(out);
        std::cout << "wrote " << args.report << "\n";
      }
    }
    if (span_builder != nullptr) {
      if (args.spans == "-") {
        span_builder->write_json(std::cout);
      } else if (!args.spans.empty()) {
        std::ofstream out(args.spans);
        if (!out) {
          std::cerr << "error: could not write " << args.spans << "\n";
          return kExitRuntime;
        }
        span_builder->write_json(out);
        human << "wrote " << args.spans << "\n";
      }
      if (!args.span_trace.empty()) {
        std::ofstream out(args.span_trace);
        if (!out) {
          std::cerr << "error: could not write " << args.span_trace << "\n";
          return kExitRuntime;
        }
        span_builder->write_chrome_trace(out);
        human << "wrote " << args.span_trace << "\n";
      }
    }
    if (!args.metrics.empty()) {
      if (args.metrics == "-") {
        metrics.write_json(std::cout);
      } else {
        std::ofstream out(args.metrics);
        if (!out) {
          std::cerr << "error: could not write " << args.metrics << "\n";
          return kExitRuntime;
        }
        metrics.write_json(out);
        human << "wrote " << args.metrics << "\n";
      }
    }
    if (!args.events.empty()) human << "wrote " << args.events << "\n";
    if (!args.chrome_trace.empty()) {
      human << "wrote " << args.chrome_trace << "\n";
    }
    if (!args.jsonl.empty()) {
      if (!sim::write_trace_jsonl(args.jsonl, net.engine().trace())) {
        std::cerr << "error: could not write " << args.jsonl << "\n";
        return kExitRuntime;
      }
      human << "wrote " << args.jsonl << "\n";
    }
    if (!args.svg.empty()) {
      viz::SvgScene fig;
      viz::draw_trajectories(fig, net.engine().trace().positions());
      if (!fig.write(args.svg)) {
        std::cerr << "error: could not write " << args.svg << "\n";
        return kExitRuntime;
      }
      human << "wrote " << args.svg << "\n";
    }
    if (watchdog != nullptr) {
      watchdog->report(std::cerr);
      if (!watchdog->ok()) return kExitWatchdog;
    }
    return delivered > 0 ? kExitDelivered : kExitNoDelivery;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    // The black box: whatever unwound (collision, watchdog abort, I/O),
    // leave the last events on disk for stigreport to inspect. The binary
    // event log buffers in memory, so export whatever was captured.
    if (event_log != nullptr && event_file != nullptr) {
      event_log->export_jsonl(*event_file);
      event_file->flush();
    }
    if (recorder != nullptr && !recorder->dump_to_file(args.flight_dump)) {
      std::cerr << "error: could not write " << args.flight_dump << "\n";
    } else if (recorder != nullptr) {
      std::cerr << "flight recorder: wrote " << args.flight_dump << "\n";
    }
    if (watchdog != nullptr) watchdog->report(std::cerr);
    return kExitRuntime;
  }
}
