// stigd — multi-session serving daemon for the stigmergy library.
//
// Hosts many concurrent, independent ChatNetwork sessions sharded across a
// par::BatchRunner worker pool, and serves them over the compact framed
// wire protocol (src/serve/wire.hpp) on a local (AF_UNIX) stream socket:
//
//   stigd --socket /tmp/stigd.sock --jobs 4 --report stigd_report.json
//
// Clients (see stigload, or any program speaking the protocol in
// docs/SERVING.md) open sessions, queue messages into bounded injection
// queues (BUSY on overflow — the daemon never sheds load silently), step
// simulated time, and poll deliveries. Requests that arrive in one poll
// cycle are applied as a batch: grouped by session shard, fanned across
// the workers, answered in arrival order per connection.
//
// SIGTERM/SIGINT shut down cleanly: connections close, the socket file is
// removed, and --report writes the merged metrics snapshot — per-verb
// request counters and latency histograms (serve.lat.<verb>_ns) plus the
// deterministic outcome counters.
//
// Exit codes: 0 clean shutdown; 2 usage error; 3 runtime/socket error.
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/json.hpp"
#include "serve/shard.hpp"
#include "serve/wire.hpp"

namespace {

using namespace stig;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitRuntime = 3;

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

struct Args {
  std::string socket_path = "/tmp/stigd.sock";
  std::size_t jobs = 0;
  std::size_t shards = 8;
  std::size_t queue_bound = 16;
  std::size_t max_robots = 32;
  std::size_t max_sessions = 65536;
  std::string report;
  bool help = false;
};

void print_help() {
  std::cout <<
      "stigd — multi-session ChatNetwork serving daemon\n\n"
      "  --socket PATH     AF_UNIX listen socket (default /tmp/stigd.sock)\n"
      "  --jobs N          worker threads (0 = all cores; default 0)\n"
      "  --shards K        session shards (default 8)\n"
      "  --queue-bound Q   per-session injection-queue depth before BUSY\n"
      "                    (default 16)\n"
      "  --max-robots N    robots per session cap (default 32)\n"
      "  --max-sessions N  live sessions cap, BUSY beyond (default 65536)\n"
      "  --report FILE     write the merged metrics snapshot as JSON on\n"
      "                    shutdown (\"-\" = stdout)\n\n"
      "wire protocol: varint(len) | body | crc8(body) frames over the\n"
      "socket; verbs open_session / send_message / step / poll_delivery /\n"
      "get_report / close_session (byte layouts in docs/SERVING.md).\n"
      "SIGTERM or SIGINT shuts down cleanly.\n\n"
      "exit codes: 0 clean shutdown; 2 usage error; 3 runtime error\n";
}

bool parse(int argc, char** argv, Args& a) {
  const auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto num = [&](auto& out) {
      const char* v = need(i);
      if (!v) return false;
      out = static_cast<std::remove_reference_t<decltype(out)>>(
          std::strtoull(v, nullptr, 10));
      return true;
    };
    if (flag == "--help" || flag == "-h") {
      a.help = true;
    } else if (flag == "--socket") {
      const char* v = need(i);
      if (!v) return false;
      a.socket_path = v;
    } else if (flag == "--jobs") {
      if (!num(a.jobs)) return false;
    } else if (flag == "--shards") {
      if (!num(a.shards)) return false;
    } else if (flag == "--queue-bound") {
      if (!num(a.queue_bound)) return false;
    } else if (flag == "--max-robots") {
      if (!num(a.max_robots)) return false;
    } else if (flag == "--max-sessions") {
      if (!num(a.max_sessions)) return false;
    } else if (flag == "--report") {
      const char* v = need(i);
      if (!v) return false;
      a.report = v;
    } else {
      std::cerr << "unknown flag: " << flag << " (see --help)\n";
      return false;
    }
  }
  return true;
}

/// Blocking write of the whole buffer (local socket; EPIPE = peer gone).
bool write_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

struct Connection {
  int fd = -1;
  serve::WireParser parser;
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return kExitUsage;
  if (args.help) {
    print_help();
    return kExitOk;
  }
  if (args.shards == 0) {
    std::cerr << "--shards must be positive\n";
    return kExitUsage;
  }
  if (args.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::cerr << "--socket path too long for AF_UNIX\n";
    return kExitUsage;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  serve::ShardedOptions sopt;
  sopt.shards = args.shards;
  sopt.jobs = args.jobs;
  sopt.limits.queue_bound = args.queue_bound;
  sopt.limits.max_robots = args.max_robots;
  sopt.limits.max_sessions = args.max_sessions;
  serve::ShardedRegistry registry(sopt);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "error: socket: " << std::strerror(errno) << "\n";
    return kExitRuntime;
  }
  ::unlink(args.socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, args.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 64) < 0) {
    std::cerr << "error: bind/listen " << args.socket_path << ": "
              << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return kExitRuntime;
  }
  std::cerr << "stigd: listening on " << args.socket_path << " ("
            << registry.shards() << " shards, " << registry.jobs()
            << " workers)\n";

  std::map<int, Connection> conns;
  std::uint64_t served = 0;
  while (g_stop == 0) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd, POLLIN, 0});
    for (const auto& [fd, conn] : conns) {
      fds.push_back(pollfd{fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::cerr << "error: poll: " << std::strerror(errno) << "\n";
      break;
    }
    if (ready == 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) conns[fd] = Connection{fd, serve::WireParser()};
    }

    // Drain readable connections into their parsers, collecting the
    // cycle's requests in arrival order. Malformed-but-framed bodies get
    // an immediate error reply; corrupted framing resyncs in the parser.
    std::vector<std::pair<int, serve::Request>> batch;
    std::vector<std::pair<int, serve::Response>> rejects;
    std::vector<int> closed;
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Connection& conn = conns[fds[i].fd];
      std::uint8_t buf[65536];
      const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        closed.push_back(conn.fd);
        continue;
      }
      conn.parser.feed(std::span<const std::uint8_t>(
          buf, static_cast<std::size_t>(n)));
      for (const std::vector<std::uint8_t>& body :
           conn.parser.take_frames()) {
        if (auto req = serve::decode_request(body)) {
          batch.emplace_back(conn.fd, std::move(*req));
        } else {
          serve::Response res;
          res.status = serve::Status::error;
          res.detail = "malformed request body";
          rejects.emplace_back(conn.fd, std::move(res));
        }
      }
    }

    if (!batch.empty()) {
      std::vector<serve::Request> requests;
      requests.reserve(batch.size());
      for (const auto& [fd, req] : batch) requests.push_back(req);
      const std::vector<serve::Response> responses =
          registry.apply_batch(requests);
      served += responses.size();
      for (std::size_t i = 0; i < responses.size(); ++i) {
        const int fd = batch[i].first;
        if (conns.contains(fd) &&
            !write_all(fd, serve::encode_response(responses[i]))) {
          closed.push_back(fd);
        }
      }
    }
    for (const auto& [fd, res] : rejects) {
      if (conns.contains(fd) &&
          !write_all(fd, serve::encode_response(res))) {
        closed.push_back(fd);
      }
    }
    for (const int fd : closed) {
      if (conns.erase(fd) != 0) ::close(fd);
    }
  }

  for (const auto& [fd, conn] : conns) ::close(fd);
  ::close(listen_fd);
  ::unlink(args.socket_path.c_str());

  if (!args.report.empty()) {
    const auto write_report = [&](std::ostream& out) {
      out << "{\n  \"tool\": \"stigd\",\n  \"requests_served\": " << served
          << ",\n  \"sessions_opened\": " << registry.sessions_opened()
          << ",\n  \"live_sessions\": " << registry.live_sessions()
          << ",\n  \"metrics\": ";
      registry.write_metrics_json(out);
      out << "\n}\n";
    };
    if (args.report == "-") {
      write_report(std::cout);
    } else {
      std::ofstream out(args.report);
      if (!out) {
        std::cerr << "error: could not write " << args.report << "\n";
        return kExitRuntime;
      }
      write_report(out);
      std::cerr << "stigd: wrote " << args.report << "\n";
    }
  }
  std::cerr << "stigd: clean shutdown (" << served << " request(s) served, "
            << registry.sessions_opened() << " session(s) opened)\n";
  return kExitOk;
}
