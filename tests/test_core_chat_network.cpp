// End-to-end tests of the ChatNetwork public API: every protocol the
// capability lattice can select, driven through the real engine with
// randomized frames.
#include <gtest/gtest.h>

#include <string>

#include "core/chat_network.hpp"
#include "geom/angle.hpp"
#include "encode/bits.hpp"
#include "sim/rng.hpp"

namespace stig {
namespace {

using core::Capabilities;
using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::ProtocolKind;
using core::SchedulerKind;
using core::Synchrony;

std::vector<std::uint8_t> payload(std::string_view text) {
  return encode::bytes_of(text);
}

std::vector<geom::Vec2> ring_positions(std::size_t n, double radius,
                                       std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = geom::kTwoPi * static_cast<double>(i) /
                         static_cast<double>(n) +
                     rng.uniform(-0.1, 0.1);
    const double r = radius * rng.uniform(0.7, 1.3);
    pts.push_back(geom::Vec2{r * std::cos(a), r * std::sin(a)});
  }
  return pts;
}

TEST(ChatNetwork, Sync2DeliversBothDirections) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  ChatNetwork net({geom::Vec2{0.0, 0.0}, geom::Vec2{4.0, 1.0}}, opt);
  EXPECT_EQ(net.protocol_kind(), ProtocolKind::sync2);

  net.send(0, 1, payload("hello"));
  net.send(1, 0, payload("world!"));
  ASSERT_TRUE(net.run_until_quiescent(10'000));
  // One extra step so the last return move completes decoding bookkeeping.
  net.run(4);

  ASSERT_EQ(net.received(1).size(), 1u);
  EXPECT_EQ(net.received(1)[0].payload, payload("hello"));
  EXPECT_EQ(net.received(1)[0].from, 0u);
  ASSERT_EQ(net.received(0).size(), 1u);
  EXPECT_EQ(net.received(0)[0].payload, payload("world!"));
}

TEST(ChatNetwork, SyncSlicedWithIdsDelivers) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.visible_ids = true;
  opt.caps.sense_of_direction = true;
  ChatNetwork net(ring_positions(6, 10.0, 42), opt);
  EXPECT_EQ(net.protocol_kind(), ProtocolKind::sliced);

  net.send(0, 3, payload("to three"));
  net.send(2, 5, payload("to five"));
  net.send(4, 0, payload("to zero"));
  ASSERT_TRUE(net.run_until_quiescent(10'000));
  net.run(4);

  ASSERT_EQ(net.received(3).size(), 1u);
  EXPECT_EQ(net.received(3)[0].payload, payload("to three"));
  EXPECT_EQ(net.received(3)[0].from, 0u);
  ASSERT_EQ(net.received(5).size(), 1u);
  EXPECT_EQ(net.received(5)[0].payload, payload("to five"));
  ASSERT_EQ(net.received(0).size(), 1u);
  EXPECT_EQ(net.received(0)[0].payload, payload("to zero"));
}

TEST(ChatNetwork, SyncSlicedAnonymousSenseOfDirection) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  ChatNetwork net(ring_positions(5, 8.0, 7), opt);

  net.send(1, 4, payload("anon"));
  ASSERT_TRUE(net.run_until_quiescent(10'000));
  net.run(4);
  ASSERT_EQ(net.received(4).size(), 1u);
  EXPECT_EQ(net.received(4)[0].payload, payload("anon"));
  EXPECT_EQ(net.received(4)[0].from, 1u);
}

TEST(ChatNetwork, SyncSlicedChiralityOnlyRelativeNaming) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  // No ids, no sense of direction: frames get random rotations.
  ChatNetwork net(ring_positions(7, 12.0, 99), opt);

  net.send(6, 2, payload("relative"));
  net.send(3, 6, payload("back"));
  ASSERT_TRUE(net.run_until_quiescent(20'000));
  net.run(4);
  ASSERT_EQ(net.received(2).size(), 1u);
  EXPECT_EQ(net.received(2)[0].payload, payload("relative"));
  EXPECT_EQ(net.received(2)[0].from, 6u);
  ASSERT_EQ(net.received(6).size(), 1u);
  EXPECT_EQ(net.received(6)[0].payload, payload("back"));
}

TEST(ChatNetwork, Async2Delivers) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.activation_probability = 0.5;
  ChatNetwork net({geom::Vec2{-2.0, 0.0}, geom::Vec2{2.0, 0.0}}, opt);
  EXPECT_EQ(net.protocol_kind(), ProtocolKind::async2);

  net.send(0, 1, payload("async"));
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(64);
  ASSERT_EQ(net.received(1).size(), 1u);
  EXPECT_EQ(net.received(1)[0].payload, payload("async"));
}

TEST(ChatNetwork, AsyncNDelivers) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.activation_probability = 0.6;
  ChatNetwork net(ring_positions(4, 9.0, 5), opt);
  EXPECT_EQ(net.protocol_kind(), ProtocolKind::asyncn);

  net.send(0, 2, payload("swarm"));
  ASSERT_TRUE(net.run_until_quiescent(300'000));
  net.run(128);
  ASSERT_EQ(net.received(2).size(), 1u);
  EXPECT_EQ(net.received(2)[0].payload, payload("swarm"));
  EXPECT_EQ(net.received(2)[0].from, 0u);
}

TEST(ChatNetwork, KSegmentDelivers) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  opt.protocol = ProtocolKind::ksegment;
  opt.ksegment_k = 3;
  ChatNetwork net(ring_positions(9, 15.0, 11), opt);

  net.send(8, 1, payload("ksegment"));
  ASSERT_TRUE(net.run_until_quiescent(20'000));
  net.run(4);
  ASSERT_EQ(net.received(1).size(), 1u);
  EXPECT_EQ(net.received(1)[0].payload, payload("ksegment"));
}

TEST(ChatNetwork, RejectsSelfSend) {
  ChatNetworkOptions opt;
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{1, 0}}, opt);
  EXPECT_THROW(net.send(0, 0, payload("x")), std::invalid_argument);
}

TEST(ChatNetwork, RejectsTooFewRobots) {
  ChatNetworkOptions opt;
  EXPECT_THROW(ChatNetwork({geom::Vec2{0, 0}}, opt), std::invalid_argument);
}

}  // namespace
}  // namespace stig
