// Local-frame transform tests: round trips, capability semantics
// (rotation/scale/mirror), and handedness behaviour under chirality.
#include <gtest/gtest.h>

#include "geom/angle.hpp"
#include "sim/frame.hpp"
#include "sim/rng.hpp"

namespace stig::sim {
namespace {

using geom::Vec2;

TEST(Frame, IdentityIsNoop) {
  const Frame f;
  const Vec2 p{3.5, -2.25};
  EXPECT_TRUE(nearly_equal(f.to_local(p), p));
  EXPECT_TRUE(nearly_equal(f.to_global(p), p));
}

TEST(Frame, TranslationOnly) {
  const Frame f(Vec2{10, 5}, 0.0, 1.0, false);
  EXPECT_TRUE(nearly_equal(f.to_local(Vec2{10, 5}), Vec2{0, 0}));
  EXPECT_TRUE(nearly_equal(f.to_local(Vec2{11, 5}), Vec2{1, 0}));
  EXPECT_TRUE(nearly_equal(f.to_global(Vec2{0, 1}), Vec2{10, 6}));
}

TEST(Frame, RotationMapsNorth) {
  // Rotation pi/2: the robot's +y axis points global West.
  const Frame f(Vec2{0, 0}, geom::kPi / 2, 1.0, false);
  EXPECT_TRUE(nearly_equal(f.to_global(Vec2{0, 1}), Vec2{-1, 0}));
  EXPECT_TRUE(nearly_equal(f.to_local(Vec2{-1, 0}), Vec2{0, 1}));
}

TEST(Frame, ScaleConvertsUnits) {
  const Frame f(Vec2{0, 0}, 0.0, 2.0, false);  // 1 local unit = 2 global.
  EXPECT_TRUE(nearly_equal(f.to_global(Vec2{1, 0}), Vec2{2, 0}));
  EXPECT_TRUE(nearly_equal(f.to_local(Vec2{2, 0}), Vec2{1, 0}));
  EXPECT_DOUBLE_EQ(f.length_to_local(4.0), 2.0);
  EXPECT_DOUBLE_EQ(f.length_to_global(2.0), 4.0);
}

TEST(Frame, MirrorFlipsHandedness) {
  const Frame f(Vec2{0, 0}, 0.0, 1.0, true);
  // +x local maps to -x global; +y stays.
  EXPECT_TRUE(nearly_equal(f.to_global(Vec2{1, 0}), Vec2{-1, 0}));
  EXPECT_TRUE(nearly_equal(f.to_global(Vec2{0, 1}), Vec2{0, 1}));
  // A locally-counterclockwise triangle is globally clockwise.
  const Vec2 a = f.to_global(Vec2{0, 0});
  const Vec2 b = f.to_global(Vec2{1, 0});
  const Vec2 c = f.to_global(Vec2{0, 1});
  EXPECT_LT(geom::orient(a, b, c), 0.0);
}

TEST(Frame, RoundTripRandom) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const Frame f(Vec2{rng.uniform(-100, 100), rng.uniform(-100, 100)},
                  rng.uniform(0.0, geom::kTwoPi), rng.uniform(0.1, 10.0),
                  rng.flip(0.5));
    const Vec2 p{rng.uniform(-100, 100), rng.uniform(-100, 100)};
    EXPECT_TRUE(nearly_equal(f.to_global(f.to_local(p)), p, 1e-9));
    EXPECT_TRUE(nearly_equal(f.to_local(f.to_global(p)), p, 1e-9));
  }
}

TEST(Frame, PreservesDistancesUpToScale) {
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const double unit = rng.uniform(0.1, 10.0);
    const Frame f(Vec2{rng.uniform(-10, 10), rng.uniform(-10, 10)},
                  rng.uniform(0.0, geom::kTwoPi), unit, rng.flip(0.5));
    const Vec2 p{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 q{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    EXPECT_NEAR(geom::dist(f.to_local(p), f.to_local(q)) * unit,
                geom::dist(p, q), 1e-9);
  }
}

TEST(Frame, AnglesInvariantUnderSameHandedFrames) {
  // Chirality in one property: clockwise angles agree across any two frames
  // with the same mirror flag, regardless of rotation and scale.
  Rng rng(15);
  for (int i = 0; i < 200; ++i) {
    const bool mirrored = rng.flip(0.5);
    const Frame f1(Vec2{0, 0}, rng.uniform(0.0, geom::kTwoPi),
                   rng.uniform(0.1, 10.0), mirrored);
    const Frame f2(Vec2{5, -3}, rng.uniform(0.0, geom::kTwoPi),
                   rng.uniform(0.1, 10.0), mirrored);
    const Vec2 u{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec2 v{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    if (u.norm() < 0.1 || v.norm() < 0.1) continue;
    const double a1 = geom::clockwise_angle(f1.to_local(u) - f1.to_local(Vec2{0, 0}),
                                            f1.to_local(v) - f1.to_local(Vec2{0, 0}));
    const double a2 = geom::clockwise_angle(f2.to_local(u) - f2.to_local(Vec2{0, 0}),
                                            f2.to_local(v) - f2.to_local(Vec2{0, 0}));
    EXPECT_NEAR(a1, a2, 1e-9) << i;
  }
}

TEST(Frame, AnglesReverseUnderOppositeHandedness) {
  const Frame right(Vec2{0, 0}, 0.3, 1.0, false);
  const Frame left(Vec2{0, 0}, 1.2, 2.0, true);
  const Vec2 u{1, 0};
  const Vec2 v{0, 1};
  const double ar = geom::clockwise_angle(right.to_local(u), right.to_local(v));
  const double al = geom::clockwise_angle(left.to_local(u), left.to_local(v));
  EXPECT_NEAR(ar + al, geom::kTwoPi, 1e-9);
}

TEST(Frame, DirToGlobalIgnoresOrigin) {
  const Frame f(Vec2{100, 100}, geom::kPi / 2, 3.0, false);
  EXPECT_TRUE(nearly_equal(f.dir_to_global(Vec2{0, 1}), Vec2{-3, 0}));
}

}  // namespace
}  // namespace stig::sim
