// Unit tests for the planar kernel: Vec2, angles, lines, circles.
#include <gtest/gtest.h>

#include "geom/angle.hpp"
#include "geom/circle.hpp"
#include "geom/line.hpp"
#include "geom/vec.hpp"
#include "sim/rng.hpp"

namespace stig::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm2(), 25.0);
  EXPECT_DOUBLE_EQ(dist(Vec2{0, 0}, Vec2{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(dist2(Vec2{1, 1}, Vec2{4, 5}), 25.0);
}

TEST(Vec2, Normalized) {
  const Vec2 u = Vec2{3.0, 4.0}.normalized();
  EXPECT_NEAR(u.norm(), 1.0, kEps);
  EXPECT_NEAR(u.x, 0.6, kEps);
  // Zero vector stays zero rather than producing NaN.
  EXPECT_EQ((Vec2{0, 0}).normalized(), (Vec2{0, 0}));
}

TEST(Vec2, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot(Vec2{1, 0}, Vec2{0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(cross(Vec2{1, 0}, Vec2{0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(cross(Vec2{0, 1}, Vec2{1, 0}), -1.0);
}

TEST(Vec2, PerpAndRotation) {
  EXPECT_TRUE(nearly_equal((Vec2{1, 0}).perp_ccw(), Vec2{0, 1}));
  EXPECT_TRUE(nearly_equal((Vec2{1, 0}).perp_cw(), Vec2{0, -1}));
  EXPECT_TRUE(nearly_equal((Vec2{1, 0}).rotated(kPi / 2), Vec2{0, 1}));
}

TEST(Vec2, LexicographicOrder) {
  EXPECT_LT((Vec2{0, 5}), (Vec2{1, -5}));
  EXPECT_LT((Vec2{1, -5}), (Vec2{1, 0}));
}

TEST(Vec2, Orient) {
  EXPECT_GT(orient(Vec2{0, 0}, Vec2{1, 0}, Vec2{0, 1}), 0.0);  // CCW.
  EXPECT_LT(orient(Vec2{0, 0}, Vec2{0, 1}, Vec2{1, 0}), 0.0);  // CW.
  EXPECT_NEAR(orient(Vec2{0, 0}, Vec2{1, 1}, Vec2{2, 2}), 0.0, kEps);
}

TEST(Angle, Normalization) {
  EXPECT_NEAR(normalize_angle(-kPi / 2), 3 * kPi / 2, kEps);
  EXPECT_NEAR(normalize_angle(5 * kPi), kPi, 1e-12);
  EXPECT_NEAR(normalize_angle_signed(3 * kPi / 2), -kPi / 2, kEps);
  EXPECT_GE(normalize_angle(-1e-18), 0.0);
  EXPECT_LT(normalize_angle(-1e-18), kTwoPi);
}

TEST(Angle, ClockwiseAngle) {
  const Vec2 north{0, 1};
  const Vec2 east{1, 0};
  const Vec2 south{0, -1};
  const Vec2 west{-1, 0};
  EXPECT_NEAR(clockwise_angle(north, east), kPi / 2, kEps);
  EXPECT_NEAR(clockwise_angle(north, south), kPi, kEps);
  EXPECT_NEAR(clockwise_angle(north, west), 3 * kPi / 2, kEps);
  EXPECT_NEAR(clockwise_angle(north, north), 0.0, kEps);
}

TEST(Angle, RotateClockwiseMatchesClockwiseAngle) {
  sim::Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const double a0 = rng.uniform(0.0, kTwoPi);
    const double delta = rng.uniform(0.0, kTwoPi);
    const Vec2 from{std::cos(a0), std::sin(a0)};
    const Vec2 to = rotate_clockwise(from, delta);
    EXPECT_NEAR(clockwise_angle(from, to), delta, 1e-9) << "case " << i;
  }
}

TEST(Angle, AngularDistance) {
  EXPECT_NEAR(angular_distance(0.1, kTwoPi - 0.1), 0.2, kEps);
  EXPECT_NEAR(angular_distance(0.0, kPi), kPi, kEps);
}

TEST(Line, SignedOffsetAndProjection) {
  const Line l = Line::through(Vec2{0, 0}, Vec2{10, 0});
  EXPECT_NEAR(l.signed_offset(Vec2{5, 3}), 3.0, kEps);   // Left.
  EXPECT_NEAR(l.signed_offset(Vec2{5, -2}), -2.0, kEps); // Right.
  EXPECT_TRUE(nearly_equal(l.project(Vec2{5, 3}), Vec2{5, 0}));
  EXPECT_NEAR(l.param_of(Vec2{5, 3}), 5.0, kEps);
  EXPECT_TRUE(l.contains(Vec2{-7, 0}));
  EXPECT_FALSE(l.contains(Vec2{0, 1}));
}

TEST(Line, Intersection) {
  const Line l1 = Line::through(Vec2{0, 0}, Vec2{1, 1});
  const Line l2 = Line::through(Vec2{1, 0}, Vec2{0, 1});
  const auto x = intersect(l1, l2);
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(nearly_equal(*x, Vec2{0.5, 0.5}));
  // Parallel lines do not intersect.
  const Line l3{Vec2{0, 1}, Vec2{1, 1}};
  EXPECT_FALSE(intersect(l1, l3).has_value());
}

TEST(Line, PerpendicularBisector) {
  const Line b = perpendicular_bisector(Vec2{0, 0}, Vec2{4, 0});
  EXPECT_TRUE(b.contains(Vec2{2, 5}));
  EXPECT_TRUE(b.contains(Vec2{2, -5}));
  // `a` lies on the left of the directed bisector.
  EXPECT_GT(b.signed_offset(Vec2{0, 0}), 0.0);
  EXPECT_LT(b.signed_offset(Vec2{4, 0}), 0.0);
}

TEST(Segment, ClosestPointAndDistance) {
  const Segment s{Vec2{0, 0}, Vec2{10, 0}};
  EXPECT_TRUE(nearly_equal(s.closest_point(Vec2{5, 3}), Vec2{5, 0}));
  EXPECT_TRUE(nearly_equal(s.closest_point(Vec2{-3, 4}), Vec2{0, 0}));
  EXPECT_TRUE(nearly_equal(s.closest_point(Vec2{13, -4}), Vec2{10, 0}));
  EXPECT_NEAR(s.distance(Vec2{-3, 4}), 5.0, kEps);
  // Degenerate segment.
  const Segment pt{Vec2{1, 1}, Vec2{1, 1}};
  EXPECT_NEAR(pt.distance(Vec2{4, 5}), 5.0, kEps);
}

TEST(Circle, ContainsAndBoundary) {
  const Circle c{Vec2{0, 0}, 2.0};
  EXPECT_TRUE(c.contains(Vec2{1, 1}));
  EXPECT_TRUE(c.contains(Vec2{2, 0}));
  EXPECT_FALSE(c.contains(Vec2{2.1, 0}));
  EXPECT_TRUE(c.on_boundary(Vec2{0, 2}));
  EXPECT_FALSE(c.on_boundary(Vec2{0, 1}));
}

TEST(Circle, TwoPointCircle) {
  const Circle c = circle_from(Vec2{0, 0}, Vec2{4, 0});
  EXPECT_TRUE(nearly_equal(c.center, Vec2{2, 0}));
  EXPECT_NEAR(c.radius, 2.0, kEps);
}

TEST(Circle, Circumcircle) {
  const auto c = circumcircle(Vec2{0, 0}, Vec2{4, 0}, Vec2{0, 4});
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(nearly_equal(c->center, Vec2{2, 2}));
  EXPECT_NEAR(c->radius, std::sqrt(8.0), kEps);
  // Collinear points have no circumcircle.
  EXPECT_FALSE(circumcircle(Vec2{0, 0}, Vec2{1, 1}, Vec2{2, 2}).has_value());
}

TEST(Circle, CircumcircleRandomPointsEquidistant) {
  sim::Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    const Vec2 a{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 b{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 c{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    if (std::fabs(orient(a, b, c)) < 1e-3) continue;
    const auto cc = circumcircle(a, b, c);
    ASSERT_TRUE(cc.has_value());
    EXPECT_NEAR(dist(cc->center, a), cc->radius, 1e-7);
    EXPECT_NEAR(dist(cc->center, b), cc->radius, 1e-7);
    EXPECT_NEAR(dist(cc->center, c), cc->radius, 1e-7);
  }
}

}  // namespace
}  // namespace stig::geom
