// Tests for the Section 5 model extensions: one-to-all broadcast, sensor
// quantization (round-off), observation delay (partial asynchrony), limited
// visibility, and stabilization under transient faults (teleport injection).
#include <gtest/gtest.h>

#include "core/chat_network.hpp"
#include "encode/bits.hpp"
#include "encode/framing.hpp"
#include "geom/voronoi.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace stig {
namespace {

using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::ProtocolKind;
using core::Synchrony;

std::vector<geom::Vec2> scatter(std::size_t n, std::uint64_t seed,
                                double extent = 30.0, double min_gap = 3.0) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-extent, extent),
                       rng.uniform(-extent, extent)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < min_gap) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

std::vector<std::uint8_t> random_payload(std::size_t len,
                                         std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

// ---------------------------------------------------------------------------
// One-to-all broadcast.

TEST(Broadcast, SlicedReachesEveryoneWithOneSignalPerBit) {
  const std::size_t n = 6;
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  ChatNetwork net(scatter(n, 3), opt);
  const auto msg = random_payload(8, 1);
  net.broadcast(2, msg);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  const auto frame_bits = encode::encode_frame(msg).size();
  EXPECT_EQ(net.engine().now(), 2 * frame_bits);  // One lane, not n-1.
  net.run(2);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == 2) continue;
    ASSERT_EQ(net.received(j).size(), 1u) << j;
    EXPECT_EQ(net.received(j)[0].payload, msg);
    EXPECT_TRUE(net.received(j)[0].broadcast);
    EXPECT_EQ(net.received(j)[0].from, 2u);
    EXPECT_TRUE(net.overheard(j).empty());
  }
}

TEST(Broadcast, RelativeNamingBroadcastWorks) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;  // Chirality only.
  ChatNetwork net(scatter(5, 7), opt);
  const auto msg = random_payload(4, 2);
  net.broadcast(0, msg);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  for (std::size_t j = 1; j < 5; ++j) {
    ASSERT_EQ(net.received(j).size(), 1u) << j;
    EXPECT_EQ(net.received(j)[0].payload, msg);
    EXPECT_TRUE(net.received(j)[0].broadcast);
  }
}

TEST(Broadcast, AsyncNBroadcast) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.seed = 11;
  ChatNetwork net(scatter(4, 13), opt);
  const auto msg = random_payload(2, 3);
  net.broadcast(1, msg);
  ASSERT_TRUE(net.run_until_quiescent(3'000'000));
  net.run(512);
  for (std::size_t j = 0; j < 4; ++j) {
    if (j == 1) continue;
    ASSERT_EQ(net.received(j).size(), 1u) << j;
    EXPECT_EQ(net.received(j)[0].payload, msg);
    EXPECT_TRUE(net.received(j)[0].broadcast);
  }
}

TEST(Broadcast, KSegmentBroadcast) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  opt.protocol = ProtocolKind::ksegment;
  opt.ksegment_k = 3;
  ChatNetwork net(scatter(7, 17), opt);
  const auto msg = random_payload(3, 4);
  net.broadcast(6, msg);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  for (std::size_t j = 0; j < 6; ++j) {
    ASSERT_EQ(net.received(j).size(), 1u) << j;
    EXPECT_TRUE(net.received(j)[0].broadcast);
  }
}

TEST(Broadcast, MixedUnicastAndBroadcastInterleave) {
  const std::size_t n = 5;
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  ChatNetwork net(scatter(n, 19), opt);
  const auto uni = random_payload(3, 5);
  const auto bc = random_payload(3, 6);
  net.send(0, 2, uni);
  net.broadcast(0, bc);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  ASSERT_EQ(net.received(2).size(), 2u);
  EXPECT_EQ(net.received(2)[0].payload, uni);
  EXPECT_FALSE(net.received(2)[0].broadcast);
  EXPECT_EQ(net.received(2)[1].payload, bc);
  EXPECT_TRUE(net.received(2)[1].broadcast);
  ASSERT_EQ(net.received(4).size(), 1u);  // Broadcast only.
  EXPECT_TRUE(net.received(4)[0].broadcast);
}

// ---------------------------------------------------------------------------
// Sensor quantization (Section 5 round-off discussion).

TEST(Quantization, FineGridStillDelivers) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  opt.observation_quantum = 0.002;
  ChatNetwork net(scatter(8, 23), opt);
  const auto msg = random_payload(6, 7);
  net.send(1, 5, msg);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  ASSERT_EQ(net.received(5).size(), 1u);
  EXPECT_EQ(net.received(5)[0].payload, msg);
}

TEST(Quantization, CoarseGridBreaksFineSlicingButNotKSegment) {
  // The Section 5 motivation for k-segment addressing: at n=32 the 2n-slice
  // protocol needs angular resolution the sensor grid cannot provide, so
  // some lanes (deterministically, per geometry) become unreadable; the
  // (k+1)-diameter variant's slices are wide enough to absorb the same
  // grid. We run several sender/addressee pairs and compare delivery.
  const std::size_t n = 32;
  const auto pts = scatter(n, 29, 60.0, 3.0);
  const std::size_t kPairs = 8;

  const auto run_pairs = [&](ChatNetworkOptions opt) {
    ChatNetwork net(pts, opt);
    for (std::size_t p = 0; p < kPairs; ++p) {
      net.send(p, n - 1 - p, random_payload(4, 8 + p));
    }
    net.run_until_quiescent(500'000);
    net.run(2);
    std::size_t delivered = 0;
    for (std::size_t p = 0; p < kPairs; ++p) {
      delivered += net.received(n - 1 - p).size();
    }
    return delivered;
  };

  ChatNetworkOptions flat;
  flat.synchrony = Synchrony::synchronous;
  flat.caps.sense_of_direction = true;
  flat.observation_quantum = 0.05;
  flat.sigma = 1.0;  // Signal amplitude 0.8: amp/quantum = 16.
  EXPECT_LT(run_pairs(flat), kPairs)
      << "some 2n-slice lanes should be unreadable at this resolution";

  ChatNetworkOptions kseg = flat;
  kseg.protocol = ProtocolKind::ksegment;
  kseg.ksegment_k = 2;  // 3 diameters: slice width pi/3.
  EXPECT_EQ(run_pairs(kseg), kPairs)
      << "the k-segment variant must absorb the same sensor grid";
}

TEST(Quantization, Sync2ToleratesCoarseGrid) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.observation_quantum = 0.05;
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{6, 0}}, opt);
  const auto msg = random_payload(8, 9);
  net.send(0, 1, msg);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  ASSERT_EQ(net.received(1).size(), 1u);
  EXPECT_EQ(net.received(1)[0].payload, msg);
}

// ---------------------------------------------------------------------------
// Observation delay (toward CORDA).

class DelayTest : public ::testing::TestWithParam<sim::Time> {};

TEST_P(DelayTest, SynchronousProtocolsAreDelayInvariant) {
  // A uniform observation delay shifts every decoded signal in time but
  // drops none: the synchronous protocols deliver unchanged.
  const sim::Time d = GetParam();
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  opt.observation_delay = d;
  ChatNetwork net(scatter(5, 31), opt);
  const auto msg = random_payload(5, 10);
  net.send(3, 1, msg);
  ASSERT_TRUE(net.run_until_quiescent(100'000)) << "delay=" << d;
  net.run(2 + d);
  ASSERT_EQ(net.received(1).size(), 1u) << "delay=" << d;
  EXPECT_EQ(net.received(1)[0].payload, msg);
}

INSTANTIATE_TEST_SUITE_P(Delays, DelayTest,
                         ::testing::Values<sim::Time>(1, 2, 5, 10));

class AsyncDelayTest : public ::testing::TestWithParam<sim::Time> {};

TEST_P(AsyncDelayTest, Async2DeliversWithWidenedAckWindow) {
  // With d-stale observations the Lemma 4.1 "twice" bound no longer
  // implies the peer saw the excursion; ChatNetwork widens the ack
  // requirement to 2d + 2 changes, restoring delivery.
  const sim::Time d = GetParam();
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.observation_delay = d;
  opt.seed = 37;
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{6, 0}}, opt);
  const auto msg = random_payload(4, 11);
  net.send(0, 1, msg);
  ASSERT_TRUE(net.run_until_quiescent(4'000'000)) << "d=" << d;
  net.run(512);
  ASSERT_EQ(net.received(1).size(), 1u) << "d=" << d;
  EXPECT_EQ(net.received(1)[0].payload, msg);
}

TEST_P(AsyncDelayTest, AsyncNDeliversWithWidenedAckWindow) {
  const sim::Time d = GetParam();
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.observation_delay = d;
  opt.seed = 61;
  ChatNetwork net(scatter(3, 67), opt);
  const auto msg = random_payload(2, 12);
  net.send(0, 2, msg);
  ASSERT_TRUE(net.run_until_quiescent(4'000'000)) << "d=" << d;
  net.run(512);
  ASSERT_EQ(net.received(2).size(), 1u) << "d=" << d;
  EXPECT_EQ(net.received(2)[0].payload, msg);
}

INSTANTIATE_TEST_SUITE_P(Delays, AsyncDelayTest,
                         ::testing::Values<sim::Time>(1, 2, 4));

// ---------------------------------------------------------------------------
// Limited visibility (Section 5 open problem).

TEST(Visibility, EngineFiltersInvisibleRobots) {
  class Recorder final : public sim::Robot {
   public:
    void initialize(const sim::Snapshot& snap) override { seen = snap; }
    geom::Vec2 on_activate(const sim::Snapshot& snap) override {
      seen = snap;
      return snap.self_robot().position;
    }
    sim::Snapshot seen;
  };
  std::vector<sim::RobotSpec> specs{{.position = geom::Vec2{0, 0}},
                                    {.position = geom::Vec2{10, 0}},
                                    {.position = geom::Vec2{20, 0}}};
  std::vector<std::unique_ptr<sim::Robot>> programs;
  for (int i = 0; i < 3; ++i) programs.push_back(std::make_unique<Recorder>());
  auto* middle = static_cast<Recorder*>(programs[1].get());
  auto* end = static_cast<Recorder*>(programs[0].get());
  sim::EngineOptions eopt;
  eopt.visibility_radius = 12.0;
  sim::Engine engine(specs, std::move(programs),
                     std::make_unique<sim::SynchronousScheduler>(), eopt);
  // The middle robot sees all three; the end robots see only two.
  EXPECT_EQ(middle->seen.robots.size(), 3u);
  EXPECT_EQ(end->seen.robots.size(), 2u);
  // Self is always visible and correctly indexed.
  EXPECT_TRUE(geom::nearly_equal(end->seen.self_robot().position,
                                 geom::Vec2{0, 0}));
}

TEST(Visibility, MutuallyVisibleSwarmDelivers) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  opt.visibility_radius = 200.0;
  ChatNetwork net(scatter(5, 41), opt);
  const auto msg = random_payload(3, 12);
  net.send(0, 4, msg);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  ASSERT_EQ(net.received(4).size(), 1u);
}

TEST(Visibility, NonVisibleConfigurationRejected) {
  ChatNetworkOptions opt;
  opt.visibility_radius = 3.0;
  EXPECT_THROW(ChatNetwork({geom::Vec2{0, 0}, geom::Vec2{10, 0}}, opt),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Stabilization: transient faults (teleports) heal.

TEST(Stabilization, SlicedRecoversFromTeleport) {
  const std::size_t n = 5;
  const auto pts = scatter(n, 43);
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  ChatNetwork net(pts, opt);

  // Healthy exchange first.
  const auto msg1 = random_payload(4, 13);
  net.send(0, 3, msg1);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  ASSERT_EQ(net.received(3).size(), 1u);

  // Transient fault: robot 1 is shoved onto one of its data diameters.
  const double r1 = geom::granular_radius(pts, 1);
  net.engine().teleport(1, pts[1] + geom::Vec2{0.4 * r1, 0.0});
  // The spurious signal is decoded by everyone; the robot walks home
  // (self-healing rest position) and after 3 quiet instants every receiver
  // resets its streams to a frame boundary.
  net.run(20);
  EXPECT_TRUE(geom::nearly_equal(net.engine().positions()[1], pts[1], 1e-6));

  // Subsequent traffic — including from the faulted robot — is intact.
  const auto msg2 = random_payload(5, 14);
  const auto msg3 = random_payload(6, 15);
  net.send(1, 0, msg2);
  net.send(0, 3, msg3);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  ASSERT_EQ(net.received(0).size(), 1u);
  EXPECT_EQ(net.received(0)[0].payload, msg2);
  ASSERT_EQ(net.received(3).size(), 2u);
  EXPECT_EQ(net.received(3)[1].payload, msg3);
}

TEST(Stabilization, SlicedRecoversEvenWhenFaultHitsMidFrame) {
  const std::size_t n = 4;
  const auto pts = scatter(n, 47);
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  ChatNetwork net(pts, opt);
  // Robot 0 is mid-frame when robot 2 (a bystander) gets shoved: the
  // receiver's stream from 0 is unaffected; the spurious stream from 2
  // resyncs.
  net.send(0, 1, random_payload(16, 16));
  net.run(10);  // Mid-frame.
  const double r2 = geom::granular_radius(pts, 2);
  net.engine().teleport(2, pts[2] + geom::Vec2{0.0, 0.4 * r2});
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(8);
  ASSERT_EQ(net.received(1).size(), 1u);  // In-flight frame survived.
  // And robot 2 can still send afterwards.
  const auto msg = random_payload(3, 17);
  net.send(2, 0, msg);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  ASSERT_EQ(net.received(0).size(), 1u);
  EXPECT_EQ(net.received(0)[0].payload, msg);
}

TEST(Stabilization, Sync2RecoversFromTeleport) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{6, 0}}, opt);
  net.engine().teleport(1, geom::Vec2{6, 0.4});  // Looks like a "bit 1".
  net.run(20);  // Spurious bit decoded; robot walks home; streams reset.
  const auto msg = random_payload(6, 18);
  net.send(1, 0, msg);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  ASSERT_EQ(net.received(0).size(), 1u);
  EXPECT_EQ(net.received(0)[0].payload, msg);
}

TEST(Stabilization, AsyncNHealsWithIdleResync) {
  const std::size_t n = 4;
  const auto pts = scatter(n, 53);
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.seed = 59;
  ChatNetwork net(pts, opt);

  // Fault an idle robot onto a data ray.
  const double r0 = geom::granular_radius(pts, 0);
  const geom::Vec2 dir =
      (pts[1] - pts[0]).normalized();  // Arbitrary off-kappa direction.
  net.engine().teleport(0, pts[0] + dir * (0.5 * r0));
  // It snaps back onto kappa at its next activation; observers may have
  // decoded a spurious bit. Idle long enough for the (default 4096
  // neutral observations) resync to fire on every receiver.
  net.run(20'000);
  // New traffic from the faulted robot decodes cleanly.
  const auto msg = random_payload(2, 19);
  net.send(0, 2, msg);
  ASSERT_TRUE(net.run_until_quiescent(3'000'000));
  net.run(512);
  ASSERT_EQ(net.received(2).size(), 1u);
  EXPECT_EQ(net.received(2)[0].payload, msg);
}

TEST(Stabilization, TeleportIntoAnotherRobotIsACollision) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{6, 0}}, opt);
  EXPECT_THROW(net.engine().teleport(0, geom::Vec2{6, 0}),
               sim::CollisionError);
}

}  // namespace
}  // namespace stig
