// Codec tests: bit conversions, varints, CRC, frame round trips and
// corruption handling, k-segment numerals, amplitude levels.
#include <gtest/gtest.h>

#include <string>

#include "encode/amplitude.hpp"
#include "encode/bits.hpp"
#include "encode/crc.hpp"
#include "encode/framing.hpp"
#include "encode/ksegment_code.hpp"
#include "encode/varint.hpp"
#include "sim/rng.hpp"

namespace stig::encode {
namespace {

TEST(Bits, ByteRoundTripAllValues) {
  for (int v = 0; v < 256; ++v) {
    BitString bits;
    append_byte(bits, static_cast<std::uint8_t>(v));
    ASSERT_EQ(bits.size(), 8u);
    const auto bytes = to_bytes(bits);
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], v);
  }
}

TEST(Bits, MsbFirst) {
  BitString bits;
  append_byte(bits, 0b10110001);
  const BitString expected{1, 0, 1, 1, 0, 0, 0, 1};
  EXPECT_EQ(bits, expected);
}

TEST(Bits, StringRoundTrip) {
  const auto bytes = bytes_of("stigmergy");
  EXPECT_EQ(to_bytes(to_bits(bytes)), bytes);
}

TEST(Varint, SmallValuesSingleByte) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL}) {
    std::vector<std::uint8_t> out;
    append_varint(out, v);
    EXPECT_EQ(out.size(), 1u);
    const auto d = decode_varint(out);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->value, v);
    EXPECT_EQ(d->consumed, 1u);
  }
}

TEST(Varint, RoundTripWideRange) {
  for (std::uint64_t v :
       {128ULL, 300ULL, 16384ULL, 1ULL << 32, ~0ULL}) {
    std::vector<std::uint8_t> out;
    append_varint(out, v);
    const auto d = decode_varint(out);
    ASSERT_TRUE(d.has_value()) << v;
    EXPECT_EQ(d->value, v);
    EXPECT_EQ(d->consumed, out.size());
  }
}

TEST(Varint, TruncatedIsNull) {
  std::vector<std::uint8_t> out;
  append_varint(out, 100000);
  out.pop_back();
  EXPECT_FALSE(decode_varint(out).has_value());
}

TEST(Crc8, KnownVectorsAndSensitivity) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(crc8(empty), 0x00);
  const auto data = bytes_of("123456789");
  const std::uint8_t c = crc8(data);
  EXPECT_EQ(c, 0xF4);  // CRC-8/ATM check value.
  auto flipped = data;
  flipped[3] ^= 0x01;
  EXPECT_NE(crc8(flipped), c);
}

TEST(Framing, RoundTripVariousSizes) {
  sim::Rng rng(31);
  for (std::size_t len : {0u, 1u, 2u, 17u, 128u, 1000u}) {
    std::vector<std::uint8_t> payload(len);
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const BitString wire = encode_frame(payload);
    FrameParser parser;
    for (std::uint8_t bit : wire) parser.push_bit(bit);
    const auto msgs = parser.take_messages();
    ASSERT_EQ(msgs.size(), 1u) << "len=" << len;
    EXPECT_EQ(msgs[0], payload);
    EXPECT_EQ(parser.corrupt_frames(), 0u);
    EXPECT_EQ(parser.bits_consumed(), wire.size());
  }
}

TEST(Framing, BackToBackFrames) {
  FrameParser parser;
  const auto a = bytes_of("alpha");
  const auto b = bytes_of("beta");
  for (std::uint8_t bit : encode_frame(a)) parser.push_bit(bit);
  for (std::uint8_t bit : encode_frame(b)) parser.push_bit(bit);
  const auto msgs = parser.take_messages();
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0], a);
  EXPECT_EQ(msgs[1], b);
}

TEST(Framing, CorruptedPayloadDroppedThenResync) {
  const auto good = bytes_of("ok");
  BitString wire = encode_frame(bytes_of("damaged"));
  wire[20] ^= 1;  // Flip a payload bit.
  FrameParser parser;
  for (std::uint8_t bit : wire) parser.push_bit(bit);
  EXPECT_TRUE(parser.take_messages().empty());
  EXPECT_EQ(parser.corrupt_frames(), 1u);
  // The next clean frame still parses.
  for (std::uint8_t bit : encode_frame(good)) parser.push_bit(bit);
  const auto msgs = parser.take_messages();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0], good);
}

TEST(Framing, PartialFrameWaits) {
  const BitString wire = encode_frame(bytes_of("pending"));
  FrameParser parser;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) parser.push_bit(wire[i]);
  EXPECT_TRUE(parser.take_messages().empty());
  parser.push_bit(wire.back());
  EXPECT_EQ(parser.take_messages().size(), 1u);
}

TEST(KSegmentCode, DigitsNeeded) {
  EXPECT_EQ(digits_needed(1, 2), 1u);
  EXPECT_EQ(digits_needed(2, 2), 1u);
  EXPECT_EQ(digits_needed(3, 2), 2u);
  EXPECT_EQ(digits_needed(4, 2), 2u);
  EXPECT_EQ(digits_needed(5, 2), 3u);
  EXPECT_EQ(digits_needed(1000, 10), 3u);
  EXPECT_EQ(digits_needed(1001, 10), 4u);
}

TEST(KSegmentCode, RoundTripAllIndices) {
  for (std::size_t k : {2u, 3u, 5u, 16u}) {
    for (std::size_t n : {2u, 7u, 100u}) {
      const std::size_t d = digits_needed(n, k);
      for (std::size_t i = 0; i < n; ++i) {
        const auto digits = encode_index(i, n, k);
        EXPECT_EQ(digits.size(), d) << "k=" << k << " n=" << n;
        for (std::uint32_t dig : digits) EXPECT_LT(dig, k);
        EXPECT_EQ(decode_index(digits, k), i) << "k=" << k << " n=" << n;
      }
    }
  }
}

TEST(AmplitudeCodec, OneBitLevels) {
  const AmplitudeCodec c(1, 2.0);
  EXPECT_EQ(c.levels(), 2u);
  EXPECT_DOUBLE_EQ(c.level(0), -2.0);
  EXPECT_DOUBLE_EQ(c.level(1), 2.0);
  EXPECT_EQ(c.decode(-1.9), 0u);
  EXPECT_EQ(c.decode(1.7), 1u);
  EXPECT_FALSE(c.decode(5.0).has_value());
}

TEST(AmplitudeCodec, RoundTripWithNoise) {
  sim::Rng rng(44);
  for (unsigned bits : {1u, 2u, 4u, 8u}) {
    const AmplitudeCodec c(bits, 1.0);
    for (std::uint32_t s = 0; s < c.levels(); ++s) {
      const double noise = rng.uniform(-0.4, 0.4) * c.tolerance();
      const auto decoded = c.decode(c.level(s) + noise);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, s) << "bits=" << bits;
    }
  }
}

}  // namespace
}  // namespace stig::encode
