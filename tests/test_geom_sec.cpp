// Smallest-enclosing-circle tests: exact cases plus parameterized property
// sweeps (containment, minimality via support points, determinism).
#include <gtest/gtest.h>

#include <vector>

#include "geom/angle.hpp"
#include "geom/sec.hpp"
#include "sim/rng.hpp"

namespace stig::geom {
namespace {

TEST(Sec, Empty) {
  const Circle c = smallest_enclosing_circle({});
  EXPECT_EQ(c.radius, 0.0);
}

TEST(Sec, SinglePoint) {
  const std::vector<Vec2> pts{Vec2{3, 4}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_TRUE(nearly_equal(c.center, Vec2{3, 4}));
  EXPECT_NEAR(c.radius, 0.0, kEps);
}

TEST(Sec, TwoPoints) {
  const std::vector<Vec2> pts{Vec2{0, 0}, Vec2{6, 0}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_TRUE(nearly_equal(c.center, Vec2{3, 0}, 1e-7));
  EXPECT_NEAR(c.radius, 3.0, 1e-7);
}

TEST(Sec, EquilateralTriangle) {
  const std::vector<Vec2> pts{Vec2{0, 0}, Vec2{2, 0}, Vec2{1, std::sqrt(3.0)}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 2.0 / std::sqrt(3.0), 1e-7);
  EXPECT_TRUE(nearly_equal(c.center, Vec2{1.0, 1.0 / std::sqrt(3.0)}, 1e-7));
}

TEST(Sec, ObtuseTriangleIsDiameterCircle) {
  // For an obtuse triangle the SEC is the diameter circle of the long side.
  const std::vector<Vec2> pts{Vec2{0, 0}, Vec2{10, 0}, Vec2{5, 0.5}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 5.0, 1e-7);
  EXPECT_TRUE(nearly_equal(c.center, Vec2{5, 0}, 1e-7));
}

TEST(Sec, InteriorPointsDoNotMatter) {
  std::vector<Vec2> pts{Vec2{0, 0}, Vec2{6, 0}};
  const Circle base = smallest_enclosing_circle(pts);
  pts.push_back(Vec2{3, 1});
  pts.push_back(Vec2{2, -1});
  pts.push_back(Vec2{4.5, 0.2});
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_TRUE(nearly_equal(c.center, base.center, 1e-7));
  EXPECT_NEAR(c.radius, base.radius, 1e-7);
}

TEST(Sec, CollinearPoints) {
  const std::vector<Vec2> pts{Vec2{0, 0}, Vec2{1, 1}, Vec2{5, 5}, Vec2{3, 3}};
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, dist(Vec2{0, 0}, Vec2{5, 5}) / 2.0, 1e-7);
}

TEST(Sec, DeterministicAcrossCalls) {
  sim::Rng rng(5);
  std::vector<Vec2> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back(Vec2{rng.uniform(-5, 5), rng.uniform(-5, 5)});
  }
  const Circle a = smallest_enclosing_circle(pts);
  const Circle b = smallest_enclosing_circle(pts);
  EXPECT_EQ(a.center, b.center);
  EXPECT_EQ(a.radius, b.radius);
}

TEST(Sec, SupportOnCocircularPoints) {
  std::vector<Vec2> pts;
  for (int i = 0; i < 12; ++i) {
    const double a = kTwoPi * i / 12.0;
    pts.push_back(Vec2{std::cos(a), std::sin(a)});
  }
  const Circle c = smallest_enclosing_circle(pts);
  EXPECT_NEAR(c.radius, 1.0, 1e-7);
  EXPECT_EQ(sec_support(pts, c).size(), 12u);
}

// Property sweep: for random point sets of growing size, the SEC contains
// every point and has at least 2 support points (minimality certificate:
// the SEC of >= 2 points is determined by 2 antipodal or 3 boundary points).
class SecPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SecPropertyTest, ContainsAllAndSupported) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Rng rng(seed * 977 + n);
    std::vector<Vec2> pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back(Vec2{rng.uniform(-100, 100), rng.uniform(-100, 100)});
    }
    const Circle c = smallest_enclosing_circle(pts);
    for (const Vec2& p : pts) {
      EXPECT_TRUE(c.contains(p, 1e-7)) << "n=" << n << " seed=" << seed;
    }
    const auto support = sec_support(pts, c, 1e-6);
    EXPECT_GE(support.size(), n >= 2 ? 2u : 1u)
        << "n=" << n << " seed=" << seed;
    // Minimality: removing slack — a circle strictly smaller around the
    // same center must miss some point.
    if (n >= 2) {
      const Circle smaller{c.center, c.radius * (1.0 - 1e-4)};
      bool misses = false;
      for (const Vec2& p : pts) {
        if (!smaller.contains(p, 0.0)) misses = true;
      }
      EXPECT_TRUE(misses) << "n=" << n << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SecPropertyTest,
                         ::testing::Values(2, 3, 4, 5, 8, 16, 64, 256, 1000));

}  // namespace
}  // namespace stig::geom
