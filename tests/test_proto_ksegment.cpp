// KSegment protocol tests (Section 5 extension): delivery across k values,
// symbol accounting against the paper's log_k(n) prediction, interleaved
// messages, and naming-mode coverage.
#include <gtest/gtest.h>

#include "core/chat_network.hpp"
#include "encode/bits.hpp"
#include "encode/ksegment_code.hpp"
#include "sim/rng.hpp"

namespace stig {
namespace {

using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::ProtocolKind;
using core::Synchrony;

std::vector<geom::Vec2> scatter(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-40, 40), rng.uniform(-40, 40)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < 2.0) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

std::vector<std::uint8_t> random_payload(std::size_t len,
                                         std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

ChatNetworkOptions ksegment_options(std::size_t k, bool sod = true) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = sod;
  opt.protocol = ProtocolKind::ksegment;
  opt.ksegment_k = k;
  return opt;
}

class KSegmentKTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KSegmentKTest, DeliversWithPredictedSymbolCount) {
  const std::size_t k = GetParam();
  const std::size_t n = 12;
  ChatNetwork net(scatter(n, 3), ksegment_options(k));
  const auto msg = random_payload(6, k);
  net.send(0, 7, msg);
  const std::uint64_t frame_bits = encode::encode_frame(msg).size();
  const std::uint64_t digits = encode::digits_needed(n, k);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(4);
  ASSERT_EQ(net.received(7).size(), 1u);
  EXPECT_EQ(net.received(7)[0].payload, msg);
  // 2 instants per symbol; symbols = index digits + payload bits.
  EXPECT_EQ(net.engine().now() - 4, 2 * (frame_bits + digits));
}

INSTANTIATE_TEST_SUITE_P(Bases, KSegmentKTest,
                         ::testing::Values(2, 3, 4, 8, 11));

TEST(KSegment, ConsecutiveMessagesToDifferentAddressees) {
  const std::size_t n = 8;
  ChatNetwork net(scatter(n, 11), ksegment_options(3));
  const auto a = random_payload(3, 1);
  const auto b = random_payload(5, 2);
  const auto c = random_payload(2, 3);
  net.send(0, 3, a);
  net.send(0, 6, b);
  net.send(0, 3, c);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(4);
  ASSERT_EQ(net.received(3).size(), 2u);
  EXPECT_EQ(net.received(3)[0].payload, a);
  EXPECT_EQ(net.received(3)[1].payload, c);
  ASSERT_EQ(net.received(6).size(), 1u);
  EXPECT_EQ(net.received(6)[0].payload, b);
}

TEST(KSegment, ConcurrentSenders) {
  const std::size_t n = 6;
  ChatNetwork net(scatter(n, 17), ksegment_options(4));
  std::vector<std::vector<std::uint8_t>> msgs(n);
  for (std::size_t i = 0; i < n; ++i) {
    msgs[i] = random_payload(4, 30 + i);
    net.send(i, (i + 2) % n, msgs[i]);
  }
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(4);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t to = (i + 2) % n;
    ASSERT_EQ(net.received(to).size(), 1u);
    EXPECT_EQ(net.received(to)[0].payload, msgs[i]);
    EXPECT_EQ(net.received(to)[0].from, i);
  }
}

TEST(KSegment, RelativeNamingMode) {
  // Chirality only: the k-segment variant composes with the SEC naming.
  const std::size_t n = 7;
  ChatNetwork net(scatter(n, 23), ksegment_options(3, /*sod=*/false));
  const auto msg = random_payload(4, 9);
  net.send(5, 2, msg);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(4);
  ASSERT_EQ(net.received(2).size(), 1u);
  EXPECT_EQ(net.received(2)[0].payload, msg);
  EXPECT_EQ(net.received(2)[0].from, 5u);
}

TEST(KSegment, EavesdropAcrossPrefixes) {
  const std::size_t n = 5;
  ChatNetwork net(scatter(n, 29), ksegment_options(2));
  const auto msg = random_payload(3, 13);
  net.send(1, 2, msg);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(4);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == 1 || j == 2) continue;
    ASSERT_EQ(net.overheard(j).size(), 1u) << j;
    EXPECT_EQ(net.overheard(j)[0].payload, msg);
    EXPECT_EQ(net.overheard(j)[0].to, 2u);
  }
}

TEST(KSegment, RejectsKBelowTwo) {
  EXPECT_THROW(ChatNetwork(scatter(4, 31), ksegment_options(1)),
               std::invalid_argument);
}

TEST(KSegment, SilentWhenIdle) {
  ChatNetwork net(scatter(5, 37), ksegment_options(4));
  net.run(100);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(net.engine().trace().stats(i).moves, 0u);
  }
}

}  // namespace
}  // namespace stig
