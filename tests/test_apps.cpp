// Tests for the distributed-algorithms layer (apps/): aggregation and
// leader election over every protocol family the network can select.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/aggregate.hpp"
#include "geom/angle.hpp"
#include "apps/election.hpp"
#include "sim/rng.hpp"

namespace stig {
namespace {

using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::Synchrony;

std::vector<geom::Vec2> scatter(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-30, 30), rng.uniform(-30, 30)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < 3.0) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

TEST(Aggregate, MaxByteWithAnnouncement) {
  const std::size_t n = 8;
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  ChatNetwork net(scatter(n, 3), opt);
  const std::vector<std::uint8_t> readings{12, 200, 34, 56, 199, 3, 77, 90};
  const auto result = apps::max_byte(net, 2, readings, /*announce=*/true,
                                     1'000'000);
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.value.size(), 1u);
  EXPECT_EQ(result.value[0], 200);
  EXPECT_EQ(result.contributions, n);
  EXPECT_GT(result.instants, 0u);
}

TEST(Aggregate, SumAggregationCustomCombiner) {
  const std::size_t n = 5;
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  ChatNetwork net(scatter(n, 7), opt);
  // 16-bit big-endian sums.
  std::vector<std::vector<std::uint8_t>> values;
  std::uint32_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<std::uint16_t>(100 * i + 7);
    expected += v;
    values.push_back({static_cast<std::uint8_t>(v >> 8),
                      static_cast<std::uint8_t>(v)});
  }
  const auto result = apps::aggregate(
      net, 0, values,
      [](std::vector<std::uint8_t> acc, const std::vector<std::uint8_t>& v) {
        const std::uint32_t a = (acc[0] << 8) | acc[1];
        const std::uint32_t b = (v.at(0) << 8) | v.at(1);
        const std::uint32_t s = a + b;
        acc[0] = static_cast<std::uint8_t>(s >> 8);
        acc[1] = static_cast<std::uint8_t>(s);
        return acc;
      },
      /*announce=*/false, 1'000'000);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ((result.value[0] << 8) | result.value[1], expected);
}

TEST(Aggregate, WorksAsynchronously) {
  const std::size_t n = 3;
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.seed = 5;
  ChatNetwork net(scatter(n, 11), opt);
  const std::vector<std::uint8_t> readings{9, 150, 42};
  const auto result =
      apps::max_byte(net, 1, readings, /*announce=*/true, 10'000'000);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.value[0], 150);
}

TEST(Aggregate, BudgetExhaustionReportsIncomplete) {
  const std::size_t n = 4;
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  ChatNetwork net(scatter(n, 13), opt);
  const std::vector<std::uint8_t> readings{1, 2, 3, 4};
  const auto result =
      apps::max_byte(net, 0, readings, /*announce=*/false, /*budget=*/10);
  EXPECT_FALSE(result.complete);
}

class ElectionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElectionTest, ElectsUniqueLeaderAnonymously) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 6;
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;  // Chirality only: anonymous.
  opt.seed = seed;
  ChatNetwork net(scatter(n, 100 + seed), opt);
  const auto result = apps::elect_leader(net, seed * 31, 2'000'000);
  ASSERT_TRUE(result.complete) << "seed=" << seed;
  EXPECT_LT(result.leader, n);
  EXPECT_GE(result.rounds, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElectionTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Election, SymmetricConfigurationStillElects) {
  // The Figure 3 configuration where deterministic election is impossible:
  // randomization breaks the symmetry.
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 6; ++i) {
    const double a = geom::kTwoPi * i / 6.0;
    pts.push_back(geom::Vec2{8 * std::cos(a), 8 * std::sin(a)});
  }
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  ChatNetwork net(pts, opt);
  const auto result = apps::elect_leader(net, 77, 2'000'000);
  ASSERT_TRUE(result.complete);
}

TEST(Election, WorksOverAsyncN) {
  const std::size_t n = 3;
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.seed = 9;
  ChatNetwork net(scatter(n, 23), opt);
  const auto result = apps::elect_leader(net, 55, 20'000'000);
  ASSERT_TRUE(result.complete);
}

TEST(Election, ChainsWithAggregation) {
  // The classic composition: elect, then aggregate toward the leader.
  const std::size_t n = 5;
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  ChatNetwork net(scatter(n, 29), opt);
  const auto election = apps::elect_leader(net, 3, 2'000'000);
  ASSERT_TRUE(election.complete);
  const std::vector<std::uint8_t> readings{5, 250, 17, 99, 180};
  const auto agg = apps::max_byte(net, election.leader, readings,
                                  /*announce=*/true, 2'000'000);
  ASSERT_TRUE(agg.complete);
  EXPECT_EQ(agg.value[0], 250);
}

}  // namespace
}  // namespace stig
