// Event-stream tests: golden JSONL rendering, deterministic event logs,
// payload reconstruction from BitDecoded events, Chrome trace shape (spans
// per protocol phase, no overlap per thread), and Trace-as-EventSink
// equivalence (replaying a run's events reproduces its statistics).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/chat_network.hpp"
#include "encode/bits.hpp"
#include "encode/framing.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/sink.hpp"
#include "sim/trace.hpp"

namespace stig {
namespace {

core::ChatNetworkOptions sync_options() {
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  opt.randomize_frames = false;  // Fully deterministic geometry.
  opt.seed = 7;
  return opt;
}

std::vector<geom::Vec2> two_positions() {
  return {geom::Vec2{0, 0}, geom::Vec2{6, 0}};
}

/// Runs a deterministic 2-robot synchronous exchange of `msg` with `sink`
/// attached; returns the network for inspection.
template <typename Fn>
void run_two_robot_sync(obs::EventSink* sink,
                        const std::vector<std::uint8_t>& msg, Fn&& inspect) {
  core::ChatNetwork net(two_positions(), sync_options());
  if (sink != nullptr) net.attach_event_sink(sink);
  net.send(0, 1, msg);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  inspect(net);
}

TEST(JsonlGolden, FixedFieldOrderPerEventType) {
  using obs::Event;
  using obs::EventType;
  using obs::JsonlEventSink;

  Event activation;
  activation.type = EventType::Activation;
  activation.t = 3;
  activation.robot = 0;
  activation.x = 1.25;
  activation.y = -0.5;
  EXPECT_EQ(JsonlEventSink::to_json(activation),
            R"({"type":"activation","t":3,"robot":0,"x":1.25,"y":-0.5})");

  Event move = activation;
  move.type = EventType::Move;
  move.value = 0.25;
  EXPECT_EQ(
      JsonlEventSink::to_json(move),
      R"({"type":"move","t":3,"robot":0,"x":1.25,"y":-0.5,"value":0.25})");

  Event bit;
  bit.type = EventType::BitDecoded;
  bit.t = 17;
  bit.robot = 1;
  bit.peer = 0;
  bit.aux = 1;
  bit.bit = 1;
  EXPECT_EQ(
      JsonlEventSink::to_json(bit),
      R"({"type":"bit_decoded","t":17,"robot":1,"peer":0,"aux":1,"bit":1})");

  Event phase;
  phase.type = EventType::PhaseEnter;
  phase.t = 4;
  phase.robot = 2;
  phase.label = "signal";
  EXPECT_EQ(JsonlEventSink::to_json(phase),
            R"({"type":"phase_enter","t":4,"robot":2,"label":"signal"})");

  // Broadcast bits carry no peer field; the label marks the lane.
  Event bc;
  bc.type = EventType::BitEmitted;
  bc.t = 9;
  bc.robot = 0;
  bc.peer = -1;
  bc.bit = 0;
  bc.label = "broadcast";
  EXPECT_EQ(
      JsonlEventSink::to_json(bc),
      R"({"type":"bit_emitted","t":9,"robot":0,"bit":0,"label":"broadcast"})");

  Event step;
  step.type = EventType::StepComplete;
  step.t = 5;
  step.value = 6.0;
  EXPECT_EQ(JsonlEventSink::to_json(step),
            R"({"type":"step_complete","t":5,"value":6})");
}

TEST(JsonlGolden, DeterministicRunProducesIdenticalLogs) {
  const auto msg = encode::bytes_of("hi");
  std::string first;
  std::string second;
  for (std::string* out : {&first, &second}) {
    std::ostringstream os;
    obs::JsonlEventSink sink(os);
    run_two_robot_sync(&sink, msg, [](core::ChatNetwork&) {});
    *out = os.str();
  }
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // Every line is a self-contained JSON object with a type field first.
  std::istringstream lines(first);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.rfind("{\"type\":\"", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
    ++count;
  }
  EXPECT_GT(count, 100u);  // A full frame exchange is hundreds of events.
}

TEST(Events, BitDecodedStreamReconstructsThePayload) {
  const auto msg = encode::bytes_of("hi");
  obs::CollectSink sink;
  run_two_robot_sync(&sink, msg, [&](core::ChatNetwork& net) {
    ASSERT_EQ(net.received(1).size(), 1u);
    EXPECT_EQ(net.received(1)[0].payload, msg);
  });

  // Feed robot 1's decoded bits, in order, into a fresh FrameParser: the
  // event stream alone must reproduce the payload exactly.
  encode::FrameParser parser;
  std::uint64_t decoded_bits = 0;
  for (const obs::Event& e : sink.events()) {
    if (e.type != obs::EventType::BitDecoded || e.robot != 1) continue;
    EXPECT_EQ(e.peer, 0);  // Sender is robot 0 (simulator index).
    parser.push_bit(static_cast<std::uint8_t>(e.bit));
    ++decoded_bits;
  }
  EXPECT_EQ(decoded_bits, encode::encode_frame(msg).size());
  const auto messages = parser.take_messages();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0], msg);
  EXPECT_EQ(parser.corrupt_frames(), 0u);

  // The sender's BitEmitted stream carries the same bits.
  encode::BitString sent;
  for (const obs::Event& e : sink.events()) {
    if (e.type == obs::EventType::BitEmitted && e.robot == 0) {
      sent.push_back(static_cast<std::uint8_t>(e.bit));
    }
  }
  EXPECT_EQ(sent, encode::encode_frame(msg));

  // Exactly one FrameDelivered lands at robot 1 with the payload size.
  std::size_t frames = 0;
  for (const obs::Event& e : sink.events()) {
    if (e.type != obs::EventType::FrameDelivered) continue;
    EXPECT_EQ(e.robot, 1);
    EXPECT_EQ(e.peer, 0);
    EXPECT_EQ(e.value, static_cast<double>(msg.size()));
    ++frames;
  }
  EXPECT_EQ(frames, 1u);
}

/// Pulls the integer that follows `key` in `line` (-1 when absent).
std::int64_t field(const std::string& line, const std::string& key) {
  const std::size_t pos = line.find(key);
  if (pos == std::string::npos) return -1;
  return std::stoll(line.substr(pos + key.size()));
}

TEST(Events, ChromeTraceIsWellFormedAndPhaseSpansDoNotOverlap) {
  const auto msg = encode::bytes_of("hi");
  std::ostringstream os;
  {
    obs::ChromeTraceSink sink(os);
    run_two_robot_sync(&sink, msg, [](core::ChatNetwork&) {});
    sink.flush();
  }
  const std::string doc = os.str();
  EXPECT_EQ(doc.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_EQ(doc.substr(doc.size() - 3), "]}\n");

  // Per robot (tid): complete spans must tile without overlap, and every
  // span must be a protocol phase name.
  std::map<std::int64_t, std::vector<std::pair<std::int64_t, std::int64_t>>>
      spans;
  std::size_t metadata = 0;
  std::istringstream lines(doc);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"ph\":\"M\"") != std::string::npos) ++metadata;
    if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
    const std::int64_t tid = field(line, "\"tid\":");
    const std::int64_t ts = field(line, "\"ts\":");
    const std::int64_t dur = field(line, "\"dur\":");
    ASSERT_GE(tid, 0);
    ASSERT_GE(ts, 0);
    ASSERT_GE(dur, 1) << line;
    EXPECT_TRUE(line.find("\"cat\":\"phase\"") != std::string::npos) << line;
    spans[tid].emplace_back(ts, ts + dur);
  }
  ASSERT_EQ(spans.size(), 2u);      // Both robots produced phase spans.
  EXPECT_EQ(metadata, 2u);          // One thread_name record per robot.
  // The sender alternates signal/return phases; the idle receiver holds a
  // single idle span for the whole run.
  EXPECT_GT(spans[0].size(), 2u);
  EXPECT_GE(spans[1].size(), 1u);
  for (const auto& [tid, list] : spans) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      // Emission order is chronological; spans may touch but not overlap.
      EXPECT_LE(list[i - 1].second, list[i].first)
          << "overlapping spans for tid " << tid;
    }
  }
}

TEST(Events, TraceReplayReproducesRunStatistics) {
  const auto msg = encode::bytes_of("ok");
  obs::CollectSink sink;
  std::vector<sim::MotionStats> expected;
  double expected_min_sep = 0.0;
  sim::Time expected_instants = 0;
  run_two_robot_sync(&sink, msg, [&](core::ChatNetwork& net) {
    for (std::size_t i = 0; i < 2; ++i) {
      expected.push_back(net.engine().trace().stats(i));
    }
    expected_min_sep = net.engine().trace().min_separation();
    expected_instants = net.engine().trace().instants();
  });

  sim::Trace replay(2);
  for (const obs::Event& e : sink.events()) replay.on_event(e);
  EXPECT_EQ(replay.instants(), expected_instants);
  EXPECT_DOUBLE_EQ(replay.min_separation(), expected_min_sep);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(replay.stats(i).activations, expected[i].activations);
    EXPECT_EQ(replay.stats(i).moves, expected[i].moves);
    EXPECT_DOUBLE_EQ(replay.stats(i).distance, expected[i].distance);
  }
}

TEST(Events, ReportMatchesTraceCounters) {
  const auto msg = encode::bytes_of("hi");
  run_two_robot_sync(nullptr, msg, [&](core::ChatNetwork& net) {
    const obs::RunReport r = net.report();
    EXPECT_EQ(r.robots, 2u);
    EXPECT_EQ(r.protocol, "sync2");
    EXPECT_EQ(r.schedule, "synchronous");
    EXPECT_TRUE(r.quiescent);
    EXPECT_EQ(r.instants, net.engine().now());
    EXPECT_EQ(r.messages_delivered, 1u);
    EXPECT_DOUBLE_EQ(r.min_separation,
                     net.engine().trace().min_separation());
    EXPECT_EQ(r.bits_sent, net.stats(0).bits_sent + net.stats(1).bits_sent);
    ASSERT_GT(r.bits_sent, 0u);
    EXPECT_DOUBLE_EQ(r.instants_per_bit,
                     static_cast<double>(r.instants) /
                         static_cast<double>(r.bits_sent));
    double dist = 0.0;
    for (std::size_t i = 0; i < 2; ++i) {
      dist += net.engine().trace().stats(i).distance;
      EXPECT_EQ(r.per_robot[i].activations,
                net.engine().trace().stats(i).activations);
    }
    EXPECT_DOUBLE_EQ(r.total_distance, dist);

    std::ostringstream os;
    r.write_json(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"instants_per_bit\""), std::string::npos);
    EXPECT_NE(json.find("\"min_separation\""), std::string::npos);
    EXPECT_NE(json.find("\"per_robot\""), std::string::npos);
  });
}

}  // namespace
}  // namespace stig
