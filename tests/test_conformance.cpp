// Conformance suite: record full traces of every protocol doing real work
// and model-check them against the movement rules; also verify the
// validators themselves catch violations (injected via teleport).
#include <gtest/gtest.h>

#include "core/chat_network.hpp"
#include "geom/angle.hpp"
#include "geom/voronoi.hpp"
#include "proto/conformance.hpp"
#include "sim/rng.hpp"

namespace stig {
namespace {

using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::ProtocolKind;
using core::Synchrony;

std::vector<geom::Vec2> scatter(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-25, 25), rng.uniform(-25, 25)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < 3.0) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

std::vector<std::uint8_t> random_payload(std::size_t len,
                                         std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

TEST(Conformance, SyncSlicedTraceIsClean) {
  const std::size_t n = 6;
  const auto pts = scatter(n, 3);
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  opt.record_positions = true;
  ChatNetwork net(pts, opt);
  for (std::size_t i = 0; i < n; ++i) {
    net.send(i, (i + 1) % n, random_payload(6, i));
  }
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  const auto violations = proto::validate_sliced_trace(
      pts, net.engine().trace().positions(),
      proto::NamingMode::lexicographic, n);
  for (const auto& v : violations) {
    ADD_FAILURE() << "robot " << v.robot << " t=" << v.instant << ": "
                  << v.rule;
  }
}

TEST(Conformance, SyncSlicedRelativeTraceIsClean) {
  const std::size_t n = 5;
  const auto pts = scatter(n, 7);
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;  // Relative naming.
  opt.record_positions = true;
  ChatNetwork net(pts, opt);
  net.send(0, 3, random_payload(8, 1));
  net.broadcast(2, random_payload(4, 2));
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  EXPECT_TRUE(proto::validate_sliced_trace(
                  pts, net.engine().trace().positions(),
                  proto::NamingMode::relative, n)
                  .empty());
}

TEST(Conformance, AsyncNTraceIsClean) {
  const std::size_t n = 4;
  const auto pts = scatter(n, 11);
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.seed = 5;
  opt.record_positions = true;
  ChatNetwork net(pts, opt);
  net.send(1, 3, random_payload(2, 3));
  ASSERT_TRUE(net.run_until_quiescent(2'000'000));
  // AsyncN slices into n+1 diameters (kappa included), relative reference.
  EXPECT_TRUE(proto::validate_sliced_trace(
                  pts, net.engine().trace().positions(),
                  proto::NamingMode::relative, n + 1)
                  .empty());
}

TEST(Conformance, KSegmentTraceIsClean) {
  const std::size_t n = 7;
  const auto pts = scatter(n, 13);
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  opt.protocol = ProtocolKind::ksegment;
  opt.ksegment_k = 3;
  opt.record_positions = true;
  ChatNetwork net(pts, opt);
  net.send(0, 5, random_payload(5, 4));
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  EXPECT_TRUE(proto::validate_sliced_trace(
                  pts, net.engine().trace().positions(),
                  proto::NamingMode::lexicographic, 3 + 1)
                  .empty());
}

TEST(Conformance, Async2TraceIsClean) {
  const geom::Vec2 a{-3, 1};
  const geom::Vec2 b{4, -2};
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.seed = 9;
  opt.record_positions = true;
  ChatNetwork net({a, b}, opt);
  net.send(0, 1, random_payload(4, 5));
  net.send(1, 0, random_payload(3, 6));
  ASSERT_TRUE(net.run_until_quiescent(1'000'000));
  EXPECT_TRUE(proto::validate_async2_trace(
                  a, b, net.engine().trace().positions())
                  .empty());
}

TEST(Conformance, BandedAsync2TraceIsClean) {
  const geom::Vec2 a{0, 0};
  const geom::Vec2 b{5, 0};
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.async2_banded = true;
  opt.seed = 13;
  opt.record_positions = true;
  ChatNetwork net({a, b}, opt);
  net.send(0, 1, random_payload(6, 7));
  ASSERT_TRUE(net.run_until_quiescent(1'000'000));
  EXPECT_TRUE(proto::validate_async2_trace(
                  a, b, net.engine().trace().positions())
                  .empty());
}

TEST(Conformance, ValidatorCatchesInjectedViolations) {
  // The validator itself must not be vacuous: a teleported robot outside
  // every legal region is flagged.
  const std::size_t n = 4;
  const auto pts = scatter(n, 17);
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  opt.record_positions = true;
  ChatNetwork net(pts, opt);
  net.run(3);
  // Off-ray but inside the granular: between two diameters.
  const double r0 = geom::granular_radius(pts, 0);
  const double between = geom::kPi / static_cast<double>(n) / 2.0;
  const geom::Vec2 dir = geom::rotate_clockwise(geom::Vec2{0, 1}, between);
  net.engine().teleport(0, pts[0] + dir * (0.5 * r0));
  net.run(1);
  const auto violations = proto::validate_sliced_trace(
      pts, net.engine().trace().positions(),
      proto::NamingMode::lexicographic, n);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].robot, 0u);
  EXPECT_EQ(violations[0].rule, "off every labeled ray");
}

TEST(Conformance, ValidatorCatchesOutsideGranular) {
  const std::size_t n = 3;
  const auto pts = scatter(n, 19);
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  opt.record_positions = true;
  ChatNetwork net(pts, opt);
  net.run(2);
  // Far enough outside that the first self-healing step (sigma = 0.25)
  // cannot bring it back inside before the next recorded instant, but well
  // clear of the neighbor's granular.
  const double r1 = geom::granular_radius(pts, 1);
  net.engine().teleport(1, pts[1] + geom::Vec2{1.3 * r1, 0.0});
  net.run(1);
  const auto violations = proto::validate_sliced_trace(
      pts, net.engine().trace().positions(),
      proto::NamingMode::lexicographic, n);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].rule, "outside granular");
}

}  // namespace
}  // namespace stig
