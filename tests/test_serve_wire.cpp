// Wire-protocol conformance suite for the stigd serving layer.
//
// Three layers of pinning keep the protocol from drifting silently:
//
//  1. golden bytes — the exact frame every verb encodes to is committed
//     here; any codec change that alters the bytes fails loudly and forces
//     a deliberate protocol bump;
//  2. round-trips — encode → frame-parse → decode must reproduce every
//     request/response field for every verb and status;
//  3. damage — truncated and overlong length prefixes, oversized declared
//     lengths, corrupt CRCs and garbage prefixes must be counted as
//     corruption and survived by resynchronizing on the next valid frame.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "encode/crc.hpp"
#include "encode/varint.hpp"
#include "serve/wire.hpp"

namespace stig::serve {
namespace {

using Bytes = std::vector<std::uint8_t>;

/// Feeds a whole frame and expects exactly one clean body back.
Bytes parse_one(const Bytes& frame) {
  WireParser parser;
  parser.feed(frame);
  auto frames = parser.take_frames();
  EXPECT_EQ(frames.size(), 1u);
  EXPECT_EQ(parser.corrupt_frames(), 0u);
  return frames.empty() ? Bytes{} : frames.front();
}

// ---------------------------------------------------------------------------
// Golden bytes: one pinned frame per verb, requests and responses. These
// are the protocol; a mismatch means the wire format changed.

TEST(ServeWireGolden, OpenSessionRequest) {
  Request req;
  req.verb = Verb::open_session;
  req.seed = 7;
  req.robots = 3;
  req.flags = kOpenAsync | kOpenVisibleIds;
  const Bytes expected{0x06, 0x01, 0x07, 0x03, 0x00, 0x00, 0x03, 0x33};
  EXPECT_EQ(encode_request(req), expected);
}

TEST(ServeWireGolden, SendMessageRequest) {
  Request req;
  req.verb = Verb::send_message;
  req.session = 5;
  req.from = 1;
  req.to = 2;
  req.payload = {0xAB, 0xCD};
  const Bytes expected{0x08, 0x02, 0x05, 0x01, 0x02,
                       0x00, 0x02, 0xAB, 0xCD, 0x55};
  EXPECT_EQ(encode_request(req), expected);
}

TEST(ServeWireGolden, StepRequest) {
  Request req;
  req.verb = Verb::step;
  req.session = 5;
  req.instants = 300;  // Two-byte LEB128: 0xAC 0x02.
  const Bytes expected{0x04, 0x03, 0x05, 0xAC, 0x02, 0x10};
  EXPECT_EQ(encode_request(req), expected);
}

TEST(ServeWireGolden, PollDeliveryRequest) {
  Request req;
  req.verb = Verb::poll_delivery;
  req.session = 5;
  req.robot = 2;
  req.max_messages = 10;
  const Bytes expected{0x04, 0x04, 0x05, 0x02, 0x0A, 0x84};
  EXPECT_EQ(encode_request(req), expected);
}

TEST(ServeWireGolden, GetReportRequest) {
  Request req;
  req.verb = Verb::get_report;
  req.session = 5;
  const Bytes expected{0x02, 0x05, 0x05, 0x5A};
  EXPECT_EQ(encode_request(req), expected);
}

TEST(ServeWireGolden, CloseSessionRequest) {
  Request req;
  req.verb = Verb::close_session;
  req.session = 300;
  const Bytes expected{0x03, 0x06, 0xAC, 0x02, 0x97};
  EXPECT_EQ(encode_request(req), expected);
}

TEST(ServeWireGolden, OpenSessionResponse) {
  Response res;
  res.verb = Verb::open_session;
  res.session = 42;
  const Bytes expected{0x03, 0x01, 0x00, 0x2A, 0xBD};
  EXPECT_EQ(encode_response(res), expected);
}

TEST(ServeWireGolden, BusyResponseCarriesDetail) {
  Response res;
  res.verb = Verb::send_message;
  res.status = Status::busy;
  res.detail = "injection queue full";
  const Bytes expected{0x17, 0x02, 0x01, 0x14, 0x69, 0x6E, 0x6A, 0x65, 0x63,
                       0x74, 0x69, 0x6F, 0x6E, 0x20, 0x71, 0x75, 0x65, 0x75,
                       0x65, 0x20, 0x66, 0x75, 0x6C, 0x6C, 0xE6};
  EXPECT_EQ(encode_response(res), expected);
}

TEST(ServeWireGolden, StepResponse) {
  Response res;
  res.verb = Verb::step;
  res.instants = 300;
  res.flags = kStepQuiescent;
  const Bytes expected{0x05, 0x03, 0x00, 0xAC, 0x02, 0x01, 0x39};
  EXPECT_EQ(encode_response(res), expected);
}

TEST(ServeWireGolden, PollDeliveryResponse) {
  Response res;
  res.verb = Verb::poll_delivery;
  res.deliveries.push_back(WireDelivery{1, 2, kSendBroadcast, {0xFF}});
  const Bytes expected{0x08, 0x04, 0x00, 0x01, 0x01,
                       0x02, 0x01, 0x01, 0xFF, 0xA6};
  EXPECT_EQ(encode_response(res), expected);
}

TEST(ServeWireGolden, GetReportResponse) {
  Response res;
  res.verb = Verb::get_report;
  res.body = {'{', '}'};
  const Bytes expected{0x05, 0x05, 0x00, 0x02, 0x7B, 0x7D, 0x7A};
  EXPECT_EQ(encode_response(res), expected);
}

TEST(ServeWireGolden, CloseSessionResponse) {
  Response res;
  res.verb = Verb::close_session;
  const Bytes expected{0x02, 0x06, 0x00, 0x7E};
  EXPECT_EQ(encode_response(res), expected);
}

// ---------------------------------------------------------------------------
// Round-trips: every verb in both directions, through the frame parser.

TEST(ServeWireRoundTrip, EveryRequestVerb) {
  std::vector<Request> requests;
  {
    Request r;
    r.verb = Verb::open_session;
    r.seed = 0xDEADBEEFCAFEULL;
    r.robots = 17;
    r.protocol = 5;
    r.scheduler = 3;
    r.flags = kOpenAsync | kOpenSenseOfDirection;
    requests.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::send_message;
    r.session = 1ULL << 40;
    r.from = 3;
    r.to = 9;
    r.flags = kSendBroadcast;
    r.payload.assign(100, 0x5A);
    requests.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::step;
    r.session = 12;
    r.instants = 65536;
    requests.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::poll_delivery;
    r.session = 12;
    r.robot = 16;
    r.max_messages = 1000;
    requests.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::get_report;
    r.session = 7;
    requests.push_back(r);
  }
  {
    Request r;
    r.verb = Verb::close_session;
    r.session = 0xFFFFFFFFULL;
    requests.push_back(r);
  }
  for (const Request& req : requests) {
    const auto decoded = decode_request(parse_one(encode_request(req)));
    ASSERT_TRUE(decoded.has_value()) << verb_name(req.verb);
    // The codec zero-initializes fields the verb's layout does not carry,
    // so normalize the original the same way before comparing.
    Request expect;
    expect.verb = req.verb;
    expect.seed = 1;
    expect.robots = 2;
    expect.instants = 1;
    switch (req.verb) {
      case Verb::open_session:
        expect.seed = req.seed;
        expect.robots = req.robots;
        expect.protocol = req.protocol;
        expect.scheduler = req.scheduler;
        expect.flags = req.flags;
        break;
      case Verb::send_message:
        expect.session = req.session;
        expect.from = req.from;
        expect.to = req.to;
        expect.flags = req.flags;
        expect.payload = req.payload;
        break;
      case Verb::step:
        expect.session = req.session;
        expect.instants = req.instants;
        break;
      case Verb::poll_delivery:
        expect.session = req.session;
        expect.robot = req.robot;
        expect.max_messages = req.max_messages;
        break;
      default:
        expect.session = req.session;
        break;
    }
    EXPECT_EQ(*decoded, expect) << verb_name(req.verb);
  }
}

TEST(ServeWireRoundTrip, EveryResponseShape) {
  std::vector<Response> responses;
  {
    Response r;
    r.verb = Verb::open_session;
    r.session = 4242;
    responses.push_back(r);
  }
  {
    Response r;
    r.verb = Verb::send_message;
    r.queued = 16;
    responses.push_back(r);
  }
  {
    Response r;
    r.verb = Verb::step;
    r.instants = 99999;
    r.flags = kStepQuiescent;
    responses.push_back(r);
  }
  {
    Response r;
    r.verb = Verb::poll_delivery;
    r.deliveries.push_back(WireDelivery{0, 1, 0, {1, 2, 3}});
    r.deliveries.push_back(WireDelivery{5, 5, kSendBroadcast, {}});
    responses.push_back(r);
  }
  {
    Response r;
    r.verb = Verb::get_report;
    r.body.assign(500, '!');
    responses.push_back(r);
  }
  {
    Response r;
    r.verb = Verb::close_session;
    responses.push_back(r);
  }
  for (Status status :
       {Status::busy, Status::not_found, Status::error}) {
    Response r;
    r.verb = Verb::step;
    r.status = status;
    r.detail = std::string("why: ") + status_name(status);
    responses.push_back(r);
  }
  for (const Response& res : responses) {
    const auto decoded = decode_response(parse_one(encode_response(res)));
    ASSERT_TRUE(decoded.has_value())
        << verb_name(res.verb) << "/" << status_name(res.status);
    EXPECT_EQ(*decoded, res)
        << verb_name(res.verb) << "/" << status_name(res.status);
  }
}

TEST(ServeWireRoundTrip, ByteAtATimeFeeding) {
  Request req;
  req.verb = Verb::send_message;
  req.session = 77;
  req.from = 0;
  req.to = 1;
  req.payload = {9, 8, 7};
  const Bytes frame = encode_request(req);
  WireParser parser;
  for (const std::uint8_t b : frame) {
    parser.feed(std::span<const std::uint8_t>(&b, 1));
  }
  auto frames = parser.take_frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(decode_request(frames.front()).has_value());
  EXPECT_FALSE(parser.mid_frame());
  EXPECT_EQ(parser.bytes_consumed(), frame.size());
}

// ---------------------------------------------------------------------------
// Damage: truncation, oversize, CRC corruption, garbage-prefix resync.

TEST(ServeWireDamage, TruncatedFrameStaysPending) {
  Request req;
  req.verb = Verb::get_report;
  req.session = 9;
  Bytes frame = encode_request(req);
  frame.pop_back();  // Drop the CRC byte.
  WireParser parser;
  parser.feed(frame);
  EXPECT_TRUE(parser.take_frames().empty());
  EXPECT_EQ(parser.corrupt_frames(), 0u);
  EXPECT_TRUE(parser.mid_frame());
}

TEST(ServeWireDamage, TruncatedLengthVarintWaits) {
  // 0x80 alone is an unterminated varint — not yet corrupt, just pending.
  const Bytes partial{0x80};
  WireParser parser;
  parser.feed(partial);
  EXPECT_TRUE(parser.take_frames().empty());
  EXPECT_EQ(parser.corrupt_frames(), 0u);
}

TEST(ServeWireDamage, OverlongLengthVarintIsCorrupt) {
  // Ten continuation bytes can never terminate into a valid length.
  const Bytes overlong(10, 0x80);
  WireParser parser;
  parser.feed(overlong);
  EXPECT_TRUE(parser.take_frames().empty());
  EXPECT_GE(parser.corrupt_frames(), 1u);
}

TEST(ServeWireDamage, OversizedDeclaredLengthIsCorrupt) {
  // Declares a 2 MiB body (over kMaxFrameBody) — must not buffer it.
  Bytes huge;
  encode::append_varint(huge, std::uint64_t{2} << 20);
  WireParser parser;
  parser.feed(huge);
  EXPECT_GE(parser.corrupt_frames(), 1u);
}

TEST(ServeWireDamage, CorruptCrcThenRecovery) {
  Request req;
  req.verb = Verb::step;
  req.session = 3;
  req.instants = 50;
  Bytes bad = encode_request(req);
  bad.back() ^= 0xFF;  // Break the CRC.
  const Bytes good = encode_request(req);

  WireParser parser;
  parser.feed(bad);
  parser.feed(good);
  auto frames = parser.take_frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_GE(parser.corrupt_frames(), 1u);
  const auto decoded = decode_request(frames.front());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->instants, 50u);
}

TEST(ServeWireDamage, PayloadBitFlipIsCaughtByCrc) {
  Request req;
  req.verb = Verb::send_message;
  req.session = 4;
  req.from = 0;
  req.to = 1;
  req.payload = {0x11, 0x22, 0x33};
  Bytes frame = encode_request(req);
  frame[frame.size() / 2] ^= 0x01;
  WireParser parser;
  parser.feed(frame);
  EXPECT_TRUE(parser.take_frames().empty());
  EXPECT_GE(parser.corrupt_frames(), 1u);
}

TEST(ServeWireDamage, GarbagePrefixResync) {
  // A client joining mid-stream: a garbage prefix that declares an
  // impossible (oversized) length, then two valid frames. The parser must
  // count the corruption and recover both frames at their offsets.
  Bytes stream{0xFF, 0xFF, 0xFF, 0xFF, 0x7F};  // varint ≫ kMaxFrameBody.
  Request a;
  a.verb = Verb::get_report;
  a.session = 1;
  Request b;
  b.verb = Verb::close_session;
  b.session = 2;
  const Bytes fa = encode_request(a);
  const Bytes fb = encode_request(b);
  stream.insert(stream.end(), fa.begin(), fa.end());
  stream.insert(stream.end(), fb.begin(), fb.end());

  WireParser parser;
  parser.feed(stream);
  auto frames = parser.take_frames();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(decode_request(frames[0])->verb, Verb::get_report);
  EXPECT_EQ(decode_request(frames[1])->verb, Verb::close_session);
  EXPECT_GE(parser.corrupt_frames(), 1u);
}

TEST(ServeWireDamage, MalformedBodyRejectedByDecode) {
  // A CRC-valid frame whose body is garbage must fail decode, not crash.
  const Bytes body{0x02, 0x05};  // send_message, then truncated fields.
  Bytes frame;
  encode::append_varint(frame, body.size());
  frame.insert(frame.end(), body.begin(), body.end());
  frame.push_back(encode::crc8(body));
  const Bytes parsed = parse_one(frame);
  EXPECT_FALSE(decode_request(parsed).has_value());

  const Bytes unknown_verb{0x09};
  EXPECT_FALSE(decode_request(unknown_verb).has_value());
  EXPECT_FALSE(decode_request(Bytes{}).has_value());
  EXPECT_FALSE(decode_response(Bytes{0x01}).has_value());
}

TEST(ServeWireDamage, TrailingBytesRejectedByStrictDecode) {
  // A close_session body with one stowaway byte appended, CRC-valid.
  Bytes body{0x06, 0x01, 0x00};
  Bytes padded;
  encode::append_varint(padded, body.size());
  padded.insert(padded.end(), body.begin(), body.end());
  padded.push_back(encode::crc8(body));
  const Bytes parsed = parse_one(padded);
  EXPECT_FALSE(decode_request(parsed).has_value());
}

TEST(ServeWireRoundTrip, PoisonedStatusCarriesDetail) {
  Response res;
  res.verb = Verb::poll_delivery;
  res.status = Status::poisoned;
  res.detail = "session 7 poisoned: poll cursor 42 beyond 0";
  const Bytes body = parse_one(encode_response(res));
  const auto back = decode_response(body);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, Status::poisoned);
  EXPECT_EQ(back->detail, res.detail);
  EXPECT_STREQ(status_name(Status::poisoned), "poisoned");
}

TEST(ServeWireDamage, ScrambledParserResyncsAtNextFrame) {
  // The stabilization suite's transient-corruption hook: the assembly
  // buffer is overwritten with garbage mid-stream. The scrambled junk may
  // eat the first following frame, but the resync scan must realign at a
  // frame boundary — the second frame always survives.
  Request req;
  req.verb = Verb::step;
  req.session = 9;
  req.instants = 7;
  const Bytes frame = encode_request(req);
  for (std::uint64_t garbage : {0ULL, 1ULL, 0x5aa5ULL, ~0ULL}) {
    WireParser parser;
    parser.scramble(garbage);
    parser.feed(frame);
    parser.feed(frame);
    const auto frames = parser.take_frames();
    ASSERT_GE(frames.size(), 1u) << "garbage " << garbage;
    const auto decoded = decode_request(frames.back());
    ASSERT_TRUE(decoded.has_value()) << "garbage " << garbage;
    EXPECT_EQ(decoded->instants, 7u);
  }
}

TEST(ServeWireDamage, ScramblePreservesLifetimeCounters) {
  WireParser parser;
  Request req;
  req.verb = Verb::get_report;
  req.session = 2;
  const Bytes frame = encode_request(req);
  parser.feed(frame);
  const std::uint64_t bytes_before = parser.bytes_consumed();
  parser.scramble(0xdeadULL);
  EXPECT_EQ(parser.bytes_consumed(), bytes_before);
  EXPECT_TRUE(parser.mid_frame());  // The planted garbage is pending...
  parser.feed(frame);
  parser.feed(frame);
  EXPECT_GE(parser.take_frames().size(), 1u);  // ...and healed by resync.
}

}  // namespace
}  // namespace stig::serve
