// obs::cov tests: intern dedup, hit accounting, sorted deterministic
// rendering, merge-order independence, state/edge-table overflow semantics
// — plus the end-to-end guarantees the map exists to pin: a ChatNetwork
// with a map attached records proto/frame/sched edges and reports them,
// fuzz-batch coverage merged in seed order is byte-identical at any job
// count, and the coverage-guided seed schedule reaches the blind corpus's
// full edge set in at most half the cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/chat_network.hpp"
#include "fuzz/batch.hpp"
#include "fuzz/cov_guided.hpp"
#include "obs/cov.hpp"

namespace stig::obs::cov {
namespace {

TEST(CovMap, InternsByContent) {
  CovMap m;
  const StateId a = m.state("sync2.idle");
  const StateId b = m.state("sync2.signal");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, m.state("sync2.idle"));
  // The prefixed overload is the same intern table.
  EXPECT_EQ(b, m.state("sync2", "signal"));
  EXPECT_EQ(m.dropped(), 0u);
}

TEST(CovMap, CountsHitsAndDistinctEdges) {
  CovMap m;
  const StateId a = m.state("a");
  const StateId b = m.state("b");
  m.hit(Domain::proto, a, b);
  m.hit(Domain::proto, a, b);
  m.hit(Domain::frame, a, b);  // Same endpoints, distinct domain.
  m.hit(Domain::proto, b, a);
  EXPECT_EQ(m.distinct_edges(), 3u);
  EXPECT_EQ(m.total_hits(), 4u);
  EXPECT_EQ(m.dropped(), 0u);

  const std::vector<CovMap::Row> rows = m.rows();
  ASSERT_EQ(rows.size(), 3u);
  // Sorted by (domain, from, to): proto a>b, proto b>a, frame a>b.
  EXPECT_EQ(rows[0].domain, Domain::proto);
  EXPECT_STREQ(rows[0].from, "a");
  EXPECT_STREQ(rows[0].to, "b");
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_EQ(rows[1].domain, Domain::proto);
  EXPECT_STREQ(rows[1].from, "b");
  EXPECT_EQ(rows[2].domain, Domain::frame);
  EXPECT_EQ(rows[2].count, 1u);
}

TEST(CovMap, DetachedHookIsANullCheck) {
  // COV_HIT through a null map must be a no-op, not a crash.
  COV_HIT(static_cast<CovMap*>(nullptr), Domain::sched, StateId{0},
          StateId{1});
  CovMap m;
  const StateId a = m.state("x");
  COV_HIT(&m, Domain::sched, a, a);
  EXPECT_EQ(m.total_hits(), 1u);
}

TEST(CovMap, MergeReInternsByName) {
  // The same edges registered in opposite orders: ids differ, names agree.
  CovMap a;
  const StateId a_idle = a.state("idle");
  const StateId a_go = a.state("go");
  a.hit(Domain::proto, a_idle, a_go);

  CovMap b;
  const StateId b_go = b.state("go");
  const StateId b_idle = b.state("idle");
  b.hit(Domain::proto, b_idle, b_go);
  b.hit(Domain::proto, b_go, b_idle);

  CovMap ab;
  ab.merge_from(a);
  ab.merge_from(b);
  CovMap ba;
  ba.merge_from(b);
  ba.merge_from(a);

  EXPECT_EQ(ab.distinct_edges(), 2u);
  EXPECT_EQ(ab.total_hits(), 3u);
  // Merge order never leaks into the artifact.
  EXPECT_EQ(ab.render_json("t"), ba.render_json("t"));
}

TEST(CovMap, RenderIsSortedAndStable) {
  CovMap m;
  const StateId z = m.state("zeta");
  const StateId a = m.state("alpha");
  m.hit(Domain::fault, z, a);
  m.hit(Domain::proto, a, z);
  const std::string json = m.render_json("corpus");
  // Flat bench/values schema, totals first, then sorted edge keys.
  EXPECT_NE(json.find("\"bench\": \"corpus\""), std::string::npos);
  EXPECT_NE(json.find("\"edges\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"hits\": 2"), std::string::npos);
  const std::size_t proto_pos = json.find("\"edge.proto.alpha>zeta\": 1");
  const std::size_t fault_pos = json.find("\"edge.fault.zeta>alpha\": 1");
  ASSERT_NE(proto_pos, std::string::npos);
  ASSERT_NE(fault_pos, std::string::npos);
  EXPECT_LT(proto_pos, fault_pos);  // proto (0) sorts before fault (3).
}

TEST(CovMap, StateOverflowDropsInsteadOfThrowing) {
  CovMap m;
  for (std::size_t i = 0; i < CovMap::kMaxStates; ++i) {
    EXPECT_NE(m.state(("s" + std::to_string(i)).c_str()), kInvalidState);
  }
  EXPECT_EQ(m.dropped(), 0u);
  const StateId overflow = m.state("one_too_many");
  EXPECT_EQ(overflow, kInvalidState);
  EXPECT_EQ(m.dropped(), 1u);
  // Hitting through an invalid endpoint drops, never crashes.
  m.hit(Domain::proto, overflow, StateId{0});
  EXPECT_EQ(m.dropped(), 2u);
  EXPECT_EQ(m.total_hits(), 0u);
  // Existing names still resolve.
  EXPECT_NE(m.state("s0"), kInvalidState);
}

TEST(CovMap, OverlongNameIsRejected) {
  CovMap m;
  const std::string longname(CovMap::kNameCap, 'x');
  EXPECT_EQ(m.state(longname.c_str()), kInvalidState);
  EXPECT_EQ(m.dropped(), 1u);
}

TEST(CovMap, EdgeTableOverflowDrops) {
  CovMap m;
  std::vector<StateId> ids;
  for (std::size_t i = 0; i < 64; ++i) {
    ids.push_back(m.state(("e" + std::to_string(i)).c_str()));
  }
  // 64 x 64 = 4096 distinct edges against a capacity of kMaxEdges - 1.
  for (const StateId f : ids) {
    for (const StateId t : ids) m.hit(Domain::sched, f, t);
  }
  EXPECT_EQ(m.distinct_edges(), CovMap::kMaxEdges - 1);
  EXPECT_EQ(m.dropped(), 1u);
  EXPECT_EQ(m.total_hits(), 64u * 64u - 1u);
}

TEST(ChatNetworkCoverage, RecordsAllDomainsAndReports) {
  core::ChatNetworkOptions opt;
  opt.seed = 5;
  CovMap cov;
  core::ChatNetwork net({{0.0, 0.0}, {9.0, 0.0}}, opt);
  net.attach_coverage(&cov);
  const std::vector<std::uint8_t> payload{0xAB, 0xCD};
  net.send(0, 1, payload);
  ASSERT_TRUE(net.run_until_quiescent(200000));
  net.run(4);

  EXPECT_EQ(cov.dropped(), 0u);
  bool saw_proto = false;
  bool saw_frame = false;
  bool saw_sched = false;
  for (const CovMap::Row& r : cov.rows()) {
    saw_proto |= r.domain == Domain::proto;
    saw_frame |= r.domain == Domain::frame;
    saw_sched |= r.domain == Domain::sched;
  }
  EXPECT_TRUE(saw_proto);
  EXPECT_TRUE(saw_frame);
  EXPECT_TRUE(saw_sched);
  // The configuration edge names the resolved naming mode.
  const std::string json = cov.render_json("run");
  EXPECT_NE(json.find("\"edge.proto.sync2.enter>naming."),
            std::string::npos);
  // And the run report carries the headline counters.
  const obs::RunReport report = net.report();
  EXPECT_EQ(report.cov_edges, cov.distinct_edges());
  EXPECT_EQ(report.cov_hits, cov.total_hits());
  EXPECT_GT(report.cov_edges, 0u);
}

TEST(ChatNetworkCoverage, CollectionDoesNotPerturbTheRun) {
  const auto run = [](CovMap* cov) {
    core::ChatNetworkOptions opt;
    opt.seed = 17;
    opt.synchrony = core::Synchrony::asynchronous;
    sim::ScheduleLog log;
    opt.record_schedule = &log;
    core::ChatNetwork net({{0.0, 0.0}, {8.0, 2.0}}, opt);
    if (cov != nullptr) net.attach_coverage(cov);
    const std::vector<std::uint8_t> payload{1, 2, 3};
    net.send(0, 1, payload);
    net.run_until_quiescent(500000);
    return log.digest();
  };
  CovMap cov;
  EXPECT_EQ(run(nullptr), run(&cov));
  EXPECT_GT(cov.total_hits(), 0u);
}

TEST(FuzzCoverage, MergedArtifactIsJobCountInvariant) {
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6};
  const auto merged = [&](std::size_t jobs) {
    const std::vector<fuzz::BatchCase> batch =
        fuzz::run_cases(seeds, std::nullopt, jobs, /*force_faults=*/false,
                        /*collect_coverage=*/true);
    CovMap corpus;
    for (const fuzz::BatchCase& bc : batch) {
      EXPECT_NE(bc.cov, nullptr);
      corpus.merge_from(*bc.cov);
    }
    return corpus.render_json("corpus");
  };
  const std::string one = merged(1);
  EXPECT_EQ(one, merged(4));
  EXPECT_NE(one.find("\"edge."), std::string::npos);
}

TEST(FuzzCoverage, GuidedOrderIsADeterministicPermutation) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 32; ++s) seeds.push_back(s);
  const std::vector<std::uint64_t> order = fuzz::guided_order(seeds);
  EXPECT_EQ(order, fuzz::guided_order(seeds));
  std::vector<std::uint64_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, seeds);
  // The reorder does something: with 32 sampled configs there is more
  // than one configuration class, so the schedule cannot stay sequential.
  EXPECT_NE(order, seeds);
}

/// Cases needed (prefix length of `order`) to reach `full` distinct edges.
std::size_t cases_to_full(
    const std::vector<std::uint64_t>& order,
    const std::vector<fuzz::BatchCase>& batch, std::uint64_t full) {
  CovMap acc;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto it = std::find_if(
        batch.begin(), batch.end(), [&](const fuzz::BatchCase& bc) {
          return bc.case_seed == order[i];
        });
    acc.merge_from(*it->cov);
    if (acc.distinct_edges() >= full) return i + 1;
  }
  return order.size();
}

TEST(FuzzCoverage, GuidedScheduleHalvesCasesToFullEdgeSet) {
  // The PR's acceptance criterion: over a fixed corpus, the guided
  // schedule reaches the blind schedule's complete edge set in at most
  // half the cases. The corpus matches the CI cov-smoke seeds' shape:
  // a contiguous run of small seeds, blind order = numeric order. 48
  // seeds make blind order genuinely wasteful (its last novel edge — a
  // ksegment run at n > 2 — only appears deep in the numeric order).
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 48; ++s) seeds.push_back(s);
  const std::vector<fuzz::BatchCase> batch =
      fuzz::run_cases(seeds, std::nullopt, /*jobs=*/0,
                      /*force_faults=*/false, /*collect_coverage=*/true);
  CovMap all;
  for (const fuzz::BatchCase& bc : batch) all.merge_from(*bc.cov);
  const std::uint64_t full = all.distinct_edges();
  ASSERT_GT(full, 0u);

  const std::size_t blind = cases_to_full(seeds, batch, full);
  const std::size_t guided =
      cases_to_full(fuzz::guided_order(seeds), batch, full);
  EXPECT_LE(guided * 2, blind)
      << "guided needs " << guided << " case(s), blind " << blind;
}

}  // namespace
}  // namespace stig::obs::cov
