// Replay stability: fuzz-case digests are part of the repo's reproduction
// contract — a failure report names (seed, digest), and replaying the seed
// must reproduce the digest bit-for-bit, across refactors. These digests
// were captured on the quadratic-era engine (per-robot configuration
// copies, all-bisector Voronoi, per-robot rank tables); the epoch-ring
// engine and grid-based geometry must not move a single bit. If a change
// legitimately alters scheduling semantics, recapture with the procedure in
// DESIGN.md and update the table in the same commit.
#include <gtest/gtest.h>

#include <cstdint>

#include "fuzz/fuzz_config.hpp"
#include "fuzz/fuzzer.hpp"

namespace stig::fuzz {
namespace {

struct PinnedCase {
  std::uint64_t seed;
  std::uint64_t digest;
  std::uint64_t instants;
  int kind;  // FailureKind as int; 0 == none.
};

constexpr PinnedCase kPinned[] = {
    // Seed 1 draws the corruption dimension (recaptured when the
    // arbitrary-state mode landed: the case routes through the
    // stabilization oracle, whose probe phase lengthens the schedule).
    {1ULL, 0x4d9119541f4d8885ULL, 160ULL, 0},
    {2ULL, 0x5d8939c2cac899b7ULL, 1839ULL, 0},
    {3ULL, 0xcaecb24d0a2f8d57ULL, 879ULL, 0},
    {4ULL, 0x15204d518b851359ULL, 1519ULL, 0},
    {5ULL, 0x686531fcdfb5ca79ULL, 116ULL, 0},
    {6ULL, 0x2602519dc5072d24ULL, 655ULL, 0},
    {7ULL, 0x5c46663ae466b23cULL, 70ULL, 0},
    {8ULL, 0x62fe6f1c46f67a0eULL, 38ULL, 0},
    {9ULL, 0x188d683fe2115f49ULL, 132ULL, 0},
    {10ULL, 0x31563bf7f8facafcULL, 134ULL, 0},
};

TEST(ReplayStability, PinnedSeedsReproduceBitForBit) {
  for (const PinnedCase& pin : kPinned) {
    const FuzzConfig cfg = sample_config(pin.seed);
    const CaseResult r = run_case(cfg);
    EXPECT_EQ(r.schedule_digest, pin.digest)
        << "seed " << pin.seed << ": schedule digest drifted — replay "
        << "repros captured before this change are no longer bit-exact";
    EXPECT_EQ(static_cast<std::uint64_t>(r.schedule_instants), pin.instants)
        << "seed " << pin.seed;
    EXPECT_EQ(static_cast<int>(r.kind), pin.kind)
        << "seed " << pin.seed << ": verdict changed (" << r.detail << ")";
  }
}

TEST(ReplayStability, ReplayIsDeterministicWithinProcess) {
  // The weaker, refactor-independent property: two runs of the same seed in
  // one process agree exactly (catches hidden global state / iteration-order
  // dependence even when a pinned digest is deliberately recaptured).
  for (const std::uint64_t seed : {3ULL, 7ULL, 42ULL, 123456789ULL}) {
    const FuzzConfig cfg = sample_config(seed);
    const CaseResult a = run_case(cfg);
    const CaseResult b = run_case(cfg);
    EXPECT_EQ(a.schedule_digest, b.schedule_digest) << "seed " << seed;
    EXPECT_EQ(a.schedule_instants, b.schedule_instants) << "seed " << seed;
    EXPECT_EQ(a.kind, b.kind) << "seed " << seed;
    EXPECT_EQ(a.detail, b.detail) << "seed " << seed;
  }
}

}  // namespace
}  // namespace stig::fuzz
