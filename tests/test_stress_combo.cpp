// Combination stress tests: the model stressors and protocol extensions
// composed — the configurations a real deployment would actually face
// (noisy sensors + asynchrony, delay + flocking, adversarial scheduling +
// bounded footprint, fault injection + broadcast, ...).
#include <gtest/gtest.h>

#include "core/chat_network.hpp"
#include "geom/voronoi.hpp"
#include "sim/rng.hpp"

namespace stig {
namespace {

using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::ProtocolKind;
using core::SchedulerKind;
using core::Synchrony;

std::vector<geom::Vec2> scatter(std::size_t n, std::uint64_t seed,
                                double min_gap = 4.0) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-30, 30), rng.uniform(-30, 30)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < min_gap) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

std::vector<std::uint8_t> random_payload(std::size_t len,
                                         std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

TEST(Combo, AsyncNWithNoisySensors) {
  // Quantized observation + asynchronous double-ack protocol: steps are
  // ~0.11 * R >> quantum, so changes stay visible and slices decodable.
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.observation_quantum = 0.01;
  opt.seed = 3;
  ChatNetwork net(scatter(4, 5), opt);
  const auto msg = random_payload(2, 1);
  net.send(0, 3, msg);
  ASSERT_TRUE(net.run_until_quiescent(4'000'000));
  net.run(512);
  ASSERT_EQ(net.received(3).size(), 1u);
  EXPECT_EQ(net.received(3)[0].payload, msg);
}

TEST(Combo, FlockingWithDelayAndQuantization) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  opt.flock_velocity = geom::Vec2{0.04, 0.02};
  opt.sigma = 0.8;
  opt.observation_delay = 2;
  opt.observation_quantum = 0.001;
  ChatNetwork net(scatter(4, 7), opt);
  const auto msg = random_payload(5, 2);
  net.send(1, 2, msg);
  ASSERT_TRUE(net.run_until_quiescent(200'000));
  net.run(8);
  ASSERT_EQ(net.received(2).size(), 1u);
  EXPECT_EQ(net.received(2)[0].payload, msg);
}

TEST(Combo, BandedAsync2UnderAdversary) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.scheduler = SchedulerKind::adversarial;
  opt.fairness_bound = 16;
  opt.async2_banded = true;
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{5, 0}}, opt);
  const auto msg = random_payload(4, 3);
  net.send(0, 1, msg);
  ASSERT_TRUE(net.run_until_quiescent(5'000'000));
  net.run(128);
  ASSERT_EQ(net.received(1).size(), 1u);
  // Banded bound holds even under the adversary.
  EXPECT_LT(net.engine().positions()[0].norm(), 10.0);
}

TEST(Combo, BroadcastSurvivesTransientFault) {
  const std::size_t n = 5;
  const auto pts = scatter(n, 11);
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  ChatNetwork net(pts, opt);
  // Fault a robot, let it heal, then broadcast from it.
  const double r2 = geom::granular_radius(pts, 2);
  net.engine().teleport(2, pts[2] + geom::Vec2{0.0, 0.5 * r2});
  net.run(60);
  const auto msg = random_payload(4, 4);
  net.broadcast(2, msg);
  ASSERT_TRUE(net.run_until_quiescent(200'000));
  net.run(4);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == 2) continue;
    ASSERT_EQ(net.received(j).size(), 1u) << j;
    EXPECT_EQ(net.received(j)[0].payload, msg);
  }
}

TEST(Combo, KSegmentUnderDelayAndMirroredFrames) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  opt.protocol = ProtocolKind::ksegment;
  opt.ksegment_k = 3;
  opt.observation_delay = 3;
  opt.mirrored_frames = true;
  ChatNetwork net(scatter(8, 13), opt);
  const auto msg = random_payload(3, 5);
  net.send(7, 1, msg);
  ASSERT_TRUE(net.run_until_quiescent(200'000));
  net.run(8);
  ASSERT_EQ(net.received(1).size(), 1u);
  EXPECT_EQ(net.received(1)[0].payload, msg);
}

TEST(Combo, HeavyTrafficEveryProtocolFeature) {
  // Everything at once, synchronous flavor: unicasts in all directions,
  // a broadcast, under quantization, with eavesdropping verified.
  const std::size_t n = 6;
  const auto pts = scatter(n, 17);
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.observation_quantum = 0.0005;
  ChatNetwork net(pts, opt);
  std::vector<std::vector<std::uint8_t>> msgs(n);
  for (std::size_t i = 0; i < n; ++i) {
    msgs[i] = random_payload(3, 20 + i);
    if (i % 2 == 0) {
      net.send(i, (i + 1) % n, msgs[i]);
    } else {
      net.broadcast(i, msgs[i]);
    }
  }
  ASSERT_TRUE(net.run_until_quiescent(500'000));
  net.run(4);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      const std::size_t to = (i + 1) % n;
      bool found = false;
      for (const auto& d : net.received(to)) {
        found = found || (d.from == i && d.payload == msgs[i]);
      }
      EXPECT_TRUE(found) << "unicast from " << i;
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        bool found = false;
        for (const auto& d : net.received(j)) {
          found = found || (d.broadcast && d.from == i &&
                            d.payload == msgs[i]);
        }
        EXPECT_TRUE(found) << "broadcast from " << i << " at " << j;
      }
    }
  }
  EXPECT_GT(net.engine().trace().min_separation(), 0.0);
}

TEST(Combo, AsyncDelayAndKSubsetScheduler) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.scheduler = SchedulerKind::ksubset;
  opt.subset_size = 2;
  opt.observation_delay = 1;
  opt.seed = 19;
  ChatNetwork net(scatter(3, 19), opt);
  const auto msg = random_payload(2, 6);
  net.send(2, 0, msg);
  ASSERT_TRUE(net.run_until_quiescent(5'000'000));
  net.run(512);
  ASSERT_EQ(net.received(0).size(), 1u);
  EXPECT_EQ(net.received(0)[0].payload, msg);
}

}  // namespace
}  // namespace stig
