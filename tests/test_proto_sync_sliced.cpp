// SyncSliced protocol tests (Sections 3.2-3.4): all three naming modes,
// concurrent senders, eavesdropping/redundancy, collision avoidance inside
// granulars, silence, flocking, and randomized property sweeps.
#include <gtest/gtest.h>

#include "core/chat_network.hpp"
#include "encode/bits.hpp"
#include "geom/angle.hpp"
#include "geom/voronoi.hpp"
#include "proto/sync_sliced.hpp"
#include "sim/rng.hpp"

namespace stig {
namespace {

using core::Capabilities;
using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::ProtocolKind;
using core::Synchrony;

std::vector<geom::Vec2> scatter(std::size_t n, std::uint64_t seed,
                                double extent = 30.0, double min_gap = 2.0) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-extent, extent),
                       rng.uniform(-extent, extent)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < min_gap) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

std::vector<std::uint8_t> random_payload(std::size_t len,
                                         std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

ChatNetworkOptions sliced_options(bool ids, bool sod) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.visible_ids = ids;
  opt.caps.sense_of_direction = sod;
  return opt;
}

struct NamingCase {
  bool ids;
  bool sod;
  const char* name;
};

class SlicedNamingTest : public ::testing::TestWithParam<NamingCase> {};

TEST_P(SlicedNamingTest, AllPairsDeliver) {
  const NamingCase& c = GetParam();
  const std::size_t n = 5;
  ChatNetwork net(scatter(n, 77), sliced_options(c.ids, c.sod));
  // Every ordered pair exchanges a distinct message.
  std::vector<std::vector<std::vector<std::uint8_t>>> msgs(
      n, std::vector<std::vector<std::uint8_t>>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      msgs[i][j] = random_payload(2 + (i * n + j) % 5, 100 + i * n + j);
      net.send(i, j, msgs[i][j]);
    }
  }
  ASSERT_TRUE(net.run_until_quiescent(100'000)) << c.name;
  net.run(4);
  for (std::size_t j = 0; j < n; ++j) {
    ASSERT_EQ(net.received(j).size(), n - 1) << c.name;
    for (const auto& d : net.received(j)) {
      EXPECT_EQ(d.payload, msgs[d.from][j]) << c.name;
      EXPECT_EQ(d.to, j);
    }
  }
}

TEST_P(SlicedNamingTest, EverybodyOverhearsEverything) {
  const NamingCase& c = GetParam();
  const std::size_t n = 4;
  ChatNetwork net(scatter(n, 31), sliced_options(c.ids, c.sod));
  const auto msg = random_payload(6, 9);
  net.send(0, 1, msg);
  ASSERT_TRUE(net.run_until_quiescent(50'000));
  net.run(4);
  // The paper's redundancy remark: every robot can decode every message.
  for (std::size_t j = 2; j < n; ++j) {
    ASSERT_EQ(net.overheard(j).size(), 1u) << c.name << " robot " << j;
    EXPECT_EQ(net.overheard(j)[0].payload, msg);
    EXPECT_EQ(net.overheard(j)[0].from, 0u);
    EXPECT_EQ(net.overheard(j)[0].to, 1u);
  }
  // The addressee files it as received, not overheard.
  EXPECT_EQ(net.received(1).size(), 1u);
  EXPECT_EQ(net.overheard(1).size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Namings, SlicedNamingTest,
    ::testing::Values(NamingCase{true, true, "ids"},
                      NamingCase{false, true, "lexicographic"},
                      NamingCase{false, false, "relative"}),
    [](const auto& info) { return info.param.name; });

TEST(SyncSliced, SilentWhenIdle) {
  ChatNetwork net(scatter(6, 3), sliced_options(false, true));
  net.run(200);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(net.engine().trace().stats(i).moves, 0u) << i;
  }
}

TEST(SyncSliced, StaysInsideGranulars) {
  ChatNetworkOptions opt = sliced_options(false, true);
  opt.record_positions = true;
  const auto pts = scatter(5, 13);
  ChatNetwork net(pts, opt);
  for (std::size_t i = 0; i < 5; ++i) {
    net.send(i, (i + 2) % 5, random_payload(8, i));
  }
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  // Collision avoidance, the strong form: every robot stayed within its
  // granular (half nearest-neighbor distance) the whole run.
  std::vector<double> radius(5);
  for (std::size_t i = 0; i < 5; ++i) {
    radius[i] = geom::granular_radius(pts, i);
  }
  for (const auto& config : net.engine().trace().positions()) {
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_LT(geom::dist(config[i], pts[i]), radius[i]);
    }
  }
  EXPECT_GT(net.engine().trace().min_separation(), 0.0);
}

TEST(SyncSliced, TwoInstantsPerBitEvenWithConcurrentSenders) {
  const std::size_t n = 6;
  ChatNetwork net(scatter(n, 5), sliced_options(false, true));
  const auto msg = random_payload(10, 3);
  const std::uint64_t frame_bits = encode::encode_frame(msg).size();
  for (std::size_t i = 0; i < n; ++i) {
    net.send(i, (i + 1) % n, msg);  // All robots send concurrently.
  }
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  // Concurrency is free: the slowest sender still needs only 2/bit.
  EXPECT_EQ(net.engine().now(), 2 * frame_bits);
}

TEST(SyncSliced, MirroredSwarmWorks) {
  ChatNetworkOptions opt = sliced_options(false, false);
  opt.mirrored_frames = true;
  ChatNetwork net(scatter(5, 41), opt);
  const auto msg = random_payload(7, 2);
  net.send(3, 0, msg);
  ASSERT_TRUE(net.run_until_quiescent(50'000));
  net.run(4);
  ASSERT_EQ(net.received(0).size(), 1u);
  EXPECT_EQ(net.received(0)[0].payload, msg);
}

TEST(SyncSliced, FlockingChatDrifts) {
  ChatNetworkOptions opt = sliced_options(false, true);
  opt.flock_velocity = geom::Vec2{0.05, 0.02};
  opt.sigma = 0.5;
  opt.record_positions = true;
  const auto pts = scatter(4, 19);
  ChatNetwork net(pts, opt);
  const auto msg = random_payload(12, 8);
  net.send(0, 3, msg);
  ASSERT_TRUE(net.run_until_quiescent(50'000));
  net.run(4);
  ASSERT_EQ(net.received(3).size(), 1u);
  EXPECT_EQ(net.received(3)[0].payload, msg);
  // The swarm really moved: every robot drifted by t * v.
  const auto t = static_cast<double>(net.engine().now());
  const geom::Vec2 expected_drift = opt.flock_velocity * t;
  for (std::size_t i = 0; i < 4; ++i) {
    const geom::Vec2 drift = net.engine().positions()[i] - pts[i];
    EXPECT_NEAR(geom::dist(drift, expected_drift), 0.0, 1e-6) << i;
  }
}

TEST(SyncSliced, WorksAtScale) {
  const std::size_t n = 40;
  ChatNetwork net(scatter(n, 23, 100.0, 3.0), sliced_options(false, false));
  const auto msg = random_payload(5, 77);
  net.send(0, n - 1, msg);
  net.send(n / 2, 1, msg);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(4);
  ASSERT_EQ(net.received(n - 1).size(), 1u);
  ASSERT_EQ(net.received(1).size(), 1u);
}

// Property sweep over swarm sizes and seeds: random sender/receiver pairs.
class SlicedPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(SlicedPropertyTest, RandomPairsDeliver) {
  const auto [n, sod] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ChatNetworkOptions opt = sliced_options(false, sod);
    opt.seed = seed;
    sim::Rng rng(seed * 51);
    ChatNetwork net(scatter(n, seed * 7 + n), opt);
    const std::size_t sender = rng.uniform_int(0, n - 1);
    std::size_t receiver;
    do {
      receiver = rng.uniform_int(0, n - 1);
    } while (receiver == sender);
    const auto msg = random_payload(1 + seed % 9, seed);
    net.send(sender, receiver, msg);
    ASSERT_TRUE(net.run_until_quiescent(50'000))
        << "n=" << n << " seed=" << seed;
    net.run(4);
    ASSERT_EQ(net.received(receiver).size(), 1u)
        << "n=" << n << " seed=" << seed;
    EXPECT_EQ(net.received(receiver)[0].payload, msg);
    EXPECT_EQ(net.received(receiver)[0].from, sender);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlicedPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 4, 8, 16, 32),
                       ::testing::Bool()));

}  // namespace
}  // namespace stig
