// Wireless channel and hybrid (wireless + motion backup) tests — the
// paper's fault-tolerance motivation made executable.
#include <gtest/gtest.h>

#include "core/backup_channel.hpp"
#include "core/chat_network.hpp"
#include "core/wireless.hpp"
#include "encode/bits.hpp"

namespace stig {
namespace {

using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::HybridMessenger;
using core::Synchrony;
using core::WirelessChannel;
using core::WirelessOptions;

std::vector<geom::Vec2> square() {
  return {geom::Vec2{0, 0}, geom::Vec2{10, 0}, geom::Vec2{10, 10},
          geom::Vec2{0, 10}};
}

ChatNetwork motion_net() {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  return ChatNetwork(square(), opt);
}

TEST(Wireless, DeliversWhenHealthy) {
  WirelessChannel radio(4, WirelessOptions{});
  const auto r = radio.transmit(0, 0, 1, encode::bytes_of("hi"));
  EXPECT_TRUE(r.delivered);
  const auto got = radio.take_received(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], encode::bytes_of("hi"));
  EXPECT_TRUE(radio.take_received(1).empty());  // Drained.
  EXPECT_EQ(radio.sent(), 1u);
  EXPECT_EQ(radio.dropped(), 0u);
}

TEST(Wireless, BrokenDeviceDropsBothDirections) {
  WirelessChannel radio(4, WirelessOptions{});
  radio.break_device(2);
  EXPECT_TRUE(radio.device_broken(2));
  EXPECT_FALSE(radio.transmit(0, 2, 1, encode::bytes_of("x")).delivered);
  EXPECT_FALSE(radio.transmit(0, 0, 2, encode::bytes_of("x")).delivered);
  radio.repair_device(2);
  EXPECT_TRUE(radio.transmit(0, 0, 2, encode::bytes_of("x")).delivered);
}

TEST(Wireless, JammingWindow) {
  WirelessOptions opt;
  opt.jam_from = 10;
  opt.jam_until = 20;
  WirelessChannel radio(2, opt);
  EXPECT_TRUE(radio.transmit(9, 0, 1, encode::bytes_of("a")).delivered);
  EXPECT_FALSE(radio.transmit(10, 0, 1, encode::bytes_of("b")).delivered);
  EXPECT_FALSE(radio.transmit(19, 0, 1, encode::bytes_of("c")).delivered);
  EXPECT_TRUE(radio.transmit(20, 0, 1, encode::bytes_of("d")).delivered);
}

TEST(Wireless, LossRateRoughlyRespected) {
  WirelessOptions opt;
  opt.loss_probability = 0.3;
  opt.seed = 5;
  WirelessChannel radio(2, opt);
  for (int i = 0; i < 2000; ++i) {
    (void)radio.transmit(0, 0, 1, encode::bytes_of("x"));
  }
  const double rate =
      static_cast<double>(radio.dropped()) / static_cast<double>(radio.sent());
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(Hybrid, WirelessPathUsedWhenHealthy) {
  ChatNetwork net = motion_net();
  WirelessChannel radio(4, WirelessOptions{});
  HybridMessenger hybrid(net, radio);
  hybrid.send(0, 1, encode::bytes_of("fast path"));
  EXPECT_TRUE(hybrid.flush(10)); // Nothing queued on motion: instant.
  const auto got = hybrid.received(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], encode::bytes_of("fast path"));
  EXPECT_EQ(hybrid.stats().wireless_delivered, 1u);
  EXPECT_EQ(hybrid.stats().motion_fallbacks, 0u);
}

TEST(Hybrid, FallsBackWhenDeviceBroken) {
  ChatNetwork net = motion_net();
  WirelessChannel radio(4, WirelessOptions{});
  radio.break_device(1);
  HybridMessenger hybrid(net, radio);
  hybrid.send(0, 1, encode::bytes_of("via movement"));
  ASSERT_TRUE(hybrid.flush(100'000));
  net.run(4);
  const auto got = hybrid.received(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], encode::bytes_of("via movement"));
  EXPECT_EQ(hybrid.stats().motion_fallbacks, 1u);
  EXPECT_EQ(hybrid.stats().wireless_delivered, 0u);
}

TEST(Hybrid, EveryMessageArrivesUnderHeavyLoss) {
  ChatNetwork net = motion_net();
  WirelessOptions wopt;
  wopt.loss_probability = 0.5;
  wopt.seed = 9;
  WirelessChannel radio(4, wopt);
  HybridMessenger hybrid(net, radio);
  const int kMessages = 20;
  for (int m = 0; m < kMessages; ++m) {
    const std::vector<std::uint8_t> one{static_cast<std::uint8_t>(m)};
    hybrid.send(0, 2, one);
  }
  ASSERT_TRUE(hybrid.flush(1'000'000));
  net.run(4);
  const auto got = hybrid.received(2);
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kMessages));
  EXPECT_EQ(hybrid.stats().wireless_delivered +
                hybrid.stats().motion_fallbacks,
            static_cast<std::uint64_t>(kMessages));
  EXPECT_GT(hybrid.stats().motion_fallbacks, 0u);
  EXPECT_GT(hybrid.stats().wireless_delivered, 0u);
}

TEST(Hybrid, FlushReportsCompletionUnderTotalLoss) {
  // The E5 bench's scenario: a fully dead radio and a many-message burst.
  // flush()'s return value is the only signal the fallback path actually
  // drained — it must be true here, and every message must have crossed
  // over the motion channel.
  ChatNetwork net = motion_net();
  WirelessOptions wopt;
  wopt.loss_probability = 1.0;
  WirelessChannel radio(4, wopt);
  HybridMessenger hybrid(net, radio);
  const int kMessages = 12;
  for (int m = 0; m < kMessages; ++m) {
    hybrid.send(m % 4, (m + 1) % 4,
                std::vector<std::uint8_t>{static_cast<std::uint8_t>(m)});
  }
  ASSERT_TRUE(hybrid.flush(10'000'000));
  net.run(4);
  std::size_t got = 0;
  for (std::size_t i = 0; i < 4; ++i) got += hybrid.received(i).size();
  EXPECT_EQ(got, static_cast<std::size_t>(kMessages));
  EXPECT_EQ(hybrid.stats().motion_fallbacks,
            static_cast<std::uint64_t>(kMessages));
  // And an impossible budget must report failure, not fake success.
  HybridMessenger tiny(net, radio);
  tiny.send(0, 1, encode::bytes_of("no time"));
  EXPECT_FALSE(tiny.flush(1));
}

TEST(Hybrid, JammedSwarmStillCommunicates) {
  ChatNetwork net = motion_net();
  WirelessOptions wopt;
  wopt.jam_from = 0;
  wopt.jam_until = ~0ULL;  // Permanently jammed environment.
  WirelessChannel radio(4, wopt);
  HybridMessenger hybrid(net, radio);
  hybrid.send(3, 0, encode::bytes_of("all motion"));
  hybrid.send(1, 2, encode::bytes_of("still works"));
  ASSERT_TRUE(hybrid.flush(1'000'000));
  net.run(4);
  EXPECT_EQ(hybrid.received(0).size(), 1u);
  EXPECT_EQ(hybrid.received(2).size(), 1u);
  EXPECT_EQ(hybrid.stats().wireless_delivered, 0u);
}

}  // namespace
}  // namespace stig
