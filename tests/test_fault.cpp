// The fault subsystem: plan sampling/serialization, the injector's
// crash/stall/jitter/burst semantics, crash-masking group redundancy (the
// acceptance property: no single group member's crash changes the voted
// payloads), ack-timeout retransmission, and the fuzz-harness integration
// (masked run_case, shrinking, repro round-trip, replay digests).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/chat_network.hpp"
#include "core/wireless.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/redundant_group.hpp"
#include "fault/reliable.hpp"
#include "fuzz/fuzz_config.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/shrink.hpp"
#include "obs/sink.hpp"
#include "obs/watchdog.hpp"

namespace {

using namespace stig;

// ---------------------------------------------------------------- plans --

TEST(FaultPlan, SamplingIsDeterministicAndInShape) {
  fault::FaultPlanShape shape;
  shape.robots = 4;
  shape.horizon = 500;
  shape.max_crashes = 2;
  shape.max_stalls = 2;
  shape.max_jitters = 2;
  shape.max_bursts = 2;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const fault::FaultPlan a = fault::sample_fault_plan(seed, shape);
    const fault::FaultPlan b = fault::sample_fault_plan(seed, shape);
    EXPECT_EQ(a, b);
    for (const auto& f : a.crashes) {
      EXPECT_LT(f.robot, shape.robots);
      EXPECT_LT(f.at, shape.horizon);
    }
    for (const auto& f : a.stalls) {
      EXPECT_LT(f.robot, shape.robots);
      EXPECT_GE(f.instants, 1u);
      EXPECT_LE(f.instants, shape.stall_max);
    }
    for (const auto& f : a.jitters) {
      EXPECT_LE(std::abs(f.dx_ticks), shape.jitter_ticks_max);
      EXPECT_LE(std::abs(f.dy_ticks), shape.jitter_ticks_max);
    }
    for (const auto& f : a.bursts) {
      EXPECT_GE(f.width, 1u);
      EXPECT_LE(f.width, shape.burst_width_max);
    }
  }
}

TEST(FaultPlan, FormatParseRoundTripsSampledPlans) {
  fault::FaultPlanShape shape;
  shape.robots = 6;
  shape.horizon = 2000;
  shape.max_crashes = 3;
  shape.max_stalls = 2;
  shape.max_jitters = 2;
  shape.max_bursts = 2;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const fault::FaultPlan plan = fault::sample_fault_plan(seed, shape);
    const std::string text = fault::format_fault_plan(plan);
    const auto back = fault::parse_fault_plan(text);
    ASSERT_TRUE(back.has_value()) << text;
    EXPECT_EQ(*back, plan) << text;
  }
  // The empty plan is the empty string, both ways.
  EXPECT_EQ(fault::format_fault_plan({}), "");
  const auto empty = fault::parse_fault_plan("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(FaultPlan, ParseRejectsMalformedText) {
  for (const char* bad :
       {"crash:1", "crash:@5", "stall:1@4+0", "burst:1@3x0", "jitter:0@2:5",
        "frob:1@2", "crash:1@2;;", "crash:1@2;stall:zz@1+1"}) {
    EXPECT_FALSE(fault::parse_fault_plan(bad).has_value()) << bad;
  }
}

TEST(FaultPlan, NormalizeSortsDedupsAndKeepsEarliestCrash) {
  fault::FaultPlan plan;
  plan.crashes = {{2, 90}, {1, 30}, {2, 40}, {1, 30}};
  plan.jitters = {{0, 5, 3, -4}, {0, 5, 3, -4}};
  fault::normalize(plan);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0], (fault::CrashFault{1, 30}));
  EXPECT_EQ(plan.crashes[1], (fault::CrashFault{2, 40}));  // Earliest wins.
  EXPECT_EQ(plan.jitters.size(), 1u);
}

// ------------------------------------------------------------- injector --

core::ChatNetworkOptions sliced_opts(std::uint64_t seed) {
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  opt.protocol = core::ProtocolKind::sliced;
  opt.seed = seed;
  return opt;
}

TEST(FaultInjector, CrashedSenderDeliversNothingAndFallsSilent) {
  fault::FaultInjector inj(fault::FaultPlan{.crashes = {{0, 5}}});
  obs::CollectSink sink;
  inj.set_event_sink(&sink);
  core::ChatNetwork net(fuzz::scatter(3, 2), sliced_opts(3));
  net.attach_step_interceptor(&inj);
  net.attach_event_sink(&sink);
  net.send(0, 1, {{0xab, 0xcd}});
  net.run(400);
  EXPECT_TRUE(net.received(1).empty());
  EXPECT_TRUE(net.quiescent());  // Crashed robots are exempt.
  bool fired = false;
  for (const obs::Event& e : sink.events()) {
    if (e.type == obs::EventType::FaultInjected) {
      EXPECT_STREQ(e.label, "crash");
      EXPECT_EQ(e.robot, 0);
      EXPECT_EQ(e.t, 5u);
      fired = true;
    }
    // Silence: the crashed robot never acts at or after its crash instant.
    if (e.robot == 0 && e.t >= 5 &&
        (e.type == obs::EventType::Move ||
         e.type == obs::EventType::BitEmitted)) {
      ADD_FAILURE() << "robot 0 active at t=" << e.t;
    }
  }
  EXPECT_TRUE(fired);
}

TEST(FaultInjector, StalledAsyncSenderRecoversAndStillDelivers) {
  // Asynchronous protocols are schedule-oblivious, so a stalled robot is
  // indistinguishable from an unactivated one and transmission resumes
  // when the stall ends. (Synchronous sliced rounds are *not* stall-safe:
  // a frozen speaker reads as signal and corrupts the frame — by design.)
  fault::FaultInjector inj(fault::FaultPlan{.stalls = {{0, 2, 40}}});
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::asynchronous;
  opt.protocol = core::ProtocolKind::asyncn;
  opt.seed = 4;
  core::ChatNetwork net(fuzz::scatter(4, 2), opt);
  net.attach_step_interceptor(&inj);
  const std::vector<std::uint8_t> payload = {0x5a};
  net.send(0, 1, payload);
  ASSERT_TRUE(net.run_until_quiescent(400'000));
  net.run(512);
  ASSERT_EQ(net.received(1).size(), 1u);
  EXPECT_EQ(net.received(1)[0].payload, payload);
}

TEST(FaultInjector, JitterTeleportsExactlyOnce) {
  fault::FaultInjector inj(
      fault::FaultPlan{.jitters = {{1, 3, 1024, -512}}});
  obs::CollectSink sink;
  inj.set_event_sink(&sink);
  core::ChatNetwork net(fuzz::scatter(5, 2), sliced_opts(5));
  net.attach_step_interceptor(&inj);
  net.attach_event_sink(&sink);
  net.send(0, 1, {{0x11}});
  net.run_until_quiescent(100'000);
  std::size_t teleports = 0;
  std::size_t jitter_events = 0;
  for (const obs::Event& e : sink.events()) {
    if (e.type == obs::EventType::Teleport) {
      EXPECT_EQ(e.robot, 1);
      ++teleports;
    }
    if (e.type == obs::EventType::FaultInjected &&
        std::string(e.label) == "jitter") {
      EXPECT_EQ(e.t, 3u);
      ++jitter_events;
    }
  }
  EXPECT_EQ(teleports, 1u);
  EXPECT_EQ(jitter_events, 1u);
}

TEST(FaultInjector, BurstCorruptsDecodeAndCrcDropsTheFrame) {
  core::ChatNetwork net(fuzz::scatter(6, 2), sliced_opts(6));
  fault::FaultPlan plan;
  plan.bursts = {{1, 6, 3}};
  obs::CollectSink sink;
  EXPECT_EQ(fault::arm_bursts(net, plan, &sink), 1u);
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_STREQ(sink.events()[0].label, "burst");
  net.send(0, 1, {{0xee, 0xff}});
  net.run_until_quiescent(100'000);
  net.run(4);
  // The receiver misread 3 bits mid-frame: the CRC must reject the frame,
  // and the fault must count as fired (not as an unfired dud).
  EXPECT_TRUE(net.received(1).empty());
  EXPECT_EQ(net.report().unfired_decode_faults, 0u);
}

TEST(FaultInjector, ArmBurstsKeepsOnePerRobot) {
  core::ChatNetwork net(fuzz::scatter(7, 2), sliced_opts(7));
  fault::FaultPlan plan;
  plan.bursts = {{1, 4, 1}, {1, 90, 2}, {0, 8, 1}};
  EXPECT_EQ(fault::arm_bursts(net, plan, nullptr), 2u);
}

// ------------------------------------------------ decode-fault lifecycle --

TEST(DecodeFault, RearmingThrowsAndUnfiredSurfacesInReport) {
  core::ChatNetwork net(fuzz::scatter(8, 2), sliced_opts(8));
  net.inject_decode_fault(1, 100'000);  // Will never fire.
  EXPECT_THROW(net.inject_decode_fault(1, 5), std::logic_error);
  EXPECT_THROW(net.inject_decode_fault(0, 5, 0), std::invalid_argument);
  net.send(0, 1, {{0x01}});
  net.run_until_quiescent(100'000);
  net.run(4);
  EXPECT_EQ(net.received(1).size(), 1u);  // Fault armed far past the frame.
  EXPECT_EQ(net.report().unfired_decode_faults, 1u);
}

// ------------------------------------------------------------- masking --

std::vector<std::vector<std::uint8_t>> voted_payloads(
    fault::RedundantChatNetwork& net, std::size_t n) {
  std::vector<std::vector<std::uint8_t>> out;
  for (std::size_t i = 0; i < n; ++i) {
    for (const fault::VotedDelivery& v : net.voted(i)) {
      out.push_back(v.payload);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// The acceptance property: with group size >= 2, crash-stop of any single
// group member at any instant never changes the voted payloads.
TEST(RedundantGroup, SingleMemberCrashNeverChangesVotedPayloads) {
  const std::size_t n = 3;
  const std::vector<std::uint8_t> payload = {0xde, 0xad, 0xbe};
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    fault::RedundantOptions base;
    base.base = sliced_opts(seed);
    base.group_size = 2;
    fault::RedundantChatNetwork clean(fuzz::scatter(seed, n), base);
    clean.broadcast(0, payload);
    clean.run_until_settled(100'000, 600, 4);
    const auto want = voted_payloads(clean, n);
    ASSERT_EQ(want.size(), n - 1);  // Every receiver got the broadcast.

    for (std::size_t member = 0; member < 2 * n; ++member) {
      for (sim::Time at : {sim::Time{0}, sim::Time{7}, sim::Time{23},
                           sim::Time{61}, sim::Time{200}}) {
        fault::RedundantOptions opt = base;
        opt.plan.crashes = {{member, at}};
        fault::RedundantChatNetwork net(fuzz::scatter(seed, n), opt);
        net.broadcast(0, payload);
        const auto res = net.run_until_settled(100'000, 600, 4);
        EXPECT_EQ(res.timeout_lanes, 0u);
        EXPECT_EQ(voted_payloads(net, n), want)
            << "seed " << seed << " member " << member << " at " << at;
      }
    }
  }
}

TEST(RedundantGroup, AsyncLaneWedgedByCrashSettlesAndVotes) {
  fault::RedundantOptions opt;
  opt.base.synchrony = core::Synchrony::asynchronous;
  opt.base.protocol = core::ProtocolKind::asyncn;
  opt.base.seed = 21;
  opt.group_size = 2;
  // Crash lane 1's receiver mid-run: that lane's sender blocks forever on
  // the Lemma 4.1 ack; the stall window must settle it.
  opt.plan.crashes = {{2 + 1, 400}};
  const std::vector<std::uint8_t> payload = {0x77};
  fault::RedundantChatNetwork net(fuzz::scatter(22, 2), opt);
  net.send(0, 1, payload);
  const auto res = net.run_until_settled(400'000, 512, 512);
  EXPECT_EQ(res.timeout_lanes, 0u);
  ASSERT_EQ(net.voted(1).size(), 1u);
  EXPECT_EQ(net.voted(1)[0].payload, payload);
}

TEST(RedundantGroup, VoteEmitsMaskedDeliveryWithAgreementCount) {
  fault::RedundantOptions opt;
  opt.base = sliced_opts(31);
  opt.group_size = 3;
  const std::vector<std::uint8_t> payload = {0x42, 0x43};
  fault::RedundantChatNetwork net(fuzz::scatter(31, 2), opt);
  obs::CollectSink sink;
  net.set_event_sink(&sink);
  net.send(0, 1, payload);
  net.run_until_settled(100'000, 600, 4);
  ASSERT_EQ(sink.events().size(), 1u);
  const obs::Event& e = sink.events()[0];
  EXPECT_EQ(e.type, obs::EventType::MaskedDelivery);
  EXPECT_EQ(e.robot, 1);
  EXPECT_EQ(e.peer, 0);
  EXPECT_EQ(e.value, 3.0);  // All lanes agreed.
  EXPECT_EQ(e.bit, fault::fnv1a32(payload));
  EXPECT_STREQ(e.label, "unicast");
}

TEST(RedundantGroup, LaneSliceReindexesPhysicalRobots) {
  fault::FaultPlan plan;
  plan.crashes = {{0, 10}, {3, 20}, {5, 30}};
  const fault::FaultPlan l0 = fault::lane_slice(plan, 0, 3);
  const fault::FaultPlan l1 = fault::lane_slice(plan, 1, 3);
  ASSERT_EQ(l0.crashes.size(), 1u);
  EXPECT_EQ(l0.crashes[0], (fault::CrashFault{0, 10}));
  ASSERT_EQ(l1.crashes.size(), 2u);
  EXPECT_EQ(l1.crashes[0], (fault::CrashFault{0, 20}));
  EXPECT_EQ(l1.crashes[1], (fault::CrashFault{2, 30}));
}

// ------------------------------------------------------------ watchdog --

TEST(Watchdog, CrashSilenceTripsOnPostCrashActivity) {
  obs::Watchdog dog{obs::WatchdogOptions{}};
  obs::Event crash;
  crash.type = obs::EventType::FaultInjected;
  crash.t = 10;
  crash.robot = 1;
  crash.label = "crash";
  dog.on_event(crash);
  obs::Event act;
  act.type = obs::EventType::Activation;
  act.t = 9;
  act.robot = 1;
  dog.on_event(act);  // Before the crash: fine.
  EXPECT_TRUE(dog.ok());
  act.t = 10;
  dog.on_event(act);  // At the crash instant: violation.
  ASSERT_FALSE(dog.ok());
  EXPECT_EQ(dog.violations()[0].invariant, "crash_silence");
}

TEST(Watchdog, MaskAgreementTripsOnRevoteAndOnNoAgreement) {
  obs::Watchdog dog{obs::WatchdogOptions{}};
  obs::Event e;
  e.type = obs::EventType::MaskedDelivery;
  e.t = 50;
  e.robot = 1;
  e.peer = 0;
  e.aux = 0;
  e.bit = 0x1234;
  e.value = 2.0;
  e.label = "unicast";
  dog.on_event(e);
  dog.on_event(e);  // Same hash re-vote: fine.
  EXPECT_TRUE(dog.ok());
  e.bit = 0x9999;
  dog.on_event(e);  // Different hash for the same ordinal: violation.
  ASSERT_FALSE(dog.ok());
  EXPECT_EQ(dog.violations()[0].invariant, "mask_agreement");

  obs::Watchdog dog2{obs::WatchdogOptions{}};
  e.bit = 0x1234;
  e.value = 0.0;  // No agreeing lane.
  dog2.on_event(e);
  ASSERT_FALSE(dog2.ok());
  EXPECT_EQ(dog2.violations()[0].invariant, "mask_agreement");
}

// ------------------------------------------------------- retransmission --

struct ReliableRig {
  core::ChatNetwork motion;
  core::WirelessChannel radio;
  ReliableRig(std::uint64_t seed, core::WirelessOptions wopt)
      : motion(fuzz::scatter(seed, 4),
               [] {
                 core::ChatNetworkOptions o;
                 o.synchrony = core::Synchrony::synchronous;
                 o.caps.sense_of_direction = true;
                 return o;
               }()),
        radio(4, wopt) {}
};

TEST(ReliableMessenger, CleanRadioAcksFirstAttempt) {
  ReliableRig rig(41, {});
  fault::ReliableMessenger rel(rig.motion, rig.radio, {});
  const std::uint64_t id = rel.send(0, 1, {{0xaa, 0xbb}});
  ASSERT_TRUE(rel.run(10'000));
  EXPECT_EQ(rel.state(id), fault::MessageState::acked);
  const fault::ReliableStats& s = rel.stats();
  EXPECT_EQ(s.radio_attempts, 1u);
  EXPECT_EQ(s.retransmits, 0u);
  EXPECT_EQ(s.degraded, 0u);
  const auto got = rel.received(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (std::vector<std::uint8_t>{0xaa, 0xbb}));
}

TEST(ReliableMessenger, LostAcksRetransmitThenDedup) {
  core::WirelessOptions wopt;
  wopt.seed = 5;
  ReliableRig rig(42, wopt);
  fault::ReliableOptions opt;
  opt.ack_loss_probability = 1.0;  // Delivered, but the sender never knows.
  opt.max_retries = 2;
  fault::ReliableMessenger rel(rig.motion, rig.radio, opt);
  obs::CollectSink sink;
  rel.set_event_sink(&sink);
  const std::uint64_t id = rel.send(0, 1, {{0x10, 0x20}});
  ASSERT_TRUE(rel.run(2'000'000));
  // Budget exhausted without an ack: degraded onto the motion channel.
  EXPECT_EQ(rel.state(id), fault::MessageState::degraded);
  const fault::ReliableStats& s = rel.stats();
  EXPECT_EQ(s.radio_attempts, 3u);  // 1 try + 2 retries.
  EXPECT_EQ(s.retransmits, 2u);
  EXPECT_EQ(s.degraded, 1u);
  // All radio copies landed; the motion copy is a duplicate — exactly one
  // payload survives dedup.
  const auto got = rel.received(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (std::vector<std::uint8_t>{0x10, 0x20}));
  EXPECT_GE(rel.stats().duplicates_dropped, 1u);
  std::size_t retries = 0;
  std::size_t backups = 0;
  for (const obs::Event& e : sink.events()) {
    ASSERT_EQ(e.type, obs::EventType::Retransmit);
    if (std::string(e.label) == "retry") ++retries;
    if (std::string(e.label) == "backup") ++backups;
  }
  EXPECT_EQ(retries, 2u);
  EXPECT_EQ(backups, 1u);
}

TEST(ReliableMessenger, DeadRadioDegradesEverythingYetDeliversAll) {
  core::WirelessOptions wopt;
  wopt.loss_probability = 1.0;
  ReliableRig rig(43, wopt);
  fault::ReliableOptions opt;
  opt.max_retries = 1;
  fault::ReliableMessenger rel(rig.motion, rig.radio, opt);
  for (int m = 0; m < 3; ++m) {
    rel.send(static_cast<std::size_t>(m), static_cast<std::size_t>(m) + 1,
             {{static_cast<std::uint8_t>(m)}});
  }
  ASSERT_TRUE(rel.run(4'000'000));
  EXPECT_EQ(rel.stats().degraded, 3u);
  std::size_t received = 0;
  for (std::size_t i = 0; i < 4; ++i) received += rel.received(i).size();
  EXPECT_EQ(received, 3u);
}

// ------------------------------------------------------- fuzz harness --

fuzz::FuzzConfig masked_config() {
  fuzz::FuzzConfig cfg;
  cfg.seed = 71;
  cfg.protocol = core::ProtocolKind::sliced;
  cfg.scheduler = core::SchedulerKind::bernoulli;
  cfg.n = 2;
  cfg.payload = {0x33, 0x44};
  cfg.group_size = 2;
  // Crash lane 1's receiver early: lane 0 stays the clean witness.
  cfg.fault_plan.crashes = {{2 + 1, 8}};
  return cfg;
}

TEST(FuzzMasked, FaultedCasePassesOraclesWithDeterministicDigest) {
  const fuzz::FuzzConfig cfg = masked_config();
  const fuzz::CaseResult a = fuzz::run_case(cfg);
  EXPECT_EQ(a.kind, fuzz::FailureKind::none) << a.detail;
  const fuzz::CaseResult b = fuzz::run_case(cfg);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest);
  EXPECT_NE(a.schedule_digest, 0u);
  EXPECT_EQ(a.instants, b.instants);
}

TEST(FuzzMasked, AllLanesCrashedIsAPayloadMismatch) {
  fuzz::FuzzConfig cfg = masked_config();
  // Crash the sender's copy in *both* lanes: masking cannot save this.
  cfg.fault_plan.crashes = {{0, 4}, {2, 4}};
  const fuzz::CaseResult r = fuzz::run_case(cfg);
  EXPECT_EQ(r.kind, fuzz::FailureKind::payload_mismatch) << r.detail;
}

TEST(FuzzMasked, CanonicalFormOnlyChangesWhenMaskingArmed) {
  fuzz::FuzzConfig cfg = fuzz::sample_config(9);
  cfg.group_size = 1;
  cfg.fault_plan = {};
  const std::string base = fuzz::canonical(cfg);
  EXPECT_EQ(base.find(";group="), std::string::npos);
  cfg.group_size = 2;
  cfg.fault_plan.crashes = {{2, 5}};
  const std::string armed = fuzz::canonical(cfg);
  EXPECT_NE(armed.find(";group=2"), std::string::npos);
  EXPECT_NE(armed.find(";plan=crash:2@5"), std::string::npos);
  EXPECT_NE(fuzz::config_hash(cfg), 0u);
}

TEST(FuzzMasked, ForcedFaultDimensionsAreDeterministic) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    fuzz::FuzzConfig a = fuzz::sample_config(seed);
    fuzz::FuzzConfig b = fuzz::sample_config(seed);
    fuzz::force_fault_dimensions(a);
    fuzz::force_fault_dimensions(b);
    EXPECT_GE(a.group_size, 2u);
    EXPECT_EQ(fuzz::canonical(a), fuzz::canonical(b));
    // Lane 0 is always the clean witness.
    for (const auto& f : a.fault_plan.crashes) EXPECT_GE(f.robot, a.n);
    for (const auto& f : a.fault_plan.stalls) EXPECT_GE(f.robot, a.n);
    for (const auto& f : a.fault_plan.jitters) EXPECT_GE(f.robot, a.n);
    for (const auto& f : a.fault_plan.bursts) EXPECT_GE(f.robot, a.n);
  }
}

TEST(FuzzMasked, ShrinkDropsIrrelevantFaultsKeepsFatalOnes) {
  fuzz::FuzzConfig cfg = masked_config();
  // Both sender copies crash (fatal); the stall and jitter are scheduled
  // long after the lanes settle, so they never fire — pure noise the
  // shrinker must strip while keeping the crashes.
  cfg.fault_plan.crashes = {{0, 4}, {2, 4}};
  cfg.fault_plan.stalls = {{2 + 1, 50'000, 16}};
  cfg.fault_plan.jitters = {{2 + 1, 50'000, 64, 64}};
  const fuzz::CaseResult original = fuzz::run_case(cfg);
  ASSERT_EQ(original.kind, fuzz::FailureKind::payload_mismatch);
  const fuzz::ShrinkResult s = fuzz::shrink(cfg, original, 300);
  EXPECT_EQ(s.result.kind, fuzz::FailureKind::payload_mismatch);
  EXPECT_EQ(s.config.fault_plan.crashes.size(), 2u);
  EXPECT_TRUE(s.config.fault_plan.stalls.empty());
  EXPECT_TRUE(s.config.fault_plan.jitters.empty());
  EXPECT_TRUE(s.config.payload.empty());  // Payload stage still ran.
}

TEST(FuzzMasked, ReproRoundTripPreservesMaskingDimensions) {
  fuzz::Repro repro;
  repro.config = masked_config();
  repro.config.fault_plan.bursts = {{3, 9, 2}};
  repro.kind = fuzz::FailureKind::payload_mismatch;
  repro.detail = "masked detail";
  repro.schedule_digest = 0xabcdef12345ULL;
  std::ostringstream out;
  fuzz::write_repro_json(out, repro);
  const std::string path = testing::TempDir() + "repro_masked.json";
  {
    std::ofstream f(path);
    f << out.str();
  }
  std::string error;
  const auto back = fuzz::load_repro(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->config.group_size, 2u);
  EXPECT_EQ(back->config.fault_plan, repro.config.fault_plan);
  EXPECT_EQ(fuzz::canonical(back->config),
            fuzz::canonical(repro.config));
  EXPECT_EQ(back->schedule_digest, repro.schedule_digest);
  std::remove(path.c_str());
}

TEST(FuzzMasked, LegacyReproWithoutMaskingKeysLoadsWithDefaults) {
  fuzz::Repro repro;
  repro.config = fuzz::sample_config(4);
  repro.config.group_size = 1;
  repro.config.fault_plan = {};
  repro.kind = fuzz::FailureKind::timeout;
  std::ostringstream out;
  fuzz::write_repro_json(out, repro);
  // Strip the masking keys to imitate a pre-fault-subsystem file.
  std::string text = out.str();
  const std::size_t cut = text.find("  \"group_size\"");
  ASSERT_NE(cut, std::string::npos);
  text.erase(cut);
  text += "}\n";
  const std::size_t comma = text.rfind(",\n}");
  if (comma != std::string::npos) text.erase(comma, 1);
  const std::string path = testing::TempDir() + "repro_legacy.json";
  {
    std::ofstream f(path);
    f << text;
  }
  std::string error;
  const auto back = fuzz::load_repro(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->config.group_size, 1u);
  EXPECT_TRUE(back->config.fault_plan.empty());
  std::remove(path.c_str());
}

TEST(FuzzMasked, ReproWithGarbagePlanFailsToLoad) {
  fuzz::Repro repro;
  repro.config = masked_config();
  std::ostringstream out;
  fuzz::write_repro_json(out, repro);
  std::string text = out.str();
  const std::size_t at = text.find("crash:");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 6, "bogus:");
  const std::string path = testing::TempDir() + "repro_garbage.json";
  {
    std::ofstream f(path);
    f << text;
  }
  std::string error;
  EXPECT_FALSE(fuzz::load_repro(path, &error).has_value());
  EXPECT_NE(error.find("fault_plan"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
