// MulticastService tests: group addressing over the broadcast lane,
// envelope filtering, coexistence with unicast and plain broadcast.
#include <gtest/gtest.h>

#include "core/multicast.hpp"
#include "encode/bits.hpp"
#include "encode/framing.hpp"
#include "sim/rng.hpp"

namespace stig {
namespace {

using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::MulticastService;
using core::Synchrony;

std::vector<geom::Vec2> scatter(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-30, 30), rng.uniform(-30, 30)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < 3.0) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

ChatNetworkOptions sync_options() {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  return opt;
}

TEST(Multicast, OnlyRecipientsGetThePayload) {
  const std::size_t n = 7;
  ChatNetwork net(scatter(n, 5), sync_options());
  MulticastService mc(net);
  const auto payload = encode::bytes_of("group msg");
  const std::vector<sim::RobotIndex> group{1, 3, 6};
  mc.multicast(0, group, payload);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  mc.poll();
  for (sim::RobotIndex i = 0; i < n; ++i) {
    const bool member =
        std::find(group.begin(), group.end(), i) != group.end();
    if (member) {
      ASSERT_EQ(mc.group_received(i).size(), 1u) << i;
      EXPECT_EQ(mc.group_received(i)[0].payload, payload);
      EXPECT_EQ(mc.group_received(i)[0].from, 0u);
    } else {
      EXPECT_TRUE(mc.group_received(i).empty()) << i;
    }
    EXPECT_TRUE(mc.received(i).empty()) << i;  // No plain traffic.
  }
}

TEST(Multicast, SingleTransmissionRegardlessOfGroupSize) {
  const std::size_t n = 8;
  const auto pts = scatter(n, 9);
  const auto payload = encode::bytes_of("pay");

  const auto instants_for = [&](std::size_t group_size) {
    ChatNetwork net(pts, sync_options());
    MulticastService mc(net);
    std::vector<sim::RobotIndex> group;
    for (std::size_t g = 1; g <= group_size; ++g) group.push_back(g);
    mc.multicast(0, group, payload);
    net.run_until_quiescent(100'000);
    return net.engine().now();
  };
  EXPECT_EQ(instants_for(1), instants_for(7));  // Cost independent of k.
}

TEST(Multicast, CoexistsWithUnicastAndPlainBroadcast) {
  const std::size_t n = 5;
  ChatNetwork net(scatter(n, 13), sync_options());
  MulticastService mc(net);
  const auto uni = encode::bytes_of("uni");
  const auto bc = encode::bytes_of("bc");
  const auto grp = encode::bytes_of("grp");
  mc.send(0, 2, uni);
  mc.broadcast(1, bc);
  const std::vector<sim::RobotIndex> group{2, 4};
  mc.multicast(3, group, grp);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  mc.poll();

  // Robot 2: the unicast, the broadcast, and the multicast. Delivery order
  // across different senders is not specified; check as a set.
  ASSERT_EQ(mc.received(2).size(), 2u);
  const auto& r2 = mc.received(2);
  EXPECT_TRUE((r2[0].payload == uni && r2[1].payload == bc) ||
              (r2[0].payload == bc && r2[1].payload == uni));
  ASSERT_EQ(mc.group_received(2).size(), 1u);
  EXPECT_EQ(mc.group_received(2)[0].payload, grp);
  // Robot 0: only robot 1's broadcast.
  ASSERT_EQ(mc.received(0).size(), 1u);
  EXPECT_EQ(mc.received(0)[0].payload, bc);
  EXPECT_TRUE(mc.group_received(0).empty());
}

TEST(Multicast, EmptyGroupDeliversToNobody) {
  const std::size_t n = 4;
  ChatNetwork net(scatter(n, 17), sync_options());
  MulticastService mc(net);
  mc.multicast(0, {}, encode::bytes_of("void"));
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(2);
  mc.poll();
  for (sim::RobotIndex i = 0; i < n; ++i) {
    EXPECT_TRUE(mc.group_received(i).empty());
  }
}

TEST(Multicast, CheaperThanRepeatedUnicastForTwoPlusRecipients) {
  const std::size_t n = 8;
  const auto pts = scatter(n, 21);
  const auto payload = encode::bytes_of("abcdefgh");

  ChatNetwork uni_net(pts, sync_options());
  for (sim::RobotIndex r = 1; r <= 3; ++r) uni_net.send(0, r, payload);
  uni_net.run_until_quiescent(100'000);

  ChatNetwork mc_net(pts, sync_options());
  MulticastService mc(mc_net);
  const std::vector<sim::RobotIndex> group{1, 2, 3};
  mc.multicast(0, group, payload);
  mc_net.run_until_quiescent(100'000);

  EXPECT_LT(mc_net.engine().now(), uni_net.engine().now());
}

TEST(Multicast, AsynchronousGroupDelivery) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.seed = 3;
  const std::size_t n = 4;
  ChatNetwork net(scatter(n, 23), opt);
  MulticastService mc(net);
  const auto payload = encode::bytes_of("ag");
  const std::vector<sim::RobotIndex> group{1, 2};
  mc.multicast(3, group, payload);
  ASSERT_TRUE(net.run_until_quiescent(3'000'000));
  net.run(512);
  mc.poll();
  ASSERT_EQ(mc.group_received(1).size(), 1u);
  ASSERT_EQ(mc.group_received(2).size(), 1u);
  EXPECT_TRUE(mc.group_received(0).empty());
  EXPECT_EQ(mc.group_received(1)[0].payload, payload);
}

}  // namespace
}  // namespace stig
