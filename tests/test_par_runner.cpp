// BatchRunner contract tests: job-count invariance of fuzz batches (the
// tier-1 acceptance property of the parallel subsystem), seed derivation
// compatibility with the historical stigfuzz walk, drain-on-exception,
// bounded-queue backpressure, and metrics merge-on-join.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fuzz/batch.hpp"
#include "obs/metrics.hpp"
#include "par/batch_runner.hpp"
#include "par/seed.hpp"

namespace {

using namespace stig;

TEST(SeedDerivation, MatchesHistoricalSplitmixWalk) {
  // stigfuzz used to walk splitmix64 statefully; derive_seed must produce
  // the same sequence so existing corpora and repros keep their meaning.
  const std::uint64_t root = 1;
  std::uint64_t s = root;
  for (std::uint64_t i = 0; i < 100; ++i) {
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    EXPECT_EQ(par::derive_seed(root, i), z) << "index " << i;
  }
}

TEST(SeedDerivation, IndexKeyedNotOrderKeyed) {
  // Case 7's seed is the same whether or not cases 0..6 ran first.
  EXPECT_EQ(par::derive_seed(42, 7), par::derive_seed(42, 7));
  EXPECT_NE(par::derive_seed(42, 7), par::derive_seed(42, 8));
  EXPECT_NE(par::derive_seed(42, 7), par::derive_seed(43, 7));
}

// The acceptance property: the same 200-case fuzz batch is byte-identical
// — verdicts, details, schedule digests, engine clocks — at 1, 2 and 8
// worker threads.
TEST(BatchRunnerInvariance, FuzzBatchIdenticalAcrossJobCounts) {
  const std::size_t kCases = 200;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(kCases);
  for (std::size_t i = 0; i < kCases; ++i) {
    seeds.push_back(par::derive_seed(7, i));
  }

  const std::vector<fuzz::BatchCase> jobs1 = fuzz::run_cases(seeds, {}, 1);
  const std::vector<fuzz::BatchCase> jobs2 = fuzz::run_cases(seeds, {}, 2);
  const std::vector<fuzz::BatchCase> jobs8 = fuzz::run_cases(seeds, {}, 8);

  ASSERT_EQ(jobs1.size(), kCases);
  ASSERT_EQ(jobs2.size(), kCases);
  ASSERT_EQ(jobs8.size(), kCases);
  for (std::size_t i = 0; i < kCases; ++i) {
    for (const std::vector<fuzz::BatchCase>* other : {&jobs2, &jobs8}) {
      const fuzz::BatchCase& a = jobs1[i];
      const fuzz::BatchCase& b = (*other)[i];
      EXPECT_EQ(a.case_seed, b.case_seed) << "case " << i;
      EXPECT_EQ(a.result.kind, b.result.kind) << "case " << i;
      EXPECT_EQ(a.result.detail, b.result.detail) << "case " << i;
      EXPECT_EQ(a.result.schedule_digest, b.result.schedule_digest)
          << "case " << i;
      EXPECT_EQ(a.result.schedule_instants, b.result.schedule_instants)
          << "case " << i;
      EXPECT_EQ(a.result.instants, b.result.instants) << "case " << i;
    }
  }
}

TEST(BatchRunner, MapReturnsResultsInIndexOrder) {
  par::BatchRunner runner(par::BatchOptions{.jobs = 4});
  const std::vector<std::uint64_t> out =
      runner.map(64, [](std::size_t i) -> std::uint64_t { return i * 31; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 31);
  EXPECT_EQ(runner.stats().executed, 64u);
}

TEST(BatchRunner, DrainsRemainingTasksWhenOneThrows) {
  std::atomic<int> ran{0};
  par::BatchRunner runner(par::BatchOptions{.jobs = 2});
  for (int i = 0; i < 32; ++i) {
    runner.submit([&ran, i] {
      if (i == 5) {
        ran.fetch_add(1);
        throw std::runtime_error("task 5 exploded");
      }
      ran.fetch_add(1);
    });
  }
  EXPECT_THROW(runner.wait(), std::runtime_error);
  // Every sibling still ran — one failure never cancels the batch.
  EXPECT_EQ(ran.load(), 32);
  EXPECT_EQ(runner.stats().executed, 32u);
  // The error was consumed; the pool stays usable.
  runner.submit([&ran] { ran.fetch_add(1); });
  EXPECT_NO_THROW(runner.wait());
  EXPECT_EQ(ran.load(), 33);
}

TEST(BatchRunner, MapRethrowsLowestFailingIndexAfterFullDrain) {
  par::BatchRunner runner(par::BatchOptions{.jobs = 4});
  std::vector<std::atomic<bool>> attempted(16);
  try {
    (void)runner.map(16, [&attempted](std::size_t i) -> int {
      attempted[i].store(true);
      if (i == 3) throw std::runtime_error("index 3");
      if (i == 7) throw std::runtime_error("index 7");
      return static_cast<int>(i);
    });
    FAIL() << "map must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 3");
  }
  for (std::size_t i = 0; i < attempted.size(); ++i) {
    EXPECT_TRUE(attempted[i].load()) << "index " << i << " was skipped";
  }
}

TEST(BatchRunner, BackpressureBoundsQueueLength) {
  par::BatchRunner runner(par::BatchOptions{.jobs = 1, .queue_bound = 4});
  for (int i = 0; i < 100; ++i) {
    // Slow enough that an unbounded queue would pile far past 4.
    runner.submit(
        [] { std::this_thread::sleep_for(std::chrono::microseconds(100)); });
  }
  runner.wait();
  const par::BatchStats stats = runner.stats();
  EXPECT_EQ(stats.executed, 100u);
  EXPECT_LE(stats.peak_queued, 4u);
  EXPECT_GE(stats.peak_queued, 1u);
}

TEST(BatchRunner, DefaultJobsIsHardwareConcurrency) {
  par::BatchRunner runner;
  EXPECT_GE(runner.jobs(), 1u);
}

// The per-task-registry pattern: each task records into its own registry;
// the batch registry absorbs them on join.
TEST(MetricsMerge, CountersAddGaugesLastWriteHistogramsBucketwise) {
  obs::MetricsRegistry total;
  total.counter("cases").add(3);
  total.gauge("last_p").set(0.25);
  total.histogram("instants", 1.0, 8).record(4.0);

  obs::MetricsRegistry task;
  task.counter("cases").add(2);
  task.counter("failures").add(1);  // New in the task registry.
  task.gauge("last_p").set(0.75);
  task.histogram("instants", 1.0, 8).record(64.0);
  task.histogram("instants", 1.0, 8).record(0.5);

  total.merge_from(task);
  EXPECT_EQ(total.counter("cases").value(), 5u);
  EXPECT_EQ(total.counter("failures").value(), 1u);
  EXPECT_DOUBLE_EQ(total.gauge("last_p").value(), 0.75);
  const obs::LogHistogram& h = total.histogram("instants", 1.0, 8);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 68.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 64.0);
  EXPECT_EQ(h.bucket_count_at(h.bucket_index(4.0)), 1u);
  EXPECT_EQ(h.bucket_count_at(0), 1u);  // The 0.5 underflow sample.
}

TEST(MetricsMerge, MergeIsDeterministicAcrossTaskOrder) {
  // Counter and histogram merges commute, so any join order gives the
  // same aggregate — the property that makes batch metrics job-count
  // invariant.
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("x").add(10);
  b.counter("x").add(32);
  a.histogram("h").record(2.0);
  b.histogram("h").record(200.0);

  obs::MetricsRegistry ab;
  ab.merge_from(a);
  ab.merge_from(b);
  obs::MetricsRegistry ba;
  ba.merge_from(b);
  ba.merge_from(a);

  std::ostringstream ja, jb;
  ab.write_json(ja);
  ba.write_json(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(MetricsMerge, KindAndLayoutClashesThrow) {
  obs::MetricsRegistry total;
  total.counter("x");
  obs::MetricsRegistry task;
  task.gauge("x");
  EXPECT_THROW(total.merge_from(task), std::invalid_argument);

  obs::LogHistogram narrow(1.0, 8);
  obs::LogHistogram wide(1.0, 16);
  EXPECT_THROW(narrow.merge_from(wide), std::invalid_argument);

  // Self-merge is an explicit no-op, not a double-count.
  total.counter("x").add(4);
  total.merge_from(total);
  EXPECT_EQ(total.counter("x").value(), 4u);
}

}  // namespace
