// Asynchronous protocol tests (Sections 4.1 and 4.2): delivery under every
// scheduler (including adversarial), the banded Async2 variant, liveness
// (Lemma 4.4-style: positions keep changing), and property sweeps.
#include <gtest/gtest.h>

#include "core/chat_network.hpp"
#include "encode/bits.hpp"
#include "geom/voronoi.hpp"
#include "sim/rng.hpp"

namespace stig {
namespace {

using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::SchedulerKind;
using core::Synchrony;

std::vector<geom::Vec2> scatter(std::size_t n, std::uint64_t seed,
                                double extent = 30.0, double min_gap = 2.0) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-extent, extent),
                       rng.uniform(-extent, extent)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < min_gap) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

std::vector<std::uint8_t> random_payload(std::size_t len,
                                         std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

ChatNetworkOptions async_options(SchedulerKind kind, std::uint64_t seed) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.scheduler = kind;
  opt.seed = seed;
  opt.fairness_bound = 32;
  return opt;
}

class Async2SchedulerTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(Async2SchedulerTest, DeliversBothWays) {
  ChatNetworkOptions opt = async_options(GetParam(), 3);
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{6, 2}}, opt);
  const auto a = random_payload(6, 1);
  const auto b = random_payload(4, 2);
  net.send(0, 1, a);
  net.send(1, 0, b);
  ASSERT_TRUE(net.run_until_quiescent(500'000));
  net.run(128);
  ASSERT_EQ(net.received(1).size(), 1u);
  EXPECT_EQ(net.received(1)[0].payload, a);
  ASSERT_EQ(net.received(0).size(), 1u);
  EXPECT_EQ(net.received(0)[0].payload, b);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, Async2SchedulerTest,
                         ::testing::Values(SchedulerKind::bernoulli,
                                           SchedulerKind::centralized,
                                           SchedulerKind::ksubset,
                                           SchedulerKind::adversarial));

TEST(Async2, NotSilentRemark43) {
  // Remark 4.3 / Section 5: the asynchronous protocols are NOT silent —
  // idle robots still move at every activation.
  ChatNetworkOptions opt = async_options(SchedulerKind::bernoulli, 5);
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{4, 0}}, opt);
  net.run(500);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(net.engine().trace().stats(i).moves,
              net.engine().trace().stats(i).activations)
        << i;
    EXPECT_GT(net.engine().trace().stats(i).moves, 0u);
  }
}

TEST(Async2, UnboundedVariantDriftsApart) {
  ChatNetworkOptions opt = async_options(SchedulerKind::bernoulli, 7);
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{4, 0}}, opt);
  net.run(2000);
  // The paper's acknowledged drawback: the robots move away infinitely.
  EXPECT_GT(geom::dist(net.engine().positions()[0],
                       net.engine().positions()[1]),
            10.0);
}

TEST(Async2, BandedVariantStaysBounded) {
  ChatNetworkOptions opt = async_options(SchedulerKind::bernoulli, 7);
  opt.async2_banded = true;
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{4, 0}}, opt);
  const auto msg = random_payload(16, 3);
  net.send(0, 1, msg);
  net.send(1, 0, msg);
  ASSERT_TRUE(net.run_until_quiescent(1'000'000));
  net.run(4000);  // Keep idling: footprint must stay bounded.
  EXPECT_LT(geom::dist(net.engine().positions()[0],
                       net.engine().positions()[1]),
            4.0 * (1.0 + 2 * 0.25) + 1.0);
  net.run(64);
  ASSERT_EQ(net.received(1).size(), 1u);
  EXPECT_EQ(net.received(1)[0].payload, msg);
  EXPECT_GT(net.engine().trace().min_separation(), 0.5);
}

TEST(Async2, LongMessageUnderSlowActivation) {
  ChatNetworkOptions opt = async_options(SchedulerKind::bernoulli, 11);
  opt.activation_probability = 0.15;
  ChatNetwork net({geom::Vec2{-3, 1}, geom::Vec2{5, -2}}, opt);
  const auto msg = random_payload(64, 9);
  net.send(0, 1, msg);
  ASSERT_TRUE(net.run_until_quiescent(2'000'000));
  net.run(256);
  ASSERT_EQ(net.received(1).size(), 1u);
  EXPECT_EQ(net.received(1)[0].payload, msg);
}

class AsyncNSchedulerTest : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(AsyncNSchedulerTest, DeliversAmongFive) {
  ChatNetworkOptions opt = async_options(GetParam(), 13);
  ChatNetwork net(scatter(5, 17), opt);
  const auto msg = random_payload(3, 4);
  net.send(2, 4, msg);
  ASSERT_TRUE(net.run_until_quiescent(2'000'000));
  net.run(256);
  ASSERT_EQ(net.received(4).size(), 1u);
  EXPECT_EQ(net.received(4)[0].payload, msg);
  EXPECT_EQ(net.received(4)[0].from, 2u);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, AsyncNSchedulerTest,
                         ::testing::Values(SchedulerKind::bernoulli,
                                           SchedulerKind::centralized,
                                           SchedulerKind::ksubset,
                                           SchedulerKind::adversarial));

TEST(AsyncN, ConcurrentSendersAllDeliver) {
  ChatNetworkOptions opt = async_options(SchedulerKind::bernoulli, 19);
  const std::size_t n = 4;
  ChatNetwork net(scatter(n, 29), opt);
  std::vector<std::vector<std::uint8_t>> msgs(n);
  for (std::size_t i = 0; i < n; ++i) {
    msgs[i] = random_payload(2, 40 + i);
    net.send(i, (i + 1) % n, msgs[i]);
  }
  ASSERT_TRUE(net.run_until_quiescent(3'000'000));
  net.run(512);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t to = (i + 1) % n;
    ASSERT_EQ(net.received(to).size(), 1u) << to;
    EXPECT_EQ(net.received(to)[0].payload, msgs[i]);
    EXPECT_EQ(net.received(to)[0].from, i);
  }
}

TEST(AsyncN, EavesdroppingWorksAsynchronously) {
  ChatNetworkOptions opt = async_options(SchedulerKind::bernoulli, 23);
  ChatNetwork net(scatter(4, 37), opt);
  const auto msg = random_payload(3, 6);
  net.send(0, 1, msg);
  ASSERT_TRUE(net.run_until_quiescent(2'000'000));
  net.run(512);
  for (std::size_t j = 2; j < 4; ++j) {
    ASSERT_EQ(net.overheard(j).size(), 1u) << j;
    EXPECT_EQ(net.overheard(j)[0].payload, msg);
  }
}

TEST(AsyncN, StaysInsideGranulars) {
  ChatNetworkOptions opt = async_options(SchedulerKind::bernoulli, 31);
  opt.record_positions = true;
  const auto pts = scatter(4, 41);
  ChatNetwork net(pts, opt);
  net.send(0, 2, random_payload(2, 2));
  ASSERT_TRUE(net.run_until_quiescent(1'000'000));
  std::vector<double> radius(4);
  for (std::size_t i = 0; i < 4; ++i) {
    radius[i] = geom::granular_radius(pts, i);
  }
  for (const auto& config : net.engine().trace().positions()) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_LT(geom::dist(config[i], pts[i]), radius[i]);
    }
  }
  EXPECT_GT(net.engine().trace().min_separation(), 0.0);
}

TEST(AsyncN, WorksWithIdsAndSenseOfDirectionToo) {
  ChatNetworkOptions opt = async_options(SchedulerKind::bernoulli, 43);
  opt.caps.visible_ids = true;
  opt.caps.sense_of_direction = true;
  ChatNetwork net(scatter(5, 43), opt);
  const auto msg = random_payload(3, 7);
  net.send(1, 3, msg);
  ASSERT_TRUE(net.run_until_quiescent(2'000'000));
  net.run(256);
  ASSERT_EQ(net.received(3).size(), 1u);
  EXPECT_EQ(net.received(3)[0].payload, msg);
}

// Property sweep: n and activation probability.
class AsyncNPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(AsyncNPropertyTest, SingleMessageDelivers) {
  const auto [n, p] = GetParam();
  ChatNetworkOptions opt = async_options(SchedulerKind::bernoulli, 100 + n);
  opt.activation_probability = p;
  ChatNetwork net(scatter(n, 1000 + n), opt);
  const auto msg = random_payload(2, n);
  net.send(0, n - 1, msg);
  ASSERT_TRUE(net.run_until_quiescent(4'000'000)) << "n=" << n << " p=" << p;
  net.run(512);
  ASSERT_EQ(net.received(n - 1).size(), 1u) << "n=" << n << " p=" << p;
  EXPECT_EQ(net.received(n - 1)[0].payload, msg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AsyncNPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 5, 8),
                       ::testing::Values(0.25, 0.5, 0.9)));

}  // namespace
}  // namespace stig
