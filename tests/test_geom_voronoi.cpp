// Voronoi / convex-polygon / granular tests, including the cross-check the
// design calls out: polygon-based distance-to-boundary at a site equals the
// closed-form granular radius (half the nearest-neighbor distance).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geom/angle.hpp"
#include "geom/convex.hpp"
#include "geom/granular.hpp"
#include "geom/voronoi.hpp"
#include "sim/rng.hpp"

namespace stig::geom {
namespace {

std::vector<Vec2> random_sites(std::size_t n, std::uint64_t seed,
                               double extent = 50.0) {
  sim::Rng rng(seed);
  std::vector<Vec2> pts;
  while (pts.size() < n) {
    const Vec2 p{rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
    bool ok = true;
    for (const Vec2& q : pts) {
      if (dist(p, q) < 1e-3) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

TEST(ConvexPolygon, RectangleBasics) {
  const ConvexPolygon r = ConvexPolygon::rectangle(0, 0, 4, 2);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_NEAR(r.area(), 8.0, kEps);
  EXPECT_TRUE(nearly_equal(r.centroid(), Vec2{2, 1}));
  EXPECT_TRUE(r.contains(Vec2{1, 1}));
  EXPECT_TRUE(r.contains(Vec2{0, 0}));  // Boundary counts.
  EXPECT_FALSE(r.contains(Vec2{5, 1}));
  EXPECT_NEAR(r.distance_to_boundary(Vec2{2, 1}), 1.0, kEps);
}

TEST(ConvexPolygon, ClipKeepsHalf) {
  const ConvexPolygon r = ConvexPolygon::rectangle(0, 0, 4, 4);
  // Keep the left half: points left of the upward line x = 2.
  const HalfPlane hp{Line{Vec2{2, 0}, Vec2{0, 1}}};
  const ConvexPolygon c = r.clipped(hp);
  EXPECT_NEAR(c.area(), 8.0, 1e-9);
  EXPECT_TRUE(c.contains(Vec2{1, 1}));
  EXPECT_FALSE(c.contains(Vec2{3, 1}));
}

TEST(ConvexPolygon, ClipToEmpty) {
  const ConvexPolygon r = ConvexPolygon::rectangle(0, 0, 4, 4);
  const HalfPlane hp{Line{Vec2{10, 0}, Vec2{0, 1}}};
  // Everything right of x=10 -> nothing of the rectangle survives... the
  // half-plane keeps the LEFT of the upward line, so flip direction:
  const HalfPlane away{Line{Vec2{10, 0}, Vec2{0, -1}}};
  EXPECT_FALSE(r.clipped(hp).empty());
  EXPECT_TRUE(r.clipped(away).empty());
}

TEST(ConvexPolygon, RepeatedClipsMatchHalfplaneIntersection) {
  const ConvexPolygon box = ConvexPolygon::rectangle(-10, -10, 10, 10);
  const std::vector<HalfPlane> hps{
      HalfPlane{Line{Vec2{0, -5}, Vec2{1, 0}}},   // y >= -5 kept (left of ->x).
      HalfPlane{Line{Vec2{0, 5}, Vec2{-1, 0}}},   // y <= 5.
      HalfPlane{Line{Vec2{5, 0}, Vec2{0, 1}}},    // x <= 5.
  };
  const ConvexPolygon p = intersect_halfplanes(box, hps);
  EXPECT_NEAR(p.area(), 15.0 * 10.0, 1e-9);
}

TEST(Voronoi, NearestSiteMatchesCellContainment) {
  const std::vector<Vec2> sites = random_sites(20, 3);
  const VoronoiDiagram vd = VoronoiDiagram::compute(sites);
  sim::Rng rng(71);
  for (int trial = 0; trial < 500; ++trial) {
    const Vec2 q{rng.uniform(-49, 49), rng.uniform(-49, 49)};
    const std::size_t nearest = vd.nearest_site(q);
    // q must be inside (or on the boundary of) the nearest site's cell and
    // strictly outside every other cell interior.
    EXPECT_TRUE(vd.cell(nearest).polygon.contains(q, 1e-7));
    for (const VoronoiCell& c : vd.cells()) {
      if (c.site_index == nearest) continue;
      if (c.polygon.contains(q, -1e-7)) {
        // q claims to be strictly inside another cell: it must then be
        // equidistant (on a boundary), not closer.
        EXPECT_NEAR(dist(q, c.site), dist(q, sites[nearest]), 1e-6);
      }
    }
  }
}

TEST(Voronoi, SitesLieInOwnCells) {
  const std::vector<Vec2> sites = random_sites(40, 9);
  const VoronoiDiagram vd = VoronoiDiagram::compute(sites);
  for (const VoronoiCell& c : vd.cells()) {
    EXPECT_TRUE(c.polygon.contains(c.site, 1e-9));
    EXPECT_GT(c.polygon.area(), 0.0);
  }
}

TEST(Voronoi, CellsPartitionTheBox) {
  const std::vector<Vec2> sites = random_sites(12, 21, 10.0);
  const double margin = 5.0;
  const VoronoiDiagram vd = VoronoiDiagram::compute(sites, margin);
  double xmin = 1e18, ymin = 1e18, xmax = -1e18, ymax = -1e18;
  for (const Vec2& s : sites) {
    xmin = std::min(xmin, s.x);
    ymin = std::min(ymin, s.y);
    xmax = std::max(xmax, s.x);
    ymax = std::max(ymax, s.y);
  }
  const double box_area =
      (xmax - xmin + 2 * margin) * (ymax - ymin + 2 * margin);
  double total = 0.0;
  for (const VoronoiCell& c : vd.cells()) total += c.polygon.area();
  EXPECT_NEAR(total, box_area, 1e-6 * box_area);
}

// The design-document cross-check, as a parameterized property test.
class GranularRadiusTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GranularRadiusTest, ClosedFormMatchesPolygonDistance) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::vector<Vec2> sites = random_sites(n, seed * 131 + n);
    const VoronoiDiagram vd = VoronoiDiagram::compute(sites);
    for (std::size_t i = 0; i < n; ++i) {
      const double closed = granular_radius(sites, i);
      const double poly = vd.cell(i).polygon.distance_to_boundary(sites[i]);
      // The polygon boundary includes the bounding box; the box margin is
      // the configuration diameter, so interior sites are never truncated —
      // but a hull site's disc may be bounded by the box, making poly >=
      // closed impossible and poly <= closed true... in all cases the
      // *bisector* edges are at exactly `closed`, so poly <= closed, with
      // equality whenever the nearest edge is a bisector.
      EXPECT_LE(poly, closed + 1e-9) << "n=" << n << " i=" << i;
      EXPECT_NEAR(poly, closed, 1e-7) << "n=" << n << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GranularRadiusTest,
                         ::testing::Values(2, 3, 5, 10, 30, 100));

TEST(Voronoi, MarginFloorKeepsGranularsInCollinearBoxes) {
  // Regression: an explicit margin far below the nearest-neighbour scale
  // used to collapse the clip box of a collinear configuration to a
  // near-zero-height strip, truncating every cell below its granular disc.
  // The effective margin is floored at half the largest nearest-neighbour
  // distance — exactly the inflation that keeps every granular inside the
  // box — so the polygon distance must still equal the closed form.
  std::vector<Vec2> line;
  for (int i = 0; i < 9; ++i) line.push_back(Vec2{2.0 * i, 0.0});
  for (const double margin : {1e-6, 0.01, 0.5}) {
    for (const VoronoiDiagram& vd :
         {VoronoiDiagram::compute(line, margin),
          VoronoiDiagram::compute_halfplane(line, margin)}) {
      for (const VoronoiCell& c : vd.cells()) {
        EXPECT_GT(c.polygon.area(), 0.0);
        EXPECT_NEAR(c.polygon.distance_to_boundary(c.site),
                    granular_radius(line, c.site_index), 1e-9)
            << "margin " << margin << " site " << c.site_index;
      }
    }
  }
  // Near-collinear: a hair of vertical spread, same guarantee.
  std::vector<Vec2> bent = line;
  for (std::size_t i = 0; i < bent.size(); ++i) {
    bent[i].y = (i % 2 == 0 ? 1.0 : -1.0) * 1e-9;
  }
  const VoronoiDiagram vd = VoronoiDiagram::compute(bent, 1e-6);
  for (const VoronoiCell& c : vd.cells()) {
    EXPECT_GE(c.polygon.distance_to_boundary(c.site),
              granular_radius(bent, c.site_index) - 1e-9);
  }
}

TEST(Voronoi, GranularClosedFormMatchesPolygonAtTightSpacing) {
  // Large-n, tight-spacing cross-check of the closed-form granular radius
  // (half the nearest-neighbour distance — what robots actually use)
  // against the polygon's distance_to_boundary. Regression for the
  // line-intersection parallel test: its scale floor used to declare the
  // bisectors of micro-spaced sites parallel, corrupting cells (poly
  // radius off by ~1e-7 at 1e-6 spacing, including empty cells). With the
  // sine-relative test, residual disagreement is vertex-placement noise
  // from box-scale coordinates (~2e-16 absolute observed); pinned at
  // 1e-9 relative + 1e-15 absolute.
  sim::Rng rng(881);
  for (const double spacing : {1e-6, 1e-3, 1.0}) {
    std::vector<Vec2> sites;
    for (int y = 0; y < 24; ++y) {
      for (int x = 0; x < 24; ++x) {
        sites.push_back(Vec2{(x + rng.uniform(-0.2, 0.2)) * spacing,
                             (y + rng.uniform(-0.2, 0.2)) * spacing});
      }
    }
    const VoronoiDiagram vd = VoronoiDiagram::compute(sites);
    for (const VoronoiCell& c : vd.cells()) {
      const double closed = granular_radius(sites, c.site_index);
      const double poly = c.polygon.distance_to_boundary(c.site);
      EXPECT_LE(std::fabs(poly - closed), 1e-9 * closed + 1e-15)
          << "spacing " << spacing << " site " << c.site_index
          << " closed " << closed << " poly " << poly;
    }
  }
}

TEST(Granular, DirectionsAndPoints) {
  // 4 diameters, North reference: diameter 0+ is North, 1+ is NE at 45deg
  // clockwise... with 4 diameters slice width is pi/4.
  const Granular g(Vec2{0, 0}, 2.0, 4, Vec2{0, 1});
  EXPECT_NEAR(g.slice_width(), kPi / 4, kEps);
  EXPECT_TRUE(nearly_equal(g.direction(0, DiameterSide::positive), Vec2{0, 1}));
  EXPECT_TRUE(
      nearly_equal(g.direction(0, DiameterSide::negative), Vec2{0, -1}));
  EXPECT_TRUE(nearly_equal(g.direction(2, DiameterSide::positive), Vec2{1, 0}));
  EXPECT_TRUE(nearly_equal(g.point_on(2, DiameterSide::positive, 1.5),
                           Vec2{1.5, 0}));
}

TEST(Granular, ClassifyRoundTrip) {
  sim::Rng rng(12);
  for (std::size_t m : {1u, 2u, 3u, 5u, 12u, 33u}) {
    const double ref_angle = rng.uniform(0.0, kTwoPi);
    const Granular g(Vec2{rng.uniform(-5, 5), rng.uniform(-5, 5)}, 3.0, m,
                     Vec2{std::cos(ref_angle), std::sin(ref_angle)});
    for (std::size_t d = 0; d < m; ++d) {
      for (const auto side :
           {DiameterSide::positive, DiameterSide::negative}) {
        const double r = rng.uniform(0.1, 2.9);
        const auto fix = g.classify(g.point_on(d, side, r));
        ASSERT_TRUE(fix.has_value());
        EXPECT_EQ(fix->diameter, d) << "m=" << m;
        EXPECT_EQ(fix->side, side) << "m=" << m;
        EXPECT_NEAR(fix->distance, r, 1e-9);
        EXPECT_NEAR(fix->angular_error, 0.0, 1e-7);
      }
    }
  }
}

TEST(Granular, ClassifyCenterIsNull) {
  const Granular g(Vec2{1, 1}, 2.0, 6, Vec2{0, 1});
  EXPECT_FALSE(g.classify(Vec2{1, 1}).has_value());
  EXPECT_FALSE(g.classify(Vec2{1 + 1e-12, 1}).has_value());
}

TEST(Granular, OppositeSide) {
  EXPECT_EQ(opposite(DiameterSide::positive), DiameterSide::negative);
  EXPECT_EQ(opposite(DiameterSide::negative), DiameterSide::positive);
}

TEST(Granular, Contains) {
  const Granular g(Vec2{0, 0}, 2.0, 4, Vec2{0, 1});
  EXPECT_TRUE(g.contains(Vec2{1, 1}));
  EXPECT_FALSE(g.contains(Vec2{2, 1}));
}

}  // namespace
}  // namespace stig::geom
