// Span-tracing tests: spans rebuilt from a recorded JSONL log match the
// live run byte for byte, per-message end-to-end latency lands exactly on
// the delivered-frame instant (including the async protocols, where the
// delivery precedes the sender's final bit in stream order), broadcasts
// fan out to every receiver, and the JSONL parser round-trips the golden
// event rendering.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/chat_network.hpp"
#include "encode/bits.hpp"
#include "obs/jsonl_parse.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"

namespace stig {
namespace {

core::ChatNetworkOptions deterministic(core::Synchrony synchrony) {
  core::ChatNetworkOptions opt;
  opt.synchrony = synchrony;
  opt.randomize_frames = false;
  opt.seed = 7;
  return opt;
}

/// Runs a 2-robot exchange with `extra` attached next to a JSONL recorder;
/// returns the recorded log.
std::string run_recorded(core::Synchrony synchrony, obs::EventSink* extra,
                         const std::vector<std::uint8_t>& msg) {
  std::ostringstream os;
  obs::JsonlEventSink jsonl(os);
  obs::MultiSink fan;
  fan.add(&jsonl);
  fan.add(extra);
  core::ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{6, 0}},
                        deterministic(synchrony));
  net.attach_event_sink(&fan);
  net.send(0, 1, msg);
  EXPECT_TRUE(net.run_until_quiescent(200'000));
  fan.flush();
  return os.str();
}

TEST(Spans, ReplayedLogReproducesTheLiveSpansExactly) {
  obs::SpanBuilder live;
  const std::string log = run_recorded(
      core::Synchrony::synchronous, &live, encode::bytes_of("hi"));

  obs::EventLog parsed;
  std::istringstream in(log);
  EXPECT_EQ(parsed.read(in), 0u);  // Every line parses.
  ASSERT_GT(parsed.events().size(), 100u);

  obs::SpanBuilder replay;
  for (const obs::Event& e : parsed.events()) replay.on_event(e);

  std::ostringstream live_json;
  std::ostringstream replay_json;
  live.write_json(live_json);
  replay.write_json(replay_json);
  ASSERT_FALSE(live_json.str().empty());
  EXPECT_EQ(live_json.str(), replay_json.str());

  std::ostringstream live_trace;
  std::ostringstream replay_trace;
  live.write_chrome_trace(live_trace);
  replay.write_chrome_trace(replay_trace);
  EXPECT_EQ(live_trace.str(), replay_trace.str());
}

TEST(Spans, EndToEndLatencyLandsOnTheDeliveredFrameInstant) {
  obs::CollectSink collected;
  obs::SpanBuilder builder;
  obs::MultiSink both;
  both.add(&collected);
  both.add(&builder);
  run_recorded(core::Synchrony::synchronous, &both, encode::bytes_of("hi"));
  builder.finalize();

  ASSERT_EQ(builder.spans().size(), 1u);
  const obs::MessageSpan& span = builder.spans()[0];
  EXPECT_EQ(span.sender, 0);
  EXPECT_EQ(span.addressee, 1);
  EXPECT_FALSE(span.broadcast);
  EXPECT_EQ(span.payload_bytes, 2u);
  ASSERT_EQ(span.deliveries.size(), 1u);
  EXPECT_EQ(span.deliveries[0].robot, 1);
  EXPECT_EQ(span.deliveries[0].kind, "inbox");

  // The span must end exactly where the run's FrameDelivered fired.
  std::uint64_t delivered_t = 0;
  std::size_t frames = 0;
  for (const obs::Event& e : collected.events()) {
    if (e.type == obs::EventType::FrameDelivered) {
      delivered_t = e.t;
      ++frames;
    }
  }
  ASSERT_EQ(frames, 1u);
  EXPECT_EQ(span.end(), delivered_t);
  EXPECT_EQ(span.start() + span.end_to_end(), delivered_t);

  // Bit count matches the on-the-wire frame.
  EXPECT_EQ(span.bit_times.size(),
            encode::encode_frame(encode::bytes_of("hi")).size());
  EXPECT_EQ(builder.corrupt_frames(), 0u);
}

TEST(Spans, AsyncDeliveryPrecedingTheFinalBitStillMatches) {
  // Async2 senders complete their last bit only after observing the
  // Lemma 4.1 ack, so FrameDelivered precedes the final BitEmitted in
  // stream order; matching must survive the inversion.
  obs::CollectSink collected;
  obs::SpanBuilder builder;
  obs::MultiSink both;
  both.add(&collected);
  both.add(&builder);
  run_recorded(core::Synchrony::asynchronous, &both,
               encode::bytes_of("ok"));
  builder.finalize();

  ASSERT_EQ(builder.spans().size(), 1u);
  const obs::MessageSpan& span = builder.spans()[0];
  ASSERT_EQ(span.deliveries.size(), 1u);

  std::uint64_t delivered_t = 0;
  std::uint64_t last_emit_t = 0;
  for (const obs::Event& e : collected.events()) {
    if (e.type == obs::EventType::FrameDelivered) delivered_t = e.t;
    if (e.type == obs::EventType::BitEmitted) last_emit_t = e.t;
  }
  EXPECT_LT(delivered_t, last_emit_t);  // The inversion actually happened.
  EXPECT_EQ(span.end(), delivered_t);
  EXPECT_EQ(span.start() + span.end_to_end(), delivered_t);
  EXPECT_GT(span.ack_count, 0u);  // Async transmission observes acks.
}

TEST(Spans, BroadcastFansOutToEveryReceiver) {
  core::ChatNetworkOptions opt = deterministic(core::Synchrony::synchronous);
  core::ChatNetwork net(
      {geom::Vec2{0, 0}, geom::Vec2{6, 0}, geom::Vec2{0, 6}}, opt);
  obs::SpanBuilder builder;
  net.attach_event_sink(&builder);
  net.broadcast(0, encode::bytes_of("all"));
  ASSERT_TRUE(net.run_until_quiescent(200'000));
  builder.finalize();

  ASSERT_EQ(builder.spans().size(), 1u);
  const obs::MessageSpan& span = builder.spans()[0];
  EXPECT_TRUE(span.broadcast);
  EXPECT_EQ(span.addressee, -1);
  ASSERT_EQ(span.deliveries.size(), 2u);
  for (const obs::SpanDelivery& d : span.deliveries) {
    EXPECT_NE(d.robot, 0);
    EXPECT_EQ(d.kind, "broadcast");
  }
  EXPECT_EQ(span.end(), span.deliveries[0].t > span.deliveries[1].t
                            ? span.deliveries[0].t
                            : span.deliveries[1].t);
}

TEST(Spans, UtilizationAndCriticalPathAreConsistent) {
  obs::SpanBuilder builder;
  run_recorded(core::Synchrony::synchronous, &builder,
               encode::bytes_of("hi"));
  builder.finalize();

  ASSERT_EQ(builder.utilization().size(), 2u);
  for (const obs::RobotUtilization& u : builder.utilization()) {
    EXPECT_EQ(u.busy_instants + u.silent_instants, builder.instants());
    EXPECT_GE(u.utilization, 0.0);
    EXPECT_LE(u.utilization, 1.0);
  }
  // Only the sender transmits.
  EXPECT_GT(builder.utilization()[0].busy_instants, 0u);
  EXPECT_EQ(builder.utilization()[1].busy_instants, 0u);

  const obs::CriticalPath& cp = builder.critical_path();
  EXPECT_EQ(cp.sender, 0);
  ASSERT_EQ(cp.span_ids.size(), 1u);
  EXPECT_EQ(cp.total_instants, cp.transmit_instants + cp.wait_instants);
  EXPECT_GT(cp.transmit_instants, 0u);
}

TEST(Spans, PhaseAttributionCoversTheTransmissionWindow) {
  obs::SpanBuilder builder;
  run_recorded(core::Synchrony::synchronous, &builder,
               encode::bytes_of("hi"));
  builder.finalize();

  ASSERT_EQ(builder.spans().size(), 1u);
  const obs::MessageSpan& span = builder.spans()[0];
  ASSERT_FALSE(span.phases.empty());
  std::uint64_t attributed = 0;
  for (const obs::PhaseSegment& seg : span.phases) {
    EXPECT_LT(seg.begin, seg.end);
    attributed += seg.instants();
  }
  // Segments tile the half-open window [start, end+1): same total length.
  EXPECT_EQ(attributed, span.end() + 1 - span.start());
}

TEST(JsonlParse, RoundTripsTheGoldenEventRendering) {
  obs::Event e;
  e.type = obs::EventType::FrameDelivered;
  e.t = 456;
  e.robot = 1;
  e.peer = 0;
  e.aux = 1;
  e.value = 2;
  e.label = "inbox";
  const std::string line = obs::JsonlEventSink::to_json(e);

  obs::EventLog log;
  const auto parsed = log.parse_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, e.type);
  EXPECT_EQ(parsed->t, e.t);
  EXPECT_EQ(parsed->robot, e.robot);
  EXPECT_EQ(parsed->peer, e.peer);
  EXPECT_EQ(parsed->aux, e.aux);
  EXPECT_DOUBLE_EQ(parsed->value, e.value);
  EXPECT_STREQ(parsed->label, "inbox");
  // The reparsed event renders back to the identical line.
  EXPECT_EQ(obs::JsonlEventSink::to_json(*parsed), line);

  EXPECT_FALSE(log.parse_line("not json").has_value());
  EXPECT_FALSE(log.parse_line("{\"type\":\"flight_recorder\"}").has_value());
}

}  // namespace
}  // namespace stig
