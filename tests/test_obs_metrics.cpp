// MetricsRegistry tests: histogram bucket boundaries, counter overflow
// wrap-around, histogram merge/percentile edge cases, registry
// name-collision rules, JSON export shape, and the metric-key gating
// classifier.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>

#include "obs/metric_keys.hpp"
#include "obs/metrics.hpp"

namespace stig::obs {
namespace {

TEST(Counter, StartsAtZeroAndAdds) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, WrapsModulo2To64OnOverflow) {
  Counter c;
  c.add(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(c.value(), std::numeric_limits<std::uint64_t>::max());
  c.add(1);  // Wraps, never saturates or throws.
  EXPECT_EQ(c.value(), 0u);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(LogHistogram, BucketBoundaries) {
  // min_value 1.0, 6 buckets: [0,1) [1,2) [2,4) [4,8) [8,16) [16,inf).
  LogHistogram h(1.0, 6);
  EXPECT_EQ(h.bucket_count(), 6u);

  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(0.999), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 1u);   // Lower edge is inclusive.
  EXPECT_EQ(h.bucket_index(1.999), 1u);
  EXPECT_EQ(h.bucket_index(2.0), 2u);
  EXPECT_EQ(h.bucket_index(3.999), 2u);
  EXPECT_EQ(h.bucket_index(4.0), 3u);
  EXPECT_EQ(h.bucket_index(8.0), 4u);
  EXPECT_EQ(h.bucket_index(15.999), 4u);
  EXPECT_EQ(h.bucket_index(16.0), 5u);  // Overflow bucket.
  EXPECT_EQ(h.bucket_index(1e12), 5u);

  EXPECT_EQ(h.bucket_lower(0), 0.0);
  EXPECT_EQ(h.bucket_lower(1), 1.0);
  EXPECT_EQ(h.bucket_lower(2), 2.0);
  EXPECT_EQ(h.bucket_lower(5), 16.0);
}

TEST(LogHistogram, NonUnitMinValueScalesEdges) {
  LogHistogram h(16.0, 5);  // [0,16) [16,32) [32,64) [64,128) [128,inf).
  EXPECT_EQ(h.bucket_index(15.9), 0u);
  EXPECT_EQ(h.bucket_index(16.0), 1u);
  EXPECT_EQ(h.bucket_index(33.0), 2u);
  EXPECT_EQ(h.bucket_index(127.0), 3u);
  EXPECT_EQ(h.bucket_index(128.0), 4u);
  EXPECT_EQ(h.bucket_lower(4), 128.0);
}

TEST(LogHistogram, RecordUpdatesSummaryStats) {
  LogHistogram h(1.0, 8);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  h.record(2.0);
  h.record(6.0);
  h.record(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 9.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 6.0);
  EXPECT_EQ(h.bucket_count_at(h.bucket_index(2.0)), 1u);
}

TEST(LogHistogram, QuantileUpperBoundsTheSample) {
  LogHistogram h(1.0, 10);
  for (int i = 0; i < 99; ++i) h.record(1.5);  // Bucket [1,2).
  h.record(100.0);                             // Bucket [64,128).
  EXPECT_LE(h.quantile_upper(0.5), 2.0);
  EXPECT_GE(h.quantile_upper(0.995), 100.0);
}

TEST(LogHistogram, EmptyHistogramQuantilesAndStats) {
  LogHistogram h(1.0, 8);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_upper(0.0), 0.0);
  EXPECT_EQ(h.quantile_upper(0.5), 0.0);
  EXPECT_EQ(h.quantile_upper(1.0), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, SingleBucketOccupiedQuantiles) {
  LogHistogram h(1.0, 8);
  for (int i = 0; i < 10; ++i) h.record(2.5);  // All in [2,4).
  // Every quantile lands in the one occupied bucket; its upper bound is
  // capped by the observed maximum.
  EXPECT_DOUBLE_EQ(h.quantile_upper(0.01), 2.5);
  EXPECT_DOUBLE_EQ(h.quantile_upper(0.5), 2.5);
  EXPECT_DOUBLE_EQ(h.quantile_upper(1.0), 2.5);
}

TEST(LogHistogram, OverflowBucketQuantileReportsObservedMax) {
  LogHistogram h(1.0, 4);  // [0,1) [1,2) [2,4) [4,inf).
  h.record(1e9);           // Overflow bucket has no finite upper edge.
  h.record(2e9);
  EXPECT_DOUBLE_EQ(h.quantile_upper(0.5), 2e9);
  EXPECT_DOUBLE_EQ(h.quantile_upper(1.0), 2e9);
}

TEST(LogHistogram, MergeFromEmptyIsIdentity) {
  LogHistogram a(1.0, 8);
  const LogHistogram b(1.0, 8);
  a.record(3.0);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(LogHistogram, MergeIntoEmptyAdoptsMinMax) {
  LogHistogram a(1.0, 8);
  LogHistogram b(1.0, 8);
  b.record(2.0);
  b.record(9.0);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 11.0);
}

TEST(LogHistogram, MergeAccumulatesBucketsAndExtremes) {
  LogHistogram a(1.0, 8);
  LogHistogram b(1.0, 8);
  a.record(1.5);
  b.record(1.7);
  b.record(40.0);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket_count_at(a.bucket_index(1.5)), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 1.5);
  EXPECT_DOUBLE_EQ(a.max(), 40.0);
}

TEST(LogHistogram, MergeSelfIsIdentity) {
  LogHistogram a(1.0, 8);
  a.record(5.0);
  a.merge_from(a);
  EXPECT_EQ(a.count(), 1u);
}

TEST(LogHistogram, MergeLayoutMismatchThrows) {
  LogHistogram a(1.0, 8);
  const LogHistogram diff_buckets(1.0, 9);
  const LogHistogram diff_min(2.0, 8);
  EXPECT_THROW(a.merge_from(diff_buckets), std::invalid_argument);
  EXPECT_THROW(a.merge_from(diff_min), std::invalid_argument);
}

TEST(MetricKeys, InformationalMarkersAreRecognized) {
  // The documented convention: "wall", "cycles", "_per_sec", "_pct",
  // "_ns" — anywhere in the key — mean machine-speed, never gated.
  EXPECT_TRUE(is_informational_key("wall_seconds"));
  EXPECT_TRUE(is_informational_key("engine.step_wall_ns"));
  EXPECT_TRUE(is_informational_key("prof.engine.step.self_cycles"));
  EXPECT_TRUE(is_informational_key("cycles_per_instant"));
  EXPECT_TRUE(is_informational_key("bits_per_sec"));
  EXPECT_TRUE(is_informational_key("overhead_pct"));
  EXPECT_TRUE(is_informational_key("run_ns"));
  EXPECT_EQ(metric_key_class("total_ns"), MetricKeyClass::informational);
}

TEST(MetricKeys, DeterministicKeysGate) {
  EXPECT_FALSE(is_informational_key("allocs_per_instant"));
  EXPECT_FALSE(is_informational_key("bytes_per_instant"));
  EXPECT_FALSE(is_informational_key("events_per_instant"));
  EXPECT_FALSE(is_informational_key("peak_bytes"));
  EXPECT_FALSE(is_informational_key("instants_per_bit"));
  EXPECT_FALSE(is_informational_key("prof.engine.observe.self_allocs"));
  EXPECT_FALSE(is_informational_key("quiescent"));
  EXPECT_EQ(metric_key_class("instants"), MetricKeyClass::gated);
  // "ns"/"pct" without the underscore prefix are not markers.
  EXPECT_FALSE(is_informational_key("instants"));
  EXPECT_FALSE(is_informational_key("naming"));
}

TEST(MetricsRegistry, CreateOnFirstUseReturnsStableInstrument) {
  MetricsRegistry r;
  Counter& a = r.counter("events.move");
  a.add(3);
  Counter& b = r.counter("events.move");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(r.size(), 1u);
}

TEST(MetricsRegistry, NameCollisionAcrossKindsThrows) {
  MetricsRegistry r;
  r.counter("x");
  EXPECT_THROW(r.gauge("x"), std::invalid_argument);
  EXPECT_THROW(r.histogram("x"), std::invalid_argument);
  r.histogram("h");
  EXPECT_THROW(r.counter("h"), std::invalid_argument);
  // Same kind is not a collision.
  EXPECT_NO_THROW(r.counter("x"));
  EXPECT_NO_THROW(r.histogram("h", 2.0, 12));  // Params ignored on lookup.
}

TEST(MetricsRegistry, WriteJsonIsSortedAndWellFormed) {
  MetricsRegistry r;
  r.counter("z.count").add(2);
  r.gauge("a.gauge").set(1.5);
  r.histogram("m.hist").record(3.0);
  std::ostringstream os;
  r.write_json(os);
  const std::string json = os.str();
  // Keys come out sorted: a.gauge < m.hist < z.count.
  EXPECT_LT(json.find("a.gauge"), json.find("m.hist"));
  EXPECT_LT(json.find("m.hist"), json.find("z.count"));
  EXPECT_NE(json.find("\"z.count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
}

}  // namespace
}  // namespace stig::obs
