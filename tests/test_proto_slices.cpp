// SlicedCore unit tests: granular construction from a snapshot, rank
// tables, association of observed configurations, signal classification.
#include <gtest/gtest.h>

#include "geom/angle.hpp"
#include "proto/slices.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace stig::proto {
namespace {

using geom::Vec2;

/// Builds a t0-style snapshot directly (identity frame, anonymous).
sim::Snapshot snapshot_of(std::vector<Vec2> pts, std::size_t self,
                          bool with_ids = false) {
  sim::Snapshot s;
  s.t = 0;
  s.self = self;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    sim::ObservedRobot r;
    r.position = pts[i];
    if (with_ids) r.id = static_cast<sim::VisibleId>(10 * (i + 1));
    s.robots.push_back(r);
  }
  return s;
}

TEST(SlicedCore, GranularRadiiAreHalfNearestNeighbor) {
  const std::vector<Vec2> pts{Vec2{0, 0}, Vec2{4, 0}, Vec2{0, 3}};
  SlicedCore core(snapshot_of(pts, 0), NamingMode::lexicographic, 3);
  EXPECT_NEAR(core.radius(0), 1.5, 1e-9);  // Nearest to (0,0) is (0,3).
  EXPECT_NEAR(core.radius(1), 2.0, 1e-9);  // Nearest to (4,0) is (0,0).
  EXPECT_NEAR(core.radius(2), 1.5, 1e-9);
  EXPECT_EQ(core.robot_count(), 3u);
  EXPECT_EQ(core.self_index(), 0u);
  EXPECT_EQ(core.diameter_count(), 3u);
}

TEST(SlicedCore, LexicographicRanksSharedByAll) {
  const std::vector<Vec2> pts{Vec2{5, 0}, Vec2{-1, 2}, Vec2{3, -4}};
  SlicedCore core(snapshot_of(pts, 1), NamingMode::lexicographic, 3);
  // Sorted lex: (-1,2) < (3,-4) < (5,0).
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(core.rank(i, 1), 0u);
    EXPECT_EQ(core.rank(i, 2), 1u);
    EXPECT_EQ(core.rank(i, 0), 2u);
  }
  EXPECT_EQ(core.robot_with_rank(0, 0), 1u);
  EXPECT_EQ(core.robot_with_rank(0, 2), 0u);
}

TEST(SlicedCore, IdRanksRequireIds) {
  const std::vector<Vec2> pts{Vec2{0, 0}, Vec2{4, 0}};
  EXPECT_THROW(SlicedCore(snapshot_of(pts, 0), NamingMode::by_ids, 2),
               std::invalid_argument);
  SlicedCore core(snapshot_of(pts, 0, /*with_ids=*/true),
                  NamingMode::by_ids, 2);
  EXPECT_EQ(core.rank(0, 0), 0u);  // id 10 < id 20.
  EXPECT_EQ(core.rank(0, 1), 1u);
}

TEST(SlicedCore, RelativeNamingDiffersPerRobot) {
  // An asymmetric configuration: relative rank tables are per-robot.
  const std::vector<Vec2> pts{Vec2{5, 0}, Vec2{-5, 0}, Vec2{0, 4},
                              Vec2{1, 1}};
  SlicedCore core(snapshot_of(pts, 0), NamingMode::relative, 5);
  // Each row is a permutation and all rows are computable by anyone.
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<bool> seen(4, false);
    for (std::size_t j = 0; j < 4; ++j) {
      const std::size_t r = core.rank(i, j);
      ASSERT_LT(r, 4u);
      EXPECT_FALSE(seen[r]);
      seen[r] = true;
      EXPECT_EQ(core.robot_with_rank(i, r), j);
    }
  }
}

TEST(SlicedCore, AssociateRecoverPositionsUnderDisplacement) {
  const std::vector<Vec2> pts{Vec2{0, 0}, Vec2{6, 0}, Vec2{0, 8}};
  SlicedCore core(snapshot_of(pts, 0), NamingMode::lexicographic, 3);
  // Robots displaced within their granulars; snapshot arrives re-sorted
  // (anonymous ordering is by position).
  std::vector<Vec2> moved{Vec2{0.5, 0.3}, Vec2{5.2, -0.4}, Vec2{-0.7, 7.6}};
  sim::Snapshot snap = snapshot_of(moved, 0);
  std::sort(snap.robots.begin(), snap.robots.end(),
            [](const auto& a, const auto& b) {
              return a.position < b.position;
            });
  const auto pos = core.associate(snap);
  EXPECT_TRUE(geom::nearly_equal(pos[0], moved[0]));
  EXPECT_TRUE(geom::nearly_equal(pos[1], moved[1]));
  EXPECT_TRUE(geom::nearly_equal(pos[2], moved[2]));
}

TEST(SlicedCore, ClassifyRoundTripsOwnSignals) {
  const std::vector<Vec2> pts{Vec2{0, 0}, Vec2{6, 0}, Vec2{0, 8},
                              Vec2{-7, -2}};
  for (std::size_t self = 0; self < pts.size(); ++self) {
    SlicedCore core(snapshot_of(pts, self), NamingMode::relative, 5);
    for (std::size_t d = 0; d < 5; ++d) {
      for (const auto side :
           {geom::DiameterSide::positive, geom::DiameterSide::negative}) {
        const Signal s{d, side};
        const Vec2 p = core.signal_point(s, core.radius(self) * 0.4);
        const auto fix = core.classify(self, p);
        ASSERT_TRUE(fix.has_value());
        EXPECT_EQ(*fix, s) << "self=" << self << " d=" << d;
      }
    }
    // At (or indistinguishably near) the center: no signal.
    EXPECT_FALSE(core.classify(self, core.center(self)).has_value());
  }
}

TEST(SlicedCore, ClassifyUsesPerRobotReference) {
  // With relative naming each robot's diameter 0 points along its own
  // horizon line, so the same global displacement classifies differently
  // per sender.
  const std::vector<Vec2> pts{Vec2{5, 0}, Vec2{-5, 0}, Vec2{0, 4}};
  SlicedCore core(snapshot_of(pts, 0), NamingMode::relative, 4);
  // Robot 0's horizon is +x, robot 1's is -x.
  const auto fix0 = core.classify(0, pts[0] + Vec2{0.5, 0});
  const auto fix1 = core.classify(1, pts[1] + Vec2{0.5, 0});
  ASSERT_TRUE(fix0 && fix1);
  EXPECT_EQ(fix0->diameter, 0u);
  EXPECT_EQ(fix0->side, geom::DiameterSide::positive);
  EXPECT_EQ(fix1->diameter, 0u);
  EXPECT_EQ(fix1->side, geom::DiameterSide::negative);
}

TEST(SlicedCore, RejectsOffAxisNoise) {
  const std::vector<Vec2> pts{Vec2{0, 0}, Vec2{6, 0}};
  SlicedCore core(snapshot_of(pts, 0), NamingMode::lexicographic, 2);
  // Halfway between two diameters (45 degrees off with 2 diameters means
  // exactly on the boundary of the slices) -> angular error near the
  // maximum, above the quarter-slice acceptance threshold.
  const Vec2 diag =
      (core.granular(0).direction(0, geom::DiameterSide::positive) +
       core.granular(0).direction(1, geom::DiameterSide::positive))
          .normalized();
  const auto fix = core.classify(0, core.center(0) + diag * 1.0);
  EXPECT_FALSE(fix.has_value());
}

}  // namespace
}  // namespace stig::proto
