// Scheduler tests: the SSM contract (non-empty activation sets), the
// fairness bound, determinism under seeds, the adversarial pattern, and
// schedule replay (including logs that end before quiescence).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "core/chat_network.hpp"
#include "sim/schedule_log.hpp"
#include "sim/scheduler.hpp"

namespace stig::sim {
namespace {

std::size_t count_active(const ActivationSet& a) {
  return static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
}

TEST(SynchronousScheduler, ActivatesEveryone) {
  SynchronousScheduler s;
  for (Time t = 0; t < 10; ++t) {
    const ActivationSet a = s.activate(t, 7);
    EXPECT_EQ(count_active(a), 7u);
  }
}

TEST(BernoulliScheduler, NeverEmpty) {
  BernoulliScheduler s(0.01, 3, 1000);
  for (Time t = 0; t < 2000; ++t) {
    EXPECT_GE(count_active(s.activate(t, 5)), 1u);
  }
}

TEST(BernoulliScheduler, RespectsFairnessBound) {
  const std::size_t bound = 16;
  BernoulliScheduler s(0.05, 11, bound);
  const std::size_t n = 6;
  std::vector<std::size_t> streak(n, 0);
  for (Time t = 0; t < 5000; ++t) {
    const ActivationSet a = s.activate(t, n);
    for (std::size_t i = 0; i < n; ++i) {
      streak[i] = a[i] ? 0 : streak[i] + 1;
      EXPECT_LT(streak[i], bound) << "robot " << i << " starved at " << t;
    }
  }
}

TEST(BernoulliScheduler, ActivationRateNearP) {
  const double p = 0.3;
  BernoulliScheduler s(p, 21, 1 << 20);  // Bound high enough not to bias.
  const std::size_t n = 10;
  std::uint64_t total = 0;
  const Time steps = 20000;
  for (Time t = 0; t < steps; ++t) total += count_active(s.activate(t, n));
  const double rate = static_cast<double>(total) /
                      static_cast<double>(steps * n);
  EXPECT_NEAR(rate, p, 0.02);
}

TEST(BernoulliScheduler, DeterministicUnderSeed) {
  BernoulliScheduler s1(0.4, 99, 32);
  BernoulliScheduler s2(0.4, 99, 32);
  for (Time t = 0; t < 200; ++t) {
    EXPECT_EQ(s1.activate(t, 8), s2.activate(t, 8));
  }
}

TEST(CentralizedScheduler, ExactlyOneRoundRobin) {
  CentralizedScheduler s;
  for (Time t = 0; t < 30; ++t) {
    const ActivationSet a = s.activate(t, 5);
    EXPECT_EQ(count_active(a), 1u);
    EXPECT_TRUE(a[t % 5]);
  }
}

TEST(KSubsetScheduler, ExactlyKActive) {
  KSubsetScheduler s(3, 7, 1 << 20);
  for (Time t = 0; t < 500; ++t) {
    EXPECT_EQ(count_active(s.activate(t, 9)), 3u);
  }
}

TEST(KSubsetScheduler, KLargerThanNActivatesAll) {
  KSubsetScheduler s(10, 7, 64);
  EXPECT_EQ(count_active(s.activate(0, 4)), 4u);
}

TEST(KSubsetScheduler, RespectsFairnessBound) {
  const std::size_t bound = 8;
  KSubsetScheduler s(1, 5, bound);
  const std::size_t n = 4;
  std::vector<std::size_t> streak(n, 0);
  for (Time t = 0; t < 3000; ++t) {
    const ActivationSet a = s.activate(t, n);
    for (std::size_t i = 0; i < n; ++i) {
      streak[i] = a[i] ? 0 : streak[i] + 1;
      EXPECT_LT(streak[i], bound);
    }
  }
}

TEST(AdversarialScheduler, StarvesUpToBoundThenRotates) {
  const std::size_t bound = 10;
  AdversarialScheduler s(bound);
  const std::size_t n = 3;
  std::vector<std::size_t> streak(n, 0);
  std::vector<std::size_t> max_streak(n, 0);
  for (Time t = 0; t < 1000; ++t) {
    const ActivationSet a = s.activate(t, n);
    EXPECT_GE(count_active(a), n - 1);
    for (std::size_t i = 0; i < n; ++i) {
      streak[i] = a[i] ? 0 : streak[i] + 1;
      max_streak[i] = std::max(max_streak[i], streak[i]);
      EXPECT_LT(streak[i], bound);
    }
  }
  // The adversary actually pushes each robot to the edge of the bound.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(max_streak[i], bound - 2) << "robot " << i;
  }
}

TEST(SchedulerFairness, NoRobotInactivePastBoundAcross10kFuzzedInstants) {
  // Property behind Lemma 4.4's fairness premise: under every randomized
  // and adversarial scheduler, for every bound B — including the
  // degenerate B = 1, which forbids any inactivity at all — no robot is
  // ever inactive for B consecutive instants. The pre-fix
  // AdversarialScheduler starved its freshly rotated victim regardless of
  // the bound, so at B = 1 a robot sat out an instant every rotation.
  const Time kInstants = 10'000;
  for (const std::size_t bound : {1u, 2u, 3u, 64u}) {
    for (const std::size_t n : {1u, 2u, 5u}) {
      std::vector<std::unique_ptr<Scheduler>> schedulers;
      schedulers.push_back(
          std::make_unique<BernoulliScheduler>(0.05, 7, bound));
      schedulers.push_back(
          std::make_unique<BernoulliScheduler>(0.9, 11, bound));
      schedulers.push_back(std::make_unique<KSubsetScheduler>(1, 13, bound));
      schedulers.push_back(std::make_unique<KSubsetScheduler>(2, 17, bound));
      schedulers.push_back(std::make_unique<AdversarialScheduler>(bound));
      for (std::size_t s = 0; s < schedulers.size(); ++s) {
        std::vector<std::size_t> streak(n, 0);
        for (Time t = 0; t < kInstants; ++t) {
          const ActivationSet a = schedulers[s]->activate(t, n);
          ASSERT_GE(count_active(a), 1u)
              << "scheduler " << s << " bound " << bound << " t " << t;
          for (std::size_t i = 0; i < n; ++i) {
            streak[i] = a[i] ? 0 : streak[i] + 1;
            ASSERT_LT(streak[i], bound)
                << "scheduler " << s << " starved robot " << i << "/" << n
                << " past bound " << bound << " at t " << t;
          }
        }
      }
    }
  }
}

TEST(AdversarialScheduler, SingleRobotAlwaysActive) {
  AdversarialScheduler s(4);
  for (Time t = 0; t < 20; ++t) {
    EXPECT_EQ(count_active(s.activate(t, 1)), 1u);
  }
}

TEST(ReplayScheduler, TruncatedLogFallsBackToAllActive) {
  // A log that ends before the run does: every instant past the end must
  // come back all-active (the fallback the fuzz replay tail relies on),
  // including when the log held sets for a different swarm size.
  ScheduleLog log;
  log.sets = {ActivationSet{true, false, false},
              ActivationSet{false, true, false}};
  ReplayScheduler s(&log);
  EXPECT_EQ(s.activate(0, 3), log.sets[0]);
  EXPECT_EQ(s.activate(1, 3), log.sets[1]);
  for (Time t = 2; t < 10; ++t) {
    EXPECT_EQ(s.activate(t, 3), ActivationSet(3, true));
  }

  // Size mismatch: the recorded set is unusable, the scheduler must still
  // return a valid all-active set and keep consuming the log.
  ReplayScheduler wrong_n(&log);
  EXPECT_EQ(wrong_n.activate(0, 5), ActivationSet(5, true));
  EXPECT_EQ(wrong_n.activate(1, 5), ActivationSet(5, true));
}

TEST(ReplayScheduler, TruncatedScheduleStillReachesQuiescence) {
  // The fuzz harness's replay claim survives truncation: replaying only a
  // prefix of a recorded schedule still drives the network to quiescence
  // and the same delivery, because the tail falls back to all-active.
  const std::vector<geom::Vec2> pts = {{0.0, 0.0}, {8.0, 0.0}};
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::asynchronous;
  opt.scheduler = core::SchedulerKind::bernoulli;
  opt.seed = 77;
  const std::vector<std::uint8_t> payload{0x42};

  ScheduleLog full;
  opt.record_schedule = &full;
  core::ChatNetwork a(pts, opt);
  a.send(0, 1, payload);
  ASSERT_TRUE(a.run_until_quiescent(400'000));
  a.run(512);
  ASSERT_EQ(a.received(1).size(), 1u);
  ASSERT_GT(full.instants(), 4u);

  ScheduleLog truncated = full;
  truncated.sets.resize(full.instants() / 2);  // Ends before quiescence.
  opt.record_schedule = nullptr;
  opt.replay_schedule = &truncated;
  core::ChatNetwork b(pts, opt);
  b.send(0, 1, payload);
  ASSERT_TRUE(b.run_until_quiescent(400'000));
  b.run(512);
  ASSERT_EQ(b.received(1).size(), 1u);
  EXPECT_EQ(b.received(1)[0].payload, payload);
}

}  // namespace
}  // namespace stig::sim
