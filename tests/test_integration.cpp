// Cross-module integration and property tests: an empirical check of
// Lemma 4.1, the Figure-3 symmetric configuration end-to-end, determinism
// under seeds, and a randomized soak across the protocol lattice.
#include <gtest/gtest.h>

#include "core/chat_network.hpp"
#include "encode/bits.hpp"
#include "geom/angle.hpp"
#include "sim/engine.hpp"
#include "sim/observation.hpp"
#include "sim/rng.hpp"

namespace stig {
namespace {

using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::SchedulerKind;
using core::Synchrony;

// ---------------------------------------------------------------------------
// Lemma 4.1, empirically: r moves in one direction every activation; if r
// observes r' change twice, r' observed r change at least once. We
// instrument two robots, run them under every scheduler, and check the
// implication at every instant.
class LemmaRobot final : public sim::Robot {
 public:
  LemmaRobot(geom::Vec2 dir, double step) : dir_(dir), step_(step) {}

  void initialize(const sim::Snapshot&) override {}

  geom::Vec2 on_activate(const sim::Snapshot& snap) override {
    const geom::Vec2 peer = snap.robots[1 - snap.self].position;
    tracker_.observe(0, peer);
    return snap.self_robot().position + dir_ * step_;
  }

  [[nodiscard]] std::uint64_t peer_changes() const {
    return tracker_.changes(0);
  }

 private:
  geom::Vec2 dir_;
  double step_;
  sim::ChangeTracker tracker_{1, 1e-9};
};

class Lemma41Test : public ::testing::TestWithParam<int> {};

TEST_P(Lemma41Test, ObservedTwiceImpliesPeerObservedOnce) {
  std::unique_ptr<sim::Scheduler> sched;
  switch (GetParam()) {
    case 0:
      sched = std::make_unique<sim::BernoulliScheduler>(0.3, 5, 32);
      break;
    case 1:
      sched = std::make_unique<sim::CentralizedScheduler>();
      break;
    case 2:
      sched = std::make_unique<sim::AdversarialScheduler>(16);
      break;
    default:
      sched = std::make_unique<sim::KSubsetScheduler>(1, 7, 32);
      break;
  }
  std::vector<sim::RobotSpec> specs{{.position = geom::Vec2{0, 0}},
                                    {.position = geom::Vec2{10, 0}}};
  std::vector<std::unique_ptr<sim::Robot>> programs;
  programs.push_back(
      std::make_unique<LemmaRobot>(geom::Vec2{0, 1}, 0.25));
  programs.push_back(
      std::make_unique<LemmaRobot>(geom::Vec2{0, -1}, 0.1));
  auto* r0 = static_cast<LemmaRobot*>(programs[0].get());
  auto* r1 = static_cast<LemmaRobot*>(programs[1].get());
  sim::Engine engine(specs, std::move(programs), std::move(sched));
  for (int t = 0; t < 3000; ++t) {
    engine.step();
    // The lemma, both directions, at every instant.
    if (r0->peer_changes() >= 2) {
      EXPECT_GE(r1->peer_changes(), 1u) << t;
    }
    if (r1->peer_changes() >= 2) {
      EXPECT_GE(r0->peer_changes(), 1u) << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, Lemma41Test, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// Figure 3: six robots in a rotationally symmetric configuration. No common
// naming exists, yet the relative-naming protocol delivers between every
// pair — in both the synchronous and asynchronous settings.
std::vector<geom::Vec2> figure3_configuration() {
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 6; ++i) {
    const double a = geom::kTwoPi * i / 6.0;
    pts.push_back(geom::Vec2{8 * std::cos(a), 8 * std::sin(a)});
  }
  return pts;
}

TEST(SymmetricConfiguration, SyncRelativeNamingDelivers) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;  // Chirality only.
  ChatNetwork net(figure3_configuration(), opt);
  for (std::size_t i = 0; i < 6; ++i) {
    const std::vector<std::uint8_t> one{static_cast<std::uint8_t>(i)};
    net.send(i, (i + 3) % 6, one);
  }
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(4);
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t to = (i + 3) % 6;
    ASSERT_EQ(net.received(to).size(), 1u);
    EXPECT_EQ(net.received(to)[0].payload[0], static_cast<std::uint8_t>(i));
    EXPECT_EQ(net.received(to)[0].from, i);
  }
}

TEST(SymmetricConfiguration, AsyncRelativeNamingDelivers) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.seed = 3;
  ChatNetwork net(figure3_configuration(), opt);
  net.send(0, 3, encode::bytes_of("sym"));
  ASSERT_TRUE(net.run_until_quiescent(3'000'000));
  net.run(512);
  ASSERT_EQ(net.received(3).size(), 1u);
  EXPECT_EQ(net.received(3)[0].payload, encode::bytes_of("sym"));
}

// ---------------------------------------------------------------------------
// Determinism: the whole stack (scheduler, frames, protocols) is seeded, so
// two identical runs give identical traces.
TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  const auto run_once = [] {
    ChatNetworkOptions opt;
    opt.synchrony = Synchrony::asynchronous;
    opt.seed = 42;
    ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{5, 1}, geom::Vec2{-3, 4}},
                    opt);
    net.send(0, 2, encode::bytes_of("det"));
    net.run(5000);
    // positions() is a view into the engine's epoch ring; copy it out
    // before the network (and the ring) is destroyed.
    const auto view = net.engine().positions();
    return std::vector<geom::Vec2>(view.begin(), view.end());
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << i;  // Bit-for-bit equality.
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto run_once = [](std::uint64_t seed) {
    ChatNetworkOptions opt;
    opt.synchrony = Synchrony::asynchronous;
    opt.seed = seed;
    ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{5, 1}}, opt);
    net.run(100);
    const auto view = net.engine().positions();
    return std::vector<geom::Vec2>(view.begin(), view.end());
  };
  EXPECT_NE(run_once(1)[0], run_once(2)[0]);
}

// ---------------------------------------------------------------------------
// Randomized soak across the whole lattice: pick random capabilities,
// synchrony, geometry and payloads; everything must deliver.
class LatticeSoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatticeSoakTest, RandomScenarioDelivers) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed * 7919);
  ChatNetworkOptions opt;
  const bool synchronous = rng.flip(0.5);
  opt.synchrony =
      synchronous ? Synchrony::synchronous : Synchrony::asynchronous;
  opt.caps.visible_ids = rng.flip(0.3);
  opt.caps.sense_of_direction = opt.caps.visible_ids || rng.flip(0.5);
  opt.mirrored_frames = rng.flip(0.3);
  opt.seed = seed;
  opt.activation_probability = rng.uniform(0.3, 0.9);
  // Async runs are expensive; keep swarms smaller there.
  const std::size_t n = synchronous ? 2 + rng.uniform_int(0, 8)
                                    : 2 + rng.uniform_int(0, 3);
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-25, 25), rng.uniform(-25, 25)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < 2.0) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  ChatNetwork net(pts, opt);
  const std::size_t from = rng.uniform_int(0, n - 1);
  std::size_t to;
  do {
    to = rng.uniform_int(0, n - 1);
  } while (to == from);
  std::vector<std::uint8_t> msg(1 + rng.uniform_int(0, 6));
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  net.send(from, to, msg);
  ASSERT_TRUE(net.run_until_quiescent(4'000'000))
      << "seed=" << seed << " n=" << n << " sync=" << synchronous;
  net.run(synchronous ? 4 : 512);
  ASSERT_EQ(net.received(to).size(), 1u)
      << "seed=" << seed << " n=" << n << " sync=" << synchronous;
  EXPECT_EQ(net.received(to)[0].payload, msg);
  EXPECT_EQ(net.received(to)[0].from, from);
  EXPECT_GT(net.engine().trace().min_separation(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeSoakTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace stig
