// JSONL trace export/import tests: round trips, precision, malformed input.
#include <gtest/gtest.h>

#include <sstream>

#include "core/chat_network.hpp"
#include "encode/bits.hpp"
#include <fstream>

#include "sim/jsonl.hpp"

namespace stig::sim {
namespace {

Trace recorded_trace() {
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  opt.record_positions = true;
  core::ChatNetwork net(
      {geom::Vec2{0.125, -3.5}, geom::Vec2{4.75, 1.0}, geom::Vec2{-2, 6}},
      opt);
  net.send(0, 2, encode::bytes_of("jsonl"));
  net.run_until_quiescent(100'000);
  return net.engine().trace();
}

TEST(Jsonl, RoundTripExactDoubles) {
  const Trace trace = recorded_trace();
  std::stringstream ss;
  ASSERT_TRUE(write_trace_jsonl(ss, trace));
  const auto parsed = read_trace_jsonl(ss);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->robots, 3u);
  ASSERT_EQ(parsed->configs.size(), trace.positions().size());
  for (std::size_t t = 0; t < parsed->configs.size(); ++t) {
    for (std::size_t i = 0; i < 3; ++i) {
      // setprecision(17) makes doubles round-trip bit-exactly.
      EXPECT_EQ(parsed->configs[t][i], trace.positions()[t][i])
          << "t=" << t << " i=" << i;
    }
  }
}

TEST(Jsonl, HeaderDescribesContent) {
  const Trace trace = recorded_trace();
  std::stringstream ss;
  ASSERT_TRUE(write_trace_jsonl(ss, trace));
  std::string header;
  std::getline(ss, header);
  EXPECT_NE(header.find("\"type\":\"header\""), std::string::npos);
  EXPECT_NE(header.find("\"robots\":3"), std::string::npos);
}

TEST(Jsonl, UnrecordedTraceRefused) {
  Trace trace(3, /*record_positions=*/false);
  std::stringstream ss;
  EXPECT_FALSE(write_trace_jsonl(ss, trace));
}

TEST(Jsonl, MalformedInputsRejected) {
  const auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return read_trace_jsonl(ss);
  };
  EXPECT_FALSE(parse("").has_value());
  EXPECT_FALSE(parse("{\"type\":\"config\"}\n").has_value());
  EXPECT_FALSE(
      parse("{\"type\":\"header\",\"robots\":2,\"instants\":1}\n"
            "{\"type\":\"config\",\"t\":0,\"p\":[[1,2]]}\n")
          .has_value());  // Ragged row: 1 point, 2 robots.
  EXPECT_FALSE(
      parse("{\"type\":\"header\",\"robots\":1,\"instants\":2}\n"
            "{\"type\":\"config\",\"t\":0,\"p\":[[1,2]]}\n")
          .has_value());  // Missing instant.
  EXPECT_TRUE(
      parse("{\"type\":\"header\",\"robots\":1,\"instants\":1}\n"
            "{\"type\":\"config\",\"t\":0,\"p\":[[1,2]]}\n")
          .has_value());
}

TEST(Jsonl, FileRoundTrip) {
  const Trace trace = recorded_trace();
  const std::string path = ::testing::TempDir() + "stig_trace_test.jsonl";
  ASSERT_TRUE(write_trace_jsonl(path, trace));
  std::ifstream in(path);
  const auto parsed = read_trace_jsonl(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->configs.size(), trace.positions().size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stig::sim
