// Engine tests: the SSM step semantics (two-phase observation, sigma clamp),
// snapshot construction for identified/anonymous systems, collision
// detection, trace counters, and construction validation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "geom/angle.hpp"
#include "sim/engine.hpp"
#include "sim/observation.hpp"

namespace stig::sim {
namespace {

using geom::Vec2;

/// A robot that walks a fixed local direction every activation.
class Walker final : public Robot {
 public:
  explicit Walker(Vec2 dir) : dir_(dir) {}
  void initialize(const Snapshot& snap) override { t0_ = snap; }
  Vec2 on_activate(const Snapshot& snap) override {
    last_ = snap;
    ++activations_;
    return snap.self_robot().position + dir_;
  }
  Snapshot t0_;
  Snapshot last_;
  Vec2 dir_;
  int activations_ = 0;
};

/// A robot that never moves.
class Sitter final : public Robot {
 public:
  void initialize(const Snapshot&) override {}
  Vec2 on_activate(const Snapshot& snap) override {
    return snap.self_robot().position;
  }
};

std::vector<std::unique_ptr<Robot>> walkers(std::initializer_list<Vec2> dirs) {
  std::vector<std::unique_ptr<Robot>> v;
  for (const Vec2& d : dirs) v.push_back(std::make_unique<Walker>(d));
  return v;
}

TEST(Engine, InitializeGivesEveryRobotT0) {
  std::vector<RobotSpec> specs{{.position = Vec2{0, 0}},
                               {.position = Vec2{5, 0}}};
  auto programs = walkers({Vec2{0, 0.1}, Vec2{0, 0.1}});
  auto* w0 = static_cast<Walker*>(programs[0].get());
  auto* w1 = static_cast<Walker*>(programs[1].get());
  Engine e(specs, std::move(programs),
           std::make_unique<SynchronousScheduler>());
  EXPECT_EQ(w0->t0_.robots.size(), 2u);
  EXPECT_EQ(w1->t0_.robots.size(), 2u);
  // Anchored local frames: each sees itself at the origin at t0.
  EXPECT_TRUE(nearly_equal(w0->t0_.self_robot().position, Vec2{0, 0}));
  EXPECT_TRUE(nearly_equal(w1->t0_.self_robot().position, Vec2{0, 0}));
  // And the other 5 away.
  EXPECT_NEAR(geom::dist(w0->t0_.robots[0].position,
                         w0->t0_.robots[1].position),
              5.0, 1e-9);
}

TEST(Engine, SigmaClampsTravelPreservingDirection) {
  std::vector<RobotSpec> specs{{.position = Vec2{0, 0}, .sigma = 0.5},
                               {.position = Vec2{5, 0}, .sigma = 10.0}};
  Engine e(specs, walkers({Vec2{3, 4}, Vec2{3, 4}}),
           std::make_unique<SynchronousScheduler>());
  e.step();
  // Robot 0 wanted |(3,4)| = 5 but travels 0.5 in that direction.
  EXPECT_TRUE(nearly_equal(e.positions()[0], Vec2{0.3, 0.4}, 1e-9));
  // Robot 1 is unconstrained.
  EXPECT_TRUE(nearly_equal(e.positions()[1], Vec2{8, 4}, 1e-9));
}

TEST(Engine, TwoPhaseObservation) {
  // Both robots walk toward each other's *observed* position; with the
  // two-phase step they observe pre-move positions, so after one step they
  // meet exactly in the middle if sigma allows... use sigma to stop short
  // and verify the observation was the pre-move configuration.
  class Chaser final : public Robot {
   public:
    void initialize(const Snapshot&) override {}
    Vec2 on_activate(const Snapshot& snap) override {
      const Vec2 other = snap.robots[1 - snap.self].position;
      const Vec2 self = snap.self_robot().position;
      observed_gaps_.push_back(geom::dist(other, self));
      return self + (other - self) * 0.1;
    }
    std::vector<double> observed_gaps_;
  };
  std::vector<RobotSpec> specs{{.position = Vec2{0, 0}, .sigma = 100},
                               {.position = Vec2{10, 0}, .sigma = 100}};
  std::vector<std::unique_ptr<Robot>> programs;
  programs.push_back(std::make_unique<Chaser>());
  programs.push_back(std::make_unique<Chaser>());
  auto* c0 = static_cast<Chaser*>(programs[0].get());
  Engine e(specs, std::move(programs),
           std::make_unique<SynchronousScheduler>());
  e.step();
  e.step();
  // First observation: the peer at distance 10 (pre-move). Second: both
  // moved 1 toward each other -> distance 8. If robots saw same-instant
  // moves, the second gap would be 9 instead.
  ASSERT_EQ(c0->observed_gaps_.size(), 2u);
  EXPECT_NEAR(c0->observed_gaps_[0], 10.0, 1e-9);
  EXPECT_NEAR(c0->observed_gaps_[1], 8.0, 1e-9);
}

TEST(Engine, InactiveRobotsDoNotMoveOrObserve) {
  std::vector<RobotSpec> specs{{.position = Vec2{0, 0}},
                               {.position = Vec2{5, 0}}};
  auto programs = walkers({Vec2{0.1, 0}, Vec2{0.1, 0}});
  auto* w1 = static_cast<Walker*>(programs[1].get());
  // Centralized: robot 0 at t0, robot 1 at t1, ...
  Engine e(specs, std::move(programs),
           std::make_unique<CentralizedScheduler>());
  e.step();
  EXPECT_EQ(w1->activations_, 0);
  EXPECT_TRUE(nearly_equal(e.positions()[1], Vec2{5, 0}));
  e.step();
  EXPECT_EQ(w1->activations_, 1);
}

TEST(Engine, SnapshotAnonymousSortedAndUnidentified) {
  std::vector<RobotSpec> specs{{.position = Vec2{3, 0}},
                               {.position = Vec2{0, 0}},
                               {.position = Vec2{-4, 2}}};
  Engine e(specs, walkers({Vec2{0, 0}, Vec2{0, 0}, Vec2{0, 0}}),
           std::make_unique<SynchronousScheduler>());
  EXPECT_FALSE(e.identified());
  const Snapshot s = e.make_snapshot(1);
  ASSERT_EQ(s.robots.size(), 3u);
  for (std::size_t i = 0; i + 1 < s.robots.size(); ++i) {
    EXPECT_LT(s.robots[i].position, s.robots[i + 1].position);
    EXPECT_FALSE(s.robots[i].id.has_value());
  }
  EXPECT_TRUE(nearly_equal(s.robots[s.self].position, Vec2{0, 0}));
}

TEST(Engine, SnapshotIdentifiedSortedById) {
  std::vector<RobotSpec> specs{{.position = Vec2{3, 0}, .id = 30},
                               {.position = Vec2{0, 0}, .id = 10},
                               {.position = Vec2{-4, 2}, .id = 20}};
  Engine e(specs, walkers({Vec2{0, 0}, Vec2{0, 0}, Vec2{0, 0}}),
           std::make_unique<SynchronousScheduler>());
  EXPECT_TRUE(e.identified());
  const Snapshot s = e.make_snapshot(0);
  ASSERT_EQ(s.robots.size(), 3u);
  EXPECT_EQ(s.robots[0].id, 10u);
  EXPECT_EQ(s.robots[1].id, 20u);
  EXPECT_EQ(s.robots[2].id, 30u);
  EXPECT_EQ(s.self, 2u);  // id 30.
}

TEST(Engine, InitialObservationOrderMatchesSnapshot) {
  std::vector<RobotSpec> specs{
      {.position = Vec2{3, 0}, .frame_rotation = 1.0, .frame_unit = 2.0},
      {.position = Vec2{0, 0}, .frame_rotation = 2.0},
      {.position = Vec2{-4, 2}, .frame_rotation = 0.5}};
  Engine e(specs, walkers({Vec2{0, 0}, Vec2{0, 0}, Vec2{0, 0}}),
           std::make_unique<SynchronousScheduler>());
  for (RobotIndex i = 0; i < 3; ++i) {
    const auto order = e.initial_observation_order(i);
    const Snapshot s = e.make_snapshot(i);  // Still at t0 positions.
    for (std::size_t k = 0; k < order.size(); ++k) {
      EXPECT_TRUE(nearly_equal(
          s.robots[k].position,
          e.frame(i).to_local(specs[order[k]].position), 1e-9))
          << "observer " << i << " slot " << k;
    }
  }
}

TEST(Engine, CollisionDetected) {
  std::vector<RobotSpec> specs{{.position = Vec2{0, 0}, .sigma = 10},
                               {.position = Vec2{2, 0}, .sigma = 10}};
  // Robot 0 walks exactly onto robot 1's position; robot 1 stays.
  std::vector<std::unique_ptr<Robot>> programs;
  programs.push_back(std::make_unique<Walker>(Vec2{2, 0}));
  programs.push_back(std::make_unique<Sitter>());
  Engine e(specs, std::move(programs),
           std::make_unique<SynchronousScheduler>());
  EXPECT_THROW(e.step(), CollisionError);
}

TEST(Engine, RejectsCoincidentStart) {
  std::vector<RobotSpec> specs{{.position = Vec2{1, 1}},
                               {.position = Vec2{1, 1}}};
  EXPECT_THROW(Engine(specs, walkers({Vec2{0, 0}, Vec2{0, 0}}),
                      std::make_unique<SynchronousScheduler>()),
               std::invalid_argument);
}

TEST(Engine, RejectsMixedIdentification) {
  std::vector<RobotSpec> specs{{.position = Vec2{0, 0}, .id = 1},
                               {.position = Vec2{5, 0}}};
  EXPECT_THROW(Engine(specs, walkers({Vec2{0, 0}, Vec2{0, 0}}),
                      std::make_unique<SynchronousScheduler>()),
               std::invalid_argument);
}

TEST(Engine, RejectsBadSigmaAndUnit) {
  std::vector<RobotSpec> bad_sigma{{.position = Vec2{0, 0}, .sigma = 0.0},
                                   {.position = Vec2{5, 0}}};
  EXPECT_THROW(Engine(bad_sigma, walkers({Vec2{0, 0}, Vec2{0, 0}}),
                      std::make_unique<SynchronousScheduler>()),
               std::invalid_argument);
  std::vector<RobotSpec> bad_unit{
      {.position = Vec2{0, 0}, .frame_unit = -1.0},
      {.position = Vec2{5, 0}}};
  EXPECT_THROW(Engine(bad_unit, walkers({Vec2{0, 0}, Vec2{0, 0}}),
                      std::make_unique<SynchronousScheduler>()),
               std::invalid_argument);
}

TEST(Engine, TraceCountsMovesAndDistance) {
  std::vector<RobotSpec> specs{{.position = Vec2{0, 0}, .sigma = 10},
                               {.position = Vec2{5, 0}, .sigma = 10}};
  std::vector<std::unique_ptr<Robot>> programs;
  programs.push_back(std::make_unique<Walker>(Vec2{0, 1}));
  programs.push_back(std::make_unique<Sitter>());
  Engine e(specs, std::move(programs),
           std::make_unique<SynchronousScheduler>());
  e.run(10);
  EXPECT_EQ(e.trace().instants(), 10u);
  EXPECT_EQ(e.trace().stats(0).activations, 10u);
  EXPECT_EQ(e.trace().stats(0).moves, 10u);
  EXPECT_NEAR(e.trace().stats(0).distance, 10.0, 1e-9);
  EXPECT_EQ(e.trace().stats(1).moves, 0u);
  EXPECT_GT(e.trace().min_separation(), 4.9);
}

TEST(Engine, RunUntilPredicate) {
  std::vector<RobotSpec> specs{{.position = Vec2{0, 0}, .sigma = 10},
                               {.position = Vec2{5, 0}, .sigma = 10}};
  Engine e(specs, walkers({Vec2{0, 1}, Vec2{0, 1}}),
           std::make_unique<SynchronousScheduler>());
  EXPECT_TRUE(e.run_until([&] { return e.now() >= 7; }, 100));
  EXPECT_EQ(e.now(), 7u);
  EXPECT_FALSE(e.run_until([&] { return false; }, 5));
}

TEST(Engine, EpochRingServesLiveHistory) {
  std::vector<RobotSpec> specs{{.position = Vec2{0, 0}, .sigma = 10},
                               {.position = Vec2{5, 0}, .sigma = 10}};
  std::vector<std::unique_ptr<Robot>> programs;
  programs.push_back(std::make_unique<Walker>(Vec2{0, 1}));
  programs.push_back(std::make_unique<Sitter>());
  EngineOptions opt;
  opt.observation_delay = 1;  // Ring capacity delay + 2 = 3.
  Engine e(specs, std::move(programs),
           std::make_unique<SynchronousScheduler>(), opt);

  EXPECT_EQ(e.config_epoch(), 0u);
  EXPECT_TRUE(e.epoch_live(0));
  EXPECT_FALSE(e.epoch_live(1));  // The future is not live.

  // Record every configuration as the run publishes it, then check the
  // ring serves exactly the live window, bit-for-bit.
  std::vector<std::vector<Vec2>> history;
  history.emplace_back(e.positions().begin(), e.positions().end());
  for (Time s = 1; s <= 5; ++s) {
    e.step();
    history.emplace_back(e.positions().begin(), e.positions().end());
    EXPECT_EQ(e.config_epoch(), s);
    for (Time ep = 0; ep <= s; ++ep) {
      if (s - ep < 3) {
        ASSERT_TRUE(e.epoch_live(ep)) << "epoch " << ep << " at t=" << s;
        const auto cfg = e.config(ep);
        const std::vector<Vec2>& want = history[ep];
        ASSERT_EQ(cfg.size(), want.size());
        for (std::size_t i = 0; i < cfg.size(); ++i) {
          EXPECT_EQ(cfg[i].x, want[i].x) << "epoch " << ep << " robot " << i;
          EXPECT_EQ(cfg[i].y, want[i].y) << "epoch " << ep << " robot " << i;
        }
      } else {
        EXPECT_FALSE(e.epoch_live(ep)) << "epoch " << ep << " at t=" << s;
        EXPECT_THROW((void)e.config(ep), std::out_of_range);
      }
    }
  }
}

TEST(Engine, PositionsSpanAliasesCurrentEpoch) {
  std::vector<RobotSpec> specs{{.position = Vec2{0, 0}, .sigma = 10},
                               {.position = Vec2{5, 0}, .sigma = 10}};
  Engine e(specs, walkers({Vec2{1, 0}, Vec2{1, 0}}),
           std::make_unique<SynchronousScheduler>());
  // `positions()` is a view of the current epoch's slot, not a copy.
  EXPECT_EQ(e.positions().data(), e.config(e.config_epoch()).data());
  e.step();
  EXPECT_EQ(e.positions().data(), e.config(e.config_epoch()).data());
  // Stepping publishes a new epoch; the previous one stays readable and
  // unchanged while live (delay 0 -> capacity 2).
  const std::vector<Vec2> before(e.positions().begin(), e.positions().end());
  const Time prev = e.config_epoch();
  e.step();
  ASSERT_TRUE(e.epoch_live(prev));
  const auto old_cfg = e.config(prev);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(old_cfg[i].x, before[i].x);
    EXPECT_EQ(old_cfg[i].y, before[i].y);
  }
  EXPECT_FALSE(e.epoch_live(prev - 1));
}

TEST(ChangeTracker, CountsDistinctObservations) {
  ChangeTracker t(2, 1e-9);
  t.observe(0, Vec2{0, 0});
  EXPECT_EQ(t.changes(0), 0u);  // First observation is a baseline.
  t.observe(0, Vec2{0, 0});
  EXPECT_EQ(t.changes(0), 0u);
  t.observe(0, Vec2{1, 0});
  EXPECT_EQ(t.changes(0), 1u);
  t.observe(0, Vec2{1, 0});
  t.observe(0, Vec2{2, 0});
  EXPECT_EQ(t.changes(0), 2u);
  EXPECT_EQ(t.changes(1), 0u);
  EXPECT_TRUE(t.last(0).has_value());
  EXPECT_FALSE(t.last(1).has_value());
}

TEST(ChangeTracker, ToleranceSuppressesJitter) {
  ChangeTracker t(1, 0.1);
  t.observe(0, Vec2{0, 0});
  t.observe(0, Vec2{0.05, 0});
  EXPECT_EQ(t.changes(0), 0u);
  t.observe(0, Vec2{0.2, 0});
  EXPECT_EQ(t.changes(0), 1u);
}

TEST(AckBarrier, RequiresTwoChangesFromEveryPeer) {
  ChangeTracker t(3, 1e-9);
  for (std::size_t p = 0; p < 3; ++p) t.observe(p, Vec2{0, 0});
  AckBarrier b;
  b.arm(t, /*self_slot=*/1);  // Track peers 0 and 2.
  EXPECT_FALSE(b.satisfied(t));
  t.observe(0, Vec2{1, 0});
  t.observe(0, Vec2{2, 0});
  EXPECT_FALSE(b.satisfied(t));  // Peer 2 has not changed.
  t.observe(2, Vec2{1, 0});
  EXPECT_FALSE(b.satisfied(t));  // Only once.
  t.observe(2, Vec2{2, 0});
  EXPECT_TRUE(b.satisfied(t));
  // Self slot 1 never mattered.
  EXPECT_EQ(t.changes(1), 0u);
}

TEST(AckBarrier, RearmResetsBaselines) {
  ChangeTracker t(1, 1e-9);
  t.observe(0, Vec2{0, 0});
  t.observe(0, Vec2{1, 0});
  t.observe(0, Vec2{2, 0});
  AckBarrier b;
  b.arm(t, 1);
  EXPECT_FALSE(b.satisfied(t));  // Changes before arming do not count.
  t.observe(0, Vec2{3, 0});
  t.observe(0, Vec2{4, 0});
  EXPECT_TRUE(b.satisfied(t));
}

}  // namespace
}  // namespace stig::sim
