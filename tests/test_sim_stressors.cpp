// Engine-level unit tests for the model stressors: sensor quantization,
// observation delay (stale snapshots), limited visibility, teleport fault
// injection — each checked directly at the snapshot level, independently of
// any protocol.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace stig::sim {
namespace {

using geom::Vec2;

/// Records every snapshot it is given.
class Recorder final : public Robot {
 public:
  explicit Recorder(Vec2 step = Vec2{0, 0}) : step_(step) {}
  void initialize(const Snapshot& snap) override { history_.push_back(snap); }
  Vec2 on_activate(const Snapshot& snap) override {
    history_.push_back(snap);
    return snap.self_robot().position + step_;
  }
  std::vector<Snapshot> history_;
  Vec2 step_;
};

struct World {
  std::vector<Recorder*> robots;
  std::unique_ptr<Engine> engine;
};

World make_world(std::vector<Vec2> positions, EngineOptions opts,
                 std::vector<Vec2> steps = {}) {
  World w;
  std::vector<RobotSpec> specs;
  std::vector<std::unique_ptr<Robot>> programs;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    RobotSpec s;
    s.position = positions[i];
    s.sigma = 100.0;
    specs.push_back(s);
    auto r = std::make_unique<Recorder>(
        i < steps.size() ? steps[i] : Vec2{0, 0});
    w.robots.push_back(r.get());
    programs.push_back(std::move(r));
  }
  w.engine = std::make_unique<Engine>(
      std::move(specs), std::move(programs),
      std::make_unique<SynchronousScheduler>(), opts);
  return w;
}

// ---------------------------------------------------------------------------
// Quantization.

TEST(Quantum, OthersSnappedSelfExact) {
  EngineOptions opts;
  opts.observation_quantum = 0.5;
  // Positions deliberately off-grid.
  World w = make_world({Vec2{0.3, 0.3}, Vec2{5.2, 1.4}}, opts);
  const Snapshot& s0 = w.robots[0]->history_.front();
  // Self (anchored frame): exact origin regardless of the grid.
  EXPECT_TRUE(geom::nearly_equal(s0.self_robot().position, Vec2{0, 0}));
  // Peer: snapped in global coordinates (5.0, 1.5), then made local
  // (anchored at the *exact* own position 0.3, 0.3).
  const Vec2 peer = s0.robots[1 - s0.self].position;
  EXPECT_TRUE(geom::nearly_equal(peer, Vec2{5.0 - 0.3, 1.5 - 0.3}, 1e-9));
}

TEST(Quantum, ZeroMeansExact) {
  World w = make_world({Vec2{0.3, 0.3}, Vec2{5.2, 1.4}}, EngineOptions{});
  const Snapshot& s0 = w.robots[0]->history_.front();
  const Vec2 peer = s0.robots[1 - s0.self].position;
  EXPECT_TRUE(geom::nearly_equal(peer, Vec2{4.9, 1.1}, 1e-12));
}

TEST(Quantum, SubThresholdMovesInvisible) {
  EngineOptions opts;
  opts.observation_quantum = 1.0;
  // Robot 1 creeps by 0.2/step: robot 0 sees it jump only every 5 steps.
  World w = make_world({Vec2{0, 0}, Vec2{10.4, 0}}, opts,
                       {Vec2{0, 0}, Vec2{0.2, 0}});
  std::vector<double> seen_x;
  for (int t = 0; t < 10; ++t) {
    w.engine->step();
    const Snapshot& s = w.robots[0]->history_.back();
    seen_x.push_back(s.robots[1 - s.self].position.x);
  }
  // Observed positions are multiples of the grid...
  for (double x : seen_x) {
    EXPECT_NEAR(std::remainder(x, 1.0), 0.0, 1e-9);
  }
  // ...and strictly fewer distinct values than instants.
  std::sort(seen_x.begin(), seen_x.end());
  seen_x.erase(std::unique(seen_x.begin(), seen_x.end(),
                           [](double a, double b) {
                             return std::fabs(a - b) < 1e-9;
                           }),
               seen_x.end());
  EXPECT_LT(seen_x.size(), 10u);
  EXPECT_GE(seen_x.size(), 2u);
}

// ---------------------------------------------------------------------------
// Observation delay.

TEST(Delay, OthersAreStaleSelfCurrent) {
  EngineOptions opts;
  opts.observation_delay = 3;
  World w = make_world({Vec2{0, 0}, Vec2{10, 0}}, opts,
                       {Vec2{0, 1}, Vec2{1, 0}});
  for (int t = 0; t < 8; ++t) w.engine->step();
  // At the activation of instant 7, robot 0 observes:
  const Snapshot& s = w.robots[0]->history_.back();
  // itself current: it has moved 7 times by (0,1) -> local (0,7);
  EXPECT_TRUE(geom::nearly_equal(s.self_robot().position, Vec2{0, 7}, 1e-9));
  // the peer as of instant 7-3=4: 4 moves of (1,0) from (10,0) -> x=14,
  // local x = 14 (anchored at own t0 (0,0)).
  EXPECT_TRUE(geom::nearly_equal(s.robots[1 - s.self].position,
                                 Vec2{14, 0}, 1e-9));
}

TEST(Delay, EarlyInstantsClampToT0) {
  EngineOptions opts;
  opts.observation_delay = 5;
  World w = make_world({Vec2{0, 0}, Vec2{10, 0}}, opts,
                       {Vec2{0, 0}, Vec2{1, 0}});
  w.engine->step();
  w.engine->step();
  // At instant 1, only 2 configurations exist; the stalest is t0.
  const Snapshot& s = w.robots[0]->history_.back();
  EXPECT_TRUE(geom::nearly_equal(s.robots[1 - s.self].position,
                                 Vec2{10, 0}, 1e-9));
}

// ---------------------------------------------------------------------------
// Limited visibility.

TEST(Visibility, SnapshotShrinksAndGrowsWithDistance) {
  EngineOptions opts;
  opts.visibility_radius = 6.0;
  // Robot 1 walks away from robot 0, then nothing brings it back — use a
  // three-robot chain where the middle one leaves range of the first.
  World w = make_world({Vec2{0, 0}, Vec2{5, 0}}, opts,
                       {Vec2{0, 0}, Vec2{0.5, 0}});
  EXPECT_EQ(w.robots[0]->history_.front().robots.size(), 2u);
  for (int t = 0; t < 5; ++t) w.engine->step();
  // Peer at 7.5 > 6: invisible.
  EXPECT_EQ(w.robots[0]->history_.back().robots.size(), 1u);
  EXPECT_TRUE(geom::nearly_equal(
      w.robots[0]->history_.back().self_robot().position, Vec2{0, 0}));
}

TEST(Visibility, SelfIndexCorrectAfterFiltering) {
  EngineOptions opts;
  opts.visibility_radius = 7.0;
  World w = make_world({Vec2{0, 0}, Vec2{5, 0}, Vec2{20, 0}}, opts);
  for (Recorder* r : w.robots) {
    const Snapshot& s = r->history_.front();
    EXPECT_TRUE(geom::nearly_equal(s.self_robot().position, Vec2{0, 0}))
        << "each robot must still find itself at its anchored origin";
  }
  // The middle robot sees only its left neighbor; the outlier only itself.
  EXPECT_EQ(w.robots[1]->history_.front().robots.size(), 2u);
  EXPECT_EQ(w.robots[2]->history_.front().robots.size(), 1u);
}

// ---------------------------------------------------------------------------
// Teleport.

TEST(Teleport, MovesInstantlyWithoutActivation) {
  World w = make_world({Vec2{0, 0}, Vec2{10, 0}}, EngineOptions{});
  w.engine->teleport(1, Vec2{3, 4});
  EXPECT_TRUE(geom::nearly_equal(w.engine->positions()[1], Vec2{3, 4}));
  // The robot program was not consulted.
  EXPECT_EQ(w.robots[1]->history_.size(), 1u);  // Only initialize.
  // And the next snapshot reflects the new position.
  w.engine->step();
  const Snapshot& s = w.robots[0]->history_.back();
  EXPECT_TRUE(geom::nearly_equal(s.robots[1 - s.self].position, Vec2{3, 4},
                                 1e-9));
}

TEST(Teleport, OutOfRangeIndexThrows) {
  World w = make_world({Vec2{0, 0}, Vec2{10, 0}}, EngineOptions{});
  EXPECT_THROW(w.engine->teleport(5, Vec2{1, 1}), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Stressor combinations.

TEST(Stressors, QuantumPlusDelayCompose) {
  EngineOptions opts;
  opts.observation_quantum = 0.5;
  opts.observation_delay = 2;
  World w = make_world({Vec2{0, 0}, Vec2{10.2, 0}}, opts,
                       {Vec2{0, 0}, Vec2{0.3, 0}});
  for (int t = 0; t < 6; ++t) w.engine->step();
  const Snapshot& s = w.robots[0]->history_.back();
  // Instant 5 activation, delay 2 -> peer as of instant 3: x = 10.2 + 3*0.3
  // = 11.1, snapped to 11.0.
  EXPECT_TRUE(geom::nearly_equal(s.robots[1 - s.self].position,
                                 Vec2{11.0, 0}, 1e-9));
}

}  // namespace
}  // namespace stig::sim
