// Watchdog and flight-recorder tests: every invariant trips on a synthetic
// violating stream, clean runs of all six protocol configurations trip
// nothing, the ring buffer wraps correctly, and a violation dumps the
// black box before the abort throw unwinds.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/chat_network.hpp"
#include "encode/bits.hpp"
#include "encode/framing.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/sink.hpp"
#include "obs/watchdog.hpp"

namespace stig {
namespace {

using obs::Event;
using obs::EventType;
using obs::FlightRecorder;
using obs::Watchdog;
using obs::WatchdogError;
using obs::WatchdogOptions;

Event event(EventType type, std::uint64_t t, std::int64_t robot = -1,
            std::int64_t peer = -1) {
  Event e;
  e.type = type;
  e.t = t;
  e.robot = robot;
  e.peer = peer;
  return e;
}

TEST(Watchdog, CollisionIsAlwaysASeparationViolation) {
  Watchdog wd(WatchdogOptions{});
  wd.on_event(event(EventType::Collision, 12, 0, 1));
  EXPECT_FALSE(wd.ok());
  ASSERT_EQ(wd.violations().size(), 1u);
  EXPECT_EQ(wd.violations()[0].invariant, "separation");
  EXPECT_EQ(wd.violations()[0].t, 12u);
}

TEST(Watchdog, SeparationFloorTripsOnStepComplete) {
  WatchdogOptions opt;
  opt.min_separation = 2.0;
  Watchdog wd(opt);
  Event ok_step = event(EventType::StepComplete, 1);
  ok_step.value = 3.0;
  wd.on_event(ok_step);
  EXPECT_TRUE(wd.ok());
  Event bad_step = event(EventType::StepComplete, 2);
  bad_step.value = 1.5;
  wd.on_event(bad_step);
  EXPECT_FALSE(wd.ok());
  ASSERT_EQ(wd.violations().size(), 1u);
  EXPECT_EQ(wd.violations()[0].invariant, "separation");
  EXPECT_DOUBLE_EQ(wd.violations()[0].value, 1.5);
}

TEST(Watchdog, GranularContainmentTripsOutsideTheDisc) {
  // Two robots 6 apart: granular radius is 3 for each.
  WatchdogOptions opt;
  opt.check_granular = true;
  Watchdog wd(opt, {geom::Vec2{0, 0}, geom::Vec2{6, 0}});

  Event inside = event(EventType::Move, 1, 0);
  inside.x = 2.5;
  inside.y = 0.0;
  wd.on_event(inside);
  EXPECT_TRUE(wd.ok());

  Event outside = event(EventType::Move, 2, 0);
  outside.x = 3.5;
  outside.y = 0.0;
  wd.on_event(outside);
  EXPECT_FALSE(wd.ok());
  ASSERT_EQ(wd.violations().size(), 1u);
  EXPECT_EQ(wd.violations()[0].invariant, "granular");
  EXPECT_GT(wd.violations()[0].value, 3.0);
}

TEST(Watchdog, TeleportDisarmsGranularForThatRobot) {
  WatchdogOptions opt;
  opt.check_granular = true;
  Watchdog wd(opt, {geom::Vec2{0, 0}, geom::Vec2{6, 0}});

  // Fault injection re-homes robot 0; its later far moves are legal, but
  // robot 1 stays armed.
  wd.on_event(event(EventType::Teleport, 1, 0));
  Event far = event(EventType::Move, 2, 0);
  far.x = 20.0;
  wd.on_event(far);
  EXPECT_TRUE(wd.ok());

  Event other = event(EventType::Move, 3, 1);
  other.x = 20.0;
  wd.on_event(other);
  EXPECT_FALSE(wd.ok());
  EXPECT_EQ(wd.violations()[0].robot, 1);
}

TEST(Watchdog, BitOrderTripsOnTimeReversal) {
  Watchdog wd(WatchdogOptions{});
  Event first = event(EventType::BitEmitted, 10, 0, 1);
  wd.on_event(first);
  Event stale = event(EventType::BitEmitted, 5, 0, 1);
  wd.on_event(stale);
  EXPECT_FALSE(wd.ok());
  ASSERT_EQ(wd.violations().size(), 1u);
  EXPECT_EQ(wd.violations()[0].invariant, "bit_order");

  // Decoded bits are ordered per (receiver, sender) stream.
  WatchdogOptions no_framing;
  no_framing.check_framing = false;
  Watchdog wd2(no_framing);
  wd2.on_event(event(EventType::BitDecoded, 20, 1, 0));
  wd2.on_event(event(EventType::BitDecoded, 21, 1, 2));  // Other stream ok.
  wd2.on_event(event(EventType::BitDecoded, 15, 1, 0));
  EXPECT_FALSE(wd2.ok());
  ASSERT_EQ(wd2.violations().size(), 1u);
  EXPECT_EQ(wd2.violations()[0].invariant, "bit_order");
}

TEST(Watchdog, FramingTripsOnACorruptDecodedStream) {
  const auto payload = encode::bytes_of("hi");
  encode::BitString bits = encode::encode_frame(payload);
  ASSERT_GT(bits.size(), 1u);
  bits.back() ^= 1u;  // Break the CRC.

  Watchdog wd(WatchdogOptions{});
  std::uint64_t t = 0;
  for (const std::uint8_t b : bits) {
    Event e = event(EventType::BitDecoded, ++t, 1, 0);
    e.aux = 1;
    e.bit = b;
    wd.on_event(e);
  }
  EXPECT_FALSE(wd.ok());
  ASSERT_EQ(wd.violations().size(), 1u);
  EXPECT_EQ(wd.violations()[0].invariant, "framing");

  // The intact frame on a fresh watchdog is clean.
  Watchdog clean(WatchdogOptions{});
  t = 0;
  for (const std::uint8_t b : encode::encode_frame(payload)) {
    Event e = event(EventType::BitDecoded, ++t, 1, 0);
    e.aux = 1;
    e.bit = b;
    clean.on_event(e);
  }
  EXPECT_TRUE(clean.ok());
}

TEST(Watchdog, AckWindowTripsWhenConfigured) {
  WatchdogOptions opt;
  opt.max_ack_window = 8.0;
  Watchdog wd(opt);
  Event quick = event(EventType::AckObserved, 5, 0, 1);
  quick.value = 6.0;
  wd.on_event(quick);
  EXPECT_TRUE(wd.ok());
  Event slow = event(EventType::AckObserved, 30, 0, 1);
  slow.value = 20.0;
  wd.on_event(slow);
  EXPECT_FALSE(wd.ok());
  ASSERT_EQ(wd.violations().size(), 1u);
  EXPECT_EQ(wd.violations()[0].invariant, "ack_window");
}

TEST(Watchdog, AbortModeThrowsOnFirstViolation) {
  WatchdogOptions opt;
  opt.abort_on_violation = true;
  Watchdog wd(opt);
  EXPECT_THROW(wd.on_event(event(EventType::Collision, 3, 0, 1)),
               WatchdogError);
}

TEST(Watchdog, RecordingIsBoundedButCountingIsNot) {
  WatchdogOptions opt;
  opt.max_recorded = 2;
  Watchdog wd(opt);
  for (std::uint64_t t = 0; t < 5; ++t) {
    wd.on_event(event(EventType::Collision, t, 0, 1));
  }
  EXPECT_EQ(wd.total_violations(), 5u);
  EXPECT_EQ(wd.violations().size(), 2u);

  std::ostringstream os;
  wd.report(os);
  EXPECT_NE(os.str().find("5 violation(s)"), std::string::npos);
  std::ostringstream js;
  wd.write_json(js);
  EXPECT_NE(js.str().find("\"ok\": false"), std::string::npos);
}

/// One clean-run configuration of the protocol lattice.
struct CleanRun {
  const char* name;
  core::ProtocolKind protocol;
  core::Synchrony synchrony;
  std::size_t robots;
  bool sense_of_direction;
  bool banded;
  bool granular;  ///< Granular containment is an invariant here.
};

TEST(Watchdog, CleanRunsOfAllSixProtocolsTripNothing) {
  const CleanRun runs[] = {
      {"sync2", core::ProtocolKind::sync2, core::Synchrony::synchronous, 2,
       false, false, false},
      {"sliced", core::ProtocolKind::sliced, core::Synchrony::synchronous, 4,
       false, false, true},
      {"ksegment", core::ProtocolKind::ksegment,
       core::Synchrony::synchronous, 4, true, false, true},
      {"async2", core::ProtocolKind::async2, core::Synchrony::asynchronous,
       2, false, false, false},
      {"async2_banded", core::ProtocolKind::async2,
       core::Synchrony::asynchronous, 2, false, true, false},
      {"asyncn", core::ProtocolKind::asyncn, core::Synchrony::asynchronous,
       4, false, false, true},
  };
  for (const CleanRun& run : runs) {
    SCOPED_TRACE(run.name);
    std::vector<geom::Vec2> pts = {geom::Vec2{0, 0}, geom::Vec2{6, 0},
                                   geom::Vec2{0, 6}, geom::Vec2{6, 6}};
    pts.resize(run.robots);

    core::ChatNetworkOptions opt;
    opt.synchrony = run.synchrony;
    opt.protocol = run.protocol;
    opt.caps.sense_of_direction = run.sense_of_direction;
    opt.async2_banded = run.banded;
    opt.seed = 11;

    WatchdogOptions wopt;
    wopt.check_granular = run.granular;
    Watchdog wd(wopt, pts);

    core::ChatNetwork net(pts, opt);
    net.attach_event_sink(&wd);
    net.send(0, 1, encode::bytes_of("ok"));
    ASSERT_TRUE(net.run_until_quiescent(200'000));
    std::ostringstream os;
    wd.report(os);
    EXPECT_TRUE(wd.ok()) << os.str();
  }
}

TEST(FlightRecorder, RingWrapsKeepingTheMostRecentEvents) {
  FlightRecorder rec(4);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 0u);
  for (std::uint64_t t = 0; t < 10; ++t) {
    rec.on_event(event(EventType::StepComplete, t));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_seen(), 10u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].t, 6u + i);  // Oldest first: t = 6, 7, 8, 9.
  }

  std::ostringstream os;
  rec.dump(os);
  const std::string dump = os.str();
  EXPECT_EQ(dump.rfind("{\"type\":\"flight_recorder\"", 0), 0u);
  EXPECT_NE(dump.find("\"capacity\":4"), std::string::npos);
  EXPECT_NE(dump.find("\"seen\":10"), std::string::npos);
  EXPECT_NE(dump.find("\"dropped\":6"), std::string::npos);
  std::size_t lines = 0;
  for (const char c : dump) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);  // Header + one line per retained event.
}

TEST(FlightRecorder, PartiallyFilledRingDumpsInArrivalOrder) {
  FlightRecorder rec(8);
  for (std::uint64_t t = 0; t < 3; ++t) {
    rec.on_event(event(EventType::Activation, t, 0));
  }
  EXPECT_EQ(rec.size(), 3u);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.front().t, 0u);
  EXPECT_EQ(snap.back().t, 2u);
}

TEST(FlightRecorder, WatchdogViolationDumpsBeforeTheAbortThrow) {
  const std::string path =
      ::testing::TempDir() + "/stig_watchdog_dump.jsonl";
  std::remove(path.c_str());

  FlightRecorder rec(16);
  WatchdogOptions opt;
  opt.abort_on_violation = true;
  Watchdog wd(opt);
  wd.set_flight_recorder(&rec, path);

  obs::MultiSink fan;        // Recorder first, like stigsim wires it, so
  fan.add(&rec);             // the dump contains the tripping event.
  fan.add(&wd);
  for (std::uint64_t t = 0; t < 5; ++t) {
    fan.on_event(event(EventType::StepComplete, t));
  }
  EXPECT_THROW(fan.on_event(event(EventType::Collision, 5, 0, 1)),
               WatchdogError);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no flight-recorder dump at " << path;
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("{\"type\":\"flight_recorder\"", 0), 0u);
  bool has_collision = false;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"collision\"") != std::string::npos) {
      has_collision = true;
    }
  }
  EXPECT_TRUE(has_collision);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stig
