// Differential testing of the security-radius Voronoi construction
// (VoronoiDiagram::compute) against the legacy all-bisectors oracle
// (VoronoiDiagram::compute_halfplane): both must produce the same cells, up
// to floating-point tolerance, on every site-family the simulator can
// produce — uniform random scatters, regular grids (exact ties), collinear
// configurations (degenerate extent, the grid's worst case) and cocircular
// ones (maximal cell symmetry).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "geom/angle.hpp"
#include "geom/convex.hpp"
#include "geom/voronoi.hpp"
#include "sim/rng.hpp"

namespace stig::geom {
namespace {

std::vector<Vec2> random_sites(std::size_t n, std::uint64_t seed,
                               double extent) {
  sim::Rng rng(seed);
  std::vector<Vec2> pts;
  while (pts.size() < n) {
    const Vec2 p{rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
    bool ok = true;
    for (const Vec2& q : pts) {
      if (dist(p, q) < 1e-3) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

std::vector<Vec2> grid_sites(std::size_t side, double spacing,
                             std::uint64_t jitter_seed = 0) {
  sim::Rng rng(jitter_seed);
  std::vector<Vec2> pts;
  pts.reserve(side * side);
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      Vec2 p{static_cast<double>(x) * spacing,
             static_cast<double>(y) * spacing};
      if (jitter_seed != 0) {
        p.x += rng.uniform(-0.2, 0.2) * spacing;
        p.y += rng.uniform(-0.2, 0.2) * spacing;
      }
      pts.push_back(p);
    }
  }
  return pts;
}

std::vector<Vec2> collinear_sites(std::size_t n, double spacing) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(Vec2{static_cast<double>(i) * spacing, 0.0});
  }
  return pts;
}

std::vector<Vec2> cocircular_sites(std::size_t n, double radius) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = kTwoPi * static_cast<double>(i) / static_cast<double>(n);
    pts.push_back(Vec2{radius * std::cos(a), radius * std::sin(a)});
  }
  return pts;
}

/// Cell-by-cell equality up to tolerance: equal areas and mutual vertex
/// containment (robust against vertex order/count differences from the two
/// clip sequences).
void expect_same_cells(const VoronoiDiagram& got, const VoronoiDiagram& want,
                       double tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const ConvexPolygon& a = got.cell(i).polygon;
    const ConvexPolygon& b = want.cell(i).polygon;
    EXPECT_EQ(got.cell(i).site_index, want.cell(i).site_index);
    EXPECT_EQ(got.cell(i).site.x, want.cell(i).site.x);
    EXPECT_EQ(got.cell(i).site.y, want.cell(i).site.y);
    ASSERT_FALSE(a.empty()) << "cell " << i;
    ASSERT_FALSE(b.empty()) << "cell " << i;
    const double scale = std::max(1.0, b.area());
    EXPECT_NEAR(a.area(), b.area(), tol * scale) << "cell " << i;
    for (const Vec2& v : a.vertices()) {
      EXPECT_TRUE(b.contains(v, tol)) << "cell " << i << " vertex ("
                                      << v.x << ", " << v.y << ")";
    }
    for (const Vec2& v : b.vertices()) {
      EXPECT_TRUE(a.contains(v, tol)) << "cell " << i << " vertex ("
                                      << v.x << ", " << v.y << ")";
    }
  }
}

void expect_same_nearest(const VoronoiDiagram& got, const VoronoiDiagram& want,
                         double extent, std::uint64_t seed) {
  sim::Rng rng(seed);
  for (int k = 0; k < 200; ++k) {
    const Vec2 q{rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
    EXPECT_EQ(got.nearest_site(q), want.nearest_site(q));
  }
}

void run_diff(const std::vector<Vec2>& sites, double extent,
              double margin = -1.0) {
  const VoronoiDiagram fast = VoronoiDiagram::compute(sites, margin);
  const VoronoiDiagram oracle = VoronoiDiagram::compute_halfplane(sites,
                                                                  margin);
  expect_same_cells(fast, oracle, 1e-6);
  expect_same_nearest(fast, oracle, extent, 0xd1ff ^ sites.size());
}

TEST(VoronoiDiff, RandomScatters) {
  for (const std::size_t n : {2u, 3u, 8u, 64u, 256u}) {
    run_diff(random_sites(n, 1000 + n, 50.0), 60.0);
  }
}

TEST(VoronoiDiff, LargeRandomScatter) {
  run_diff(random_sites(2048, 77, 400.0), 450.0);
}

TEST(VoronoiDiff, RegularGridExactTies) {
  run_diff(grid_sites(16, 3.0), 50.0);          // 256 sites, exact ties.
  run_diff(grid_sites(32, 2.0, 5), 70.0);       // 1024 sites, jittered.
}

TEST(VoronoiDiff, CollinearDegradesGracefully) {
  run_diff(collinear_sites(512, 2.0), 1100.0);
  // Near-collinear: a hair of vertical spread.
  std::vector<Vec2> near = collinear_sites(256, 2.0);
  for (std::size_t i = 0; i < near.size(); ++i) {
    near[i].y = (i % 2 == 0 ? 1.0 : -1.0) * 1e-6;
  }
  run_diff(near, 520.0);
}

TEST(VoronoiDiff, Cocircular) {
  run_diff(cocircular_sites(256, 30.0), 40.0);
}

TEST(VoronoiDiff, ExplicitMargins) {
  const std::vector<Vec2> sites = random_sites(64, 4242, 20.0);
  for (const double margin : {0.5, 5.0, 100.0}) {
    run_diff(sites, 25.0, margin);
  }
}

}  // namespace
}  // namespace stig::geom
