// Differential conformance matrix (tier-1).
//
// run_case's differential oracle asserts that every protocol in a config's
// equivalence class delivers the identical payload multiset under the same
// scheduler seed. This test pins that property over a fixed corpus of
// seeds and the full (protocol x scheduler x n) matrix, so a regression in
// any one protocol's channel semantics fails here even if the protocol
// still "works" in isolation.
#include <gtest/gtest.h>

#include <vector>

#include "fuzz/fuzz_config.hpp"
#include "fuzz/fuzzer.hpp"

namespace {

using namespace stig;
using PK = core::ProtocolKind;
using SK = core::SchedulerKind;

fuzz::FuzzConfig matrix_config(std::uint64_t seed, PK protocol,
                               SK scheduler, std::size_t n) {
  fuzz::FuzzConfig cfg;
  cfg.seed = seed;
  cfg.protocol = protocol;
  cfg.scheduler = scheduler;
  cfg.p = 0.5;
  cfg.subset_size = 1;
  cfg.fairness_bound = 64;
  cfg.n = n;
  cfg.payload = {0x68, 0x69};  // "hi"
  cfg.max_instants = fuzz::instant_budget(cfg);
  return cfg;
}

void expect_clean(const fuzz::FuzzConfig& cfg) {
  const fuzz::CaseResult r = fuzz::run_case(cfg);
  EXPECT_EQ(r.kind, fuzz::FailureKind::none)
      << core::protocol_kind_name(cfg.protocol) << " n=" << cfg.n
      << " scheduler=" << core::scheduler_kind_name(cfg.scheduler)
      << " seed=" << cfg.seed << ": "
      << fuzz::failure_kind_name(r.kind) << " — " << r.detail;
}

TEST(FuzzConformance, EquivalenceClassesMatchTheLattice) {
  const auto sync_pair = fuzz::equivalence_class(PK::sync2, 2);
  EXPECT_EQ(sync_pair,
            (std::vector<PK>{PK::sync2, PK::sliced, PK::ksegment}));
  // The class always leads with the queried protocol.
  EXPECT_EQ(fuzz::equivalence_class(PK::ksegment, 2)[0], PK::ksegment);
  EXPECT_EQ(fuzz::equivalence_class(PK::sliced, 5),
            (std::vector<PK>{PK::sliced, PK::ksegment}));
  EXPECT_EQ(fuzz::equivalence_class(PK::async2, 2),
            (std::vector<PK>{PK::async2, PK::asyncn}));
  EXPECT_EQ(fuzz::equivalence_class(PK::asyncn, 5),
            (std::vector<PK>{PK::asyncn}));
}

TEST(FuzzConformance, SynchronousMatrixOverCorpusSeeds) {
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL, 15ULL}) {
    // n == 2 exercises the full three-way class from each member's seat;
    // larger swarms compare sliced vs ksegment.
    for (PK protocol : {PK::sync2, PK::sliced, PK::ksegment}) {
      expect_clean(matrix_config(seed, protocol, SK::bernoulli, 2));
    }
    expect_clean(matrix_config(seed, PK::sliced, SK::bernoulli, 5));
  }
}

TEST(FuzzConformance, AsynchronousMatrixOverCorpusSeeds) {
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    for (SK scheduler :
         {SK::bernoulli, SK::centralized, SK::ksubset, SK::adversarial}) {
      // async2 vs asyncn at n = 2, from both seats, per scheduler class.
      expect_clean(matrix_config(seed, PK::async2, scheduler, 2));
      expect_clean(matrix_config(seed, PK::asyncn, scheduler, 2));
    }
    expect_clean(matrix_config(seed, PK::asyncn, SK::bernoulli, 3));
  }
}

TEST(FuzzConformance, BroadcastMatrixOverCorpusSeeds) {
  for (std::uint64_t seed : {21ULL, 22ULL}) {
    fuzz::FuzzConfig sync_cfg =
        matrix_config(seed, PK::sliced, SK::bernoulli, 3);
    sync_cfg.broadcast = true;
    expect_clean(sync_cfg);
    fuzz::FuzzConfig async_cfg =
        matrix_config(seed, PK::async2, SK::bernoulli, 2);
    async_cfg.broadcast = true;
    expect_clean(async_cfg);
  }
}

}  // namespace
