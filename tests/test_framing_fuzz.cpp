// Fuzz/property tests for the frame parser: random frame trains round-trip,
// random corruption never crashes or delivers wrong payloads undetected
// beyond CRC collision odds, and reset() realigns misaligned streams.
#include <gtest/gtest.h>

#include "encode/framing.hpp"
#include "sim/rng.hpp"

namespace stig::encode {
namespace {

std::vector<std::uint8_t> random_payload(sim::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> p(rng.uniform_int(0, max_len));
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

class FramingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FramingFuzz, RandomFrameTrainsRoundTrip) {
  sim::Rng rng(GetParam() * 101);
  std::vector<std::vector<std::uint8_t>> sent;
  FrameParser parser;
  const int kFrames = 50;
  for (int f = 0; f < kFrames; ++f) {
    sent.push_back(random_payload(rng, 40));
    for (std::uint8_t bit : encode_frame(sent.back())) parser.push_bit(bit);
  }
  const auto got = parser.take_messages();
  ASSERT_EQ(got.size(), sent.size());
  for (int f = 0; f < kFrames; ++f) {
    EXPECT_EQ(got[static_cast<std::size_t>(f)],
              sent[static_cast<std::size_t>(f)]);
  }
  EXPECT_EQ(parser.corrupt_frames(), 0u);
  EXPECT_FALSE(parser.mid_frame());
}

TEST_P(FramingFuzz, BitFlipsNeverDeliverCorruptPayloadSilently) {
  sim::Rng rng(GetParam() * 733);
  // Build a train, flip a few bits, parse: every delivered message must be
  // byte-identical to one of the originals (CRC-8 makes undetected damage
  // a ~1/256 event per frame; with the fixed seeds below none collide).
  std::vector<std::vector<std::uint8_t>> sent;
  BitString wire;
  for (int f = 0; f < 20; ++f) {
    sent.push_back(random_payload(rng, 20));
    const BitString frame = encode_frame(sent.back());
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  const std::size_t flips = 1 + rng.uniform_int(0, 4);
  for (std::size_t k = 0; k < flips; ++k) {
    wire[rng.uniform_int(0, wire.size() - 1)] ^= 1;
  }
  FrameParser parser;
  for (std::uint8_t bit : wire) parser.push_bit(bit);
  const auto got = parser.take_messages();
  EXPECT_LE(got.size(), sent.size());
  for (const auto& m : got) {
    EXPECT_NE(std::find(sent.begin(), sent.end(), m), sent.end())
        << "parser delivered a payload that was never sent";
  }
  // Something must have been noticed: either fewer deliveries or corrupt
  // counts (a flip in a varint high byte can eat several frames, that is
  // fine — silently *altered* payloads are what must not happen).
  EXPECT_TRUE(got.size() < sent.size() || parser.corrupt_frames() > 0);
}

TEST_P(FramingFuzz, ResetRealignsAfterBitInsertion) {
  sim::Rng rng(GetParam() * 997);
  FrameParser parser;
  // A stray bit (the transient-fault scenario) misaligns everything...
  parser.push_bit(1);
  const auto garbage = random_payload(rng, 10);
  for (std::uint8_t bit : encode_frame(garbage)) parser.push_bit(bit);
  // (that frame is unrecoverable — it is bit-shifted)
  // ...until the receiver detects a frame boundary and resets:
  parser.reset();
  const auto fresh = random_payload(rng, 10);
  for (std::uint8_t bit : encode_frame(fresh)) parser.push_bit(bit);
  const auto got = parser.take_messages();
  ASSERT_GE(got.size(), 1u);
  EXPECT_EQ(got.back(), fresh);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FramingFuzz,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(FrameParser, CorruptedLengthThenValidFrameResyncs) {
  // A corrupted *length* byte makes the described extent a lie: frame A
  // [len=1 | 0x00 | crc=0x00] arrives with its length byte smashed to 4,
  // so the parser's CRC check fails over a 4-byte window that reaches into
  // the valid frame B behind it. The pre-fix parser dropped the whole
  // described extent — eating B's head and losing B for good; the one-byte
  // resync slides until it realigns and still delivers B.
  const std::vector<std::uint8_t> payload_a{0x00};
  const std::vector<std::uint8_t> payload_b{0x6f, 0x6b};
  BitString wire = encode_frame(payload_a);
  // Rewrite the first byte (varint length 1) to 4, MSB-first.
  for (std::size_t i = 0; i < 8; ++i) {
    wire[i] = static_cast<std::uint8_t>((0x04 >> (7 - i)) & 1);
  }
  const BitString frame_b = encode_frame(payload_b);
  wire.insert(wire.end(), frame_b.begin(), frame_b.end());
  FrameParser parser;
  for (std::uint8_t bit : wire) parser.push_bit(bit);
  const auto got = parser.take_messages();
  EXPECT_GE(parser.corrupt_frames(), 1u);
  EXPECT_NE(std::find(got.begin(), got.end(), payload_b), got.end())
      << "the valid frame after the corrupted length was not recovered";
}

TEST(FrameParser, MidFrameReflectsPartialInput) {
  FrameParser parser;
  EXPECT_FALSE(parser.mid_frame());
  parser.push_bit(0);
  EXPECT_TRUE(parser.mid_frame());  // A partial byte counts.
  for (int i = 0; i < 7; ++i) parser.push_bit(0);
  // One full byte (varint length 0) is still mid-frame: CRC byte missing.
  EXPECT_TRUE(parser.mid_frame());
}

TEST(FrameParser, ResetCountsAsCorruptionOnlyMidFrame) {
  FrameParser parser;
  parser.reset();
  EXPECT_EQ(parser.corrupt_frames(), 0u);  // Nothing was in flight.
  parser.push_bit(1);
  parser.reset();
  EXPECT_EQ(parser.corrupt_frames(), 1u);  // A partial frame was dropped.
}

TEST(FrameParser, EmptyPayloadFrames) {
  FrameParser parser;
  for (int f = 0; f < 3; ++f) {
    for (std::uint8_t bit : encode_frame({})) parser.push_bit(bit);
  }
  const auto got = parser.take_messages();
  ASSERT_EQ(got.size(), 3u);
  for (const auto& m : got) EXPECT_TRUE(m.empty());
}

TEST(FrameParser, HugeLengthFieldTreatedAsCorruption) {
  FrameParser parser;
  // Hand-craft a varint claiming a 2^40-byte payload.
  std::vector<std::uint8_t> bytes{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x3F};
  for (std::uint8_t byte : bytes) {
    for (int i = 7; i >= 0; --i) {
      parser.push_bit(static_cast<std::uint8_t>((byte >> i) & 1));
    }
  }
  EXPECT_GE(parser.corrupt_frames(), 1u);
  // And the parser still accepts a clean frame afterwards... eventually:
  // resync may consume a few bytes, so feed a quiet-gap reset first (the
  // protocols do exactly this).
  parser.reset();
  const auto payload = std::vector<std::uint8_t>{1, 2, 3};
  for (std::uint8_t bit : encode_frame(payload)) parser.push_bit(bit);
  const auto got = parser.take_messages();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], payload);
}

}  // namespace
}  // namespace stig::encode
