// Remaining unit coverage: Trace recording options, Rng determinism,
// horizon-direction edge geometry, relative naming on collinear/minimal
// sets, ChatStats accounting.
#include <gtest/gtest.h>

#include "core/chat_network.hpp"
#include "encode/bits.hpp"
#include "encode/framing.hpp"
#include "geom/angle.hpp"
#include "proto/naming.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace stig {
namespace {

using geom::Vec2;

TEST(Trace, PositionsRecordedOnlyWhenEnabled) {
  sim::Trace off(2, false);
  sim::Trace on(2, true);
  const std::vector<bool> active{true, true};
  const std::vector<Vec2> before{Vec2{0, 0}, Vec2{5, 0}};
  const std::vector<Vec2> after{Vec2{0, 1}, Vec2{5, 0}};
  off.record_step(active, before, after);
  on.record_step(active, before, after);
  EXPECT_TRUE(off.positions().empty());
  ASSERT_EQ(on.positions().size(), 2u);  // t0 config + after step 0.
  EXPECT_EQ(on.positions()[0][0], before[0]);
  EXPECT_EQ(on.positions()[1][0], after[0]);
}

TEST(Trace, InactiveRobotsNotCharged) {
  sim::Trace t(2, false);
  const std::vector<Vec2> before{Vec2{0, 0}, Vec2{5, 0}};
  const std::vector<Vec2> after{Vec2{0, 1}, Vec2{5, 0}};
  t.record_step({true, false}, before, after);
  EXPECT_EQ(t.stats(0).activations, 1u);
  EXPECT_EQ(t.stats(1).activations, 0u);
  EXPECT_EQ(t.stats(0).moves, 1u);
  EXPECT_NEAR(t.stats(0).distance, 1.0, 1e-12);
}

TEST(Trace, MinSeparationTracksClosestApproach) {
  sim::Trace t(2, false);
  const std::vector<bool> a{true, true};
  const std::vector<Vec2> p0{Vec2{0, 0}, Vec2{10, 0}};
  const std::vector<Vec2> p1{Vec2{0, 0}, Vec2{3, 0}};
  const std::vector<Vec2> p2{Vec2{0, 0}, Vec2{8, 0}};
  t.record_step(a, p0, p1);
  t.record_step(a, p1, p2);
  EXPECT_NEAR(t.min_separation(), 3.0, 1e-12);
}

TEST(Rng, SeededStreamsReproducible) {
  sim::Rng a(42);
  sim::Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
  sim::Rng c(43);
  bool differs = false;
  sim::Rng a2(42);
  for (int i = 0; i < 10; ++i) {
    differs = differs ||
              (a2.uniform_int(0, 1'000'000) != c.uniform_int(0, 1'000'000));
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  sim::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(HorizonDirection, TwoRobotsPointAwayFromEachOther) {
  const std::vector<Vec2> pts{Vec2{-3, 0}, Vec2{3, 0}};
  const Vec2 h0 = proto::horizon_direction(pts, 0);
  const Vec2 h1 = proto::horizon_direction(pts, 1);
  EXPECT_TRUE(geom::nearly_equal(h0, Vec2{-1, 0}, 1e-7));
  EXPECT_TRUE(geom::nearly_equal(h1, Vec2{1, 0}, 1e-7));
}

TEST(RelativeNaming, CollinearConfiguration) {
  // All robots on one line: every angle is 0 or pi from any horizon; the
  // distance-from-O tie-break must produce a consistent permutation.
  const std::vector<Vec2> pts{Vec2{-6, 0}, Vec2{-2, 0}, Vec2{1, 0},
                              Vec2{6, 0}};
  for (std::size_t self = 0; self < pts.size(); ++self) {
    const auto naming = proto::relative_naming(pts, self);
    std::vector<bool> seen(pts.size(), false);
    for (std::size_t r : naming.ranks) {
      ASSERT_LT(r, pts.size());
      EXPECT_FALSE(seen[r]);
      seen[r] = true;
    }
  }
  // And the construction stays frame-invariant here too.
  const sim::Frame f(Vec2{1, 1}, 0.83, 2.5, false);
  std::vector<Vec2> local;
  for (const Vec2& p : pts) local.push_back(f.to_local(p));
  for (std::size_t self = 0; self < pts.size(); ++self) {
    EXPECT_EQ(proto::relative_naming(local, self).ranks,
              proto::relative_naming(pts, self).ranks);
  }
}

TEST(RelativeNaming, MinimalPair) {
  const std::vector<Vec2> pts{Vec2{0, 0}, Vec2{4, 0}};
  const auto n0 = proto::relative_naming(pts, 0);
  // Both on the SEC boundary; self's radius hosts self, the peer is on the
  // opposite radius (angle pi).
  EXPECT_EQ(n0.ranks[0], 0u);
  EXPECT_EQ(n0.ranks[1], 1u);
}

TEST(ChatStats, AccountingAddsUp) {
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  core::ChatNetwork net({Vec2{0, 0}, Vec2{6, 0}}, opt);
  const auto msg = encode::bytes_of("stats");
  const std::uint64_t frame_bits = encode::encode_frame(msg).size();
  net.send(0, 1, msg);
  net.run_until_quiescent(10'000);
  net.run(2);
  EXPECT_EQ(net.stats(0).bits_sent, frame_bits);
  EXPECT_EQ(net.stats(0).messages_sent, 1u);
  EXPECT_EQ(net.stats(1).bits_decoded, frame_bits);
  EXPECT_EQ(net.stats(1).messages_received, 1u);
  EXPECT_EQ(net.stats(1).messages_overheard, 0u);
  // The receiver never had anything to send.
  EXPECT_EQ(net.stats(1).idle_activations, net.stats(1).activations);
  // The sender was busy for exactly the transmission.
  EXPECT_EQ(net.stats(0).activations - net.stats(0).idle_activations,
            2 * frame_bits);
}

TEST(ChatStats, OverheardCountedSeparately) {
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  core::ChatNetwork net({Vec2{0, 0}, Vec2{8, 0}, Vec2{4, 7}}, opt);
  net.send(0, 1, encode::bytes_of("x"));
  net.run_until_quiescent(10'000);
  net.run(2);
  EXPECT_EQ(net.stats(2).messages_overheard, 1u);
  EXPECT_EQ(net.stats(2).messages_received, 0u);
}

}  // namespace
}  // namespace stig
