// Self-stabilization tests: the transient-corruption fault class end to
// end. The property the suite pins (ISSUE: stabilization): for every
// protocol and every corruption target, a single transient corruption of a
// live state machine at any instant reconverges within the budget, and the
// post-recovery transcript equals the fault-free run's. Plus the
// reconverged watchdog invariant, the corrupt:* FaultPlan grammar
// (round-trip, duplicates, malformed), legacy repro forward-compat, and
// replay determinism of corrupted cases.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/chat_network.hpp"
#include "fault/fault_plan.hpp"
#include "fuzz/fuzz_config.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/shrink.hpp"
#include "obs/event.hpp"
#include "obs/watchdog.hpp"

namespace stig {
namespace {

using fault::CorruptFault;
using fault::CorruptTarget;
using fault::FaultPlan;

fuzz::FuzzConfig corrupted_config(core::ProtocolKind protocol, std::size_t n,
                                  const CorruptFault& corrupt,
                                  std::uint64_t seed) {
  fuzz::FuzzConfig cfg;
  cfg.seed = seed;
  cfg.protocol = protocol;
  cfg.n = n;
  cfg.payload = {0x42, static_cast<std::uint8_t>(seed)};
  cfg.fault_plan.corrupts = {corrupt};
  return cfg;
}

// The tentpole property, pinned: every protocol x every corruption target,
// single transient corruption early in the transfer. The oracle inside
// run_case (run_case_corrupted) demands reconvergence within the budget
// and a probe-phase transcript identical to the fault-free twin's — any
// FailureKind other than none is a stabilization bug.
TEST(Stabilization, EveryProtocolEveryTargetReconverges) {
  struct Cell {
    core::ProtocolKind kind;
    std::size_t n;
  };
  const Cell cells[] = {
      {core::ProtocolKind::sync2, 2},   {core::ProtocolKind::sliced, 4},
      {core::ProtocolKind::ksegment, 4}, {core::ProtocolKind::async2, 2},
      {core::ProtocolKind::asyncn, 3},
  };
  for (const Cell& cell : cells) {
    for (std::size_t target = 0; target < fault::kCorruptTargetCount;
         ++target) {
      CorruptFault c;
      c.robot = static_cast<sim::RobotIndex>(target % cell.n);
      c.at = 3 + static_cast<sim::Time>(2 * target);
      c.target = static_cast<CorruptTarget>(target);
      const fuzz::FuzzConfig cfg = corrupted_config(
          cell.kind, cell.n, c, 100 + target);
      const fuzz::CaseResult r = fuzz::run_case(cfg);
      EXPECT_EQ(r.kind, fuzz::FailureKind::none)
          << core::protocol_kind_name(cell.kind) << " x "
          << fault::corrupt_target_name(c.target) << ": " << r.detail;
    }
  }
}

// "At any instant": sweep the corruption across the whole transfer
// (including instants past quiescence, where it lands on an idle swarm
// and must still be harmless).
TEST(Stabilization, CorruptionAtAnyInstantIsSurvived) {
  for (const sim::Time at : {1u, 4u, 9u, 17u, 33u, 65u, 129u}) {
    CorruptFault c;
    c.robot = static_cast<sim::RobotIndex>(at % 2);
    c.at = at;
    c.target = static_cast<CorruptTarget>(at % fault::kCorruptTargetCount);
    const fuzz::FuzzConfig cfg =
        corrupted_config(core::ProtocolKind::sync2, 2, c, 500 + at);
    const fuzz::CaseResult r = fuzz::run_case(cfg);
    EXPECT_EQ(r.kind, fuzz::FailureKind::none)
        << "corruption at t=" << at << ": " << r.detail;
  }
}

// Corrupted cases replay bit-for-bit: same config, same schedule digest —
// the contract `stigsim --replay` relies on.
TEST(Stabilization, CorruptedCaseReplaysBitForBit) {
  CorruptFault c{1, 5, CorruptTarget::cursor};
  const fuzz::FuzzConfig cfg =
      corrupted_config(core::ProtocolKind::sliced, 4, c, 77);
  const fuzz::CaseResult a = fuzz::run_case(cfg);
  const fuzz::CaseResult b = fuzz::run_case(cfg);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest);
  EXPECT_NE(a.schedule_digest, 0u);
}

// The convergence/silence metrics surface through obs::RunReport — and
// stay zero on fault-free runs so pre-existing report consumers see
// nothing new.
TEST(Stabilization, ReportCarriesConvergenceAndSilence) {
  const auto pts = fuzz::scatter(9, 2);
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::synchronous;
  opt.protocol = core::ProtocolKind::sync2;
  opt.seed = 9;
  core::ChatNetwork net(pts, opt);
  net.schedule_corruption(0, 4, proto::CorruptKind::cursor);
  const std::vector<std::uint8_t> payload = {0xAA, 0xBB};
  net.send(0, 1, payload);
  ASSERT_TRUE(net.run_until_quiescent(100'000));
  net.run(8);
  const obs::RunReport r = net.report();
  EXPECT_EQ(r.corruptions_applied, 1u);
  EXPECT_TRUE(r.reconverged);
  EXPECT_GT(r.convergence_instants, 0u);
  EXPECT_GT(r.silence_rounds, 0u);

  core::ChatNetwork clean(pts, opt);
  clean.send(0, 1, payload);
  ASSERT_TRUE(clean.run_until_quiescent(100'000));
  clean.run(8);
  const obs::RunReport cr = clean.report();
  EXPECT_EQ(cr.corruptions_applied, 0u);
  EXPECT_FALSE(cr.reconverged);
  EXPECT_EQ(cr.convergence_instants, 0u);
  EXPECT_EQ(cr.silence_rounds, 0u);

  // The JSON rendering carries the new keys.
  std::ostringstream os;
  r.write_json(os);
  EXPECT_NE(os.str().find("\"corruptions_applied\": 1"), std::string::npos);
  EXPECT_NE(os.str().find("\"reconverged\": true"), std::string::npos);
}

obs::Event fault_event(std::uint64_t t, const char* label) {
  obs::Event e;
  e.type = obs::EventType::FaultInjected;
  e.t = t;
  e.robot = 0;
  e.label = label;
  return e;
}

obs::Event delivery_event(std::uint64_t t) {
  obs::Event e;
  e.type = obs::EventType::FrameDelivered;
  e.t = t;
  e.robot = 1;
  e.peer = 0;
  return e;
}

TEST(WatchdogReconverged, LateDeliveryViolates) {
  obs::WatchdogOptions opt;
  opt.reconverge_budget = 10;
  obs::Watchdog wd(opt);
  wd.on_event(fault_event(5, "corrupt_cursor"));
  wd.on_event(delivery_event(20));
  ASSERT_EQ(wd.violations().size(), 1u);
  EXPECT_EQ(wd.violations()[0].invariant, std::string("reconverged"));
}

TEST(WatchdogReconverged, TimelyDeliveryClears) {
  obs::WatchdogOptions opt;
  opt.reconverge_budget = 10;
  obs::Watchdog wd(opt);
  wd.on_event(fault_event(5, "corrupt_phase"));
  wd.on_event(delivery_event(14));
  EXPECT_TRUE(wd.ok());
  wd.finalize(40);  // Cleared: end-of-run check has nothing pending.
  EXPECT_TRUE(wd.ok());
}

TEST(WatchdogReconverged, FinalizeViolatesWhenStillPending) {
  obs::WatchdogOptions opt;
  opt.reconverge_budget = 10;
  obs::Watchdog wd(opt);
  wd.on_event(fault_event(5, "corrupt_parser"));
  wd.finalize(50);
  ASSERT_EQ(wd.violations().size(), 1u);
  EXPECT_EQ(wd.violations()[0].invariant, std::string("reconverged"));
}

TEST(WatchdogReconverged, ShortRunIsInconclusiveNotViolating) {
  obs::WatchdogOptions opt;
  opt.reconverge_budget = 10;
  obs::Watchdog wd(opt);
  wd.on_event(fault_event(5, "corrupt_naming"));
  wd.finalize(12);  // Run ended before the budget elapsed: no verdict.
  EXPECT_TRUE(wd.ok());
}

TEST(WatchdogReconverged, ZeroBudgetDisablesTheInvariant) {
  obs::Watchdog wd(obs::WatchdogOptions{});
  wd.on_event(fault_event(5, "corrupt_cursor"));
  wd.finalize(10'000);
  EXPECT_TRUE(wd.ok());
}

TEST(WatchdogReconverged, NonCorruptFaultLabelsDoNotArm) {
  obs::WatchdogOptions opt;
  opt.reconverge_budget = 10;
  obs::Watchdog wd(opt);
  wd.on_event(fault_event(5, "burst"));
  wd.finalize(10'000);
  EXPECT_TRUE(wd.ok());
}

TEST(FaultPlanCorrupt, FormatParseRoundTrip) {
  FaultPlan plan;
  plan.corrupts = {{0, 9, CorruptTarget::phase},
                   {2, 40, CorruptTarget::naming}};
  fault::normalize(plan);
  const std::string text = fault::format_fault_plan(plan);
  EXPECT_NE(text.find("corrupt:0@9:phase"), std::string::npos);
  EXPECT_NE(text.find("corrupt:2@40:naming"), std::string::npos);
  const auto back = fault::parse_fault_plan(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, plan);
}

TEST(FaultPlanCorrupt, MixedPlanRoundTripsThroughNormalize) {
  FaultPlan plan;
  plan.crashes = {{1, 120}};
  plan.bursts = {{1, 10, 4}};
  plan.corrupts = {{3, 7, CorruptTarget::parser},
                   {0, 3, CorruptTarget::cursor}};
  fault::normalize(plan);
  const auto back = fault::parse_fault_plan(fault::format_fault_plan(plan));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, plan);
}

TEST(FaultPlanCorrupt, DuplicateCorruptSpecRejected) {
  EXPECT_FALSE(
      fault::parse_fault_plan("corrupt:0@5:phase;corrupt:0@5:phase")
          .has_value());
}

TEST(FaultPlanCorrupt, MalformedCorruptSpecsRejected) {
  for (const char* bad :
       {"corrupt:0@5:bogus", "corrupt:@5:phase", "corrupt:0@:naming",
        "corrupt:0@5", "corrupt:0@5:", "corrupt:0x5:phase",
        "corrupt:-1@5:phase", "corrupt:0@5:phase extra"}) {
    EXPECT_FALSE(fault::parse_fault_plan(bad).has_value()) << bad;
  }
}

TEST(FaultPlanCorrupt, SampledPlansWithCorruptsRoundTrip) {
  fault::FaultPlanShape shape;
  shape.robots = 4;
  shape.horizon = 500;
  shape.max_corrupts = 2;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const FaultPlan plan = fault::sample_fault_plan(seed, shape);
    const auto back =
        fault::parse_fault_plan(fault::format_fault_plan(plan));
    ASSERT_TRUE(back.has_value()) << "seed " << seed;
    EXPECT_EQ(*back, plan) << "seed " << seed;
  }
}

// A repro captured before the corruption dimension existed carries a
// fault_plan string with no corrupt:* item (or none at all): it must load
// with a default-empty corruption set and replay bit-for-bit.
TEST(StabilizationRepro, LegacyReproWithoutCorruptSpecsLoadsAndReplays) {
  fuzz::Repro repro;
  repro.config = fuzz::sample_config(4);
  repro.config.group_size = 2;
  repro.config.fault_plan = {};
  repro.config.fault_plan.crashes = {{2, 50}};
  repro.kind = fuzz::FailureKind::timeout;
  std::ostringstream out;
  fuzz::write_repro_json(out, repro);
  // A pre-corruption writer could never have emitted a corrupt:* item;
  // the string above already has none, so the file is byte-compatible.
  ASSERT_EQ(out.str().find("corrupt:"), std::string::npos);
  const std::string path = testing::TempDir() + "repro_precorrupt.json";
  {
    std::ofstream f(path);
    f << out.str();
  }
  std::string error;
  const auto back = fuzz::load_repro(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_TRUE(back->config.fault_plan.corrupts.empty());
  EXPECT_EQ(back->config.fault_plan.crashes, repro.config.fault_plan.crashes);
  const fuzz::CaseResult a = fuzz::run_case(back->config);
  const fuzz::CaseResult b = fuzz::run_case(repro.config);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest);
  std::remove(path.c_str());
}

TEST(StabilizationRepro, CorruptedReproRoundTripsTheCorruptSpec) {
  fuzz::Repro repro;
  repro.config = corrupted_config(core::ProtocolKind::async2, 2,
                                  {1, 9, CorruptTarget::parser}, 11);
  repro.kind = fuzz::FailureKind::stabilization_mismatch;
  repro.detail = "probe transcript diverged";
  std::ostringstream out;
  fuzz::write_repro_json(out, repro);
  const std::string path = testing::TempDir() + "repro_corrupt.json";
  {
    std::ofstream f(path);
    f << out.str();
  }
  std::string error;
  const auto back = fuzz::load_repro(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->config.fault_plan, repro.config.fault_plan);
  EXPECT_EQ(back->kind, fuzz::FailureKind::stabilization_mismatch);
  EXPECT_EQ(fuzz::canonical(back->config), fuzz::canonical(repro.config));
  std::remove(path.c_str());
}

// The shrinker strips a corruption that is not needed to reproduce — a
// case that fails for an unrelated reason must shrink to a corrupt-free
// config (and the corrupt-at halving keeps shrunk corruptions early).
TEST(StabilizationRepro, ShrinkDropsIrrelevantCorruption) {
  fuzz::FuzzConfig cfg = corrupted_config(core::ProtocolKind::sync2, 2,
                                          {0, 4, CorruptTarget::cursor}, 21);
  // Sabotage the budget so the case times out regardless of corruption.
  cfg.max_instants = 2;
  const fuzz::CaseResult original = fuzz::run_case(cfg);
  ASSERT_EQ(original.kind, fuzz::FailureKind::timeout);
  const fuzz::ShrinkResult s = fuzz::shrink(cfg, original, 200);
  EXPECT_EQ(s.result.kind, fuzz::FailureKind::timeout);
  EXPECT_TRUE(s.config.fault_plan.corrupts.empty());
}

}  // namespace
}  // namespace stig
