// Session-layer conformance for the stigd serving architecture.
//
// The core contract: a served session is *exactly* a ChatNetwork driven
// directly — same scatter, same options, same deliveries, byte for byte.
// On top of that, the backpressure rules (BUSY never drops, never
// reorders), the at-most-once poll cursor, close/reopen id-reuse safety
// and the validation error surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/chat_network.hpp"
#include "serve/session.hpp"

namespace stig::serve {
namespace {

Request open_request(std::uint64_t seed, std::uint64_t robots,
                     std::uint8_t flags = 0) {
  Request req;
  req.verb = Verb::open_session;
  req.seed = seed;
  req.robots = robots;
  req.flags = flags;
  return req;
}

Request send_request(std::uint64_t session, std::uint64_t from,
                     std::uint64_t to, std::vector<std::uint8_t> payload,
                     std::uint8_t flags = 0) {
  Request req;
  req.verb = Verb::send_message;
  req.session = session;
  req.from = from;
  req.to = to;
  req.flags = flags;
  req.payload = std::move(payload);
  return req;
}

Request step_request(std::uint64_t session, std::uint64_t instants) {
  Request req;
  req.verb = Verb::step;
  req.session = session;
  req.instants = instants;
  return req;
}

Request poll_request(std::uint64_t session, std::uint64_t robot,
                     std::uint64_t max_messages = 0) {
  Request req;
  req.verb = Verb::poll_delivery;
  req.session = session;
  req.robot = robot;
  req.max_messages = max_messages;
  return req;
}

Request close_request(std::uint64_t session) {
  Request req;
  req.verb = Verb::close_session;
  req.session = session;
  return req;
}

// ---------------------------------------------------------------------------
// Equivalence: the served session against the bare ChatNetwork.

TEST(ServeSession, ScriptedSequenceMatchesDirectChatNetwork) {
  const std::uint64_t seed = 99;
  const std::uint64_t robots = 4;
  const Request open = open_request(seed, robots);

  // Direct drive: the same constructor inputs the registry derives.
  core::ChatNetwork direct(scatter_positions(robots, seed),
                           session_options(open));
  direct.send(0, 2, std::vector<std::uint8_t>{'h', 'i'});
  direct.send(1, 3, std::vector<std::uint8_t>{0xAA});
  direct.run(4000);
  direct.broadcast(2, std::vector<std::uint8_t>{'!'});
  direct.run(4000);

  // Served drive: the identical script through the request interface.
  SessionRegistry registry;
  const Response opened = registry.apply(open);
  ASSERT_EQ(opened.status, Status::ok);
  const std::uint64_t id = opened.session;
  EXPECT_EQ(registry.apply(send_request(id, 0, 2, {'h', 'i'})).status,
            Status::ok);
  EXPECT_EQ(registry.apply(send_request(id, 1, 3, {0xAA})).status,
            Status::ok);
  EXPECT_EQ(registry.apply(step_request(id, 4000)).status, Status::ok);
  EXPECT_EQ(
      registry.apply(send_request(id, 2, 0, {'!'}, kSendBroadcast)).status,
      Status::ok);
  EXPECT_EQ(registry.apply(step_request(id, 4000)).status, Status::ok);

  // Every robot's deliveries must agree byte for byte, in order.
  for (std::uint64_t r = 0; r < robots; ++r) {
    const Response polled = registry.apply(poll_request(id, r));
    ASSERT_EQ(polled.status, Status::ok);
    const auto& expect = direct.received(static_cast<sim::RobotIndex>(r));
    ASSERT_EQ(polled.deliveries.size(), expect.size()) << "robot " << r;
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(polled.deliveries[i].from, expect[i].from);
      EXPECT_EQ(polled.deliveries[i].to, expect[i].to);
      EXPECT_EQ((polled.deliveries[i].flags & kSendBroadcast) != 0,
                expect[i].broadcast);
      EXPECT_EQ(polled.deliveries[i].payload, expect[i].payload);
    }
  }
}

TEST(ServeSession, AsyncOptionsMatchDirectChatNetwork) {
  const std::uint64_t seed = 1234;
  const std::uint64_t robots = 3;
  const Request open =
      open_request(seed, robots, kOpenAsync | kOpenVisibleIds);

  core::ChatNetwork direct(scatter_positions(robots, seed),
                           session_options(open));
  direct.send(0, 1, std::vector<std::uint8_t>{0x42});
  direct.run(20000);

  SessionRegistry registry;
  const std::uint64_t id = registry.apply(open).session;
  ASSERT_EQ(registry.apply(send_request(id, 0, 1, {0x42})).status,
            Status::ok);
  ASSERT_EQ(registry.apply(step_request(id, 20000)).status, Status::ok);

  const Response polled = registry.apply(poll_request(id, 1));
  const auto& expect = direct.received(1);
  ASSERT_EQ(polled.deliveries.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(polled.deliveries[i].payload, expect[i].payload);
  }
}

// ---------------------------------------------------------------------------
// Backpressure: BUSY never drops, never reorders.

TEST(ServeSession, BusyNeverDropsNorReorders) {
  SessionLimits limits;
  limits.queue_bound = 4;
  SessionRegistry registry(limits);
  const std::uint64_t id = registry.apply(open_request(7, 2)).session;

  // Fill the queue to the bound: payloads 0..3 accepted, depth echoes.
  for (std::uint8_t i = 0; i < 4; ++i) {
    const Response res = registry.apply(send_request(id, 0, 1, {i}));
    ASSERT_EQ(res.status, Status::ok) << unsigned(i);
    EXPECT_EQ(res.queued, i + 1u);
  }
  // Overflow answers BUSY — repeatedly — and leaves the queue intact.
  for (int i = 0; i < 3; ++i) {
    const Response busy = registry.apply(send_request(id, 0, 1, {0xEE}));
    EXPECT_EQ(busy.status, Status::busy);
  }

  // A step drains the queue (in acceptance order) and frees capacity.
  ASSERT_EQ(registry.apply(step_request(id, 20000)).status, Status::ok);
  const Response after = registry.apply(send_request(id, 0, 1, {4}));
  EXPECT_EQ(after.status, Status::ok);
  EXPECT_EQ(after.queued, 1u);
  ASSERT_EQ(registry.apply(step_request(id, 20000)).status, Status::ok);

  // Robot 1 received payloads 0,1,2,3,4 in order — the BUSY sends left no
  // hole and no reordering.
  const Response polled = registry.apply(poll_request(id, 1));
  ASSERT_EQ(polled.deliveries.size(), 5u);
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(polled.deliveries[i].payload,
              std::vector<std::uint8_t>{i})
        << "delivery " << unsigned(i);
  }
}

TEST(ServeSession, SessionCountLimitAnswersBusy) {
  SessionLimits limits;
  limits.max_sessions = 2;
  SessionRegistry registry(limits);
  ASSERT_EQ(registry.apply(open_request(1, 2)).status, Status::ok);
  ASSERT_EQ(registry.apply(open_request(2, 2)).status, Status::ok);
  const Response full = registry.apply(open_request(3, 2));
  EXPECT_EQ(full.status, Status::busy);
  EXPECT_EQ(registry.live_sessions(), 2u);
}

// ---------------------------------------------------------------------------
// Poll cursor: at-most-once delivery handoff.

TEST(ServeSession, PollCursorIsAtMostOnce) {
  SessionRegistry registry;
  const std::uint64_t id = registry.apply(open_request(42, 2)).session;
  ASSERT_EQ(registry.apply(send_request(id, 0, 1, {1, 2, 3})).status,
            Status::ok);
  ASSERT_EQ(registry.apply(step_request(id, 20000)).status, Status::ok);

  const Response first = registry.apply(poll_request(id, 1));
  ASSERT_EQ(first.deliveries.size(), 1u);
  // Polling again returns nothing: the cursor advanced.
  EXPECT_TRUE(registry.apply(poll_request(id, 1)).deliveries.empty());

  // max_messages slices the backlog without losing the remainder.
  ASSERT_EQ(registry.apply(send_request(id, 0, 1, {4})).status, Status::ok);
  ASSERT_EQ(registry.apply(send_request(id, 0, 1, {5})).status, Status::ok);
  ASSERT_EQ(registry.apply(step_request(id, 40000)).status, Status::ok);
  const Response one = registry.apply(poll_request(id, 1, 1));
  ASSERT_EQ(one.deliveries.size(), 1u);
  EXPECT_EQ(one.deliveries[0].payload, (std::vector<std::uint8_t>{4}));
  const Response rest = registry.apply(poll_request(id, 1));
  ASSERT_EQ(rest.deliveries.size(), 1u);
  EXPECT_EQ(rest.deliveries[0].payload, (std::vector<std::uint8_t>{5}));
}

// ---------------------------------------------------------------------------
// Close/reopen safety: ids are never reused.

TEST(ServeSession, ClosedIdIsNeverReused) {
  SessionRegistry registry;
  const std::uint64_t first = registry.apply(open_request(1, 2)).session;
  ASSERT_EQ(registry.apply(close_request(first)).status, Status::ok);

  // A new session must get a *different* id…
  const std::uint64_t second = registry.apply(open_request(2, 2)).session;
  EXPECT_NE(second, first);
  // …and the stale id keeps answering not_found for every verb, so a
  // client racing its own close can never touch a stranger's session.
  EXPECT_EQ(registry.apply(send_request(first, 0, 1, {1})).status,
            Status::not_found);
  EXPECT_EQ(registry.apply(step_request(first, 1)).status,
            Status::not_found);
  EXPECT_EQ(registry.apply(poll_request(first, 0)).status,
            Status::not_found);
  EXPECT_EQ(registry.apply(close_request(first)).status, Status::not_found);
}

TEST(ServeSession, ShardedIdAssignmentIsRecoverable) {
  // configure_ids(first=k+1, step=K) makes the owner (id-1) % K.
  SessionRegistry shard2of4;
  shard2of4.configure_ids(3, 4);
  const std::uint64_t a = shard2of4.apply(open_request(1, 2)).session;
  const std::uint64_t b = shard2of4.apply(open_request(2, 2)).session;
  EXPECT_EQ(a, 3u);
  EXPECT_EQ(b, 7u);
  EXPECT_EQ((a - 1) % 4, 2u);
  EXPECT_EQ((b - 1) % 4, 2u);
}

// ---------------------------------------------------------------------------
// Validation surface: every malformed request is an error reply, never an
// exception escaping the registry.

TEST(ServeSession, ValidationErrors) {
  SessionLimits limits;
  limits.max_robots = 8;
  limits.max_payload = 4;
  SessionRegistry registry(limits);

  EXPECT_EQ(registry.apply(open_request(1, 1)).status, Status::error);
  EXPECT_EQ(registry.apply(open_request(1, 9)).status, Status::error);
  {
    // Unknown protocol byte: carried to an error reply, not a throw.
    Request bad = open_request(1, 3);
    bad.protocol = 200;
    EXPECT_EQ(registry.apply(bad).status, Status::error);
  }
  {
    // sync2 demands exactly two robots; the ChatNetwork throw is caught.
    Request bad = open_request(1, 3);
    bad.protocol = static_cast<std::uint8_t>(core::ProtocolKind::sync2);
    const Response res = registry.apply(bad);
    EXPECT_EQ(res.status, Status::error);
    EXPECT_FALSE(res.detail.empty());
  }

  const std::uint64_t id = registry.apply(open_request(1, 3)).session;
  EXPECT_EQ(registry.apply(send_request(id, 0, 0, {1})).status,
            Status::error);  // from == to
  EXPECT_EQ(registry.apply(send_request(id, 3, 0, {1})).status,
            Status::error);  // from out of range
  EXPECT_EQ(registry.apply(send_request(id, 0, 1, {1, 2, 3, 4, 5})).status,
            Status::error);  // payload over max_payload
  EXPECT_EQ(registry.apply(poll_request(id, 3)).status,
            Status::error);  // robot out of range
  {
    Request none;
    none.verb = Verb::none;
    EXPECT_EQ(registry.apply(none).status, Status::error);
  }
  EXPECT_EQ(registry.apply(step_request(0, 1)).status, Status::not_found);
}

TEST(ServeSession, GetReportCarriesRunReportJson) {
  SessionRegistry registry;
  const std::uint64_t id = registry.apply(open_request(5, 2)).session;
  ASSERT_EQ(registry.apply(send_request(id, 0, 1, {'x'})).status,
            Status::ok);
  ASSERT_EQ(registry.apply(step_request(id, 20000)).status, Status::ok);
  Request rep;
  rep.verb = Verb::get_report;
  rep.session = id;
  const Response res = registry.apply(rep);
  ASSERT_EQ(res.status, Status::ok);
  const std::string json(res.body.begin(), res.body.end());
  EXPECT_NE(json.find("robots"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Quarantine: a session whose network throws is poisoned, not fatal.

TEST(ServePoison, DamagedSessionIsQuarantinedSiblingsSurvive) {
  obs::MetricsRegistry metrics;
  SessionRegistry registry;
  registry.attach_metrics(&metrics);
  const std::uint64_t victim = registry.apply(open_request(31, 2)).session;
  const std::uint64_t witness = registry.apply(open_request(32, 2)).session;

  // Transient state damage: a poll cursor pointing past the delivery log.
  // The next poll must fail-stop inside the session; the registry turns
  // the throw into a quarantine instead of dying (or fabricating
  // deliveries from the underflowed count).
  registry.session(victim)->corrupt_poll_cursor(0, 1u << 20);
  const Response poisoned = registry.apply(poll_request(victim, 0));
  EXPECT_EQ(poisoned.status, Status::poisoned);
  EXPECT_NE(poisoned.detail.find("poisoned"), std::string::npos);
  EXPECT_EQ(registry.live_sessions(), 1u);
  EXPECT_EQ(registry.sessions_poisoned(), 1u);
  EXPECT_EQ(metrics.counter("serve.sessions_poisoned").value(), 1u);

  // Tombstone: every verb but close keeps answering poisoned — the id is
  // not not_found (the client must learn its session was damaged, not
  // conclude it was cleanly closed).
  EXPECT_EQ(registry.apply(step_request(victim, 4)).status,
            Status::poisoned);
  EXPECT_EQ(registry.apply(poll_request(victim, 1)).status,
            Status::poisoned);

  // Isolation: the sibling never notices.
  EXPECT_EQ(registry.apply(send_request(witness, 0, 1, {'y'})).status,
            Status::ok);
  EXPECT_EQ(registry.apply(step_request(witness, 4)).status, Status::ok);

  // Acknowledgment: close clears the tombstone; afterwards the id answers
  // not_found like any other closed session, and is never reused.
  EXPECT_EQ(registry.apply(close_request(victim)).status, Status::ok);
  EXPECT_EQ(registry.apply(poll_request(victim, 0)).status,
            Status::not_found);
  const std::uint64_t next = registry.apply(open_request(33, 2)).session;
  EXPECT_GT(next, victim);
}

TEST(ServePoison, QuarantineCountsOncePerSessionNotPerRequest) {
  SessionRegistry registry;
  const std::uint64_t id = registry.apply(open_request(40, 2)).session;
  registry.session(id)->corrupt_poll_cursor(1, 999);
  ASSERT_EQ(registry.apply(poll_request(id, 1)).status, Status::poisoned);
  // Repeated requests on the tombstone are replies, not new quarantines.
  ASSERT_EQ(registry.apply(poll_request(id, 1)).status, Status::poisoned);
  ASSERT_EQ(registry.apply(step_request(id, 1)).status, Status::poisoned);
  EXPECT_EQ(registry.sessions_poisoned(), 1u);
}

TEST(ServePoison, InRangeCursorDamageIsHarmless) {
  // A corrupted cursor that still lies within the delivery log is
  // indistinguishable from a slow poller: no throw, no quarantine — the
  // fail-stop triggers only on provable damage.
  SessionRegistry registry;
  const std::uint64_t id = registry.apply(open_request(41, 2)).session;
  registry.session(id)->corrupt_poll_cursor(0, 0);
  EXPECT_EQ(registry.apply(poll_request(id, 0)).status, Status::ok);
  EXPECT_EQ(registry.sessions_poisoned(), 0u);
}

}  // namespace
}  // namespace stig::serve
