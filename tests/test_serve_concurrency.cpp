// Job-count invariance for the sharded serving layer.
//
// The contract under test: every reply and every *gated* (deterministic)
// metric out of a ShardedRegistry is a pure function of the request
// sequence and the shard count — never of the worker count or the thread
// schedule. The same scripted batch of N sessions is applied at jobs 1, 2
// and 8 and everything observable must be byte-identical. Runs under the
// existing TSan lane (the full ctest suite is TSan'd in CI), so the
// fan-out across par::BatchRunner workers is also raced-checked.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metric_keys.hpp"
#include "obs/metrics.hpp"
#include "par/seed.hpp"
#include "serve/shard.hpp"

namespace stig::serve {
namespace {

/// A scripted workload touching every verb across `sessions` sessions:
/// open all, interleave sends/steps/polls round-robin, close a third.
std::vector<Request> scripted_workload(std::size_t sessions,
                                       std::uint64_t root_seed) {
  std::vector<Request> script;
  for (std::size_t s = 0; s < sessions; ++s) {
    Request open;
    open.verb = Verb::open_session;
    open.seed = par::derive_seed(root_seed, s);
    open.robots = 2 + (s % 3);
    if (s % 2 == 1) open.flags |= kOpenAsync;
    script.push_back(open);
  }
  // Session ids are round-robin over shards in request order: the i-th
  // open gets id (i % K) + 1 + (i / K) * K — i.e. exactly i + 1 when
  // opens arrive first and i < K * anything. Opens are routed round-robin
  // so ids 1..sessions are assigned in order.
  for (int round = 0; round < 3; ++round) {
    for (std::size_t s = 0; s < sessions; ++s) {
      const std::uint64_t id = s + 1;
      const std::uint64_t n = 2 + (s % 3);
      Request send;
      send.verb = Verb::send_message;
      send.session = id;
      send.from = (s + round) % n;
      send.to = (send.from + 1) % n;
      send.payload = {static_cast<std::uint8_t>(round),
                      static_cast<std::uint8_t>(s)};
      script.push_back(send);

      Request step;
      step.verb = Verb::step;
      step.session = id;
      step.instants = 3000;
      script.push_back(step);

      Request poll;
      poll.verb = Verb::poll_delivery;
      poll.session = id;
      poll.robot = send.to;
      script.push_back(poll);
    }
  }
  for (std::size_t s = 0; s < sessions; s += 3) {
    Request close;
    close.verb = Verb::close_session;
    close.session = s + 1;
    script.push_back(close);
    // And poke the closed id to exercise the not_found path everywhere.
    Request stale;
    stale.verb = Verb::step;
    stale.session = s + 1;
    script.push_back(stale);
  }
  return script;
}

/// Renders responses into one comparable string (every field that the
/// wire would carry).
std::string render(const std::vector<Response>& responses) {
  std::ostringstream out;
  for (const Response& res : responses) {
    out << verb_name(res.verb) << ' ' << status_name(res.status) << ' '
        << res.session << ' ' << res.queued << ' ' << res.instants << ' '
        << static_cast<unsigned>(res.flags) << ' ' << res.detail;
    for (const WireDelivery& d : res.deliveries) {
      out << " [" << d.from << ">" << d.to << ' '
          << static_cast<unsigned>(d.flags);
      for (const std::uint8_t b : d.payload) {
        out << ' ' << static_cast<unsigned>(b);
      }
      out << ']';
    }
    out << '\n';
  }
  return out.str();
}

/// The gated subset of the merged metrics: every key without a
/// machine-speed marker, with its full rendered value.
std::string gated_metrics(const ShardedRegistry& registry) {
  obs::MetricsRegistry merged;
  registry.merge_metrics(merged);
  std::ostringstream out;
  merged.write_json(out);
  const std::string json = out.str();
  // write_json emits one flat object with sorted keys; histogram values
  // are one-level objects. Walk the pairs and keep the gated ones.
  std::string kept;
  std::size_t i = 0;
  while (i < json.size()) {
    const std::size_t q0 = json.find('"', i);
    if (q0 == std::string::npos) break;
    const std::size_t q1 = json.find('"', q0 + 1);
    if (q1 == std::string::npos) break;
    const std::string key = json.substr(q0 + 1, q1 - q0 - 1);
    std::size_t v = json.find(':', q1 + 1);
    if (v == std::string::npos) break;
    ++v;
    std::size_t end = v;
    if (v < json.size() && json[v] == '{') {
      end = json.find('}', v) + 1;
    } else {
      while (end < json.size() && json[end] != ',' && json[end] != '}') {
        ++end;
      }
    }
    if (!obs::is_informational_key(key)) {
      kept += key + "=" + json.substr(v, end - v) + "\n";
    }
    i = end;
  }
  return kept;
}

struct RunOutput {
  std::string responses;
  std::string metrics;
  std::size_t live = 0;
  std::uint64_t opened = 0;
};

RunOutput run_at(std::size_t jobs, const std::vector<Request>& script) {
  ShardedOptions options;
  options.shards = 4;
  options.jobs = jobs;
  ShardedRegistry registry(options);
  // Split the script into a few batches so the fan-out happens repeatedly
  // against evolving shard state, like the daemon's poll cycles.
  RunOutput out;
  const std::size_t batch = 37;
  std::vector<Response> all;
  for (std::size_t at = 0; at < script.size(); at += batch) {
    const std::size_t len = std::min(batch, script.size() - at);
    auto responses = registry.apply_batch(
        std::span<const Request>(script.data() + at, len));
    for (auto& r : responses) all.push_back(std::move(r));
  }
  out.responses = render(all);
  out.metrics = gated_metrics(registry);
  out.live = registry.live_sessions();
  out.opened = registry.sessions_opened();
  return out;
}

TEST(ServeConcurrency, JobCountInvariance) {
  const std::vector<Request> script = scripted_workload(12, 2024);
  const RunOutput at1 = run_at(1, script);
  const RunOutput at2 = run_at(2, script);
  const RunOutput at8 = run_at(8, script);

  // Byte-identical responses at every worker count.
  EXPECT_EQ(at1.responses, at2.responses);
  EXPECT_EQ(at1.responses, at8.responses);
  // Identical merged gated metrics (the `_ns` latency histograms are
  // machine-speed and excluded by the metric-key convention).
  EXPECT_EQ(at1.metrics, at2.metrics);
  EXPECT_EQ(at1.metrics, at8.metrics);
  // And identical registry aggregates.
  EXPECT_EQ(at1.live, at8.live);
  EXPECT_EQ(at1.opened, at8.opened);

  // The workload actually exercised the interesting paths.
  EXPECT_NE(at1.responses.find("not_found"), std::string::npos);
  EXPECT_NE(at1.metrics.find("serve.req.open_session"), std::string::npos);
  EXPECT_NE(at1.metrics.find("serve.deliveries_polled"),
            std::string::npos);
  // …and the informational keys were really filtered out.
  EXPECT_EQ(at1.metrics.find("_ns"), std::string::npos);
}

TEST(ServeConcurrency, SingleBatchManySessions) {
  // One big batch: all opens at once, then a burst touching every session
  // — the whole fan-out in two apply_batch calls.
  const std::size_t sessions = 48;
  std::vector<Request> opens;
  for (std::size_t s = 0; s < sessions; ++s) {
    Request open;
    open.verb = Verb::open_session;
    open.seed = par::derive_seed(7, s);
    open.robots = 2;
    opens.push_back(open);
  }
  std::vector<Request> burst;
  for (std::size_t s = 0; s < sessions; ++s) {
    Request send;
    send.verb = Verb::send_message;
    send.session = s + 1;
    send.from = 0;
    send.to = 1;
    send.payload = {static_cast<std::uint8_t>(s)};
    burst.push_back(send);
    Request step;
    step.verb = Verb::step;
    step.session = s + 1;
    step.instants = 2000;
    burst.push_back(step);
  }

  std::string first;
  for (const std::size_t jobs : {1, 2, 8}) {
    ShardedOptions options;
    options.shards = 8;
    options.jobs = jobs;
    ShardedRegistry registry(options);
    const auto open_res = registry.apply_batch(opens);
    const auto burst_res = registry.apply_batch(burst);
    for (const Response& r : open_res) {
      ASSERT_EQ(r.status, Status::ok);
    }
    const std::string rendered = render(open_res) + render(burst_res) +
                                 gated_metrics(registry);
    if (first.empty()) {
      first = rendered;
    } else {
      EXPECT_EQ(rendered, first) << "jobs=" << jobs;
    }
    EXPECT_EQ(registry.live_sessions(), sessions);
  }
}

TEST(ServeConcurrency, PerSessionOrderSurvivesTheFanOut) {
  // Requests for one session in a mixed batch keep their relative order:
  // the queue-depth echoes must be strictly increasing per session.
  ShardedOptions options;
  options.shards = 4;
  options.jobs = 8;
  ShardedRegistry registry(options);
  std::vector<Request> opens(6);
  for (std::size_t s = 0; s < opens.size(); ++s) {
    opens[s].verb = Verb::open_session;
    opens[s].seed = s + 1;
    opens[s].robots = 2;
  }
  ASSERT_EQ(registry.apply_batch(opens).size(), opens.size());

  std::vector<Request> sends;
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t id = 1; id <= 6; ++id) {
      Request send;
      send.verb = Verb::send_message;
      send.session = id;
      send.from = 0;
      send.to = 1;
      send.payload = {static_cast<std::uint8_t>(round)};
      sends.push_back(send);
    }
  }
  const auto responses = registry.apply_batch(sends);
  std::vector<std::uint64_t> depth(7, 0);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].status, Status::ok) << i;
    const std::uint64_t id = sends[i].session;
    EXPECT_EQ(responses[i].queued, depth[id] + 1)
        << "session " << id << " reply " << i;
    depth[id] = responses[i].queued;
  }
}

}  // namespace
}  // namespace stig::serve
