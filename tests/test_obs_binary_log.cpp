// Binary event log tests: field-exact round-trips (including label
// interning, time deltas that go backward, and doubles that only bit
// patterns can distinguish), JSONL export byte-identity against the live
// JSONL sink across the six-protocol matrix, and corruption handling.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/chat_network.hpp"
#include "obs/binary_log.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/sink.hpp"

namespace stig::obs {
namespace {

Event make_event(EventType type, std::uint64_t t) {
  Event e;
  e.type = type;
  e.t = t;
  return e;
}

TEST(BinaryLog, EmptyStreamIsHeaderOnly) {
  BinaryLogSink sink;
  EXPECT_EQ(sink.event_count(), 0u);
  EXPECT_EQ(sink.data().size(), 5u);  // "STGB" + version byte.
  BinaryLogReader reader(sink.data());
  Event e;
  EXPECT_FALSE(reader.next(e));
}

TEST(BinaryLog, RoundTripsEveryField) {
  BinaryLogSink sink;
  Event in = make_event(EventType::BitDecoded, 17);
  in.robot = 3;
  in.peer = 1;
  in.aux = 42;
  in.x = 1.25;
  in.y = -0.5;
  in.value = 3.14159;
  in.bit = 1;
  in.label = "payload";
  sink.on_event(in);

  BinaryLogReader reader(sink.data());
  Event out;
  ASSERT_TRUE(reader.next(out));
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.t, in.t);
  EXPECT_EQ(out.robot, in.robot);
  EXPECT_EQ(out.peer, in.peer);
  EXPECT_EQ(out.aux, in.aux);
  EXPECT_EQ(out.x, in.x);
  EXPECT_EQ(out.y, in.y);
  EXPECT_EQ(out.value, in.value);
  EXPECT_EQ(out.bit, in.bit);
  ASSERT_NE(out.label, nullptr);
  EXPECT_STREQ(out.label, "payload");
  EXPECT_FALSE(reader.next(out));
}

TEST(BinaryLog, DefaultFieldsStayDefault) {
  BinaryLogSink sink;
  sink.on_event(make_event(EventType::StepComplete, 9));
  BinaryLogReader reader(sink.data());
  Event out;
  ASSERT_TRUE(reader.next(out));
  EXPECT_EQ(out.robot, -1);
  EXPECT_EQ(out.peer, -1);
  EXPECT_EQ(out.aux, -1);
  EXPECT_EQ(out.x, 0.0);
  EXPECT_EQ(out.bit, 0u);
  EXPECT_EQ(out.label, nullptr);
}

TEST(BinaryLog, TimeDeltasMayGoBackward) {
  BinaryLogSink sink;
  sink.on_event(make_event(EventType::Activation, 100));
  sink.on_event(make_event(EventType::Activation, 50));
  sink.on_event(make_event(EventType::Activation, 0));
  sink.on_event(make_event(EventType::Activation, 1'000'000));
  BinaryLogReader reader(sink.data());
  Event out;
  for (const std::uint64_t expect : {100u, 50u, 0u, 1'000'000u}) {
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(out.t, expect);
  }
}

TEST(BinaryLog, DoublesRoundTripBitExactly) {
  BinaryLogSink sink;
  const double values[] = {
      -0.0,
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      -1.0 / 3.0,
  };
  for (const double v : values) {
    Event e = make_event(EventType::Move, 1);
    e.x = v;
    sink.on_event(e);
  }
  BinaryLogReader reader(sink.data());
  Event out;
  for (const double v : values) {
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.x),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(BinaryLog, LabelsInternByContentNotPointer) {
  BinaryLogSink sink;
  const std::string a = "phase";
  const std::string b = "phase";  // Same content, different address.
  ASSERT_NE(a.c_str(), b.c_str());
  Event e = make_event(EventType::PhaseEnter, 1);
  e.label = a.c_str();
  sink.on_event(e);
  e.t = 2;
  e.label = b.c_str();
  sink.on_event(e);
  BinaryLogReader reader(sink.data());
  Event out;
  ASSERT_TRUE(reader.next(out));
  ASSERT_TRUE(reader.next(out));
  EXPECT_STREQ(out.label, "phase");
  EXPECT_EQ(reader.labels().size(), 1u);  // One definition record.
}

TEST(BinaryLog, ReaderLabelsOutliveSubsequentReads) {
  BinaryLogSink sink;
  for (int i = 0; i < 3; ++i) {
    Event e = make_event(EventType::PhaseEnter, static_cast<uint64_t>(i));
    const std::string label = "label_" + std::to_string(i);
    e.label = label.c_str();
    sink.on_event(e);
  }
  BinaryLogReader reader(sink.data());
  Event out;
  ASSERT_TRUE(reader.next(out));
  const char* first = out.label;
  ASSERT_TRUE(reader.next(out));
  ASSERT_TRUE(reader.next(out));
  // Earlier label pointers stay valid as the table grows.
  EXPECT_STREQ(first, "label_0");
}

TEST(BinaryLog, BadMagicThrows) {
  const std::vector<std::uint8_t> junk = {'N', 'O', 'P', 'E', 0x01};
  EXPECT_THROW(BinaryLogReader{junk}, std::invalid_argument);
  const std::vector<std::uint8_t> wrong_version = {'S', 'T', 'G', 'B', 0x02};
  EXPECT_THROW(BinaryLogReader{wrong_version}, std::invalid_argument);
  const std::vector<std::uint8_t> short_stream = {'S', 'T'};
  EXPECT_THROW(BinaryLogReader{short_stream}, std::invalid_argument);
}

TEST(BinaryLog, TruncatedRecordThrows) {
  BinaryLogSink sink;
  Event e = make_event(EventType::Move, 5);
  e.robot = 2;
  e.x = 1.5;
  e.y = 2.5;
  sink.on_event(e);
  // Chop bytes off the tail: every prefix that still has the record tag
  // must throw rather than return garbage.
  for (std::size_t keep = 6; keep < sink.data().size(); ++keep) {
    const std::vector<std::uint8_t> cut(sink.data().begin(),
                                        sink.data().begin() + keep);
    BinaryLogReader reader(cut);
    Event out;
    EXPECT_THROW(reader.next(out), std::runtime_error) << "keep=" << keep;
  }
}

TEST(BinaryLog, UnknownTagThrows) {
  BinaryLogSink sink;
  std::vector<std::uint8_t> data = sink.data();
  data.push_back(0xC7);  // Neither an event type nor the label-def tag.
  BinaryLogReader reader(data);
  Event out;
  EXPECT_THROW(reader.next(out), std::runtime_error);
}

TEST(BinaryLog, LabelIdOutOfRangeThrows) {
  BinaryLogSink sink;
  std::vector<std::uint8_t> data = sink.data();
  data.push_back(static_cast<std::uint8_t>(EventType::PhaseEnter));
  data.push_back(0x80);  // Mask: label only.
  data.push_back(0x00);  // t delta 0.
  data.push_back(0x05);  // Label id 5: never defined.
  BinaryLogReader reader(data);
  Event out;
  EXPECT_THROW(reader.next(out), std::runtime_error);
}

// ------------------------------------------------------- jsonl equality --

/// Renders events through the live JSONL path, line by line.
class JsonlCollector final : public EventSink {
 public:
  void on_event(const Event& e) override {
    text += JsonlEventSink::to_json(e);
    text += '\n';
  }
  std::string text;
};

/// One protocol workload with both sinks attached; returns (live JSONL,
/// binary export JSONL, binary size, live size).
struct MatrixCase {
  std::string name;
  core::ChatNetworkOptions options;
  std::size_t n = 2;
};

std::vector<MatrixCase> six_protocol_matrix() {
  using core::ProtocolKind;
  using core::Synchrony;
  std::vector<MatrixCase> cases;
  {
    MatrixCase c{.name = "sync2"};
    c.options.protocol = ProtocolKind::sync2;
    cases.push_back(c);
  }
  {
    MatrixCase c{.name = "sliced_relative", .n = 4};
    c.options.protocol = ProtocolKind::sliced;
    cases.push_back(c);
  }
  {
    MatrixCase c{.name = "sliced_by_ids", .n = 4};
    c.options.protocol = ProtocolKind::sliced;
    c.options.caps.visible_ids = true;
    c.options.caps.sense_of_direction = true;
    cases.push_back(c);
  }
  {
    MatrixCase c{.name = "ksegment", .n = 5};
    c.options.protocol = ProtocolKind::ksegment;
    c.options.ksegment_k = 2;
    cases.push_back(c);
  }
  {
    MatrixCase c{.name = "async2"};
    c.options.protocol = ProtocolKind::async2;
    c.options.synchrony = Synchrony::asynchronous;
    cases.push_back(c);
  }
  {
    MatrixCase c{.name = "asyncn", .n = 4};
    c.options.protocol = ProtocolKind::asyncn;
    c.options.synchrony = Synchrony::asynchronous;
    cases.push_back(c);
  }
  return cases;
}

std::vector<geom::Vec2> spread(std::size_t n) {
  std::vector<geom::Vec2> p;
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(geom::Vec2{4.0 * static_cast<double>(i),
                           1.5 * static_cast<double>(i % 3)});
  }
  return p;
}

TEST(BinaryLog, ExportMatchesLiveJsonlAcrossProtocolMatrix) {
  for (const MatrixCase& c : six_protocol_matrix()) {
    core::ChatNetworkOptions opt = c.options;
    opt.seed = 7;
    core::ChatNetwork net(spread(c.n), opt);
    BinaryLogSink binary;
    JsonlCollector live;
    MultiSink sinks({&binary, &live});
    net.attach_event_sink(&sinks);
    net.send(0, c.n - 1, std::vector<std::uint8_t>{0xA5, 0x3C});
    ASSERT_TRUE(net.run_until_quiescent(200'000)) << c.name;

    std::ostringstream exported;
    binary.export_jsonl(exported);
    EXPECT_EQ(exported.str(), live.text) << c.name;
    EXPECT_GT(binary.event_count(), 0u) << c.name;
    // The point of the binary hot path: records are much smaller than the
    // JSON text they decode to.
    EXPECT_LT(binary.data().size(), live.text.size() / 2) << c.name;
  }
}

}  // namespace
}  // namespace stig::obs
