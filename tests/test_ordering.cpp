// Stream-ordering and cross-observer consistency properties: per-stream
// FIFO delivery (sync and async), interleaved streams, and the guarantee
// that every robot in the swarm — addressee or eavesdropper — decodes the
// identical message sequence from a given sender.
#include <gtest/gtest.h>

#include "core/chat_network.hpp"
#include "sim/rng.hpp"

namespace stig {
namespace {

using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::Synchrony;

std::vector<geom::Vec2> scatter(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-30, 30), rng.uniform(-30, 30)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < 3.5) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

std::vector<std::uint8_t> numbered(std::uint8_t k, std::size_t len = 4) {
  std::vector<std::uint8_t> p(len, k);
  p[0] = k;
  return p;
}

TEST(Ordering, FifoPerStreamSynchronous) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  ChatNetwork net(scatter(4, 3), opt);
  for (std::uint8_t k = 0; k < 8; ++k) net.send(0, 2, numbered(k));
  ASSERT_TRUE(net.run_until_quiescent(200'000));
  net.run(2);
  ASSERT_EQ(net.received(2).size(), 8u);
  for (std::uint8_t k = 0; k < 8; ++k) {
    EXPECT_EQ(net.received(2)[k].payload[0], k) << int{k};
  }
}

TEST(Ordering, FifoPerStreamAsynchronous) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.seed = 7;
  ChatNetwork net(scatter(3, 5), opt);
  for (std::uint8_t k = 0; k < 4; ++k) net.send(1, 0, numbered(k, 1));
  ASSERT_TRUE(net.run_until_quiescent(5'000'000));
  net.run(512);
  ASSERT_EQ(net.received(0).size(), 4u);
  for (std::uint8_t k = 0; k < 4; ++k) {
    EXPECT_EQ(net.received(0)[k].payload[0], k);
  }
}

TEST(Ordering, InterleavedAddresseesKeepPerStreamOrder) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  ChatNetwork net(scatter(5, 7), opt);
  // Alternate addressees from one sender; each stream must stay ordered.
  for (std::uint8_t k = 0; k < 6; ++k) {
    net.send(0, 1 + (k % 2) * 2, numbered(k));  // -> robots 1 and 3.
  }
  ASSERT_TRUE(net.run_until_quiescent(200'000));
  net.run(2);
  ASSERT_EQ(net.received(1).size(), 3u);
  ASSERT_EQ(net.received(3).size(), 3u);
  EXPECT_EQ(net.received(1)[0].payload[0], 0);
  EXPECT_EQ(net.received(1)[1].payload[0], 2);
  EXPECT_EQ(net.received(1)[2].payload[0], 4);
  EXPECT_EQ(net.received(3)[0].payload[0], 1);
  EXPECT_EQ(net.received(3)[1].payload[0], 3);
  EXPECT_EQ(net.received(3)[2].payload[0], 5);
}

TEST(Ordering, EveryObserverSeesTheSameStream) {
  const std::size_t n = 6;
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;  // Relative naming, anonymous.
  ChatNetwork net(scatter(n, 11), opt);
  for (std::uint8_t k = 0; k < 5; ++k) net.send(2, 4, numbered(k));
  ASSERT_TRUE(net.run_until_quiescent(200'000));
  net.run(2);
  // The addressee's view...
  ASSERT_EQ(net.received(4).size(), 5u);
  // ...must match every eavesdropper's, message for message, in order.
  for (std::size_t j = 0; j < n; ++j) {
    if (j == 2 || j == 4) continue;
    ASSERT_EQ(net.overheard(j).size(), 5u) << j;
    for (std::size_t k = 0; k < 5; ++k) {
      EXPECT_EQ(net.overheard(j)[k].payload, net.received(4)[k].payload)
          << "observer " << j << " message " << k;
      EXPECT_EQ(net.overheard(j)[k].from, 2u);
      EXPECT_EQ(net.overheard(j)[k].to, 4u);
    }
  }
}

TEST(Ordering, AsyncEavesdroppersConsistentToo) {
  const std::size_t n = 4;
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::asynchronous;
  opt.seed = 13;
  ChatNetwork net(scatter(n, 13), opt);
  for (std::uint8_t k = 0; k < 3; ++k) net.send(0, 1, numbered(k, 1));
  ASSERT_TRUE(net.run_until_quiescent(10'000'000));
  net.run(512);
  ASSERT_EQ(net.received(1).size(), 3u);
  for (std::size_t j = 2; j < n; ++j) {
    ASSERT_EQ(net.overheard(j).size(), 3u) << j;
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_EQ(net.overheard(j)[k].payload, net.received(1)[k].payload);
    }
  }
}

TEST(Ordering, BroadcastSerializedWithUnicastsFromOneSender) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  ChatNetwork net(scatter(4, 17), opt);
  net.send(0, 1, numbered(10));
  net.broadcast(0, numbered(20));
  net.send(0, 1, numbered(30));
  ASSERT_TRUE(net.run_until_quiescent(200'000));
  net.run(2);
  // Robot 1 sees all three, in submission order.
  ASSERT_EQ(net.received(1).size(), 3u);
  EXPECT_EQ(net.received(1)[0].payload[0], 10);
  EXPECT_EQ(net.received(1)[1].payload[0], 20);
  EXPECT_TRUE(net.received(1)[1].broadcast);
  EXPECT_EQ(net.received(1)[2].payload[0], 30);
}

}  // namespace
}  // namespace stig
