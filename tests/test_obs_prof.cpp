// obs::prof tests: hierarchical self/total attribution against explicit
// ::operator new traffic, phase registration semantics, stack-overflow and
// unbalanced-exit tolerance, metrics publication — plus the engine-level
// guarantees the profiler exists to pin: zero observability-attributable
// allocations per instant with no sink attached, and job-count-invariant
// PERF artifacts from the perf matrix.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "core/chat_network.hpp"
#include "obs/alloc_track.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "par/batch_runner.hpp"
#include "perf/perf_matrix.hpp"

namespace stig::obs::prof {
namespace {

/// Makes `count` heap allocations of `bytes` each that the optimizer
/// cannot elide (operator new is observable, but keep it obvious).
void churn(std::size_t count, std::size_t bytes) {
  for (std::size_t i = 0; i < count; ++i) {
    void* p = ::operator new(bytes);
    ::operator delete(p);
  }
}

const PhaseStats* find(const std::vector<PhaseStats>& stats,
                       const char* name) {
  for (const PhaseStats& s : stats) {
    if (std::string(s.name) == name) return &s;
  }
  return nullptr;
}

TEST(Profiler, RegistersPhasesByContent) {
  Profiler p;
  const std::string a = "engine.step";
  const std::string b = "engine.step";  // Same content, different pointer.
  ASSERT_NE(a.c_str(), b.c_str());
  const PhaseId id1 = p.phase(a.c_str());
  const PhaseId id2 = p.phase(b.c_str());
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(p.phase_count(), 1u);
  EXPECT_NE(p.phase("engine.sched"), id1);
  EXPECT_EQ(p.phase_count(), 2u);
}

TEST(Profiler, PhaseTableFullThrows) {
  Profiler p;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < Profiler::kMaxPhases; ++i) {
    names.push_back("phase_" + std::to_string(i));
  }
  for (const std::string& n : names) p.phase(n.c_str());
  EXPECT_EQ(p.phase_count(), Profiler::kMaxPhases);
  EXPECT_THROW(p.phase("one_too_many"), std::length_error);
  // Re-registering an existing name still works at capacity.
  EXPECT_EQ(p.phase(names[3].c_str()), PhaseId{3});
}

TEST(Profiler, NestedScopesSplitSelfFromTotal) {
  Profiler p;
  const PhaseId outer = p.phase("outer");
  const PhaseId inner = p.phase("inner");
  {
    Scope so(&p, outer);
    churn(2, 64);  // Outer self: 2 allocs.
    {
      Scope si(&p, inner);
      churn(3, 32);  // Inner self: 3 allocs.
    }
    churn(1, 16);  // Outer self: 1 more.
  }
  const auto stats = p.stats();
  const PhaseStats* o = find(stats, "outer");
  const PhaseStats* i = find(stats, "inner");
  ASSERT_NE(o, nullptr);
  ASSERT_NE(i, nullptr);
  EXPECT_EQ(o->calls, 1u);
  EXPECT_EQ(i->calls, 1u);
  // Cycle split holds on every build: self excludes the child.
  EXPECT_LE(o->self_cycles, o->total_cycles);
  if (!alloc::active()) GTEST_SKIP() << "allocation tracking is off";
  EXPECT_EQ(i->total_allocs, 3u);
  EXPECT_EQ(i->self_allocs, 3u);
  EXPECT_EQ(i->total_bytes, 3u * 32u);
  EXPECT_EQ(o->total_allocs, 6u);  // Inclusive of the nested scope.
  EXPECT_EQ(o->self_allocs, 3u);   // Exclusive: 2 before + 1 after.
  EXPECT_EQ(o->total_bytes, 2u * 64u + 3u * 32u + 16u);
  EXPECT_EQ(o->self_bytes, 2u * 64u + 16u);
}

TEST(Profiler, RepeatedCallsAccumulate) {
  Profiler p;
  const PhaseId id = p.phase("loop");
  for (int k = 0; k < 5; ++k) {
    Scope s(&p, id);
    churn(1, 8);
  }
  const auto stats = p.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].calls, 5u);
  if (alloc::active()) {
    EXPECT_EQ(stats[0].total_allocs, 5u);
    EXPECT_EQ(stats[0].total_bytes, 40u);
  }
}

TEST(Profiler, OverflowingTheStackStaysBalanced) {
  Profiler p;
  const PhaseId id = p.phase("deep");
  constexpr std::size_t kDepth = Profiler::kMaxDepth + 4;
  for (std::size_t i = 0; i < kDepth; ++i) p.enter(id);
  for (std::size_t i = 0; i < kDepth; ++i) p.exit();
  // Only the tracked frames count; the dropped ones exit silently and the
  // stack ends empty (a following scope works normally).
  EXPECT_EQ(p.stats()[0].calls, Profiler::kMaxDepth);
  {
    Scope s(&p, id);
  }
  EXPECT_EQ(p.stats()[0].calls, Profiler::kMaxDepth + 1);
}

TEST(Profiler, UnbalancedExitIsIgnored) {
  Profiler p;
  const PhaseId id = p.phase("x");
  p.exit();  // Empty stack: no-op, no crash.
  {
    Scope s(&p, id);
  }
  p.exit();  // Again after a balanced scope.
  EXPECT_EQ(p.stats()[0].calls, 1u);
}

TEST(Profiler, UnregisteredPhaseIdIsDropped) {
  Profiler p;
  p.enter(PhaseId{7});  // Never registered: dropped, not UB.
  p.exit();
  EXPECT_TRUE(p.stats().empty());
}

TEST(Profiler, NullProfilerScopeIsANoOp) {
  Scope s(nullptr, PhaseId{0});  // Must not crash; nothing to assert.
  SUCCEED();
}

TEST(Profiler, ResetClearsAggregatesKeepsRegistrations) {
  Profiler p;
  const PhaseId id = p.phase("x");
  {
    Scope s(&p, id);
    churn(1, 8);
  }
  p.reset();
  EXPECT_EQ(p.phase_count(), 1u);
  EXPECT_EQ(p.stats()[0].calls, 0u);
  EXPECT_EQ(p.stats()[0].total_cycles, 0u);
  EXPECT_EQ(p.phase("x"), id);  // Registration survived.
}

TEST(Profiler, PublishWritesCountersUnderProfPrefix) {
  Profiler p;
  const PhaseId id = p.phase("engine.step");
  {
    Scope s(&p, id);
    churn(2, 8);
  }
  MetricsRegistry registry;
  p.publish(registry);
  EXPECT_EQ(registry.counter("prof.engine.step.calls").value(), 1u);
  if (alloc::active()) {
    EXPECT_EQ(registry.counter("prof.engine.step.total_allocs").value(), 2u);
    EXPECT_EQ(registry.counter("prof.engine.step.total_bytes").value(), 16u);
  }
  // Cycle/ns counters exist (informational keys by the convention).
  EXPECT_GE(registry.counter("prof.engine.step.total_cycles").value(),
            registry.counter("prof.engine.step.self_cycles").value());
  std::ostringstream os;
  registry.write_json(os);
  EXPECT_NE(os.str().find("prof.engine.step.total_ns"), std::string::npos);
}

// ------------------------------------------------- engine integration --

/// With no event sink attached the observability layer must be free: the
/// engine's emit phase (trace update + sink dispatch) makes zero heap
/// allocations per instant in steady state.
TEST(ProfilerEngine, EmitPhaseAllocatesNothingWithoutSink) {
  if (!alloc::active()) GTEST_SKIP() << "allocation tracking is off";
  core::ChatNetworkOptions opt;
  opt.seed = 21;
  std::vector<geom::Vec2> positions{{0.0, 0.0}, {6.0, 0.0}};
  core::ChatNetwork net(std::move(positions), opt);
  Profiler prof;
  net.attach_profiler(&prof);
  const std::vector<std::uint8_t> payload{0x5A, 0xC3};
  net.send(0, 1, payload);
  // Warm up: first instants grow the trace's internal buffers once.
  net.run(32);
  prof.reset();
  net.run(256);
  const auto stats = prof.stats();
  const PhaseStats* emit = find(stats, "engine.emit");
  ASSERT_NE(emit, nullptr);
  EXPECT_EQ(emit->calls, 256u);
  EXPECT_EQ(emit->total_allocs, 0u);
  EXPECT_EQ(emit->total_bytes, 0u);
  // The observe phase reuses engine-owned scratch: also allocation-free in
  // steady state.
  const PhaseStats* observe = find(stats, "engine.observe");
  ASSERT_NE(observe, nullptr);
  EXPECT_EQ(observe->total_allocs, 0u);
}

// ---------------------------------------------------- perf determinism --

TEST(PerfMatrix, RunScenarioIsRepeatable) {
  const perf::Scenario s = perf::fast_matrix()[0];  // sync2_n2.
  const perf::ScenarioResult a = perf::run_scenario(s);
  const perf::ScenarioResult b = perf::run_scenario(s);
  EXPECT_TRUE(a.quiescent);
  EXPECT_EQ(perf::render_perf_json(a, /*include_timing=*/false),
            perf::render_perf_json(b, /*include_timing=*/false));
}

TEST(PerfMatrix, PerfJsonIsJobCountInvariant) {
  // The regression gate's core promise: the deterministic PERF artifact is
  // byte-identical whether scenarios run sequentially or on 8 workers.
  const std::vector<perf::Scenario> matrix = perf::fast_matrix();
  const auto run_all = [&](std::size_t jobs) {
    par::BatchRunner runner(par::BatchOptions{.jobs = jobs});
    const auto results = runner.map(matrix.size(), [&](std::size_t i) {
      return perf::run_scenario(matrix[i]);
    });
    std::vector<std::string> rendered;
    for (const perf::ScenarioResult& r : results) {
      rendered.push_back(perf::render_perf_json(r, /*include_timing=*/false));
    }
    return rendered;
  };
  const std::vector<std::string> seq = run_all(1);
  const std::vector<std::string> par8 = run_all(8);
  ASSERT_EQ(seq.size(), par8.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], par8[i]) << matrix[i].name;
  }
}

}  // namespace
}  // namespace stig::obs::prof
