// Naming-scheme tests, centered on the property all decoding rests on:
// the constructions are invariant under each observer's frame (translation,
// rotation, positive uniform scale) as long as handedness is shared.
#include <gtest/gtest.h>

#include <vector>

#include "geom/angle.hpp"
#include "geom/sec.hpp"
#include "proto/naming.hpp"
#include "sim/frame.hpp"
#include "sim/rng.hpp"

namespace stig::proto {
namespace {

using geom::Vec2;

std::vector<Vec2> random_points(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Vec2> pts;
  while (pts.size() < n) {
    const Vec2 p{rng.uniform(-20, 20), rng.uniform(-20, 20)};
    bool ok = true;
    for (const Vec2& q : pts) {
      if (geom::dist(p, q) < 0.5) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

std::vector<Vec2> transform_all(const std::vector<Vec2>& pts,
                                const sim::Frame& f) {
  std::vector<Vec2> out;
  out.reserve(pts.size());
  for (const Vec2& p : pts) out.push_back(f.to_local(p));
  return out;
}

TEST(LexRanks, OrdersLexicographically) {
  const std::vector<Vec2> pts{Vec2{2, 0}, Vec2{0, 5}, Vec2{0, -1},
                              Vec2{2, -3}};
  const auto ranks = lex_ranks(pts);
  // Sorted: (0,-1), (0,5), (2,-3), (2,0).
  EXPECT_EQ(ranks[2], 0u);
  EXPECT_EQ(ranks[1], 1u);
  EXPECT_EQ(ranks[3], 2u);
  EXPECT_EQ(ranks[0], 3u);
}

TEST(LexRanks, InvariantUnderTranslationAndScale) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pts = random_points(9, seed);
    const auto base = lex_ranks(pts);
    sim::Rng rng(seed + 100);
    // Translation and positive scaling only (sense of direction fixes the
    // axes; units and origins still differ).
    const sim::Frame f(Vec2{rng.uniform(-5, 5), rng.uniform(-5, 5)}, 0.0,
                       rng.uniform(0.2, 5.0), false);
    EXPECT_EQ(lex_ranks(transform_all(pts, f)), base) << seed;
  }
}

TEST(IdRanks, OrdersById) {
  const std::vector<sim::VisibleId> ids{42, 7, 100, 9};
  const auto ranks = id_ranks(ids);
  EXPECT_EQ(ranks[1], 0u);
  EXPECT_EQ(ranks[3], 1u);
  EXPECT_EQ(ranks[0], 2u);
  EXPECT_EQ(ranks[2], 3u);
}

TEST(HorizonDirection, PointsOutwardFromSecCenter) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pts = random_points(8, seed * 3);
    const geom::Circle sec = geom::smallest_enclosing_circle(pts);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (geom::dist(pts[i], sec.center) < 1e-6) continue;
      const Vec2 h = horizon_direction(pts, i);
      EXPECT_NEAR(h.norm(), 1.0, 1e-9);
      EXPECT_GT(geom::dot(h, pts[i] - sec.center), 0.0);
    }
  }
}

TEST(HorizonDirection, DegenerateCenterIsDeterministicAndInvariant) {
  // Robot 0 exactly at the SEC center of the others.
  std::vector<Vec2> pts{Vec2{0, 0}, Vec2{3, 0}, Vec2{-3, 0}, Vec2{0, 3},
                        Vec2{1, 1}};
  const Vec2 h = horizon_direction(pts, 0);
  EXPECT_NEAR(h.norm(), 1.0, 1e-9);
  // Same rule under a rotated/scaled frame gives the transformed direction.
  const sim::Frame f(Vec2{2, -1}, 1.234, 3.0, false);
  const Vec2 h2 = horizon_direction(transform_all(pts, f), 0);
  const Vec2 expected =
      (f.to_local(pts[0] + h) - f.to_local(pts[0])).normalized();
  EXPECT_NEAR(geom::dist(h2, expected), 0.0, 1e-7);
}

TEST(RelativeNaming, PaperOrdering) {
  // A hand-built configuration: self on the East of the SEC, one robot on
  // the same radius nearer the center, others spread clockwise.
  // SEC of the set below is centered at the origin with radius 5.
  const std::vector<Vec2> pts{
      Vec2{5, 0},    // 0: self, on its own radius (angle 0).
      Vec2{2, 0},    // 1: same radius as self, closer to O -> rank before.
      Vec2{0, -5},   // 2: 90deg clockwise from East (pointing South).
      Vec2{-5, 0},   // 3: 180deg.
      Vec2{0, 5},    // 4: 270deg clockwise.
  };
  const RelativeNaming naming = relative_naming(pts, 0);
  EXPECT_TRUE(geom::nearly_equal(naming.sec_center, Vec2{0, 0}, 1e-7));
  // H_0 points East; robots on it ordered from O: 1 then 0.
  EXPECT_EQ(naming.ranks[1], 0u);
  EXPECT_EQ(naming.ranks[0], 1u);
  EXPECT_EQ(naming.ranks[2], 2u);  // First clockwise radius.
  EXPECT_EQ(naming.ranks[3], 3u);
  EXPECT_EQ(naming.ranks[4], 4u);
}

TEST(RelativeNaming, RanksAreAPermutation) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto pts = random_points(11, seed * 7);
    for (std::size_t self = 0; self < pts.size(); ++self) {
      const auto naming = relative_naming(pts, self);
      std::vector<bool> seen(pts.size(), false);
      for (const std::size_t r : naming.ranks) {
        ASSERT_LT(r, pts.size());
        EXPECT_FALSE(seen[r]);
        seen[r] = true;
      }
    }
  }
}

// The core invariance property: every observer, whatever its frame
// (rotation, scale, translation — same handedness), reconstructs the same
// relative naming of every robot. This is what makes Section 3.4 decodable.
class RelativeNamingInvariance
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RelativeNamingInvariance, SameRanksInAnySameHandedFrame) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto pts = random_points(n, seed * 13 + n);
    sim::Rng rng(seed);
    for (int frame_trial = 0; frame_trial < 4; ++frame_trial) {
      const sim::Frame f(Vec2{rng.uniform(-30, 30), rng.uniform(-30, 30)},
                         rng.uniform(0.0, geom::kTwoPi),
                         rng.uniform(0.2, 5.0), false);
      const auto local = transform_all(pts, f);
      for (std::size_t self = 0; self < n; ++self) {
        EXPECT_EQ(relative_naming(local, self).ranks,
                  relative_naming(pts, self).ranks)
            << "n=" << n << " seed=" << seed << " self=" << self;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RelativeNamingInvariance,
                         ::testing::Values(2, 3, 4, 6, 10, 25));

TEST(RelativeNaming, MirroredFramesAgreeWithEachOther) {
  // Chirality: two LEFT-handed observers agree (even though they disagree
  // with right-handed ones).
  const auto pts = random_points(7, 5);
  const sim::Frame f1(Vec2{1, 2}, 0.7, 2.0, true);
  const sim::Frame f2(Vec2{-3, 0}, 2.9, 0.5, true);
  for (std::size_t self = 0; self < pts.size(); ++self) {
    EXPECT_EQ(relative_naming(transform_all(pts, f1), self).ranks,
              relative_naming(transform_all(pts, f2), self).ranks);
  }
}

TEST(RelativeNaming, SymmetricConfigurationStillRelativelyConsistent) {
  // The paper's Figure 3 point: a rotationally symmetric configuration has
  // no common global naming — but the *relative* naming per robot is still
  // well-defined and computable by everyone.
  std::vector<Vec2> pts;
  for (int i = 0; i < 6; ++i) {
    const double a = geom::kTwoPi * i / 6.0;
    pts.push_back(Vec2{4 * std::cos(a), 4 * std::sin(a)});
  }
  // Under the symmetry, every robot sees the same *pattern* of ranks
  // relative to itself: its own rank equal, and the full rank multiset
  // identical.
  const auto base = relative_naming(pts, 0);
  for (std::size_t self = 1; self < 6; ++self) {
    const auto naming = relative_naming(pts, self);
    EXPECT_EQ(naming.ranks[self], base.ranks[0]);
  }
  // And frame invariance holds here too.
  const sim::Frame f(Vec2{0.5, 0.5}, 1.1, 3.0, false);
  const auto local = transform_all(pts, f);
  for (std::size_t self = 0; self < 6; ++self) {
    EXPECT_EQ(relative_naming(local, self).ranks,
              relative_naming(pts, self).ranks);
  }
}

}  // namespace
}  // namespace stig::proto
