// SVG renderer tests: document well-formedness, coordinate mapping (y-flip,
// fit-to-canvas), element emission, figure composition, file output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "geom/angle.hpp"
#include "sim/rng.hpp"
#include "viz/figures.hpp"
#include "viz/svg.hpp"

namespace stig::viz {
namespace {

std::size_t count_substr(const std::string& hay, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Svg, EmptySceneIsAValidDocument) {
  SvgScene scene;
  const std::string doc = scene.str();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
}

TEST(Svg, EmitsOneElementPerShape) {
  SvgScene scene;
  scene.circle(geom::Vec2{0, 0}, 1.0, Style{});
  scene.line(geom::Vec2{0, 0}, geom::Vec2{1, 1}, Style{});
  scene.dot(geom::Vec2{2, 2}, 0.1, "red");
  scene.text(geom::Vec2{1, 0}, "hello", 10.0);
  const std::string doc = scene.str();
  EXPECT_EQ(count_substr(doc, "<circle"), 2u);  // circle + dot.
  EXPECT_EQ(count_substr(doc, "<line"), 1u);
  EXPECT_EQ(count_substr(doc, "<text"), 1u);
  EXPECT_NE(doc.find("hello"), std::string::npos);
}

TEST(Svg, EscapesTextContent) {
  SvgScene scene;
  scene.text(geom::Vec2{0, 0}, "a<b & \"c\"", 10.0);
  const std::string doc = scene.str();
  EXPECT_NE(doc.find("a&lt;b &amp; &quot;c&quot;"), std::string::npos);
  EXPECT_EQ(doc.find("a<b"), std::string::npos);
}

TEST(Svg, YAxisIsFlipped) {
  // World point with larger y must appear with *smaller* SVG y.
  SvgScene scene;
  scene.dot(geom::Vec2{0, 0}, 0.01, "black");
  scene.dot(geom::Vec2{0, 10}, 0.01, "black");
  const std::string doc = scene.str();
  // Two cy values; the second dot (y=10) must come out above (smaller cy).
  const auto cy1 = doc.find("cy=\"");
  const auto cy2 = doc.find("cy=\"", cy1 + 1);
  ASSERT_NE(cy2, std::string::npos);
  const double v1 = std::stod(doc.substr(cy1 + 4));
  const double v2 = std::stod(doc.substr(cy2 + 4));
  EXPECT_GT(v1, v2);
}

TEST(Svg, FitsCanvas) {
  SvgScene scene(400.0, 10.0);
  scene.dot(geom::Vec2{-100, -100}, 1, "black");
  scene.dot(geom::Vec2{300, 300}, 1, "black");
  const std::string doc = scene.str();
  // Canvas width is bounded by the requested 400 + margins.
  const auto wpos = doc.find("width=\"");
  const double width = std::stod(doc.substr(wpos + 7));
  EXPECT_LE(width, 401.0);
}

TEST(Svg, PolygonAndPolyline) {
  SvgScene scene;
  scene.polygon(geom::ConvexPolygon::rectangle(0, 0, 2, 1), Style{});
  const std::vector<geom::Vec2> path{geom::Vec2{0, 0}, geom::Vec2{1, 2},
                                     geom::Vec2{2, 0}};
  scene.polyline(path, Style{});
  const std::string doc = scene.str();
  EXPECT_EQ(count_substr(doc, "<polygon"), 1u);
  EXPECT_EQ(count_substr(doc, "<polyline"), 1u);
}

TEST(Svg, GranularDrawsDiametersAndLabels) {
  SvgScene scene;
  const geom::Granular g(geom::Vec2{0, 0}, 2.0, 5, geom::Vec2{0, 1});
  scene.granular(g, Style{}, Style{});
  const std::string doc = scene.str();
  EXPECT_EQ(count_substr(doc, "<line"), 5u);   // One per diameter.
  EXPECT_EQ(count_substr(doc, "<text"), 5u);   // One label per diameter.
  EXPECT_EQ(count_substr(doc, "<circle"), 1u); // The disc.
}

TEST(Svg, DashAndStyleAttributesEmitted) {
  SvgScene scene;
  Style s;
  s.stroke = "#123456";
  s.dash = "4 2";
  s.opacity = 0.5;
  scene.circle(geom::Vec2{0, 0}, 1.0, s);
  const std::string doc = scene.str();
  EXPECT_NE(doc.find("stroke=\"#123456\""), std::string::npos);
  EXPECT_NE(doc.find("stroke-dasharray=\"4 2\""), std::string::npos);
  EXPECT_NE(doc.find("opacity=\"0.500\""), std::string::npos);
}

TEST(Svg, WritesFile) {
  SvgScene scene;
  scene.dot(geom::Vec2{0, 0}, 1, "blue");
  const std::string path = ::testing::TempDir() + "stig_viz_test.svg";
  ASSERT_TRUE(scene.write(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, scene.str());
  std::remove(path.c_str());
}

TEST(Figures, DrawSwarmComposesEverything) {
  sim::Rng rng(3);
  std::vector<geom::Vec2> pts;
  while (pts.size() < 6) {
    const geom::Vec2 p{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < 2.0) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  SwarmDrawing what;
  what.voronoi = true;
  what.diameters = 6;
  what.sec = true;
  what.horizon_of = 0;
  what.naming = proto::NamingMode::relative;
  const SvgScene scene = draw_swarm(pts, what);
  const std::string doc = scene.str();
  EXPECT_GE(count_substr(doc, "<polygon"), 6u);          // Voronoi cells.
  EXPECT_GE(count_substr(doc, "<line"), 6u * 6u);        // Diameters.
  EXPECT_GE(count_substr(doc, "<circle"), 6u + 1u + 6u); // Discs+SEC+dots.
}

TEST(Figures, TrajectoriesOnePolylinePerRobot) {
  std::vector<std::vector<geom::Vec2>> history;
  for (int t = 0; t < 10; ++t) {
    history.push_back({geom::Vec2{static_cast<double>(t), 0},
                       geom::Vec2{0, static_cast<double>(t)}});
  }
  SvgScene scene;
  draw_trajectories(scene, history);
  const std::string doc = scene.str();
  EXPECT_EQ(count_substr(doc, "<polyline"), 2u);
}

TEST(Figures, PaletteCycles) {
  EXPECT_EQ(robot_color(0), robot_color(8));
  EXPECT_NE(robot_color(0), robot_color(1));
}

}  // namespace
}  // namespace stig::viz
