// Exit-code documentation drift guard.
//
// The stigsim exit codes live in exactly one place —
// src/core/exit_codes.hpp — and everything else renders or repeats that
// table: `stigsim --help` prints stigsim_exit_code_help() verbatim, the
// README carries a markdown copy, and docs/OBSERVABILITY.md describes the
// codes in prose. This suite parses the README table and the
// OBSERVABILITY section against the header so the three can never drift
// apart again (they did once: the help text, README and docs each grew
// their own wording across PRs 1-3).
//
// STIG_SOURCE_DIR is injected by tests/CMakeLists.txt so the suite can
// read the committed docs no matter where the build tree lives.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/exit_codes.hpp"

namespace stig::cli {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string source_path(const std::string& rel) {
  return std::string(STIG_SOURCE_DIR) + "/" + rel;
}

struct ParsedRow {
  int code;
  std::string summary;
};

/// Parses `| 0 | summary |` markdown rows out of a document.
std::vector<ParsedRow> parse_markdown_table(const std::string& text) {
  std::vector<ParsedRow> rows;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (line.size() < 5 || line[0] != '|') continue;
    // Split "| code | summary |" on the pipes.
    const std::size_t p1 = line.find('|', 1);
    if (p1 == std::string::npos) continue;
    const std::size_t p2 = line.find('|', p1 + 1);
    if (p2 == std::string::npos) continue;
    const auto trim = [](std::string s) {
      const std::size_t b = s.find_first_not_of(" \t");
      const std::size_t e = s.find_last_not_of(" \t");
      return b == std::string::npos ? std::string()
                                    : s.substr(b, e - b + 1);
    };
    const std::string code_cell = trim(line.substr(1, p1 - 1));
    if (code_cell.empty() ||
        code_cell.find_first_not_of("0123456789") != std::string::npos) {
      continue;  // Header, separator, or some other table.
    }
    rows.push_back(ParsedRow{std::stoi(code_cell),
                             trim(line.substr(p1 + 1, p2 - p1 - 1))});
  }
  return rows;
}

TEST(CliExitCodes, HeaderTableIsDense) {
  // Codes 0..5, in order, each with a nonempty summary.
  ASSERT_EQ(kStigsimExitCodes.size(), 6u);
  for (std::size_t i = 0; i < kStigsimExitCodes.size(); ++i) {
    EXPECT_EQ(kStigsimExitCodes[i].code, static_cast<int>(i));
    EXPECT_NE(std::string(kStigsimExitCodes[i].summary), "");
  }
  EXPECT_EQ(kStigsimExitCodes[kExitDelivered].code, 0);
  EXPECT_EQ(kStigsimExitCodes[kExitReproduced].code, 5);
}

TEST(CliExitCodes, HelpRenderingCarriesEveryRow) {
  // stigsim's print_help() streams this string verbatim, so agreement
  // with the header is agreement with --help.
  const std::string help = stigsim_exit_code_help();
  EXPECT_EQ(help.rfind("exit codes:\n", 0), 0u);
  for (const ExitCodeEntry& e : kStigsimExitCodes) {
    const std::string row =
        "  " + std::to_string(e.code) + "  " + e.summary + "\n";
    EXPECT_NE(help.find(row), std::string::npos)
        << "missing row for code " << e.code << ": " << e.summary;
  }
}

TEST(CliExitCodes, ReadmeTableMatchesHeader) {
  const std::string readme = read_file(source_path("README.md"));
  const std::vector<ParsedRow> rows = parse_markdown_table(readme);
  ASSERT_EQ(rows.size(), kStigsimExitCodes.size())
      << "README.md must carry exactly one exit-code table with one row "
         "per code";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].code, kStigsimExitCodes[i].code);
    EXPECT_EQ(rows[i].summary,
              std::string(kStigsimExitCodes[i].summary))
        << "README row for code " << kStigsimExitCodes[i].code
        << " drifted from src/core/exit_codes.hpp";
  }
}

TEST(CliExitCodes, ObservabilityDocCoversEveryCode) {
  const std::string doc =
      read_file(source_path("docs/OBSERVABILITY.md"));
  const std::size_t section = doc.find("## CLI exit codes");
  ASSERT_NE(section, std::string::npos);
  const std::string tail = doc.substr(section);
  // The prose form must mention every code number and the load-bearing
  // words of each outcome.
  for (const ExitCodeEntry& e : kStigsimExitCodes) {
    EXPECT_NE(tail.find("`" + std::to_string(e.code) + "`"),
              std::string::npos)
        << "docs/OBSERVABILITY.md CLI section lost code " << e.code;
  }
  for (const char* word :
       {"delivered", "timeout", "usage", "watchdog", "reproduced"}) {
    EXPECT_NE(tail.find(word), std::string::npos)
        << "docs/OBSERVABILITY.md CLI section lost the \"" << word
        << "\" outcome";
  }
}

}  // namespace
}  // namespace stig::cli
