// GeomCache contract tests: cached geometry is bit-identical to direct
// recomputation across random and degenerate configurations, any single
// robot moving starts a new configuration epoch (fresh key, fresh values),
// and the LRU keeps memory bounded under streaming workloads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geom/convex.hpp"
#include "geom/geom_cache.hpp"
#include "geom/sec.hpp"
#include "geom/voronoi.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace {

using namespace stig;
using geom::Vec2;

std::vector<Vec2> random_points(sim::Rng& rng, std::size_t n) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0)});
  }
  return pts;
}

void expect_matches_direct(geom::GeomCache& cache,
                           const std::vector<Vec2>& pts,
                           const char* what) {
  // Exact (==) comparisons throughout: the cache memoizes the very same
  // functions on the very same coordinates, so results must be bitwise
  // equal — any tolerance here would hide a cache serving stale geometry.
  const geom::Circle direct_sec = geom::smallest_enclosing_circle(pts);
  const geom::Circle& cached_sec = cache.sec(pts);
  EXPECT_EQ(cached_sec.center.x, direct_sec.center.x) << what;
  EXPECT_EQ(cached_sec.center.y, direct_sec.center.y) << what;
  EXPECT_EQ(cached_sec.radius, direct_sec.radius) << what;

  const geom::ConvexPolygon direct_hull = geom::convex_hull(pts);
  const geom::ConvexPolygon& cached_hull = cache.hull(pts);
  ASSERT_EQ(cached_hull.vertices().size(), direct_hull.vertices().size())
      << what;
  for (std::size_t v = 0; v < direct_hull.vertices().size(); ++v) {
    EXPECT_EQ(cached_hull.vertices()[v].x, direct_hull.vertices()[v].x)
        << what;
    EXPECT_EQ(cached_hull.vertices()[v].y, direct_hull.vertices()[v].y)
        << what;
  }

  if (pts.size() >= 2) {
    const std::vector<double>& cached_radii = cache.granular_radii(pts);
    ASSERT_EQ(cached_radii.size(), pts.size()) << what;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      EXPECT_EQ(cached_radii[i], geom::granular_radius(pts, i))
          << what << " robot " << i;
    }

    const geom::VoronoiDiagram direct_vor = geom::VoronoiDiagram::compute(pts);
    const geom::VoronoiDiagram& cached_vor = cache.voronoi(pts);
    ASSERT_EQ(cached_vor.size(), direct_vor.size()) << what;
    for (std::size_t i = 0; i < direct_vor.size(); ++i) {
      const auto& dv = direct_vor.cell(i).polygon.vertices();
      const auto& cv = cached_vor.cell(i).polygon.vertices();
      ASSERT_EQ(cv.size(), dv.size()) << what << " cell " << i;
      for (std::size_t v = 0; v < dv.size(); ++v) {
        EXPECT_EQ(cv[v].x, dv[v].x) << what << " cell " << i;
        EXPECT_EQ(cv[v].y, dv[v].y) << what << " cell " << i;
      }
    }
  }
}

TEST(GeomCache, MatchesDirectOnRandomConfigurations) {
  sim::Rng rng(20260807);
  geom::GeomCache cache;
  for (int cfg = 0; cfg < 1000; ++cfg) {
    const std::size_t n =
        2 + static_cast<std::size_t>(rng.uniform_int(0, 10));
    const std::vector<Vec2> pts = random_points(rng, n);
    expect_matches_direct(cache, pts, "random");
    // A second pass through the same configuration must hit, not recompute.
    const std::uint64_t misses_before = cache.misses();
    (void)cache.sec(pts);
    EXPECT_EQ(cache.misses(), misses_before);
  }
  EXPECT_GT(cache.hits(), 0u);
}

TEST(GeomCache, MatchesDirectOnDegenerateConfigurations) {
  geom::GeomCache cache;

  // Collinear: every point on y = 2x + 1.
  std::vector<Vec2> line;
  for (int i = 0; i < 7; ++i) {
    line.push_back({static_cast<double>(i), 2.0 * i + 1.0});
  }
  expect_matches_direct(cache, line, "collinear");

  // Cocircular: 8 points on a circle of radius 5 — the all-points-support
  // SEC case and the everything-on-the-hull case at once.
  std::vector<Vec2> ring;
  for (int i = 0; i < 8; ++i) {
    const double a = 2.0 * 3.14159265358979323846 * i / 8.0;
    ring.push_back({5.0 * std::cos(a), 5.0 * std::sin(a)});
  }
  expect_matches_direct(cache, ring, "cocircular");

  // Tiny inputs: the n < 3 hull and n == 2 Voronoi edge cases.
  expect_matches_direct(cache, {{1.0, 2.0}, {3.0, 4.0}}, "pair");
}

TEST(GeomCache, SingleRobotMoveStartsNewEpoch) {
  geom::GeomCache cache;
  sim::Rng rng(99);
  std::vector<Vec2> pts = random_points(rng, 6);

  const std::uint64_t hash_before = geom::configuration_hash(pts);
  const geom::Circle sec_before = cache.sec(pts);
  const std::vector<double> radii_before = cache.granular_radii(pts);
  const std::uint64_t misses_before = cache.misses();

  // Even a sub-nanometre move is a new configuration: the key hashes raw
  // coordinate bytes, not a rounded position.
  pts[3].x += 1e-9;
  EXPECT_NE(geom::configuration_hash(pts), hash_before);

  expect_matches_direct(cache, pts, "after move");
  EXPECT_GT(cache.misses(), misses_before) << "move must miss, not hit";

  // The old epoch's values are still served for the old coordinates.
  pts[3].x -= 1e-9;
  const geom::Circle& sec_again = cache.sec(pts);
  EXPECT_EQ(sec_again.center.x, sec_before.center.x);
  EXPECT_EQ(sec_again.center.y, sec_before.center.y);
  EXPECT_EQ(sec_again.radius, sec_before.radius);
  ASSERT_EQ(cache.granular_radii(pts).size(), radii_before.size());
  for (std::size_t i = 0; i < radii_before.size(); ++i) {
    EXPECT_EQ(cache.granular_radii(pts)[i], radii_before[i]);
  }
}

TEST(GeomCache, LruKeepsMemoryBoundedAndRecentEntriesHot) {
  geom::GeomCache cache;
  sim::Rng rng(4242);
  std::vector<std::vector<Vec2>> configs;
  for (int c = 0; c < 20; ++c) {
    configs.push_back(random_points(rng, 5));
    (void)cache.sec(configs.back());
    EXPECT_LE(cache.size(), geom::GeomCache::kCapacity);
  }
  EXPECT_EQ(cache.size(), geom::GeomCache::kCapacity);

  // The most recent configuration is still resident...
  std::uint64_t misses = cache.misses();
  (void)cache.sec(configs.back());
  EXPECT_EQ(cache.misses(), misses);
  // ...and the oldest was evicted.
  misses = cache.misses();
  (void)cache.sec(configs.front());
  EXPECT_EQ(cache.misses(), misses + 1);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(GeomCache, ConfigurationHashIsStableAndOrderSensitive) {
  const std::vector<Vec2> a = {{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<Vec2> b = {{3.0, 4.0}, {1.0, 2.0}};
  EXPECT_EQ(geom::configuration_hash(a), geom::configuration_hash(a));
  // Robot identity matters: the same multiset of positions with swapped
  // indices is a different configuration (granular_radius(i) differs).
  EXPECT_NE(geom::configuration_hash(a), geom::configuration_hash(b));
}

TEST(GeomCache, ThreadLocalWrappersServeTheLocalCache) {
  sim::Rng rng(7);
  const std::vector<Vec2> pts = random_points(rng, 5);
  geom::GeomCache& cache = geom::GeomCache::local();
  const std::uint64_t hits_before = cache.hits();

  const geom::Circle direct = geom::smallest_enclosing_circle(pts);
  const geom::Circle& c1 = geom::cached_sec(pts);
  EXPECT_EQ(c1.radius, direct.radius);
  (void)geom::cached_sec(pts);
  EXPECT_GT(cache.hits(), hits_before);

  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(geom::cached_granular_radius(pts, i),
              geom::granular_radius(pts, i));
  }
}

TEST(GeomCache, CachedGeometryOutlivesEngineEpochWindow) {
  // The engine hands out spans into its epoch ring; those spans die when
  // the epoch leaves the live window (observation_delay + 2 instants). The
  // cache must never retain such a span — each entry owns a copy of the
  // points, so cached geometry stays valid after the source epoch is
  // overwritten.
  class Drifter final : public sim::Robot {
   public:
    void initialize(const sim::Snapshot&) override {}
    geom::Vec2 on_activate(const sim::Snapshot& snap) override {
      return snap.self_robot().position + Vec2{0.25, 0.125};
    }
  };
  std::vector<sim::RobotSpec> specs;
  std::vector<std::unique_ptr<sim::Robot>> programs;
  for (int i = 0; i < 5; ++i) {
    specs.push_back({.position = Vec2{3.0 * i, (i % 2) * 2.0}, .sigma = 1.0});
    programs.push_back(std::make_unique<Drifter>());
  }
  sim::Engine eng(specs, std::move(programs),
                  std::make_unique<sim::SynchronousScheduler>());

  const std::span<const Vec2> t0 = eng.positions();
  const std::vector<Vec2> t0_copy(t0.begin(), t0.end());
  geom::GeomCache cache;
  const geom::VoronoiDiagram& vor = cache.voronoi(t0);
  const std::vector<double>& radii = cache.granular_radii(t0);
  const sim::Time e0 = eng.config_epoch();

  // Step past the ring capacity: epoch 0's slot is overwritten with newer
  // configurations (every robot moves every instant).
  for (int s = 0; s < 4; ++s) eng.step();
  ASSERT_FALSE(eng.epoch_live(e0));

  // The cached values must match a fresh computation on an owned copy of
  // the t0 coordinates — bitwise, since the cache memoized the same
  // functions on the same inputs.
  const geom::VoronoiDiagram direct = geom::VoronoiDiagram::compute(t0_copy);
  ASSERT_EQ(vor.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    const auto& dv = direct.cell(i).polygon.vertices();
    const auto& cv = vor.cell(i).polygon.vertices();
    ASSERT_EQ(cv.size(), dv.size()) << "cell " << i;
    for (std::size_t v = 0; v < dv.size(); ++v) {
      EXPECT_EQ(cv[v].x, dv[v].x) << "cell " << i;
      EXPECT_EQ(cv[v].y, dv[v].y) << "cell " << i;
    }
  }
  for (std::size_t i = 0; i < t0_copy.size(); ++i) {
    EXPECT_EQ(radii[i], geom::granular_radius(t0_copy, i));
  }
  // And looking the t0 configuration up again (by value) hits the entry.
  const std::uint64_t misses = cache.misses();
  (void)cache.voronoi(t0_copy);
  EXPECT_EQ(cache.misses(), misses);
}

TEST(ConvexHull, SpanOverloadBasics) {
  // Square plus an interior point: the hull is the square alone.
  const std::vector<Vec2> sq = {
      {0.0, 0.0}, {4.0, 0.0}, {4.0, 4.0}, {0.0, 4.0}, {2.0, 1.0}};
  EXPECT_EQ(geom::convex_hull(sq).vertices().size(), 4u);

  // Collinear points collapse to the two extremes.
  const std::vector<Vec2> line = {
      {0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {4.0, 4.0}};
  EXPECT_EQ(geom::convex_hull(line).vertices().size(), 2u);

  // Fewer than 3 points pass through unchanged.
  const std::vector<Vec2> two = {{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_EQ(geom::convex_hull(two).vertices().size(), 2u);
}

}  // namespace
