// The fuzz harness itself: deterministic sampling, oracle execution,
// shrinking, repro round-trips, and schedule record/replay identity.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>

#include "fuzz/fuzz_config.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/shrink.hpp"
#include "sim/schedule_log.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace stig;

TEST(FuzzConfig, SamplingIsDeterministic) {
  const fuzz::FuzzConfig a = fuzz::sample_config(12345);
  const fuzz::FuzzConfig b = fuzz::sample_config(12345);
  EXPECT_EQ(fuzz::canonical(a), fuzz::canonical(b));
  EXPECT_EQ(fuzz::config_hash(a), fuzz::config_hash(b));
  const fuzz::FuzzConfig c = fuzz::sample_config(12346);
  EXPECT_NE(fuzz::canonical(a), fuzz::canonical(c));
}

TEST(FuzzConfig, ScatterMatchesStigsimRecipe) {
  const auto pts = fuzz::scatter(9, 5);
  ASSERT_EQ(pts.size(), 5u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_LE(std::abs(pts[i].x), 30.0);
    EXPECT_LE(std::abs(pts[i].y), 30.0);
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_GE(geom::dist(pts[i], pts[j]), 3.0);
    }
  }
  // Same seed, same geometry — the repro file never stores positions.
  const auto again = fuzz::scatter(9, 5);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].x, again[i].x);
    EXPECT_EQ(pts[i].y, again[i].y);
  }
}

TEST(FuzzRunCase, DeterministicKindAndScheduleDigest) {
  const fuzz::FuzzConfig cfg = fuzz::sample_config(3);
  const fuzz::CaseResult a = fuzz::run_case(cfg);
  const fuzz::CaseResult b = fuzz::run_case(cfg);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest);
  EXPECT_EQ(a.schedule_instants, b.schedule_instants);
}

TEST(FuzzRunCase, CorpusSeedsPassAllOracles) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    const fuzz::FuzzConfig cfg = fuzz::sample_config(seed);
    const fuzz::CaseResult r = fuzz::run_case(cfg);
    EXPECT_EQ(r.kind, fuzz::FailureKind::none)
        << "seed " << seed << ": " << fuzz::failure_kind_name(r.kind)
        << " — " << r.detail;
  }
}

TEST(FuzzShrink, InjectedFramingFaultShrinksToTinyRepro) {
  // Arm the deliberate bug the acceptance pipeline uses: the receiver
  // misreads its 10th decoded bit. The CRC must reject the frame and the
  // harness must find, then shrink, the failure.
  fuzz::FuzzConfig cfg = fuzz::sample_config(42);
  cfg.payload = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04};
  cfg.max_instants = 0;  // Recompute the budget for the bigger payload.
  cfg.max_instants = fuzz::instant_budget(cfg);
  cfg.fault = fuzz::FaultSpec{1, 10};
  const fuzz::CaseResult original = fuzz::run_case(cfg);
  ASSERT_NE(original.kind, fuzz::FailureKind::none);

  const fuzz::ShrinkResult s = fuzz::shrink(cfg, original, 200);
  EXPECT_EQ(s.result.kind, original.kind);
  EXPECT_LE(s.config.payload.size(), 2u);
  EXPECT_EQ(s.config.n, 2u);
  // The minimal config still fails the same way when re-run from scratch.
  const fuzz::CaseResult again = fuzz::run_case(s.config);
  EXPECT_EQ(again.kind, original.kind);
  EXPECT_EQ(again.schedule_digest, s.result.schedule_digest);
}

TEST(FuzzRepro, JsonRoundTripPreservesEveryField) {
  fuzz::Repro r;
  r.config = fuzz::sample_config(77);
  r.config.payload = {0x00, 0xff, 0x41};
  r.config.fault = fuzz::FaultSpec{1, 23};
  r.kind = fuzz::FailureKind::watchdog_violation;
  r.detail = "asyncn: \"framing\" violated\n at instant 7";
  r.schedule_digest = 0xdeadbeefcafef00dULL;
  r.schedule_instants = 321;

  const std::string path = testing::TempDir() + "fuzz_repro_rt.json";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open());
    fuzz::write_repro_json(out, r);
  }
  std::string error;
  const auto back = fuzz::load_repro(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->kind, r.kind);
  EXPECT_EQ(back->detail, r.detail);
  EXPECT_EQ(back->schedule_digest, r.schedule_digest);
  EXPECT_EQ(back->schedule_instants, r.schedule_instants);
  EXPECT_EQ(fuzz::canonical(back->config), fuzz::canonical(r.config));
  ASSERT_TRUE(back->config.fault.has_value());
  EXPECT_EQ(back->config.fault->robot, 1u);
  EXPECT_EQ(back->config.fault->nth_bit, 23u);
  std::remove(path.c_str());
}

TEST(FuzzRepro, LoadRejectsMalformedFiles) {
  std::string error;
  EXPECT_FALSE(fuzz::load_repro("/nonexistent/repro.json", &error));
  const std::string path = testing::TempDir() + "fuzz_repro_bad.json";
  {
    std::ofstream out(path);
    out << "{\"kind\": \"timeout\", \"n\": 2}\n";  // No seed/protocol.
  }
  EXPECT_FALSE(fuzz::load_repro(path, &error));
  EXPECT_NE(error.find("missing"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(FuzzSchedule, RecordThenReplayIsBitIdentical) {
  sim::ScheduleLog recorded;
  {
    sim::RecordingScheduler rec(
        std::make_unique<sim::BernoulliScheduler>(0.4, 11, 64), &recorded);
    for (sim::Time t = 0; t < 500; ++t) (void)rec.activate(t, 4);
  }
  ASSERT_EQ(recorded.instants(), 500u);

  sim::ScheduleLog replayed;
  {
    sim::RecordingScheduler rec(
        std::make_unique<sim::ReplayScheduler>(&recorded), &replayed);
    for (sim::Time t = 0; t < 500; ++t) (void)rec.activate(t, 4);
  }
  EXPECT_EQ(recorded.digest(), replayed.digest());
  EXPECT_EQ(recorded.sets, replayed.sets);

  // Past the end of the log the replay falls back to all-active.
  sim::ReplayScheduler tail(&recorded);
  for (sim::Time t = 0; t < 500; ++t) (void)tail.activate(t, 4);
  const sim::ActivationSet past = tail.activate(500, 4);
  EXPECT_EQ(past, sim::ActivationSet(4, true));
}

TEST(FuzzSchedule, ChatNetworkHonorsRecordAndReplayHooks) {
  const auto pts = fuzz::scatter(21, 2);
  core::ChatNetworkOptions opt;
  opt.synchrony = core::Synchrony::asynchronous;
  opt.scheduler = core::SchedulerKind::bernoulli;
  opt.seed = 21;
  const std::vector<std::uint8_t> payload{0x68, 0x69};

  sim::ScheduleLog first;
  opt.record_schedule = &first;
  core::ChatNetwork a(pts, opt);
  a.send(0, 1, payload);
  ASSERT_TRUE(a.run_until_quiescent(200'000));
  a.run(512);

  // Replaying the recorded schedule reproduces it exactly (and the same
  // delivery), even though the replay run never samples the scheduler.
  sim::ScheduleLog second;
  opt.record_schedule = &second;
  opt.replay_schedule = &first;
  core::ChatNetwork b(pts, opt);
  b.send(0, 1, payload);
  ASSERT_TRUE(b.run_until_quiescent(200'000));
  b.run(512);
  ASSERT_EQ(first.instants(), second.instants());
  EXPECT_EQ(first.digest(), second.digest());
  ASSERT_EQ(b.received(1).size(), 1u);
  EXPECT_EQ(b.received(1)[0].payload, payload);
}

TEST(FuzzNames, FailureKindNamesRoundTrip) {
  for (fuzz::FailureKind k :
       {fuzz::FailureKind::payload_mismatch,
        fuzz::FailureKind::differential_mismatch,
        fuzz::FailureKind::watchdog_violation, fuzz::FailureKind::timeout,
        fuzz::FailureKind::crash}) {
    EXPECT_EQ(fuzz::failure_kind_from_name(fuzz::failure_kind_name(k)), k);
  }
  EXPECT_EQ(fuzz::failure_kind_from_name("nonsense"),
            fuzz::FailureKind::none);
}

}  // namespace
