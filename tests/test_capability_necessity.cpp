// Necessity tests: the paper's capability assumptions are not decoration —
// violating them breaks the protocols. Each test builds the engine directly
// (ChatNetwork enforces consistent capabilities, so we go underneath it) and
// shows that breaking chirality or sense of direction misroutes or destroys
// messages, while the matching positive control delivers.
#include <gtest/gtest.h>

#include "encode/bits.hpp"
#include "proto/sync2.hpp"
#include "proto/sync_sliced.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace stig {
namespace {

using geom::Vec2;

std::vector<Vec2> pentagon() {
  std::vector<Vec2> pts;
  for (int i = 0; i < 5; ++i) {
    const double a = geom::kTwoPi * i / 5.0 + 0.37;  // Not axis-aligned.
    pts.push_back(Vec2{9 * std::cos(a) + 0.3 * i, 9 * std::sin(a)});
  }
  return pts;
}

struct SlicedWorld {
  std::vector<proto::SyncSlicedRobot*> robots;
  std::unique_ptr<sim::Engine> engine;
};

/// Builds a sliced-protocol world with per-robot frame control.
SlicedWorld make_sliced(const std::vector<Vec2>& pts,
                        proto::NamingMode naming,
                        const std::vector<double>& rotations,
                        const std::vector<bool>& mirrored) {
  SlicedWorld w;
  std::vector<sim::RobotSpec> specs;
  std::vector<std::unique_ptr<sim::Robot>> programs;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    sim::RobotSpec s;
    s.position = pts[i];
    s.sigma = 0.25;
    s.frame_rotation = rotations[i];
    s.frame_mirrored = mirrored[i];
    specs.push_back(s);
    proto::SyncSlicedOptions o;
    o.naming = naming;
    o.sigma_local = 0.25;
    auto r = std::make_unique<proto::SyncSlicedRobot>(o);
    w.robots.push_back(r.get());
    programs.push_back(std::move(r));
  }
  w.engine = std::make_unique<sim::Engine>(
      std::move(specs), std::move(programs),
      std::make_unique<sim::SynchronousScheduler>());
  return w;
}

/// Runs until the sender drains its outbox, then reports whether the
/// intended receiver got exactly the payload.
bool delivered(SlicedWorld& w, std::size_t sender_idx,
               std::size_t receiver_slot_on_sender,
               const std::vector<std::uint8_t>& payload,
               proto::SyncSlicedRobot* receiver) {
  w.robots[sender_idx]->send_message(receiver_slot_on_sender, payload);
  for (int t = 0;
       t < 100000 && !w.robots[sender_idx]->send_queue_empty(); ++t) {
    w.engine->step();
  }
  w.engine->step();
  w.engine->step();
  for (auto& m : receiver->take_inbox()) {
    if (m.payload == payload) return true;
  }
  return false;
}

TEST(Necessity, ChiralityRequiredForRelativeNaming) {
  const auto pts = pentagon();
  const auto payload = encode::bytes_of("chir");
  const std::vector<double> rot{0.5, 1.1, 2.9, 4.0, 0.1};

  // Positive control: all right-handed (chirality holds), arbitrary
  // rotations — relative naming delivers.
  {
    SlicedWorld w = make_sliced(pts, proto::NamingMode::relative, rot,
                                {false, false, false, false, false});
    // Address "the robot at pts[3]": its t0 index in the sender's snapshot
    // -> its slot in the sender's labeling.
    const auto order = w.engine->initial_observation_order(0);
    const auto t0_index = static_cast<std::size_t>(
        std::find(order.begin(), order.end(), 3u) - order.begin());
    const std::size_t slot = w.robots[0]->slot_of_t0_index(t0_index);
    EXPECT_TRUE(delivered(w, 0, slot, payload, w.robots[3]));
  }

  // Violation: one robot left-handed among right-handed peers. Its notion
  // of "clockwise" is reversed, so the labeling it reconstructs for others
  // (and they for it) disagrees: the message must NOT arrive at the
  // intended robot.
  {
    SlicedWorld w = make_sliced(pts, proto::NamingMode::relative, rot,
                                {false, false, false, true, false});
    const auto order = w.engine->initial_observation_order(0);
    const auto t0_index = static_cast<std::size_t>(
        std::find(order.begin(), order.end(), 3u) - order.begin());
    const std::size_t slot = w.robots[0]->slot_of_t0_index(t0_index);
    EXPECT_FALSE(delivered(w, 0, slot, payload, w.robots[3]))
        << "a robot with opposite handedness must not decode correctly";
  }
}

TEST(Necessity, SenseOfDirectionRequiredForLexicographicNaming) {
  const auto pts = pentagon();
  const auto payload = encode::bytes_of("nsew");

  // Positive control: all rotations equal (a common compass, even if not
  // global North) — lexicographic naming delivers.
  {
    SlicedWorld w =
        make_sliced(pts, proto::NamingMode::lexicographic,
                    {0.7, 0.7, 0.7, 0.7, 0.7},
                    {false, false, false, false, false});
    const auto order = w.engine->initial_observation_order(1);
    const auto t0_index = static_cast<std::size_t>(
        std::find(order.begin(), order.end(), 4u) - order.begin());
    const std::size_t slot = w.robots[1]->slot_of_t0_index(t0_index);
    EXPECT_TRUE(delivered(w, 1, slot, payload, w.robots[4]));
  }

  // Violation: one robot's compass is rotated ~90 degrees. Its
  // lexicographic order of the configuration differs, so the shared
  // labeling assumption collapses.
  {
    SlicedWorld w =
        make_sliced(pts, proto::NamingMode::lexicographic,
                    {0.7, 0.7, 0.7, 0.7, 0.7 + geom::kPi / 2},
                    {false, false, false, false, false});
    const auto order = w.engine->initial_observation_order(1);
    const auto t0_index = static_cast<std::size_t>(
        std::find(order.begin(), order.end(), 4u) - order.begin());
    const std::size_t slot = w.robots[1]->slot_of_t0_index(t0_index);
    EXPECT_FALSE(delivered(w, 1, slot, payload, w.robots[4]))
        << "a robot with a skewed compass must not receive correctly";
  }
}

TEST(Necessity, Sync2NeedsChiralityForBitPolarity) {
  const auto payload = encode::bytes_of("lr");
  const auto run_pair = [&](bool mirror_receiver) {
    std::vector<sim::RobotSpec> specs{
        {.position = Vec2{0, 0}, .sigma = 0.25},
        {.position = Vec2{6, 2},
         .sigma = 0.25,
         .frame_mirrored = mirror_receiver}};
    proto::Sync2Options o;
    o.sigma_local = 0.25;
    auto a = std::make_unique<proto::Sync2Robot>(o);
    auto b = std::make_unique<proto::Sync2Robot>(o);
    auto* sender = a.get();
    auto* receiver = b.get();
    std::vector<std::unique_ptr<sim::Robot>> programs;
    programs.push_back(std::move(a));
    programs.push_back(std::move(b));
    sim::Engine engine(specs, std::move(programs),
                       std::make_unique<sim::SynchronousScheduler>());
    sender->send_message(1, payload);
    for (int t = 0; t < 100000 && !sender->send_queue_empty(); ++t) {
      engine.step();
    }
    engine.step();
    engine.step();
    for (auto& m : receiver->take_inbox()) {
      if (m.payload == payload) return true;
    }
    return false;
  };
  EXPECT_TRUE(run_pair(false));
  // An opposite-handed receiver reads every bit inverted: the frame's CRC
  // rejects it (or the length field explodes) — nothing correct arrives.
  EXPECT_FALSE(run_pair(true))
      << "opposite handedness flips right/left and must garble the stream";
}

}  // namespace
}  // namespace stig
