// Geometry property sweeps: half-plane clipping cross-checked against point
// sampling, Voronoi bisector membership, angle algebra, SEC vs brute force
// on small sets.
#include <gtest/gtest.h>

#include "geom/angle.hpp"
#include "geom/convex.hpp"
#include "geom/sec.hpp"
#include "geom/voronoi.hpp"
#include "sim/rng.hpp"

namespace stig::geom {
namespace {

class ClipPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClipPropertyTest, ClippedPolygonMatchesPointMembership) {
  sim::Rng rng(GetParam() * 67);
  ConvexPolygon poly = ConvexPolygon::rectangle(-10, -10, 10, 10);
  std::vector<HalfPlane> hps;
  for (int k = 0; k < 5; ++k) {
    const Vec2 p{rng.uniform(-6, 6), rng.uniform(-6, 6)};
    const double a = rng.uniform(0.0, kTwoPi);
    hps.push_back(HalfPlane{Line{p, Vec2{std::cos(a), std::sin(a)}}});
    poly = poly.clipped(hps.back());
  }
  // Every sampled point: inside the polygon iff inside all half-planes
  // (within tolerance of the boundary, where either answer is acceptable).
  for (int s = 0; s < 400; ++s) {
    const Vec2 q{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    bool in_all = true;
    double min_margin = 1e18;
    for (const HalfPlane& hp : hps) {
      const double off = hp.boundary.signed_offset(q);
      in_all = in_all && off >= 0.0;
      min_margin = std::min(min_margin, std::fabs(off));
    }
    min_margin = std::min({min_margin, 10.0 - std::fabs(q.x),
                           10.0 - std::fabs(q.y)});
    if (min_margin < 1e-6) continue;  // Too close to a boundary to judge.
    EXPECT_EQ(poly.contains(q), in_all)
        << "q=(" << q.x << "," << q.y << ") seed=" << GetParam();
  }
  // Clipping never increases area.
  EXPECT_LE(poly.area(), 400.0 + 1e-9);
}

TEST_P(ClipPropertyTest, ClipOrderIrrelevant) {
  sim::Rng rng(GetParam() * 41);
  std::vector<HalfPlane> hps;
  for (int k = 0; k < 4; ++k) {
    const Vec2 p{rng.uniform(-4, 4), rng.uniform(-4, 4)};
    const double a = rng.uniform(0.0, kTwoPi);
    hps.push_back(HalfPlane{Line{p, Vec2{std::cos(a), std::sin(a)}}});
  }
  const ConvexPolygon box = ConvexPolygon::rectangle(-10, -10, 10, 10);
  const ConvexPolygon fwd = intersect_halfplanes(box, hps);
  std::reverse(hps.begin(), hps.end());
  const ConvexPolygon rev = intersect_halfplanes(box, hps);
  EXPECT_NEAR(fwd.area(), rev.area(), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClipPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(VoronoiProperty, CellPointsAreNearestToTheirSite) {
  sim::Rng rng(7);
  std::vector<Vec2> sites;
  for (int i = 0; i < 15; ++i) {
    sites.push_back(Vec2{rng.uniform(-20, 20), rng.uniform(-20, 20)});
  }
  const VoronoiDiagram vd = VoronoiDiagram::compute(sites);
  for (const VoronoiCell& cell : vd.cells()) {
    // Sample the cell via vertex/centroid mixtures.
    const Vec2 c = cell.polygon.centroid();
    for (const Vec2& v : cell.polygon.vertices()) {
      const Vec2 q = midpoint(c, v);  // Strictly interior-ish point.
      for (std::size_t j = 0; j < sites.size(); ++j) {
        if (j == cell.site_index) continue;
        EXPECT_LE(dist(q, cell.site), dist(q, sites[j]) + 1e-7)
            << "cell " << cell.site_index << " vs site " << j;
      }
    }
  }
}

TEST(VoronoiProperty, BisectorEquidistance) {
  sim::Rng rng(9);
  for (int t = 0; t < 200; ++t) {
    const Vec2 a{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 b{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    if (dist(a, b) < 0.1) continue;
    const Line bis = perpendicular_bisector(a, b);
    const Vec2 p = bis.point + bis.dir.normalized() * rng.uniform(-20, 20);
    EXPECT_NEAR(dist(p, a), dist(p, b), 1e-9);
    // closer_halfplane(a, b) contains a, not b.
    const HalfPlane hp = closer_halfplane(a, b);
    EXPECT_TRUE(hp.contains(a));
    EXPECT_FALSE(hp.contains(b));
  }
}

TEST(SecProperty, MatchesBruteForceOnTriples) {
  // For <= 3 points the SEC is directly enumerable: check Welzl against it.
  sim::Rng rng(11);
  for (int t = 0; t < 300; ++t) {
    const std::vector<Vec2> pts{
        Vec2{rng.uniform(-5, 5), rng.uniform(-5, 5)},
        Vec2{rng.uniform(-5, 5), rng.uniform(-5, 5)},
        Vec2{rng.uniform(-5, 5), rng.uniform(-5, 5)}};
    const Circle welzl = smallest_enclosing_circle(pts);
    // Brute force: best of the three diameter circles and the circumcircle.
    double best = 1e18;
    const auto consider = [&](const Circle& c) {
      for (const Vec2& p : pts) {
        if (!c.contains(p, 1e-9)) return;
      }
      best = std::min(best, c.radius);
    };
    consider(circle_from(pts[0], pts[1]));
    consider(circle_from(pts[0], pts[2]));
    consider(circle_from(pts[1], pts[2]));
    if (const auto cc = circumcircle(pts[0], pts[1], pts[2])) consider(*cc);
    EXPECT_NEAR(welzl.radius, best, 1e-7) << "t=" << t;
  }
}

TEST(SecProperty, TwoBoundaryDegenerateFallbackKeepsPrefixPoints) {
  // Regression for the collinear-triple fallback in the two-boundary-points
  // subproblem. With boundary pair p, q nearly collinear with a later
  // prefix point v, the pre-fix fallback rebuilt the circle from a point
  // pair: processing B first grew the circle to cover it, and the fallback
  // on v then *shrank* the circle back to the (p, v) diameter — excluding
  // B, a point the contract says must stay covered.
  const Vec2 p{0.0, 0.0};
  const Vec2 q{12.0, 1e-12};
  const std::vector<Vec2> prefix{Vec2{6.0, 7.0}, Vec2{13.0, -1e-12}};
  const Circle c = circle_with_two_boundary_points(prefix, prefix.size(),
                                                   p, q);
  EXPECT_TRUE(c.contains(p, 1e-7));
  EXPECT_TRUE(c.contains(q, 1e-7));
  for (const Vec2& v : prefix) {
    EXPECT_TRUE(c.contains(v, 1e-7))
        << "(" << v.x << "," << v.y << ") escaped the two-boundary circle";
  }
}

TEST(SecProperty, CollinearSetsContainAllPoints) {
  // Collinear inputs (with duplicates and near-collinear jitter) drive the
  // degenerate circumcircle fallback; the SEC must still contain every
  // input point, with the farthest pair (nearly) on the boundary.
  sim::Rng rng(19);
  for (int t = 0; t < 400; ++t) {
    const Vec2 origin{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const double angle = rng.uniform(0.0, kTwoPi);
    const Vec2 dir{std::cos(angle), std::sin(angle)};
    const std::size_t count = 2 + rng.uniform_int(0, 8);
    std::vector<Vec2> pts;
    for (std::size_t i = 0; i < count; ++i) {
      Vec2 v = origin + dir * rng.uniform(-20, 20);
      if (rng.flip(0.3)) {
        // Jitter below the collinearity tolerance keeps the degenerate
        // branch in play while exercising inexact arithmetic.
        v += dir.perp_ccw() * rng.uniform(-1e-10, 1e-10);
      }
      pts.push_back(v);
      if (rng.flip(0.25)) pts.push_back(v);  // Duplicate.
    }
    const Circle sec = smallest_enclosing_circle(pts);
    double span = 0.0;
    for (const Vec2& a : pts) {
      EXPECT_TRUE(sec.contains(a, 1e-7))
          << "t=" << t << ": (" << a.x << "," << a.y << ") outside SEC";
      for (const Vec2& b : pts) span = std::max(span, dist(a, b));
    }
    // For a collinear set the SEC is the farthest pair's diameter circle.
    EXPECT_NEAR(sec.radius, span / 2.0, 1e-7) << "t=" << t;
    // The support set (boundary points) names that farthest pair.
    EXPECT_GE(sec_support(pts, sec).size(), span > 1e-9 ? 2u : 1u)
        << "t=" << t;
  }
}

TEST(SecProperty, DuplicatePointsCollapseToPairCircle) {
  const Vec2 a{3.0, -2.0};
  const Vec2 b{-1.0, 5.0};
  // All-equal input: a zero circle at the point.
  const std::vector<Vec2> same(5, a);
  const Circle c0 = smallest_enclosing_circle(same);
  EXPECT_NEAR(c0.radius, 0.0, 1e-9);
  EXPECT_TRUE(c0.contains(a, 1e-9));
  // Two distinct points, heavily duplicated: the (a, b) diameter circle,
  // with every duplicate on the boundary.
  std::vector<Vec2> pair{a, b, a, a, b, a, b, b, a};
  const Circle c1 = smallest_enclosing_circle(pair);
  EXPECT_NEAR(c1.radius, dist(a, b) / 2.0, 1e-9);
  EXPECT_TRUE(c1.contains(a, 1e-9));
  EXPECT_TRUE(c1.contains(b, 1e-9));
  EXPECT_EQ(sec_support(pair, c1).size(), pair.size());
}

TEST(AngleProperty, ClockwiseAnglesAddUpAroundTheCircle) {
  sim::Rng rng(13);
  for (int t = 0; t < 200; ++t) {
    const double a = rng.uniform(0.0, kTwoPi);
    const double b = rng.uniform(0.0, kTwoPi);
    const Vec2 u{std::cos(a), std::sin(a)};
    const Vec2 v{std::cos(b), std::sin(b)};
    const double uv = clockwise_angle(u, v);
    const double vu = clockwise_angle(v, u);
    if (uv > 1e-9 && vu > 1e-9) {
      EXPECT_NEAR(uv + vu, kTwoPi, 1e-9);
    }
    EXPECT_NEAR(counterclockwise_angle(u, v), normalize_angle(kTwoPi - uv),
                1e-9);
  }
}

TEST(AngleProperty, MirroringReversesClockwise) {
  sim::Rng rng(15);
  for (int t = 0; t < 200; ++t) {
    const Vec2 u{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec2 v{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    if (u.norm() < 0.1 || v.norm() < 0.1) continue;
    const Vec2 mu{-u.x, u.y};
    const Vec2 mv{-v.x, v.y};
    const double orig = clockwise_angle(u, v);
    const double mirrored = clockwise_angle(mu, mv);
    if (orig > 1e-9 && orig < kTwoPi - 1e-9) {
      EXPECT_NEAR(mirrored, kTwoPi - orig, 1e-9);
    }
  }
}

TEST(ConvexProperty, CentroidInsidePolygon) {
  sim::Rng rng(17);
  for (int t = 0; t < 50; ++t) {
    ConvexPolygon poly = ConvexPolygon::rectangle(-8, -8, 8, 8);
    for (int k = 0; k < 4; ++k) {
      const Vec2 p{rng.uniform(-5, 5), rng.uniform(-5, 5)};
      const double a = rng.uniform(0.0, kTwoPi);
      poly = poly.clipped(HalfPlane{Line{p, Vec2{std::cos(a), std::sin(a)}}});
      if (poly.empty()) break;
    }
    if (poly.empty() || poly.area() < 1e-6) continue;
    EXPECT_TRUE(poly.contains(poly.centroid(), 1e-7));
    EXPECT_GE(poly.distance_to_boundary(poly.centroid()), 0.0);
  }
}

}  // namespace
}  // namespace stig::geom
