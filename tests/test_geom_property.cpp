// Geometry property sweeps: half-plane clipping cross-checked against point
// sampling, Voronoi bisector membership, angle algebra, SEC vs brute force
// on small sets.
#include <gtest/gtest.h>

#include "geom/angle.hpp"
#include "geom/convex.hpp"
#include "geom/sec.hpp"
#include "geom/voronoi.hpp"
#include "sim/rng.hpp"

namespace stig::geom {
namespace {

class ClipPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClipPropertyTest, ClippedPolygonMatchesPointMembership) {
  sim::Rng rng(GetParam() * 67);
  ConvexPolygon poly = ConvexPolygon::rectangle(-10, -10, 10, 10);
  std::vector<HalfPlane> hps;
  for (int k = 0; k < 5; ++k) {
    const Vec2 p{rng.uniform(-6, 6), rng.uniform(-6, 6)};
    const double a = rng.uniform(0.0, kTwoPi);
    hps.push_back(HalfPlane{Line{p, Vec2{std::cos(a), std::sin(a)}}});
    poly = poly.clipped(hps.back());
  }
  // Every sampled point: inside the polygon iff inside all half-planes
  // (within tolerance of the boundary, where either answer is acceptable).
  for (int s = 0; s < 400; ++s) {
    const Vec2 q{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    bool in_all = true;
    double min_margin = 1e18;
    for (const HalfPlane& hp : hps) {
      const double off = hp.boundary.signed_offset(q);
      in_all = in_all && off >= 0.0;
      min_margin = std::min(min_margin, std::fabs(off));
    }
    min_margin = std::min({min_margin, 10.0 - std::fabs(q.x),
                           10.0 - std::fabs(q.y)});
    if (min_margin < 1e-6) continue;  // Too close to a boundary to judge.
    EXPECT_EQ(poly.contains(q), in_all)
        << "q=(" << q.x << "," << q.y << ") seed=" << GetParam();
  }
  // Clipping never increases area.
  EXPECT_LE(poly.area(), 400.0 + 1e-9);
}

TEST_P(ClipPropertyTest, ClipOrderIrrelevant) {
  sim::Rng rng(GetParam() * 41);
  std::vector<HalfPlane> hps;
  for (int k = 0; k < 4; ++k) {
    const Vec2 p{rng.uniform(-4, 4), rng.uniform(-4, 4)};
    const double a = rng.uniform(0.0, kTwoPi);
    hps.push_back(HalfPlane{Line{p, Vec2{std::cos(a), std::sin(a)}}});
  }
  const ConvexPolygon box = ConvexPolygon::rectangle(-10, -10, 10, 10);
  const ConvexPolygon fwd = intersect_halfplanes(box, hps);
  std::reverse(hps.begin(), hps.end());
  const ConvexPolygon rev = intersect_halfplanes(box, hps);
  EXPECT_NEAR(fwd.area(), rev.area(), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClipPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(VoronoiProperty, CellPointsAreNearestToTheirSite) {
  sim::Rng rng(7);
  std::vector<Vec2> sites;
  for (int i = 0; i < 15; ++i) {
    sites.push_back(Vec2{rng.uniform(-20, 20), rng.uniform(-20, 20)});
  }
  const VoronoiDiagram vd = VoronoiDiagram::compute(sites);
  for (const VoronoiCell& cell : vd.cells()) {
    // Sample the cell via vertex/centroid mixtures.
    const Vec2 c = cell.polygon.centroid();
    for (const Vec2& v : cell.polygon.vertices()) {
      const Vec2 q = midpoint(c, v);  // Strictly interior-ish point.
      for (std::size_t j = 0; j < sites.size(); ++j) {
        if (j == cell.site_index) continue;
        EXPECT_LE(dist(q, cell.site), dist(q, sites[j]) + 1e-7)
            << "cell " << cell.site_index << " vs site " << j;
      }
    }
  }
}

TEST(VoronoiProperty, BisectorEquidistance) {
  sim::Rng rng(9);
  for (int t = 0; t < 200; ++t) {
    const Vec2 a{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const Vec2 b{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    if (dist(a, b) < 0.1) continue;
    const Line bis = perpendicular_bisector(a, b);
    const Vec2 p = bis.point + bis.dir.normalized() * rng.uniform(-20, 20);
    EXPECT_NEAR(dist(p, a), dist(p, b), 1e-9);
    // closer_halfplane(a, b) contains a, not b.
    const HalfPlane hp = closer_halfplane(a, b);
    EXPECT_TRUE(hp.contains(a));
    EXPECT_FALSE(hp.contains(b));
  }
}

TEST(SecProperty, MatchesBruteForceOnTriples) {
  // For <= 3 points the SEC is directly enumerable: check Welzl against it.
  sim::Rng rng(11);
  for (int t = 0; t < 300; ++t) {
    const std::vector<Vec2> pts{
        Vec2{rng.uniform(-5, 5), rng.uniform(-5, 5)},
        Vec2{rng.uniform(-5, 5), rng.uniform(-5, 5)},
        Vec2{rng.uniform(-5, 5), rng.uniform(-5, 5)}};
    const Circle welzl = smallest_enclosing_circle(pts);
    // Brute force: best of the three diameter circles and the circumcircle.
    double best = 1e18;
    const auto consider = [&](const Circle& c) {
      for (const Vec2& p : pts) {
        if (!c.contains(p, 1e-9)) return;
      }
      best = std::min(best, c.radius);
    };
    consider(circle_from(pts[0], pts[1]));
    consider(circle_from(pts[0], pts[2]));
    consider(circle_from(pts[1], pts[2]));
    if (const auto cc = circumcircle(pts[0], pts[1], pts[2])) consider(*cc);
    EXPECT_NEAR(welzl.radius, best, 1e-7) << "t=" << t;
  }
}

TEST(AngleProperty, ClockwiseAnglesAddUpAroundTheCircle) {
  sim::Rng rng(13);
  for (int t = 0; t < 200; ++t) {
    const double a = rng.uniform(0.0, kTwoPi);
    const double b = rng.uniform(0.0, kTwoPi);
    const Vec2 u{std::cos(a), std::sin(a)};
    const Vec2 v{std::cos(b), std::sin(b)};
    const double uv = clockwise_angle(u, v);
    const double vu = clockwise_angle(v, u);
    if (uv > 1e-9 && vu > 1e-9) {
      EXPECT_NEAR(uv + vu, kTwoPi, 1e-9);
    }
    EXPECT_NEAR(counterclockwise_angle(u, v), normalize_angle(kTwoPi - uv),
                1e-9);
  }
}

TEST(AngleProperty, MirroringReversesClockwise) {
  sim::Rng rng(15);
  for (int t = 0; t < 200; ++t) {
    const Vec2 u{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec2 v{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    if (u.norm() < 0.1 || v.norm() < 0.1) continue;
    const Vec2 mu{-u.x, u.y};
    const Vec2 mv{-v.x, v.y};
    const double orig = clockwise_angle(u, v);
    const double mirrored = clockwise_angle(mu, mv);
    if (orig > 1e-9 && orig < kTwoPi - 1e-9) {
      EXPECT_NEAR(mirrored, kTwoPi - orig, 1e-9);
    }
  }
}

TEST(ConvexProperty, CentroidInsidePolygon) {
  sim::Rng rng(17);
  for (int t = 0; t < 50; ++t) {
    ConvexPolygon poly = ConvexPolygon::rectangle(-8, -8, 8, 8);
    for (int k = 0; k < 4; ++k) {
      const Vec2 p{rng.uniform(-5, 5), rng.uniform(-5, 5)};
      const double a = rng.uniform(0.0, kTwoPi);
      poly = poly.clipped(HalfPlane{Line{p, Vec2{std::cos(a), std::sin(a)}}});
      if (poly.empty()) break;
    }
    if (poly.empty() || poly.area() < 1e-6) continue;
    EXPECT_TRUE(poly.contains(poly.centroid(), 1e-7));
    EXPECT_GE(poly.distance_to_boundary(poly.centroid()), 0.0);
  }
}

}  // namespace
}  // namespace stig::geom
