// Argument/precondition validation across the public surface: every
// documented precondition violation must be reported loudly (exception),
// never as silent misbehavior.
#include <gtest/gtest.h>

#include "core/chat_network.hpp"
#include "proto/async2.hpp"
#include "proto/ksegment.hpp"
#include "proto/sync2.hpp"
#include "proto/sync_sliced.hpp"
#include "sim/engine.hpp"

namespace stig {
namespace {

using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::ProtocolKind;
using core::Synchrony;
using geom::Vec2;

sim::Snapshot snapshot3() {
  sim::Snapshot s;
  s.self = 0;
  for (int i = 0; i < 3; ++i) {
    sim::ObservedRobot r;
    r.position = Vec2{static_cast<double>(5 * i), 0.0};
    s.robots.push_back(r);
  }
  return s;
}

TEST(Validation, Sync2RejectsBadSymbolWidth) {
  proto::Sync2Options o;
  o.bits_per_symbol = 3;  // Does not divide 8.
  EXPECT_THROW(proto::Sync2Robot{o}, std::invalid_argument);
  o.bits_per_symbol = 0;
  EXPECT_THROW(proto::Sync2Robot{o}, std::invalid_argument);
  o.bits_per_symbol = 8;
  EXPECT_NO_THROW(proto::Sync2Robot{o});
}

TEST(Validation, Sync2RejectsWrongRobotCount) {
  proto::Sync2Robot robot{proto::Sync2Options{}};
  EXPECT_THROW(robot.initialize(snapshot3()), std::invalid_argument);
}

TEST(Validation, Async2RejectsWrongRobotCount) {
  proto::Async2Robot robot{proto::Async2Options{}};
  EXPECT_THROW(robot.initialize(snapshot3()), std::invalid_argument);
}

TEST(Validation, KSegmentRejectsSmallK) {
  proto::KSegmentOptions o;
  o.k = 1;
  EXPECT_THROW(proto::KSegmentRobot{o}, std::invalid_argument);
  o.k = 0;
  EXPECT_THROW(proto::KSegmentRobot{o}, std::invalid_argument);
}

TEST(Validation, SlicedByIdsNeedsIdentifiedSnapshot) {
  proto::SyncSlicedOptions o;
  o.naming = proto::NamingMode::by_ids;
  proto::SyncSlicedRobot robot{o};
  EXPECT_THROW(robot.initialize(snapshot3()), std::invalid_argument);
}

TEST(Validation, ChatNetworkProtocolSynchronyMismatch) {
  const std::vector<Vec2> pts{Vec2{0, 0}, Vec2{5, 0}, Vec2{0, 5}};
  {
    ChatNetworkOptions opt;
    opt.synchrony = Synchrony::synchronous;
    opt.protocol = ProtocolKind::asyncn;  // Async protocol, sync scheduler.
    EXPECT_THROW(ChatNetwork(pts, opt), std::invalid_argument);
  }
  {
    ChatNetworkOptions opt;
    opt.synchrony = Synchrony::asynchronous;
    opt.protocol = ProtocolKind::sliced;
    EXPECT_THROW(ChatNetwork(pts, opt), std::invalid_argument);
  }
}

TEST(Validation, ChatNetworkTwoRobotProtocolNeedsTwo) {
  const std::vector<Vec2> pts{Vec2{0, 0}, Vec2{5, 0}, Vec2{0, 5}};
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.protocol = ProtocolKind::sync2;
  EXPECT_THROW(ChatNetwork(pts, opt), std::invalid_argument);
}

TEST(Validation, ChatNetworkSendBoundsChecked) {
  ChatNetworkOptions opt;
  ChatNetwork net({Vec2{0, 0}, Vec2{5, 0}}, opt);
  const std::vector<std::uint8_t> payload{1};
  EXPECT_THROW(net.send(0, 0, payload), std::invalid_argument);
  EXPECT_THROW(net.send(9, 0, payload), std::out_of_range);
  EXPECT_THROW(net.broadcast(9, payload), std::out_of_range);
}

TEST(Validation, EngineRejectsEmptyAndMismatched) {
  EXPECT_THROW(sim::Engine({}, {}, std::make_unique<sim::SynchronousScheduler>()),
               std::invalid_argument);
  std::vector<sim::RobotSpec> specs{{.position = Vec2{0, 0}}};
  std::vector<std::unique_ptr<sim::Robot>> none;
  EXPECT_THROW(
      sim::Engine(specs, std::move(none),
                  std::make_unique<sim::SynchronousScheduler>()),
      std::invalid_argument);
}

TEST(Validation, SlicedCoreChecksDiameterLookups) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  ChatNetwork net({Vec2{0, 0}, Vec2{5, 0}, Vec2{0, 5}}, opt);
  // stats() bounds.
  EXPECT_THROW((void)net.stats(7), std::out_of_range);
  EXPECT_THROW((void)net.received(7), std::out_of_range);
}

TEST(Validation, QuietNetworkStaysQuiescent) {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  ChatNetwork net({Vec2{0, 0}, Vec2{5, 0}}, opt);
  EXPECT_TRUE(net.quiescent());
  EXPECT_TRUE(net.run_until_quiescent(10));
  EXPECT_EQ(net.engine().now(), 0u);  // No work: returns immediately.
}

}  // namespace
}  // namespace stig
