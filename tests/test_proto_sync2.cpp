// Sync2 protocol tests (Section 3.1): coding correctness, silence, the
// amplitude (byte) extension, bidirectional chatter, chirality.
#include <gtest/gtest.h>

#include "core/chat_network.hpp"
#include "encode/bits.hpp"
#include "sim/rng.hpp"

namespace stig {
namespace {

using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::ProtocolKind;
using core::Synchrony;

ChatNetworkOptions sync2_options() {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  return opt;
}

std::vector<std::uint8_t> random_payload(std::size_t len,
                                         std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

TEST(Sync2, TwoStepsPerBit) {
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{5, 0}}, sync2_options());
  const auto msg = random_payload(4, 1);
  net.send(0, 1, msg);
  const std::uint64_t frame_bits =
      encode::encode_frame(msg).size();  // varint + payload + crc.
  ASSERT_TRUE(net.run_until_quiescent(10'000));
  // Exactly 2 instants per bit: one out, one back.
  EXPECT_EQ(net.engine().now(), 2 * frame_bits);
  EXPECT_EQ(net.stats(0).bits_sent, frame_bits);
}

TEST(Sync2, SilentWhenIdle) {
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{5, 0}}, sync2_options());
  net.run(100);
  // The Section 5 "silent" property: no message, no movement.
  EXPECT_EQ(net.engine().trace().stats(0).moves, 0u);
  EXPECT_EQ(net.engine().trace().stats(1).moves, 0u);
  EXPECT_EQ(net.stats(0).idle_activations, 100u);
}

TEST(Sync2, SimultaneousBidirectional) {
  ChatNetwork net({geom::Vec2{1, 2}, geom::Vec2{-3, 7}}, sync2_options());
  const auto a = random_payload(16, 2);
  const auto b = random_payload(11, 3);
  net.send(0, 1, a);
  net.send(1, 0, b);
  ASSERT_TRUE(net.run_until_quiescent(10'000));
  net.run(4);
  ASSERT_EQ(net.received(1).size(), 1u);
  EXPECT_EQ(net.received(1)[0].payload, a);
  ASSERT_EQ(net.received(0).size(), 1u);
  EXPECT_EQ(net.received(0)[0].payload, b);
}

TEST(Sync2, SeveralMessagesInOrder) {
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{4, 0}}, sync2_options());
  std::vector<std::vector<std::uint8_t>> msgs;
  for (std::uint64_t i = 0; i < 5; ++i) {
    msgs.push_back(random_payload(3 + i, 10 + i));
    net.send(0, 1, msgs.back());
  }
  ASSERT_TRUE(net.run_until_quiescent(20'000));
  net.run(4);
  ASSERT_EQ(net.received(1).size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(net.received(1)[i].payload, msgs[i]);
  }
}

TEST(Sync2, MirroredFramesStillWork) {
  // Chirality = both robots share (here: left) handedness.
  ChatNetworkOptions opt = sync2_options();
  opt.mirrored_frames = true;
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{3, 3}}, opt);
  const auto msg = random_payload(8, 21);
  net.send(1, 0, msg);
  ASSERT_TRUE(net.run_until_quiescent(10'000));
  net.run(4);
  ASSERT_EQ(net.received(0).size(), 1u);
  EXPECT_EQ(net.received(0)[0].payload, msg);
}

TEST(Sync2, RobotsReturnToBaseBetweenBits) {
  ChatNetworkOptions opt = sync2_options();
  opt.record_positions = true;
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{5, 0}}, opt);
  net.send(0, 1, random_payload(2, 4));
  ASSERT_TRUE(net.run_until_quiescent(10'000));
  const auto& hist = net.engine().trace().positions();
  // Even-indexed configurations (0, 2, 4, ...) have robot 0 at its base.
  for (std::size_t t = 0; t < hist.size(); t += 2) {
    EXPECT_NEAR(geom::dist(hist[t][0], geom::Vec2{0, 0}), 0.0, 1e-9)
        << "t=" << t;
  }
}

// The byte-coding remark: sweep symbol widths; messages arrive intact and
// the instant count shrinks proportionally.
class Sync2AmplitudeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(Sync2AmplitudeTest, DeliversWithFewerSteps) {
  const unsigned bits = GetParam();
  ChatNetworkOptions opt = sync2_options();
  opt.sync2_bits_per_symbol = bits;
  ChatNetwork net({geom::Vec2{0, 0}, geom::Vec2{8, 0}}, opt);
  const auto msg = random_payload(32, 5 + bits);
  net.send(0, 1, msg);
  const std::uint64_t frame_bits = encode::encode_frame(msg).size();
  ASSERT_TRUE(net.run_until_quiescent(10'000));
  net.run(4);
  ASSERT_EQ(net.received(1).size(), 1u);
  EXPECT_EQ(net.received(1)[0].payload, msg);
  EXPECT_EQ(net.stats(0).bits_sent, frame_bits);
  // 2 instants per symbol, bits/symbol bits per symbol.
  EXPECT_LE(net.engine().now() - 4, 2 * frame_bits / bits + 2);
}

INSTANTIATE_TEST_SUITE_P(SymbolWidths, Sync2AmplitudeTest,
                         ::testing::Values(1, 2, 4, 8));

// Property sweep: random payloads and geometries, both directions.
class Sync2PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Sync2PropertyTest, RandomChatterRoundTrips) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);
  ChatNetworkOptions opt = sync2_options();
  opt.seed = seed;
  const geom::Vec2 p0{rng.uniform(-50, 50), rng.uniform(-50, 50)};
  geom::Vec2 p1;
  do {
    p1 = geom::Vec2{rng.uniform(-50, 50), rng.uniform(-50, 50)};
  } while (geom::dist(p0, p1) < 1.0);
  ChatNetwork net({p0, p1}, opt);
  const auto a = random_payload(1 + seed % 40, seed * 3);
  const auto b = random_payload(1 + seed % 23, seed * 5);
  net.send(0, 1, a);
  net.send(1, 0, b);
  ASSERT_TRUE(net.run_until_quiescent(20'000));
  net.run(4);
  ASSERT_EQ(net.received(1).size(), 1u);
  EXPECT_EQ(net.received(1)[0].payload, a);
  ASSERT_EQ(net.received(0).size(), 1u);
  EXPECT_EQ(net.received(0)[0].payload, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sync2PropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace stig
