// RoutedMessenger tests: direct -> relay -> motion escalation, per-link
// faults, and exactly-once delivery across paths.
#include <gtest/gtest.h>

#include "core/relay.hpp"
#include "encode/bits.hpp"

namespace stig {
namespace {

using core::ChatNetwork;
using core::ChatNetworkOptions;
using core::RoutedMessenger;
using core::Synchrony;
using core::WirelessChannel;
using core::WirelessOptions;

std::vector<geom::Vec2> square() {
  return {geom::Vec2{0, 0}, geom::Vec2{10, 0}, geom::Vec2{10, 10},
          geom::Vec2{0, 10}};
}

ChatNetwork motion_net() {
  ChatNetworkOptions opt;
  opt.synchrony = Synchrony::synchronous;
  opt.caps.sense_of_direction = true;
  return ChatNetwork(square(), opt);
}

TEST(WirelessLinks, LinkFaultIsSymmetricAndRepairable) {
  WirelessChannel radio(4, WirelessOptions{});
  radio.break_link(0, 2);
  EXPECT_TRUE(radio.link_broken(0, 2));
  EXPECT_TRUE(radio.link_broken(2, 0));
  EXPECT_FALSE(radio.link_broken(0, 1));
  EXPECT_FALSE(radio.transmit(0, 0, 2, encode::bytes_of("x")).delivered);
  EXPECT_FALSE(radio.transmit(0, 2, 0, encode::bytes_of("x")).delivered);
  EXPECT_TRUE(radio.transmit(0, 0, 1, encode::bytes_of("x")).delivered);
  radio.repair_link(0, 2);
  EXPECT_TRUE(radio.transmit(0, 0, 2, encode::bytes_of("x")).delivered);
}

TEST(WirelessLinks, TransmitViaDeliversOnlyToAddressee) {
  WirelessChannel radio(4, WirelessOptions{});
  EXPECT_TRUE(
      radio.transmit_via(0, 0, 1, 2, encode::bytes_of("hop")).delivered);
  EXPECT_TRUE(radio.take_received(1).empty());  // Relay keeps no copy.
  const auto got = radio.take_received(2);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], encode::bytes_of("hop"));
}

TEST(WirelessLinks, TransmitViaRespectsBothHops) {
  WirelessChannel radio(4, WirelessOptions{});
  radio.break_link(0, 1);
  EXPECT_FALSE(
      radio.transmit_via(0, 0, 1, 2, encode::bytes_of("x")).delivered);
  radio.repair_link(0, 1);
  radio.break_link(1, 2);
  EXPECT_FALSE(
      radio.transmit_via(0, 0, 1, 2, encode::bytes_of("x")).delivered);
}

TEST(Routed, DirectPathPreferred) {
  ChatNetwork net = motion_net();
  WirelessChannel radio(4, WirelessOptions{});
  RoutedMessenger router(net, radio);
  router.send(0, 2, encode::bytes_of("direct"));
  EXPECT_EQ(router.stats().direct, 1u);
  EXPECT_EQ(router.stats().relayed, 0u);
  const auto got = router.received(2);
  ASSERT_EQ(got.size(), 1u);
}

TEST(Routed, BrokenLinkUsesRelay) {
  ChatNetwork net = motion_net();
  WirelessChannel radio(4, WirelessOptions{});
  radio.break_link(0, 2);  // Direct path down; devices healthy.
  RoutedMessenger router(net, radio);
  router.send(0, 2, encode::bytes_of("around"));
  EXPECT_EQ(router.stats().direct, 0u);
  EXPECT_EQ(router.stats().relayed, 1u);
  EXPECT_EQ(router.stats().motion_fallbacks, 0u);
  const auto got = router.received(2);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], encode::bytes_of("around"));
}

TEST(Routed, NoRelayFallsBackToMotion) {
  ChatNetwork net = motion_net();
  WirelessChannel radio(4, WirelessOptions{});
  // Isolate robot 0's radio entirely via links (device still "works").
  for (sim::RobotIndex j = 1; j < 4; ++j) radio.break_link(0, j);
  RoutedMessenger router(net, radio);
  router.send(0, 2, encode::bytes_of("swim"));
  EXPECT_EQ(router.stats().motion_fallbacks, 1u);
  ASSERT_TRUE(router.flush(100'000));
  net.run(4);
  const auto got = router.received(2);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], encode::bytes_of("swim"));
}

TEST(Routed, DeadRelayCandidatesSkipped) {
  ChatNetwork net = motion_net();
  WirelessChannel radio(4, WirelessOptions{});
  radio.break_link(0, 2);
  radio.break_device(1);  // First candidate relay is dead...
  RoutedMessenger router(net, radio);
  router.send(0, 2, encode::bytes_of("via 3"));
  EXPECT_EQ(router.stats().relayed, 1u);  // ...so robot 3 relays.
  ASSERT_EQ(router.received(2).size(), 1u);
}

TEST(Routed, ExactlyOnceUnderMixedFaults) {
  ChatNetwork net = motion_net();
  WirelessChannel radio(4, WirelessOptions{});
  radio.break_link(0, 1);
  radio.break_link(2, 3);
  radio.break_device(3);
  RoutedMessenger router(net, radio);
  const int kMessages = 24;
  for (int m = 0; m < kMessages; ++m) {
    const std::vector<std::uint8_t> payload{static_cast<std::uint8_t>(m)};
    router.send(static_cast<std::size_t>(m) % 4,
                (static_cast<std::size_t>(m) + 1) % 4, payload);
  }
  ASSERT_TRUE(router.flush(1'000'000));
  net.run(4);
  std::size_t total = 0;
  for (sim::RobotIndex i = 0; i < 4; ++i) total += router.received(i).size();
  EXPECT_EQ(total, static_cast<std::size_t>(kMessages));
  EXPECT_EQ(router.stats().direct + router.stats().relayed +
                router.stats().motion_fallbacks,
            static_cast<std::uint64_t>(kMessages));
  EXPECT_GT(router.stats().relayed, 0u);
  EXPECT_GT(router.stats().motion_fallbacks, 0u);
}

}  // namespace
}  // namespace stig
