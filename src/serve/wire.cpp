#include "serve/wire.hpp"

#include "encode/crc.hpp"
#include "encode/varint.hpp"

namespace stig::serve {

namespace {

/// Reading cursor over a request/response body; every read checks bounds.
struct Cursor {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos >= bytes.size()) {
      ok = false;
      return 0;
    }
    return bytes[pos++];
  }
  std::uint64_t varint() {
    const auto dec = encode::decode_varint(bytes.subspan(pos));
    if (!dec) {
      ok = false;
      return 0;
    }
    pos += dec->consumed;
    return dec->value;
  }
  std::vector<std::uint8_t> blob() {
    const std::uint64_t len = varint();
    if (!ok || len > bytes.size() - pos) {
      ok = false;
      return {};
    }
    std::vector<std::uint8_t> out(bytes.begin() + static_cast<long>(pos),
                                  bytes.begin() +
                                      static_cast<long>(pos + len));
    pos += len;
    return out;
  }
  /// Strict decode: the body must be consumed exactly.
  [[nodiscard]] bool done() const { return ok && pos == bytes.size(); }
};

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  encode::append_varint(out, v);
}

void put_blob(std::vector<std::uint8_t>& out,
              std::span<const std::uint8_t> blob) {
  put_varint(out, blob.size());
  out.insert(out.end(), blob.begin(), blob.end());
}

/// Wraps a finished body into varint(len) | body | crc8(body).
std::vector<std::uint8_t> frame(std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(body.size() + 4);
  put_varint(out, body.size());
  out.insert(out.end(), body.begin(), body.end());
  out.push_back(encode::crc8(body));
  return out;
}

}  // namespace

const char* verb_name(Verb verb) noexcept {
  switch (verb) {
    case Verb::none: return "none";
    case Verb::open_session: return "open_session";
    case Verb::send_message: return "send_message";
    case Verb::step: return "step";
    case Verb::poll_delivery: return "poll_delivery";
    case Verb::get_report: return "get_report";
    case Verb::close_session: return "close_session";
  }
  return "unknown";
}

const char* status_name(Status status) noexcept {
  switch (status) {
    case Status::ok: return "ok";
    case Status::busy: return "busy";
    case Status::not_found: return "not_found";
    case Status::error: return "error";
    case Status::poisoned: return "poisoned";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_request(const Request& req) {
  std::vector<std::uint8_t> body;
  body.push_back(static_cast<std::uint8_t>(req.verb));
  switch (req.verb) {
    case Verb::open_session:
      put_varint(body, req.seed);
      put_varint(body, req.robots);
      body.push_back(req.protocol);
      body.push_back(req.scheduler);
      body.push_back(req.flags);
      break;
    case Verb::send_message:
      put_varint(body, req.session);
      put_varint(body, req.from);
      put_varint(body, req.to);
      body.push_back(req.flags);
      put_blob(body, req.payload);
      break;
    case Verb::step:
      put_varint(body, req.session);
      put_varint(body, req.instants);
      break;
    case Verb::poll_delivery:
      put_varint(body, req.session);
      put_varint(body, req.robot);
      put_varint(body, req.max_messages);
      break;
    case Verb::get_report:
    case Verb::close_session:
      put_varint(body, req.session);
      break;
    case Verb::none:
      break;
  }
  return frame(body);
}

std::vector<std::uint8_t> encode_response(const Response& res) {
  std::vector<std::uint8_t> body;
  body.push_back(static_cast<std::uint8_t>(res.verb));
  body.push_back(static_cast<std::uint8_t>(res.status));
  if (res.status != Status::ok) {
    put_blob(body, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(
                           res.detail.data()),
                       res.detail.size()));
    return frame(body);
  }
  switch (res.verb) {
    case Verb::open_session:
      put_varint(body, res.session);
      break;
    case Verb::send_message:
      put_varint(body, res.queued);
      break;
    case Verb::step:
      put_varint(body, res.instants);
      body.push_back(res.flags);
      break;
    case Verb::poll_delivery:
      put_varint(body, res.deliveries.size());
      for (const WireDelivery& d : res.deliveries) {
        put_varint(body, d.from);
        put_varint(body, d.to);
        body.push_back(d.flags);
        put_blob(body, d.payload);
      }
      break;
    case Verb::get_report:
      put_blob(body, res.body);
      break;
    case Verb::close_session:
    case Verb::none:
      break;
  }
  return frame(body);
}

std::optional<Request> decode_request(std::span<const std::uint8_t> body) {
  Cursor c{body};
  Request req;
  const std::uint8_t verb = c.u8();
  if (!c.ok || verb < 1 ||
      verb > static_cast<std::uint8_t>(Verb::close_session)) {
    return std::nullopt;
  }
  req.verb = static_cast<Verb>(verb);
  switch (req.verb) {
    case Verb::open_session:
      req.seed = c.varint();
      req.robots = c.varint();
      req.protocol = c.u8();
      req.scheduler = c.u8();
      req.flags = c.u8();
      break;
    case Verb::send_message:
      req.session = c.varint();
      req.from = c.varint();
      req.to = c.varint();
      req.flags = c.u8();
      req.payload = c.blob();
      break;
    case Verb::step:
      req.session = c.varint();
      req.instants = c.varint();
      break;
    case Verb::poll_delivery:
      req.session = c.varint();
      req.robot = c.varint();
      req.max_messages = c.varint();
      break;
    case Verb::get_report:
    case Verb::close_session:
      req.session = c.varint();
      break;
    case Verb::none:
      return std::nullopt;
  }
  if (!c.done()) return std::nullopt;
  return req;
}

std::optional<Response> decode_response(std::span<const std::uint8_t> body) {
  Cursor c{body};
  Response res;
  const std::uint8_t verb = c.u8();
  const std::uint8_t status = c.u8();
  if (!c.ok || verb > static_cast<std::uint8_t>(Verb::close_session) ||
      status > static_cast<std::uint8_t>(Status::poisoned)) {
    return std::nullopt;
  }
  res.verb = static_cast<Verb>(verb);
  res.status = static_cast<Status>(status);
  if (res.status != Status::ok) {
    const std::vector<std::uint8_t> detail = c.blob();
    res.detail.assign(detail.begin(), detail.end());
    if (!c.done()) return std::nullopt;
    return res;
  }
  switch (res.verb) {
    case Verb::open_session:
      res.session = c.varint();
      break;
    case Verb::send_message:
      res.queued = c.varint();
      break;
    case Verb::step:
      res.instants = c.varint();
      res.flags = c.u8();
      break;
    case Verb::poll_delivery: {
      const std::uint64_t count = c.varint();
      if (!c.ok || count > body.size()) return std::nullopt;
      res.deliveries.reserve(count);
      for (std::uint64_t i = 0; i < count && c.ok; ++i) {
        WireDelivery d;
        d.from = c.varint();
        d.to = c.varint();
        d.flags = c.u8();
        d.payload = c.blob();
        res.deliveries.push_back(std::move(d));
      }
      break;
    }
    case Verb::get_report:
      res.body = c.blob();
      break;
    case Verb::close_session:
    case Verb::none:
      break;
  }
  if (!c.done()) return std::nullopt;
  return res;
}

void WireParser::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  bytes_ += bytes.size();
  parse();
}

std::vector<std::vector<std::uint8_t>> WireParser::take_frames() {
  std::vector<std::vector<std::uint8_t>> out;
  out.swap(frames_);
  return out;
}

void WireParser::parse() {
  while (true) {
    if (resync_) {
      if (!try_resync()) return;
    }
    const auto len = encode::decode_varint(buffer_);
    if (!len) {
      // Truncated varint: wait for more bytes. Ten bytes without a
      // terminator is overlong — that prefix can never become a length.
      if (buffer_.size() < 10) return;
      ++corrupt_;
      buffer_.erase(buffer_.begin());
      resync_ = true;
      continue;
    }
    if (len->value > max_body_) {
      ++corrupt_;
      buffer_.erase(buffer_.begin());
      resync_ = true;
      continue;
    }
    const std::size_t body_len = static_cast<std::size_t>(len->value);
    const std::size_t need = len->consumed + body_len + 1;
    if (buffer_.size() < need) return;
    const std::span<const std::uint8_t> body(buffer_.data() + len->consumed,
                                             body_len);
    if (encode::crc8(body) == buffer_[len->consumed + body_len]) {
      frames_.emplace_back(body.begin(), body.end());
      buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(need));
      continue;
    }
    ++corrupt_;
    buffer_.erase(buffer_.begin());
    resync_ = true;
  }
}

bool WireParser::try_resync() {
  for (std::size_t off = 0; off < buffer_.size(); ++off) {
    const std::span<const std::uint8_t> tail(buffer_.data() + off,
                                             buffer_.size() - off);
    const auto len = encode::decode_varint(tail);
    if (!len || len->value > max_body_) continue;
    const std::size_t body_len = static_cast<std::size_t>(len->value);
    const std::size_t need = len->consumed + body_len + 1;
    if (tail.size() < need) continue;
    const std::span<const std::uint8_t> body = tail.subspan(len->consumed,
                                                            body_len);
    if (encode::crc8(body) != tail[len->consumed + body_len]) continue;
    frames_.emplace_back(body.begin(), body.end());
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<long>(off + need));
    resync_ = false;
    return true;
  }
  // Nothing recoverable yet: bound the hunt buffer so garbage cannot grow
  // it without limit (a valid frame never needs more than this window).
  const std::size_t window = max_body_ + 16;
  if (buffer_.size() > window) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() +
                      static_cast<long>(buffer_.size() - window));
  }
  return false;
}

}  // namespace stig::serve
