// ShardedRegistry — thousands of sessions across par::BatchRunner workers.
//
// Sessions are partitioned over K single-threaded SessionRegistry shards:
// an open_session is routed round-robin (in request order), every later
// verb routes by id — shard k hands out ids k+1, k+1+K, ... so the owner
// is recoverable from any id as (id-1) % K without a lookup table. A batch
// of requests is applied by fanning the shards across a BatchRunner pool;
// within a shard requests run in arrival order, so per-session ordering is
// preserved while independent sessions proceed in parallel.
//
// Determinism contract (tests/test_serve_concurrency.cpp): every reply and
// every deterministic metric is a pure function of the request sequence
// and the shard count — never of the worker count or the completion
// schedule. Shard metrics live in per-shard registries merged in shard
// order, the same per-task-registry discipline as src/par (and the per-
// verb latency histograms are `_ns`-suffixed, so they never gate).
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "par/batch_runner.hpp"
#include "serve/session.hpp"

namespace stig::serve {

struct ShardedOptions {
  /// Session shards. Fixed by configuration, independent of `jobs` —
  /// replies must not change when the worker count does.
  std::size_t shards = 8;
  /// BatchRunner workers; 0 = hardware concurrency.
  std::size_t jobs = 0;
  SessionLimits limits;
};

class ShardedRegistry {
 public:
  explicit ShardedRegistry(ShardedOptions options = {});

  /// Applies `requests` and returns replies in request order. Requests
  /// for the same session keep their relative order (same shard, applied
  /// sequentially); requests for different sessions may run concurrently.
  [[nodiscard]] std::vector<Response> apply_batch(
      std::span<const Request> requests);

  /// Convenience: a batch of one.
  [[nodiscard]] Response apply(const Request& req);

  [[nodiscard]] std::size_t shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t jobs() const noexcept { return runner_.jobs(); }
  [[nodiscard]] std::size_t live_sessions() const;
  [[nodiscard]] std::uint64_t sessions_opened() const;

  /// Folds every shard's metrics into `into`, in shard order (counters
  /// add, histograms merge bucketwise — deterministic at any job count).
  void merge_metrics(obs::MetricsRegistry& into) const;
  /// Renders the merged snapshot as one JSON object.
  void write_metrics_json(std::ostream& out) const;

 private:
  /// The shard owning `req` (advances the open-session round-robin).
  [[nodiscard]] std::size_t route(const Request& req);

  std::vector<std::unique_ptr<SessionRegistry>> shards_;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> metrics_;
  std::uint64_t open_rr_ = 0;  ///< Round-robin cursor for open_session.
  par::BatchRunner runner_;
};

}  // namespace stig::serve
