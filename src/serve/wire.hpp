// stigd wire protocol — compact framed request/response codec.
//
// The serving layer talks over a byte stream (a local socket in stigd, a
// memory buffer in tests) using the same framing conventions as the motion
// channel (src/encode): a frame is
//
//   frame := varint(body_length) | body bytes | crc8(body)
//
// where the varint is LEB128 (encode/varint.hpp) and the CRC is the same
// CRC-8/ATM the motion frames carry (encode/crc.hpp). Requests and
// responses share the framing; the direction of the stream disambiguates.
// Body layouts are fixed per verb and documented byte-for-byte in
// docs/SERVING.md; the conformance suite (tests/test_serve_wire.cpp) pins
// a golden encoding for every verb so the protocol cannot drift silently.
//
// The codec is a plain library — no sockets, no I/O — so every layer of
// the daemon (parser resync, verb round-trips, session semantics) is unit
// testable deterministically.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace stig::serve {

/// Request verbs (response bodies echo the verb in byte 0).
enum class Verb : std::uint8_t {
  none = 0,           ///< Decode placeholder for malformed bodies.
  open_session = 1,   ///< Create a ChatNetwork session; returns its id.
  send_message = 2,   ///< Queue a payload into the session's injection
                      ///< queue (bounded; BUSY when full, never dropped).
  step = 3,           ///< Drain the injection queue, advance N instants.
  poll_delivery = 4,  ///< Take deliveries for one robot (at-most-once).
  get_report = 5,     ///< The session's obs::RunReport as JSON bytes.
  close_session = 6,  ///< Destroy the session; its id is never reused.
};

/// Response status byte.
enum class Status : std::uint8_t {
  ok = 0,
  busy = 1,       ///< Injection queue full — retry after a step.
  not_found = 2,  ///< Unknown (or already closed) session id.
  error = 3,      ///< Invalid request; detail carries the reason.
  poisoned = 4,   ///< The session's network threw and was quarantined; the
                  ///< id answers poisoned until the client closes it (the
                  ///< daemon survives — fault isolation, not fault denial).
};

/// Stable lower-case verb name ("open_session", ...).
[[nodiscard]] const char* verb_name(Verb verb) noexcept;
/// Stable lower-case status name ("ok", "busy", ...).
[[nodiscard]] const char* status_name(Status status) noexcept;

/// Open-session flag bits.
inline constexpr std::uint8_t kOpenAsync = 1U << 0;
inline constexpr std::uint8_t kOpenVisibleIds = 1U << 1;
inline constexpr std::uint8_t kOpenSenseOfDirection = 1U << 2;
/// Send-message flag bits.
inline constexpr std::uint8_t kSendBroadcast = 1U << 0;
/// Step-response flag bits.
inline constexpr std::uint8_t kStepQuiescent = 1U << 0;

/// One request, flattened across verbs: each verb reads the fields its
/// body layout names and ignores the rest (encode writes only the named
/// fields; decode zero-initializes the rest).
struct Request {
  Verb verb = Verb::none;
  std::uint64_t session = 0;  ///< Every verb except open_session.

  // open_session.
  std::uint64_t seed = 1;
  std::uint64_t robots = 2;
  std::uint8_t protocol = 0;   ///< core::ProtocolKind as a byte.
  std::uint8_t scheduler = 0;  ///< core::SchedulerKind as a byte.
  std::uint8_t flags = 0;      ///< kOpen* / kSend* bits.

  // send_message.
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::vector<std::uint8_t> payload;

  // step.
  std::uint64_t instants = 1;

  // poll_delivery.
  std::uint64_t robot = 0;
  std::uint64_t max_messages = 0;  ///< 0 = everything pending.

  bool operator==(const Request&) const = default;
};

/// One delivery inside a poll_delivery response.
struct WireDelivery {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::uint8_t flags = 0;  ///< kSendBroadcast when one-to-all.
  std::vector<std::uint8_t> payload;

  bool operator==(const WireDelivery&) const = default;
};

/// One response. Body layout: verb byte, status byte, then verb-specific
/// fields when status == ok, else varint-length detail string.
struct Response {
  Verb verb = Verb::none;
  Status status = Status::ok;
  std::string detail;  ///< Reason, carried when status != ok.

  std::uint64_t session = 0;   ///< open_session (the new id).
  std::uint64_t queued = 0;    ///< send_message: injection-queue depth
                               ///< after the accept.
  std::uint64_t instants = 0;  ///< step: the session's engine clock.
  std::uint8_t flags = 0;      ///< step: kStepQuiescent.
  std::vector<WireDelivery> deliveries;  ///< poll_delivery.
  std::vector<std::uint8_t> body;        ///< get_report: JSON bytes.

  bool operator==(const Response&) const = default;
};

/// Frames a request body: varint(len) | body | crc8(body).
[[nodiscard]] std::vector<std::uint8_t> encode_request(const Request& req);
/// Frames a response body the same way.
[[nodiscard]] std::vector<std::uint8_t> encode_response(const Response& res);

/// Decodes a deframed request body (no length prefix, no CRC). Returns
/// nullopt when the verb is unknown or the body is truncated/overlong.
[[nodiscard]] std::optional<Request> decode_request(
    std::span<const std::uint8_t> body);
/// Decodes a deframed response body.
[[nodiscard]] std::optional<Response> decode_response(
    std::span<const std::uint8_t> body);

/// Frames larger than this are treated as corruption: the parser drops a
/// byte and hunts for the next valid frame rather than buffering without
/// bound. Sized for get_report responses on the largest session.
inline constexpr std::size_t kMaxFrameBody = 1 << 20;

/// Incremental byte-stream deframer; one instance per in-order stream.
///
/// Mirrors encode::FrameParser's corruption discipline on a byte stream: a
/// bad varint, an oversized declared length or a CRC mismatch counts one
/// corrupt frame, drops one byte, and resynchronizes by scanning for the
/// next complete, CRC-valid frame at any offset (garbage before it is
/// discarded) — so a client joining mid-stream, or a stream damaged by a
/// truncated write, heals at the next frame boundary.
class WireParser {
 public:
  explicit WireParser(std::size_t max_body = kMaxFrameBody)
      : max_body_(max_body) {}

  /// Feeds bytes as they arrive from the stream.
  void feed(std::span<const std::uint8_t> bytes);

  /// Completed, CRC-valid frame bodies accumulated so far; caller takes
  /// ownership and the internal list is cleared.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> take_frames();

  /// Frames dropped due to CRC mismatch, malformed or oversized length.
  [[nodiscard]] std::uint64_t corrupt_frames() const noexcept {
    return corrupt_;
  }
  /// Bytes consumed over the parser's lifetime.
  [[nodiscard]] std::uint64_t bytes_consumed() const noexcept {
    return bytes_;
  }
  /// True when a frame is partially assembled.
  [[nodiscard]] bool mid_frame() const noexcept { return !buffer_.empty(); }

  /// Transient-corruption hook (stabilization suite): overwrites the
  /// assembly buffer with garbage, as a `corrupt:parser` fault does to the
  /// motion-channel FrameParser. Counters are preserved — they are
  /// monotone telemetry, not parse state — and the next feed() must
  /// re-align at a frame boundary through the standard resync scan.
  void scramble(std::uint64_t garbage) {
    buffer_.assign(1 + (garbage & 15), static_cast<std::uint8_t>(garbage));
    resync_ = (garbage & 1) != 0;
  }

 private:
  void parse();
  /// Post-corruption recovery: accepts the first complete, CRC-valid frame
  /// at *any* buffer offset. Returns true when one was recovered and
  /// normal parsing may resume.
  bool try_resync();

  std::size_t max_body_;
  std::vector<std::uint8_t> buffer_;
  std::vector<std::vector<std::uint8_t>> frames_;
  std::uint64_t corrupt_ = 0;
  std::uint64_t bytes_ = 0;
  bool resync_ = false;
};

}  // namespace stig::serve
