// Session layer of the stigd serving architecture.
//
// A *session* is one independent ChatNetwork owned by the daemon on behalf
// of a client: the client opens it with a (seed, robots, protocol,
// scheduler, flags) tuple, queues messages into a *bounded injection
// queue*, advances simulated time explicitly with `step`, and polls
// deliveries per robot. Everything is deterministic: the swarm's positions
// are scattered from the session seed (`scatter_positions`), the
// ChatNetwork options are a pure function of the open request
// (`session_options`), and a session's replies depend only on the sequence
// of requests it received — which is what lets the conformance suite
// compare a served session byte-for-byte against driving the same
// ChatNetwork directly.
//
// Backpressure contract: `send_message` either *accepts* (the message is
// appended to the injection queue and will be injected, in acceptance
// order, by the next `step`) or answers BUSY (queue full). Accepted
// messages are never dropped and never reordered; BUSY is the only
// overload signal — the daemon never sheds load silently.
//
// The registry hands out monotonically increasing session ids and never
// reuses one: a closed id answers not_found forever, so a client racing
// its own close cannot be captured by a stranger's new session.
//
// Fault isolation: a session whose ChatNetwork throws mid-request is
// *quarantined*, not fatal — the registry destroys it, tombstones the id,
// and answers Status::poisoned for that request and every later one on the
// id until the client acknowledges with close_session (which clears the
// tombstone and answers ok). Other sessions never notice; the
// serve.sessions_poisoned counter records each quarantine.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/chat_network.hpp"
#include "obs/metrics.hpp"
#include "serve/wire.hpp"

namespace stig::serve {

/// Per-session resource bounds enforced by the registry.
struct SessionLimits {
  std::size_t max_robots = 32;      ///< open_session robots cap.
  std::size_t queue_bound = 16;     ///< Injection-queue depth before BUSY.
  std::size_t max_payload = 4096;   ///< send_message payload byte cap.
  std::uint64_t max_step = 65536;   ///< Instants per step verb.
  std::size_t max_sessions = 65536; ///< Live sessions per registry.
};

/// Deterministic swarm placement for a session: pairwise-separated points
/// in a box that widens with n (same rejection scatter as the benches).
[[nodiscard]] std::vector<geom::Vec2> scatter_positions(std::size_t n,
                                                        std::uint64_t seed);

/// The ChatNetwork options an open_session request denotes. Throws
/// std::invalid_argument on an unknown protocol or scheduler byte. Public
/// so tests can drive the identical network directly.
[[nodiscard]] core::ChatNetworkOptions session_options(const Request& req);

/// One served swarm: a ChatNetwork plus the injection queue and per-robot
/// delivery cursors.
class Session {
 public:
  Session(std::uint64_t id, const Request& open, const SessionLimits& limits);

  /// Handles every verb except open/close (the registry owns those).
  [[nodiscard]] Response apply(const Request& req);

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] const core::ChatNetwork& net() const noexcept { return net_; }

  /// Transient-corruption hook (stabilization suite): plants an arbitrary
  /// poll cursor, as transient memory damage would. The next poll of that
  /// robot must fail-stop (std::out_of_range) instead of fabricating
  /// deliveries — which the registry turns into a poisoned quarantine.
  void corrupt_poll_cursor(std::size_t robot, std::size_t value) {
    poll_cursor_.at(robot) = value;
  }

 private:
  [[nodiscard]] Response send_message(const Request& req);
  [[nodiscard]] Response step(const Request& req);
  [[nodiscard]] Response poll_delivery(const Request& req);
  [[nodiscard]] Response get_report() const;

  struct PendingSend {
    std::uint64_t from = 0;
    std::uint64_t to = 0;
    bool broadcast = false;
    std::vector<std::uint8_t> payload;
  };

  std::uint64_t id_;
  SessionLimits limits_;
  core::ChatNetwork net_;
  std::deque<PendingSend> pending_;       ///< FIFO injection queue.
  std::vector<std::size_t> poll_cursor_;  ///< Per robot, into received(i).
};

/// Owns the sessions of one shard and serves requests in arrival order.
/// Single-threaded by design — cross-session parallelism comes from
/// ShardedRegistry fanning shards across par::BatchRunner workers.
class SessionRegistry {
 public:
  explicit SessionRegistry(SessionLimits limits = {});

  /// Routes metrics into `registry` (not owned; null detaches): one
  /// request counter and one latency histogram per verb (the `_ns` suffix
  /// marks them machine-speed, per src/obs/metric_keys.hpp), plus
  /// deterministic outcome counters (busy, not_found, error, sessions
  /// opened/closed, messages accepted, deliveries polled).
  void attach_metrics(obs::MetricsRegistry* registry);

  /// Configures id assignment for sharding: the first id handed out is
  /// `first` and each subsequent one is `step` higher, so shard k of K
  /// (ids k+1, k+1+K, ...) can be recovered from any id as (id-1) % K.
  void configure_ids(std::uint64_t first, std::uint64_t step);

  /// The single deterministic entry point: replies depend only on the
  /// request sequence seen so far. Never throws — internal errors become
  /// Status::error replies.
  [[nodiscard]] Response apply(const Request& req);

  [[nodiscard]] std::size_t live_sessions() const noexcept {
    return sessions_.size();
  }
  [[nodiscard]] std::uint64_t sessions_opened() const noexcept {
    return opened_;
  }
  /// Sessions quarantined after their network threw (lifetime total).
  [[nodiscard]] std::uint64_t sessions_poisoned() const noexcept {
    return poisoned_total_;
  }

  /// Test hook (stabilization suite): the live session with `id`, or null
  /// — lets tests plant transient damage via Session::corrupt_poll_cursor.
  [[nodiscard]] Session* session(std::uint64_t id) noexcept {
    const auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
  }

 private:
  [[nodiscard]] Response open_session(const Request& req);
  [[nodiscard]] Response dispatch(const Request& req);
  void count_outcome(const Response& res);

  SessionLimits limits_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::set<std::uint64_t> poisoned_;  ///< Quarantined ids (tombstones).
  std::uint64_t next_id_ = 1;
  std::uint64_t id_step_ = 1;
  std::uint64_t opened_ = 0;
  std::uint64_t poisoned_total_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;  ///< Not owned.
};

}  // namespace stig::serve
