#include "serve/session.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/rng.hpp"

namespace stig::serve {

namespace {

Response fail(Verb verb, Status status, std::string detail) {
  Response res;
  res.verb = verb;
  res.status = status;
  res.detail = std::move(detail);
  return res;
}

}  // namespace

std::vector<geom::Vec2> scatter_positions(std::size_t n,
                                          std::uint64_t seed) {
  // The box widens with sqrt(n) so the rejection scatter stays fast and
  // the swarm density (hence protocol geometry) stays comparable at every
  // session size.
  const double extent =
      std::max(30.0, 6.0 * std::sqrt(static_cast<double>(n)));
  const double min_gap = 3.0;
  sim::Rng rng(seed ^ 0x53455256ULL);  // "SERV"
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-extent, extent),
                       rng.uniform(-extent, extent)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < min_gap) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

core::ChatNetworkOptions session_options(const Request& req) {
  if (req.protocol > static_cast<std::uint8_t>(core::ProtocolKind::asyncn)) {
    throw std::invalid_argument("unknown protocol byte " +
                                std::to_string(req.protocol));
  }
  if (req.scheduler >
      static_cast<std::uint8_t>(core::SchedulerKind::adversarial)) {
    throw std::invalid_argument("unknown scheduler byte " +
                                std::to_string(req.scheduler));
  }
  core::ChatNetworkOptions opt;
  opt.synchrony = (req.flags & kOpenAsync) != 0
                      ? core::Synchrony::asynchronous
                      : core::Synchrony::synchronous;
  opt.caps.visible_ids = (req.flags & kOpenVisibleIds) != 0;
  opt.caps.sense_of_direction = (req.flags & kOpenSenseOfDirection) != 0 ||
                                opt.caps.visible_ids;
  opt.protocol = static_cast<core::ProtocolKind>(req.protocol);
  opt.scheduler = static_cast<core::SchedulerKind>(req.scheduler);
  opt.seed = req.seed;
  return opt;
}

Session::Session(std::uint64_t id, const Request& open,
                 const SessionLimits& limits)
    : id_(id),
      limits_(limits),
      net_(scatter_positions(open.robots, open.seed), session_options(open)),
      poll_cursor_(open.robots, 0) {}

Response Session::apply(const Request& req) {
  switch (req.verb) {
    case Verb::send_message: return send_message(req);
    case Verb::step: return step(req);
    case Verb::poll_delivery: return poll_delivery(req);
    case Verb::get_report: return get_report();
    default:
      return fail(req.verb, Status::error, "verb not handled by session");
  }
}

Response Session::send_message(const Request& req) {
  const std::size_t n = net_.robot_count();
  const bool broadcast = (req.flags & kSendBroadcast) != 0;
  if (req.from >= n || (!broadcast && req.to >= n)) {
    return fail(req.verb, Status::error, "robot index out of range");
  }
  if (!broadcast && req.from == req.to) {
    return fail(req.verb, Status::error, "from == to");
  }
  if (req.payload.size() > limits_.max_payload) {
    return fail(req.verb, Status::error, "payload exceeds " +
                                             std::to_string(
                                                 limits_.max_payload) +
                                             " bytes");
  }
  if (pending_.size() >= limits_.queue_bound) {
    // The backpressure contract: a full injection queue answers BUSY and
    // keeps every already-accepted message exactly where it is.
    return fail(req.verb, Status::busy, "injection queue full");
  }
  pending_.push_back(PendingSend{req.from, req.to, broadcast, req.payload});
  Response res;
  res.verb = req.verb;
  res.queued = pending_.size();
  return res;
}

Response Session::step(const Request& req) {
  // Drain the injection queue in acceptance order, then advance time.
  while (!pending_.empty()) {
    const PendingSend& p = pending_.front();
    if (p.broadcast) {
      net_.broadcast(static_cast<sim::RobotIndex>(p.from), p.payload);
    } else {
      net_.send(static_cast<sim::RobotIndex>(p.from),
                static_cast<sim::RobotIndex>(p.to), p.payload);
    }
    pending_.pop_front();
  }
  const std::uint64_t instants = std::min(req.instants, limits_.max_step);
  net_.run(static_cast<sim::Time>(instants));
  Response res;
  res.verb = req.verb;
  res.instants = net_.engine().now();
  if (net_.quiescent()) res.flags |= kStepQuiescent;
  return res;
}

Response Session::poll_delivery(const Request& req) {
  const std::size_t n = net_.robot_count();
  if (req.robot >= n) {
    return fail(req.verb, Status::error, "robot index out of range");
  }
  const auto& received = net_.received(
      static_cast<sim::RobotIndex>(req.robot));
  std::size_t& cursor = poll_cursor_[static_cast<std::size_t>(req.robot)];
  if (cursor > received.size()) {
    // A cursor beyond the delivery log is transient state damage (nothing
    // in the session ever moves it backward past the log): fail-stop so
    // the registry quarantines the session rather than letting the
    // subtraction below underflow into fabricated deliveries.
    throw std::out_of_range("poll cursor " + std::to_string(cursor) +
                            " beyond " + std::to_string(received.size()) +
                            " delivered message(s)");
  }
  std::size_t available = received.size() - cursor;
  if (req.max_messages != 0) {
    available = std::min<std::size_t>(available, req.max_messages);
  }
  Response res;
  res.verb = req.verb;
  res.deliveries.reserve(available);
  for (std::size_t i = 0; i < available; ++i) {
    const core::Delivery& d = received[cursor + i];
    WireDelivery wd;
    wd.from = d.from;
    wd.to = d.to;
    if (d.broadcast) wd.flags |= kSendBroadcast;
    wd.payload = d.payload;
    res.deliveries.push_back(std::move(wd));
  }
  cursor += available;
  return res;
}

Response Session::get_report() const {
  Response res;
  res.verb = Verb::get_report;
  std::ostringstream os;
  net_.report().write_json(os);
  const std::string json = os.str();
  res.body.assign(json.begin(), json.end());
  return res;
}

SessionRegistry::SessionRegistry(SessionLimits limits) : limits_(limits) {}

void SessionRegistry::attach_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
}

void SessionRegistry::configure_ids(std::uint64_t first, std::uint64_t step) {
  if (step == 0) throw std::invalid_argument("id step must be positive");
  next_id_ = first;
  id_step_ = step;
}

Response SessionRegistry::apply(const Request& req) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start =
      metrics_ != nullptr ? Clock::now() : Clock::time_point{};
  Response res;
  try {
    res = dispatch(req);
  } catch (const std::exception& e) {
    res = fail(req.verb, Status::error, e.what());
  }
  if (metrics_ != nullptr) {
    const std::string verb = verb_name(req.verb);
    metrics_->counter("serve.req." + verb).add(1);
    count_outcome(res);
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
    metrics_->histogram("serve.lat." + verb + "_ns", 16.0, 48).record(ns);
  }
  return res;
}

Response SessionRegistry::dispatch(const Request& req) {
  if (req.verb == Verb::open_session) return open_session(req);
  if (req.verb == Verb::none ||
      req.verb > Verb::close_session) {
    return fail(req.verb, Status::error, "unknown verb");
  }
  if (poisoned_.count(req.session) != 0) {
    if (req.verb == Verb::close_session) {
      // Closing a quarantined session is the acknowledgment that clears
      // the tombstone (the id itself is still never reused).
      poisoned_.erase(req.session);
      Response res;
      res.verb = req.verb;
      res.session = req.session;
      return res;
    }
    return fail(req.verb, Status::poisoned,
                "session " + std::to_string(req.session) +
                    " poisoned; close it to acknowledge");
  }
  const auto it = sessions_.find(req.session);
  if (it == sessions_.end()) {
    // Unknown *or already closed* — ids are never reused, so a stale id
    // can only ever answer not_found, never someone else's session.
    return fail(req.verb, Status::not_found,
                "no session " + std::to_string(req.session));
  }
  if (req.verb == Verb::close_session) {
    sessions_.erase(it);
    Response res;
    res.verb = req.verb;
    res.session = req.session;
    return res;
  }
  try {
    return it->second->apply(req);
  } catch (const std::exception& e) {
    // The session's network (or its own bookkeeping) threw: quarantine it
    // so one damaged swarm cannot take the daemon — or its siblings —
    // down. The session is destroyed (its state is not trustworthy) and
    // the id tombstoned as poisoned until the client closes it.
    sessions_.erase(req.session);
    poisoned_.insert(req.session);
    ++poisoned_total_;
    if (metrics_ != nullptr) {
      metrics_->counter("serve.sessions_poisoned").add(1);
    }
    return fail(req.verb, Status::poisoned,
                "session " + std::to_string(req.session) +
                    " poisoned: " + e.what());
  }
}

Response SessionRegistry::open_session(const Request& req) {
  if (req.robots < 2 || req.robots > limits_.max_robots) {
    return fail(req.verb, Status::error,
                "robots must be in [2, " +
                    std::to_string(limits_.max_robots) + "]");
  }
  if (sessions_.size() >= limits_.max_sessions) {
    // Session-count backpressure mirrors the injection queue: BUSY, retry
    // after closing something — never an unbounded registry.
    return fail(req.verb, Status::busy, "session limit reached");
  }
  const std::uint64_t id = next_id_;
  auto session = std::make_unique<Session>(id, req, limits_);
  next_id_ += id_step_;
  ++opened_;
  sessions_.emplace(id, std::move(session));
  Response res;
  res.verb = req.verb;
  res.session = id;
  return res;
}

void SessionRegistry::count_outcome(const Response& res) {
  switch (res.status) {
    case Status::busy: metrics_->counter("serve.busy").add(1); return;
    case Status::not_found:
      metrics_->counter("serve.not_found").add(1);
      return;
    case Status::error: metrics_->counter("serve.error").add(1); return;
    case Status::poisoned:
      // serve.sessions_poisoned counts quarantines at the throw site;
      // tombstone replies are not separate outcomes.
      return;
    case Status::ok: break;
  }
  switch (res.verb) {
    case Verb::open_session:
      metrics_->counter("serve.sessions_opened").add(1);
      break;
    case Verb::close_session:
      metrics_->counter("serve.sessions_closed").add(1);
      break;
    case Verb::send_message:
      metrics_->counter("serve.messages_accepted").add(1);
      break;
    case Verb::poll_delivery:
      metrics_->counter("serve.deliveries_polled")
          .add(res.deliveries.size());
      break;
    default: break;
  }
}

}  // namespace stig::serve
