#include "serve/shard.hpp"

#include <stdexcept>

namespace stig::serve {

ShardedRegistry::ShardedRegistry(ShardedOptions options)
    : runner_(par::BatchOptions{.jobs = options.jobs}) {
  if (options.shards == 0) {
    throw std::invalid_argument("ShardedRegistry needs at least one shard");
  }
  shards_.reserve(options.shards);
  metrics_.reserve(options.shards);
  for (std::size_t k = 0; k < options.shards; ++k) {
    auto registry = std::make_unique<SessionRegistry>(options.limits);
    auto metrics = std::make_unique<obs::MetricsRegistry>();
    registry->configure_ids(k + 1, options.shards);
    registry->attach_metrics(metrics.get());
    shards_.push_back(std::move(registry));
    metrics_.push_back(std::move(metrics));
  }
}

std::size_t ShardedRegistry::route(const Request& req) {
  if (req.verb == Verb::open_session) {
    return static_cast<std::size_t>(open_rr_++ % shards_.size());
  }
  // Ids are assigned as shard + 1, shard + 1 + K, ...; id 0 is never
  // valid, so route it anywhere — the shard answers not_found.
  if (req.session == 0) return 0;
  return static_cast<std::size_t>((req.session - 1) % shards_.size());
}

std::vector<Response> ShardedRegistry::apply_batch(
    std::span<const Request> requests) {
  // Route sequentially (the round-robin cursor is ordered state), then fan
  // the shards out: each task owns disjoint response slots, so the only
  // cross-thread state is the pool itself.
  std::vector<std::vector<std::size_t>> groups(shards_.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    groups[route(requests[i])].push_back(i);
  }
  std::vector<Response> responses(requests.size());
  (void)runner_.map(shards_.size(), [&](std::size_t shard) -> int {
    for (const std::size_t idx : groups[shard]) {
      responses[idx] = shards_[shard]->apply(requests[idx]);
    }
    return 0;
  });
  return responses;
}

Response ShardedRegistry::apply(const Request& req) {
  return std::move(apply_batch(std::span<const Request>(&req, 1)).front());
}

std::size_t ShardedRegistry::live_sessions() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->live_sessions();
  return total;
}

std::uint64_t ShardedRegistry::sessions_opened() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sessions_opened();
  return total;
}

void ShardedRegistry::merge_metrics(obs::MetricsRegistry& into) const {
  for (const auto& metrics : metrics_) into.merge_from(*metrics);
}

void ShardedRegistry::write_metrics_json(std::ostream& out) const {
  obs::MetricsRegistry merged;
  merge_metrics(merged);
  merged.write_json(out);
}

}  // namespace stig::serve
