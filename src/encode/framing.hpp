// Message framing over a raw bit stream.
//
// The movement protocols deliver an ordered stream of bits per
// (sender, addressee) pair. Frames make that stream carry whole messages:
//
//   frame := varint(payload_length) | payload bytes | crc8(payload)
//
// transmitted MSB-first bit by bit. The parser is incremental: feed it one
// bit per decoded movement signal and collect completed messages.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "encode/bits.hpp"
#include "obs/cov.hpp"

namespace stig::encode {

/// Encodes one payload into its on-the-wire bit representation.
[[nodiscard]] BitString encode_frame(std::span<const std::uint8_t> payload);

/// Incremental frame parser; one instance per in-order bit stream.
class FrameParser {
 public:
  /// Feeds one bit (0 or 1) into the parser.
  void push_bit(std::uint8_t bit);

  /// Completed, CRC-valid payloads accumulated so far; caller takes
  /// ownership and the internal list is cleared.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> take_messages();

  /// Number of frames dropped due to CRC mismatch or malformed length.
  [[nodiscard]] std::uint64_t corrupt_frames() const noexcept {
    return corrupt_;
  }

  /// Bits consumed over the parser's lifetime.
  [[nodiscard]] std::uint64_t bits_consumed() const noexcept { return bits_; }

  /// True when a frame is partially assembled (bits received since the
  /// last completed frame).
  [[nodiscard]] bool mid_frame() const noexcept {
    return partial_count_ != 0 || !buffer_.empty();
  }

  /// Drops any partially assembled frame and realigns the bit stream.
  /// Receivers call this when the sender provably sits at a frame boundary
  /// (a correct sender never pauses mid-frame), healing streams corrupted
  /// by transient faults — the stabilization mechanism of Section 5.
  void reset();

  /// Transient-corruption hook (fault::CorruptTarget::parser): overwrites
  /// the assembly state with arbitrary seed-derived bytes — a fake partial
  /// buffer and possibly resync mode — as if the parser had been struck
  /// mid-frame. The mid-byte bit count is deliberately preserved: frames
  /// are whole bytes, so byte-level try_resync can recover any byte-content
  /// damage, but a shifted bit phase is invisible to it and only reset()
  /// (which needs an idle sender) can heal it — and the async 2-robot
  /// protocol never idles. Recovery is the normal discipline: the CRC
  /// rejects the inconsistent frame and try_resync / reset() realign the
  /// stream. Counters (corrupt_frames, bits_consumed) are left alone so
  /// accounting stays monotone.
  void scramble(std::uint64_t garbage) {
    buffer_.assign(1 + (garbage & 7), static_cast<std::uint8_t>(garbage));
    partial_ = static_cast<std::uint8_t>(garbage >> 8);
    resync_ = (garbage & 1) != 0;
  }

  /// Attaches a coverage map (not owned; null detaches): records
  /// frame-domain edges between parse outcomes (accept, the three
  /// corruption kinds, resync recovery, mid-frame reset), so a corpus
  /// proves which parser transitions it exercised.
  void set_coverage(obs::cov::CovMap* map) noexcept;

 private:
  /// Records outcome `s` as a frame-domain edge from the previous outcome.
  void cov_note(obs::cov::StateId s) noexcept {
    if (cov_ != nullptr) {
      cov_->hit(obs::cov::Domain::frame, cov_prev_, s);
      cov_prev_ = s;
    }
  }

  void try_parse();
  /// Post-corruption recovery: accepts the first complete, CRC-valid frame
  /// at *any* buffer offset (garbage before it is discarded). Returns true
  /// when a frame was recovered and normal parsing may resume.
  bool try_resync();

  std::vector<std::uint8_t> buffer_;  ///< Whole bytes assembled so far.
  std::uint8_t partial_ = 0;          ///< Bits of the byte in flight.
  std::size_t partial_count_ = 0;
  std::vector<std::vector<std::uint8_t>> messages_;
  std::uint64_t corrupt_ = 0;
  std::uint64_t bits_ = 0;
  bool resync_ = false;  ///< Hunting for a frame after a corrupt prefix.
  obs::cov::CovMap* cov_ = nullptr;  ///< Not owned; null when off.
  /// Interned outcome states (valid while cov_ != nullptr).
  obs::cov::StateId cov_accept_ = 0, cov_corrupt_varint_ = 0,
                    cov_corrupt_len_ = 0, cov_corrupt_crc_ = 0,
                    cov_recovered_ = 0, cov_reset_ = 0;
  obs::cov::StateId cov_prev_ = obs::cov::kInvalidState;
};

}  // namespace stig::encode
