// LEB128-style variable-length integers.
//
// Frames are self-delimiting on a pure bit stream: the payload length is
// sent as a varint so a receiver decoding a sender's movements knows when a
// message ends without any out-of-band signal.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace stig::encode {

/// Appends `value` as an unsigned LEB128 varint (7 data bits per byte,
/// continuation bit 0x80).
inline void append_varint(std::vector<std::uint8_t>& out,
                          std::uint64_t value) {
  do {
    std::uint8_t byte = value & 0x7FU;
    value >>= 7;
    if (value != 0) byte |= 0x80U;
    out.push_back(byte);
  } while (value != 0);
}

/// Result of a varint decode: the value and the number of bytes consumed.
struct VarintDecode {
  std::uint64_t value = 0;
  std::size_t consumed = 0;
};

/// Decodes a varint from the front of `bytes`. Returns nullopt when the
/// input is truncated (ends mid-varint) or overlong (more than 10 bytes).
[[nodiscard]] inline std::optional<VarintDecode> decode_varint(
    std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bytes.size() && i < 10; ++i) {
    value |= static_cast<std::uint64_t>(bytes[i] & 0x7FU) << (7 * i);
    if ((bytes[i] & 0x80U) == 0) {
      return VarintDecode{value, i + 1};
    }
  }
  return std::nullopt;
}

}  // namespace stig::encode
