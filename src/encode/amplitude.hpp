// Multi-level amplitude coding (Section 3.1 remark).
//
// "If each robot r knows the maximum distance sigma_r' that the other robot
// r' can cover in one step, then the protocol can easily be adapted to
// reduce the number of moves made by the robots to send bytes": the total
// excursion 2*sigma (sigma to the right, sigma to the left) is divided into
// equally spaced levels and one movement carries a whole symbol instead of a
// single bit.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>

namespace stig::encode {

/// Maps symbols in [0, 2^bits_per_symbol) to signed amplitudes in
/// [-max_amplitude, +max_amplitude] and back.
///
/// Symbol s occupies amplitude `level(s)`; adjacent levels are separated by
/// `2*max_amplitude / (levels - 1)`, so decoding tolerates perturbations up
/// to half that spacing.
class AmplitudeCodec {
 public:
  /// Preconditions: `bits_per_symbol >= 1`, `max_amplitude > 0`.
  AmplitudeCodec(unsigned bits_per_symbol, double max_amplitude) noexcept
      : bits_(bits_per_symbol),
        levels_(1U << bits_per_symbol),
        max_(max_amplitude) {}

  [[nodiscard]] unsigned bits_per_symbol() const noexcept { return bits_; }
  [[nodiscard]] std::uint32_t levels() const noexcept { return levels_; }

  /// Signed amplitude carrying symbol `s`. Level 0 is -max, the top level
  /// +max; zero displacement is never a symbol, so silence stays
  /// distinguishable — the spacing leaves a dead zone around 0 only when
  /// `levels` is even, which `2^bits` always is.
  [[nodiscard]] double level(std::uint32_t s) const noexcept {
    const double t =
        static_cast<double>(s) / static_cast<double>(levels_ - 1);
    return -max_ + 2.0 * max_ * t;
  }

  /// Half the spacing between adjacent levels: the decode tolerance.
  [[nodiscard]] double tolerance() const noexcept {
    return max_ / static_cast<double>(levels_ - 1);
  }

  /// Decodes an observed amplitude to the nearest symbol, or nullopt when
  /// the amplitude is out of range by more than one tolerance (corruption).
  [[nodiscard]] std::optional<std::uint32_t> decode(
      double amplitude) const noexcept {
    if (std::fabs(amplitude) > max_ + tolerance()) return std::nullopt;
    const double t = (amplitude + max_) / (2.0 * max_);
    const auto s = static_cast<std::int64_t>(
        std::llround(t * static_cast<double>(levels_ - 1)));
    if (s < 0) return 0;
    if (s >= levels_) return levels_ - 1;
    return static_cast<std::uint32_t>(s);
  }

 private:
  unsigned bits_;
  std::uint32_t levels_;
  double max_;
};

}  // namespace stig::encode
