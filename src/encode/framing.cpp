#include "encode/framing.hpp"

#include "encode/crc.hpp"
#include "encode/varint.hpp"

namespace stig::encode {
namespace {

/// Upper bound on accepted payload sizes; anything larger on the wire is
/// treated as corruption rather than waited for indefinitely.
constexpr std::uint64_t kMaxPayload = 1 << 20;

}  // namespace

BitString encode_frame(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> wire;
  wire.reserve(payload.size() + 4);
  append_varint(wire, payload.size());
  wire.insert(wire.end(), payload.begin(), payload.end());
  wire.push_back(crc8(payload));
  return to_bits(wire);
}

void FrameParser::push_bit(std::uint8_t bit) {
  ++bits_;
  partial_ = static_cast<std::uint8_t>((partial_ << 1) | (bit & 1U));
  if (++partial_count_ == 8) {
    buffer_.push_back(partial_);
    partial_ = 0;
    partial_count_ = 0;
    try_parse();
  }
}

void FrameParser::try_parse() {
  for (;;) {
    if (buffer_.empty()) return;
    const auto header = decode_varint(buffer_);
    if (!header) {
      if (buffer_.size() >= 10) {
        // Overlong varint can never complete: resynchronize by a byte.
        ++corrupt_;
        buffer_.erase(buffer_.begin());
        continue;
      }
      return;  // Truncated varint: wait for more bits.
    }
    if (header->value > kMaxPayload) {
      ++corrupt_;
      buffer_.erase(buffer_.begin());
      continue;
    }
    const std::size_t len = static_cast<std::size_t>(header->value);
    const std::size_t total = header->consumed + len + 1;  // +1 for CRC.
    if (buffer_.size() < total) return;  // Wait for the full frame.
    const std::span<const std::uint8_t> payload(
        buffer_.data() + header->consumed, len);
    const std::uint8_t expected = buffer_[header->consumed + len];
    if (crc8(payload) == expected) {
      messages_.emplace_back(payload.begin(), payload.end());
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(total));
    } else {
      ++corrupt_;
      // Drop the whole frame the length field described; if the length
      // itself was corrupted this may eat good bytes, but the next CRC
      // failure keeps resynchronizing.
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(total));
    }
  }
}

void FrameParser::reset() {
  if (mid_frame()) ++corrupt_;
  buffer_.clear();
  partial_ = 0;
  partial_count_ = 0;
}

std::vector<std::vector<std::uint8_t>> FrameParser::take_messages() {
  std::vector<std::vector<std::uint8_t>> out;
  out.swap(messages_);
  return out;
}

}  // namespace stig::encode
