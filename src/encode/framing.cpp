#include "encode/framing.hpp"

#include "encode/crc.hpp"
#include "encode/varint.hpp"

namespace stig::encode {
namespace {

/// Upper bound on accepted payload sizes; anything larger on the wire is
/// treated as corruption rather than waited for indefinitely.
constexpr std::uint64_t kMaxPayload = 1 << 20;

}  // namespace

BitString encode_frame(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> wire;
  wire.reserve(payload.size() + 4);
  append_varint(wire, payload.size());
  wire.insert(wire.end(), payload.begin(), payload.end());
  wire.push_back(crc8(payload));
  return to_bits(wire);
}

void FrameParser::push_bit(std::uint8_t bit) {
  ++bits_;
  partial_ = static_cast<std::uint8_t>((partial_ << 1) | (bit & 1U));
  if (++partial_count_ == 8) {
    buffer_.push_back(partial_);
    partial_ = 0;
    partial_count_ = 0;
    try_parse();
  }
}

void FrameParser::try_parse() {
  for (;;) {
    if (resync_) {
      if (!try_resync()) return;  // Still hunting; wait for more bytes.
      continue;  // A frame was recovered; resume normal parsing.
    }
    if (buffer_.empty()) return;
    const auto header = decode_varint(buffer_);
    if (!header) {
      if (buffer_.size() >= 10) {
        // Overlong varint can never complete: the stream is corrupted.
        ++corrupt_;
        cov_note(cov_corrupt_varint_);
        buffer_.erase(buffer_.begin());
        resync_ = true;
        continue;
      }
      return;  // Truncated varint: wait for more bits.
    }
    if (header->value > kMaxPayload) {
      ++corrupt_;
      cov_note(cov_corrupt_len_);
      buffer_.erase(buffer_.begin());
      resync_ = true;
      continue;
    }
    const std::size_t len = static_cast<std::size_t>(header->value);
    const std::size_t total = header->consumed + len + 1;  // +1 for CRC.
    if (buffer_.size() < total) return;  // Wait for the full frame.
    const std::span<const std::uint8_t> payload(
        buffer_.data() + header->consumed, len);
    const std::uint8_t expected = buffer_[header->consumed + len];
    if (crc8(payload) == expected) {
      messages_.emplace_back(payload.begin(), payload.end());
      cov_note(cov_accept_);
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(total));
    } else {
      ++corrupt_;
      cov_note(cov_corrupt_crc_);
      // The mismatch may be the length field's fault: if the length byte
      // itself was corrupted, `total` lies about the frame's extent, and
      // dropping that many bytes could eat the valid frame that follows.
      // Drop a single byte and switch to resynchronization instead.
      buffer_.erase(buffer_.begin());
      resync_ = true;
    }
  }
}

bool FrameParser::try_resync() {
  // The corrupt prefix poisons the framing: a garbage byte read as a
  // length would make the normal parser wait (possibly forever) for a
  // frame that is not there. Hunt instead: accept the first *complete*,
  // CRC-valid frame starting at any offset, dropping whatever garbage
  // precedes it. Incomplete candidates are not waited for — if one is
  // genuine it completes on a later byte and the scan finds it then.
  //
  // Bytes deeper than the maximal frame extent can never begin a frame
  // this scan would accept (complete candidates there were already
  // rejected, longer declared lengths are over kMaxPayload), so trimming
  // them bounds memory without losing recoverable frames.
  constexpr std::size_t kWindow = kMaxPayload + 11;
  if (buffer_.size() > kWindow) {
    buffer_.erase(buffer_.begin(),
                  buffer_.end() - static_cast<std::ptrdiff_t>(kWindow));
  }
  for (std::size_t at = 0; at < buffer_.size(); ++at) {
    const std::span<const std::uint8_t> tail(buffer_.data() + at,
                                             buffer_.size() - at);
    const auto header = decode_varint(tail);
    if (!header || header->value > kMaxPayload) continue;
    const std::size_t len = static_cast<std::size_t>(header->value);
    const std::size_t total = header->consumed + len + 1;
    if (tail.size() < total) continue;
    const std::span<const std::uint8_t> payload(
        tail.data() + header->consumed, len);
    if (crc8(payload) != tail[header->consumed + len]) continue;
    messages_.emplace_back(payload.begin(), payload.end());
    cov_note(cov_recovered_);
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(at + total));
    resync_ = false;
    return true;
  }
  return false;
}

void FrameParser::reset() {
  if (mid_frame()) {
    ++corrupt_;
    cov_note(cov_reset_);
  }
  buffer_.clear();
  partial_ = 0;
  partial_count_ = 0;
  resync_ = false;
}

void FrameParser::set_coverage(obs::cov::CovMap* map) noexcept {
  cov_ = map;
  if (cov_ == nullptr) return;
  cov_accept_ = cov_->state("frame.accept");
  cov_corrupt_varint_ = cov_->state("frame.corrupt_varint");
  cov_corrupt_len_ = cov_->state("frame.corrupt_len");
  cov_corrupt_crc_ = cov_->state("frame.corrupt_crc");
  cov_recovered_ = cov_->state("frame.recovered");
  cov_reset_ = cov_->state("frame.reset");
  // The first outcome's edge starts from an explicit start state.
  cov_prev_ = cov_->state("frame.start");
}

std::vector<std::vector<std::uint8_t>> FrameParser::take_messages() {
  std::vector<std::vector<std::uint8_t>> out;
  out.swap(messages_);
  return out;
}

}  // namespace stig::encode
