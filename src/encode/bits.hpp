// Bit-level primitives.
//
// Movement protocols transmit one bit per movement signal; everything above
// (bytes, frames, messages) is built from the conversions here. Bits travel
// MSB-first within each byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace stig::encode {

/// A sequence of bits; each element is 0 or 1.
///
/// Deliberately a plain vector of bytes (values 0/1) rather than
/// std::vector<bool>: protocols index, splice and span it heavily and the
/// proxy-reference semantics of vector<bool> are a known trap.
using BitString = std::vector<std::uint8_t>;

/// Appends the 8 bits of `byte`, most significant first.
inline void append_byte(BitString& bits, std::uint8_t byte) {
  for (int i = 7; i >= 0; --i) {
    bits.push_back(static_cast<std::uint8_t>((byte >> i) & 1U));
  }
}

/// Converts bytes to bits, MSB-first.
[[nodiscard]] inline BitString to_bits(std::span<const std::uint8_t> bytes) {
  BitString bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) append_byte(bits, b);
  return bits;
}

/// Converts a whole number of bytes' worth of bits back to bytes.
/// Precondition: `bits.size()` is a multiple of 8.
[[nodiscard]] inline std::vector<std::uint8_t> to_bytes(
    std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(bits.size() / 8);
  for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
    std::uint8_t b = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      b = static_cast<std::uint8_t>((b << 1) | (bits[i + j] & 1U));
    }
    bytes.push_back(b);
  }
  return bytes;
}

/// Converts a string to its byte representation (for examples/tests).
[[nodiscard]] inline std::vector<std::uint8_t> bytes_of(
    std::string_view text) {
  return {text.begin(), text.end()};
}

}  // namespace stig::encode
