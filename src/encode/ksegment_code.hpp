// Base-k index coding for the Section 5 extension.
//
// With limited angular resolution a robot may be unable to realize 2n
// distinct slices. The paper proposes using only k+1 segments (2k+2 slices
// in our diameter representation): one dedicated data diameter plus k index
// diameters, and transmitting the *index of the addressee* as a base-k
// numeral of ceil(log n / log k) digits ahead of each message. This module
// provides the numeral conversion and the step-count model used by the E3
// benchmark to check the paper's O(log n / log log n) slowdown claim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stig::encode {

/// Number of base-k digits needed to write any index in [0, n).
/// Preconditions: k >= 2, n >= 1.
[[nodiscard]] constexpr std::size_t digits_needed(std::size_t n,
                                                  std::size_t k) noexcept {
  std::size_t digits = 1;
  std::size_t capacity = k;
  while (capacity < n) {
    capacity *= k;
    ++digits;
  }
  return digits;
}

/// Encodes `index` (< n) as exactly `digits_needed(n, k)` base-k digits,
/// most significant first.
[[nodiscard]] inline std::vector<std::uint32_t> encode_index(
    std::size_t index, std::size_t n, std::size_t k) {
  const std::size_t d = digits_needed(n, k);
  std::vector<std::uint32_t> digits(d, 0);
  for (std::size_t i = d; i-- > 0;) {
    digits[i] = static_cast<std::uint32_t>(index % k);
    index /= k;
  }
  return digits;
}

/// Decodes a complete base-k numeral (most significant digit first).
[[nodiscard]] inline std::size_t decode_index(
    const std::vector<std::uint32_t>& digits, std::size_t k) noexcept {
  std::size_t value = 0;
  for (std::uint32_t d : digits) value = value * k + d;
  return value;
}

}  // namespace stig::encode
