// CRC-8 integrity check for message frames.
//
// The motion channel is noiseless in the idealized model, but the library is
// meant to be usable as a *fault-tolerant backup* channel (paper Section 1),
// so frames carry an 8-bit CRC allowing receivers to reject corrupted or
// truncated frames — exercised by the fault-injection tests.
#pragma once

#include <cstdint>
#include <span>

namespace stig::encode {

/// CRC-8/ATM (polynomial x^8 + x^2 + x + 1, i.e. 0x07), init 0x00.
[[nodiscard]] constexpr std::uint8_t crc8(
    std::span<const std::uint8_t> data) noexcept {
  std::uint8_t crc = 0;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x80U) != 0
                ? static_cast<std::uint8_t>((crc << 1) ^ 0x07U)
                : static_cast<std::uint8_t>(crc << 1);
    }
  }
  return crc;
}

}  // namespace stig::encode
