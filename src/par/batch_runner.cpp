#include "par/batch_runner.hpp"

#include <algorithm>
#include <utility>

namespace stig::par {

BatchRunner::BatchRunner(BatchOptions options)
    : queue_bound_(std::max<std::size_t>(options.queue_bound, 1)) {
  std::size_t jobs = options.jobs;
  if (jobs == 0) {
    jobs = std::max<unsigned>(std::thread::hardware_concurrency(), 1);
  }
  deques_.resize(jobs);
  workers_.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

BatchRunner::~BatchRunner() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Drain (a destructor must not abandon queued work), then stop.
    idle_cv_.wait(lock, [this] { return queued_ == 0 && active_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void BatchRunner::submit(Task task) {
  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock, [this] { return queued_ < queue_bound_; });
  deques_[next_worker_].push_back(std::move(task));
  next_worker_ = (next_worker_ + 1) % deques_.size();
  ++queued_;
  stats_.peak_queued = std::max(stats_.peak_queued, queued_);
  lock.unlock();
  work_cv_.notify_one();
}

void BatchRunner::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queued_ == 0 && active_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

BatchStats BatchRunner::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool BatchRunner::pop_task(std::size_t self, Task& task) {
  if (!deques_[self].empty()) {
    task = std::move(deques_[self].front());
    deques_[self].pop_front();
    return true;
  }
  // Steal from the back of the fullest peer: the owner works the front of
  // its deque, thieves take the opposite end (least disturbance, and the
  // fullest peer heuristic balances a skewed round-robin deal).
  std::size_t victim = deques_.size();
  std::size_t victim_depth = 0;
  for (std::size_t i = 0; i < deques_.size(); ++i) {
    if (i != self && deques_[i].size() > victim_depth) {
      victim = i;
      victim_depth = deques_[i].size();
    }
  }
  if (victim == deques_.size()) return false;
  task = std::move(deques_[victim].back());
  deques_[victim].pop_back();
  ++stats_.stolen;
  return true;
}

void BatchRunner::worker_loop(std::size_t self) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Task task;
    if (pop_task(self, task)) {
      --queued_;
      ++active_;
      lock.unlock();
      space_cv_.notify_one();
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> error_lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      task = nullptr;  // Destroy captures outside the relock below.
      lock.lock();
      --active_;
      ++stats_.executed;
      if (queued_ == 0 && active_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
  }
}

}  // namespace stig::par
