// BatchRunner — a work-stealing thread pool for independent simulation runs.
//
// SSM executions are embarrassingly parallel across *runs*: a fuzz case, a
// bench row or a soak round touches no state outside its own ChatNetwork,
// so the only work the pool has to do is hand whole simulations to worker
// threads and put the results back in submission order. The pool is built
// for that grain:
//
//   * each worker owns a deque; `submit` deals tasks round-robin, the owner
//     pops from the front, idle workers steal from the back of the busiest
//     peer — classic work stealing, sized for tasks that each run for
//     >= hundreds of microseconds;
//   * the injection queue is bounded: `submit` blocks while `queue_bound`
//     tasks are already waiting (backpressure), so a producer enumerating
//     millions of soak cases never buffers more than a constant number of
//     closures;
//   * a task that throws does not wedge the pool: the first exception is
//     captured, every remaining task still runs, and `wait()` (or `map`)
//     rethrows after the drain;
//   * determinism is the caller's contract and the pool's design target:
//     nothing a task may observe depends on which worker runs it or in
//     what order tasks complete. `map` keys results by case index, and all
//     library state a case touches (RNG seeds via par::derive_seed, the
//     thread-local geom::GeomCache, one obs::MetricsRegistry per task
//     merged on join) is per-case or per-thread-with-identical-semantics.
//     That contract is what the job-count-invariance suite asserts.
//
// Synchronization is deliberately coarse — one mutex guards the deques and
// counters. At the pool's task grain (entire simulations) the lock round
// per task is noise, and a single lock keeps the pool trivially clean
// under ThreadSanitizer, which gates this subsystem in CI.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace stig::par {

struct BatchOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency (at least 1).
  std::size_t jobs = 0;
  /// Max tasks waiting in deques before `submit` blocks (>= 1).
  std::size_t queue_bound = 256;
};

/// Pool counters, readable at any time (values are monotone snapshots).
struct BatchStats {
  std::uint64_t executed = 0;     ///< Tasks that finished running.
  std::uint64_t stolen = 0;       ///< Tasks run by a non-assigned worker.
  std::size_t peak_queued = 0;    ///< High-water mark of waiting tasks —
                                  ///< never exceeds queue_bound.
};

class BatchRunner {
 public:
  using Task = std::function<void()>;

  explicit BatchRunner(BatchOptions options = {});
  /// Drains every queued task, then joins the workers. A pending captured
  /// exception is swallowed here — call `wait()` first to observe it.
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  [[nodiscard]] std::size_t jobs() const noexcept { return workers_.size(); }

  /// Enqueues one task. Blocks while `queue_bound` tasks are waiting
  /// (backpressure). Must not be called from inside a pool task.
  void submit(Task task);

  /// Blocks until every submitted task has run, then rethrows the first
  /// exception any task threw (if any) and clears it. The pool stays
  /// usable afterwards — an exception never cancels sibling tasks.
  void wait();

  [[nodiscard]] BatchStats stats() const;

  /// Runs `fn(0) .. fn(count-1)` across the pool and returns the results
  /// in index order — the order is a property of the batch, not of the
  /// schedule, so a deterministic `fn` yields a job-count-invariant
  /// result vector. If calls throw, the lowest-index exception is
  /// rethrown after every case has been attempted (drain-on-exception).
  /// `R` must be default-constructible and movable.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<R> results(count);
    std::vector<std::exception_ptr> errors(count);
    for (std::size_t i = 0; i < count; ++i) {
      submit([&results, &errors, &fn, i] {
        try {
          results[i] = fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    wait();
    for (std::size_t i = 0; i < count; ++i) {
      if (errors[i]) std::rethrow_exception(errors[i]);
    }
    return results;
  }

 private:
  void worker_loop(std::size_t self);
  /// Pops the next task for worker `self` (own front, else steal from the
  /// back of the fullest peer). Caller holds `mutex_`.
  [[nodiscard]] bool pop_task(std::size_t self, Task& task);

  const std::size_t queue_bound_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< Workers: a task was queued / stop.
  std::condition_variable space_cv_;  ///< Producers: queue dropped below bound.
  std::condition_variable idle_cv_;   ///< wait(): everything drained.

  std::vector<std::deque<Task>> deques_;  ///< One per worker.
  std::size_t next_worker_ = 0;           ///< Round-robin submit target.
  std::size_t queued_ = 0;                ///< Tasks sitting in deques.
  std::size_t active_ = 0;                ///< Tasks currently executing.
  bool stop_ = false;
  std::exception_ptr first_error_;
  BatchStats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace stig::par
