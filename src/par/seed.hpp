// Deterministic per-task seed derivation for parallel batches.
//
// Every parallel consumer in the library (stigfuzz --jobs, stigsoak, the
// bench batch mode) derives one independent 64-bit seed per case from a
// root seed and the case index, via the splitmix64 output function. The
// derivation depends only on (root, index) — never on which worker thread
// runs the case or in what order cases complete — which is the foundation
// of the job-count-invariance guarantee: the same root seed produces the
// same per-case randomness at --jobs 1 and --jobs 8.
//
// `derive_seed(root, i)` equals the (i+1)-th output of a splitmix64 stream
// seeded with `root`; the sequential walk stigfuzz has always used is the
// special case of consuming indices 0, 1, 2, ... in order, so batch mode
// reproduces the historical case seeds exactly.
#pragma once

#include <cstdint>

namespace stig::par {

/// splitmix64 odd constant (Steele, Lea & Flood; golden-ratio increment).
inline constexpr std::uint64_t kSeedGamma = 0x9e3779b97f4a7c15ULL;

/// splitmix64 output function: a bijective avalanche mix of `z`.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The seed for case `index` of a batch rooted at `root`: element `index`
/// of the splitmix64 stream seeded with `root`. Pure function of its
/// arguments — safe to evaluate from any thread in any order.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t root,
                                                  std::uint64_t index)
    noexcept {
  return mix_seed(root + (index + 1) * kSeedGamma);
}

}  // namespace stig::par
