#include "proto/async2.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "geom/angle.hpp"

namespace stig::proto {

void Async2Robot::initialize(const sim::Snapshot& snap) {
  if (snap.robots.size() != 2) {
    throw std::invalid_argument("Async2Robot requires exactly two robots");
  }
  self_t0_ = snap.self;
  const geom::Vec2 self = snap.self_robot().position;
  const geom::Vec2 peer = snap.robots[1 - snap.self].position;
  sep_ = geom::dist(self, peer);
  north_ = (self - peer).normalized();  // Away from the peer.
  east_ = geom::rotate_clockwise(north_, geom::kPi / 2.0);
  peer_east_ = geom::rotate_clockwise(-north_, geom::kPi / 2.0);
  horizon_ = geom::Line{self, north_};
  tolerance_ = 1e-7 * sep_;
  // Initial march window doubles as the handshake: no bit is sent before
  // the peer has been observed to change twice (Corollary 4.2).
  barrier_.arm(tracker_, /*self_slot=*/1, options_.ack_changes);
}

double Async2Robot::step_size() const {
  double step = options_.step_fraction * sep_;
  step = std::min(step, 0.9 * options_.sigma_local);
  if (options_.bound == BoundKind::banded) {
    step = std::min(step, options_.band_fraction * sep_ / 4.0);
  }
  return step;
}

geom::Vec2 Async2Robot::march_move(const geom::Vec2& cur) {
  // Stabilization recovery: marching assumes the robot sits on H. A
  // corrupted phase flag can enter the march mid-return; marching parallel
  // to H would then signal the stale side forever — and Async2 has no idle
  // window to heal through. Walk home first. Unreachable in a correct run
  // (the go_back -> march transition requires distance <= tolerance / 2,
  // and marching preserves the off-H component).
  if (horizon_.distance(cur) > 0.5 * tolerance_) {
    return horizon_.project(cur);  // sigma-clamped by the engine.
  }
  const double step = step_size();
  if (options_.bound == BoundKind::unbounded) {
    return cur + north_ * step;
  }
  // Banded: bounce along H inside [0, band] North of the start position.
  const double band = options_.band_fraction * sep_;
  const double offset = geom::dot(cur - horizon_.point, north_);
  if (march_sign_ > 0 && offset + step > band) march_sign_ = -1;
  if (march_sign_ < 0 && offset - step < 0.0) march_sign_ = 1;
  return cur + north_ * (static_cast<double>(march_sign_) * step);
}

void Async2Robot::corrupt_protocol_state(CorruptKind kind,
                                         std::uint64_t garbage) {
  // No naming tables with two robots, so ::naming is vacuous here.
  if (kind != CorruptKind::phase) return;
  // Restricted-by-design envelope (docs/STABILIZATION.md): Async2 has no
  // idle window — Remark 4.3 keeps both robots moving forever — so any
  // corruption that inserts or deletes a stream bit (a phantom excursion,
  // a flipped decoder side, a re-signaled bit in flight) could never be
  // realigned. What *is* writable: the bounce direction (self-correcting
  // at the band edges), the ack barrier (re-armed with a garbage-widened
  // threshold — wider only delays, and the re-arm itself restores the
  // Lemma 4.1 guarantee), and the march/go_back flags (the march recovery
  // branch walks an off-H robot home; the re-armed barrier restores the
  // separator guarantee). The excursion phase is left alone: leaving it
  // early would signal the bit in flight twice.
  march_sign_ = (garbage & 1) != 0 ? 1 : -1;
  if (phase_ != Phase::excurse) {
    phase_ = (garbage & 2) != 0 ? Phase::march : Phase::go_back;
  }
  barrier_.arm(tracker_, /*self_slot=*/1, options_.ack_changes + garbage % 8);
}

geom::Vec2 Async2Robot::on_activate(const sim::Snapshot& snap) {
  note_activation(snap);
  const geom::Vec2 self = snap.self_robot().position;
  const geom::Vec2 peer = snap.robots[1 - snap.self].position;
  tracker_.observe(0, peer);

  // Decode the peer: which side of H is it on? (East/West are relative to
  // the *peer's* North; chirality makes the convention common.)
  const double e = geom::dot(peer - horizon_.project(peer), peer_east_);
  const int cls = e > tolerance_ ? 1 : (e < -tolerance_ ? -1 : 0);
  if (cls != 0 && cls != peer_state_) {
    on_bit_decoded(/*sender=*/1, /*addressee=*/0, cls > 0 ? 0 : 1);
  }
  peer_state_ = cls;

  // Our own move.
  switch (phase_) {
    case Phase::march: {
      note_phase("march");
      const auto bit = peek_bit();
      if (bit && barrier_.satisfied(tracker_)) {
        assert(bit->first == 1 && "2-robot chat: the peer is slot 1");
        exc_dir_ = bit->second == 0 ? east_ : -east_;
        barrier_.arm(tracker_, 1, options_.ack_changes);
        note_ack_window();
        note_phase("excursion");
        phase_ = Phase::excurse;
        return self + exc_dir_ * step_size();
      }
      return march_move(self);
    }
    case Phase::excurse: {
      note_phase("excursion");
      if (barrier_.satisfied(tracker_)) {
        // Ack received: the peer saw this excursion. Head back to H.
        note_ack(/*peer_slot=*/1);
        advance_outbox();
        note_phase("return");
        phase_ = Phase::go_back;
        return horizon_.project(self);
      }
      return self + exc_dir_ * step_size();
    }
    case Phase::go_back: {
      note_phase("return");
      if (horizon_.distance(self) <= 0.5 * tolerance_) {
        note_phase("march");
        phase_ = Phase::march;
        barrier_.arm(tracker_, 1, options_.ack_changes);  // Separator window.
        return march_move(self);
      }
      return horizon_.project(self);  // sigma-clamped by the engine.
    }
  }
  return self;  // Unreachable.
}

}  // namespace stig::proto
