#include "proto/async2.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "geom/angle.hpp"

namespace stig::proto {

void Async2Robot::initialize(const sim::Snapshot& snap) {
  if (snap.robots.size() != 2) {
    throw std::invalid_argument("Async2Robot requires exactly two robots");
  }
  self_t0_ = snap.self;
  const geom::Vec2 self = snap.self_robot().position;
  const geom::Vec2 peer = snap.robots[1 - snap.self].position;
  sep_ = geom::dist(self, peer);
  north_ = (self - peer).normalized();  // Away from the peer.
  east_ = geom::rotate_clockwise(north_, geom::kPi / 2.0);
  peer_east_ = geom::rotate_clockwise(-north_, geom::kPi / 2.0);
  horizon_ = geom::Line{self, north_};
  tolerance_ = 1e-7 * sep_;
  // Initial march window doubles as the handshake: no bit is sent before
  // the peer has been observed to change twice (Corollary 4.2).
  barrier_.arm(tracker_, /*self_slot=*/1, options_.ack_changes);
}

double Async2Robot::step_size() const {
  double step = options_.step_fraction * sep_;
  step = std::min(step, 0.9 * options_.sigma_local);
  if (options_.bound == BoundKind::banded) {
    step = std::min(step, options_.band_fraction * sep_ / 4.0);
  }
  return step;
}

geom::Vec2 Async2Robot::march_move(const geom::Vec2& cur) {
  const double step = step_size();
  if (options_.bound == BoundKind::unbounded) {
    return cur + north_ * step;
  }
  // Banded: bounce along H inside [0, band] North of the start position.
  const double band = options_.band_fraction * sep_;
  const double offset = geom::dot(cur - horizon_.point, north_);
  if (march_sign_ > 0 && offset + step > band) march_sign_ = -1;
  if (march_sign_ < 0 && offset - step < 0.0) march_sign_ = 1;
  return cur + north_ * (static_cast<double>(march_sign_) * step);
}

geom::Vec2 Async2Robot::on_activate(const sim::Snapshot& snap) {
  note_activation(snap);
  const geom::Vec2 self = snap.self_robot().position;
  const geom::Vec2 peer = snap.robots[1 - snap.self].position;
  tracker_.observe(0, peer);

  // Decode the peer: which side of H is it on? (East/West are relative to
  // the *peer's* North; chirality makes the convention common.)
  const double e = geom::dot(peer - horizon_.project(peer), peer_east_);
  const int cls = e > tolerance_ ? 1 : (e < -tolerance_ ? -1 : 0);
  if (cls != 0 && cls != peer_state_) {
    on_bit_decoded(/*sender=*/1, /*addressee=*/0, cls > 0 ? 0 : 1);
  }
  peer_state_ = cls;

  // Our own move.
  switch (phase_) {
    case Phase::march: {
      note_phase("march");
      const auto bit = peek_bit();
      if (bit && barrier_.satisfied(tracker_)) {
        assert(bit->first == 1 && "2-robot chat: the peer is slot 1");
        exc_dir_ = bit->second == 0 ? east_ : -east_;
        barrier_.arm(tracker_, 1, options_.ack_changes);
        note_ack_window();
        note_phase("excursion");
        phase_ = Phase::excurse;
        return self + exc_dir_ * step_size();
      }
      return march_move(self);
    }
    case Phase::excurse: {
      note_phase("excursion");
      if (barrier_.satisfied(tracker_)) {
        // Ack received: the peer saw this excursion. Head back to H.
        note_ack(/*peer_slot=*/1);
        advance_outbox();
        note_phase("return");
        phase_ = Phase::go_back;
        return horizon_.project(self);
      }
      return self + exc_dir_ * step_size();
    }
    case Phase::go_back: {
      note_phase("return");
      if (horizon_.distance(self) <= 0.5 * tolerance_) {
        note_phase("march");
        phase_ = Phase::march;
        barrier_.arm(tracker_, 1, options_.ack_changes);  // Separator window.
        return march_move(self);
      }
      return horizon_.project(self);  // sigma-clamped by the engine.
    }
  }
  return self;  // Unreachable.
}

}  // namespace stig::proto
