#include "proto/conformance.hpp"

#include <string>

#include "geom/geom_cache.hpp"
#include "geom/granular.hpp"
#include "geom/line.hpp"
#include "geom/voronoi.hpp"
#include "proto/naming.hpp"

namespace stig::proto {

std::vector<Violation> validate_sliced_trace(
    std::span<const geom::Vec2> t0_positions,
    const std::vector<std::vector<geom::Vec2>>& history, NamingMode naming,
    std::size_t diameters, double angle_tolerance) {
  const std::size_t n = t0_positions.size();
  std::vector<geom::Granular> granulars;
  granulars.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Vec2 reference =
        naming == NamingMode::relative
            ? horizon_direction(t0_positions, i)
            : geom::Vec2{0.0, 1.0};
    granulars.emplace_back(t0_positions[i],
                           geom::cached_granular_radius(t0_positions, i),
                           diameters,
                           reference);
  }

  std::vector<Violation> violations;
  for (std::size_t t = 0; t < history.size(); ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      const geom::Granular& g = granulars[i];
      const geom::Vec2& pos = history[t][i];
      const double d = geom::dist(pos, g.center());
      if (d >= g.radius()) {
        violations.push_back({i, t, "outside granular"});
        continue;
      }
      if (d <= 1e-7 * g.radius()) continue;  // At the center.
      const auto fix = g.classify(pos, 1e-7 * g.radius());
      if (!fix || fix->angular_error > angle_tolerance) {
        violations.push_back({i, t, "off every labeled ray"});
      }
    }
  }
  return violations;
}

std::vector<Violation> validate_async2_trace(
    const geom::Vec2& base_a, const geom::Vec2& base_b,
    const std::vector<std::vector<geom::Vec2>>& history, double tolerance) {
  const double sep = geom::dist(base_a, base_b);
  const geom::Line h = geom::Line::through(base_a, base_b);
  const geom::Vec2 north_a = (base_a - base_b).normalized();
  const geom::Vec2 north_b = -north_a;

  std::vector<Violation> violations;
  for (std::size_t t = 0; t < history.size(); ++t) {
    const geom::Vec2 bases[2] = {base_a, base_b};
    const geom::Vec2 norths[2] = {north_a, north_b};
    for (std::size_t i = 0; i < 2; ++i) {
      const geom::Vec2& pos = history[t][i];
      // Rule 1: never south of the own base (toward/past the peer).
      const double along = geom::dot(pos - bases[i], norths[i]);
      if (along < -tolerance * sep) {
        violations.push_back({i, t, "south of own base"});
      }
      // Rule 2: the position is reachable from H by a pure perpendicular
      // excursion — trivially true geometrically, so the meaningful check
      // is that *while off H*, the robot's H-projection lies north of its
      // base (excursions depart from march positions).
      const double off = std::fabs(h.signed_offset(pos));
      if (off > tolerance * sep && along < -tolerance * sep) {
        violations.push_back({i, t, "excursion from south of base"});
      }
    }
  }
  return violations;
}

}  // namespace stig::proto
