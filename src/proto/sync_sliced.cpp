#include "proto/sync_sliced.hpp"

#include <algorithm>
#include <cassert>

namespace stig::proto {

namespace {
/// Consecutive at-center observations of a sender after which its streams
/// are reset to a frame boundary. A correct sender pauses at most one
/// instant between bits of a frame (the return step), so 3 is safe; after
/// a transient fault this is what heals misaligned streams.
constexpr std::uint8_t kResyncGap = 3;
}  // namespace

void SyncSlicedRobot::initialize(const sim::Snapshot& snap) {
  core_ = SlicedCore(snap, options_.naming, snap.robots.size());
  peer_was_off_.assign(core_.robot_count(), false);
  peer_idle_.assign(core_.robot_count(), 0);
}

geom::Vec2 SyncSlicedRobot::on_activate(const sim::Snapshot& snap) {
  note_activation(snap);
  const std::size_t self = core_.self_index();
  // Stabilization: re-derive the flocking clock from observed time instead
  // of trusting the stored counter. In a synchronous system the two are
  // equal (bit-identical in a correct run); after a transient corruption
  // of step_ the drift estimate self-heals on the very next activation.
  step_ = snap.t;
  const geom::Vec2 drift = drift_at(step_);

  // Granular-naming audit (stabilization): only when a corruption is
  // scheduled this run — recomputing the tables allocates, and fault-free
  // runs must stay allocation-free. A detected repair also resets every
  // stream: a robot with corrupted names has been filing decoded bits
  // under the wrong (sender, addressee) keys, so all reassembly state is
  // suspect.
  if (stabilization_armed() && core_.audit_naming()) {
    for (std::size_t j = 0; j < core_.robot_count(); ++j) {
      reset_streams_from(j);
      peer_was_off_[j] = false;
      peer_idle_[j] = 0;
    }
  }

  // Undo the common flocking drift to recover protocol-space positions.
  // Both paths write into driver-owned scratch: the snapshot copy and the
  // associated positions reuse capacity across activations.
  std::vector<geom::Vec2>& pos = pos_scratch_;
  if (options_.flock_velocity == geom::Vec2{0.0, 0.0}) {
    core_.associate_into(snap, pos);
  } else {
    snap_scratch_ = snap;
    for (sim::ObservedRobot& r : snap_scratch_.robots) r.position -= drift;
    core_.associate_into(snap_scratch_, pos);
  }

  // Decode every other robot's movement signal. A bit is emitted on the
  // center -> off-center transition; the sender names the addressee by the
  // diameter label *in its own labeling*, which we reconstruct.
  for (std::size_t j = 0; j < core_.robot_count(); ++j) {
    if (j == self) continue;
    const auto signal = core_.classify(j, pos[j]);
    if (signal && !peer_was_off_[j]) {
      const std::size_t addressee_robot =
          core_.robot_with_rank(j, signal->diameter);
      on_bit_decoded(core_.rank(self, j), core_.rank(self, addressee_robot),
                     signal->side == geom::DiameterSide::positive ? 0 : 1);
    }
    peer_was_off_[j] = signal.has_value();
    // Stream resynchronization (stabilization): a sender at rest for
    // several instants is at a frame boundary; drop any partial frame a
    // transient fault may have left in its streams.
    if (signal) {
      peer_idle_[j] = 0;
    } else if (peer_idle_[j] < kResyncGap &&
               ++peer_idle_[j] == kResyncGap) {
      reset_streams_from(core_.rank(self, j));
    }
  }

  // Our own move (protocol space), then re-apply drift for the next instant.
  geom::Vec2 target = pos[self];
  if (displaced_) {
    note_phase("return");
    target = core_.center(self);
    displaced_ = false;
    advance_outbox();  // The out-and-back signal is now complete.
  } else if (const auto bit = peek_bit()) {
    note_phase("signal");
    const double headroom =
        std::max(0.0, options_.sigma_local - drift_speed());
    const double amp =
        std::min(0.8 * headroom,
                 options_.amplitude_fraction * core_.radius(self));
    assert(amp > 0.0 && "sigma too small to signal");
    const Signal s{bit->first, bit->second == 0
                                   ? geom::DiameterSide::positive
                                   : geom::DiameterSide::negative};
    target = core_.signal_point(s, amp);
    displaced_ = true;
  }
  else {
    // Silent — and self-healing: the rest position is the granular center,
    // so a robot displaced by a transient fault walks back instead of
    // resting wherever the fault left it. In a correct run this is a no-op.
    note_phase("idle");
    target = core_.center(self);
  }

  return target + drift_at(step_ + 1);
}

void SyncSlicedRobot::corrupt_protocol_state(CorruptKind kind,
                                             std::uint64_t garbage) {
  if (kind == CorruptKind::naming) {
    core_.scramble_naming(garbage);
    return;
  }
  // Recoverable phase envelope: a flipped mid-bit flag drops or repeats a
  // signal, scrambled edge/idle trackers miss, duplicate or spuriously
  // reset a stream — all frame content/alignment damage the CRC rejects
  // and the kResyncGap idle rule realigns once the sender rests. The
  // flocking clock heals on the next activation (re-derived from snap.t).
  displaced_ = (garbage & 1) != 0;
  step_ += (garbage >> 32) | 1;
  if (!peer_was_off_.empty()) {
    peer_was_off_[(garbage >> 8) % peer_was_off_.size()] =
        (garbage & 2) != 0;
    // Strictly below kResyncGap: the reset fires on the ++ == gap
    // transition, so a counter planted at the gap would suppress resyncs
    // for that stream instead of forcing one.
    peer_idle_[(garbage >> 16) % peer_idle_.size()] =
        static_cast<std::uint8_t>(garbage % kResyncGap);
  }
}

}  // namespace stig::proto
