#include "proto/sync_sliced.hpp"

#include <algorithm>
#include <cassert>

namespace stig::proto {

namespace {
/// Consecutive at-center observations of a sender after which its streams
/// are reset to a frame boundary. A correct sender pauses at most one
/// instant between bits of a frame (the return step), so 3 is safe; after
/// a transient fault this is what heals misaligned streams.
constexpr std::uint8_t kResyncGap = 3;
}  // namespace

void SyncSlicedRobot::initialize(const sim::Snapshot& snap) {
  core_ = SlicedCore(snap, options_.naming, snap.robots.size());
  peer_was_off_.assign(core_.robot_count(), false);
  peer_idle_.assign(core_.robot_count(), 0);
}

geom::Vec2 SyncSlicedRobot::on_activate(const sim::Snapshot& snap) {
  note_activation(snap);
  const std::size_t self = core_.self_index();
  const geom::Vec2 drift = drift_at(step_);
  ++step_;

  // Undo the common flocking drift to recover protocol-space positions.
  // Both paths write into driver-owned scratch: the snapshot copy and the
  // associated positions reuse capacity across activations.
  std::vector<geom::Vec2>& pos = pos_scratch_;
  if (options_.flock_velocity == geom::Vec2{0.0, 0.0}) {
    core_.associate_into(snap, pos);
  } else {
    snap_scratch_ = snap;
    for (sim::ObservedRobot& r : snap_scratch_.robots) r.position -= drift;
    core_.associate_into(snap_scratch_, pos);
  }

  // Decode every other robot's movement signal. A bit is emitted on the
  // center -> off-center transition; the sender names the addressee by the
  // diameter label *in its own labeling*, which we reconstruct.
  for (std::size_t j = 0; j < core_.robot_count(); ++j) {
    if (j == self) continue;
    const auto signal = core_.classify(j, pos[j]);
    if (signal && !peer_was_off_[j]) {
      const std::size_t addressee_robot =
          core_.robot_with_rank(j, signal->diameter);
      on_bit_decoded(core_.rank(self, j), core_.rank(self, addressee_robot),
                     signal->side == geom::DiameterSide::positive ? 0 : 1);
    }
    peer_was_off_[j] = signal.has_value();
    // Stream resynchronization (stabilization): a sender at rest for
    // several instants is at a frame boundary; drop any partial frame a
    // transient fault may have left in its streams.
    if (signal) {
      peer_idle_[j] = 0;
    } else if (peer_idle_[j] < kResyncGap &&
               ++peer_idle_[j] == kResyncGap) {
      reset_streams_from(core_.rank(self, j));
    }
  }

  // Our own move (protocol space), then re-apply drift for the next instant.
  geom::Vec2 target = pos[self];
  if (displaced_) {
    note_phase("return");
    target = core_.center(self);
    displaced_ = false;
    advance_outbox();  // The out-and-back signal is now complete.
  } else if (const auto bit = peek_bit()) {
    note_phase("signal");
    const double headroom =
        std::max(0.0, options_.sigma_local - drift_speed());
    const double amp =
        std::min(0.8 * headroom,
                 options_.amplitude_fraction * core_.radius(self));
    assert(amp > 0.0 && "sigma too small to signal");
    const Signal s{bit->first, bit->second == 0
                                   ? geom::DiameterSide::positive
                                   : geom::DiameterSide::negative};
    target = core_.signal_point(s, amp);
    displaced_ = true;
  }
  else {
    // Silent — and self-healing: the rest position is the granular center,
    // so a robot displaced by a transient fault walks back instead of
    // resting wherever the fault left it. In a correct run this is a no-op.
    note_phase("idle");
    target = core_.center(self);
  }

  return target + drift_at(step_);
}

}  // namespace stig::proto
