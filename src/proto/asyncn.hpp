// Asynchronous one-to-one communication among any number of robots
// (Section 4.2, Figure 6).
//
// Combines the granular/naming machinery of Section 3 with the Section 4
// implicit acknowledgments. Each granular is sliced into n+1 diameters: the
// extra diameter kappa lies on the robot's horizon line H_r (the SEC radius
// through r) and plays the role of the idle line — a robot with nothing to
// send oscillates on kappa (an active robot always moves). Diameter k+1
// addresses the robot of rank k in the sender's labeling.
//
// Per bit, a sender: returns to its granular center if away; moves out on
// the addressee's diameter (positive side = 0, negative = 1) and keeps to
// that ray until it has observed *every* robot change position twice (so
// everyone, in particular the addressee, saw the signal — Lemma 4.1); comes
// back to the center; then moves on kappa until everyone changed twice
// again, separating this bit from the next.
//
// Border avoidance: the paper shrinks step sizes by 1/x per move, which it
// itself flags as requiring infinitesimally small movements. We instead
// bounce inside fixed radial bands (idle: |offset| <= 0.7R on kappa; data:
// offset in [0.35R, 0.85R]), which keeps every step at full size — no
// numerical floor, no Zeno — while preserving the decodable structure:
// neutral positions (center or kappa slice) between bits, positions on the
// addressee's ray during a bit.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/common.hpp"
#include "proto/slices.hpp"
#include "sim/observation.hpp"

namespace stig::proto {

/// Configuration for AsyncNRobot.
struct AsyncNOptions {
  /// Naming scheme; `relative` (the paper's weakest assumption) by default.
  NamingMode naming = NamingMode::relative;
  /// The robot's own maximum per-activation travel, in local units.
  double sigma_local = 1.0;
  /// Movement step as a fraction of the own granular radius. Chosen
  /// irrational-ish so bounce orbits never become exactly periodic.
  double step_fraction = 0.113371;
  /// Best-effort stabilization: after this many consecutive *neutral*
  /// observations of a sender, its streams are reset to a frame boundary.
  /// Must exceed the longest bit separator the scheduler can produce
  /// (a few fairness bounds); 0 disables. Unlike the synchronous
  /// protocols' 3-instant rule this is a heuristic — asynchronous senders
  /// legitimately sit on kappa between bits — so the threshold is large.
  std::uint32_t idle_resync_threshold = 4096;
  /// Observed changes required per acknowledgment window: 2 under atomic
  /// observation (Lemma 4.1), 2d + 2 with d-stale observations.
  std::uint64_t ack_changes = 2;
};

class AsyncNRobot final : public ChatRobot {
 public:
  explicit AsyncNRobot(AsyncNOptions options) : options_(options) {}

  void initialize(const sim::Snapshot& snap) override;
  geom::Vec2 on_activate(const sim::Snapshot& snap) override;

  /// Slots are ranks in this robot's own labeling.
  [[nodiscard]] std::size_t self_slot() const override {
    return core_.rank(core_.self_index(), core_.self_index());
  }
  [[nodiscard]] std::size_t slot_count() const override {
    return core_.robot_count();
  }

  [[nodiscard]] std::size_t slot_of_t0_index(std::size_t i) const override {
    return core_.rank(core_.self_index(), i);
  }

  [[nodiscard]] const SlicedCore& core() const noexcept { return core_; }

 protected:
  void corrupt_protocol_state(CorruptKind kind,
                              std::uint64_t garbage) override;

 private:
  enum class Phase : unsigned char {
    idle,       ///< Oscillating on kappa; no bit in flight.
    go_center,  ///< Returning to the center to start a bit.
    out,        ///< On the addressee's ray, waiting for the global ack.
    back,       ///< Returning to the center after the ack.
    separator,  ///< On kappa, waiting for the separator ack.
  };

  /// The kappa diameter index (0) addresses nobody; diameter k+1 addresses
  /// rank k.
  static constexpr std::size_t kKappa = 0;

  [[nodiscard]] double step_size() const;
  [[nodiscard]] geom::Vec2 kappa_move(const geom::Vec2& cur);
  [[nodiscard]] geom::Vec2 out_move(const geom::Vec2& cur);
  [[nodiscard]] geom::Vec2 center_move(const geom::Vec2& cur) const;
  void decode(const std::vector<geom::Vec2>& pos);

  AsyncNOptions options_;
  SlicedCore core_;
  Phase phase_ = Phase::idle;
  Signal out_signal_{};      ///< Ray of the bit in flight.
  int kappa_sign_ = 1;       ///< Idle bounce direction along kappa.
  int out_sign_ = 1;         ///< Data bounce direction along the ray.
  sim::ChangeTracker tracker_{0};
  sim::AckBarrier barrier_;
  /// Decoder state per robot: the last classification, encoded as
  /// diameter+1 with sign for the side, 0 for neutral.
  std::vector<std::int64_t> peer_state_;
  std::vector<std::uint32_t> peer_idle_;  ///< Consecutive neutral
                                          ///< observations (resync).
  /// Per-activation scratch for the associated positions (capacity reused).
  std::vector<geom::Vec2> pos_scratch_;
};

}  // namespace stig::proto
