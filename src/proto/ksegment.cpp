#include "proto/ksegment.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace stig::proto {

KSegmentRobot::KSegmentRobot(KSegmentOptions options) : options_(options) {
  if (options_.k < 2) {
    throw std::invalid_argument("KSegmentRobot requires k >= 2");
  }
}

void KSegmentRobot::initialize(const sim::Snapshot& snap) {
  core_ = SlicedCore(snap, options_.naming, options_.k + 1);
  digits_ = encode::digits_needed(snap.robots.size(), options_.k);
  decode_.clear();
  decode_.resize(snap.robots.size());
}

geom::Vec2 KSegmentRobot::on_activate(const sim::Snapshot& snap) {
  note_activation(snap);
  const std::size_t self = core_.self_index();

  // Granular-naming audit (stabilization): armed runs only — see
  // SyncSlicedRobot. A repair invalidates all rank-keyed reassembly.
  if (stabilization_armed() && core_.audit_naming()) {
    for (std::size_t j = 0; j < core_.robot_count(); ++j) {
      reset_streams_from(j);
      DecodeState& st = decode_[j];
      st.digits.clear();
      st.in_payload = false;
      st.end_detector.reset();
      st.last_code = 0;
      st.idle = 0;
    }
  }

  // Driver-owned scratch: slice assembly reuses capacity per activation.
  core_.associate_into(snap, pos_scratch_);
  const std::vector<geom::Vec2>& pos = pos_scratch_;

  // --- Decode all other robots' symbols.
  for (std::size_t j = 0; j < core_.robot_count(); ++j) {
    if (j == self) continue;
    DecodeState& st = decode_[j];
    const auto sig = core_.classify(j, pos[j]);
    std::int64_t code = 0;
    if (sig) {
      code = static_cast<std::int64_t>(sig->diameter + 1);
      if (sig->side == geom::DiameterSide::negative) code = -code;
    }
    if (code != 0 && code != st.last_code) {
      if (!st.in_payload) {
        // Digit symbol: diameter 1+d encodes digit d.
        if (sig->diameter >= 1) {
          st.digits.push_back(static_cast<std::uint32_t>(sig->diameter - 1));
          if (st.digits.size() == digits_) {
            st.addressee_rank = encode::decode_index(st.digits, options_.k);
            st.digits.clear();
            // Stabilization guard: base-k prefixes can spell indices up to
            // k^D - 1 >= n, so a corruption-garbled prefix may name a rank
            // no robot has. A conforming sender never does; discard the
            // prefix and let the idle rule resync the stream.
            if (st.addressee_rank < core_.robot_count()) {
              st.in_payload = true;
            }
          }
        }
        // A payload symbol (diameter 0) mid-prefix cannot be produced by a
        // conforming sender under a synchronous scheduler; ignore.
      } else {
        if (sig->diameter == 0) {
          const std::uint8_t bit =
              sig->side == geom::DiameterSide::positive ? 0 : 1;
          const std::size_t addressee =
              core_.robot_with_rank(j, st.addressee_rank);
          on_bit_decoded(core_.rank(self, j), core_.rank(self, addressee),
                         bit);
          st.end_detector.push_bit(bit);
          if (!st.end_detector.take_messages().empty()) {
            st.in_payload = false;  // Frame over: next symbols are digits.
          }
        }
        // A digit symbol mid-payload is likewise non-conforming; ignore.
      }
    }
    st.last_code = code;
    // Stream resynchronization (stabilization): a sender resting for 3
    // instants is between frames; clear its digit prefix and any partial
    // frame left by a transient fault.
    if (code != 0) {
      st.idle = 0;
    } else if (st.idle < 3 && ++st.idle == 3) {
      st.digits.clear();
      st.in_payload = false;
      st.end_detector.reset();
      reset_streams_from(core_.rank(self, j));
    }
  }

  // --- Our own symbol.
  if (displaced_) {
    note_phase("return");
    displaced_ = false;
    if (!pending_digits_.empty()) {
      pending_digits_.erase(pending_digits_.begin());
      if (pending_digits_.empty()) prefix_done_ = true;
    } else {
      advance_outbox();
      if (outbox_.empty() || outbox_.front().cursor == 0) {
        prefix_done_ = false;  // Frame finished; next one needs a prefix.
      }
    }
    return core_.center(self);
  }

  const auto bit = peek_bit();
  // Silent — resting at the center also heals a fault displacement.
  if (!bit) {
    note_phase("idle");
    return core_.center(self);
  }

  // Starting a new frame? Queue its digit prefix first.
  if (!prefix_done_ && pending_digits_.empty()) {
    pending_digits_ = encode::encode_index(bit->first, core_.robot_count(),
                                           options_.k);
  }

  const double amp = std::min(0.8 * options_.sigma_local,
                              options_.amplitude_fraction *
                                  core_.radius(self));
  Signal s;
  if (!pending_digits_.empty()) {
    note_phase("address");
    s = Signal{1 + pending_digits_.front(), geom::DiameterSide::positive};
  } else {
    note_phase("payload");
    s = Signal{0, bit->second == 0 ? geom::DiameterSide::positive
                                   : geom::DiameterSide::negative};
  }
  displaced_ = true;
  return core_.signal_point(s, amp);
}

void KSegmentRobot::corrupt_protocol_state(CorruptKind kind,
                                           std::uint64_t garbage) {
  if (kind == CorruptKind::naming) {
    core_.scramble_naming(garbage);
    return;
  }
  // Recoverable phase envelope. Sender side: a flipped mid-symbol flag
  // drops or repeats one symbol, a flipped prefix flag sends a payload
  // without a prefix (the receiver ignores it) or inserts a prefix
  // mid-frame (ignored mid-payload), a cleared prefix truncates the
  // address. Receiver side: one per-sender decoder gets an in-domain
  // scramble — garbage digits (the decode_index guard catches impossible
  // ranks), a flipped payload flag, a misrouting addressee rank. All of
  // it loses or misroutes at most the frames in flight; the 3-idle rule
  // clears digit state and realigns streams once the sender rests.
  displaced_ = (garbage & 1) != 0;
  prefix_done_ = (garbage & 2) != 0;
  pending_digits_.clear();
  if (!decode_.empty()) {
    DecodeState& st = decode_[(garbage >> 8) % decode_.size()];
    st.digits.clear();
    if (digits_ > 1) {
      st.digits.push_back(
          static_cast<std::uint32_t>((garbage >> 16) % options_.k));
    }
    st.in_payload = (garbage & 4) != 0;
    st.addressee_rank = (garbage >> 24) % core_.robot_count();
    st.last_code = 0;
    // Strictly below the 3-idle threshold: the reset fires on the ++ == 3
    // transition, so a counter planted *at* 3 would suppress resyncs for
    // this stream instead of forcing one.
    st.idle = static_cast<std::uint8_t>(garbage % 3);
  }
}

}  // namespace stig::proto
