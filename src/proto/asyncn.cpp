#include "proto/asyncn.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace stig::proto {
namespace {

/// Idle oscillation stays within this fraction of the radius on kappa.
constexpr double kKappaBand = 0.7;
/// Data-ray bounce band (fractions of the radius). The lower edge stays far
/// above the at-center threshold so a bit in flight never reads as neutral.
constexpr double kOutLow = 0.35;
constexpr double kOutHigh = 0.85;
/// Arrival threshold at the center, as a fraction of the radius; strictly
/// below SlicedCore's at-center classification band.
constexpr double kArrive = 1e-9;

}  // namespace

void AsyncNRobot::initialize(const sim::Snapshot& snap) {
  // n + 1 diameters: kappa plus one per rank.
  core_ = SlicedCore(snap, options_.naming, snap.robots.size() + 1);
  double min_radius = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < core_.robot_count(); ++j) {
    min_radius = std::min(min_radius, core_.radius(j));
  }
  tracker_ = sim::ChangeTracker(core_.robot_count(), 1e-9 * min_radius);
  peer_state_.assign(core_.robot_count(), 0);
  peer_idle_.assign(core_.robot_count(), 0);
  phase_ = Phase::idle;
}

double AsyncNRobot::step_size() const {
  return std::min(0.9 * options_.sigma_local,
                  options_.step_fraction * core_.radius(core_.self_index()));
}

geom::Vec2 AsyncNRobot::kappa_move(const geom::Vec2& cur) {
  const geom::Granular& g = core_.granular(core_.self_index());
  const geom::Vec2 dir = g.direction(kKappa, geom::DiameterSide::positive);
  const double band = kKappaBand * g.radius();
  const double step = step_size();
  const double offset = geom::dot(cur - g.center(), dir);
  if (kappa_sign_ > 0 && offset + step > band) kappa_sign_ = -1;
  if (kappa_sign_ < 0 && offset - step < -band) kappa_sign_ = 1;
  // Recomputing from the center keeps the orbit exactly on the kappa line.
  return g.center() +
         dir * (offset + static_cast<double>(kappa_sign_) * step);
}

geom::Vec2 AsyncNRobot::out_move(const geom::Vec2& cur) {
  const geom::Granular& g = core_.granular(core_.self_index());
  const geom::Vec2 dir = g.direction(out_signal_.diameter, out_signal_.side);
  const double step = step_size();
  const double lo = kOutLow * g.radius();
  const double hi = kOutHigh * g.radius();
  const double offset = geom::dot(cur - g.center(), dir);
  if (out_sign_ > 0 && offset + step > hi) out_sign_ = -1;
  if (out_sign_ < 0 && offset - step < lo) out_sign_ = 1;
  return g.center() + dir * (offset + static_cast<double>(out_sign_) * step);
}

geom::Vec2 AsyncNRobot::center_move(const geom::Vec2& /*cur*/) const {
  // The engine clamps to sigma, preserving the direction.
  return core_.center(core_.self_index());
}

void AsyncNRobot::decode(const std::vector<geom::Vec2>& pos) {
  const std::size_t self = core_.self_index();
  for (std::size_t j = 0; j < core_.robot_count(); ++j) {
    if (j == self) continue;
    const auto sig = core_.classify(j, pos[j]);
    std::int64_t code = 0;
    if (sig && sig->diameter != kKappa) {
      code = static_cast<std::int64_t>(sig->diameter);
      if (sig->side == geom::DiameterSide::negative) code = -code;
    }
    if (code != 0 && code != peer_state_[j]) {
      const std::size_t rank = sig->diameter - 1;  // kappa shifts by one.
      const std::size_t addressee = core_.robot_with_rank(j, rank);
      on_bit_decoded(core_.rank(self, j), core_.rank(self, addressee),
                     sig->side == geom::DiameterSide::positive ? 0 : 1);
    }
    peer_state_[j] = code;
    if (options_.idle_resync_threshold != 0) {
      if (code != 0) {
        peer_idle_[j] = 0;
      } else if (peer_idle_[j] < options_.idle_resync_threshold &&
                 ++peer_idle_[j] == options_.idle_resync_threshold) {
        reset_streams_from(core_.rank(self, j));
      }
    }
  }
}

geom::Vec2 AsyncNRobot::on_activate(const sim::Snapshot& snap) {
  note_activation(snap);
  const std::size_t self = core_.self_index();

  // Granular-naming audit (stabilization): armed runs only — see
  // SyncSlicedRobot. A repair invalidates all rank-keyed reassembly, and
  // this protocol's idle-resync heuristic is far too slow to be trusted
  // with it, so the repair resets everything itself.
  if (stabilization_armed() && core_.audit_naming()) {
    for (std::size_t j = 0; j < core_.robot_count(); ++j) {
      reset_streams_from(j);
      peer_state_[j] = 0;
      peer_idle_[j] = 0;
    }
  }

  // Driver-owned scratch: slice assembly reuses capacity per activation.
  core_.associate_into(snap, pos_scratch_);
  const std::vector<geom::Vec2>& pos = pos_scratch_;
  for (std::size_t j = 0; j < core_.robot_count(); ++j) {
    if (j != self) tracker_.observe(j, pos[j]);
  }
  decode(pos);

  const geom::Vec2 cur = pos[self];
  const double arrive = kArrive * core_.radius(self);

  if (phase_ == Phase::idle && peek_bit()) phase_ = Phase::go_center;

  switch (phase_) {
    case Phase::idle:
      note_phase("idle");
      return kappa_move(cur);

    case Phase::go_center: {
      note_phase("go_center");
      if (geom::dist(cur, core_.center(self)) > arrive) {
        return center_move(cur);
      }
      // At the center: start the bit. The ack window opens with this move.
      const auto bit = peek_bit();
      if (!bit) {
        // Reachable only through a corrupted phase flag (go_center is
        // entered with a bit pending): fall back to the idle oscillation.
        note_phase("idle");
        phase_ = Phase::idle;
        return kappa_move(cur);
      }
      // bit->first == self_slot() is the broadcast lane.
      out_signal_ = Signal{bit->first + 1,  // kappa occupies diameter 0.
                           bit->second == 0 ? geom::DiameterSide::positive
                                            : geom::DiameterSide::negative};
      barrier_.arm(tracker_, self, options_.ack_changes);
      note_ack_window();
      out_sign_ = 1;
      note_phase("signal");
      phase_ = Phase::out;
      return out_move(cur);
    }

    case Phase::out:
      note_phase("signal");
      if (barrier_.satisfied(tracker_)) {
        // Everyone observed the signal (Lemma 4.1): bit acknowledged.
        note_ack();  // Global barrier: every peer changed twice.
        advance_outbox();
        note_phase("return");
        phase_ = Phase::back;
        return center_move(cur);
      }
      return out_move(cur);

    case Phase::back:
      note_phase("return");
      if (geom::dist(cur, core_.center(self)) > arrive) {
        return center_move(cur);
      }
      barrier_.arm(tracker_, self, options_.ack_changes);  // Separator.
      kappa_sign_ = 1;
      note_phase("separator");
      phase_ = Phase::separator;
      return kappa_move(cur);

    case Phase::separator:
      note_phase("separator");
      if (barrier_.satisfied(tracker_)) {
        phase_ = peek_bit() ? Phase::go_center : Phase::idle;
        // Either way this activation still moves; go_center starts heading
        // back from wherever the kappa oscillation left us.
        return phase_ == Phase::go_center ? center_move(cur)
                                          : kappa_move(cur);
      }
      return kappa_move(cur);
  }
  return cur;  // Unreachable.
}

void AsyncNRobot::corrupt_protocol_state(CorruptKind kind,
                                         std::uint64_t garbage) {
  if (kind == CorruptKind::naming) {
    core_.scramble_naming(garbage);
    return;
  }
  // Restricted-by-design envelope (docs/STABILIZATION.md): like Async2,
  // this protocol has no fast idle window — the 4096-neutral heuristic is
  // far too slow to count on — so nothing that inserts or deletes a
  // stream bit is writable: not the decoder's edge states, not the ray of
  // a bit in flight, and not the out/back/separator phases (leaving any
  // of them early re-signals or under-separates the bit in flight).
  // Writable: the bounce directions (self-correcting at the band edges),
  // the ack barrier (re-armed wider — delay only, and the re-arm restores
  // the Lemma 4.1 guarantee), the idle<->go_center flags (mutually
  // self-healing: idle re-enters go_center while a bit is pending, and
  // go_center without one falls back to idle), and an idle-resync counter
  // cleared to 0 (a pure delay of the heuristic — planting a high value
  // could fire a spurious mid-frame reset this protocol cannot outrun).
  kappa_sign_ = (garbage & 1) != 0 ? 1 : -1;
  out_sign_ = (garbage & 2) != 0 ? 1 : -1;
  if (phase_ == Phase::idle || phase_ == Phase::go_center) {
    phase_ = (garbage & 4) != 0 ? Phase::go_center : Phase::idle;
  }
  barrier_.arm(tracker_, core_.self_index(),
               options_.ack_changes + garbage % 8);
  if (!peer_idle_.empty()) {
    peer_idle_[(garbage >> 8) % peer_idle_.size()] = 0;
  }
}

}  // namespace stig::proto
