// Trace conformance checking.
//
// The movement protocols are *total* about where a robot may ever be: a
// sliced-protocol robot is at its granular center, on one of its labeled
// rays, or (asynchronously) on its kappa lane; an Async2 robot is on the
// horizon line or perpendicular to it. These validators replay a recorded
// position history (Trace::positions()) and report every violation — the
// repo's equivalent of a model checker for the implementation, used by the
// conformance test suite on every protocol run.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "geom/vec.hpp"
#include "proto/slices.hpp"

namespace stig::proto {

/// One conformance violation: which robot, which instant, what rule.
struct Violation {
  std::size_t robot = 0;
  std::size_t instant = 0;
  std::string rule;
};

/// Checks a synchronous sliced-protocol trace: every robot, at every
/// recorded instant, is (a) strictly inside its granular and (b) at its
/// center or on one of the `diameters` labeled rays of its own slicing.
/// `naming` selects the per-robot reference direction, exactly as the
/// protocol uses it.
[[nodiscard]] std::vector<Violation> validate_sliced_trace(
    std::span<const geom::Vec2> t0_positions,
    const std::vector<std::vector<geom::Vec2>>& history,
    NamingMode naming, std::size_t diameters,
    double angle_tolerance = 1e-6);

/// Checks an Async2 trace: both robots stay on the common horizon line or
/// strictly perpendicular to it (excursion columns), and never cross to the
/// peer's side of its own base.
[[nodiscard]] std::vector<Violation> validate_async2_trace(
    const geom::Vec2& base_a, const geom::Vec2& base_b,
    const std::vector<std::vector<geom::Vec2>>& history,
    double tolerance = 1e-6);

}  // namespace stig::proto
