#include "proto/naming.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "geom/angle.hpp"
#include "geom/geom_cache.hpp"
#include "geom/sec.hpp"

namespace stig::proto {
namespace {

/// Quantum for angle comparisons: two radii whose angular difference is
/// below this are "the same radius" (paper: robots on one radius are ordered
/// by distance from O). Far below any genuine angular separation between
/// distinct radii in the simulations, far above cross-frame rounding noise.
constexpr double kAngleQuantum = 1e-7;

[[nodiscard]] long long quantize(double v, double quantum) noexcept {
  return static_cast<long long>(std::llround(v / quantum));
}

}  // namespace

std::vector<std::size_t> lex_ranks(std::span<const geom::Vec2> points) {
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              return points[a] < points[b];
            });
  std::vector<std::size_t> ranks(points.size());
  for (std::size_t r = 0; r < order.size(); ++r) ranks[order[r]] = r;
  return ranks;
}

std::vector<std::size_t> id_ranks(std::span<const sim::VisibleId> ids) {
  std::vector<std::size_t> order(ids.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ids[a] < ids[b]; });
  std::vector<std::size_t> ranks(ids.size());
  for (std::size_t r = 0; r < order.size(); ++r) ranks[order[r]] = r;
  return ranks;
}

geom::Vec2 horizon_direction(std::span<const geom::Vec2> points,
                             std::size_t self) {
  assert(points.size() >= 2);
  // Memoized: every robot's labeling pass asks for the SEC of the same t0
  // configuration; the cache turns n^2 Welzl runs per swarm into one.
  const geom::Circle sec = geom::cached_sec(points);
  const geom::Vec2 off = points[self] - sec.center;
  // Scale-aware degeneracy threshold: "at the center" relative to the SEC
  // radius, so the rule is unit-independent.
  if (off.norm() > 1e-9 * std::max(sec.radius, 1e-300)) {
    return off.normalized();
  }

  // Degenerate case: robot exactly at O. Canonical frame-invariant rule —
  // score every direction toward another robot by the clockwise-ordered
  // signature of the whole configuration and pick the smallest.
  double max_d = 0.0;
  for (std::size_t j = 0; j < points.size(); ++j) {
    if (j == self) continue;
    max_d = std::max(max_d, geom::dist(points[self], points[j]));
  }
  using Signature = std::vector<std::pair<long long, long long>>;
  std::size_t best = points.size();
  Signature best_sig;
  for (std::size_t c = 0; c < points.size(); ++c) {
    if (c == self) continue;
    const geom::Vec2 dir = (points[c] - points[self]).normalized();
    Signature sig;
    sig.reserve(points.size() - 1);
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == self) continue;
      const geom::Vec2 rel = points[j] - points[self];
      sig.emplace_back(quantize(geom::clockwise_angle(dir, rel),
                                kAngleQuantum),
                       quantize(rel.norm() / max_d, kAngleQuantum));
    }
    std::sort(sig.begin(), sig.end());
    if (best == points.size() || sig < best_sig) {
      best = c;
      best_sig = std::move(sig);
    }
  }
  return (points[best] - points[self]).normalized();
}

RelativeNaming relative_naming(std::span<const geom::Vec2> points,
                               std::size_t self) {
  assert(points.size() >= 2);
  RelativeNaming naming;
  const geom::Circle sec = geom::cached_sec(points);
  naming.sec_center = sec.center;
  naming.reference = horizon_direction(points, self);

  // Sort key per robot: (clockwise angle of its SEC radius from H_self,
  // distance from O). A robot exactly at O has no radius; it precedes
  // everything on the H_self radius (angle 0, distance 0).
  struct Key {
    long long angle;
    double radial;
    std::size_t index;
  };
  std::vector<Key> keys;
  keys.reserve(points.size());
  for (std::size_t j = 0; j < points.size(); ++j) {
    const geom::Vec2 rel = points[j] - sec.center;
    const double radial = rel.norm();
    const double angle =
        radial > 1e-9 * std::max(sec.radius, 1e-300)
            ? geom::clockwise_angle(naming.reference, rel)
            : 0.0;
    // A radius at clockwise angle ~2*pi is the H_self radius itself.
    long long qa = quantize(angle, kAngleQuantum);
    const long long full_turn = quantize(geom::kTwoPi, kAngleQuantum);
    if (qa >= full_turn) qa = 0;
    keys.push_back(Key{qa, radial, j});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.angle != b.angle) return a.angle < b.angle;
    if (a.radial != b.radial) return a.radial < b.radial;
    return a.index < b.index;
  });
  naming.ranks.assign(points.size(), 0);
  for (std::size_t r = 0; r < keys.size(); ++r) {
    naming.ranks[keys[r].index] = r;
  }
  return naming;
}

}  // namespace stig::proto
