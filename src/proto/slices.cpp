#include "proto/slices.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

#include "geom/geom_cache.hpp"

namespace stig::proto {
namespace {

/// Displacements below this fraction of the granular radius read as "at the
/// center". Signal amplitudes are >= 1e-3 of the radius by construction, and
/// coordinate round-trip noise is ~1e-13 absolute, so the band is safe on
/// both sides. Being radius-relative makes the threshold frame-invariant.
constexpr double kCenterFraction = 1e-7;

/// Swarm size at which `associate_into` switches from the brute
/// nearest-center scan to the t0-center PointGrid (same nearest index —
/// see geom/point_grid.hpp's exactness contract).
constexpr std::size_t kAssociateGridThreshold = 64;

}  // namespace

SlicedCore::SlicedCore(const sim::Snapshot& t0, NamingMode naming,
                       std::size_t diameter_count)
    : n_(t0.robots.size()),
      self_(t0.self),
      diameters_(diameter_count),
      naming_(naming) {
  assert(diameter_count >= 1);
  centers_.reserve(n_);
  for (const sim::ObservedRobot& r : t0.robots) {
    centers_.push_back(r.position);
  }
  if (naming == NamingMode::by_ids) {
    ids_.reserve(n_);
    for (const sim::ObservedRobot& r : t0.robots) {
      if (!r.id) {
        throw std::invalid_argument(
            "NamingMode::by_ids requires an identified system");
      }
      ids_.push_back(*r.id);
    }
  }

  shared_ranks_ = naming != NamingMode::relative;
  std::vector<geom::Vec2> references(n_);
  compute_ranks(ranks_, inverse_ranks_, &references);

  if (n_ >= kAssociateGridThreshold) {
    center_grid_.build(centers_);
  }

  granulars_.reserve(n_);
  // Memoized per configuration epoch: all n robots build their SlicedCore
  // from the same t0 snapshot, so one O(n^2) radii pass serves the swarm.
  const std::vector<double>& radii =
      geom::GeomCache::local().granular_radii(centers_);
  for (std::size_t i = 0; i < n_; ++i) {
    const double r = radii[i];
    if (r <= 0.0) {
      throw std::invalid_argument("granular radius must be positive");
    }
    granulars_.emplace_back(centers_[i], r, diameters_, references[i]);
  }
}

void SlicedCore::compute_ranks(std::vector<std::uint32_t>& ranks,
                               std::vector<std::uint32_t>& inverse,
                               std::vector<geom::Vec2>* references) const {
  // Reference directions and labelings. Shared namings (by_ids,
  // lexicographic) flatten to a single row; relative naming stores one
  // row per observer.
  ranks.clear();
  ranks.reserve(shared_ranks_ ? n_ : n_ * n_);
  const auto append_row = [&ranks](const std::vector<std::size_t>& row) {
    for (const std::size_t r : row) {
      ranks.push_back(static_cast<std::uint32_t>(r));
    }
  };
  switch (naming_) {
    case NamingMode::by_ids: {
      append_row(id_ranks(ids_));
      if (references != nullptr) {
        for (std::size_t i = 0; i < n_; ++i) {
          // North (sense of direction).
          (*references)[i] = geom::Vec2{0.0, 1.0};
        }
      }
      break;
    }
    case NamingMode::lexicographic: {
      append_row(lex_ranks(centers_));
      if (references != nullptr) {
        for (std::size_t i = 0; i < n_; ++i) {
          (*references)[i] = geom::Vec2{0.0, 1.0};
        }
      }
      break;
    }
    case NamingMode::relative: {
      for (std::size_t i = 0; i < n_; ++i) {
        RelativeNaming rel = relative_naming(centers_, i);
        append_row(rel.ranks);
        if (references != nullptr) (*references)[i] = rel.reference;
      }
      break;
    }
  }

  inverse.assign(ranks.size(), 0);
  const std::size_t rows = shared_ranks_ ? 1 : n_;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      inverse[i * n_ + ranks[i * n_ + j]] = static_cast<std::uint32_t>(j);
    }
  }
}

void SlicedCore::scramble_naming(std::uint64_t garbage) {
  if (ranks_.empty() || n_ == 0) return;
  ranks_[garbage % ranks_.size()] =
      static_cast<std::uint32_t>((garbage >> 8) % n_);
  inverse_ranks_[(garbage >> 16) % inverse_ranks_.size()] =
      static_cast<std::uint32_t>((garbage >> 24) % n_);
}

bool SlicedCore::audit_naming() {
  if (n_ == 0) return false;
  std::vector<std::uint32_t> ranks;
  std::vector<std::uint32_t> inverse;
  compute_ranks(ranks, inverse, nullptr);
  if (ranks == ranks_ && inverse == inverse_ranks_) return false;
  ranks_ = std::move(ranks);
  inverse_ranks_ = std::move(inverse);
  return true;
}

std::vector<geom::Vec2> SlicedCore::associate(
    const sim::Snapshot& snap) const {
  std::vector<geom::Vec2> positions;
  associate_into(snap, positions);
  return positions;
}

void SlicedCore::associate_into(const sim::Snapshot& snap,
                                std::vector<geom::Vec2>& out) const {
  assert(snap.robots.size() == n_);
  out.assign(n_, geom::Vec2{});
  std::vector<bool>& filled = assoc_filled_;
  filled.assign(n_, false);
  for (const sim::ObservedRobot& obs : snap.robots) {
    // Nearest granular center; robots never leave their granulars, and
    // granular interiors are pairwise disjoint, so this is unambiguous.
    // Large swarms query the t0-center grid (same nearest index as the
    // scan — lowest index on exact ties); small ones keep the brute scan.
    std::size_t best;
    if (!center_grid_.empty()) {
      best = center_grid_.nearest(obs.position);
    } else {
      best = 0;
      double best_d2 = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n_; ++i) {
        const double d2 = geom::dist2(obs.position, centers_[i]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = i;
        }
      }
    }
    assert(!filled[best] && "two robots associated to one granular");
    assert(geom::dist2(obs.position, centers_[best]) <=
               granulars_[best].radius() * granulars_[best].radius() &&
           "observed robot outside every granular");
    out[best] = obs.position;
    filled[best] = true;
  }
}

std::optional<Signal> SlicedCore::classify(std::size_t i,
                                           const geom::Vec2& pos) const {
  const geom::Granular& g = granulars_.at(i);
  const auto fix = g.classify(pos, kCenterFraction * g.radius());
  if (!fix) return std::nullopt;
  if (fix->angular_error > g.slice_width() / 4.0) return std::nullopt;
  return Signal{fix->diameter, fix->side};
}

}  // namespace stig::proto
