// Shared infrastructure for all movement protocols.
//
// Every protocol robot is a `ChatRobot`: a sim::Robot with an outbox of
// framed messages awaiting transmission (bit by bit), per-stream frame
// parsers reassembling the bits it decodes from *other* robots' movements,
// an inbox of messages addressed to it, an "overheard" list (every robot can
// decode every message — the paper's redundancy/fault-tolerance remark), and
// motion/energy statistics for the evaluation harness.
//
// Addressing is in protocol-local *slots*: what a slot means (an ID rank, a
// lexicographic rank, a relative SEC rank, or "the only peer") is defined by
// each protocol; `self_slot()` says which slot the robot itself occupies.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "encode/bits.hpp"
#include "encode/framing.hpp"
#include "sim/robot.hpp"

namespace stig::proto {

/// Counters for the evaluation harness (experiments E1, E2, E4).
struct ChatStats {
  std::uint64_t activations = 0;
  std::uint64_t idle_activations = 0;  ///< Activations with an empty outbox.
  std::uint64_t bits_sent = 0;         ///< Signals completed by this robot.
  std::uint64_t bits_decoded = 0;      ///< Signals decoded from any sender.
  std::uint64_t messages_sent = 0;     ///< Frames fully transmitted.
  std::uint64_t messages_received = 0; ///< Frames addressed to this robot.
  std::uint64_t messages_overheard = 0;///< Frames addressed to others.
};

/// A decoded message as seen by one robot. All fields are in the *receiving
/// robot's* slot space.
struct ReceivedMessage {
  std::size_t sender = 0;
  std::size_t addressee = 0;  ///< Equals `sender` for broadcasts.
  bool broadcast = false;     ///< One-to-all message (Section 5 remark).
  std::vector<std::uint8_t> payload;
};

/// Base class for protocol robots: message queues + stream reassembly.
class ChatRobot : public sim::Robot {
 public:
  /// Queues `payload` for transmission to the robot in slot `to_slot`.
  /// The payload is framed (length, CRC) and transmitted bit by bit in FIFO
  /// order. Precondition: `to_slot != self_slot()`.
  void send_message(std::size_t to_slot,
                    std::span<const std::uint8_t> payload);

  /// Queues `payload` as a one-to-all message: it is signaled once and
  /// decoded by every robot (Section 5: "our protocols can be easily
  /// adapted to implement efficiently one-to-many or one-to-all explicit
  /// communication"). The granular protocols carry it on the sender's *own*
  /// diameter — the one label unicast never uses.
  void send_broadcast(std::span<const std::uint8_t> payload);

  /// Messages addressed to this robot, in decode order; clears the inbox.
  [[nodiscard]] std::vector<ReceivedMessage> take_inbox();

  /// Messages this robot decoded but that were addressed to someone else;
  /// clears the list. This is the paper's redundancy: any robot can replay
  /// any overheard message.
  [[nodiscard]] std::vector<ReceivedMessage> take_overheard();

  [[nodiscard]] const ChatStats& stats() const noexcept { return stats_; }

  /// True when nothing is queued and the last frame finished transmitting.
  [[nodiscard]] bool send_queue_empty() const noexcept {
    return outbox_.empty();
  }

  /// The slot this robot occupies in its own addressing space.
  [[nodiscard]] virtual std::size_t self_slot() const = 0;
  /// Number of slots (robots) in this robot's addressing space.
  [[nodiscard]] virtual std::size_t slot_count() const = 0;
  /// Maps an index into the t0 snapshot's robot list (the order
  /// `initialize` saw) to this robot's slot space. This is how an
  /// application layer on the robot names peers; the core ChatNetwork uses
  /// it to translate between simulator indices and slots.
  [[nodiscard]] virtual std::size_t slot_of_t0_index(
      std::size_t t0_index) const = 0;

 protected:
  /// One queued frame in flight.
  struct OutMessage {
    std::size_t to = 0;
    encode::BitString bits;
    std::size_t cursor = 0;
  };

  /// Next bit to transmit and its addressee, or nullopt when idle. Does not
  /// consume the bit — call `advance_outbox()` once the corresponding
  /// movement signal has been *completed* per the protocol's rules.
  [[nodiscard]] std::optional<std::pair<std::size_t, std::uint8_t>>
  peek_bit() const;

  /// Next `bits`-wide symbol (MSB-first) and its addressee, or nullopt when
  /// idle. Precondition: `bits` divides 8, so a frame always contains a
  /// whole number of symbols.
  [[nodiscard]] std::optional<std::pair<std::size_t, std::uint32_t>>
  peek_symbol(unsigned bits) const;

  /// Consumes `bits` bits returned by peek_bit/peek_symbol; updates stats.
  void advance_outbox(unsigned bits = 1);

  /// Feeds one decoded signal into the (sender, addressee) stream and files
  /// any completed frames into inbox/overheard. Slots are in this robot's
  /// own addressing space.
  void on_bit_decoded(std::size_t sender_slot, std::size_t addressee_slot,
                      std::uint8_t bit);

  /// Drops partial frames on every stream originating at `sender_slot`.
  /// Protocols call this when they determine the sender is at a frame
  /// boundary (e.g. it has been silent for several instants — a correct
  /// synchronous sender never pauses mid-frame), so that a transient fault
  /// (a spurious or missed signal) cannot misalign a stream forever.
  void reset_streams_from(std::size_t sender_slot);

  /// Bookkeeping helper: call at the top of on_activate.
  void note_activation() {
    ++stats_.activations;
    if (outbox_.empty()) ++stats_.idle_activations;
  }

  std::deque<OutMessage> outbox_;
  ChatStats stats_;

 private:
  std::map<std::pair<std::size_t, std::size_t>, encode::FrameParser>
      parsers_;
  std::vector<ReceivedMessage> inbox_;
  std::vector<ReceivedMessage> overheard_;
};

}  // namespace stig::proto
