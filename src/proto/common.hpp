// Shared infrastructure for all movement protocols.
//
// Every protocol robot is a `ChatRobot`: a sim::Robot with an outbox of
// framed messages awaiting transmission (bit by bit), per-stream frame
// parsers reassembling the bits it decodes from *other* robots' movements,
// an inbox of messages addressed to it, an "overheard" list (every robot can
// decode every message — the paper's redundancy/fault-tolerance remark), and
// motion/energy statistics for the evaluation harness.
//
// Addressing is in protocol-local *slots*: what a slot means (an ID rank, a
// lexicographic rank, a relative SEC rank, or "the only peer") is defined by
// each protocol; `self_slot()` says which slot the robot itself occupies.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include <array>

#include "encode/bits.hpp"
#include "encode/framing.hpp"
#include "obs/cov.hpp"
#include "obs/sink.hpp"
#include "sim/robot.hpp"

namespace stig::proto {

/// Counters for the evaluation harness (experiments E1, E2, E4).
struct ChatStats {
  std::uint64_t activations = 0;
  std::uint64_t idle_activations = 0;  ///< Activations with an empty outbox.
  std::uint64_t idle_moves = 0;        ///< Moves caused by idle activations
                                       ///< (0 iff the protocol is silent).
  std::uint64_t bits_sent = 0;         ///< Signals completed by this robot.
  std::uint64_t bits_decoded = 0;      ///< Signals decoded from any sender.
  std::uint64_t messages_sent = 0;     ///< Frames fully transmitted.
  std::uint64_t messages_received = 0; ///< Frames addressed to this robot.
  std::uint64_t messages_overheard = 0;///< Frames addressed to others.
};

/// Which mutable state machine ChatRobot::corrupt_state scrambles. Kept at
/// the proto layer (mirrored by fault::CorruptTarget) so protocols never
/// depend on the fault library.
enum class CorruptKind : std::uint8_t {
  phase,   ///< Driver phase counters / per-peer bookkeeping.
  cursor,  ///< Bit cursor of the frame in flight.
  parser,  ///< FrameParser assembly state of one stream.
  naming,  ///< Geometry-derived naming tables (granular protocols).
};

/// A decoded message as seen by one robot. All fields are in the *receiving
/// robot's* slot space.
struct ReceivedMessage {
  std::size_t sender = 0;
  std::size_t addressee = 0;  ///< Equals `sender` for broadcasts.
  bool broadcast = false;     ///< One-to-all message (Section 5 remark).
  std::vector<std::uint8_t> payload;
};

/// Base class for protocol robots: message queues + stream reassembly.
class ChatRobot : public sim::Robot {
 public:
  /// Queues `payload` for transmission to the robot in slot `to_slot`.
  /// The payload is framed (length, CRC) and transmitted bit by bit in FIFO
  /// order. Precondition: `to_slot != self_slot()`.
  void send_message(std::size_t to_slot,
                    std::span<const std::uint8_t> payload);

  /// Queues `payload` as a one-to-all message: it is signaled once and
  /// decoded by every robot (Section 5: "our protocols can be easily
  /// adapted to implement efficiently one-to-many or one-to-all explicit
  /// communication"). The granular protocols carry it on the sender's *own*
  /// diameter — the one label unicast never uses.
  void send_broadcast(std::span<const std::uint8_t> payload);

  /// Messages addressed to this robot, in decode order; clears the inbox.
  [[nodiscard]] std::vector<ReceivedMessage> take_inbox();

  /// Messages this robot decoded but that were addressed to someone else;
  /// clears the list. This is the paper's redundancy: any robot can replay
  /// any overheard message.
  [[nodiscard]] std::vector<ReceivedMessage> take_overheard();

  [[nodiscard]] const ChatStats& stats() const noexcept { return stats_; }

  /// Attaches telemetry. Events this robot emits (BitEmitted, BitDecoded,
  /// FrameDelivered, PhaseEnter, AckObserved) flow into `sink`, stamped
  /// with simulator index `self_index` and the time of the robot's latest
  /// activation. `slot_map` (not owned; may be null) translates protocol
  /// slots to simulator indices — without it events carry raw slot numbers.
  /// Null `sink` detaches; the hot path then pays a single branch.
  void set_telemetry(obs::EventSink* sink, sim::RobotIndex self_index,
                     const std::vector<sim::RobotIndex>* slot_map) noexcept {
    sink_ = sink;
    self_index_ = self_index;
    slot_map_ = slot_map;
  }

  /// True when nothing is queued and the last frame finished transmitting.
  [[nodiscard]] bool send_queue_empty() const noexcept {
    return outbox_.empty();
  }

  /// Attaches a coverage map (not owned; null detaches). Phase transitions
  /// declared via `note_phase` are recorded as proto-domain edges between
  /// protocol-qualified states ("<protocol>.<phase>"), starting from a
  /// "<protocol>.enter" pseudo-state; the per-stream frame parsers (current
  /// and lazily created) are wired for frame-domain coverage. Detached, the
  /// hot path pays one null check per transition.
  void set_coverage(obs::cov::CovMap* map, const char* protocol_name);

  /// Fault-injection hook for the fuzz/fault harnesses: flips `burst`
  /// consecutive decoded bits starting at this robot's `nth_bit`-th decoded
  /// signal (0-based, counted across all streams) — emulating misread
  /// movement signals. The corrupted bits flow through the regular framing
  /// path, so the CRC must catch them; the delivery oracle then observes
  /// the lost frame(s). One-shot: re-arming while a fault is still pending
  /// is a harness bug and throws; whether the injection ever fired is
  /// surfaced via `decode_fault_pending` (and the run report).
  void inject_decode_fault(std::uint64_t nth_bit, std::uint64_t burst = 1) {
    if (fault_first_) {
      throw std::logic_error(
          "inject_decode_fault: a decode fault is already armed");
    }
    if (burst == 0) {
      throw std::invalid_argument("inject_decode_fault: empty burst");
    }
    fault_first_ = nth_bit;
    fault_bits_left_ = burst;
  }

  /// Transient-corruption hook (fault::CorruptTarget, via
  /// core::ChatNetwork): overwrites the targeted state machine with
  /// arbitrary `garbage`-derived values. `cursor` jumps the in-flight
  /// frame's bit cursor anywhere that preserves its phase modulo 8 (frames
  /// are whole bytes and every symbol width divides 8, so byte-level
  /// resync stays possible — a shifted bit phase would be unrecoverable on
  /// streams without an idle-reset rule); `parser` scrambles one stream's
  /// assembly state (or plants a scrambled parser on a garbage stream when
  /// none exist yet); `phase`/`naming` dispatch to the driver's
  /// corrupt_protocol_state. Recovery is the protocols' documented resync
  /// discipline — see docs/STABILIZATION.md.
  void corrupt_state(CorruptKind kind, std::uint64_t garbage);

  /// Tells the robot a transient corruption is scheduled this run: drivers
  /// with a naming audit (the granular protocols) re-verify their tables on
  /// activation only when armed, keeping fault-free runs allocation-free.
  void arm_stabilization() noexcept { stab_armed_ = true; }
  [[nodiscard]] bool stabilization_armed() const noexcept {
    return stab_armed_;
  }

  /// True while an armed decode fault has bits left to fire. A pending
  /// fault at the end of a run means the injection never happened (the
  /// robot never decoded that many signals) — the harness asked for a
  /// fault the run could not express.
  [[nodiscard]] bool decode_fault_pending() const noexcept {
    return fault_first_.has_value();
  }

  /// The slot this robot occupies in its own addressing space.
  [[nodiscard]] virtual std::size_t self_slot() const = 0;
  /// Number of slots (robots) in this robot's addressing space.
  [[nodiscard]] virtual std::size_t slot_count() const = 0;
  /// Maps an index into the t0 snapshot's robot list (the order
  /// `initialize` saw) to this robot's slot space. This is how an
  /// application layer on the robot names peers; the core ChatNetwork uses
  /// it to translate between simulator indices and slots.
  [[nodiscard]] virtual std::size_t slot_of_t0_index(
      std::size_t t0_index) const = 0;

 protected:
  /// One queued frame in flight.
  struct OutMessage {
    std::size_t to = 0;
    encode::BitString bits;
    std::size_t cursor = 0;
  };

  /// Next bit to transmit and its addressee, or nullopt when idle. Does not
  /// consume the bit — call `advance_outbox()` once the corresponding
  /// movement signal has been *completed* per the protocol's rules.
  [[nodiscard]] std::optional<std::pair<std::size_t, std::uint8_t>>
  peek_bit() const;

  /// Next `bits`-wide symbol (MSB-first) and its addressee, or nullopt when
  /// idle. Precondition: `bits` divides 8, so a frame always contains a
  /// whole number of symbols.
  [[nodiscard]] std::optional<std::pair<std::size_t, std::uint32_t>>
  peek_symbol(unsigned bits) const;

  /// Consumes `bits` bits returned by peek_bit/peek_symbol; updates stats.
  void advance_outbox(unsigned bits = 1);

  /// Feeds one decoded signal into the (sender, addressee) stream and files
  /// any completed frames into inbox/overheard. Slots are in this robot's
  /// own addressing space.
  void on_bit_decoded(std::size_t sender_slot, std::size_t addressee_slot,
                      std::uint8_t bit);

  /// Drops partial frames on every stream originating at `sender_slot`.
  /// Protocols call this when they determine the sender is at a frame
  /// boundary (e.g. it has been silent for several instants — a correct
  /// synchronous sender never pauses mid-frame), so that a transient fault
  /// (a spurious or missed signal) cannot misalign a stream forever.
  void reset_streams_from(std::size_t sender_slot);

  /// Bookkeeping helper: call at the top of on_activate with the snapshot.
  /// Updates activation counters, stamps telemetry with the snapshot time,
  /// and detects idle moves: in the SSM a robot's position changes only
  /// through its own moves, so a position change since the previous
  /// activation is that activation's move — charged as idle when the
  /// outbox was empty then (a silent protocol never produces one).
  void note_activation(const sim::Snapshot& snap);

  /// Declares the protocol phase the robot is in; deduplicated, so calling
  /// it every activation with the current phase name emits one PhaseEnter
  /// event per actual transition. `phase` must be a string literal (or
  /// otherwise outlive the run).
  void note_phase(const char* phase);

  /// Driver-owned state scrambling for CorruptKind::phase and ::naming.
  /// The default is a no-op (a driver with no corruptible phase state — or
  /// no naming tables — simply has nothing to lose). Overrides must keep
  /// the damage inside the driver's *recoverable* envelope: every value
  /// written must be one the documented resync path provably converges
  /// from (see docs/STABILIZATION.md for each protocol's envelope and why
  /// the excluded states are excluded).
  virtual void corrupt_protocol_state(CorruptKind kind,
                                      std::uint64_t garbage) {
    (void)kind;
    (void)garbage;
  }

  /// Marks the opening of a Lemma 4.1 acknowledgment window (async
  /// protocols call this when arming the AckBarrier for a bit in flight).
  void note_ack_window() { ack_armed_t_ = now_; }

  /// Emits AckObserved: the window closed after `now - armed` instants.
  /// `peer_slot` is the acknowledging peer, or negative for "every peer"
  /// (the AsyncN global barrier).
  void note_ack(std::ptrdiff_t peer_slot = -1);

  std::deque<OutMessage> outbox_;
  ChatStats stats_;

 private:
  /// Simulator index for `slot`, or the raw slot without a map.
  [[nodiscard]] std::int64_t engine_index(std::size_t slot) const {
    return static_cast<std::int64_t>(
        slot_map_ != nullptr ? (*slot_map_)[slot] : slot);
  }
  void emit(obs::Event& e) const;

  /// Interned coverage state for `phase` (null = the enter pseudo-state),
  /// memoized in a small literal-pointer cache. Requires cov_ != nullptr.
  [[nodiscard]] obs::cov::StateId cov_phase_id(const char* phase);

  std::map<std::pair<std::size_t, std::size_t>, encode::FrameParser>
      parsers_;
  std::vector<ReceivedMessage> inbox_;
  std::vector<ReceivedMessage> overheard_;

  // Telemetry plumbing (inactive until set_telemetry).
  obs::EventSink* sink_ = nullptr;
  sim::RobotIndex self_index_ = 0;
  const std::vector<sim::RobotIndex>* slot_map_ = nullptr;
  std::uint64_t now_ = 0;            ///< Time of the latest activation.
  std::uint64_t ack_armed_t_ = 0;
  std::optional<std::uint64_t> fault_first_;  ///< Armed decode fault start.
  std::uint64_t fault_bits_left_ = 0;         ///< Remaining burst length.
  const char* phase_name_ = nullptr;
  std::optional<geom::Vec2> last_pos_;  ///< Self position, last activation.
  bool last_was_idle_ = false;
  bool stab_armed_ = false;  ///< A corruption is scheduled this run.

  // Coverage plumbing (inactive until set_coverage).
  obs::cov::CovMap* cov_ = nullptr;      ///< Not owned; null when off.
  const char* cov_prefix_ = nullptr;     ///< Protocol name for state names.
  obs::cov::StateId cov_enter_ = obs::cov::kInvalidState;
  std::array<std::pair<const char*, obs::cov::StateId>, 8> cov_phase_cache_{};
  std::size_t cov_phase_cached_ = 0;
};

}  // namespace stig::proto
