// Asynchronous two-robot one-to-one communication (Section 4.1, Figure 5).
//
// Under a fair (semi-synchronous) scheduler a robot can miss movements, so
// the protocol builds an implicit acknowledgment from Lemma 4.1: a robot
// that keeps moving in one direction and observes the peer's position change
// twice knows the peer observed it at least once.
//
// Protocol Async2, per robot r:
//  * North_r is the direction away from the peer along the common horizon
//    line H (the line through the two robots). While idle — and between
//    bits — r marches North along H (Remark 4.3: an active robot always
//    moves).
//  * To send a bit, r leaves H perpendicularly — East of H w.r.t. North_r
//    for 0, West for 1 — and keeps going until it has observed the peer
//    change position twice (the ack). It then returns to H, marches North
//    until it observes the peer change twice again (separating consecutive
//    bits), and may then send the next bit.
//
// `BoundKind::banded` implements the paper's closing remark that the robots
// need not drift apart forever: movement along H alternates inside a fixed
// band around the start position instead of going North unboundedly. The
// paper suggests shrinking step sizes by 1/x per move, which it itself notes
// requires infinitesimally small movements; bouncing inside a band keeps
// every step at full size (no numerical floor) while preserving exactly the
// observable structure decoding relies on: on-H positions between bits,
// strictly-East/West positions during a bit.
#pragma once

#include "geom/line.hpp"
#include "proto/common.hpp"
#include "sim/observation.hpp"

namespace stig::proto {

/// Spatial behaviour of the idle/separator march along H.
enum class BoundKind : unsigned char {
  unbounded,  ///< Faithful Section 4.1: march North forever.
  banded,     ///< Bounded footprint: bounce inside [0, band] along North.
};

/// Configuration for Async2Robot.
struct Async2Options {
  /// The robot's own maximum per-activation travel, in local units.
  double sigma_local = 1.0;
  BoundKind bound = BoundKind::unbounded;
  /// March/excursion step as a fraction of the t0 separation.
  double step_fraction = 1.0 / 64.0;
  /// banded only: half-extent of the march band, fraction of separation.
  double band_fraction = 1.0 / 4.0;
  /// Observed position changes required per acknowledgment window. The
  /// paper's Lemma 4.1 needs 2 under atomic observation; with observations
  /// `d` instants stale the bound becomes 2d + 2 (the first d-ish changes
  /// may predate the window as the peer sees it).
  std::uint64_t ack_changes = 2;
};

/// Slot convention: slot 0 = self, slot 1 = the peer.
class Async2Robot final : public ChatRobot {
 public:
  explicit Async2Robot(Async2Options options) : options_(options) {}

  void initialize(const sim::Snapshot& snap) override;
  geom::Vec2 on_activate(const sim::Snapshot& snap) override;

  [[nodiscard]] std::size_t self_slot() const override { return 0; }
  [[nodiscard]] std::size_t slot_count() const override { return 2; }
  [[nodiscard]] std::size_t slot_of_t0_index(std::size_t i) const override {
    return i == self_t0_ ? 0 : 1;
  }

 protected:
  void corrupt_protocol_state(CorruptKind kind,
                              std::uint64_t garbage) override;

 private:
  std::size_t self_t0_ = 0;  ///< Own index in the t0 snapshot.
  enum class Phase : unsigned char { march, excurse, go_back };

  [[nodiscard]] double step_size() const;
  [[nodiscard]] geom::Vec2 march_move(const geom::Vec2& cur);

  Async2Options options_;
  geom::Line horizon_;       ///< H, directed along North_self.
  geom::Vec2 north_;         ///< Unit North_self.
  geom::Vec2 east_;          ///< Unit East w.r.t. North_self.
  geom::Vec2 peer_east_;     ///< East w.r.t. the peer's North.
  double sep_ = 0.0;         ///< t0 separation (local units).
  double tolerance_ = 0.0;   ///< On-H classification threshold.
  Phase phase_ = Phase::march;
  geom::Vec2 exc_dir_;       ///< Direction of the current excursion.
  int march_sign_ = 1;       ///< banded: current bounce direction.
  sim::ChangeTracker tracker_{1};
  sim::AckBarrier barrier_;
  int peer_state_ = 0;  ///< Decoder: -1 west, 0 on H, +1 east.
};

}  // namespace stig::proto
