// Naming (addressing) schemes.
//
// One-to-one communication needs the sender to designate a receiver. The
// paper gives three ways, by decreasing capability:
//
//  * identified systems — the total order on visible IDs (Section 3.2);
//  * anonymous + sense of direction — the lexicographic order on observed
//    coordinates, which all robots share because they share axes
//    (Section 3.3, after [Flocchini et al. 1999]);
//  * anonymous + chirality only — a *relative* naming per robot r: rank all
//    robots by the clockwise angle of their SEC radius from r's horizon
//    line H_r, ties broken by distance from the SEC center O
//    (Section 3.4). Every robot can recompute every other robot's relative
//    naming, which is what makes decoding possible.
//
// All functions are pure and operate on positions expressed in *any* frame
// the caller uses consistently; the constructions are invariant under
// translation, rotation and positive uniform scaling (and that invariance is
// property-tested), which is exactly why robots with different frames agree.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec.hpp"
#include "sim/types.hpp"

namespace stig::proto {

/// Ranks by lexicographic position order: result[i] is the rank of
/// points[i]. Precondition: points pairwise distinct.
[[nodiscard]] std::vector<std::size_t> lex_ranks(
    std::span<const geom::Vec2> points);

/// Ranks by ascending visible id: result[i] is the rank of ids[i].
/// Precondition: ids pairwise distinct.
[[nodiscard]] std::vector<std::size_t> id_ranks(
    std::span<const sim::VisibleId> ids);

/// Direction of robot `self`'s horizon line H_self: the unit vector from the
/// SEC center O through the robot, pointing outward.
///
/// Degenerate case (robot exactly at O, where the paper leaves H_r
/// undefined): we extend the rule deterministically with a canonical
/// signature — among directions toward other robots, pick the one whose
/// clockwise-ordered view of the configuration is lexicographically
/// smallest. The rule depends only on relative angles and distance ratios,
/// so every observer computes the same direction regardless of frame.
[[nodiscard]] geom::Vec2 horizon_direction(std::span<const geom::Vec2> points,
                                           std::size_t self);

/// The Section 3.4 relative naming with respect to robot `self`.
struct RelativeNaming {
  geom::Vec2 sec_center;          ///< O, center of the SEC of the points.
  geom::Vec2 reference;           ///< Unit direction of H_self.
  std::vector<std::size_t> ranks; ///< ranks[i] = rank of points[i] under
                                  ///< self's labeling (0-based, self
                                  ///< included).
};

/// Computes the relative naming of all `points` with respect to
/// `points[self]`. Precondition: points pairwise distinct, size >= 2.
[[nodiscard]] RelativeNaming relative_naming(
    std::span<const geom::Vec2> points, std::size_t self);

}  // namespace stig::proto
