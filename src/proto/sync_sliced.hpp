// Synchronous one-to-one communication for n >= 2 robots
// (Sections 3.2, 3.3 and 3.4 — the naming mode selects which).
//
// Preprocessing at t0 builds the Voronoi/granular substrate. To send a bit
// to the robot of rank d, the sender moves from its granular center out on
// the diameter labeled d — Northern/Eastern side for 0, Southern/Western for
// 1 — and returns to the center on the next step: two steps per bit. The
// protocol is *silent*: a robot with nothing to send does not move.
//
// Precondition: a synchronous scheduler (every robot active each instant);
// that is what makes every movement observed by everyone, so no
// acknowledgment is needed.
//
// The class also implements the Section 5 flocking remark: an optional
// common drift velocity is added to every move and subtracted before
// decoding, so the swarm travels while chatting.
#pragma once

#include <vector>

#include "proto/common.hpp"
#include "proto/slices.hpp"

namespace stig::proto {

/// Configuration for SyncSlicedRobot.
struct SyncSlicedOptions {
  NamingMode naming = NamingMode::lexicographic;
  /// The robot's own maximum per-activation travel, in its local units.
  double sigma_local = 1.0;
  /// Fraction of the granular radius used as signal amplitude.
  double amplitude_fraction = 0.45;
  /// Common flocking velocity (local units per instant). Must be the same
  /// global vector for every robot (the "agreed upon global flocking
  /// movement"); zero disables flocking. With flocking enabled the protocol
  /// is no longer silent.
  geom::Vec2 flock_velocity{0.0, 0.0};
};

class SyncSlicedRobot final : public ChatRobot {
 public:
  explicit SyncSlicedRobot(SyncSlicedOptions options)
      : options_(options) {}

  void initialize(const sim::Snapshot& snap) override;
  geom::Vec2 on_activate(const sim::Snapshot& snap) override;

  /// Slots are ranks in this robot's own labeling.
  [[nodiscard]] std::size_t self_slot() const override {
    return core_.rank(core_.self_index(), core_.self_index());
  }
  [[nodiscard]] std::size_t slot_count() const override {
    return core_.robot_count();
  }

  [[nodiscard]] std::size_t slot_of_t0_index(std::size_t i) const override {
    return core_.rank(core_.self_index(), i);
  }

  [[nodiscard]] const SlicedCore& core() const noexcept { return core_; }

 protected:
  void corrupt_protocol_state(CorruptKind kind,
                              std::uint64_t garbage) override;

 private:
  [[nodiscard]] geom::Vec2 drift_at(std::uint64_t t) const {
    return options_.flock_velocity * static_cast<double>(t);
  }
  [[nodiscard]] double drift_speed() const {
    return options_.flock_velocity.norm();
  }

  SyncSlicedOptions options_;
  SlicedCore core_;
  std::uint64_t step_ = 0;          ///< Own activation count (== global t in
                                    ///< a synchronous system).
  bool displaced_ = false;          ///< Mid-bit: next move returns to center.
  std::vector<bool> peer_was_off_;  ///< Decoder edge detector per robot.
  std::vector<std::uint8_t> peer_idle_;  ///< Consecutive at-center
                                         ///< observations, for stream
                                         ///< resynchronization.
  /// Per-activation scratch (associated positions; drift-shifted snapshot
  /// when flocking): reused so slice assembly allocates nothing.
  std::vector<geom::Vec2> pos_scratch_;
  sim::Snapshot snap_scratch_;
};

}  // namespace stig::proto
