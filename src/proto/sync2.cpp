#include "proto/sync2.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "geom/angle.hpp"

namespace stig::proto {

Sync2Robot::Sync2Robot(Sync2Options options)
    : options_(options),
      codec_(options.bits_per_symbol, /*max_amplitude=*/1.0) {
  if (options.bits_per_symbol == 0 || 8 % options.bits_per_symbol != 0) {
    throw std::invalid_argument("bits_per_symbol must divide 8");
  }
}

void Sync2Robot::initialize(const sim::Snapshot& snap) {
  if (snap.robots.size() != 2) {
    throw std::invalid_argument("Sync2Robot requires exactly two robots");
  }
  self_t0_ = snap.self;
  base_self_ = snap.self_robot().position;
  base_peer_ = snap.robots[1 - snap.self].position;
  const geom::Vec2 facing = (base_peer_ - base_self_).normalized();
  // "Right with respect to the direction given by the peer": 90 degrees
  // clockwise from the facing direction, in the shared handedness.
  right_self_ = geom::rotate_clockwise(facing, geom::kPi / 2.0);
  right_peer_ = geom::rotate_clockwise(-facing, geom::kPi / 2.0);
  const double sep = geom::dist(base_self_, base_peer_);
  const double max_amp =
      std::min(options_.amplitude_fraction * sep, 0.8 * options_.sigma_local);
  assert(max_amp > 0.0);
  codec_ = encode::AmplitudeCodec(options_.bits_per_symbol, max_amp);
  tolerance_ = 1e-9 * sep;
}

double Sync2Robot::symbol_amplitude(std::uint32_t symbol) const {
  // Map so that the all-zero symbol lands on +max ("0 -> right") and the
  // all-one symbol on -max ("1 -> left"), generalizing the basic protocol.
  return codec_.level(codec_.levels() - 1 - symbol);
}

void Sync2Robot::corrupt_protocol_state(CorruptKind kind,
                                        std::uint64_t garbage) {
  // No naming tables with two robots, so ::naming is vacuous here.
  if (kind != CorruptKind::phase) return;
  // Recoverable envelope: each field below only garbles or drops signals
  // (a spurious return consumes an unsignaled symbol, a cleared mid-signal
  // flag skips one, a flipped edge tracker misses or repeats a decode, a
  // scrambled idle counter can fire a spurious mid-frame stream reset).
  // All of that is frame *content/alignment* damage the CRC rejects, and
  // the 3-idle rule realigns every stream once the peer provably rests —
  // at the latest when the network quiesces.
  displaced_ = (garbage & 1) != 0;
  peer_was_off_ = (garbage & 2) != 0;
  // Strictly below the 3-idle threshold: the reset fires on the ++ == 3
  // transition, so a counter planted at 3 would suppress resyncs instead
  // of forcing one.
  peer_idle_ = static_cast<std::uint8_t>((garbage >> 2) % 3);
}

geom::Vec2 Sync2Robot::on_activate(const sim::Snapshot& snap) {
  note_activation(snap);
  const geom::Vec2 peer = snap.robots[1 - snap.self].position;

  // Decode: the peer's displacement from its base along its "right" axis.
  const geom::Vec2 disp = peer - base_peer_;
  const bool off = disp.norm() > tolerance_;
  if (off && !peer_was_off_) {
    const double amplitude = geom::dot(disp, right_peer_);
    if (const auto level = codec_.decode(amplitude)) {
      const std::uint32_t symbol = codec_.levels() - 1 - *level;
      for (unsigned i = options_.bits_per_symbol; i-- > 0;) {
        on_bit_decoded(/*sender=*/1, /*addressee=*/0,
                       static_cast<std::uint8_t>((symbol >> i) & 1U));
      }
    }
  }
  peer_was_off_ = off;
  // Stream resynchronization: 3 consecutive at-base observations mean the
  // peer sits at a frame boundary (a correct sender rests at most 1 instant
  // between bits); heal any fault-misaligned stream.
  if (off) {
    peer_idle_ = 0;
  } else if (peer_idle_ < 3 && ++peer_idle_ == 3) {
    reset_streams_from(1);
  }

  // Our own move: out on even signals, back on the following step; silent
  // when nothing is queued.
  if (displaced_) {
    note_phase("return");
    displaced_ = false;
    advance_outbox(options_.bits_per_symbol);
    return base_self_;
  }
  if (const auto sym = peek_symbol(options_.bits_per_symbol)) {
    note_phase("signal");
    displaced_ = true;
    return base_self_ + right_self_ * symbol_amplitude(sym->second);
  }
  // Silent — resting at the base also walks a fault-displaced robot home.
  note_phase("idle");
  return base_self_;
}

}  // namespace stig::proto
