// Two-robot synchronous coding (Section 3.1, Figure 1).
//
// "Each even step is used by each robot to send a bit in {0,1}. To send 0
// (resp. 1) to the other robot r', a robot r moves on its right (resp. left)
// with respect to the direction given by r'. Each odd step is used by the
// robots to come back to its first position." Silent: a robot with nothing
// to send stays put.
//
// The Section 3.1 remark — dividing the excursion range into amplitude
// levels to carry several bits per movement — is implemented via
// `bits_per_symbol > 1`. Levels are defined relative to the robots' t0
// separation (a quantity both observe), so no knowledge of the peer's sigma
// is needed and the scheme stays frame-invariant.
//
// Precondition: exactly 2 robots, synchronous scheduler, chirality.
#pragma once

#include "encode/amplitude.hpp"
#include "proto/common.hpp"

namespace stig::proto {

/// Configuration for Sync2Robot.
struct Sync2Options {
  /// The robot's own maximum per-activation travel, in local units.
  double sigma_local = 1.0;
  /// Bits carried per movement; must divide 8. 1 reproduces the paper's
  /// basic protocol, >1 the byte-coding remark.
  unsigned bits_per_symbol = 1;
  /// Maximum excursion as a fraction of the t0 separation.
  double amplitude_fraction = 1.0 / 8.0;
};

/// Slot convention (both directions of a 2-robot chat): slot 0 is the robot
/// itself, slot 1 the peer. `send_message(1, ...)` sends to the peer.
class Sync2Robot final : public ChatRobot {
 public:
  explicit Sync2Robot(Sync2Options options);

  void initialize(const sim::Snapshot& snap) override;
  geom::Vec2 on_activate(const sim::Snapshot& snap) override;

  [[nodiscard]] std::size_t self_slot() const override { return 0; }
  [[nodiscard]] std::size_t slot_count() const override { return 2; }
  [[nodiscard]] std::size_t slot_of_t0_index(std::size_t i) const override {
    return i == self_t0_ ? 0 : 1;
  }

 protected:
  void corrupt_protocol_state(CorruptKind kind,
                              std::uint64_t garbage) override;

 private:
  std::size_t self_t0_ = 0;  ///< Own index in the t0 snapshot.
  /// Signed amplitude (along the sender's "right" axis) for a symbol, and
  /// the inverse. Level 0 is full-left, the top level full-right; bit 0 of
  /// the basic protocol maps to "right" = positive.
  [[nodiscard]] double symbol_amplitude(std::uint32_t symbol) const;

  Sync2Options options_;
  encode::AmplitudeCodec codec_;
  geom::Vec2 base_self_;   ///< Own t0 position (local frame).
  geom::Vec2 base_peer_;   ///< Peer t0 position.
  geom::Vec2 right_self_;  ///< My "right" when facing the peer.
  geom::Vec2 right_peer_;  ///< Peer's "right" when facing me.
  double tolerance_ = 0.0; ///< At-base detection threshold.
  bool displaced_ = false; ///< Mid-signal: next move returns to base.
  bool peer_was_off_ = false;
  std::uint8_t peer_idle_ = 0;  ///< Consecutive at-base observations.
};

}  // namespace stig::proto
