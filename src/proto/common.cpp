#include "proto/common.hpp"

#include <cassert>
#include <cstring>

namespace stig::proto {

void ChatRobot::emit(obs::Event& e) const {
  e.t = now_;
  e.robot = static_cast<std::int64_t>(self_index_);
  sink_->on_event(e);
}

void ChatRobot::note_activation(const sim::Snapshot& snap) {
  now_ = snap.t;
  ++stats_.activations;
  const bool idle = outbox_.empty();
  if (idle) ++stats_.idle_activations;
  const geom::Vec2 self = snap.self_robot().position;
  if (last_pos_ && last_was_idle_ &&
      geom::dist(*last_pos_, self) > geom::kEps) {
    ++stats_.idle_moves;
  }
  last_pos_ = self;
  last_was_idle_ = idle;
}

void ChatRobot::note_phase(const char* phase) {
  if (phase == phase_name_ ||
      (phase != nullptr && phase_name_ != nullptr &&
       std::strcmp(phase, phase_name_) == 0)) {
    return;
  }
  if (cov_ != nullptr) {
    // The dedupe above means this is a genuine transition: record the
    // (previous phase -> new phase) edge in the protocol's state machine.
    cov_->hit(obs::cov::Domain::proto, cov_phase_id(phase_name_),
              cov_phase_id(phase));
  }
  phase_name_ = phase;
  if (sink_ == nullptr) return;
  obs::Event e;
  e.type = obs::EventType::PhaseEnter;
  e.label = phase;
  emit(e);
}

obs::cov::StateId ChatRobot::cov_phase_id(const char* phase) {
  if (phase == nullptr) return cov_enter_;
  for (std::size_t i = 0; i < cov_phase_cached_; ++i) {
    const auto& [p, id] = cov_phase_cache_[i];
    if (p == phase || std::strcmp(p, phase) == 0) return id;
  }
  const obs::cov::StateId id = cov_->state(cov_prefix_, phase);
  if (cov_phase_cached_ < cov_phase_cache_.size()) {
    cov_phase_cache_[cov_phase_cached_++] = {phase, id};
  }
  return id;
}

void ChatRobot::set_coverage(obs::cov::CovMap* map,
                             const char* protocol_name) {
  cov_ = map;
  cov_prefix_ = protocol_name;
  cov_phase_cached_ = 0;
  for (auto& [key, parser] : parsers_) parser.set_coverage(map);
  if (cov_ == nullptr) return;
  cov_enter_ = cov_->state(cov_prefix_, "enter");
}

void ChatRobot::note_ack(std::ptrdiff_t peer_slot) {
  if (sink_ == nullptr) return;
  obs::Event e;
  e.type = obs::EventType::AckObserved;
  if (peer_slot >= 0) e.peer = engine_index(static_cast<std::size_t>(peer_slot));
  e.value = static_cast<double>(now_ - ack_armed_t_);
  emit(e);
}

void ChatRobot::send_message(std::size_t to_slot,
                             std::span<const std::uint8_t> payload) {
  assert(to_slot != self_slot() && "a robot does not message itself");
  assert(to_slot < slot_count());
  OutMessage m;
  m.to = to_slot;
  m.bits = encode::encode_frame(payload);
  outbox_.push_back(std::move(m));
}

void ChatRobot::send_broadcast(std::span<const std::uint8_t> payload) {
  OutMessage m;
  m.to = self_slot();  // The sender's own slot is the broadcast lane.
  m.bits = encode::encode_frame(payload);
  outbox_.push_back(std::move(m));
}

std::vector<ReceivedMessage> ChatRobot::take_inbox() {
  std::vector<ReceivedMessage> out;
  out.swap(inbox_);
  return out;
}

std::vector<ReceivedMessage> ChatRobot::take_overheard() {
  std::vector<ReceivedMessage> out;
  out.swap(overheard_);
  return out;
}

void ChatRobot::corrupt_state(CorruptKind kind, std::uint64_t garbage) {
  switch (kind) {
    case CorruptKind::cursor: {
      if (outbox_.empty()) break;  // Nothing in flight: vacuously survived.
      OutMessage& m = outbox_.front();
      // Jump to an *earlier* byte boundary that keeps the cursor's phase
      // mod 8. Frames are whole bytes and every symbol width divides 8,
      // so the emitted stream stays bit- and symbol-aligned; backward
      // means the damage is byte-aligned *re-transmission* (insertion),
      // which completes the in-flight frame with garbled content —
      // CRC-rejected, then healed by the parser's resync scan once the
      // next frame arrives. A forward jump would instead *delete* bytes
      // and leave the receiver's parser starving mid-frame forever in the
      // asynchronous protocols, which have no idle window to realign
      // through — the same reasoning that pins the phase mod 8.
      const std::size_t bytes_done = m.cursor / 8 + 1;
      m.cursor = (m.cursor % 8) + 8 * (garbage % bytes_done);
      break;
    }
    case CorruptKind::parser: {
      if (!parsers_.empty()) {
        auto it = parsers_.begin();
        std::advance(it,
                     static_cast<std::ptrdiff_t>(garbage % parsers_.size()));
        it->second.scramble(garbage);
        break;
      }
      // No streams yet: plant a scrambled parser on a garbage stream, as a
      // transient fault would. Its fake partial buffer poisons the first
      // real frame on that stream; CRC + resync recover the next one.
      const std::size_t slots = slot_count() > 0 ? slot_count() : 1;
      const auto [it, created] =
          parsers_.try_emplace({garbage % slots, (garbage >> 8) % slots});
      if (created && cov_ != nullptr) it->second.set_coverage(cov_);
      it->second.scramble(garbage);
      break;
    }
    case CorruptKind::phase:
    case CorruptKind::naming:
      corrupt_protocol_state(kind, garbage);
      break;
  }
}

std::optional<std::pair<std::size_t, std::uint8_t>> ChatRobot::peek_bit()
    const {
  if (outbox_.empty()) return std::nullopt;
  const OutMessage& m = outbox_.front();
  return std::make_pair(m.to, m.bits[m.cursor]);
}

std::optional<std::pair<std::size_t, std::uint32_t>> ChatRobot::peek_symbol(
    unsigned bits) const {
  assert(bits >= 1 && 8 % bits == 0);
  if (outbox_.empty()) return std::nullopt;
  const OutMessage& m = outbox_.front();
  // Zero-pad past the end: a phase-corrupted driver can ask for a symbol
  // at a ragged tail; the padded symbol garbles content only, which the
  // frame CRC already absorbs.
  std::uint32_t symbol = 0;
  for (unsigned i = 0; i < bits; ++i) {
    const std::size_t idx = m.cursor + i;
    symbol = (symbol << 1) | (idx < m.bits.size() ? m.bits[idx] : 0);
  }
  return std::make_pair(m.to, symbol);
}

void ChatRobot::advance_outbox(unsigned bits) {
  // Graceful under transient corruption: a phase-scrambled driver may
  // complete a signal with nothing queued (drop it on the floor), and a
  // corrupted cursor may leave fewer bits than a full symbol (telemetry
  // emits only the bits that exist; the frame completes on overrun). In a
  // fault-free run both conditions are unreachable.
  if (outbox_.empty()) return;
  OutMessage& m = outbox_.front();
  if (sink_ != nullptr) {
    const bool broadcast = m.to == self_slot();
    obs::Event e;
    e.type = obs::EventType::BitEmitted;
    if (!broadcast) e.peer = engine_index(m.to);
    if (broadcast) e.label = "broadcast";
    for (unsigned b = 0; b < bits && m.cursor + b < m.bits.size(); ++b) {
      e.bit = m.bits[m.cursor + b];
      emit(e);
    }
  }
  m.cursor += bits;
  stats_.bits_sent += bits;
  if (m.cursor >= m.bits.size()) {
    ++stats_.messages_sent;
    outbox_.pop_front();
  }
}

void ChatRobot::reset_streams_from(std::size_t sender_slot) {
  for (auto& [key, parser] : parsers_) {
    if (key.first == sender_slot) parser.reset();
  }
}

void ChatRobot::on_bit_decoded(std::size_t sender_slot,
                               std::size_t addressee_slot, std::uint8_t bit) {
  if (fault_first_ && stats_.bits_decoded >= *fault_first_) {
    // Armed decode fault (fuzz/fault harness): this signal is misread. The
    // flip happens before telemetry so every downstream consumer — the
    // watchdog's framing replay included — sees the stream the robot saw.
    // Bursts corrupt consecutive decoded signals until exhausted.
    bit ^= 1U;
    if (--fault_bits_left_ == 0) fault_first_.reset();
  }
  ++stats_.bits_decoded;
  if (sink_ != nullptr) {
    obs::Event e;
    e.type = obs::EventType::BitDecoded;
    e.peer = engine_index(sender_slot);
    e.aux = engine_index(addressee_slot);
    e.bit = bit;
    emit(e);
  }
  const auto [parser_it, parser_created] =
      parsers_.try_emplace({sender_slot, addressee_slot});
  encode::FrameParser& parser = parser_it->second;
  if (parser_created && cov_ != nullptr) parser.set_coverage(cov_);
  parser.push_bit(bit);
  for (auto& payload : parser.take_messages()) {
    ReceivedMessage msg;
    msg.sender = sender_slot;
    msg.addressee = addressee_slot;
    // A message a sender addresses to itself is by convention a broadcast:
    // the one diameter label unicast never uses.
    msg.broadcast = sender_slot == addressee_slot;
    msg.payload = std::move(payload);
    if (sink_ != nullptr) {
      obs::Event e;
      e.type = obs::EventType::FrameDelivered;
      e.peer = engine_index(sender_slot);
      e.aux = engine_index(addressee_slot);
      e.value = static_cast<double>(msg.payload.size());
      e.label = msg.broadcast
                    ? "broadcast"
                    : (addressee_slot == self_slot() ? "inbox" : "overheard");
      emit(e);
    }
    if (msg.broadcast || addressee_slot == self_slot()) {
      ++stats_.messages_received;
      inbox_.push_back(std::move(msg));
    } else {
      ++stats_.messages_overheard;
      overheard_.push_back(std::move(msg));
    }
  }
}

}  // namespace stig::proto
