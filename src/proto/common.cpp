#include "proto/common.hpp"

#include <cassert>

namespace stig::proto {

void ChatRobot::send_message(std::size_t to_slot,
                             std::span<const std::uint8_t> payload) {
  assert(to_slot != self_slot() && "a robot does not message itself");
  assert(to_slot < slot_count());
  OutMessage m;
  m.to = to_slot;
  m.bits = encode::encode_frame(payload);
  outbox_.push_back(std::move(m));
}

void ChatRobot::send_broadcast(std::span<const std::uint8_t> payload) {
  OutMessage m;
  m.to = self_slot();  // The sender's own slot is the broadcast lane.
  m.bits = encode::encode_frame(payload);
  outbox_.push_back(std::move(m));
}

std::vector<ReceivedMessage> ChatRobot::take_inbox() {
  std::vector<ReceivedMessage> out;
  out.swap(inbox_);
  return out;
}

std::vector<ReceivedMessage> ChatRobot::take_overheard() {
  std::vector<ReceivedMessage> out;
  out.swap(overheard_);
  return out;
}

std::optional<std::pair<std::size_t, std::uint8_t>> ChatRobot::peek_bit()
    const {
  if (outbox_.empty()) return std::nullopt;
  const OutMessage& m = outbox_.front();
  return std::make_pair(m.to, m.bits[m.cursor]);
}

std::optional<std::pair<std::size_t, std::uint32_t>> ChatRobot::peek_symbol(
    unsigned bits) const {
  assert(bits >= 1 && 8 % bits == 0);
  if (outbox_.empty()) return std::nullopt;
  const OutMessage& m = outbox_.front();
  assert(m.cursor + bits <= m.bits.size());
  std::uint32_t symbol = 0;
  for (unsigned i = 0; i < bits; ++i) {
    symbol = (symbol << 1) | m.bits[m.cursor + i];
  }
  return std::make_pair(m.to, symbol);
}

void ChatRobot::advance_outbox(unsigned bits) {
  assert(!outbox_.empty());
  OutMessage& m = outbox_.front();
  m.cursor += bits;
  stats_.bits_sent += bits;
  assert(m.cursor <= m.bits.size());
  if (m.cursor == m.bits.size()) {
    ++stats_.messages_sent;
    outbox_.pop_front();
  }
}

void ChatRobot::reset_streams_from(std::size_t sender_slot) {
  for (auto& [key, parser] : parsers_) {
    if (key.first == sender_slot) parser.reset();
  }
}

void ChatRobot::on_bit_decoded(std::size_t sender_slot,
                               std::size_t addressee_slot, std::uint8_t bit) {
  ++stats_.bits_decoded;
  encode::FrameParser& parser = parsers_[{sender_slot, addressee_slot}];
  parser.push_bit(bit);
  for (auto& payload : parser.take_messages()) {
    ReceivedMessage msg;
    msg.sender = sender_slot;
    msg.addressee = addressee_slot;
    // A message a sender addresses to itself is by convention a broadcast:
    // the one diameter label unicast never uses.
    msg.broadcast = sender_slot == addressee_slot;
    msg.payload = std::move(payload);
    if (msg.broadcast || addressee_slot == self_slot()) {
      ++stats_.messages_received;
      inbox_.push_back(std::move(msg));
    } else {
      ++stats_.messages_overheard;
      overheard_.push_back(std::move(msg));
    }
  }
}

}  // namespace stig::proto
