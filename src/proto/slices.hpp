// SlicedCore: the Voronoi/granular/naming substrate shared by every n-robot
// movement protocol (Sections 3.2–3.4 synchronous, 4.2 asynchronous, and the
// Section 5 k-segment extension).
//
// Built once from the t0 snapshot, it provides, in the owning robot's local
// frame:
//   * each robot's granular (largest disc centered on the robot inside its
//     Voronoi cell) sliced into a protocol-chosen number of diameters;
//   * each robot's reference direction (North with sense of direction, or
//     the horizon line H_r of the SEC-based relative naming);
//   * each robot's labeling of all robots (every observer can reconstruct
//     every sender's labeling — the property Section 3.4 relies on);
//   * association of an observed configuration back to persistent robot
//     identities (granulars are disjoint, so nearest-center is unambiguous);
//   * classification of a robot's displacement into (diameter, side).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "geom/granular.hpp"
#include "geom/point_grid.hpp"
#include "geom/vec.hpp"
#include "proto/naming.hpp"
#include "sim/robot.hpp"

namespace stig::proto {

/// Which naming scheme labels the diameters.
enum class NamingMode : unsigned char {
  by_ids,         ///< Rank of visible IDs (Section 3.2). Requires an
                  ///< identified system and sense of direction.
  lexicographic,  ///< Rank of coordinates in the shared axes (Section 3.3).
                  ///< Requires sense of direction (+ chirality).
  relative,       ///< Per-robot SEC naming (Section 3.4). Chirality only.
};

/// A movement signal: which labeled diameter, which half.
struct Signal {
  std::size_t diameter = 0;
  geom::DiameterSide side{};

  friend constexpr bool operator==(const Signal&, const Signal&) = default;
};

class SlicedCore {
 public:
  SlicedCore() = default;

  /// Builds the substrate from the t0 snapshot.
  ///
  /// `diameter_count`: slices per granular — n for the synchronous
  /// protocols, n+1 for the asynchronous one (diameter 0 is then kappa),
  /// k+1 for the k-segment variant.
  /// Precondition for `NamingMode::by_ids`: the snapshot carries visible
  /// ids.
  SlicedCore(const sim::Snapshot& t0, NamingMode naming,
             std::size_t diameter_count);

  [[nodiscard]] std::size_t robot_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t self_index() const noexcept { return self_; }
  [[nodiscard]] std::size_t diameter_count() const noexcept {
    return diameters_;
  }

  /// t0 position of robot `i` (local frame) — its granular center.
  [[nodiscard]] const geom::Vec2& center(std::size_t i) const {
    return centers_.at(i);
  }

  /// Granular of robot `i`, sliced with `i`'s reference direction.
  [[nodiscard]] const geom::Granular& granular(std::size_t i) const {
    return granulars_.at(i);
  }

  /// Rank of robot `j` in robot `i`'s labeling.
  [[nodiscard]] std::size_t rank(std::size_t i, std::size_t j) const {
    return ranks_.at(row(i) + check_index(j));
  }

  /// Robot whose rank in `i`'s labeling is `r`.
  [[nodiscard]] std::size_t robot_with_rank(std::size_t i,
                                            std::size_t r) const {
    return inverse_ranks_.at(row(i) + check_index(r));
  }

  /// Associates the observed configuration to persistent robot indices:
  /// result[i] is the current position of robot i. Every observed point is
  /// assigned to the granular that contains it.
  [[nodiscard]] std::vector<geom::Vec2> associate(
      const sim::Snapshot& snap) const;

  /// `associate` into caller-owned storage (resized to robot_count();
  /// capacity reused). The per-activation hot path of the sliced drivers
  /// calls this with a driver-owned scratch vector so slice assembly
  /// allocates nothing in steady state.
  void associate_into(const sim::Snapshot& snap,
                      std::vector<geom::Vec2>& out) const;

  /// Classifies robot `i`'s current position against its granular slicing.
  /// Returns nullopt when the robot is at (indistinguishable from) its
  /// center. A genuine signal has negligible angular error; fixes whose
  /// error exceeds a quarter slice are rejected as noise.
  [[nodiscard]] std::optional<Signal> classify(std::size_t i,
                                               const geom::Vec2& pos) const;

  /// Movement target on robot self's own granular.
  [[nodiscard]] geom::Vec2 signal_point(const Signal& s,
                                        double distance) const {
    return granulars_.at(self_).point_on(s.diameter, s.side, distance);
  }

  /// Granular radius of robot `i`.
  [[nodiscard]] double radius(std::size_t i) const {
    return granulars_.at(i).radius();
  }

  /// Transient-corruption hook (fault::CorruptTarget::naming): overwrites
  /// one entry of each rank table with an in-domain garbage value. The
  /// envelope is type-preserving on purpose: a rank slot holds *some*
  /// rank, so the corruption silently misroutes signals — the interesting
  /// failure — instead of tripping a bounds check (fail-stop, which needs
  /// no stabilization). May be vacuous when the garbage equals the stored
  /// value; the audit then finds nothing to repair.
  void scramble_naming(std::uint64_t garbage);

  /// Stabilization audit: recomputes the naming tables from the stored t0
  /// geometry (and ids), compares them to the live tables, and swaps the
  /// recomputed ones in when they differ. Returns true exactly when a
  /// repair happened — the caller must then treat all reassembly state
  /// keyed by ranks as suspect. Bit-exact no-op (but an O(n log n)
  /// recompute + allocation) on an uncorrupted core, which is why drivers
  /// only call it when stabilization is armed.
  [[nodiscard]] bool audit_naming();

 private:
  /// Computes the rank tables (and, when `references` is non-null, each
  /// robot's reference direction) from centers_/ids_/naming_. Shared by
  /// the constructor and the stabilization audit so the audit compares
  /// against exactly the construction-time derivation.
  void compute_ranks(std::vector<std::uint32_t>& ranks,
                     std::vector<std::uint32_t>& inverse,
                     std::vector<geom::Vec2>* references) const;

  [[nodiscard]] std::size_t row(std::size_t i) const {
    // Shared labelings (by_ids, lexicographic: every robot ranks every
    // robot identically) store ONE row for the whole swarm; only the
    // relative naming, which is genuinely per-observer, stores n rows.
    // Each robot holds its own core, so without sharing an n-robot swarm
    // carried n * n^2 rank entries — the memory wall that capped the
    // sliced protocols near n = 256.
    if (i >= n_) throw std::out_of_range("SlicedCore: robot index");
    return shared_ranks_ ? 0 : i * n_;
  }
  [[nodiscard]] std::size_t check_index(std::size_t j) const {
    if (j >= n_) throw std::out_of_range("SlicedCore: rank index");
    return j;
  }

  std::size_t n_ = 0;
  std::size_t self_ = 0;
  std::size_t diameters_ = 0;
  bool shared_ranks_ = false;
  NamingMode naming_ = NamingMode::lexicographic;
  std::vector<sim::VisibleId> ids_;  ///< t0 visible ids (by_ids only).
  std::vector<geom::Vec2> centers_;
  std::vector<geom::Granular> granulars_;
  /// Flat rank tables: row-major rows of length n_ (one shared row when
  /// `shared_ranks_`). uint32 halves the footprint of the old size_t
  /// nested vectors; swarms stay far below 2^32 robots.
  std::vector<std::uint32_t> ranks_;
  std::vector<std::uint32_t> inverse_ranks_;
  /// Nearest-center index for `associate_into`, built once over the t0
  /// centers for large swarms (empty below the threshold — the brute scan
  /// wins there).
  geom::PointGrid center_grid_;
  /// Scratch for `associate_into`'s taken-granular bookkeeping; mutable
  /// because association is logically const (cores are per-robot and
  /// engines are single-threaded, so no synchronization is needed).
  mutable std::vector<bool> assoc_filled_;
};

}  // namespace stig::proto
