// The Section 5 k-segment addressing extension (synchronous).
//
// With limited angular resolution, robots "are not able to identify all of
// possible 2n directions obtained by slices inside of disks". The paper's
// fix: use only k+1 segments — one for message transmission plus k used to
// spell out the *index* of the designated robot in base k, taking
// ceil(log n / log k) movement symbols per message before the payload.
//
// Our realization slices each granular into k+1 diameters: diameter 0
// carries payload bits (positive side = 0, negative = 1); diameters 1..k
// carry the digits of the addressee's rank (diameter 1+d, positive side,
// for digit d). A message is: D = digits_needed(n, k) digit symbols, then
// the framed payload. The frame is self-delimiting, so decoders know when
// to switch back to digit mode.
//
// Section 5 predicts the cost: transmitting the index takes log_k(n)
// symbols; with k = O(log n) slices the per-message overhead grows by
// O(log n / log log n) — measured by benchmark E3.
#pragma once

#include <vector>

#include "encode/framing.hpp"
#include "encode/ksegment_code.hpp"
#include "proto/common.hpp"
#include "proto/slices.hpp"

namespace stig::proto {

/// Configuration for KSegmentRobot.
struct KSegmentOptions {
  NamingMode naming = NamingMode::lexicographic;
  /// Number of index segments; 2 <= k. Total diameters = k + 1.
  std::size_t k = 4;
  /// The robot's own maximum per-activation travel, in local units.
  double sigma_local = 1.0;
  /// Fraction of the granular radius used as signal amplitude.
  double amplitude_fraction = 0.45;
};

class KSegmentRobot final : public ChatRobot {
 public:
  explicit KSegmentRobot(KSegmentOptions options);

  void initialize(const sim::Snapshot& snap) override;
  geom::Vec2 on_activate(const sim::Snapshot& snap) override;

  [[nodiscard]] std::size_t self_slot() const override {
    return core_.rank(core_.self_index(), core_.self_index());
  }
  [[nodiscard]] std::size_t slot_count() const override {
    return core_.robot_count();
  }
  [[nodiscard]] std::size_t slot_of_t0_index(std::size_t i) const override {
    return core_.rank(core_.self_index(), i);
  }

  /// Movement symbols needed per message of `payload_bits` framed bits:
  /// the digit prefix plus the payload.
  [[nodiscard]] std::size_t symbols_for(std::size_t payload_bits) const {
    return digits_ + payload_bits;
  }

 protected:
  void corrupt_protocol_state(CorruptKind kind,
                              std::uint64_t garbage) override;

 private:
  /// Per-sender decoder: collecting the digit prefix or the payload.
  struct DecodeState {
    std::vector<std::uint32_t> digits;
    bool in_payload = false;
    std::size_t addressee_rank = 0;  ///< Valid once in_payload.
    encode::FrameParser end_detector; ///< Mirrors the stream to find frame
                                      ///< boundaries.
    std::int64_t last_code = 0;       ///< Edge detector (0 = at center).
    std::uint8_t idle = 0;            ///< Consecutive at-center
                                      ///< observations (resync trigger).
  };

  KSegmentOptions options_;
  SlicedCore core_;
  std::size_t digits_ = 0;  ///< Digit symbols per message.
  std::vector<std::uint32_t> pending_digits_;  ///< Own prefix in flight.
  bool prefix_done_ = false;  ///< Current frame's prefix fully sent.
  bool displaced_ = false;
  std::vector<DecodeState> decode_;
  /// Per-activation scratch for the associated positions (capacity reused).
  std::vector<geom::Vec2> pos_scratch_;
};

}  // namespace stig::proto
