#include "apps/aggregate.hpp"

#include <algorithm>

namespace stig::apps {

AggregateResult aggregate(
    core::ChatNetwork& net, sim::RobotIndex collector,
    const std::vector<std::vector<std::uint8_t>>& values,
    const std::function<std::vector<std::uint8_t>(
        std::vector<std::uint8_t>, const std::vector<std::uint8_t>&)>&
        combine,
    bool announce, sim::Time budget) {
  const std::size_t n = net.robot_count();
  AggregateResult result;
  const sim::Time start = net.engine().now();

  // Phase 1: converge-cast.
  const std::size_t already = net.received(collector).size();
  for (sim::RobotIndex i = 0; i < n; ++i) {
    if (i == collector) continue;
    net.send(i, collector, values.at(i));
  }
  if (!net.run_until_quiescent(budget)) {
    result.instants = net.engine().now() - start;
    return result;
  }
  // A few settle steps so the last decode lands before we read the inbox.
  net.run(net.protocol_kind() == core::ProtocolKind::sync2 ||
                  net.protocol_kind() == core::ProtocolKind::sliced ||
                  net.protocol_kind() == core::ProtocolKind::ksegment
              ? 4
              : 256);

  result.value = values.at(collector);
  result.contributions = 1;
  const auto& inbox = net.received(collector);
  for (std::size_t k = already; k < inbox.size(); ++k) {
    result.value = combine(std::move(result.value), inbox[k].payload);
    ++result.contributions;
  }
  if (result.contributions != n) {
    result.instants = net.engine().now() - start;
    return result;
  }

  // Phase 2: optional announcement.
  if (announce) {
    net.broadcast(collector, result.value);
    if (!net.run_until_quiescent(budget)) {
      result.instants = net.engine().now() - start;
      return result;
    }
    net.run(4);
    for (sim::RobotIndex i = 0; i < n; ++i) {
      if (i == collector) continue;
      const auto& got = net.received(i);
      if (got.empty() || !got.back().broadcast ||
          got.back().payload != result.value) {
        result.instants = net.engine().now() - start;
        return result;
      }
    }
  }

  result.instants = net.engine().now() - start;
  result.complete = true;
  return result;
}

AggregateResult max_byte(core::ChatNetwork& net, sim::RobotIndex collector,
                         const std::vector<std::uint8_t>& bytes,
                         bool announce, sim::Time budget) {
  std::vector<std::vector<std::uint8_t>> values;
  values.reserve(bytes.size());
  for (std::uint8_t b : bytes) values.push_back({b});
  return aggregate(
      net, collector, values,
      [](std::vector<std::uint8_t> acc,
         const std::vector<std::uint8_t>& v) {
        acc[0] = std::max(acc[0], v.at(0));
        return acc;
      },
      announce, budget);
}

}  // namespace stig::apps
