// Converge-cast aggregation over the motion channel.
//
// "Our protocols enable the use of distributed algorithms based on message
// exchanges among swarms of stigmergic robots." This header provides the
// first classical such algorithm as a reusable component: every robot
// contributes a value; a collector combines them with a user-supplied
// associative operation and (optionally) broadcasts the result back, so the
// whole swarm learns it.
//
// Works over any ChatNetwork (any protocol/synchrony the network was built
// with); the driver runs the network until each phase completes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/chat_network.hpp"

namespace stig::apps {

/// Result of an aggregation round.
struct AggregateResult {
  std::vector<std::uint8_t> value;   ///< The combined value.
  std::size_t contributions = 0;     ///< Values folded in (incl. collector).
  sim::Time instants = 0;            ///< Simulation time consumed.
  bool complete = false;             ///< All robots reported and (if
                                     ///< requested) learned the result.
};

/// Runs one aggregation: every robot sends its value to `collector`, which
/// folds them with `combine` (associative, order-independent for a
/// deterministic result) and, when `announce` is set, broadcasts the
/// result so every robot knows it.
///
/// `values[i]` is robot i's contribution (byte strings of any length;
/// `combine` must handle them). Returns the combined value and whether the
/// round completed within `budget` instants.
[[nodiscard]] AggregateResult aggregate(
    core::ChatNetwork& net, sim::RobotIndex collector,
    const std::vector<std::vector<std::uint8_t>>& values,
    const std::function<std::vector<std::uint8_t>(
        std::vector<std::uint8_t>, const std::vector<std::uint8_t>&)>&
        combine,
    bool announce, sim::Time budget);

/// Convenience: single-byte maximum over the swarm (the swarm_survey
/// example, as a library call).
[[nodiscard]] AggregateResult max_byte(core::ChatNetwork& net,
                                       sim::RobotIndex collector,
                                       const std::vector<std::uint8_t>& bytes,
                                       bool announce, sim::Time budget);

}  // namespace stig::apps
