// Leader election over the motion channel.
//
// Deterministic leader election among *anonymous* robots is exactly what
// the paper's Section 3.4 shows to be impossible in symmetric
// configurations — which is why this component uses the standard randomized
// escape: robots draw random tokens, broadcast them, and elect the maximum
// (ties broken by re-drawing). With distinct tokens all robots agree after
// one round; the collision probability for 32-bit tokens is negligible and
// handled by retrying.
#pragma once

#include <cstdint>
#include <optional>

#include "core/chat_network.hpp"
#include "sim/rng.hpp"

namespace stig::apps {

/// Outcome of an election.
struct ElectionResult {
  sim::RobotIndex leader = 0;      ///< Simulator index of the winner.
  std::uint32_t token = 0;         ///< The winning token.
  unsigned rounds = 0;             ///< Broadcast rounds used (1 unless a
                                   ///< token collision forced a re-draw).
  sim::Time instants = 0;
  bool complete = false;           ///< Every robot agrees on the leader.
};

/// Runs the election on `net`. Token randomness comes from `seed`
/// (per-robot streams derived from it), so results are reproducible.
[[nodiscard]] ElectionResult elect_leader(core::ChatNetwork& net,
                                          std::uint64_t seed,
                                          sim::Time budget);

}  // namespace stig::apps
