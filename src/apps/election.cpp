#include "apps/election.hpp"

#include <algorithm>
#include <vector>

namespace stig::apps {
namespace {

std::vector<std::uint8_t> pack32(std::uint32_t v) {
  return {static_cast<std::uint8_t>(v >> 24),
          static_cast<std::uint8_t>(v >> 16),
          static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
}

std::uint32_t unpack32(const std::vector<std::uint8_t>& b) {
  return (std::uint32_t{b.at(0)} << 24) | (std::uint32_t{b.at(1)} << 16) |
         (std::uint32_t{b.at(2)} << 8) | std::uint32_t{b.at(3)};
}

}  // namespace

ElectionResult elect_leader(core::ChatNetwork& net, std::uint64_t seed,
                            sim::Time budget) {
  const std::size_t n = net.robot_count();
  ElectionResult result;
  const sim::Time start = net.engine().now();
  sim::Rng rng(seed);

  // Track how much of each inbox we have already consumed so repeated
  // rounds (and prior traffic on the network) do not confuse us.
  std::vector<std::size_t> consumed(n);
  for (sim::RobotIndex i = 0; i < n; ++i) {
    consumed[i] = net.received(i).size();
  }

  for (unsigned round = 1; round <= 4; ++round) {
    result.rounds = round;
    std::vector<std::uint32_t> tokens(n);
    for (auto& t : tokens) {
      t = static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFFFFULL));
    }
    const bool distinct = [&] {
      std::vector<std::uint32_t> sorted = tokens;
      std::sort(sorted.begin(), sorted.end());
      return std::adjacent_find(sorted.begin(), sorted.end()) ==
             sorted.end();
    }();
    if (!distinct) continue;  // Re-draw; never transmit colliding tokens.

    for (sim::RobotIndex i = 0; i < n; ++i) {
      net.broadcast(i, pack32(tokens[i]));
    }
    if (!net.run_until_quiescent(budget)) break;
    net.run(net.protocol_kind() == core::ProtocolKind::asyncn ? 256 : 4);

    // Every robot folds its own token with all broadcasts of this round.
    const sim::RobotIndex true_leader = static_cast<sim::RobotIndex>(
        std::max_element(tokens.begin(), tokens.end()) - tokens.begin());
    bool all_agree = true;
    for (sim::RobotIndex i = 0; i < n; ++i) {
      std::uint32_t best = tokens[i];
      sim::RobotIndex leader = i;
      const auto& inbox = net.received(i);
      for (std::size_t k = consumed[i]; k < inbox.size(); ++k) {
        if (!inbox[k].broadcast || inbox[k].payload.size() != 4) continue;
        const std::uint32_t t = unpack32(inbox[k].payload);
        if (t > best) {
          best = t;
          leader = inbox[k].from;
        }
      }
      consumed[i] = inbox.size();
      all_agree = all_agree && leader == true_leader;
    }
    if (all_agree) {
      result.leader = true_leader;
      result.token = tokens[true_leader];
      result.complete = true;
      break;
    }
  }
  result.instants = net.engine().now() - start;
  return result;
}

}  // namespace stig::apps
