// Minimal SVG scene builder for rendering configurations, Voronoi cells,
// granulars with their slicing, SEC/horizon constructions and trajectories
// — the library's counterpart to the paper's figures. Pure string building,
// no external dependencies; the figure benches emit .svg files with it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geom/circle.hpp"
#include "geom/convex.hpp"
#include "geom/granular.hpp"
#include "geom/vec.hpp"

namespace stig::viz {

/// Style of a drawn element. Colors are any SVG color string.
struct Style {
  std::string stroke = "black";
  double stroke_width = 1.0;
  std::string fill = "none";
  double opacity = 1.0;
  /// Dash pattern, e.g. "4 2"; empty = solid.
  std::string dash;
};

/// Accumulates shapes in *world* coordinates (y up); `str()` flips the axis
/// and fits everything into the requested canvas with a margin.
class SvgScene {
 public:
  /// `canvas`: output width in pixels (height follows the world aspect).
  explicit SvgScene(double canvas = 800.0, double margin = 20.0)
      : canvas_(canvas), margin_(margin) {}

  void circle(const geom::Vec2& center, double radius, const Style& style);
  void circle(const geom::Circle& c, const Style& style) {
    circle(c.center, c.radius, style);
  }
  void line(const geom::Vec2& a, const geom::Vec2& b, const Style& style);
  void polygon(const geom::ConvexPolygon& poly, const Style& style);
  void polyline(std::span<const geom::Vec2> points, const Style& style);
  void dot(const geom::Vec2& p, double radius, const std::string& color);
  /// Text label anchored at `p` (world coordinates).
  void text(const geom::Vec2& p, const std::string& label,
            double font_size = 12.0, const std::string& color = "black");

  /// Draws a granular: its disc, all half-diameters, and slice labels.
  /// `label_offset` shifts diameter labels outward from the rim.
  void granular(const geom::Granular& g, const Style& disc_style,
                const Style& diameter_style, bool label_diameters = true);

  /// Serializes the scene to a complete SVG document.
  [[nodiscard]] std::string str() const;

  /// Writes the document to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct Element {
    std::string body;  ///< SVG fragment with %X/%Y/%L placeholders resolved
                       ///< at str() time via the recorded world points.
  };

  void track(const geom::Vec2& p);
  void track(const geom::Vec2& p, double radius);
  [[nodiscard]] std::string transform(const geom::Vec2& p, double scale,
                                      const geom::Vec2& origin) const;

  double canvas_;
  double margin_;
  double xmin_ = 1e300, ymin_ = 1e300, xmax_ = -1e300, ymax_ = -1e300;

  struct Shape {
    enum class Kind : unsigned char { circle, line, poly, polyline, text };
    Kind kind{};
    std::vector<geom::Vec2> pts;
    double radius = 0.0;
    std::string label;
    double font = 12.0;
    Style style;
  };
  std::vector<Shape> shapes_;
};

}  // namespace stig::viz
