// Higher-level figure composition: draws whole configurations (Voronoi
// cells, granulars with paper-accurate slicing and labels, the SEC and a
// horizon line) and trajectories from a recorded trace — enough to
// regenerate each of the paper's Figures 1-6 as an .svg.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "proto/slices.hpp"
#include "sim/trace.hpp"
#include "viz/svg.hpp"

namespace stig::viz {

/// What to include in a swarm drawing.
struct SwarmDrawing {
  bool voronoi = true;        ///< Cell boundaries (Figure 2a).
  bool granulars = true;      ///< Granular discs.
  std::size_t diameters = 0;  ///< Slices per granular; 0 = none.
  /// Slicing reference: lexicographic/by-ids use North; relative uses each
  /// robot's horizon line H_r (Figures 4 and 6).
  proto::NamingMode naming = proto::NamingMode::lexicographic;
  bool sec = false;           ///< Smallest enclosing circle (Figure 4).
  /// Draw the horizon line of this robot through the SEC center.
  std::optional<std::size_t> horizon_of;
  bool label_robots = true;
};

/// Renders the configuration `pts` into a fresh scene.
[[nodiscard]] SvgScene draw_swarm(std::span<const geom::Vec2> pts,
                                  const SwarmDrawing& what);

/// Overlays each robot's trajectory from a recorded position history
/// (`Trace::positions()`), one default color per robot.
void draw_trajectories(
    SvgScene& scene,
    const std::vector<std::vector<geom::Vec2>>& history);

/// A small categorical palette (cycles after 8 entries).
[[nodiscard]] const std::string& robot_color(std::size_t i);

}  // namespace stig::viz
