#include "viz/svg.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace stig::viz {
namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << v;
  return os.str();
}

std::string style_attrs(const Style& s) {
  std::ostringstream os;
  os << "stroke=\"" << s.stroke << "\" stroke-width=\"" << fmt(s.stroke_width)
     << "\" fill=\"" << s.fill << "\" opacity=\"" << fmt(s.opacity) << "\"";
  if (!s.dash.empty()) os << " stroke-dasharray=\"" << s.dash << "\"";
  return os.str();
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void SvgScene::track(const geom::Vec2& p) {
  xmin_ = std::min(xmin_, p.x);
  ymin_ = std::min(ymin_, p.y);
  xmax_ = std::max(xmax_, p.x);
  ymax_ = std::max(ymax_, p.y);
}

void SvgScene::track(const geom::Vec2& p, double radius) {
  track(p + geom::Vec2{radius, radius});
  track(p - geom::Vec2{radius, radius});
}

void SvgScene::circle(const geom::Vec2& center, double radius,
                      const Style& style) {
  track(center, radius);
  Shape s;
  s.kind = Shape::Kind::circle;
  s.pts = {center};
  s.radius = radius;
  s.style = style;
  shapes_.push_back(std::move(s));
}

void SvgScene::line(const geom::Vec2& a, const geom::Vec2& b,
                    const Style& style) {
  track(a);
  track(b);
  Shape s;
  s.kind = Shape::Kind::line;
  s.pts = {a, b};
  s.style = style;
  shapes_.push_back(std::move(s));
}

void SvgScene::polygon(const geom::ConvexPolygon& poly, const Style& style) {
  if (poly.empty()) return;
  Shape s;
  s.kind = Shape::Kind::poly;
  s.pts = poly.vertices();
  for (const geom::Vec2& v : s.pts) track(v);
  s.style = style;
  shapes_.push_back(std::move(s));
}

void SvgScene::polyline(std::span<const geom::Vec2> points,
                        const Style& style) {
  if (points.empty()) return;
  Shape s;
  s.kind = Shape::Kind::polyline;
  s.pts.assign(points.begin(), points.end());
  for (const geom::Vec2& v : s.pts) track(v);
  s.style = style;
  shapes_.push_back(std::move(s));
}

void SvgScene::dot(const geom::Vec2& p, double radius,
                   const std::string& color) {
  Style s;
  s.stroke = "none";
  s.fill = color;
  circle(p, radius, s);
}

void SvgScene::text(const geom::Vec2& p, const std::string& label,
                    double font_size, const std::string& color) {
  track(p);
  Shape s;
  s.kind = Shape::Kind::text;
  s.pts = {p};
  s.label = label;
  s.font = font_size;
  s.style.fill = color;
  shapes_.push_back(std::move(s));
}

void SvgScene::granular(const geom::Granular& g, const Style& disc_style,
                        const Style& diameter_style, bool label_diameters) {
  circle(g.center(), g.radius(), disc_style);
  for (std::size_t d = 0; d < g.diameter_count(); ++d) {
    line(g.point_on(d, geom::DiameterSide::negative, g.radius()),
         g.point_on(d, geom::DiameterSide::positive, g.radius()),
         diameter_style);
    if (label_diameters) {
      text(g.point_on(d, geom::DiameterSide::positive, g.radius() * 1.12),
           std::to_string(d), 10.0, diameter_style.stroke);
    }
  }
}

std::string SvgScene::str() const {
  const double w = std::max(xmax_ - xmin_, 1e-9);
  const double h = std::max(ymax_ - ymin_, 1e-9);
  const double scale = (canvas_ - 2 * margin_) / std::max(w, h);
  const double width = w * scale + 2 * margin_;
  const double height = h * scale + 2 * margin_;
  const auto X = [&](const geom::Vec2& p) {
    return fmt((p.x - xmin_) * scale + margin_);
  };
  const auto Y = [&](const geom::Vec2& p) {
    return fmt(height - ((p.y - ymin_) * scale + margin_));  // Flip y.
  };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << fmt(width)
     << "\" height=\"" << fmt(height) << "\">\n";
  for (const Shape& s : shapes_) {
    switch (s.kind) {
      case Shape::Kind::circle:
        os << "  <circle cx=\"" << X(s.pts[0]) << "\" cy=\"" << Y(s.pts[0])
           << "\" r=\"" << fmt(s.radius * scale) << "\" "
           << style_attrs(s.style) << "/>\n";
        break;
      case Shape::Kind::line:
        os << "  <line x1=\"" << X(s.pts[0]) << "\" y1=\"" << Y(s.pts[0])
           << "\" x2=\"" << X(s.pts[1]) << "\" y2=\"" << Y(s.pts[1]) << "\" "
           << style_attrs(s.style) << "/>\n";
        break;
      case Shape::Kind::poly:
      case Shape::Kind::polyline: {
        os << (s.kind == Shape::Kind::poly ? "  <polygon points=\""
                                           : "  <polyline points=\"");
        for (const geom::Vec2& p : s.pts) {
          os << X(p) << ',' << Y(p) << ' ';
        }
        os << "\" " << style_attrs(s.style) << "/>\n";
        break;
      }
      case Shape::Kind::text:
        os << "  <text x=\"" << X(s.pts[0]) << "\" y=\"" << Y(s.pts[0])
           << "\" font-size=\"" << fmt(s.font) << "\" fill=\""
           << s.style.fill << "\" text-anchor=\"middle\">"
           << escape(s.label) << "</text>\n";
        break;
    }
  }
  os << "</svg>\n";
  return os.str();
}

bool SvgScene::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << str();
  return static_cast<bool>(out);
}

}  // namespace stig::viz
