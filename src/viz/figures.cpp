#include "viz/figures.hpp"

#include <array>

#include "geom/geom_cache.hpp"
#include "geom/voronoi.hpp"
#include "proto/naming.hpp"

namespace stig::viz {

const std::string& robot_color(std::size_t i) {
  static const std::array<std::string, 8> kPalette = {
      "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
      "#ff7f0e", "#17becf", "#8c564b", "#e377c2"};
  return kPalette[i % kPalette.size()];
}

SvgScene draw_swarm(std::span<const geom::Vec2> pts,
                    const SwarmDrawing& what) {
  SvgScene scene;

  if (what.voronoi) {
    const geom::VoronoiDiagram vd = geom::VoronoiDiagram::compute(
        pts, /*margin=*/0.15 * 50.0);
    Style cell;
    cell.stroke = "#888888";
    cell.stroke_width = 0.8;
    for (const geom::VoronoiCell& c : vd.cells()) {
      scene.polygon(c.polygon, cell);
    }
  }

  geom::Circle sec;
  if (what.sec || what.naming == proto::NamingMode::relative) {
    sec = geom::cached_sec(pts);
  }
  if (what.sec) {
    Style s;
    s.stroke = "#444444";
    s.dash = "6 3";
    scene.circle(sec, s);
    scene.dot(sec.center, 0.15, "#444444");
    scene.text(sec.center + geom::Vec2{0.0, 0.6}, "O", 12.0, "#444444");
  }
  if (what.horizon_of && *what.horizon_of < pts.size()) {
    const geom::Vec2 dir =
        proto::horizon_direction(pts, *what.horizon_of);
    Style h;
    h.stroke = "#d62728";
    h.dash = "3 3";
    scene.line(sec.center - dir * sec.radius * 0.1,
               sec.center + dir * sec.radius * 1.2, h);
  }

  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (what.granulars || what.diameters > 0) {
      const double radius = geom::cached_granular_radius(pts, i);
      const geom::Vec2 reference =
          what.naming == proto::NamingMode::relative
              ? proto::horizon_direction(pts, i)
              : geom::Vec2{0.0, 1.0};
      const geom::Granular g(pts[i], radius,
                             std::max<std::size_t>(what.diameters, 1),
                             reference);
      Style disc;
      disc.stroke = robot_color(i);
      disc.dash = "2 2";
      Style diam;
      diam.stroke = robot_color(i);
      diam.stroke_width = 0.5;
      diam.opacity = 0.6;
      if (what.diameters > 0) {
        scene.granular(g, disc, diam, /*label_diameters=*/pts.size() <= 16);
      } else if (what.granulars) {
        scene.circle(pts[i], radius, disc);
      }
    }
    scene.dot(pts[i], 0.25, robot_color(i));
    if (what.label_robots) {
      scene.text(pts[i] + geom::Vec2{0.0, 0.5}, std::to_string(i), 11.0,
                 robot_color(i));
    }
  }
  return scene;
}

void draw_trajectories(
    SvgScene& scene,
    const std::vector<std::vector<geom::Vec2>>& history) {
  if (history.empty()) return;
  const std::size_t n = history.front().size();
  std::vector<geom::Vec2> path;
  path.reserve(history.size());
  for (std::size_t i = 0; i < n; ++i) {
    path.clear();
    for (const auto& config : history) path.push_back(config[i]);
    Style s;
    s.stroke = robot_color(i);
    s.stroke_width = 0.8;
    s.opacity = 0.7;
    scene.polyline(path, s);
    scene.dot(path.front(), 0.2, robot_color(i));
    scene.dot(path.back(), 0.3, robot_color(i));
  }
}

}  // namespace stig::viz
