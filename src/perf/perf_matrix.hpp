// The stigperf scenario matrix — reproducible hot-path cost measurement.
//
// A `Scenario` pins one protocol × robot-count workload (who sends what,
// under which seed); `run_scenario` executes it twice on the calling
// thread — once unmeasured to warm every lazy static and thread-local
// cache (geom::GeomCache in particular), once measured — and returns the
// deterministic cost counters of the measured run's step loop:
// allocations, bytes, relative peak live bytes, emitted events, plus the
// per-phase profiler rollup (obs/prof.hpp).
//
// Determinism contract: every number in `ScenarioResult` except the
// timing fields (`run_ns`, cycle counts) is a pure function of (code,
// scenario). The warmup run is what makes that hold at any
// par::BatchRunner job count — a fresh worker thread and a reused one see
// the same measured-run allocation trace because both enter it with their
// thread-local caches already at capacity. `render_perf_json` with
// `include_timing = false` therefore emits byte-identical artifacts at
// jobs 1 and jobs 8 (tested in tests/test_obs_prof.cpp); the stigperf
// regression gate relies on exactly this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/chat_network.hpp"
#include "obs/prof.hpp"

namespace stig::perf {

/// One cell of the measurement matrix.
struct Scenario {
  std::string name;  ///< Artifact name: PERF_<name>.json.
  core::ProtocolKind protocol = core::ProtocolKind::sliced;
  core::Synchrony synchrony = core::Synchrony::synchronous;
  std::size_t robots = 2;
  std::size_t payload_len = 4;  ///< Bytes per queued message.
  std::size_t messages = 1;     ///< 1: robot 0 -> n-1; 2: also n-1 -> 0.
  sim::Time max_instants = 5'000'000;
  std::uint64_t seed = 1;
};

/// Measured costs of one scenario's step loop (sends queued beforehand;
/// construction and warmup excluded).
struct ScenarioResult {
  Scenario scenario;
  std::string protocol;  ///< Resolved protocol name.
  std::uint64_t instants = 0;
  bool quiescent = false;
  /// False when operator-new interposition is compiled out (sanitizer
  /// builds) — every alloc-derived field below is then zero and the gate
  /// must skip them.
  bool alloc_tracking = false;
  std::uint64_t allocs = 0;  ///< operator-new calls during the run loop.
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;        ///< Cumulative bytes requested.
  std::int64_t peak_bytes = 0;    ///< Peak live bytes above the pre-run level.
  std::uint64_t events = 0;       ///< Telemetry events emitted.
  double run_ns = 0.0;            ///< Wall time of the measured loop.
  std::vector<obs::prof::PhaseStats> phases;
};

/// The default matrix: one cell per protocol family, small enough for a CI
/// smoke job (sync2_n2, sliced_n8, sliced_n32, ksegment_n9, async2_n2,
/// asyncn_n8).
[[nodiscard]] std::vector<Scenario> fast_matrix();

/// The fast matrix plus the nightly-only large cells (sliced_n64,
/// asyncn_n16, sliced_n1024).
[[nodiscard]] std::vector<Scenario> full_matrix();

/// Runs `s` (warmup + measured) on the calling thread.
[[nodiscard]] ScenarioResult run_scenario(const Scenario& s);

/// Renders `r` in the BENCH_*.json artifact schema ("bench" + flat
/// "values"), so stigreport's parser and gate apply unchanged. Gated keys
/// (allocs/bytes/events per instant, per-phase allocation counters) are
/// always present; cycle and wall keys only when `include_timing` — and
/// they carry the obs/metric_keys.hpp informational markers either way.
[[nodiscard]] std::string render_perf_json(const ScenarioResult& r,
                                           bool include_timing);

}  // namespace stig::perf
