#include "perf/perf_matrix.hpp"

#include <chrono>
#include <cmath>
#include <sstream>

#include "obs/alloc_track.hpp"
#include "obs/json.hpp"
#include "obs/sink.hpp"
#include "sim/rng.hpp"

namespace stig::perf {
namespace {

/// Pairwise-separated points in a box, deterministic in `seed` (same
/// rejection scheme as bench::scatter; duplicated here because src must
/// not include bench headers). The fixed 80x80 rejection box saturates
/// near 700 points at the 3-unit separation, so large cells switch to a
/// jittered spacing-3 grid whose extent scales with n instead.
std::vector<geom::Vec2> scatter(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<geom::Vec2> pts;
  if (n > 256) {
    const auto side = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back(geom::Vec2{
          static_cast<double>(i % side) * 3.0 + rng.uniform(-0.5, 0.5),
          static_cast<double>(i / side) * 3.0 + rng.uniform(-0.5, 0.5)});
    }
    return pts;
  }
  while (pts.size() < n) {
    const geom::Vec2 p{rng.uniform(-40.0, 40.0), rng.uniform(-40.0, 40.0)};
    bool ok = true;
    for (const geom::Vec2& q : pts) {
      if (geom::dist(p, q) < 3.0) ok = false;
    }
    if (ok) pts.push_back(p);
  }
  return pts;
}

std::vector<std::uint8_t> payload(std::size_t len, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

core::ChatNetworkOptions options_for(const Scenario& s) {
  core::ChatNetworkOptions o;
  o.synchrony = s.synchrony;
  o.protocol = s.protocol;
  o.seed = s.seed;
  return o;
}

void queue_messages(core::ChatNetwork& net, const Scenario& s) {
  const std::size_t n = net.robot_count();
  net.send(0, n - 1, payload(s.payload_len, s.seed ^ 0x9e3779b9));
  if (s.messages > 1) {
    net.send(n - 1, 0, payload(s.payload_len, s.seed ^ 0x7f4a7c15));
  }
}

Scenario cell(const char* name, core::ProtocolKind protocol,
              core::Synchrony synchrony, std::size_t robots,
              std::size_t payload_len, std::size_t messages,
              std::uint64_t seed) {
  Scenario s;
  s.name = name;
  s.protocol = protocol;
  s.synchrony = synchrony;
  s.robots = robots;
  s.payload_len = payload_len;
  s.messages = messages;
  s.seed = seed;
  return s;
}

void emit_value(std::ostringstream& out, bool& first, const std::string& key,
                const std::string& raw) {
  out << (first ? "\n" : ",\n") << "    " << obs::json_quote(key) << ": "
      << raw;
  first = false;
}

}  // namespace

std::vector<Scenario> fast_matrix() {
  using core::ProtocolKind;
  using core::Synchrony;
  return {
      cell("sync2_n2", ProtocolKind::sync2, Synchrony::synchronous, 2, 8, 2,
           11),
      cell("sliced_n8", ProtocolKind::sliced, Synchrony::synchronous, 8, 4,
           2, 12),
      cell("sliced_n32", ProtocolKind::sliced, Synchrony::synchronous, 32, 2,
           1, 13),
      cell("ksegment_n9", ProtocolKind::ksegment, Synchrony::synchronous, 9,
           4, 1, 14),
      cell("async2_n2", ProtocolKind::async2, Synchrony::asynchronous, 2, 8,
           2, 15),
      cell("asyncn_n8", ProtocolKind::asyncn, Synchrony::asynchronous, 8, 4,
           1, 16),
  };
}

std::vector<Scenario> full_matrix() {
  using core::ProtocolKind;
  using core::Synchrony;
  std::vector<Scenario> m = fast_matrix();
  m.push_back(cell("sliced_n64", ProtocolKind::sliced,
                   Synchrony::synchronous, 64, 2, 1, 17));
  m.push_back(cell("asyncn_n16", ProtocolKind::asyncn,
                   Synchrony::asynchronous, 16, 2, 1, 18));
  // The post-epoch-ring large cell: one 2-byte message across a
  // 1024-robot sliced swarm. Exists to pin the hot-path allocation
  // profile at a size where the old per-robot configuration copies and
  // all-pairs scans dominated; nightly-only because construction alone
  // holds n granulars per robot core.
  m.push_back(cell("sliced_n1024", ProtocolKind::sliced,
                   Synchrony::synchronous, 1024, 2, 1, 19));
  return m;
}

ScenarioResult run_scenario(const Scenario& s) {
  // Warmup: the identical workload, unmeasured, on this thread. Afterward
  // every process-wide lazy static and every thread-local cache the
  // measured run touches is already sized, so the measured allocation
  // trace is the same on a fresh worker thread and a reused one.
  {
    core::ChatNetwork net(scatter(s.robots, s.seed), options_for(s));
    queue_messages(net, s);
    (void)net.run_until_quiescent(s.max_instants);
  }

  ScenarioResult r;
  r.scenario = s;
  obs::prof::Profiler prof;
  obs::CountingSink counter;
  core::ChatNetwork net(scatter(s.robots, s.seed), options_for(s));
  r.protocol = core::protocol_kind_name(net.protocol_kind());
  net.attach_profiler(&prof);
  net.attach_event_sink(&counter);
  queue_messages(net, s);

  obs::alloc::reset_peak();
  const obs::alloc::Counters before = obs::alloc::snapshot();
  const auto t0 = std::chrono::steady_clock::now();
  r.quiescent = net.run_until_quiescent(s.max_instants);
  const auto t1 = std::chrono::steady_clock::now();
  const obs::alloc::Counters after = obs::alloc::snapshot();

  r.alloc_tracking = obs::alloc::active();
  r.instants = net.engine().now();
  r.allocs = after.allocs - before.allocs;
  r.frees = after.frees - before.frees;
  r.bytes = after.bytes - before.bytes;
  // Relative peak: high-water mark of the run above its starting live
  // level, so the thread's prior history cannot leak into the number.
  r.peak_bytes = after.peak_live_bytes - before.live_bytes;
  r.events = counter.total();
  r.run_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  r.phases = prof.stats();
  return r;
}

std::string render_perf_json(const ScenarioResult& r, bool include_timing) {
  std::ostringstream out;
  out << "{\n  \"bench\": " << obs::json_quote(r.scenario.name) << ",";
  if (include_timing) {
    out << "\n  \"wall_seconds\": " << obs::json_number(r.run_ns / 1e9)
        << ",";
  }
  out << "\n  \"values\": {";
  bool first = true;
  const auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  const double inst =
      r.instants > 0 ? static_cast<double>(r.instants) : 1.0;
  emit_value(out, first, "protocol", obs::json_quote(r.protocol));
  emit_value(out, first, "robots", u64(r.scenario.robots));
  emit_value(out, first, "instants", u64(r.instants));
  emit_value(out, first, "quiescent", r.quiescent ? "true" : "false");
  emit_value(out, first, "alloc_tracking",
             r.alloc_tracking ? "true" : "false");
  emit_value(out, first, "events", u64(r.events));
  emit_value(out, first, "events_per_instant",
             obs::json_number(static_cast<double>(r.events) / inst));
  emit_value(out, first, "allocs", u64(r.allocs));
  emit_value(out, first, "allocs_per_instant",
             obs::json_number(static_cast<double>(r.allocs) / inst));
  emit_value(out, first, "frees", u64(r.frees));
  emit_value(out, first, "bytes", u64(r.bytes));
  emit_value(out, first, "bytes_per_instant",
             obs::json_number(static_cast<double>(r.bytes) / inst));
  emit_value(out, first, "peak_bytes", std::to_string(r.peak_bytes));
  for (const obs::prof::PhaseStats& p : r.phases) {
    const std::string base = std::string("prof.") + p.name + ".";
    emit_value(out, first, base + "calls", u64(p.calls));
    emit_value(out, first, base + "self_allocs", u64(p.self_allocs));
    emit_value(out, first, base + "total_allocs", u64(p.total_allocs));
    emit_value(out, first, base + "self_bytes", u64(p.self_bytes));
    emit_value(out, first, base + "total_bytes", u64(p.total_bytes));
    if (include_timing) {
      emit_value(out, first, base + "self_cycles", u64(p.self_cycles));
      emit_value(out, first, base + "total_cycles", u64(p.total_cycles));
    }
  }
  if (include_timing) {
    emit_value(out, first, "run_ns", obs::json_number(r.run_ns));
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

}  // namespace stig::perf
