// Replayable activation-schedule capture.
//
// The fuzz harness's bit-for-bit replay claim rests on the schedule: two
// runs are "the same execution" exactly when every instant activated the
// same robots. A ScheduleLog records the activation sets an engine's
// scheduler produced; a RecordingScheduler wraps any scheduler to fill one
// in transparently; a ReplayScheduler plays a log back verbatim. The FNV
// digest condenses a whole schedule into one comparable/serializable
// fingerprint — `stigsim --replay` re-runs a repro and compares digests to
// prove the failure was reproduced under the identical schedule.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/scheduler.hpp"

namespace stig::sim {

/// A recorded activation schedule: one ActivationSet per instant, in order.
struct ScheduleLog {
  std::vector<ActivationSet> sets;

  /// FNV-1a fingerprint over (instant, robot count, activation bits).
  /// Equal digests over equal lengths mean bit-identical schedules.
  [[nodiscard]] std::uint64_t digest() const noexcept;

  void clear() { sets.clear(); }
  [[nodiscard]] std::size_t instants() const noexcept { return sets.size(); }
};

/// Wraps a scheduler, appending every activation set it produces to a log.
class RecordingScheduler final : public Scheduler {
 public:
  /// `log` is not owned and must outlive the scheduler.
  RecordingScheduler(std::unique_ptr<Scheduler> inner, ScheduleLog* log)
      : inner_(std::move(inner)), log_(log) {}

  void activate_into(Time t, std::size_t n, ActivationSet& out) override {
    inner_->activate_into(t, n, out);
    log_->sets.push_back(out);
  }

 private:
  std::unique_ptr<Scheduler> inner_;
  ScheduleLog* log_;
};

/// Plays a recorded schedule back verbatim. Instants past the end of the
/// log fall back to all-active (the log captured every instant that
/// mattered; the tail only runs the engine to its settle steps).
class ReplayScheduler final : public Scheduler {
 public:
  /// `log` is not owned and must outlive the scheduler.
  explicit ReplayScheduler(const ScheduleLog* log) : log_(log) {}

  void activate_into(Time /*t*/, std::size_t n, ActivationSet& out) override {
    if (next_ < log_->sets.size() && log_->sets[next_].size() == n) {
      out = log_->sets[next_++];
      return;
    }
    ++next_;
    out.assign(n, true);
  }

 private:
  const ScheduleLog* log_;
  std::size_t next_ = 0;
};

}  // namespace stig::sim
