#include "sim/schedule_log.hpp"

namespace stig::sim {

std::uint64_t ScheduleLog::digest() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  };
  for (std::size_t t = 0; t < sets.size(); ++t) {
    mix(t);
    mix(sets[t].size());
    for (std::size_t i = 0; i < sets[t].size(); ++i) {
      h ^= sets[t][i] ? 1U : 0U;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace stig::sim
