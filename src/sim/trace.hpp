// Execution traces and motion statistics.
//
// The quantitative harness (EXPERIMENTS.md, experiments E1–E8) is built on
// these counters: steps and distance per bit, movements while idle (the
// "silent protocol" property of Section 5), minimum pairwise separation
// (collision avoidance), and full position histories for the figure
// reproductions.
#pragma once

#include <limits>
#include <vector>

#include "geom/vec.hpp"
#include "sim/types.hpp"

namespace stig::sim {

/// Per-robot cumulative motion statistics.
struct MotionStats {
  std::uint64_t activations = 0;  ///< Times the scheduler activated it.
  std::uint64_t moves = 0;        ///< Activations that changed its position.
  double distance = 0.0;          ///< Total Euclidean distance traveled.
};

/// Records what happened during a run.
class Trace {
 public:
  /// When `record_positions` is true the full per-instant configuration is
  /// kept (memory O(instants * n)); otherwise only counters are updated.
  explicit Trace(std::size_t n, bool record_positions = false)
      : stats_(n), record_positions_(record_positions) {}

  /// Called by the engine after each instant with the activation set and the
  /// configuration before/after the moves.
  void record_step(const std::vector<bool>& active,
                   const std::vector<geom::Vec2>& before,
                   const std::vector<geom::Vec2>& after);

  [[nodiscard]] const MotionStats& stats(RobotIndex i) const {
    return stats_.at(i);
  }
  [[nodiscard]] std::size_t robot_count() const noexcept {
    return stats_.size();
  }
  [[nodiscard]] Time instants() const noexcept { return instants_; }

  /// Smallest pairwise robot separation seen at any recorded instant
  /// (+infinity before the first step). The collision-avoidance invariant is
  /// `min_separation() > 0` throughout.
  [[nodiscard]] double min_separation() const noexcept {
    return min_separation_;
  }

  /// Per-instant configurations (only when position recording is on;
  /// `positions_at(0)` is P(t0) and `positions_at(k)` the configuration
  /// after instant k-1).
  [[nodiscard]] const std::vector<std::vector<geom::Vec2>>& positions()
      const noexcept {
    return history_;
  }

 private:
  std::vector<MotionStats> stats_;
  bool record_positions_;
  Time instants_ = 0;
  double min_separation_ = std::numeric_limits<double>::infinity();
  std::vector<std::vector<geom::Vec2>> history_;
};

}  // namespace stig::sim
