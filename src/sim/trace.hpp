// Execution traces and motion statistics.
//
// The quantitative harness (EXPERIMENTS.md, experiments E1–E8) is built on
// these counters: steps and distance per bit, movements while idle (the
// "silent protocol" property of Section 5), minimum pairwise separation
// (collision avoidance), and full position histories for the figure
// reproductions.
//
// Trace is itself a thin `obs::EventSink`: its counters are exactly a fold
// over the engine's Activation/Move/StepComplete events. The engine calls
// `record_step`, which synthesizes those events once, applies them to the
// trace non-virtually, and forwards them to an optional external sink — so
// the hot path pays nothing when telemetry is detached and a single virtual
// dispatch per event when it is attached.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "geom/point_grid.hpp"
#include "geom/vec.hpp"
#include "obs/sink.hpp"
#include "sim/types.hpp"

namespace stig::sim {

/// Per-robot cumulative motion statistics.
struct MotionStats {
  std::uint64_t activations = 0;  ///< Times the scheduler activated it.
  std::uint64_t moves = 0;        ///< Activations that changed its position.
  double distance = 0.0;          ///< Total Euclidean distance traveled.
};

/// Records what happened during a run.
class Trace : public obs::EventSink {
 public:
  /// When `record_positions` is true the full per-instant configuration is
  /// kept (memory O(instants * n)); otherwise only counters are updated.
  explicit Trace(std::size_t n, bool record_positions = false)
      : stats_(n), record_positions_(record_positions) {}

  /// Called by the engine after each instant with the activation set and
  /// the configuration before/after the moves. Emits one Activation event
  /// per active robot, one Move event per robot that changed position, and
  /// one StepComplete event carrying the instant's minimum pairwise
  /// separation — applied to this trace and forwarded to `forward` when
  /// non-null. `before`/`after` are views of the engine's epoch-ring
  /// slots, read in place (copied only into the optional history).
  void record_step(const std::vector<bool>& active,
                   std::span<const geom::Vec2> before,
                   std::span<const geom::Vec2> after,
                   obs::EventSink* forward = nullptr);

  /// EventSink: folds Activation/Move/StepComplete events into the
  /// counters. Feeding a Trace the event stream of a run reproduces that
  /// run's statistics (position history excepted — histories need full
  /// configurations, which `record_step` receives directly).
  void on_event(const obs::Event& e) override { apply(e); }

  [[nodiscard]] const MotionStats& stats(RobotIndex i) const {
    return stats_.at(i);
  }
  [[nodiscard]] std::size_t robot_count() const noexcept {
    return stats_.size();
  }
  [[nodiscard]] Time instants() const noexcept { return instants_; }

  /// Smallest pairwise robot separation seen at any recorded instant
  /// (+infinity before the first step). The collision-avoidance invariant is
  /// `min_separation() > 0` throughout.
  [[nodiscard]] double min_separation() const noexcept {
    return min_separation_;
  }

  /// Per-instant configurations (only when position recording is on;
  /// `positions_at(0)` is P(t0) and `positions_at(k)` the configuration
  /// after instant k-1).
  [[nodiscard]] const std::vector<std::vector<geom::Vec2>>& positions()
      const noexcept {
    return history_;
  }

 private:
  void apply(const obs::Event& e);

  std::vector<MotionStats> stats_;
  bool record_positions_;
  Time instants_ = 0;
  double min_separation_ = std::numeric_limits<double>::infinity();
  std::vector<std::vector<geom::Vec2>> history_;
  geom::PointGrid grid_;  ///< Large-n min-separation scratch.
};

}  // namespace stig::sim
