// Deterministic random number generation.
//
// All randomness in the library flows through explicitly seeded generators —
// no global state — so every simulation, test and benchmark is reproducible
// bit-for-bit (C++ Core Guidelines: avoid non-deterministic hidden state).
#pragma once

#include <cstdint>
#include <random>

namespace stig::sim {

/// A seeded 64-bit Mersenne Twister with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo,
                                          std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability `p`.
  [[nodiscard]] bool flip(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Access to the underlying engine for std distributions / shuffles.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace stig::sim
