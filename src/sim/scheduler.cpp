#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace stig::sim {

namespace {

// Applies the fairness bound and the non-empty guarantee shared by the
// randomized schedulers.
//
// Invariant on exit: streak[i] counts robot i's *current* consecutive
// inactive instants and is always < bound. The trailing loop recomputes
// every streak from the final activation set, so both repair paths — the
// bound force-activation and the empty-set re-roll — reset the streak of
// whichever robot they turned on; neither can double-count or starve a
// robot past the bound.
void enforce_fairness(ActivationSet& a, std::vector<std::size_t>& streak,
                      std::size_t bound, Rng& rng) {
  const std::size_t n = a.size();
  streak.resize(n, 0);
  bool any = false;
  for (std::size_t i = 0; i < n; ++i) {
    // streak[i] + 1 is what the streak would become if i stayed inactive
    // this instant; bound 1 therefore forces everyone active.
    if (!a[i] && streak[i] + 1 >= bound) a[i] = true;
    any = any || a[i];
  }
  if (!any) {
    a[static_cast<std::size_t>(rng.uniform_int(0, n - 1))] = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    streak[i] = a[i] ? 0 : streak[i] + 1;
    assert(streak[i] < bound);
  }
}

}  // namespace

BernoulliScheduler::BernoulliScheduler(double p, std::uint64_t seed,
                                       std::size_t fairness_bound)
    : p_(p), rng_(seed), fairness_bound_(fairness_bound) {
  assert(p > 0.0 && p <= 1.0);
  assert(fairness_bound >= 1);
}

void BernoulliScheduler::activate_into(Time /*t*/, std::size_t n,
                                       ActivationSet& out) {
  out.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) out[i] = rng_.flip(p_);
  enforce_fairness(out, idle_streak_, fairness_bound_, rng_);
}

KSubsetScheduler::KSubsetScheduler(std::size_t k, std::uint64_t seed,
                                   std::size_t fairness_bound)
    : k_(k), rng_(seed), fairness_bound_(fairness_bound) {
  assert(k >= 1);
}

void KSubsetScheduler::activate_into(Time /*t*/, std::size_t n,
                                     ActivationSet& out) {
  std::vector<std::size_t>& idx = shuffle_scratch_;
  idx.resize(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), rng_.engine());
  out.assign(n, false);
  for (std::size_t i = 0; i < std::min(k_, n); ++i) out[idx[i]] = true;
  enforce_fairness(out, idle_streak_, fairness_bound_, rng_);
}

void AdversarialScheduler::activate_into(Time /*t*/, std::size_t n,
                                         ActivationSet& out) {
  out.assign(n, true);
  // Bound 1 means "no robot may ever be inactive": there is nothing left
  // to starve. The old rotate-then-starve path ignored this and put the
  // fresh victim at streak 1 >= bound — the exact starvation the bound
  // forbids.
  if (n <= 1 || fairness_bound_ <= 1) return;
  victim_ %= n;
  if (starved_for_ + 1 >= fairness_bound_) {
    // The victim would hit the bound this instant: activate it (it stays
    // true in `out`) and begin starving the next robot instead.
    victim_ = (victim_ + 1) % n;
    starved_for_ = 0;
  }
  out[victim_] = false;
  ++starved_for_;
}

}  // namespace stig::sim
