#include "sim/trace.hpp"

#include <algorithm>

namespace stig::sim {

void Trace::record_step(const std::vector<bool>& active,
                        const std::vector<geom::Vec2>& before,
                        const std::vector<geom::Vec2>& after) {
  const std::size_t n = stats_.size();
  if (record_positions_ && history_.empty()) history_.push_back(before);
  for (std::size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    ++stats_[i].activations;
    const double d = geom::dist(before[i], after[i]);
    if (d > geom::kEps) {
      ++stats_[i].moves;
      stats_[i].distance += d;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      min_separation_ = std::min(min_separation_, geom::dist(after[i], after[j]));
    }
  }
  if (record_positions_) history_.push_back(after);
  ++instants_;
}

}  // namespace stig::sim
