#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>

namespace stig::sim {

void Trace::apply(const obs::Event& e) {
  switch (e.type) {
    case obs::EventType::Activation:
      if (e.robot >= 0 && static_cast<std::size_t>(e.robot) < stats_.size()) {
        ++stats_[static_cast<std::size_t>(e.robot)].activations;
      }
      break;
    case obs::EventType::Move:
      if (e.robot >= 0 && static_cast<std::size_t>(e.robot) < stats_.size()) {
        MotionStats& s = stats_[static_cast<std::size_t>(e.robot)];
        ++s.moves;
        s.distance += e.value;
      }
      break;
    case obs::EventType::StepComplete:
      min_separation_ = std::min(min_separation_, e.value);
      ++instants_;
      break;
    default:
      break;  // Trace folds motion events only.
  }
}

void Trace::record_step(const std::vector<bool>& active,
                        std::span<const geom::Vec2> before,
                        std::span<const geom::Vec2> after,
                        obs::EventSink* forward) {
  const std::size_t n = stats_.size();
  if (record_positions_ && history_.empty()) {
    history_.emplace_back(before.begin(), before.end());
  }
  const std::uint64_t t = instants_;  // == engine time at this step.

  obs::Event e;
  e.t = t;
  for (std::size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    e.type = obs::EventType::Activation;
    e.robot = static_cast<std::int64_t>(i);
    e.x = before[i].x;
    e.y = before[i].y;
    e.value = 0.0;
    apply(e);
    if (forward != nullptr) forward->on_event(e);
    const double d = geom::dist(before[i], after[i]);
    if (d > geom::kEps) {
      e.type = obs::EventType::Move;
      e.x = after[i].x;
      e.y = after[i].y;
      e.value = d;
      apply(e);
      if (forward != nullptr) forward->on_event(e);
    }
  }

  double step_min = std::numeric_limits<double>::infinity();
  if (n < 128) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        step_min = std::min(step_min, geom::dist(after[i], after[j]));
      }
    }
  } else {
    // Large swarms: the min separation is the min over robots of the
    // nearest-neighbour distance — an O(n) grid pass instead of the
    // all-pairs scan that used to dominate every instant.
    grid_.build(after);
    double min_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      min_d2 = std::min(min_d2, grid_.nearest_other_dist2(i));
    }
    step_min = std::sqrt(min_d2);
  }
  e.type = obs::EventType::StepComplete;
  e.robot = -1;
  e.x = e.y = 0.0;
  e.value = step_min;
  apply(e);
  if (forward != nullptr) forward->on_event(e);

  if (record_positions_) history_.emplace_back(after.begin(), after.end());
}

}  // namespace stig::sim
