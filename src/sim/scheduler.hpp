// Activation schedulers for the SSM.
//
// "At each time instant each robot is either active or inactive. [...] The
// concurrent activation of robots is modeled by the interleaving model in
// which the robot activations are driven by a uniform fair scheduler."
// Synchronous = every robot active at each instant; asynchronous = at least
// one robot active at each instant, fairness guaranteed.
//
// Fairness here is enforced mechanically: every scheduler takes a
// `fairness_bound` B and force-activates any robot that has been inactive
// for B consecutive instants, so no execution starves a robot — the premise
// the paper's Lemma 4.4 (liveness of Async2) rests on.
//
// The virtual entry point is `activate_into`, which writes into a
// caller-owned set: the engine keeps one scratch ActivationSet across
// instants, so the steady-state scheduling path allocates nothing. The
// allocating `activate` wrapper stays for tests and one-shot callers.
#pragma once

#include <memory>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace stig::sim {

/// Which robots act at an instant. `active[i]` is true when robot i is
/// activated.
using ActivationSet = std::vector<bool>;

/// Abstract activation policy.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  virtual ~Scheduler() = default;

  /// Writes the activation set for instant `t` over `n` robots into `out`
  /// (resized to `n`; prior contents discarded, capacity reused).
  /// Postcondition: at least one robot is active.
  virtual void activate_into(Time t, std::size_t n, ActivationSet& out) = 0;

  /// Allocating convenience wrapper around `activate_into`.
  [[nodiscard]] ActivationSet activate(Time t, std::size_t n) {
    ActivationSet a;
    activate_into(t, n, a);
    return a;
  }
};

/// Synchronous scheduler: all robots active at every instant.
class SynchronousScheduler final : public Scheduler {
 public:
  void activate_into(Time /*t*/, std::size_t n, ActivationSet& out) override {
    out.assign(n, true);
  }
};

/// Each robot is active independently with probability `p`, with a fairness
/// bound; the empty set is re-rolled into a single uniformly chosen robot.
class BernoulliScheduler final : public Scheduler {
 public:
  BernoulliScheduler(double p, std::uint64_t seed,
                     std::size_t fairness_bound = 64);
  void activate_into(Time t, std::size_t n, ActivationSet& out) override;

 private:
  double p_;
  Rng rng_;
  std::size_t fairness_bound_;
  std::vector<std::size_t> idle_streak_;
};

/// Exactly one robot active per instant, in round-robin order (the fully
/// sequential "centralized" schedule — the slowest fair schedule and the one
/// that maximizes the asynchronous acknowledgment overhead).
class CentralizedScheduler final : public Scheduler {
 public:
  void activate_into(Time t, std::size_t n, ActivationSet& out) override {
    out.assign(n, false);
    out[static_cast<std::size_t>(t) % n] = true;
  }
};

/// A uniformly random non-empty subset of `k` robots per instant (sampled
/// without replacement), with a fairness bound.
class KSubsetScheduler final : public Scheduler {
 public:
  KSubsetScheduler(std::size_t k, std::uint64_t seed,
                   std::size_t fairness_bound = 64);
  void activate_into(Time t, std::size_t n, ActivationSet& out) override;

 private:
  std::size_t k_;
  Rng rng_;
  std::size_t fairness_bound_;
  std::vector<std::size_t> idle_streak_;
  std::vector<std::size_t> shuffle_scratch_;
};

/// Adversarial-but-fair scheduler: starves one victim robot for as long as
/// the fairness bound permits while activating everyone else, then rotates
/// the victim. Exercises the worst cases of the Lemma 4.1 implicit-ack
/// argument.
class AdversarialScheduler final : public Scheduler {
 public:
  explicit AdversarialScheduler(std::size_t fairness_bound = 64)
      : fairness_bound_(fairness_bound) {}
  void activate_into(Time t, std::size_t n, ActivationSet& out) override;

 private:
  std::size_t fairness_bound_;
  std::size_t victim_ = 0;
  std::size_t starved_for_ = 0;
};

}  // namespace stig::sim
