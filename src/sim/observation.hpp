// Observation bookkeeping for the asynchronous protocols.
//
// Lemma 4.1 is the paper's implicit-acknowledgment engine: "if r observes
// that the position of r' has changed twice, then r' must have observed that
// the position of r has changed at least once" (given r keeps moving in one
// direction). Implementing it faithfully needs two small pieces of state on
// every robot:
//
//  * ChangeTracker — per peer, the last position the robot observed and a
//    monotone counter of observed position changes; updated only at the
//    robot's own activations, exactly as the model allows.
//  * AckBarrier — a "wait until every tracked peer has changed at least k
//    times since I armed the barrier" condition built on those counters.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/vec.hpp"

namespace stig::sim {

/// Counts observed position changes per peer.
class ChangeTracker {
 public:
  /// `peers`: number of tracked peers (caller-defined slots). `tolerance`:
  /// two observations closer than this count as "did not move" — far below
  /// any step a protocol robot takes, so genuine moves are never missed.
  explicit ChangeTracker(std::size_t peers, double tolerance = 1e-9)
      : states_(peers), tolerance_(tolerance) {}

  /// Records that the owner observed `peer` at `position` (in any frame the
  /// owner uses consistently). Increments the peer's change counter when the
  /// position differs from the previous observation.
  void observe(std::size_t peer, const geom::Vec2& position) {
    PeerState& s = states_.at(peer);
    if (s.last && geom::dist(*s.last, position) > tolerance_) {
      ++s.changes;
    }
    s.last = position;
  }

  /// Number of observed changes for `peer` so far.
  [[nodiscard]] std::uint64_t changes(std::size_t peer) const {
    return states_.at(peer).changes;
  }

  /// Last observed position of `peer`, if any observation happened yet.
  [[nodiscard]] std::optional<geom::Vec2> last(std::size_t peer) const {
    return states_.at(peer).last;
  }

  [[nodiscard]] std::size_t peer_count() const noexcept {
    return states_.size();
  }

 private:
  struct PeerState {
    std::optional<geom::Vec2> last;
    std::uint64_t changes = 0;
  };
  std::vector<PeerState> states_;
  double tolerance_;
};

/// "Keep doing X until every peer's position has been observed to change at
/// least `required` times since this barrier was armed."
class AckBarrier {
 public:
  /// Arms the barrier over all peers of `tracker` except `self_slot` (pass
  /// an out-of-range slot such as `tracker.peer_count()` to track everyone).
  void arm(const ChangeTracker& tracker, std::size_t self_slot,
           std::uint64_t required = 2) {
    baselines_.clear();
    required_ = required;
    for (std::size_t p = 0; p < tracker.peer_count(); ++p) {
      if (p == self_slot) continue;
      baselines_.emplace_back(p, tracker.changes(p));
    }
  }

  /// True when every armed peer has accumulated `required` further changes.
  [[nodiscard]] bool satisfied(const ChangeTracker& tracker) const {
    for (const auto& [peer, base] : baselines_) {
      if (tracker.changes(peer) < base + required_) return false;
    }
    return true;
  }

  [[nodiscard]] bool armed() const noexcept { return !baselines_.empty(); }

 private:
  std::vector<std::pair<std::size_t, std::uint64_t>> baselines_;
  std::uint64_t required_ = 2;
};

}  // namespace stig::sim
