// JSONL trace export/import.
//
// Serializes a recorded run as JSON Lines — one header record plus one
// record per instant — so external tooling (notebooks, plotters, replay)
// can consume simulator output without linking against the library:
//
//   {"type":"header","robots":3,"instants":120}
//   {"type":"config","t":0,"p":[[0.0,0.0],[5.0,0.0],[2.0,4.0]]}
//   {"type":"config","t":1,"p":[...]}
//
// The importer reads exactly this dialect back (used by tests and by any
// future replay tooling); it is not a general JSON parser.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "geom/vec.hpp"
#include "sim/trace.hpp"

namespace stig::sim {

/// Writes the position history of `trace` (which must have been recorded
/// with `record_positions = true`) to `out`. Returns false when the trace
/// has no recorded positions.
bool write_trace_jsonl(std::ostream& out, const Trace& trace);

/// Convenience: writes to a file; false on I/O failure or empty trace.
bool write_trace_jsonl(const std::string& path, const Trace& trace);

/// A parsed trace: per-instant configurations.
struct ParsedTrace {
  std::size_t robots = 0;
  std::vector<std::vector<geom::Vec2>> configs;
};

/// Reads a trace written by `write_trace_jsonl`. Returns nullopt on any
/// structural mismatch (wrong header, ragged rows, parse errors).
[[nodiscard]] std::optional<ParsedTrace> read_trace_jsonl(std::istream& in);

}  // namespace stig::sim
