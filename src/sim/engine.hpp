// The SSM execution engine.
//
// Drives robot programs through the Suzuki–Yamashita semi-synchronous cycle:
// at each instant the scheduler picks a non-empty active set; every active
// robot observes the configuration *at that instant* (a two-phase update —
// all observations happen before any move is applied, matching "computes a
// position depending only on the system configuration at t_j"), computes a
// destination in its local frame, and travels toward it by at most sigma_r.
//
// World state lives in an epoch ring: one immutable position array per
// instant, kept for the last `observation_delay + 2` instants. Instant e's
// configuration occupies slot `e % capacity`; `positions()` is a span over
// the newest slot, observations read the (possibly stale) slots in place,
// and a step writes the next configuration into the slot it is about to
// recycle. Robots never receive copies of the configuration — every
// consumer shares the one array per instant (the PR-8 copy-on-write
// snapshot refactor; see DESIGN.md "Epoch snapshots").
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "geom/point_grid.hpp"
#include "geom/vec.hpp"
#include "obs/cov.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/sink.hpp"
#include "sim/frame.hpp"
#include "sim/robot.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace stig::sim {

/// Static description of one robot: where it starts, how far it can travel
/// per activation, and how its private coordinate frame is oriented.
struct RobotSpec {
  geom::Vec2 position;          ///< Global position at t0.
  double sigma = 1.0;           ///< Max distance per activation (sigma_r).
  double frame_rotation = 0.0;  ///< CCW angle of local +y from global +y.
  double frame_unit = 1.0;      ///< Global length of one local unit (> 0).
  bool frame_mirrored = false;  ///< Left-handed frame when true.
  std::optional<VisibleId> id;  ///< Visible identifier (identified systems).
};

/// Engine construction options.
struct EngineOptions {
  bool record_positions = false;  ///< Keep full per-instant history.
  /// Two robots closer than this after a step is reported as a collision.
  double collision_distance = 1e-12;
  bool check_collisions = true;  ///< Throw CollisionError on collision.

  /// Sensor resolution (Section 5 "computation errors due to round off"):
  /// when positive, every *observed* position of another robot is snapped
  /// to this global grid before entering the observer's snapshot. The
  /// observer's own entry stays exact (odometry). 0 = ideal sensors.
  double observation_quantum = 0.0;

  /// Observation staleness (a step toward the CORDA-style non-atomic
  /// look-compute-move cycle): observed positions of *other* robots are
  /// `observation_delay` instants old; the robot's own entry stays current
  /// (odometry). 0 = the SSM's atomic cycle.
  Time observation_delay = 0;

  /// Limited visibility (Section 5 open problem): when positive, a robot's
  /// snapshot contains only robots within this global distance of it (the
  /// robot itself always included). 0 = unlimited visibility.
  double visibility_radius = 0.0;
};

/// Thrown when the collision-avoidance invariant is violated.
class CollisionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Hook invoked inside every `Engine::step` — the fault-injection
/// subsystem's attachment point (src/fault). The engine consults it twice
/// per instant: once to let it mask the scheduler's activation set
/// (crash-stop and stuck-robot faults), and once after the moves are
/// applied to let it displace robots (transient perturbation). It never
/// participates in fault-free runs; the engine pays one branch when
/// detached.
class StepInterceptor {
 public:
  StepInterceptor() = default;
  StepInterceptor(const StepInterceptor&) = delete;
  StepInterceptor& operator=(const StepInterceptor&) = delete;
  virtual ~StepInterceptor() = default;

  /// Called with the activation set the scheduler proposed for instant
  /// `t`; may clear entries. Unlike a scheduler, the masked set MAY be
  /// empty — an instant where every would-be-active robot is crashed or
  /// stalled simply passes with no activations.
  virtual void on_activation(Time t, ActivationSet& active) = 0;

  /// Called after the instant's moves are applied, before the step
  /// completes; may displace robots in place (the span aliases the
  /// engine's next-instant ring slot). The engine emits a Teleport event
  /// for every modified position (so the watchdog re-anchors) and re-runs
  /// the collision check.
  virtual void on_positions(Time t, std::span<geom::Vec2> positions) = 0;

  /// True when robot `i` is crash-stopped at instant `t` (it will never be
  /// activated at or after `t`). Lets ChatNetwork's quiescence ignore
  /// outboxes that can never drain.
  [[nodiscard]] virtual bool crashed(RobotIndex i, Time t) const = 0;
};

/// Owns the robots, the scheduler and the world state; advances time.
class Engine {
 public:
  /// Precondition: specs and programs have equal non-zero size; positions
  /// are pairwise distinct; either every spec has a visible id (identified
  /// system) or none has (anonymous system).
  ///
  /// The constructor calls `Robot::initialize` on every program with the
  /// t0 snapshot (the paper's "all the robots are awake in t0").
  Engine(std::vector<RobotSpec> specs,
         std::vector<std::unique_ptr<Robot>> programs,
         std::unique_ptr<Scheduler> scheduler, EngineOptions options = {});

  /// Advances one instant.
  void step();

  /// Advances `instants` instants.
  void run(Time instants);

  /// Advances until `done()` returns true or `max_instants` elapse; returns
  /// true when the predicate fired.
  bool run_until(const std::function<bool()>& done, Time max_instants);

  [[nodiscard]] Time now() const noexcept { return t_; }
  [[nodiscard]] std::size_t robot_count() const noexcept {
    return specs_.size();
  }
  /// The current configuration — a view of the newest epoch-ring slot.
  /// Valid until `config_epoch()` leaves the live window (i.e. for the
  /// next `observation_delay + 1` steps); copy it to keep it longer.
  [[nodiscard]] std::span<const geom::Vec2> positions() const noexcept {
    return ring_[slot(t_)];
  }
  /// Epoch (== instant) of the configuration `positions()` views.
  [[nodiscard]] Time config_epoch() const noexcept { return t_; }
  /// True while the configuration of instant `e` is still held by the
  /// epoch ring (the last `observation_delay + 2` instants). Spans
  /// obtained at epoch `e` — `positions()`, `config(e)`, observation
  /// inputs — dangle once this turns false.
  [[nodiscard]] bool epoch_live(Time e) const noexcept {
    return e <= t_ && t_ - e < ring_.size();
  }
  /// The configuration at instant `e`. Precondition: `epoch_live(e)`.
  [[nodiscard]] std::span<const geom::Vec2> config(Time e) const {
    if (!epoch_live(e)) {
      throw std::out_of_range("Engine::config: epoch no longer live");
    }
    return ring_[slot(e)];
  }
  [[nodiscard]] const RobotSpec& spec(RobotIndex i) const {
    return specs_.at(i);
  }
  [[nodiscard]] const Frame& frame(RobotIndex i) const { return frames_.at(i); }
  [[nodiscard]] Robot& program(RobotIndex i) { return *programs_.at(i); }
  [[nodiscard]] const Robot& program(RobotIndex i) const {
    return *programs_.at(i);
  }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] bool identified() const noexcept { return identified_; }

  /// Routes telemetry events (Activation, Move, StepComplete, Collision,
  /// Teleport) into `sink`; null detaches. The hot path pays one branch
  /// when detached and one virtual dispatch per event when attached — the
  /// built-in Trace keeps updating either way.
  void set_event_sink(obs::EventSink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] obs::EventSink* event_sink() const noexcept { return sink_; }

  /// Attaches a fault-injection interceptor (not owned; must outlive the
  /// engine; null detaches). See StepInterceptor.
  void set_step_interceptor(StepInterceptor* interceptor) noexcept {
    interceptor_ = interceptor;
  }
  [[nodiscard]] StepInterceptor* step_interceptor() const noexcept {
    return interceptor_;
  }

  /// Registers engine-level metrics into `registry` (currently the
  /// `engine.step_wall_ns` histogram: wall time per `step()` in
  /// nanoseconds); null detaches and stops the timing.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches a cycle/allocation profiler (not owned; null detaches).
  /// Registers the engine phases — engine.step > {engine.sched,
  /// engine.observe, engine.compute, engine.commit, engine.emit} — and
  /// brackets each in every subsequent `step()`. Detached, the hot path
  /// pays one null check per phase; see obs/prof.hpp.
  void set_profiler(obs::prof::Profiler* profiler);
  [[nodiscard]] obs::prof::Profiler* profiler() const noexcept {
    return prof_;
  }

  /// Attaches a coverage map (not owned; null detaches). Records
  /// sched-domain 2-grams over interleaving classes: each instant's
  /// post-mask activation set is bucketed (none/one/few/most/all) and the
  /// (previous class -> current class) edge is hit. Detached, the hot path
  /// pays one null check per step.
  void set_coverage(obs::cov::CovMap* map);
  [[nodiscard]] obs::cov::CovMap* coverage() const noexcept { return cov_; }

  /// Builds the snapshot robot `i` would observe right now (exposed for
  /// tests; the engine itself uses `build_observation` during `step`).
  [[nodiscard]] Snapshot make_snapshot(RobotIndex i) const;

  /// Engine indices in the order robot `i` observed them at t0 (the order
  /// of `Snapshot::robots` passed to `Robot::initialize`). Lets the
  /// application layer translate between simulator indices and each robot's
  /// local peer numbering.
  [[nodiscard]] std::vector<RobotIndex> initial_observation_order(
      RobotIndex i) const;

  /// Fault injection: instantly moves robot `i` to `global_position`
  /// (bypassing its program and sigma). Models a transient fault — a shove,
  /// a sensor glitch that mislocalized a recovery move, a restart at the
  /// wrong point. Used by the stabilization tests; never called by
  /// protocols. Throws CollisionError if the new position collides.
  ///
  /// Mutates the current epoch's slot in place: prior epochs (stale
  /// observations already in flight) keep their recorded positions, which
  /// is exactly what a physical shove does.
  void teleport(RobotIndex i, const geom::Vec2& global_position);

 private:
  /// One candidate row of a snapshot before sorting (observation order).
  struct SnapshotEntry {
    ObservedRobot obs;
    RobotIndex index = 0;
  };

  [[nodiscard]] std::size_t slot(Time e) const noexcept {
    return static_cast<std::size_t>(e % ring_.size());
  }

  [[nodiscard]] Snapshot make_snapshot_at(
      RobotIndex i, std::span<const geom::Vec2> config,
      std::span<const geom::Vec2> stale_config, Time t) const;

  /// The snapshot builder behind `make_snapshot_at`, writing into
  /// caller-provided storage so the hot loop can reuse engine-owned
  /// scratch instead of allocating per activation. `config` and
  /// `stale_config` are epoch-ring views — the builder reads them in
  /// place and never copies the configuration.
  void build_observation(RobotIndex i, std::span<const geom::Vec2> config,
                         std::span<const geom::Vec2> stale_config, Time t,
                         std::vector<SnapshotEntry>& entries,
                         Snapshot& out) const;

  /// Throws CollisionError for the lexicographically first colliding pair
  /// in `config` (same pair the all-pairs scan reports); grid-accelerated
  /// for large n, brute below the threshold.
  void check_collisions(std::span<const geom::Vec2> config);

  void step_impl();

  std::vector<RobotSpec> specs_;
  std::vector<std::unique_ptr<Robot>> programs_;
  std::unique_ptr<Scheduler> scheduler_;
  EngineOptions options_;
  std::vector<Frame> frames_;
  /// Hot per-robot state, structure-of-arrays: `specs_[i].sigma` pulled
  /// into a flat array so the commit loop touches 8 contiguous bytes per
  /// robot instead of striding over 72-byte RobotSpec rows.
  std::vector<double> sigmas_;
  /// Identified systems only: robot indices sorted by visible id, computed
  /// once. Ids never change, so appending snapshot entries in this order
  /// yields the id-sorted observation without a per-activation sort.
  std::vector<RobotIndex> id_order_;
  /// The epoch ring: slot `e % ring_.size()` holds the configuration of
  /// instant e, for the last `observation_delay + 2` instants — newest
  /// (t_), every delayed-observation epoch down to t_ - delay, and one
  /// older epoch so `make_snapshot` between steps sees what an observer
  /// who committed during the previous instant saw. Slot capacity is
  /// recycled in place; a fault-free steady-state instant copies the
  /// configuration exactly once (current slot -> next slot).
  std::vector<std::vector<geom::Vec2>> ring_;
  std::vector<SnapshotEntry> entry_scratch_;
  Snapshot snap_scratch_;
  ActivationSet active_scratch_;
  std::vector<geom::Vec2> pre_scratch_;  ///< Interceptor before-image.
  geom::PointGrid grid_scratch_;         ///< Large-n collision checks.
  Trace trace_;
  obs::EventSink* sink_ = nullptr;
  StepInterceptor* interceptor_ = nullptr;
  obs::LogHistogram* step_wall_ = nullptr;  ///< Owned by the registry.
  obs::prof::Profiler* prof_ = nullptr;     ///< Not owned; null when off.
  obs::prof::PhaseId ph_step_ = 0, ph_sched_ = 0, ph_observe_ = 0,
                     ph_compute_ = 0, ph_commit_ = 0, ph_emit_ = 0;
  obs::cov::CovMap* cov_ = nullptr;  ///< Not owned; null when off.
  /// Interleaving-class state ids, interned once at set_coverage.
  obs::cov::StateId cov_class_[5] = {};  ///< none, one, few, most, all.
  obs::cov::StateId cov_prev_ = obs::cov::kInvalidState;
  Time t_ = 0;
  bool identified_ = false;
};

}  // namespace stig::sim
