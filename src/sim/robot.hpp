// The robot program interface and what a robot can observe.
//
// Per the SSM: an active robot observes the instantaneous configuration
// (positions of all robots, in its own local coordinate system), computes a
// destination in that local system, and moves toward it by at most sigma_r.
// Robots are non-oblivious: implementations keep whatever state they like.
#pragma once

#include <optional>
#include <vector>

#include "geom/vec.hpp"
#include "sim/types.hpp"

namespace stig::sim {

/// One robot as seen by an observer.
struct ObservedRobot {
  /// Position in the observer's (anchored) local frame.
  geom::Vec2 position;
  /// Visible identifier; present only in identified systems.
  std::optional<VisibleId> id;
};

/// Everything an active robot perceives at one instant.
///
/// `robots` contains *all* robots, the observer included. In anonymous
/// systems entries are sorted lexicographically by local position so that
/// the ordering leaks no identity; in identified systems they are sorted by
/// visible id. `self` is the index of the observer's own entry — a robot can
/// always recognize itself (it knows its own position by odometry; see
/// sim/frame.hpp on anchored frames).
struct Snapshot {
  Time t = 0;
  std::vector<ObservedRobot> robots;
  std::size_t self = 0;

  [[nodiscard]] const ObservedRobot& self_robot() const {
    return robots[self];
  }
  [[nodiscard]] std::size_t size() const noexcept { return robots.size(); }
};

/// A robot program.
///
/// The engine calls `initialize` exactly once for every robot at t0 (the
/// paper's Section 4.2 assumption that all robots know P(t0) / are awake at
/// t0), then `on_activate` at every instant the scheduler activates the
/// robot. The return value is the destination point in the robot's local
/// frame; returning the current position means "stay".
class Robot {
 public:
  Robot() = default;
  Robot(const Robot&) = delete;
  Robot& operator=(const Robot&) = delete;
  virtual ~Robot() = default;

  /// One-time preprocessing with the initial configuration P(t0).
  virtual void initialize(const Snapshot& snap) = 0;

  /// Activation: observe, compute, return destination (local frame).
  virtual geom::Vec2 on_activate(const Snapshot& snap) = 0;
};

}  // namespace stig::sim
