#include "sim/jsonl.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace stig::sim {

bool write_trace_jsonl(std::ostream& out, const Trace& trace) {
  const auto& history = trace.positions();
  if (history.empty()) return false;
  const std::size_t n = history.front().size();
  out << "{\"type\":\"header\",\"robots\":" << n
      << ",\"instants\":" << history.size() << "}\n";
  out << std::setprecision(17);
  for (std::size_t t = 0; t < history.size(); ++t) {
    out << "{\"type\":\"config\",\"t\":" << t << ",\"p\":[";
    for (std::size_t i = 0; i < n; ++i) {
      if (i != 0) out << ',';
      out << '[' << history[t][i].x << ',' << history[t][i].y << ']';
    }
    out << "]}\n";
  }
  return static_cast<bool>(out);
}

bool write_trace_jsonl(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  return write_trace_jsonl(out, trace);
}

namespace {

/// Pulls the numeric value following `"key":` in `line`, or nullopt.
std::optional<double> field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  try {
    return std::stod(line.substr(pos + needle.size()));
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<ParsedTrace> read_trace_jsonl(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  if (line.find("\"type\":\"header\"") == std::string::npos) {
    return std::nullopt;
  }
  const auto robots = field(line, "robots");
  const auto instants = field(line, "instants");
  if (!robots || !instants) return std::nullopt;

  ParsedTrace parsed;
  parsed.robots = static_cast<std::size_t>(*robots);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.find("\"type\":\"config\"") == std::string::npos) {
      return std::nullopt;
    }
    const auto open = line.find("\"p\":[");
    if (open == std::string::npos) return std::nullopt;
    std::vector<geom::Vec2> config;
    config.reserve(parsed.robots);
    std::istringstream pts(line.substr(open + 5));
    char c = 0;
    while (pts >> c) {
      if (c == ']') break;  // End of the outer array.
      if (c != '[') continue;
      geom::Vec2 p;
      char comma = 0, close = 0;
      if (!(pts >> p.x >> comma >> p.y >> close) || comma != ',' ||
          close != ']') {
        return std::nullopt;
      }
      config.push_back(p);
    }
    if (config.size() != parsed.robots) return std::nullopt;
    parsed.configs.push_back(std::move(config));
  }
  if (parsed.configs.size() != static_cast<std::size_t>(*instants)) {
    return std::nullopt;
  }
  return parsed;
}

}  // namespace stig::sim
