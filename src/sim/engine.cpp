#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <string>

namespace stig::sim {
namespace {

/// Below this swarm size the all-pairs scans stay: they are cache-friendly,
/// exactly reproduce the legacy answers, and the grid's build cost is not
/// yet paid back. At or above it, collision checks go through a PointGrid
/// (same doubles, same first pair — see geom/point_grid.hpp).
constexpr std::size_t kGridThreshold = 128;

/// Candidate radius for grid collision queries: collision_distance^2 with
/// enough slack to cover the ulp gap between `hypot` (the legacy predicate)
/// and the grid's squared-distance prefilter; every candidate is re-checked
/// with the exact legacy predicate.
double collision_radius2(double cd) { return cd * cd * 1.00001; }

}  // namespace

Engine::Engine(std::vector<RobotSpec> specs,
               std::vector<std::unique_ptr<Robot>> programs,
               std::unique_ptr<Scheduler> scheduler, EngineOptions options)
    : specs_(std::move(specs)),
      programs_(std::move(programs)),
      scheduler_(std::move(scheduler)),
      options_(options),
      trace_(specs_.size(), options.record_positions) {
  if (specs_.empty() || specs_.size() != programs_.size() || !scheduler_) {
    throw std::invalid_argument("Engine: inconsistent construction");
  }
  const std::size_t with_id = static_cast<std::size_t>(
      std::count_if(specs_.begin(), specs_.end(),
                    [](const RobotSpec& s) { return s.id.has_value(); }));
  if (with_id != 0 && with_id != specs_.size()) {
    throw std::invalid_argument(
        "Engine: either all robots or none must have visible ids");
  }
  identified_ = with_id == specs_.size();

  const std::size_t n = specs_.size();
  ring_.resize(static_cast<std::size_t>(options_.observation_delay) + 2);
  std::vector<geom::Vec2>& p0 = ring_[0];
  frames_.reserve(n);
  sigmas_.reserve(n);
  p0.reserve(n);
  for (const RobotSpec& s : specs_) {
    if (s.frame_unit <= 0.0) {
      throw std::invalid_argument("Engine: frame_unit must be positive");
    }
    if (s.sigma <= 0.0) {
      throw std::invalid_argument("Engine: sigma must be positive");
    }
    frames_.emplace_back(s.position, s.frame_rotation, s.frame_unit,
                         s.frame_mirrored);
    sigmas_.push_back(s.sigma);
    p0.push_back(s.position);
  }

  bool coincident = false;
  if (n < kGridThreshold) {
    for (std::size_t i = 0; i < n && !coincident; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (geom::dist(p0[i], p0[j]) <= options_.collision_distance) {
          coincident = true;
          break;
        }
      }
    }
  } else {
    grid_scratch_.build(p0);
    const double r2 = collision_radius2(options_.collision_distance);
    for (std::size_t i = 0; i < n && !coincident; ++i) {
      grid_scratch_.for_each_within(p0[i], r2, [&](std::size_t j) {
        if (j != i &&
            geom::dist(p0[i], p0[j]) <= options_.collision_distance) {
          coincident = true;
        }
      });
    }
  }
  if (coincident) {
    throw std::invalid_argument(
        "Engine: initial positions must be pairwise distinct");
  }

  if (identified_) {
    id_order_.resize(n);
    for (std::size_t j = 0; j < n; ++j) id_order_[j] = j;
    std::sort(id_order_.begin(), id_order_.end(),
              [this](RobotIndex a, RobotIndex b) {
                return specs_[a].id.value() < specs_[b].id.value();
              });
  }

  // Paper Section 4.2: every robot knows P(t0) — wake all at t0 once.
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    programs_[i]->initialize(make_snapshot_at(i, p0, p0, 0));
  }
}

Snapshot Engine::make_snapshot(RobotIndex i) const {
  // Between steps an observer sees what it would have committed to during
  // the previous instant: others `observation_delay` instants behind that
  // instant, i.e. t - 1 - delay (clamped to t0). With no delay, stale and
  // current coincide.
  const Time d = options_.observation_delay;
  const Time stale_e = d == 0 ? t_ : (t_ > d ? t_ - 1 - d : 0);
  return make_snapshot_at(i, ring_[slot(t_)], ring_[slot(stale_e)], t_);
}

void Engine::teleport(RobotIndex i, const geom::Vec2& global_position) {
  std::vector<geom::Vec2>& cur = ring_[slot(t_)];
  cur.at(i) = global_position;
  if (sink_ != nullptr) {
    obs::Event e;
    e.type = obs::EventType::Teleport;
    e.t = t_;
    e.robot = static_cast<std::int64_t>(i);
    e.x = global_position.x;
    e.y = global_position.y;
    sink_->on_event(e);
  }
  if (options_.check_collisions) {
    for (std::size_t j = 0; j < cur.size(); ++j) {
      if (j != i && geom::dist(cur[i], cur[j]) <=
                        options_.collision_distance) {
        throw CollisionError("teleport collided robots " + std::to_string(i) +
                             " and " + std::to_string(j));
      }
    }
  }
}

void Engine::set_metrics(obs::MetricsRegistry* registry) {
  // Sub-microsecond steps are the common case; 16ns lower edge keeps the
  // first buckets meaningful on fast hardware.
  step_wall_ = registry == nullptr
                   ? nullptr
                   : &registry->histogram("engine.step_wall_ns", 16.0);
}

void Engine::set_profiler(obs::prof::Profiler* profiler) {
  prof_ = profiler;
  if (prof_ == nullptr) return;
  ph_step_ = prof_->phase("engine.step");
  ph_sched_ = prof_->phase("engine.sched");
  ph_observe_ = prof_->phase("engine.observe");
  ph_compute_ = prof_->phase("engine.compute");
  ph_commit_ = prof_->phase("engine.commit");
  ph_emit_ = prof_->phase("engine.emit");
}

void Engine::set_coverage(obs::cov::CovMap* map) {
  cov_ = map;
  if (cov_ == nullptr) return;
  cov_class_[0] = cov_->state("none");
  cov_class_[1] = cov_->state("one");
  cov_class_[2] = cov_->state("few");
  cov_class_[3] = cov_->state("most");
  cov_class_[4] = cov_->state("all");
  // The first instant's 2-gram starts from an explicit start state, so a
  // run's very first interleaving class is itself an edge.
  cov_prev_ = cov_->state("start");
}

std::vector<RobotIndex> Engine::initial_observation_order(
    RobotIndex i) const {
  const Frame& f = frames_.at(i);
  std::vector<RobotIndex> order(specs_.size());
  for (std::size_t j = 0; j < specs_.size(); ++j) order[j] = j;
  if (identified_) {
    std::sort(order.begin(), order.end(),
              [&](RobotIndex a, RobotIndex b) {
                return specs_[a].id.value() < specs_[b].id.value();
              });
  } else {
    std::sort(order.begin(), order.end(),
              [&](RobotIndex a, RobotIndex b) {
                return f.to_local(specs_[a].position) <
                       f.to_local(specs_[b].position);
              });
  }
  return order;
}

Snapshot Engine::make_snapshot_at(RobotIndex i,
                                  std::span<const geom::Vec2> config,
                                  std::span<const geom::Vec2> stale_config,
                                  Time t) const {
  std::vector<SnapshotEntry> entries;
  Snapshot snap;
  build_observation(i, config, stale_config, t, entries, snap);
  return snap;
}

void Engine::build_observation(RobotIndex i,
                               std::span<const geom::Vec2> config,
                               std::span<const geom::Vec2> stale_config,
                               Time t, std::vector<SnapshotEntry>& entries,
                               Snapshot& out) const {
  const Frame& f = frames_.at(i);
  const double q = options_.observation_quantum;
  const auto quantize = [q](const geom::Vec2& p) {
    if (q <= 0.0) return p;
    return geom::Vec2{std::round(p.x / q) * q, std::round(p.y / q) * q};
  };
  entries.clear();
  entries.reserve(config.size());
  const auto append = [&](std::size_t j) {
    // Self: current and exact (odometry). Others: possibly stale (CORDA-ish
    // delay), quantized (sensor resolution), and dropped when out of the
    // visibility radius.
    const geom::Vec2 global = j == i ? config[j] : stale_config[j];
    if (j != i && options_.visibility_radius > 0.0 &&
        geom::dist(global, config[i]) > options_.visibility_radius) {
      return;
    }
    SnapshotEntry e;
    e.obs.position = f.to_local(j == i ? global : quantize(global));
    e.obs.id = identified_ ? specs_[j].id : std::nullopt;
    e.index = j;
    entries.push_back(e);
  };
  // Identified systems expose entries sorted by id; appending in the
  // precomputed id order (ids are unique and never change) yields exactly
  // the order the per-activation sort used to produce, without the sort.
  // Anonymous systems sort lexicographically by local position, which
  // carries no identity and genuinely depends on this instant's geometry.
  if (identified_) {
    for (const RobotIndex j : id_order_) append(j);
  } else {
    for (std::size_t j = 0; j < config.size(); ++j) append(j);
    std::sort(entries.begin(), entries.end(),
              [](const SnapshotEntry& a, const SnapshotEntry& b) {
                return a.obs.position < b.obs.position;
              });
  }
  out.t = t;
  out.self = 0;
  out.robots.clear();
  out.robots.reserve(entries.size());
  for (std::size_t k = 0; k < entries.size(); ++k) {
    if (entries[k].index == i) out.self = k;
    out.robots.push_back(entries[k].obs);
  }
}

void Engine::check_collisions(std::span<const geom::Vec2> after) {
  const std::size_t n = after.size();
  const double cd = options_.collision_distance;
  const auto report = [&](std::size_t i, std::size_t j) {
    if (sink_ != nullptr) {
      obs::Event e;
      e.type = obs::EventType::Collision;
      e.t = t_;
      e.robot = static_cast<std::int64_t>(i);
      e.peer = static_cast<std::int64_t>(j);
      e.x = after[i].x;
      e.y = after[i].y;
      sink_->on_event(e);
    }
    throw CollisionError("robots " + std::to_string(i) + " and " +
                         std::to_string(j) + " collided at instant " +
                         std::to_string(t_));
  };
  if (n < kGridThreshold) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (geom::dist(after[i], after[j]) <= cd) report(i, j);
      }
    }
    return;
  }
  grid_scratch_.build(after);
  const double r2 = collision_radius2(cd);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t hit = n;
    grid_scratch_.for_each_within(after[i], r2, [&](std::size_t j) {
      if (j > i && j < hit && geom::dist(after[i], after[j]) <= cd) hit = j;
    });
    // Lexicographically first pair, as the all-pairs scan reports: lowest
    // i first (outer loop), lowest j among its collisions (min above).
    if (hit < n) report(i, hit);
  }
}

void Engine::step() {
  if (step_wall_ == nullptr) {
    step_impl();
    return;
  }
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  step_impl();
  step_wall_->record(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count()));
}

void Engine::step_impl() {
  obs::prof::Scope step_scope(prof_, ph_step_);
  const std::size_t n = specs_.size();
  // Engine-owned scratch: the activation set reuses its capacity across
  // instants, so steady-state scheduling allocates nothing.
  ActivationSet& active = active_scratch_;
  {
    obs::prof::Scope s(prof_, ph_sched_);
    scheduler_->activate_into(t_, n, active);
    assert(std::any_of(active.begin(), active.end(),
                       [](bool b) { return b; }) &&
           "scheduler must activate at least one robot");
    // Fault masking happens on the scheduler's *output*, so a recorded
    // schedule stays the fault-free one and a replay under the same fault
    // plan re-masks identically.
    if (interceptor_ != nullptr) interceptor_->on_activation(t_, active);
  }

  if (cov_ != nullptr) {
    // Interleaving-class 2-gram over the post-mask activation set: which
    // concurrency shapes (and which shape-to-shape transitions) the
    // schedule actually produced.
    std::size_t c = 0;
    for (std::size_t i = 0; i < n; ++i) c += active[i] ? 1u : 0u;
    const obs::cov::StateId cur =
        c == 0   ? cov_class_[0]
        : c == n ? cov_class_[4]
        : c == 1 ? cov_class_[1]
        : 2 * c >= n ? cov_class_[3]
                     : cov_class_[2];
    cov_->hit(obs::cov::Domain::sched, cov_prev_, cur);
    cov_prev_ = cur;
  }

  // Epoch-ring views: `before` is this instant's configuration in place
  // (no copy), `stale` the delayed-observation epoch, `after` the slot
  // being recycled for the next instant. The one configuration copy a
  // fault-free instant performs is seeding `after` from `before`; slot
  // capacity is reused, so steady state allocates nothing.
  const Time d = options_.observation_delay;
  std::vector<geom::Vec2>& before_v = ring_[slot(t_)];
  const std::span<const geom::Vec2> before{before_v};
  const std::span<const geom::Vec2> stale{
      ring_[slot(t_ >= d ? t_ - d : 0)]};
  std::vector<geom::Vec2>& after = ring_[slot(t_ + 1)];
  after.assign(before_v.begin(), before_v.end());
  // Phase 1: all active robots observe `before` and commit to destinations;
  // phase 2: all moves are applied. No robot sees a same-instant move.
  for (std::size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    {
      obs::prof::Scope s(prof_, ph_observe_);
      build_observation(i, before, stale, t_, entry_scratch_, snap_scratch_);
    }
    geom::Vec2 local_target;
    {
      obs::prof::Scope s(prof_, ph_compute_);
      local_target = programs_[i]->on_activate(snap_scratch_);
    }
    const geom::Vec2 target = frames_[i].to_global(local_target);
    const geom::Vec2 d_move = target - before[i];
    const double len = d_move.norm();
    after[i] = len <= sigmas_[i]
                   ? target
                   : before[i] + d_move * (sigmas_[i] / len);
  }

  {
  obs::prof::Scope commit_scope(prof_, ph_commit_);
  if (options_.check_collisions) check_collisions(after);

  if (interceptor_ != nullptr) {
    pre_scratch_.assign(after.begin(), after.end());
    interceptor_->on_positions(t_, std::span<geom::Vec2>{after});
    for (std::size_t i = 0; i < n; ++i) {
      if (after[i] == pre_scratch_[i]) continue;
      // Transient perturbation: surface it like the teleport fault so the
      // watchdog re-anchors granular containment for the shoved robot.
      if (sink_ != nullptr) {
        obs::Event e;
        e.type = obs::EventType::Teleport;
        e.t = t_;
        e.robot = static_cast<std::int64_t>(i);
        e.x = after[i].x;
        e.y = after[i].y;
        sink_->on_event(e);
      }
      if (options_.check_collisions) {
        for (std::size_t j = 0; j < n; ++j) {
          if (j != i && geom::dist(after[i], after[j]) <=
                            options_.collision_distance) {
            // Publish the collided configuration for post-mortems without
            // advancing time (the legacy `positions_ = after`).
            before_v = after;
            throw CollisionError("perturbation collided robots " +
                                 std::to_string(i) + " and " +
                                 std::to_string(j) + " at instant " +
                                 std::to_string(t_));
          }
        }
      }
    }
  }
  }  // commit_scope
  {
    obs::prof::Scope s(prof_, ph_emit_);
    trace_.record_step(active, before, after, sink_);
  }
  // Publishing the step is just the epoch increment: `positions()` now
  // views the slot the moves were written into.
  ++t_;
}

void Engine::run(Time instants) {
  for (Time k = 0; k < instants; ++k) step();
}

bool Engine::run_until(const std::function<bool()>& done, Time max_instants) {
  for (Time k = 0; k < max_instants; ++k) {
    if (done()) return true;
    step();
  }
  return done();
}

}  // namespace stig::sim
