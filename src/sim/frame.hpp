// Per-robot local coordinate frames.
//
// "Each robot r has its own local x-y Cartesian coordinate system with its
// own unit measure." Capabilities are modeled by how frames are constructed:
//
//  * chirality        — all frames share one handedness (mirrored flag);
//  * sense of direction — all frames additionally share the orientation of
//    the y axis (and then, with chirality, of the x axis too);
//  * nothing shared   — rotation differs arbitrarily per robot.
//
// A frame transforms between global simulator coordinates and the robot's
// local coordinates. The frame is *anchored*: its origin is the robot's
// position at t0, not its current position. This models odometry — a robot
// knows how far it has moved — and is what lets a non-oblivious robot relate
// observations across steps (e.g. find its own granular center again). It
// grants no information about other robots beyond the SSM.
#pragma once

#include <cmath>

#include "geom/vec.hpp"

namespace stig::sim {

/// A similarity transform global <-> local: rotation, uniform positive
/// scale, optional reflection (handedness), translation.
class Frame {
 public:
  /// Constructs a frame.
  ///
  /// `origin_global`: the global point that maps to local (0,0) — the
  ///   robot's position at t0.
  /// `rotation`: counterclockwise angle (radians, global convention) from
  ///   the global +y axis to the robot's local +y axis; 0 means the robot's
  ///   "up" is global North.
  /// `unit`: length of one local unit in global units (> 0).
  /// `mirrored`: true for a left-handed frame (local x axis flipped).
  Frame(geom::Vec2 origin_global, double rotation, double unit,
        bool mirrored) noexcept
      : origin_(origin_global),
        cos_(std::cos(rotation)),
        sin_(std::sin(rotation)),
        unit_(unit),
        mirrored_(mirrored) {}

  /// Identity frame: local == global.
  Frame() noexcept : Frame(geom::Vec2{0.0, 0.0}, 0.0, 1.0, false) {}

  [[nodiscard]] const geom::Vec2& origin() const noexcept { return origin_; }
  [[nodiscard]] double unit() const noexcept { return unit_; }
  [[nodiscard]] bool mirrored() const noexcept { return mirrored_; }

  /// Maps a global point to local coordinates.
  [[nodiscard]] geom::Vec2 to_local(const geom::Vec2& g) const noexcept {
    geom::Vec2 d = (g - origin_) / unit_;
    // Inverse rotation by `rotation`.
    geom::Vec2 r{cos_ * d.x + sin_ * d.y, -sin_ * d.x + cos_ * d.y};
    if (mirrored_) r.x = -r.x;
    return r;
  }

  /// Maps a local point to global coordinates.
  [[nodiscard]] geom::Vec2 to_global(const geom::Vec2& l) const noexcept {
    geom::Vec2 p = l;
    if (mirrored_) p.x = -p.x;
    geom::Vec2 r{cos_ * p.x - sin_ * p.y, sin_ * p.x + cos_ * p.y};
    return origin_ + r * unit_;
  }

  /// Maps a local *displacement* (direction/offset) to a global one.
  [[nodiscard]] geom::Vec2 dir_to_global(const geom::Vec2& l) const noexcept {
    geom::Vec2 p = l;
    if (mirrored_) p.x = -p.x;
    return geom::Vec2{cos_ * p.x - sin_ * p.y, sin_ * p.x + cos_ * p.y} *
           unit_;
  }

  /// Converts a global length to local units.
  [[nodiscard]] double length_to_local(double g) const noexcept {
    return g / unit_;
  }
  /// Converts a local length to global units.
  [[nodiscard]] double length_to_global(double l) const noexcept {
    return l * unit_;
  }

 private:
  geom::Vec2 origin_;
  double cos_;
  double sin_;
  double unit_;
  bool mirrored_;
};

}  // namespace stig::sim
