// Shared vocabulary types for the Semi-Synchronous Model simulator.
#pragma once

#include <cstdint>

namespace stig::sim {

/// Discrete time instant t0, t1, ... of the SSM.
using Time = std::uint64_t;

/// Simulator-internal robot index (0..n-1). In anonymous systems this index
/// is *never* revealed to robot programs; it exists only for engine
/// bookkeeping, tests and benchmarks.
using RobotIndex = std::size_t;

/// Observable identifier of a robot in identified systems (the paper's
/// `id_r`, visible to every observer). Values are arbitrary but unique.
using VisibleId = std::uint32_t;

}  // namespace stig::sim
