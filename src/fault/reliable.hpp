// ReliableMessenger — ack-timeout retransmission with backup degradation.
//
// The HybridMessenger (core/backup_channel.hpp) falls back to the motion
// channel the moment the radio's link layer reports a drop. Real radios
// rarely say that much: the sender learns about delivery only through an
// acknowledgment, and silence is ambiguous. This layer implements the
// classic sender-side recovery on top of WirelessChannel: each message
// gets an ack window measured in simulated instants; on timeout it is
// retransmitted with exponential backoff, up to a retry budget; when the
// budget is exhausted the message *degrades gracefully* onto the motion
// channel — the paper's "our solution can serve as a communication backup"
// — which the chatting protocols deliver guaranteed.
//
// Because a delivery whose ack was lost gets retransmitted, receivers may
// see duplicates; every payload travels with an 8-byte message-id header
// (on both channels) and `received` deduplicates on it. Every
// retransmission and every degradation emits a Retransmit event.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "core/backup_channel.hpp"
#include "core/chat_network.hpp"
#include "core/wireless.hpp"
#include "obs/cov.hpp"
#include "obs/sink.hpp"
#include "sim/rng.hpp"

namespace stig::fault {

struct ReliableOptions {
  sim::Time ack_timeout = 8;   ///< Instants before the first retransmit.
  sim::Time ack_delay = 1;     ///< Instants a successful ack takes back.
  std::size_t max_retries = 3; ///< Retransmissions before degradation.
  double ack_loss_probability = 0.0;  ///< Lost-ack chance (delivered, but
                                      ///< the sender never learns).
  std::uint64_t seed = 11;     ///< Ack-loss randomness.
};

struct ReliableStats {
  std::uint64_t sent = 0;            ///< Messages accepted by `send`.
  std::uint64_t radio_attempts = 0;  ///< Transmissions incl. retries.
  std::uint64_t retransmits = 0;     ///< Attempts after the first.
  std::uint64_t acked = 0;           ///< Confirmed over the radio.
  std::uint64_t degraded = 0;        ///< Handed to the motion channel.
  std::uint64_t duplicates_dropped = 0;  ///< Dedup hits in `received`.
};

/// Lifecycle of one tracked message (exposed for tests).
enum class MessageState : unsigned char {
  pending,   ///< Awaiting (re)transmission or an ack.
  acked,     ///< Radio delivery confirmed.
  degraded,  ///< Retry budget exhausted; queued on the motion channel.
};

class ReliableMessenger {
 public:
  /// Both references must outlive the messenger. Time comes from
  /// `motion.engine().now()` — the messenger and the motion channel share
  /// one clock, which is what makes ack windows comparable to protocol
  /// transmission times.
  ReliableMessenger(core::ChatNetwork& motion, core::WirelessChannel& radio,
                    ReliableOptions options)
      : motion_(motion), radio_(radio), options_(options),
        ack_rng_(options.seed) {}

  /// Routes Retransmit events into `sink` (not owned; null = silent).
  void set_event_sink(obs::EventSink* sink) noexcept { sink_ = sink; }

  /// Attaches a coverage map (not owned; null detaches): message outcomes
  /// record fault-domain retry.send -> retry.{acked,retry,backup} edges,
  /// so a corpus proves which recovery paths actually ran.
  void set_coverage(obs::cov::CovMap* map) noexcept {
    cov_ = map;
    if (cov_ != nullptr) cov_send_ = cov_->state("retry.send");
  }

  /// Accepts a message for reliable delivery; transmission starts on the
  /// next `tick`. Returns the message id.
  std::uint64_t send(sim::RobotIndex from, sim::RobotIndex to,
                     std::span<const std::uint8_t> payload);

  /// Processes acks, timeouts, retransmissions and degradations at the
  /// motion clock's current instant. Does not advance time.
  void tick();

  /// Drives the whole stack: tick, then one motion-channel step, until
  /// every message is acked or degraded *and* the motion channel is
  /// quiescent, or `max_instants` elapse. Returns true on full delivery.
  bool run(sim::Time max_instants);

  /// True when no message is still pending and the motion channel drained.
  [[nodiscard]] bool settled() const;

  /// Deduplicated payloads robot `i` has received over both channels.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> received(
      sim::RobotIndex i);

  [[nodiscard]] const ReliableStats& stats() const noexcept {
    return stats_;
  }
  /// State of message `id`; nullopt for unknown ids.
  [[nodiscard]] std::optional<MessageState> state(std::uint64_t id) const;

 private:
  struct Tracked {
    std::uint64_t id = 0;
    sim::RobotIndex from = 0;
    sim::RobotIndex to = 0;
    std::vector<std::uint8_t> wire;  ///< Header + payload.
    std::size_t attempts = 0;        ///< Transmissions so far.
    MessageState st = MessageState::pending;
    std::optional<sim::Time> ack_at;  ///< Ack arrival time, if in flight.
    sim::Time timeout_at = 0;         ///< Next retransmission deadline.
  };

  void emit(sim::Time t, const Tracked& m, const char* label);

  core::ChatNetwork& motion_;
  core::WirelessChannel& radio_;
  ReliableOptions options_;
  sim::Rng ack_rng_;
  obs::EventSink* sink_ = nullptr;
  obs::cov::CovMap* cov_ = nullptr;  ///< Not owned; null when off.
  obs::cov::StateId cov_send_ = obs::cov::kInvalidState;
  std::vector<Tracked> tracked_;
  std::vector<std::unordered_set<std::uint64_t>> seen_;  ///< Per receiver.
  ReliableStats stats_;
  std::uint64_t next_id_ = 1;
};

}  // namespace stig::fault
