#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>

#include "core/chat_network.hpp"
#include "obs/event.hpp"

namespace stig::fault {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  normalize(plan_);
  crash_fired_.assign(plan_.crashes.size(), false);
  stall_fired_.assign(plan_.stalls.size(), false);
  jitter_fired_.assign(plan_.jitters.size(), false);
}

void FaultInjector::emit(sim::Time t, sim::RobotIndex robot,
                         const char* kind, double value) {
  if (cov_ != nullptr) {
    // emit() fires exactly when a scheduled fault takes effect — the
    // coverage edge marks the fault class as genuinely exercised.
    cov_->hit(obs::cov::Domain::fault, cov_plan_, cov_->state("fault", kind));
  }
  if (sink_ == nullptr) return;
  obs::Event e;
  e.type = obs::EventType::FaultInjected;
  e.t = t;
  e.robot = static_cast<std::int64_t>(robot);
  e.value = value;
  e.label = kind;
  sink_->on_event(e);
}

void FaultInjector::on_activation(sim::Time t, sim::ActivationSet& active) {
  for (std::size_t k = 0; k < plan_.crashes.size(); ++k) {
    const CrashFault& f = plan_.crashes[k];
    if (t < f.at || f.robot >= active.size()) continue;
    if (!crash_fired_[k]) {
      crash_fired_[k] = true;
      emit(t, f.robot, "crash", 0.0);
    }
    active[f.robot] = false;
  }
  for (std::size_t k = 0; k < plan_.stalls.size(); ++k) {
    const StallFault& f = plan_.stalls[k];
    if (t < f.from || t >= f.from + f.instants || f.robot >= active.size()) {
      continue;
    }
    if (!stall_fired_[k]) {
      stall_fired_[k] = true;
      emit(t, f.robot, "stall", static_cast<double>(f.instants));
    }
    active[f.robot] = false;
  }
}

void FaultInjector::on_positions(sim::Time t,
                                 std::span<geom::Vec2> positions) {
  for (std::size_t k = 0; k < plan_.jitters.size(); ++k) {
    const JitterFault& f = plan_.jitters[k];
    if (t != f.at || jitter_fired_[k] || f.robot >= positions.size()) {
      continue;
    }
    jitter_fired_[k] = true;
    const geom::Vec2 d{static_cast<double>(f.dx_ticks) * kJitterTick,
                       static_cast<double>(f.dy_ticks) * kJitterTick};
    positions[f.robot] = positions[f.robot] + d;
    emit(t, f.robot, "jitter", d.norm());
  }
}

bool FaultInjector::crashed(sim::RobotIndex i, sim::Time t) const {
  for (const CrashFault& f : plan_.crashes) {
    if (f.robot == i && t >= f.at) return true;
  }
  return false;
}

std::optional<sim::Time> FaultInjector::crash_time(sim::RobotIndex i) const {
  for (const CrashFault& f : plan_.crashes) {
    if (f.robot == i) return f.at;
  }
  return std::nullopt;
}

std::size_t arm_bursts(core::ChatNetwork& net, const FaultPlan& plan,
                       obs::EventSink* sink, obs::cov::CovMap* cov) {
  std::size_t armed = 0;
  std::vector<sim::RobotIndex> taken;
  for (const BurstFault& f : plan.bursts) {
    if (f.robot >= net.robot_count()) continue;
    // One pending fault per robot: first burst (in plan order) wins.
    if (std::find(taken.begin(), taken.end(), f.robot) != taken.end()) {
      continue;
    }
    net.inject_decode_fault(f.robot, f.nth_bit, f.width);
    taken.push_back(f.robot);
    ++armed;
    if (cov != nullptr) {
      cov->hit(obs::cov::Domain::fault, cov->state("fault.plan"),
               cov->state("fault.burst"));
    }
    if (sink != nullptr) {
      obs::Event e;
      e.type = obs::EventType::FaultInjected;
      e.t = 0;
      e.robot = static_cast<std::int64_t>(f.robot);
      e.value = static_cast<double>(f.width);
      e.label = "burst";
      sink->on_event(e);
    }
  }
  return armed;
}

std::size_t arm_corruptions(core::ChatNetwork& net, const FaultPlan& plan) {
  std::size_t armed = 0;
  for (const CorruptFault& f : plan.corrupts) {
    if (f.robot >= net.robot_count()) continue;
    net.schedule_corruption(f.robot, f.at,
                            static_cast<proto::CorruptKind>(f.target));
    ++armed;
  }
  return armed;
}

}  // namespace stig::fault
