#include "fault/redundant_group.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "obs/event.hpp"
#include "par/seed.hpp"

namespace stig::fault {

std::uint32_t fnv1a32(std::span<const std::uint8_t> bytes) {
  std::uint32_t h = 2166136261u;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

FaultPlan lane_slice(const FaultPlan& plan, std::size_t lane,
                     std::size_t n) {
  FaultPlan out;
  const auto mine = [&](sim::RobotIndex physical) {
    return physical / n == lane;
  };
  for (CrashFault f : plan.crashes) {
    if (!mine(f.robot)) continue;
    f.robot %= n;
    out.crashes.push_back(f);
  }
  for (StallFault f : plan.stalls) {
    if (!mine(f.robot)) continue;
    f.robot %= n;
    out.stalls.push_back(f);
  }
  for (JitterFault f : plan.jitters) {
    if (!mine(f.robot)) continue;
    f.robot %= n;
    out.jitters.push_back(f);
  }
  for (BurstFault f : plan.bursts) {
    if (!mine(f.robot)) continue;
    f.robot %= n;
    out.bursts.push_back(f);
  }
  normalize(out);
  return out;
}

RedundantChatNetwork::RedundantChatNetwork(std::vector<geom::Vec2> positions,
                                           RedundantOptions options)
    : n_(positions.size()) {
  if (options.group_size == 0) {
    throw std::invalid_argument("RedundantChatNetwork: group_size >= 1");
  }
  const std::size_t g = options.group_size;
  logs_.resize(g);  // Never resized again: lanes keep pointers into it.
  injectors_.reserve(g);
  lanes_.reserve(g);
  for (std::size_t lane = 0; lane < g; ++lane) {
    core::ChatNetworkOptions o = options.base;
    o.seed = par::derive_seed(options.base.seed, lane);
    if (options.record_schedules) o.record_schedule = &logs_[lane];
    injectors_.push_back(std::make_unique<FaultInjector>(
        lane_slice(options.plan, lane, n_)));
    lanes_.push_back(
        std::make_unique<core::ChatNetwork>(positions, o));
    lanes_.back()->attach_step_interceptor(injectors_.back().get());
    // Decode bursts live in the message layer; armed up front (silently —
    // the per-lane sink is not attached yet; the injector announces
    // crash/stall/jitter as they fire during the run).
    bursts_armed_.push_back(
        arm_bursts(*lanes_.back(), injectors_.back()->plan(), nullptr));
  }
  voted_.assign(n_, {});
}

void RedundantChatNetwork::send(sim::RobotIndex from, sim::RobotIndex to,
                                std::span<const std::uint8_t> payload) {
  for (auto& lane : lanes_) lane->send(from, to, payload);
}

void RedundantChatNetwork::broadcast(sim::RobotIndex from,
                                     std::span<const std::uint8_t> payload) {
  for (auto& lane : lanes_) lane->broadcast(from, payload);
}

void RedundantChatNetwork::attach_lane_sink(std::size_t k,
                                            obs::EventSink* sink) {
  lanes_.at(k)->attach_event_sink(sink);
  injectors_.at(k)->set_event_sink(sink);
}

void RedundantChatNetwork::attach_coverage(obs::cov::CovMap* map) {
  cov_ = map;
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    lanes_[k]->attach_coverage(map);
    injectors_[k]->set_coverage(map);
  }
  if (cov_ == nullptr) return;
  cov_vote_ = cov_->state("vote.begin");
  // Bursts were armed during construction, before any map could attach;
  // replay one fault.plan -> fault.burst edge per armed burst so masked
  // corpora still prove decode-corruption coverage.
  for (const std::size_t armed : bursts_armed_) {
    for (std::size_t b = 0; b < armed; ++b) {
      cov_->hit(obs::cov::Domain::fault, cov_->state("fault.plan"),
                cov_->state("fault.burst"));
    }
  }
}

RedundantChatNetwork::RunResult RedundantChatNetwork::run_until_settled(
    sim::Time max_instants, sim::Time stall_window,
    sim::Time settle_tail) {
  if (stall_window == 0) stall_window = 1;
  const std::size_t g = lanes_.size();
  const auto progress = [&](std::size_t l) {
    std::uint64_t p = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      const proto::ChatStats& s = lanes_[l]->stats(i);
      p += s.bits_sent + s.bits_decoded;
    }
    return p;
  };

  std::vector<bool> settled(g, false);
  std::vector<std::uint64_t> last_progress(g, 0);
  std::vector<sim::Time> stalled_for(g, 0);
  std::vector<sim::Time> used(g, 0);
  RunResult res;
  for (std::size_t l = 0; l < g; ++l) last_progress[l] = progress(l);

  std::size_t remaining = g;
  while (remaining > 0) {
    for (std::size_t l = 0; l < g; ++l) {
      if (settled[l]) continue;
      if (lanes_[l]->quiescent()) {
        settled[l] = true;
        --remaining;
        continue;
      }
      if (used[l] >= max_instants) {
        settled[l] = true;
        --remaining;
        ++res.timeout_lanes;
        continue;
      }
      try {
        lanes_[l]->step();
      } catch (const std::exception& e) {
        // A faulted lane may die outright (a jitter shove can collide
        // robots; a watchdog in abort mode may trip). The lane is a failed
        // group member: settle it and let its deliveries so far vote.
        res.lane_errors.emplace_back(l, e.what());
        settled[l] = true;
        --remaining;
        continue;
      }
      ++used[l];
      const std::uint64_t p = progress(l);
      if (p != last_progress[l]) {
        last_progress[l] = p;
        stalled_for[l] = 0;
      } else if (++stalled_for[l] >= stall_window) {
        // Neither quiescent nor advancing: a crashed peer has wedged this
        // lane (an async ack that will never arrive). Its surviving
        // deliveries still count toward the vote.
        settled[l] = true;
        --remaining;
        ++res.stalled_lanes;
      }
    }
  }

  for (std::size_t l = 0; l < g && settle_tail > 0; ++l) {
    if (!lanes_[l]->quiescent()) continue;
    try {
      lanes_[l]->run(settle_tail);
    } catch (const std::exception& e) {
      res.lane_errors.emplace_back(l, e.what());
    }
  }

  res.all_quiescent =
      std::all_of(lanes_.begin(), lanes_.end(),
                  [](const auto& lane) { return lane->quiescent(); });
  for (std::size_t l = 0; l < g; ++l) {
    res.instants = std::max(res.instants, used[l]);
  }
  vote(res.instants);
  return res;
}

void RedundantChatNetwork::vote(sim::Time t) {
  voted_.assign(n_, {});
  const std::size_t g = lanes_.size();
  for (sim::RobotIndex r = 0; r < n_; ++r) {
    // Per stream (unicast-before-broadcast, then sender), the per-lane
    // payload sequences in decode order.
    std::map<std::pair<bool, sim::RobotIndex>,
             std::vector<std::vector<const std::vector<std::uint8_t>*>>>
        streams;
    for (std::size_t l = 0; l < g; ++l) {
      for (const core::Delivery& d : lanes_[l]->received(r)) {
        auto& seqs = streams[{d.broadcast, d.from}];
        if (seqs.empty()) seqs.resize(g);
        seqs[l].push_back(&d.payload);
      }
    }
    for (const auto& [key, seqs] : streams) {
      const auto [broadcast, from] = key;
      std::size_t max_len = 0;
      for (const auto& s : seqs) max_len = std::max(max_len, s.size());
      for (std::size_t k = 0; k < max_len; ++k) {
        // Plurality over the lanes that have a k-th delivery; ties prefer
        // the lane with the longest stream (the least-truncated witness),
        // then the lowest lane index. Crash faults only truncate, so under
        // crash-only plans every candidate here is already equal.
        std::size_t best_lane = g;
        std::size_t best_count = 0;
        std::size_t best_len = 0;
        for (std::size_t l = 0; l < g; ++l) {
          if (seqs[l].size() <= k) continue;
          std::size_t count = 0;
          for (std::size_t m = 0; m < g; ++m) {
            if (seqs[m].size() > k && *seqs[m][k] == *seqs[l][k]) ++count;
          }
          if (count > best_count ||
              (count == best_count && seqs[l].size() > best_len)) {
            best_lane = l;
            best_count = count;
            best_len = seqs[l].size();
          }
        }
        if (cov_ != nullptr) {
          // How much lane agreement backed this delivery: every
          // participating lane (unanimous), more than half (majority), or
          // a bare plurality tie-break.
          std::size_t participants = 0;
          for (std::size_t m = 0; m < g; ++m) {
            if (seqs[m].size() > k) ++participants;
          }
          const char* outcome = best_count == participants ? "unanimous"
                                : 2 * best_count > participants
                                    ? "majority"
                                    : "plurality";
          cov_->hit(obs::cov::Domain::fault, cov_vote_,
                    cov_->state("vote", outcome));
        }
        VotedDelivery v;
        v.from = from;
        v.to = broadcast ? from : r;
        v.broadcast = broadcast;
        v.ordinal = k;
        v.agreeing_lanes = best_count;
        v.payload = *seqs[best_lane][k];
        if (sink_ != nullptr) {
          obs::Event e;
          e.type = obs::EventType::MaskedDelivery;
          e.t = t;
          e.robot = static_cast<std::int64_t>(r);
          e.peer = static_cast<std::int64_t>(from);
          e.aux = static_cast<std::int64_t>(k);
          e.bit = fnv1a32(v.payload);
          e.value = static_cast<double>(best_count);
          e.label = broadcast ? "broadcast" : "unicast";
          sink_->on_event(e);
        }
        voted_[r].push_back(std::move(v));
      }
    }
  }
}

}  // namespace stig::fault
